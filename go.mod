module w5

go 1.22
