package w5bench

import (
	"errors"
	"testing"

	"w5/internal/declass"
)

type benchEnv map[string]string

func (m benchEnv) ReadOwnerFile(p string) ([]byte, error) {
	v, ok := m[p]
	if !ok {
		return nil, errors.New("not found")
	}
	return []byte(v), nil
}

func benchmarkDeclassifierForms(b *testing.B) {
	env := benchEnv{"/social/friends": "alice\nbob\ncarol\ndave\neve\nfrank\ngrace"}
	req := declass.Request{Owner: "bob", Viewer: "grace", App: "x", Data: []byte("payload")}

	b.Run("native-go", func(b *testing.B) {
		pol := declass.FriendList{}
		for i := 0; i < b.N; i++ {
			if !pol.Decide(req, env).Allow {
				b.Fatal("denied")
			}
		}
	})
	b.Run("wvm-sandboxed", func(b *testing.B) {
		prog, err := declass.CompileFriendListWVM()
		if err != nil {
			b.Fatal(err)
		}
		pol := declass.WVMPolicy{PolicyName: "fl", Prog: prog}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !pol.Decide(req, env).Allow {
				b.Fatal("denied")
			}
		}
	})
}
