// Package w5bench holds the testing.B benchmarks for the evaluation
// suite — one benchmark per experiment table (DESIGN.md §3). Each
// benchmark exercises the experiment's inner operation under b.N;
// cmd/w5bench prints the corresponding full tables.
//
// Run: go test -bench=. -benchmem
package w5bench

import (
	"fmt"
	"sync"
	"testing"

	"w5/internal/attack"
	"w5/internal/baseline"
	"w5/internal/benchutil"
	"w5/internal/core"
	"w5/internal/declass"
	"w5/internal/difc"
	"w5/internal/experiments"
	"w5/internal/htmlsafe"
	"w5/internal/rank"
	"w5/internal/registry"
	"w5/internal/table"
	"w5/internal/workload"
	"w5/internal/wvm"
)

// BenchmarkE1_AdoptionCost measures one "check the box" app adoption on
// W5 versus one full silo re-signup (signup + re-upload) on the
// baseline.
func BenchmarkE1_AdoptionCost(b *testing.B) {
	items := workload.Items("bob", 10, 64, 4096, 1)

	b.Run("w5-enable", func(b *testing.B) {
		p := core.NewProvider(core.Config{Name: "e1", Enforce: true})
		p.CreateUser("bob", "pw")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.EnableApp("bob", fmt.Sprintf("app%d", i))
		}
	})
	b.Run("baseline-resignup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			site := baseline.NewSite("site")
			site.Signup("bob", "pw")
			for _, it := range items {
				site.Upload("bob", it.Name, it.Data, baseline.Private)
			}
		}
	})
}

// BenchmarkE2_SecurityMatrix runs the full adversary suite against the
// W5 surface (the complete provision + attack + scoring cycle).
func BenchmarkE2_SecurityMatrix(b *testing.B) {
	suite := attack.Suite()
	for i := 0; i < b.N; i++ {
		for _, atk := range suite {
			s, err := attack.NewW5Surface()
			if err != nil {
				b.Fatal(err)
			}
			if out := atk.Run(s); !out.Blocked() {
				b.Fatalf("%s not blocked", atk.Name)
			}
		}
	}
}

// BenchmarkE3_LabelOps measures the DIFC primitives at realistic label
// sizes (2 tags: owner secrecy + write tag).
func BenchmarkE3_LabelOps(b *testing.B) {
	a := difc.NewLabel(1, 2)
	c := difc.NewLabel(2, 3)
	caps := difc.CapsFor(1)
	b.Run("union", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = a.Union(c)
		}
	})
	b.Run("subset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = a.SubsetOf(c)
		}
	})
	b.Run("flow-check", func(b *testing.B) {
		sp := difc.LabelPair{Secrecy: a}
		rp := difc.LabelPair{Secrecy: c}
		for i := 0; i < b.N; i++ {
			_ = difc.SafeFlow(sp, caps, rp, difc.EmptyCaps)
		}
	})
	b.Run("export-check", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = difc.CanExport(a, caps)
		}
	})
}

// e3App is the canonical request: read a private file, return it.
type e3App struct{}

func (e3App) Name() string { return "e3app" }
func (e3App) Handle(env *core.AppEnv, req core.AppRequest) (core.AppResponse, error) {
	data, err := env.ReadFile("/home/" + req.Owner + "/private/doc")
	if err != nil {
		return core.AppResponse{Status: 404}, nil
	}
	return core.AppResponse{Body: data}, nil
}

func requestPathProvider(b *testing.B, enforce bool) *core.Provider {
	b.Helper()
	// Quotas off: these benches measure IFC cost, and the default
	// 8 MiB network budget would (correctly!) cut the app off after
	// ~8k exported responses.
	p := core.NewProvider(core.Config{Name: "bench", Enforce: enforce, DisableQuotas: true})
	p.InstallApp(e3App{})
	if _, err := p.CreateUser("bob", "pw"); err != nil {
		b.Fatal(err)
	}
	u, _ := p.GetUser("bob")
	label := difc.LabelPair{
		Secrecy:   difc.NewLabel(u.SecrecyTag),
		Integrity: difc.NewLabel(u.WriteTag),
	}
	if err := p.FS.Write(p.UserCred("bob"), "/home/bob/private/doc", make([]byte, 1024), label); err != nil {
		b.Fatal(err)
	}
	p.EnableApp("bob", "e3app")
	return p
}

// BenchmarkE3_RequestPath measures the end-to-end invoke/export path
// with enforcement on and off — the monitor's whole price.
func BenchmarkE3_RequestPath(b *testing.B) {
	for _, enforce := range []bool{true, false} {
		name := "enforcing"
		if !enforce {
			name = "no-checks"
		}
		b.Run(name, func(b *testing.B) {
			p := requestPathProvider(b, enforce)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inv, err := p.Invoke("e3app", core.AppRequest{Viewer: "bob", Owner: "bob"})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := p.ExportCheck(inv, "bob"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// invokeProviders caches fully provisioned providers per population size
// so the expensive setup (password KDF + home provisioning per user) runs
// once, not once per b.N calibration round.
var invokeProviders = map[int]*core.Provider{}

func invokeProvider(b *testing.B, users int) *core.Provider {
	b.Helper()
	if p, ok := invokeProviders[users]; ok {
		return p
	}
	p, err := benchutil.BuildScaleProvider(users, true)
	if err != nil {
		b.Fatal(err)
	}
	invokeProviders[users] = p
	return p
}

// BenchmarkInvoke pins the central scaling claim of this PR: the cost of
// one invoke→export request must be O(request), independent of how many
// users the platform has registered (the paper's monitor must not slow
// down as the platform grows, §2/E3). Before the per-app capability
// cache, each Invoke rescanned every registered user: users=10k ran
// ~200× slower than users=100. Now the three populations must be within
// noise of each other (acceptance: 10k within 2× of 100).
func BenchmarkInvoke(b *testing.B) {
	for _, n := range []int{100, 10_000, 100_000} {
		b.Run(fmt.Sprintf("users=%d", n), func(b *testing.B) {
			p := invokeProvider(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inv, err := p.Invoke(benchutil.AppName, core.AppRequest{
					Viewer: benchutil.MeasuredUser, Owner: benchutil.MeasuredUser})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := p.ExportCheck(inv, benchutil.MeasuredUser); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGatewayRequest measures the full HTTP request path over real
// keep-alive loopback connections — cookie -> cached session -> Invoke
// -> ExportCheck -> §3.5 filter — with enforcement on (production) and
// off (baseline), at 1..8 concurrent connections. The delta against
// BenchmarkInvoke is the gateway's own overhead. It drives the same
// benchutil.GatewayBench harness as the CI-gated gateway/request*
// entries in BENCH_requestpath.json, so the two cannot drift apart.
func BenchmarkGatewayRequest(b *testing.B) {
	for _, enforce := range []bool{true, false} {
		mode := "enforcing"
		if !enforce {
			mode = "baseline"
		}
		b.Run(mode, func(b *testing.B) {
			p, err := benchutil.BuildScaleProvider(100, enforce)
			if err != nil {
				b.Fatal(err)
			}
			gb, err := benchutil.StartGatewayBench(p)
			if err != nil {
				b.Fatal(err)
			}
			defer gb.Close()
			for _, gn := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("goroutines=%d", gn), func(b *testing.B) {
					conns := make([]*benchutil.GatewayConn, gn)
					for i := range conns {
						// Own raw keep-alive connection per goroutine =
						// own warm session cache, no client-library
						// allocations in the measurement.
						c, err := gb.Dial()
						if err != nil {
							b.Fatal(err)
						}
						defer c.Close()
						if err := c.Do(); err != nil {
							b.Fatal(err)
						}
						conns[i] = c
					}
					b.ReportAllocs()
					b.ResetTimer()
					errs := make(chan error, gn)
					var wg sync.WaitGroup
					for gi := 0; gi < gn; gi++ {
						n := b.N / gn
						if gi < b.N%gn {
							n++
						}
						wg.Add(1)
						go func(c *benchutil.GatewayConn, n int) {
							defer wg.Done()
							for i := 0; i < n; i++ {
								if err := c.Do(); err != nil {
									errs <- err
									return
								}
							}
						}(conns[gi], n)
					}
					wg.Wait()
					b.StopTimer()
					select {
					case err := <-errs:
						b.Fatal(err)
					default:
					}
				})
			}
		})
	}
}

// BenchmarkE4_TCBSize measures a full declassifier DECISION — the
// runtime cost of the small trusted module E4 sizes statically.
func BenchmarkE4_TCBSize(b *testing.B) {
	prog, err := declass.CompileFriendListWVM()
	if err != nil {
		b.Fatal(err)
	}
	pol := declass.WVMPolicy{PolicyName: "friendlist", Prog: prog}
	env := staticEnv{"/social/friends": "alice\nbob\ncarol\ndave\neve"}
	req := declass.Request{Owner: "bob", Viewer: "dave", App: "x", Data: []byte("payload")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pol.Decide(req, env).Allow {
			b.Fatal("friend denied")
		}
	}
}

type staticEnv map[string]string

func (m staticEnv) ReadOwnerFile(p string) ([]byte, error) {
	v, ok := m[p]
	if !ok {
		return nil, fmt.Errorf("not found")
	}
	return []byte(v), nil
}

// BenchmarkE5_CodeRank measures a full CodeRank computation over a
// 1000-module planted graph.
func BenchmarkE5_CodeRank(b *testing.B) {
	const n, k = 1000, 100
	pairs := workload.PlantedGraph(n, k, 3, 99)
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("mod%05d", i)
	}
	edges := make([]registry.Edge, len(pairs))
	for i, e := range pairs {
		edges[i] = registry.Edge{From: nodes[e[0]], To: nodes[e[1]], Kind: "import"}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := rank.Compute(nodes, edges, rank.Options{})
		if !res.Converged {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkE6_FederationSync measures one incremental federation pull
// (steady state: one changed file per sync).
func BenchmarkE6_FederationSync(b *testing.B) {
	// Full experiment (HTTP servers) is in experiments.E6Federation;
	// here we isolate the steady-state cycle via the harness.
	b.Run("sync-cycle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := experiments.E6Federation(10)
			if len(t.Rows) != 3 {
				b.Fatal("bad table")
			}
		}
	})
}

// BenchmarkFederationSync measures the resilient federation pull over
// a real loopback HTTP connection in its three steady shapes:
// incremental with nothing changed (the O(changed files) contract),
// one-update propagation, and a full healing pull over an
// already-converged corpus. It drives the same benchutil harness as
// the CI-gated entries in BENCH_federation.json, so the testing.B view
// and the gate cannot drift apart.
func BenchmarkFederationSync(b *testing.B) {
	fb, err := benchutil.StartFederationBench()
	if err != nil {
		b.Fatal(err)
	}
	defer fb.Close()
	b.Run("steady", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fb.SyncSteady(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("update", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fb.SyncUpdate(i + 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-stale", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fb.SyncFullStale(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7_CovertChannel measures the probe cycle on both stores.
func BenchmarkE7_CovertChannel(b *testing.B) {
	for _, naive := range []bool{true, false} {
		name := "labeled"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := table.New(table.Options{Naive: naive})
				s.Create(table.Schema{Name: "rv", Columns: []string{"k"}, Unique: "k"})
				victim := table.Cred{Caps: difc.CapsFor(1), Principal: "victim"}
				s.Insert(victim, "rv", map[string]string{"k": "x"},
					difc.LabelPair{Secrecy: difc.NewLabel(1)})
				s.Insert(table.Cred{Principal: "attacker"}, "rv",
					map[string]string{"k": "x"}, difc.LabelPair{})
			}
		})
	}
}

// BenchmarkE8_ResourceIsolation measures the gas-metered execution rate
// of confined bytecode — the mechanism that contains CPU rogues.
func BenchmarkE8_ResourceIsolation(b *testing.B) {
	prog, err := wvm.Assemble("loop: jmp loop", nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("metered-instructions", func(b *testing.B) {
		vm := wvm.New(prog, wvm.Config{Gas: uint64(b.N)})
		b.ResetTimer()
		vm.Run()
		if vm.Steps() < uint64(b.N) {
			b.Fatalf("ran %d steps, want >= %d", vm.Steps(), b.N)
		}
	})
}

// BenchmarkE9_GatewayThroughput measures the provider-side request path
// that the HTTP gateway drives per request (invoke + export + filter).
func BenchmarkE9_GatewayThroughput(b *testing.B) {
	p := requestPathProvider(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inv, err := p.Invoke("e3app", core.AppRequest{Viewer: "bob", Owner: "bob"})
		if err != nil {
			b.Fatal(err)
		}
		body, err := p.ExportCheck(inv, "bob")
		if err != nil {
			b.Fatal(err)
		}
		htmlsafe.Sanitize(string(body), htmlsafe.Policy{})
	}
}

// BenchmarkE10_JSFilter measures sanitizer throughput on a 64 KiB page.
func BenchmarkE10_JSFilter(b *testing.B) {
	page := workload.HTMLPage(64<<10, 20, 20, 1)
	b.SetBytes(int64(len(page)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rep := htmlsafe.Sanitize(page, htmlsafe.Policy{})
		if rep.ScriptsRemoved == 0 {
			b.Fatal("filter did nothing")
		}
	}
}
