// Marketplace: the paper's developer ecosystem (§2, §3.2) in one run,
// end to end. A developer uploads an open-source module (the registry
// verifies the listing reproduces the bytecode); another developer
// forks it; an editor endorses; users' dependency structure feeds
// CodeRank; discovery is served rank-ordered off the catalogue
// snapshot and the cached rank view; a provider pins the audited
// version; the uploaded module actually RUNS as a confined
// application; and finally data crosses the perimeter the only way it
// can — through a user-authorized declassifier, whose verdict the
// second read gets from the epoch-keyed cache.
package main

import (
	"fmt"
	"log"

	"w5/internal/apps"
	"w5/internal/core"
	"w5/internal/declass"
	"w5/internal/difc"
	"w5/internal/rank"
	"w5/internal/registry"
	"w5/internal/wvm"
)

const greeterSource = `
.data greet "hello from the marketplace, "
        push @greet
        push #greet
        sys emit
        pop
        push 1024
        sys copy_viewer
        store 0
        push 1024
        load 0
        sys emit
        pop
        halt
`

func main() {
	p := core.NewProvider(core.Config{Name: "marketplace", Enforce: true})

	// devA uploads an open-source app. The registry recompiles the
	// listing and refuses the upload unless it matches the bytecode —
	// the §2 guarantee that users run exactly the code they audited.
	prog, err := wvm.Assemble(greeterSource, core.AppSyscallNames)
	if err != nil {
		log.Fatal(err)
	}
	v, err := p.Registry.Put(registry.Upload{
		Module: "greeter", Version: "1.0", Developer: "devA",
		Kind: registry.KindApp, Program: prog,
		Source: greeterSource, SysNames: core.AppSyscallNames,
		Summary: "greets the viewer by name",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded greeter@1.0 hash=%s…\n", v.Hash[:16])

	// A tampered "open-source" upload is refused.
	_, err = p.Registry.Put(registry.Upload{
		Module: "trojan", Version: "1.0", Developer: "devX",
		Kind: registry.KindApp, Program: prog,
		Source: "push 0\nhalt\n", // listing does not match!
	})
	fmt.Printf("tampered listing upload: %v  ✓\n", err)

	// devB forks it — "any developer can customize an existing
	// application by simply forking the existing code".
	fork, err := p.Registry.Fork("devB", "greeter", "", "greeter-deluxe", "1.0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("devB forked: %s (fork of %s)\n", fork.Module, fork.ForkOf)

	// Libraries and dependency edges for CodeRank.
	lib, _ := wvm.Assemble("halt", nil)
	p.Registry.Put(registry.Upload{Module: "htmllib", Version: "1.0",
		Developer: "devA", Kind: registry.KindLibrary, Program: lib,
		Summary: "html rendering library"})
	p.Registry.Put(registry.Upload{Module: "photoapp", Version: "1.0",
		Developer: "devC", Kind: registry.KindApp, Program: lib,
		Deps: []string{"htmllib"}, Summary: "photo gallery"})
	p.Registry.Put(registry.Upload{Module: "blogapp", Version: "1.0",
		Developer: "devC", Kind: registry.KindApp, Program: lib,
		Deps: []string{"htmllib"}, Summary: "blog engine"})
	p.Registry.RecordEmbed("blogapp", "photoapp")
	p.Registry.Endorse("editor:webweekly", "greeter")

	// Code search, rank-ordered (§3.2) — served the way the gateway
	// serves it: off the immutable catalogue snapshot and the Index's
	// cached CodeRank view, no locks and no power iteration per query.
	ix := rank.NewIndex(rank.Options{})
	fmt.Println("\ncode search 'greeter' (rank-ordered, cached view):")
	for _, r := range ix.SearchRanked(p.Registry, "greeter") {
		fmt.Printf("  %-16s score %.4f\n", r.Module, r.Score)
	}
	fmt.Printf("rank view: seq %d, %d power-iteration steps\n",
		ix.View(p.Registry).Seq, ix.View(p.Registry).Iterations)
	fmt.Println("developer trust ranking:")
	for _, r := range rank.DeveloperRank(p.Registry, rank.Options{}) {
		fmt.Printf("  %-6s %.4f\n", r.Module, r.Score)
	}

	// The provider audits 1.0 and pins it: a later 1.1 upload does not
	// change what "greeter" resolves to until the pin moves.
	if _, err := p.Registry.Put(registry.Upload{
		Module: "greeter", Version: "1.1", Developer: "devA",
		Kind: registry.KindApp, Program: prog,
		Source: greeterSource, SysNames: core.AppSyscallNames,
	}); err != nil {
		log.Fatal(err)
	}
	if err := p.Registry.Pin("greeter", "1.0"); err != nil {
		log.Fatal(err)
	}
	pinned, _ := p.Registry.Get("greeter", "")
	fmt.Printf("\npinned greeter@%s (1.1 published, pin holds)\n", pinned.Version)

	// And the module actually runs, confined, for a real user.
	p.CreateUser("mallory", "pw") // even mallory can safely run it
	if err := p.InstallWVMApp("greeter", ""); err != nil {
		log.Fatal(err)
	}
	inv, err := p.Invoke("greeter", core.AppRequest{Viewer: "mallory"})
	if err != nil {
		log.Fatal(err)
	}
	body, err := p.ExportCheck(inv, "mallory")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running greeter for mallory: %q\n", body)

	// Last leg of the lifecycle: a cross-user read. Alice's profile is
	// secrecy-labeled, so Bob only sees it because Alice authorized a
	// FriendList declassifier and listed him. The first read consults
	// the policy (reads and parses her friend file); the second is
	// served from the verdict cache, keyed by Alice's credential epoch —
	// revoking the grant or unfriending Bob would bump the epoch and
	// strand the cached positive.
	p.InstallApp(apps.Social{})
	for _, u := range []string{"alice", "bob"} {
		if _, err := p.CreateUser(u, "pw"); err != nil {
			log.Fatal(err)
		}
		if err := p.EnableApp(u, "social"); err != nil {
			log.Fatal(err)
		}
	}
	au, _ := p.GetUser("alice")
	label := difc.LabelPair{
		Secrecy:   difc.NewLabel(au.SecrecyTag),
		Integrity: difc.NewLabel(au.WriteTag),
	}
	cred := p.UserCred("alice")
	p.FS.Write(cred, "/home/alice/social/profile", []byte("name: alice\nbio: likes marketplaces\n"), label)
	p.FS.Write(cred, "/home/alice/social/friends", []byte("bob\n"), label)
	if err := p.AuthorizeDeclassifier("alice", declass.FriendList{}); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		inv, err := p.Invoke("social", core.AppRequest{
			Viewer: "bob", Owner: "alice", Path: "/profile",
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := p.ExportCheck(inv, "bob"); err != nil {
			log.Fatal(err)
		}
	}
	hits, misses, _ := p.Declass.CacheStats()
	fmt.Printf("\nbob read alice's profile twice: declassifier consulted once, "+
		"verdict cache %d hit / %d miss\n", hits, misses)
}
