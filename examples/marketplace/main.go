// Marketplace: the paper's developer ecosystem (§2, §3.2) in one run.
// A developer uploads an open-source module (the registry verifies the
// listing reproduces the bytecode); another developer forks it; an
// editor endorses; users' dependency structure feeds CodeRank; and a
// search returns rank-ordered results. Finally the uploaded module
// actually RUNS as a confined application.
package main

import (
	"fmt"
	"log"

	"w5/internal/core"
	"w5/internal/rank"
	"w5/internal/registry"
	"w5/internal/wvm"
)

const greeterSource = `
.data greet "hello from the marketplace, "
        push @greet
        push #greet
        sys emit
        pop
        push 1024
        sys copy_viewer
        store 0
        push 1024
        load 0
        sys emit
        pop
        halt
`

func main() {
	p := core.NewProvider(core.Config{Name: "marketplace", Enforce: true})

	// devA uploads an open-source app. The registry recompiles the
	// listing and refuses the upload unless it matches the bytecode —
	// the §2 guarantee that users run exactly the code they audited.
	prog, err := wvm.Assemble(greeterSource, core.AppSyscallNames)
	if err != nil {
		log.Fatal(err)
	}
	v, err := p.Registry.Put(registry.Upload{
		Module: "greeter", Version: "1.0", Developer: "devA",
		Kind: registry.KindApp, Program: prog,
		Source: greeterSource, SysNames: core.AppSyscallNames,
		Summary: "greets the viewer by name",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded greeter@1.0 hash=%s…\n", v.Hash[:16])

	// A tampered "open-source" upload is refused.
	_, err = p.Registry.Put(registry.Upload{
		Module: "trojan", Version: "1.0", Developer: "devX",
		Kind: registry.KindApp, Program: prog,
		Source: "push 0\nhalt\n", // listing does not match!
	})
	fmt.Printf("tampered listing upload: %v  ✓\n", err)

	// devB forks it — "any developer can customize an existing
	// application by simply forking the existing code".
	fork, err := p.Registry.Fork("devB", "greeter", "", "greeter-deluxe", "1.0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("devB forked: %s (fork of %s)\n", fork.Module, fork.ForkOf)

	// Libraries and dependency edges for CodeRank.
	lib, _ := wvm.Assemble("halt", nil)
	p.Registry.Put(registry.Upload{Module: "htmllib", Version: "1.0",
		Developer: "devA", Kind: registry.KindLibrary, Program: lib,
		Summary: "html rendering library"})
	p.Registry.Put(registry.Upload{Module: "photoapp", Version: "1.0",
		Developer: "devC", Kind: registry.KindApp, Program: lib,
		Deps: []string{"htmllib"}, Summary: "photo gallery"})
	p.Registry.Put(registry.Upload{Module: "blogapp", Version: "1.0",
		Developer: "devC", Kind: registry.KindApp, Program: lib,
		Deps: []string{"htmllib"}, Summary: "blog engine"})
	p.Registry.RecordEmbed("blogapp", "photoapp")
	p.Registry.Endorse("editor:webweekly", "greeter")

	// Code search, rank-ordered (§3.2).
	fmt.Println("\ncode search 'greeter' (rank-ordered):")
	for _, r := range rank.SearchRanked(p.Registry, "greeter", rank.Options{}) {
		fmt.Printf("  %-16s score %.4f\n", r.Module, r.Score)
	}
	fmt.Println("developer trust ranking:")
	for _, r := range rank.DeveloperRank(p.Registry, rank.Options{}) {
		fmt.Printf("  %-6s %.4f\n", r.Module, r.Score)
	}

	// And the module actually runs, confined, for a real user.
	p.CreateUser("mallory", "pw") // even mallory can safely run it
	if err := p.InstallWVMApp("greeter", ""); err != nil {
		log.Fatal(err)
	}
	inv, err := p.Invoke("greeter", core.AppRequest{Viewer: "mallory"})
	if err != nil {
		log.Fatal(err)
	}
	body, err := p.ExportCheck(inv, "mallory")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrunning greeter for mallory: %q\n", body)
}
