// Mashup: the paper's §4 example. A page combines Bob's PRIVATE address
// book with a map renderer — entirely server-side, inside the security
// perimeter. The map module sees the addresses (it must, to place the
// markers) but can never ship them to its developer: the process is
// tainted with s_bob and only Bob's browser can receive the result.
//
// Contrast (quoted from §4): under the status quo "such a mashup would
// reveal the page of the address book (both names and addresses) to
// Google"; under MashupOS the names can be hidden but "the application
// still uses the Google API ... and therefore cannot stop the
// transmission of the addresses back to Google's servers."
package main

import (
	"fmt"
	"log"

	"w5/internal/apps"
	"w5/internal/core"
	"w5/internal/difc"
)

func main() {
	p := core.NewProvider(core.Config{Name: "mashup", Enforce: true})
	p.InstallApp(apps.Mashup{})

	bob, err := p.CreateUser("bob", "pw")
	if err != nil {
		log.Fatal(err)
	}
	private := difc.LabelPair{
		Secrecy:   difc.NewLabel(bob.SecrecyTag),
		Integrity: difc.NewLabel(bob.WriteTag),
	}
	book := `# name,street,x,y
alice,12 main st,2,3
dentist,4 elm ave,9,1
jazz club,77 blue note rd,5,6
`
	if err := p.FS.Write(p.UserCred("bob"), "/home/bob/private/addressbook",
		[]byte(book), private); err != nil {
		log.Fatal(err)
	}
	p.EnableApp("bob", "mashup")

	// Bob fetches his annotated map.
	inv, err := p.Invoke("mashup", core.AppRequest{
		Viewer: "bob", Owner: "bob", Path: "/map",
		Params: map[string]string{"w": "48", "h": "14"},
	})
	if err != nil {
		log.Fatal(err)
	}
	// The process is now tainted by bob's data: the map was drawn from
	// private addresses.
	fmt.Printf("map process labels after rendering: %s\n\n", inv.Proc.Labels())
	body, err := p.ExportCheck(inv, "bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(body))

	// The "map developer" (any other principal) gets nothing — this is
	// the line MashupOS cannot hold and W5 can.
	p.CreateUser("mapdev", "pw")
	inv, _ = p.Invoke("mashup", core.AppRequest{
		Viewer: "mapdev", Owner: "bob", Path: "/map", Params: map[string]string{},
	})
	if _, err := p.ExportCheck(inv, "mapdev"); err != nil {
		fmt.Printf("\nmap developer's fetch: %v  ✓ (addresses stayed inside the perimeter)\n", err)
	} else {
		log.Fatal("BUG: addresses leaked to the map developer")
	}
}
