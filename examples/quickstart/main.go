// Quickstart: the smallest complete W5 program. It builds a provider,
// creates a user, installs an application, adopts it with one
// "checkbox", and shows the boilerplate policy at work: the owner can
// fetch their data through the app; a stranger cannot.
package main

import (
	"fmt"
	"log"

	"w5/internal/apps"
	"w5/internal/core"
	"w5/internal/difc"
)

func main() {
	// A provider is the whole trusted platform: DIFC kernel, labeled
	// storage, registry, declassifier manager, quotas, audit log.
	p := core.NewProvider(core.Config{Name: "quickstart", Enforce: true})

	// Create Bob. This mints his secrecy tag s_bob and write tag w_bob
	// and provisions /home/bob/{private,public,social}.
	bob, err := p.CreateUser("bob", "hunter2")
	if err != nil {
		log.Fatal(err)
	}

	// Bob stores a photo under the boilerplate label: secret to Bob,
	// write-protected by Bob.
	private := difc.LabelPair{
		Secrecy:   difc.NewLabel(bob.SecrecyTag),
		Integrity: difc.NewLabel(bob.WriteTag),
	}
	err = p.FS.Write(p.UserCred("bob"), "/home/bob/social/profile",
		[]byte("Bob. Likes jazz and hiking."), private)
	if err != nil {
		log.Fatal(err)
	}

	// Install the social app and let Bob adopt it: ONE operation, no
	// data re-entry — the paper's "checking a box".
	p.InstallApp(apps.Social{})
	p.EnableApp("bob", "social")

	// Bob views his own profile through the (untrusted!) app.
	inv, err := p.Invoke("social", core.AppRequest{
		Viewer: "bob", Owner: "bob", Path: "/profile",
	})
	if err != nil {
		log.Fatal(err)
	}
	body, err := p.ExportCheck(inv, "bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob sees his profile:\n%s\n\n", body)

	// A stranger asks the SAME app for the SAME data. The app reads it
	// happily — and the perimeter refuses to let the bytes out.
	p.CreateUser("stranger", "pw")
	inv, err = p.Invoke("social", core.AppRequest{
		Viewer: "stranger", Owner: "bob", Path: "/profile",
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := p.ExportCheck(inv, "stranger"); err != nil {
		fmt.Printf("stranger's request: %v  ✓ (boilerplate policy held)\n", err)
	} else {
		log.Fatal("BUG: stranger saw bob's profile")
	}

	// The audit log recorded everything.
	fmt.Printf("\naudit events recorded: %d (denials: %d)\n",
		p.Log.Len(), p.Log.CountKind("export-denied"))
}
