// Socialnet: the paper's §3.1 scenario end to end, over real HTTP.
// "A social networking application should be able to show Bob's profile
// to Alice but not to Charlie" — where Alice is on Bob's friend list
// and the friend-list DECLASSIFIER (not the application) enforces it.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"

	"w5/internal/apps"
	"w5/internal/core"
	"w5/internal/gateway"
)

type user struct {
	name   string
	client *http.Client
}

func newUser(t *httptest.Server, name string) *user {
	jar, _ := cookiejar.New(nil)
	u := &user{name: name, client: &http.Client{Jar: jar}}
	resp, err := u.client.PostForm(t.URL+"/signup",
		url.Values{"user": {name}, "password": {"pw"}})
	if err != nil || resp.StatusCode != 200 {
		log.Fatalf("signup %s: %v (%v)", name, err, resp.Status)
	}
	resp.Body.Close()
	return u
}

func (u *user) get(t *httptest.Server, path string) (int, string) {
	resp, err := u.client.Get(t.URL + path)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func (u *user) post(t *httptest.Server, path string, form url.Values) string {
	resp, err := u.client.PostForm(t.URL+path, form)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

func main() {
	p := core.NewProvider(core.Config{Name: "socialnet", Enforce: true})
	p.InstallApp(apps.Social{})
	srv := httptest.NewServer(gateway.New(p, gateway.Options{FilterHTML: true}))
	defer srv.Close()

	bob := newUser(srv, "bob")
	alice := newUser(srv, "alice")
	charlie := newUser(srv, "charlie")

	// Bob adopts the app, grants it write access (it maintains his
	// profile and friend list), writes his profile, and friends Alice.
	bob.post(srv, "/grants/enable", url.Values{"app": {"social"}})
	bob.post(srv, "/grants/write", url.Values{"app": {"social"}})
	bob.post(srv, "/app/social/profile", url.Values{"owner": {"bob"},
		"body": {"Bob's profile: jazz, hiking, and sci-fi."}})
	bob.post(srv, "/app/social/friends", url.Values{"owner": {"bob"}, "add": {"alice"}})

	// Crucially: Bob authorizes the friend-list declassifier. Without
	// this, NOBODY but Bob could see his profile, whatever the app did.
	fmt.Println("bob:", bob.post(srv, "/grants/declass", url.Values{"policy": {"friend-list"}}))

	show := func(u *user) {
		code, body := u.get(srv, "/app/social/profile?owner=bob")
		if code == 200 {
			fmt.Printf("%-8s -> HTTP %d (profile visible, %d bytes)\n", u.name, code, len(body))
		} else {
			fmt.Printf("%-8s -> HTTP %d (blocked by bob's policy)\n", u.name, code)
		}
	}
	show(bob)     // owner: 200
	show(alice)   // friend: 200, via the declassifier
	show(charlie) // stranger: 403

	// Bob un-friends nobody, but revokes the policy — now even Alice
	// is blocked, demonstrating that the POLICY, not the app, decides.
	bob.post(srv, "/grants/declass", url.Values{"revoke": {"friend-list"}})
	fmt.Println("\nafter bob revokes the friend-list declassifier:")
	show(alice)
}
