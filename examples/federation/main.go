// Federation: the paper's §3.3 multi-provider story. Bob has accounts
// on two W5 providers; he authorizes import/export declassifiers on the
// peering, and his data mirrors across — re-labeled with each
// provider's own tags, so the boilerplate policy keeps holding on both
// sides.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"w5/internal/core"
	"w5/internal/difc"
	"w5/internal/federation"
	"w5/internal/store"
)

func main() {
	A := core.NewProvider(core.Config{Name: "providerA", Enforce: true})
	B := core.NewProvider(core.Config{Name: "providerB", Enforce: true})
	for _, p := range []*core.Provider{A, B} {
		if _, err := p.CreateUser("bob", "pw"); err != nil {
			log.Fatal(err)
		}
	}

	// Bob writes his diary on provider A.
	uA, _ := A.GetUser("bob")
	private := difc.LabelPair{
		Secrecy:   difc.NewLabel(uA.SecrecyTag),
		Integrity: difc.NewLabel(uA.WriteTag),
	}
	if err := A.FS.Write(A.UserCred("bob"), "/home/bob/private/diary",
		[]byte("day 1: tried two web providers at once"), private); err != nil {
		log.Fatal(err)
	}

	// Bob authorizes the peering ON THE EXPORTING SIDE: without this,
	// private data stays home (only public files would sync).
	if err := federation.AuthorizePeer(A, "bob", "providerB"); err != nil {
		log.Fatal(err)
	}

	// Provider A exposes its federation endpoint over (real) HTTP.
	mux := http.NewServeMux()
	federation.MountExport(A, mux, map[string]string{"providerB": "peering-secret"})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Provider B pulls.
	link := &federation.Link{
		Local: B, PeerName: "providerA", BaseURL: srv.URL,
		Secret: "peering-secret", User: "bob",
	}
	n, err := link.SyncOnce()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sync 1: %d file(s) imported to providerB\n", n)

	// Bob reads his diary on B; note the label: B's OWN tags.
	data, label, err := B.FS.Read(B.UserCred("bob"), "/home/bob/private/diary")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on providerB: %q\n  label there: %s\n", data, label)

	// B enforces as strictly as A: anonymous read denied.
	if _, _, err := B.FS.Read(store.Cred{Principal: "anon"}, "/home/bob/private/diary"); err != nil {
		fmt.Printf("anonymous read on B: %v  ✓\n", err)
	}

	// An update on A propagates (§3.3: "whenever the user updated his
	// data on one platform, the changes would propagate to the other").
	A.FS.Write(A.UserCred("bob"), "/home/bob/private/diary",
		[]byte("day 2: the mirror works"), private)
	n, _ = link.SyncOnce()
	data, _, _ = B.FS.Read(B.UserCred("bob"), "/home/bob/private/diary")
	fmt.Printf("sync 2: %d file(s); diary on B now: %q\n", n, data)
}
