// Ablation benchmarks for the design choices DESIGN.md calls out:
// chunked gas accounting in the VM, equality indexes in the table
// store, and sorted-slice labels versus a map-based alternative.
package w5bench

import (
	"fmt"
	"testing"

	"w5/internal/difc"
	"w5/internal/quota"
	"w5/internal/table"
	"w5/internal/wvm"
)

// BenchmarkAblation_GasCharging compares the VM's chunked quota charging
// (one mutex acquisition per 1024 instructions) against per-instruction
// charging, which is what a naive implementation would do.
func BenchmarkAblation_GasCharging(b *testing.B) {
	prog, err := wvm.Assemble("loop: jmp loop", nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("chunked-1024", func(b *testing.B) {
		acct := quota.NewAccount("app", quota.Limits{CPU: uint64(b.N) + wvm.GasChunk})
		vm := wvm.New(prog, wvm.Config{Gas: uint64(b.N), Account: acct})
		b.ResetTimer()
		vm.Run()
	})
	b.Run("per-instruction", func(b *testing.B) {
		// Simulate per-instruction charging: the same spin loop but
		// paying one Charge call per op, as the VM would without
		// chunking.
		acct := quota.NewAccount("app", quota.Limits{CPU: uint64(b.N) + 1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := acct.Charge(quota.CPU, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_TableIndex measures equality lookups with and
// without the column index, at 10k rows.
func BenchmarkAblation_TableIndex(b *testing.B) {
	build := func(indexed bool) *table.Store {
		s := table.New(table.Options{})
		schema := table.Schema{Name: "t", Columns: []string{"owner", "v"}}
		if indexed {
			schema.Index = []string{"owner"}
		}
		if err := s.Create(schema); err != nil {
			b.Fatal(err)
		}
		cred := table.Cred{Principal: "loader"}
		for i := 0; i < 10_000; i++ {
			s.Insert(cred, "t", map[string]string{
				"owner": fmt.Sprintf("u%04d", i%100), "v": "x",
			}, difc.LabelPair{})
		}
		return s
	}
	pred := table.Cmp{Col: "owner", Op: table.Eq, Val: "u0042"}
	cred := table.Cred{Principal: "reader"}
	for _, indexed := range []bool{true, false} {
		name := "indexed"
		if !indexed {
			name = "full-scan"
		}
		b.Run(name, func(b *testing.B) {
			s := build(indexed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, _, err := s.Select(cred, "t", pred)
				if err != nil || len(rows) != 100 {
					b.Fatalf("rows=%d err=%v", len(rows), err)
				}
			}
		})
	}
}

// BenchmarkAblation_LabeledTableOverhead measures the full cost of
// label enforcement on an indexed point query at the E7 scale point:
// the same 10k-row table and query against the labeled store (100
// per-owner secrecy labels, visibility cached per interned label) and
// the naive comparator (no labels checked at all). The PR 5 acceptance
// line is labeled within ~2x of naive.
func BenchmarkAblation_LabeledTableOverhead(b *testing.B) {
	build := func(naive bool) (*table.Store, []table.Cred) {
		s := table.New(table.Options{Naive: naive})
		if err := s.Create(table.Schema{
			Name:    "t",
			Columns: []string{"owner", "v"},
			Index:   []string{"owner"},
		}); err != nil {
			b.Fatal(err)
		}
		creds := make([]table.Cred, 100)
		for i := range creds {
			creds[i] = table.Cred{
				Caps:      difc.CapsFor(difc.Tag(i + 1)),
				Principal: fmt.Sprintf("u%04d", i),
			}
		}
		for i := 0; i < 10_000; i++ {
			c := creds[i%100]
			if _, err := s.Insert(c, "t", map[string]string{
				"owner": c.Principal, "v": "x",
			}, difc.LabelPair{Secrecy: difc.NewLabel(difc.Tag(i%100 + 1))}); err != nil {
				b.Fatal(err)
			}
		}
		return s, creds
	}
	for _, naive := range []bool{false, true} {
		name := "labeled"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			s, creds := build(naive)
			cred := creds[42]
			pred := table.Cmp{Col: "owner", Op: table.Eq, Val: cred.Principal}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, _, err := s.Select(cred, "t", pred)
				if err != nil || len(rows) != 100 {
					b.Fatalf("rows=%d err=%v", len(rows), err)
				}
			}
		})
	}
}

// BenchmarkAblation_LabelRepresentation compares the sorted-slice Label
// against a map[Tag]struct{} set for the union-and-subset pattern the
// kernel executes per flow check, at the 2-tag size real labels have.
func BenchmarkAblation_LabelRepresentation(b *testing.B) {
	a := difc.NewLabel(1, 2)
	c := difc.NewLabel(2, 3)
	b.Run("sorted-slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := a.Union(c)
			_ = a.SubsetOf(u)
		}
	})
	ma := map[difc.Tag]struct{}{1: {}, 2: {}}
	mc := map[difc.Tag]struct{}{2: {}, 3: {}}
	b.Run("map-set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := make(map[difc.Tag]struct{}, len(ma)+len(mc))
			for t := range ma {
				u[t] = struct{}{}
			}
			for t := range mc {
				u[t] = struct{}{}
			}
			ok := true
			for t := range ma {
				if _, in := u[t]; !in {
					ok = false
				}
			}
			_ = ok
		}
	})
}

// BenchmarkAblation_DeclassifierForm compares the native Go friend-list
// policy against the equivalent sandboxed WVM module — the cost of
// running user-uploaded policies in the sandbox rather than trusting
// compiled-in ones.
func BenchmarkAblation_DeclassifierForm(b *testing.B) {
	benchmarkDeclassifierForms(b)
}
