// Command w5load is the open-loop capacity driver: it replays a
// deterministic mixed scenario trace (logins, social-feed reads, photo
// writes, table queries, audit pulls; Zipf-distributed popularity)
// against a W5 gateway over raw keep-alive connections and reports
// throughput, error rate and coordinated-omission-corrected latency
// percentiles. See internal/loadgen/README.md for the methodology.
//
// Usage:
//
//	w5d -addr :8055 -dev-seed 128 -disable-quotas -login-rate 0 &
//	w5load -addr 127.0.0.1:8055 -users 128 -rps 250 -duration 10s
//	                                 # one fixed-rate open-loop window
//	w5load -capacity -out capacity.json
//	                                 # full measurement (fixed window +
//	                                 # saturation ladder) against an
//	                                 # in-process fixture; with -addr,
//	                                 # against that daemon instead
//
// The target daemon must be dev-seeded with at least -users accounts
// and must not rate-limit logins (the mix churns them on purpose).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"w5/internal/loadgen"
)

func main() {
	addr := flag.String("addr", "", "gateway address (host:port); empty with -capacity starts an in-process fixture")
	users := flag.Int("users", 128, "seeded population size the trace draws from")
	conns := flag.Int("conns", 4, "concurrent keep-alive connections")
	rps := flag.Float64("rps", 250, "open-loop arrival rate (fixed-rate mode)")
	duration := flag.Duration("duration", 10*time.Second, "schedule length (fixed-rate mode)")
	seed := flag.Int64("seed", 1, "trace seed; same seed, same requests")
	capacity := flag.Bool("capacity", false, "run the full capacity measurement (fixed window + saturation ladder)")
	window := flag.Duration("window", 2*time.Second, "per-rate window in -capacity mode")
	out := flag.String("out", "", "with -capacity, write the BENCH_capacity.json-schema report here")
	flag.Parse()

	if *capacity {
		rep, err := loadgen.MeasureCapacity(loadgen.CapacityOptions{
			Addr: *addr, Users: *users, Conns: *conns, Seed: *seed, Window: *window,
		}, printRun)
		if err != nil {
			fmt.Fprintln(os.Stderr, "w5load:", err)
			os.Exit(1)
		}
		for _, c := range rep.Capacity {
			fmt.Printf("%-34s offered %7.0f req/s  achieved %7.0f req/s  err %5.2f%%  p99 %s\n",
				c.Name, c.OfferedRPS, c.AchievedRPS, c.ErrorRate*100,
				time.Duration(c.P99Ns))
		}
		if *out != "" {
			if err := rep.Write(*out); err != nil {
				fmt.Fprintln(os.Stderr, "w5load:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *addr == "" {
		fmt.Fprintln(os.Stderr, "w5load: -addr required (or use -capacity for the in-process fixture)")
		os.Exit(2)
	}
	res, err := loadgen.Run(loadgen.Config{
		Addr: *addr, Users: *users, Conns: *conns,
		RPS: *rps, Duration: *duration, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "w5load:", err)
		os.Exit(1)
	}
	printRun("run", res)
	for s, st := range res.Scenarios {
		fmt.Printf("  %-12s %6d sent %5d errors\n", s, st.Sent, st.Errors)
	}
	if !res.SLOPass {
		os.Exit(1)
	}
}

func printRun(name string, r *loadgen.Result) {
	verdict := "SLO ok"
	if !r.SLOPass {
		verdict = "SLO FAIL"
	}
	fmt.Printf("%-20s offered %7.0f req/s  achieved %7.0f req/s  err %5.2f%%  p50 %-9s p99 %-9s p999 %-9s %s\n",
		name, r.OfferedRPS, r.AchievedRPS, r.ErrorRate*100, r.P50, r.P99, r.P999, verdict)
}
