package main

// Smoke test for the built binary: `w5ctl fed status` against a live
// gateway renders per-peer health, and the cookie round-trips through
// $HOME/.w5ctl-cookie.

import (
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"w5/internal/core"
	"w5/internal/federation"
	"w5/internal/gateway"
)

func buildW5ctl(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "w5ctl")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestFedStatusSubcommand(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildW5ctl(t)

	p := core.NewProvider(core.Config{Name: "ctltest", Enforce: true})
	g := gateway.New(p, gateway.Options{})
	g.SetFedStats(func() any {
		return []federation.PeerHealth{{
			Peer: "providerB", Breaker: "open",
			ConsecutiveFailures: 4, Rounds: 9,
			LastError:   "federation: peer providerB: conn: dial refused",
			LastSuccess: time.Now().Add(-time.Minute),
		}}
	})
	srv := httptest.NewServer(g)
	defer srv.Close()

	home := t.TempDir() // isolates the cookie file
	run := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(bin, append([]string{"-server", srv.URL}, args...)...)
		cmd.Env = append(os.Environ(), "HOME="+home)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("w5ctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// Unauthenticated: the endpoint refuses, and the CLI passes the
	// server's words through.
	if out := run("fed", "status"); !strings.Contains(out, "login required") {
		t.Fatalf("anonymous fed status = %q", out)
	}
	run("signup", "op", "hunter2")
	out := run("fed", "status")
	for _, want := range []string{"providerB", "breaker=open", "failures=4", "dial refused"} {
		if !strings.Contains(out, want) {
			t.Errorf("fed status output missing %q:\n%s", want, out)
		}
	}
}
