// Command w5ctl is a small CLI client for a running w5d provider. It
// keeps a session cookie in $HOME/.w5ctl-cookie so successive commands
// stay authenticated.
//
// Usage:
//
//	w5ctl -server http://localhost:8055 signup bob hunter2
//	w5ctl login bob hunter2
//	w5ctl enable social
//	w5ctl grant-write social
//	w5ctl declass friend-list
//	w5ctl app social /profile owner=bob
//	w5ctl post social /profile owner=bob body='hello world'
//	w5ctl audit kind=export since=100
//	w5ctl search photo
//	w5ctl fed status
//	w5ctl whoami
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"time"

	"w5/internal/federation"
	"w5/internal/gateway"
)

var server string

func main() {
	args := os.Args[1:]
	server = "http://localhost:8055"
	if len(args) >= 2 && args[0] == "-server" {
		server = args[1]
		args = args[2:]
	}
	if len(args) == 0 {
		usage()
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "signup", "login":
		need(rest, 2)
		resp := post("/"+cmd, url.Values{"user": {rest[0]}, "password": {rest[1]}}, true)
		fmt.Print(resp)
	case "logout":
		fmt.Print(post("/logout", nil, false))
		os.Remove(cookiePath())
	case "whoami":
		fmt.Print(get("/whoami"))
	case "enable":
		need(rest, 1)
		fmt.Print(post("/grants/enable", url.Values{"app": {rest[0]}}, false))
	case "grant-write":
		need(rest, 1)
		fmt.Print(post("/grants/write", url.Values{"app": {rest[0]}}, false))
	case "declass":
		need(rest, 1)
		v := url.Values{"policy": {rest[0]}}
		for _, kv := range rest[1:] {
			k, val, _ := strings.Cut(kv, "=")
			v.Set(k, val)
		}
		fmt.Print(post("/grants/declass", v, false))
	case "app", "post":
		need(rest, 2)
		appName, path := rest[0], rest[1]
		v := url.Values{}
		for _, kv := range rest[2:] {
			k, val, _ := strings.Cut(kv, "=")
			v.Set(k, val)
		}
		target := "/app/" + appName + path
		if cmd == "app" {
			if enc := v.Encode(); enc != "" {
				target += "?" + enc
			}
			fmt.Print(get(target))
		} else {
			fmt.Print(post(target, v, false))
		}
	case "audit":
		// Inspect your slice of the provider's audit trail; the server
		// reads transparently across its in-memory and spilled segments.
		v := url.Values{}
		for _, kv := range rest {
			k, val, ok := strings.Cut(kv, "=")
			if !ok || (k != "kind" && k != "since" && k != "limit") {
				usage()
			}
			v.Set(k, val)
		}
		target := "/audit"
		if enc := v.Encode(); enc != "" {
			target += "?" + enc
		}
		fmt.Print(get(target))
	case "search":
		q := ""
		if len(rest) > 0 {
			q = rest[0]
		}
		fmt.Print(get("/registry/search?q=" + url.QueryEscape(q)))
	case "fed":
		need(rest, 1)
		if rest[0] != "status" {
			usage()
		}
		fedStatus()
	default:
		usage()
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: w5ctl [-server URL] <command>
commands:
  signup <user> <pass>         create an account (logs in)
  login <user> <pass>          log in
  logout | whoami
  enable <app>                 adopt an app ("check the box")
  grant-write <app>            let an app write your data
  declass <policy> [k=v...]    authorize a declassifier
                               (owner-only|public|friend-list|group|chameleon-friends)
  app  <app> <path> [k=v...]   GET an app route
  post <app> <path> [k=v...]   POST to an app route
  audit [kind=K] [since=N] [limit=N]
                               inspect your audit trail
  search [query]               code search
  fed status                   per-peer federation sync health`)
	os.Exit(2)
}

func cookiePath() string {
	home, err := os.UserHomeDir()
	if err != nil {
		home = "."
	}
	return filepath.Join(home, ".w5ctl-cookie")
}

func client() *http.Client { return &http.Client{} }

func addCookie(req *http.Request) {
	if tok, err := os.ReadFile(cookiePath()); err == nil {
		req.AddCookie(&http.Cookie{Name: gateway.SessionCookie, Value: strings.TrimSpace(string(tok))})
	}
}

func saveCookie(resp *http.Response) {
	for _, c := range resp.Cookies() {
		if c.Name == gateway.SessionCookie {
			os.WriteFile(cookiePath(), []byte(c.Value), 0o600)
		}
	}
}

func get(path string) string {
	req, err := http.NewRequest("GET", server+path, nil)
	check(err)
	addCookie(req)
	resp, err := client().Do(req)
	check(err)
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		fmt.Fprintf(os.Stderr, "w5ctl: HTTP %d\n", resp.StatusCode)
	}
	return string(b)
}

func post(path string, form url.Values, save bool) string {
	req, err := http.NewRequest("POST", server+path, strings.NewReader(form.Encode()))
	check(err)
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	addCookie(req)
	resp, err := client().Do(req)
	check(err)
	defer resp.Body.Close()
	if save {
		saveCookie(resp)
	}
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		fmt.Fprintf(os.Stderr, "w5ctl: HTTP %d\n", resp.StatusCode)
	}
	return string(b)
}

// fedStatus renders /fed/status: one line per peer with breaker state
// and staleness, so an operator can see at a glance whether local data
// is current or how far behind an unreachable peer has left it.
func fedStatus() {
	body := get("/fed/status")
	var health []federation.PeerHealth
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		fmt.Print(body) // non-JSON: the server's error text says why
		return
	}
	if len(health) == 0 {
		fmt.Println("no federation peers configured")
		return
	}
	for _, h := range health {
		fresh := "never synced"
		if !h.LastSuccess.IsZero() {
			fresh = fmt.Sprintf("synced %s ago", time.Since(h.LastSuccess).Round(time.Second))
		}
		fmt.Printf("%s  breaker=%s  failures=%d  rounds=%d  applied=%d  %s\n",
			h.Peer, h.Breaker, h.ConsecutiveFailures, h.Rounds, h.TotalApplied, fresh)
		if h.LastError != "" {
			fmt.Printf("  last error: %s\n", h.LastError)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "w5ctl:", err)
		os.Exit(1)
	}
}
