// Command w5asm assembles W5 Assembly source into a module blob, or
// disassembles a blob back into auditable source.
//
// Usage:
//
//	w5asm build  prog.w5asm prog.w5vm    # assemble (app syscall ABI)
//	w5asm audit  prog.w5vm               # print listing + module hash
//
// The "audit" output is what a user reads before pinning the hash —
// reassembling the listing reproduces the module bit-for-bit.
package main

import (
	"fmt"
	"os"

	"w5/internal/core"
	"w5/internal/declass"
	"w5/internal/wvm"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		if len(os.Args) != 4 {
			usage()
		}
		src, err := os.ReadFile(os.Args[2])
		check(err)
		// Accept both the app ABI and the declassifier ABI names.
		names := map[string]uint16{}
		for k, v := range core.AppSyscallNames {
			names[k] = v
		}
		for k, v := range declass.WVMSyscallNames {
			names["declass_"+k] = v
		}
		prog, err := wvm.Assemble(string(src), names)
		check(err)
		check(os.WriteFile(os.Args[3], prog.Marshal(), 0o644))
		fmt.Printf("wrote %s (%d bytes)\nhash %s\n", os.Args[3], len(prog.Marshal()), prog.Hash())
	case "audit":
		blob, err := os.ReadFile(os.Args[2])
		check(err)
		prog, err := wvm.Unmarshal(blob)
		check(err)
		fmt.Printf("; module hash %s\n%s", prog.Hash(), wvm.Disassemble(prog))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: w5asm build <src> <out> | w5asm audit <module>")
	os.Exit(2)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "w5asm:", err)
		os.Exit(1)
	}
}
