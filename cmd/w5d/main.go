// Command w5d runs a W5 provider: the meta-application platform with
// its HTTP front-end, all stock applications installed, and (optionally)
// a federation export endpoint.
//
// Usage:
//
//	w5d [-addr :8055] [-name w5] [-peer name=secret ...]
//	    [-audit-spill-dir /var/w5/audit] [-audit-ring-segments 64]
//	    [-audit-retain-segments N] [-audit-retain-age 720h]
//	    [-login-rate 1] [-login-burst 10]
//
// Then, with any HTTP client:
//
//	curl -X POST -d 'user=bob&password=pw' http://localhost:8055/signup
//	curl -b cookies.txt -c cookies.txt ... /grants/enable?app=social
//	curl .../app/social/profile?owner=bob
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"w5/internal/apps"
	"w5/internal/audit"
	"w5/internal/core"
	"w5/internal/federation"
	"w5/internal/gateway"
)

type peerList map[string]string

func (p peerList) String() string { return fmt.Sprint(map[string]string(p)) }
func (p peerList) Set(v string) error {
	name, secret, ok := strings.Cut(v, "=")
	if !ok || name == "" || secret == "" {
		return fmt.Errorf("peer must be name=secret")
	}
	p[name] = secret
	return nil
}

func main() {
	addr := flag.String("addr", ":8055", "listen address")
	name := flag.String("name", "w5", "provider name")
	auditStderr := flag.Bool("audit", false, "mirror the audit log to stderr")
	auditSpillDir := flag.String("audit-spill-dir", "",
		"spill sealed audit segments to this directory (empty = in-memory only)")
	auditSegment := flag.Int("audit-segment-events", 0,
		"audit events per segment (0 = default, 1024)")
	auditRing := flag.Int("audit-ring-segments", -1,
		"sealed audit segments kept in memory (0 = unbounded; -1 = auto: 64 with a spill dir, else unbounded)")
	auditRetainSegs := flag.Int("audit-retain-segments", 0,
		"spilled audit segments kept on disk (0 = unlimited)")
	auditRetainAge := flag.Duration("audit-retain-age", 0,
		"maximum age of spilled audit segments (0 = unlimited)")
	storeShards := flag.Int("store-shards", 0,
		"labeled-store lock stripes (0 = default; 1 = single-lock baseline)")
	sessionTTL := flag.Duration("session-ttl", 0,
		"login lifetime (0 = gateway default, 24h)")
	loginRate := flag.Float64("login-rate", 1,
		"per-source login/signup attempts per second (0 = unlimited)")
	loginBurst := flag.Float64("login-burst", 10,
		"per-source login/signup attempt burst (0 = unlimited)")
	peers := peerList{}
	flag.Var(peers, "peer", "federation peer as name=secret (repeatable)")
	flag.Parse()

	// Ring "auto": the trail must never be silently incomplete, so the
	// ring is only bounded when evicted segments have somewhere to go.
	// An explicit bound without a spill dir is honored but warned
	// about — it is a deliberate trade of history for memory.
	ring := *auditRing
	if ring < 0 {
		ring = 0
		if *auditSpillDir != "" {
			ring = 64
		}
	} else if ring > 0 && *auditSpillDir == "" {
		segSize := *auditSegment
		if segSize <= 0 {
			segSize = audit.DefaultSegmentSize
		}
		log.Printf("warning: -audit-ring-segments %d without -audit-spill-dir: "+
			"audit events beyond the newest ~%d will be dropped", ring, (ring+1)*segSize)
	}

	// Open the audit log explicitly so a misconfigured spill directory
	// fails startup loudly instead of silently degrading to memory-only.
	alog, err := audit.Open(audit.Options{
		SegmentSize:    *auditSegment,
		RingSegments:   ring,
		SpillDir:       *auditSpillDir,
		RetainSegments: *auditRetainSegs,
		RetainAge:      *auditRetainAge,
	})
	if err != nil {
		log.Fatal(err)
	}

	p := core.NewProvider(core.Config{
		Name: *name, Enforce: true, StoreShards: *storeShards, AuditLog: alog,
	})
	if *auditStderr {
		p.Log.SetSink(os.Stderr)
	}
	for _, app := range []core.App{
		apps.Social{}, apps.PhotoShare{}, apps.Blog{},
		apps.Recommend{}, apps.Dating{}, apps.Mashup{},
	} {
		p.InstallApp(app)
	}
	gw := gateway.New(p, gateway.Options{
		FilterHTML: true,
		SessionTTL: *sessionTTL,
		LoginRate:  *loginRate,
		LoginBurst: *loginBurst,
	})
	if len(peers) > 0 {
		federation.MountExport(p, gw.Mux(), peers)
		log.Printf("federation export enabled for peers: %s", peers)
	}
	log.Printf("W5 provider %q serving on %s (apps: %s)",
		*name, *addr, strings.Join(p.AppNames(), ", "))
	// ConnContext plants the gateway's per-connection session cache, so
	// keep-alive requests skip cookie->session map resolution entirely.
	srv := &http.Server{Addr: *addr, Handler: gw, ConnContext: gw.ConnContext}

	// The audit log's flush-on-exit must actually run: log.Fatal and
	// unhandled signals both skip defers, so shutdown is explicit —
	// on SIGINT/SIGTERM (or a listener error) seal and spill whatever
	// is outstanding before the process goes away.
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		alog.Close()
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("%v: flushing audit log and shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(ctx)
		cancel()
		if err := alog.Close(); err != nil {
			log.Printf("audit close: %v", err)
		}
	}
}
