// Command w5d runs a W5 provider: the meta-application platform with
// its HTTP front-end, all stock applications installed, and (optionally)
// a federation export endpoint.
//
// Usage:
//
//	w5d [-addr :8055] [-name w5] [-peer name=secret ...]
//
// Then, with any HTTP client:
//
//	curl -X POST -d 'user=bob&password=pw' http://localhost:8055/signup
//	curl -b cookies.txt -c cookies.txt ... /grants/enable?app=social
//	curl .../app/social/profile?owner=bob
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"w5/internal/apps"
	"w5/internal/core"
	"w5/internal/federation"
	"w5/internal/gateway"
)

type peerList map[string]string

func (p peerList) String() string { return fmt.Sprint(map[string]string(p)) }
func (p peerList) Set(v string) error {
	name, secret, ok := strings.Cut(v, "=")
	if !ok || name == "" || secret == "" {
		return fmt.Errorf("peer must be name=secret")
	}
	p[name] = secret
	return nil
}

func main() {
	addr := flag.String("addr", ":8055", "listen address")
	name := flag.String("name", "w5", "provider name")
	auditStderr := flag.Bool("audit", false, "mirror the audit log to stderr")
	storeShards := flag.Int("store-shards", 0,
		"labeled-store lock stripes (0 = default; 1 = single-lock baseline)")
	sessionTTL := flag.Duration("session-ttl", 0,
		"login lifetime (0 = gateway default, 24h)")
	peers := peerList{}
	flag.Var(peers, "peer", "federation peer as name=secret (repeatable)")
	flag.Parse()

	p := core.NewProvider(core.Config{Name: *name, Enforce: true, StoreShards: *storeShards})
	if *auditStderr {
		p.Log.SetSink(os.Stderr)
	}
	for _, app := range []core.App{
		apps.Social{}, apps.PhotoShare{}, apps.Blog{},
		apps.Recommend{}, apps.Dating{}, apps.Mashup{},
	} {
		p.InstallApp(app)
	}
	gw := gateway.New(p, gateway.Options{FilterHTML: true, SessionTTL: *sessionTTL})
	if len(peers) > 0 {
		federation.MountExport(p, gw.Mux(), peers)
		log.Printf("federation export enabled for peers: %s", peers)
	}
	log.Printf("W5 provider %q serving on %s (apps: %s)",
		*name, *addr, strings.Join(p.AppNames(), ", "))
	// ConnContext plants the gateway's per-connection session cache, so
	// keep-alive requests skip cookie->session map resolution entirely.
	srv := &http.Server{Addr: *addr, Handler: gw, ConnContext: gw.ConnContext}
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
