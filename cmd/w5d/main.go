// Command w5d runs a W5 provider: the meta-application platform with
// its HTTP front-end, all stock applications installed, and (optionally)
// federation — both the export endpoint and the supervised sync daemon.
//
// Usage:
//
//	w5d [-addr :8055] [-name w5]
//	    [-peer name=secret | -peer name=url=secretfile ...]
//	    [-fed-state-dir /var/w5/fed] [-fed-interval 1s]
//	    [-audit-spill-dir /var/w5/audit] [-audit-ring-segments 64]
//	    [-audit-retain-segments N] [-audit-retain-age 720h]
//	    [-login-rate 1] [-login-burst 10]
//	    [-dev-seed 128] [-disable-quotas]
//
// -dev-seed provisions a deterministic load-test population (see
// internal/loadgen.SeedProvider); pair it with -disable-quotas and
// -login-rate 0 when driving the daemon with cmd/w5load.
//
// A two-field -peer (name=secret) only serves /fed/export to that peer.
// A three-field -peer (name=url=secretfile) additionally PULLS from the
// peer's gateway at url, presenting the secret read from secretfile —
// one shared secret per pairing, used in both directions. Sync health
// is served at /fed/status (see `w5ctl fed status`).
//
// Then, with any HTTP client:
//
//	curl -X POST -d 'user=bob&password=pw' http://localhost:8055/signup
//	curl -b cookies.txt -c cookies.txt ... /grants/enable?app=social
//	curl .../app/social/profile?owner=bob
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"w5/internal/apps"
	"w5/internal/audit"
	"w5/internal/core"
	"w5/internal/declass"
	"w5/internal/federation"
	"w5/internal/gateway"
	"w5/internal/loadgen"
)

// peerSpec is one -peer flag: always an export grant, and when URL is
// set, also a sync source.
type peerSpec struct {
	name, url, secret string
}

type peerList struct{ specs []peerSpec }

func (p *peerList) String() string {
	names := make([]string, len(p.specs))
	for i, s := range p.specs {
		names[i] = s.name
	}
	return strings.Join(names, ",")
}

func (p *peerList) Set(v string) error {
	parts := strings.SplitN(v, "=", 3)
	switch len(parts) {
	case 2: // legacy export-only form: name=secret
		if parts[0] == "" || parts[1] == "" {
			return fmt.Errorf("peer must be name=secret or name=url=secretfile")
		}
		p.specs = append(p.specs, peerSpec{name: parts[0], secret: parts[1]})
	case 3: // federated form: name=url=secretfile (secret kept out of argv)
		if parts[0] == "" || parts[1] == "" || parts[2] == "" {
			return fmt.Errorf("peer must be name=secret or name=url=secretfile")
		}
		raw, err := os.ReadFile(parts[2])
		if err != nil {
			return fmt.Errorf("peer %s: reading secret: %w", parts[0], err)
		}
		secret := strings.TrimSpace(string(raw))
		if secret == "" {
			return fmt.Errorf("peer %s: secret file %s is empty", parts[0], parts[2])
		}
		p.specs = append(p.specs, peerSpec{name: parts[0], url: parts[1], secret: secret})
	default:
		return fmt.Errorf("peer must be name=secret or name=url=secretfile")
	}
	return nil
}

func main() {
	addr := flag.String("addr", ":8055", "listen address")
	name := flag.String("name", "w5", "provider name")
	auditStderr := flag.Bool("audit", false, "mirror the audit log to stderr")
	auditSpillDir := flag.String("audit-spill-dir", "",
		"spill sealed audit segments to this directory (empty = in-memory only)")
	auditSegment := flag.Int("audit-segment-events", 0,
		"audit events per segment (0 = default, 1024)")
	auditRing := flag.Int("audit-ring-segments", -1,
		"sealed audit segments kept in memory (0 = unbounded; -1 = auto: 64 with a spill dir, else unbounded)")
	auditRetainSegs := flag.Int("audit-retain-segments", 0,
		"spilled audit segments kept on disk (0 = unlimited)")
	auditRetainAge := flag.Duration("audit-retain-age", 0,
		"maximum age of spilled audit segments (0 = unlimited)")
	storeShards := flag.Int("store-shards", 0,
		"labeled-store lock stripes (0 = default; 1 = single-lock baseline)")
	devSeed := flag.Int("dev-seed", 0,
		"provision N deterministic dev accounts (u0000.., password \"pw\") for load testing; 0 = off")
	disableQuotas := flag.Bool("disable-quotas", false,
		"remove per-app resource limits (load testing only: an open-loop run exhausts cumulative budgets by design)")
	sessionTTL := flag.Duration("session-ttl", 0,
		"login lifetime (0 = gateway default, 24h)")
	sanCacheEntries := flag.Int("sanitize-cache-entries", 1024,
		"sanitized-output cache entry cap (0 = disable the cache)")
	sanCacheBytes := flag.Int64("sanitize-cache-bytes", 16<<20,
		"sanitized-output cache byte cap (0 = disable the cache)")
	declassCacheEntries := flag.Int("declass-cache-entries", declass.DefaultVerdictCacheEntries,
		"declassifier verdict cache entry cap (0 = consult policies on every export)")
	loginRate := flag.Float64("login-rate", 1,
		"per-source login/signup attempts per second (0 = unlimited)")
	loginBurst := flag.Float64("login-burst", 10,
		"per-source login/signup attempt burst (0 = unlimited)")
	fedStateDir := flag.String("fed-state-dir", "",
		"persist federation sync cursors here (empty = in-memory only)")
	fedInterval := flag.Duration("fed-interval", time.Second,
		"pause between federation sync rounds per peer")
	peers := &peerList{}
	flag.Var(peers, "peer",
		"federation peer as name=secret (export only) or name=url=secretfile (export + sync); repeatable")
	flag.Parse()

	// Ring "auto": the trail must never be silently incomplete, so the
	// ring is only bounded when evicted segments have somewhere to go.
	// An explicit bound without a spill dir is honored but warned
	// about — it is a deliberate trade of history for memory.
	ring := *auditRing
	if ring < 0 {
		ring = 0
		if *auditSpillDir != "" {
			ring = 64
		}
	} else if ring > 0 && *auditSpillDir == "" {
		segSize := *auditSegment
		if segSize <= 0 {
			segSize = audit.DefaultSegmentSize
		}
		log.Printf("warning: -audit-ring-segments %d without -audit-spill-dir: "+
			"audit events beyond the newest ~%d will be dropped", ring, (ring+1)*segSize)
	}

	// Open the audit log explicitly so a misconfigured spill directory
	// fails startup loudly instead of silently degrading to memory-only.
	alog, err := audit.Open(audit.Options{
		SegmentSize:    *auditSegment,
		RingSegments:   ring,
		SpillDir:       *auditSpillDir,
		RetainSegments: *auditRetainSegs,
		RetainAge:      *auditRetainAge,
	})
	if err != nil {
		log.Fatal(err)
	}

	p := core.NewProvider(core.Config{
		Name: *name, Enforce: true, StoreShards: *storeShards, AuditLog: alog,
		DisableQuotas: *disableQuotas,
	})
	if *auditStderr {
		p.Log.SetSink(os.Stderr)
	}
	p.Declass.SetVerdictCacheEntries(*declassCacheEntries)
	for _, app := range []core.App{
		apps.Social{}, apps.PhotoShare{}, apps.Blog{},
		apps.Recommend{}, apps.Dating{}, apps.Mashup{},
	} {
		p.InstallApp(app)
	}
	// WVM twins: the stock apps reassembled from embedded w5asm and run
	// on the metered VM, published through the registry like any upload.
	if err := apps.InstallWVMTwins(p); err != nil {
		alog.Close()
		log.Fatal(err)
	}
	if *devSeed > 0 {
		// Seed 1 always: the point is a population w5load's default trace
		// can target bit-for-bit across daemon restarts.
		start := time.Now()
		if err := loadgen.SeedProvider(p, *devSeed, 1); err != nil {
			alog.Close()
			log.Fatal(err)
		}
		log.Printf("dev-seeded %d accounts in %s", *devSeed, time.Since(start).Round(time.Millisecond))
	}
	gw := gateway.New(p, gateway.Options{
		FilterHTML:           true,
		SessionTTL:           *sessionTTL,
		LoginRate:            *loginRate,
		LoginBurst:           *loginBurst,
		SanitizeCacheEntries: *sanCacheEntries,
		SanitizeCacheBytes:   *sanCacheBytes,
	})
	exportPeers := make(map[string]string)
	var syncPeers []federation.PeerConfig
	for _, ps := range peers.specs {
		exportPeers[ps.name] = ps.secret
		if ps.url != "" {
			syncPeers = append(syncPeers, federation.PeerConfig{
				Name: ps.name, BaseURL: ps.url, Secret: ps.secret,
			})
		}
	}
	if len(exportPeers) > 0 {
		federation.MountExport(p, gw.Mux(), exportPeers)
		log.Printf("federation export enabled for peers: %s", peers)
	}
	var syncer *federation.Syncer
	if len(syncPeers) > 0 {
		syncer = federation.NewSyncer(federation.SyncerConfig{
			Local:    p,
			Peers:    syncPeers,
			Interval: *fedInterval,
			StateDir: *fedStateDir,
		})
		syncer.Start()
		gw.SetFedStats(func() any { return syncer.Stats() })
		log.Printf("federation sync pulling from %d peers every %s", len(syncPeers), *fedInterval)
	}

	// Listen explicitly so ":0" resolves before the "serving on" line —
	// the multi-process tests parse the actual address from it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		alog.Close()
		log.Fatal(err)
	}
	log.Printf("W5 provider %q serving on %s (apps: %s)",
		*name, ln.Addr(), strings.Join(p.AppNames(), ", "))
	// ConnContext plants the gateway's per-connection session cache, so
	// keep-alive requests skip cookie->session map resolution entirely.
	srv := &http.Server{Handler: gw, ConnContext: gw.ConnContext}

	// The audit log's flush-on-exit must actually run: log.Fatal and
	// unhandled signals both skip defers, so shutdown is explicit —
	// on SIGINT/SIGTERM (or a listener error) stop the sync loops, then
	// seal and spill whatever is outstanding before the process goes
	// away.
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	shutdown := func() {
		if syncer != nil {
			syncer.Close()
		}
		if err := alog.Close(); err != nil {
			log.Printf("audit close: %v", err)
		}
	}
	select {
	case err := <-errCh:
		shutdown()
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("%v: flushing audit log and shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(ctx)
		cancel()
		shutdown()
	}
}
