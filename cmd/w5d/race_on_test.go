//go:build race

package main

// When the test binary itself is race-instrumented, build the spawned
// daemons with -race too, so the multi-process test exercises the
// daemon's concurrency under the detector.
func init() { raceEnabled = true }
