package main

// Multi-process federation test: two real w5d daemons on loopback,
// pulling from each other through fault-injecting proxies. Asserts
// convergence through injected faults, observable degradation (breaker
// opens, stale local reads keep working), recovery, and a
// kill-and-restart cycle that self-heals from the durable sync state.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/cookiejar"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"w5/internal/faultnet"
	"w5/internal/federation"
)

// raceEnabled is set by race_on_test.go when this test binary is
// race-instrumented; the spawned daemons are then built with -race too.
var raceEnabled bool

func buildW5d(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "w5d")
	args := []string{"build"}
	if raceEnabled {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, ".")
	cmd := exec.Command("go", args...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freePort reserves an ephemeral port and releases it for the daemon.
// The tiny reuse race is acceptable in a test; it lets the fault
// proxies know each daemon's URL before the daemon starts.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// daemon is one spawned w5d process plus an authenticated HTTP client.
type daemon struct {
	t      *testing.T
	name   string
	url    string
	cmd    *exec.Cmd
	stderr *bytes.Buffer
	client *http.Client
}

func startDaemon(t *testing.T, bin, name string, port int, extra ...string) *daemon {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:" + strconv.Itoa(port),
		"-name", name,
		"-fed-interval", "50ms",
	}, extra...)
	cmd := exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	jar, _ := cookiejar.New(nil)
	d := &daemon{
		t: t, name: name, cmd: cmd, stderr: &stderr,
		url:    "http://127.0.0.1:" + strconv.Itoa(port),
		client: &http.Client{Jar: jar, Timeout: 5 * time.Second},
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("--- %s stderr ---\n%s", name, stderr.String())
		}
		cmd.Process.Kill()
		cmd.Wait()
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if resp, err := d.client.Get(d.url + "/"); err == nil {
			resp.Body.Close()
			return d
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s did not become ready\n%s", name, stderr.String())
	return nil
}

// stop sends SIGTERM and requires a clean (code 0) exit — the daemon's
// explicit shutdown path must stop the sync loops and flush the audit
// log without panicking or hanging.
func (d *daemon) stop() {
	d.t.Helper()
	d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			d.t.Fatalf("%s exited uncleanly: %v\n%s", d.name, err, d.stderr.String())
		}
	case <-time.After(15 * time.Second):
		d.cmd.Process.Kill()
		d.t.Fatalf("%s did not exit on SIGTERM", d.name)
	}
}

func (d *daemon) post(path string, form url.Values) (int, string) {
	d.t.Helper()
	resp, err := d.client.PostForm(d.url+path, form)
	if err != nil {
		d.t.Fatalf("%s POST %s: %v", d.name, path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func (d *daemon) get(path string) (int, string) {
	d.t.Helper()
	resp, err := d.client.Get(d.url + path)
	if err != nil {
		d.t.Fatalf("%s GET %s: %v", d.name, path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// setupBob creates bob, enables the social app, grants it write
// access, and authorizes federation export to the named peer.
func (d *daemon) setupBob(peer string) {
	d.t.Helper()
	if code, body := d.post("/signup", url.Values{"user": {"bob"}, "password": {"pw"}}); code != 200 {
		d.t.Fatalf("%s signup: %d %s", d.name, code, body)
	}
	if code, body := d.post("/grants/enable", url.Values{"app": {"social"}}); code != 200 {
		d.t.Fatalf("%s enable: %d %s", d.name, code, body)
	}
	if code, body := d.post("/grants/write", url.Values{"app": {"social"}}); code != 200 {
		d.t.Fatalf("%s grant-write: %d %s", d.name, code, body)
	}
	if code, body := d.post("/grants/declass", url.Values{
		"policy":  {"group"},
		"group":   {"federation-" + peer},
		"members": {"peer:" + peer},
	}); code != 200 {
		d.t.Fatalf("%s declass: %d %s", d.name, code, body)
	}
}

func (d *daemon) writeProfile(body string) {
	d.t.Helper()
	if code, resp := d.post("/app/social/profile", url.Values{
		"owner": {"bob"}, "body": {body},
	}); code != 200 {
		d.t.Fatalf("%s write profile: %d %s", d.name, code, resp)
	}
}

func (d *daemon) profile() (string, bool) {
	code, body := d.get("/app/social/profile?owner=bob")
	return body, code == 200
}

func (d *daemon) fedStatus() []federation.PeerHealth {
	d.t.Helper()
	code, body := d.get("/fed/status")
	if code != 200 {
		d.t.Fatalf("%s /fed/status: %d %s", d.name, code, body)
	}
	var health []federation.PeerHealth
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		d.t.Fatalf("%s /fed/status: %v (%q)", d.name, err, body)
	}
	return health
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestTwoDaemonsConvergeThroughFaultsAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons")
	}
	bin := buildW5d(t)

	secretFile := filepath.Join(t.TempDir(), "pair.secret")
	if err := os.WriteFile(secretFile, []byte("s3cret-pair\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	stateA, stateB := t.TempDir(), t.TempDir()
	portA, portB := freePort(t), freePort(t)

	// Each daemon pulls from the other THROUGH a fault proxy owned by
	// the test, so the test can stage an outage on either direction.
	planA, planB := &faultnet.Plan{}, &faultnet.Plan{}
	proxyA, err := faultnet.NewProxy(fmt.Sprintf("http://127.0.0.1:%d", portA), planA)
	if err != nil {
		t.Fatal(err)
	}
	defer proxyA.Close()
	proxyB, err := faultnet.NewProxy(fmt.Sprintf("http://127.0.0.1:%d", portB), planB)
	if err != nil {
		t.Fatal(err)
	}
	defer proxyB.Close()

	argsA := []string{"-fed-state-dir", stateA, "-peer", "providerB=" + proxyB.URL() + "=" + secretFile}
	argsB := []string{"-fed-state-dir", stateB, "-peer", "providerA=" + proxyA.URL() + "=" + secretFile}
	A := startDaemon(t, bin, "providerA", portA, argsA...)
	B := startDaemon(t, bin, "providerB", portB, argsB...)

	A.setupBob("providerB")
	B.setupBob("providerA")

	// Phase 1: clean convergence A -> B.
	A.writeProfile("hello from A")
	waitUntil(t, 20*time.Second, "initial convergence", func() bool {
		body, ok := B.profile()
		return ok && strings.Contains(body, "hello from A")
	})

	// Phase 2: outage. The next 12 pull requests from B to A fail with
	// 503s: B's retries burn out, its breaker opens (observable via
	// /fed/status), and B keeps serving the stale profile locally.
	planA.Extend(12, faultnet.Status)
	A.writeProfile("written during outage")
	waitUntil(t, 30*time.Second, "breaker to open on B", func() bool {
		st := B.fedStatus()
		return len(st) == 1 && st[0].Breaker == "open" && st[0].ConsecutiveFailures >= 3
	})
	if body, ok := B.profile(); !ok || !strings.Contains(body, "hello from A") {
		t.Fatalf("stale read during outage failed: %q", body)
	}

	// Phase 3: recovery. The script runs dry, a half-open probe
	// succeeds, and the update written during the outage converges.
	waitUntil(t, 30*time.Second, "recovery on B", func() bool {
		st := B.fedStatus()
		body, ok := B.profile()
		return len(st) == 1 && st[0].Breaker == "closed" &&
			st[0].ConsecutiveFailures == 0 &&
			ok && strings.Contains(body, "written during outage")
	})

	// Phase 4: kill and restart B. Its store is in-memory (gone), but
	// the durable sync state survives; the state loader must notice the
	// applied files are missing and re-pull in full rather than
	// trusting the cursor into silent data loss.
	B.stop()
	B = startDaemon(t, bin, "providerB", portB, argsB...)
	B.setupBob("providerA")
	waitUntil(t, 30*time.Second, "post-restart re-convergence", func() bool {
		body, ok := B.profile()
		return ok && strings.Contains(body, "written during outage")
	})
	st := B.fedStatus()
	if len(st) != 1 || st[0].LastSuccess.IsZero() || st[0].Breaker != "closed" {
		t.Errorf("post-restart health: %+v", st)
	}

	// Clean shutdown, both daemons.
	B.stop()
	A.stop()
}
