// Command w5bench runs the full W5 evaluation suite and prints every
// experiment table (E1–E10). See DESIGN.md §3 for the experiment index
// and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	w5bench            # run everything
//	w5bench E2 E7      # run selected experiments
package main

import (
	"fmt"
	"os"
	"strings"

	"w5/internal/experiments"
)

func main() {
	want := map[string]bool{}
	for _, a := range os.Args[1:] {
		want[strings.ToUpper(a)] = true
	}
	fmt.Println("W5 evaluation suite — World Wide Web Without Walls (HotNets 2007)")
	fmt.Println(strings.Repeat("=", 70))
	for _, t := range experiments.All() {
		base := strings.TrimRight(t.ID, "ab")
		if len(want) > 0 && !want[t.ID] && !want[base] {
			continue
		}
		fmt.Println()
		fmt.Println(t.Render())
	}
}
