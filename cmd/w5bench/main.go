// Command w5bench runs the full W5 evaluation suite and prints every
// experiment table (E1–E10). See DESIGN.md §3 for the experiment index
// and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	w5bench                                  # run everything
//	w5bench E2 E7                            # run selected experiments
//	w5bench -requestpath BENCH_requestpath.json
//	                                         # measure the invoke→export
//	                                         # hot path, the store hot
//	                                         # path, the HTTP-level
//	                                         # gateway request path, and
//	                                         # the labeled tuple store,
//	                                         # and write a JSON record
//	                                         # for trend tracking
//	w5bench -requestpath /tmp/new.json -compare BENCH_requestpath.json
//	                                         # the CI regression gate:
//	                                         # measure, then fail (exit 1)
//	                                         # if ns/op, allocs/op, or the
//	                                         # population-scaling ratio
//	                                         # regressed >25% vs baseline
//	w5bench -federation BENCH_federation.json
//	                                         # measure the federation
//	                                         # sync path (steady-state
//	                                         # incremental, single-update
//	                                         # propagation, full healing
//	                                         # pull) over loopback HTTP
//	w5bench -federation /tmp/new.json -compare BENCH_federation.json
//	                                         # the federation regression
//	                                         # gate: same rules, pinning
//	                                         # the O(changed files)
//	                                         # incremental-sync contract
//	w5bench -capacity BENCH_capacity.json    # measure open-loop capacity
//	                                         # (cmd/w5load methodology:
//	                                         # fixed-rate window plus
//	                                         # saturation ladder) against
//	                                         # an in-process fixture, or
//	                                         # with -capacity-addr against
//	                                         # a running seeded daemon
//	w5bench -capacity /tmp/new.json -compare BENCH_capacity.json
//	                                         # the capacity gate: achieved
//	                                         # req/s bounds from BELOW,
//	                                         # latency percentiles and
//	                                         # error rate from above
//
// The -requestpath mode exists so successive PRs can compare the
// request-path cost (ns/op, allocs/op, and the population-scaling
// ratio) against a committed machine-readable baseline instead of
// eyeballing benchmark logs; -compare turns that comparison into a
// hard gate CI can enforce.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"w5/internal/benchutil"
	"w5/internal/experiments"
	"w5/internal/loadgen"
)

// compareTolerance is the allowed relative regression before the gate
// fails: generous enough to absorb runner-to-runner noise, tight enough
// that losing an optimization (O(users) rescans, per-access path
// splitting, lock contention) cannot slip through.
const compareTolerance = 0.25

func main() {
	requestPath := flag.String("requestpath", "",
		"measure the invoke→export request path and write JSON results to this file")
	federation := flag.String("federation", "",
		"measure the federation sync path and write JSON results to this file")
	capacity := flag.String("capacity", "",
		"measure open-loop capacity (cmd/w5load methodology) and write JSON results to this file")
	capacityAddr := flag.String("capacity-addr", "",
		"with -capacity, drive this already-running seeded daemon instead of an in-process fixture")
	capacityUsers := flag.Int("capacity-users", 128, "with -capacity, seeded population size")
	capacityConns := flag.Int("capacity-conns", 4, "with -capacity, concurrent connections")
	capacityWindow := flag.Duration("capacity-window", 2*time.Second, "with -capacity, per-rate window")
	compare := flag.String("compare", "",
		"baseline JSON to gate against; with -requestpath, -federation or -capacity, exits 1 on regression past tolerance")
	summary := flag.String("summary", "",
		"with -compare, append a markdown comparison table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	flag.Parse()

	modes := 0
	for _, m := range []string{*requestPath, *federation, *capacity} {
		if m != "" {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "w5bench: -requestpath, -federation and -capacity are separate runs; pick one")
		os.Exit(2)
	}
	if *compare != "" && modes == 0 {
		fmt.Fprintln(os.Stderr, "w5bench: -compare requires -requestpath, -federation or -capacity (nothing was measured)")
		os.Exit(2)
	}

	if *capacity != "" {
		report, err := loadgen.MeasureCapacity(loadgen.CapacityOptions{
			Addr:   *capacityAddr,
			Users:  *capacityUsers,
			Conns:  *capacityConns,
			Seed:   1,
			Window: *capacityWindow,
		}, func(name string, r *loadgen.Result) {
			fmt.Printf("%-24s offered %7.0f req/s  achieved %7.0f req/s  err %5.2f%%  p99 %v\n",
				name, r.OfferedRPS, r.AchievedRPS, r.ErrorRate*100, r.P99)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "w5bench:", err)
			os.Exit(1)
		}
		if err := report.Write(*capacity); err != nil {
			fmt.Fprintln(os.Stderr, "w5bench:", err)
			os.Exit(1)
		}
		if *compare != "" {
			gate(*compare, *summary, report, "open-loop capacity")
		}
		return
	}

	if *federation != "" {
		report, err := benchutil.MeasureFederation(func(r benchutil.Result) {
			fmt.Printf("%-40s %10.0f ns/op %6d B/op %4d allocs/op\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "w5bench:", err)
			os.Exit(1)
		}
		if err := report.Write(*federation); err != nil {
			fmt.Fprintln(os.Stderr, "w5bench:", err)
			os.Exit(1)
		}
		if *compare != "" {
			gate(*compare, *summary, report, "federation sync")
		}
		return
	}

	if *requestPath != "" {
		report, err := benchutil.MeasureRequestPath(func(r benchutil.Result) {
			fmt.Printf("%-40s %10.0f ns/op %6d B/op %4d allocs/op\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "w5bench:", err)
			os.Exit(1)
		}
		fmt.Printf("scaling ratio (10k/100 users): %.2f\n", report.ScalingRatio10k)
		if err := report.Write(*requestPath); err != nil {
			fmt.Fprintln(os.Stderr, "w5bench:", err)
			os.Exit(1)
		}
		if *compare != "" {
			gate(*compare, *summary, report, "request path")
		}
		return
	}

	runExperiments(flag.Args())
}

// gate loads the baseline, writes the markdown summary, and exits 1
// with the violation list if the comparison fails — the shared tail of
// every -compare mode.
func gate(comparePath, summaryPath string, report benchutil.Report, what string) {
	baseline, err := benchutil.LoadReport(comparePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "w5bench: loading baseline:", err)
		os.Exit(1)
	}
	violations := benchutil.Compare(baseline, report, compareTolerance)
	writeSummary(summaryPath, baseline, report)
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "w5bench: %s regressed vs %s:\n", what, comparePath)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  -", v)
		}
		os.Exit(1)
	}
	fmt.Printf("no regression vs %s (tolerance %.0f%%)\n", comparePath, compareTolerance*100)
}

// writeSummary appends the comparison table to path (the
// $GITHUB_STEP_SUMMARY protocol: append, never truncate). Written on
// pass AND fail — a red gate is exactly when the table matters.
func writeSummary(path string, baseline, current benchutil.Report) {
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "w5bench: summary:", err)
		return
	}
	defer f.Close()
	if _, err := f.WriteString(benchutil.MarkdownCompareTable(baseline, current, compareTolerance) + "\n"); err != nil {
		fmt.Fprintln(os.Stderr, "w5bench: summary:", err)
	}
}

func runExperiments(args []string) {
	want := map[string]bool{}
	for _, a := range args {
		want[strings.ToUpper(a)] = true
	}
	fmt.Println("W5 evaluation suite — World Wide Web Without Walls (HotNets 2007)")
	fmt.Println(strings.Repeat("=", 70))
	for _, t := range experiments.All() {
		base := strings.TrimRight(t.ID, "ab")
		if len(want) > 0 && !want[t.ID] && !want[base] {
			continue
		}
		fmt.Println()
		fmt.Println(t.Render())
	}
}
