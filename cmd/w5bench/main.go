// Command w5bench runs the full W5 evaluation suite and prints every
// experiment table (E1–E10). See DESIGN.md §3 for the experiment index
// and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	w5bench                                  # run everything
//	w5bench E2 E7                            # run selected experiments
//	w5bench -requestpath BENCH_requestpath.json
//	                                         # measure the invoke→export
//	                                         # hot path, the store hot
//	                                         # path, the HTTP-level
//	                                         # gateway request path, and
//	                                         # the labeled tuple store,
//	                                         # and write a JSON record
//	                                         # for trend tracking
//	w5bench -requestpath /tmp/new.json -compare BENCH_requestpath.json
//	                                         # the CI regression gate:
//	                                         # measure, then fail (exit 1)
//	                                         # if ns/op, allocs/op, or the
//	                                         # population-scaling ratio
//	                                         # regressed >25% vs baseline
//	w5bench -federation BENCH_federation.json
//	                                         # measure the federation
//	                                         # sync path (steady-state
//	                                         # incremental, single-update
//	                                         # propagation, full healing
//	                                         # pull) over loopback HTTP
//	w5bench -federation /tmp/new.json -compare BENCH_federation.json
//	                                         # the federation regression
//	                                         # gate: same rules, pinning
//	                                         # the O(changed files)
//	                                         # incremental-sync contract
//
// The -requestpath mode exists so successive PRs can compare the
// request-path cost (ns/op, allocs/op, and the population-scaling
// ratio) against a committed machine-readable baseline instead of
// eyeballing benchmark logs; -compare turns that comparison into a
// hard gate CI can enforce.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"w5/internal/benchutil"
	"w5/internal/experiments"
)

// compareTolerance is the allowed relative regression before the gate
// fails: generous enough to absorb runner-to-runner noise, tight enough
// that losing an optimization (O(users) rescans, per-access path
// splitting, lock contention) cannot slip through.
const compareTolerance = 0.25

func main() {
	requestPath := flag.String("requestpath", "",
		"measure the invoke→export request path and write JSON results to this file")
	federation := flag.String("federation", "",
		"measure the federation sync path and write JSON results to this file")
	compare := flag.String("compare", "",
		"baseline JSON to gate against; with -requestpath or -federation, exits 1 on >25% regression")
	summary := flag.String("summary", "",
		"with -compare, append a markdown comparison table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	flag.Parse()

	if *requestPath != "" && *federation != "" {
		fmt.Fprintln(os.Stderr, "w5bench: -requestpath and -federation are separate runs; pick one")
		os.Exit(2)
	}
	if *compare != "" && *requestPath == "" && *federation == "" {
		fmt.Fprintln(os.Stderr, "w5bench: -compare requires -requestpath or -federation (nothing was measured)")
		os.Exit(2)
	}

	if *federation != "" {
		report, err := benchutil.MeasureFederation(func(r benchutil.Result) {
			fmt.Printf("%-40s %10.0f ns/op %6d B/op %4d allocs/op\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "w5bench:", err)
			os.Exit(1)
		}
		if err := report.Write(*federation); err != nil {
			fmt.Fprintln(os.Stderr, "w5bench:", err)
			os.Exit(1)
		}
		if *compare != "" {
			baseline, err := benchutil.LoadReport(*compare)
			if err != nil {
				fmt.Fprintln(os.Stderr, "w5bench: loading baseline:", err)
				os.Exit(1)
			}
			violations := benchutil.Compare(baseline, report, compareTolerance)
			writeSummary(*summary, baseline, report)
			if len(violations) > 0 {
				fmt.Fprintf(os.Stderr, "w5bench: federation sync regressed vs %s:\n", *compare)
				for _, v := range violations {
					fmt.Fprintln(os.Stderr, "  -", v)
				}
				os.Exit(1)
			}
			fmt.Printf("no regression vs %s (tolerance %.0f%%)\n", *compare, compareTolerance*100)
		}
		return
	}

	if *requestPath != "" {
		report, err := benchutil.MeasureRequestPath(func(r benchutil.Result) {
			fmt.Printf("%-40s %10.0f ns/op %6d B/op %4d allocs/op\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "w5bench:", err)
			os.Exit(1)
		}
		fmt.Printf("scaling ratio (10k/100 users): %.2f\n", report.ScalingRatio10k)
		if err := report.Write(*requestPath); err != nil {
			fmt.Fprintln(os.Stderr, "w5bench:", err)
			os.Exit(1)
		}
		if *compare != "" {
			baseline, err := benchutil.LoadReport(*compare)
			if err != nil {
				fmt.Fprintln(os.Stderr, "w5bench: loading baseline:", err)
				os.Exit(1)
			}
			violations := benchutil.Compare(baseline, report, compareTolerance)
			writeSummary(*summary, baseline, report)
			if len(violations) > 0 {
				fmt.Fprintf(os.Stderr, "w5bench: request path regressed vs %s:\n", *compare)
				for _, v := range violations {
					fmt.Fprintln(os.Stderr, "  -", v)
				}
				os.Exit(1)
			}
			fmt.Printf("no regression vs %s (tolerance %.0f%%)\n", *compare, compareTolerance*100)
		}
		return
	}

	runExperiments(flag.Args())
}

// writeSummary appends the comparison table to path (the
// $GITHUB_STEP_SUMMARY protocol: append, never truncate). Written on
// pass AND fail — a red gate is exactly when the table matters.
func writeSummary(path string, baseline, current benchutil.Report) {
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "w5bench: summary:", err)
		return
	}
	defer f.Close()
	if _, err := f.WriteString(benchutil.MarkdownCompareTable(baseline, current, compareTolerance) + "\n"); err != nil {
		fmt.Fprintln(os.Stderr, "w5bench: summary:", err)
	}
}

func runExperiments(args []string) {
	want := map[string]bool{}
	for _, a := range args {
		want[strings.ToUpper(a)] = true
	}
	fmt.Println("W5 evaluation suite — World Wide Web Without Walls (HotNets 2007)")
	fmt.Println(strings.Repeat("=", 70))
	for _, t := range experiments.All() {
		base := strings.TrimRight(t.ID, "ab")
		if len(want) > 0 && !want[t.ID] && !want[base] {
			continue
		}
		fmt.Println()
		fmt.Println(t.Render())
	}
}
