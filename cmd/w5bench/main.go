// Command w5bench runs the full W5 evaluation suite and prints every
// experiment table (E1–E10). See DESIGN.md §3 for the experiment index
// and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	w5bench                                  # run everything
//	w5bench E2 E7                            # run selected experiments
//	w5bench -requestpath BENCH_requestpath.json
//	                                         # measure the invoke→export
//	                                         # hot path and write a JSON
//	                                         # record for trend tracking
//
// The -requestpath mode exists so successive PRs can compare the
// request-path cost (ns/op, allocs/op, and the population-scaling ratio)
// against a committed machine-readable baseline instead of eyeballing
// benchmark logs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"w5/internal/benchutil"
	"w5/internal/core"
	"w5/internal/experiments"
)

func main() {
	requestPath := flag.String("requestpath", "",
		"measure the invoke→export request path and write JSON results to this file")
	flag.Parse()

	if *requestPath != "" {
		if err := writeRequestPathJSON(*requestPath); err != nil {
			fmt.Fprintln(os.Stderr, "w5bench:", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	fmt.Println("W5 evaluation suite — World Wide Web Without Walls (HotNets 2007)")
	fmt.Println(strings.Repeat("=", 70))
	for _, t := range experiments.All() {
		base := strings.TrimRight(t.ID, "ab")
		if len(want) > 0 && !want[t.ID] && !want[base] {
			continue
		}
		fmt.Println()
		fmt.Println(t.Render())
	}
}

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type benchReport struct {
	Benchmark string        `json:"benchmark"`
	GoVersion string        `json:"go_version"`
	GOARCH    string        `json:"goarch"`
	Results   []benchResult `json:"results"`
	// ScalingRatio10k is users=10000 ns/op divided by users=100 ns/op for
	// the enforcing path; the O(request) contract requires it near 1.0
	// (acceptance: <= 2.0).
	ScalingRatio10k float64 `json:"scaling_ratio_10k"`
}

func measure(name string, p *core.Provider) (benchResult, error) {
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inv, err := p.Invoke(benchutil.AppName, core.AppRequest{
				Viewer: benchutil.MeasuredUser, Owner: benchutil.MeasuredUser})
			if err != nil {
				runErr = err
				b.FailNow()
			}
			if _, err := p.ExportCheck(inv, benchutil.MeasuredUser); err != nil {
				runErr = err
				b.FailNow()
			}
		}
	})
	if runErr != nil {
		return benchResult{}, fmt.Errorf("%s: %w", name, runErr)
	}
	if r.N == 0 {
		// testing.Benchmark swallows failures into a zero result; never
		// report 0/0 as a measurement.
		return benchResult{}, fmt.Errorf("%s: benchmark produced no iterations", name)
	}
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

func writeRequestPathJSON(path string) error {
	report := benchReport{
		Benchmark: "requestpath",
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
	}
	var ns100, ns10k float64
	for _, cfg := range []struct {
		name    string
		users   int
		enforce bool
	}{
		{"invoke-export/enforcing/users=100", 100, true},
		{"invoke-export/no-checks/users=100", 100, false},
		{"invoke-export/enforcing/users=10000", 10_000, true},
	} {
		p, err := benchutil.BuildScaleProvider(cfg.users, cfg.enforce)
		if err != nil {
			return err
		}
		res, err := measure(cfg.name, p)
		if err != nil {
			return err
		}
		report.Results = append(report.Results, res)
		fmt.Printf("%-40s %10.0f ns/op %6d B/op %4d allocs/op\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		if cfg.enforce && cfg.users == 100 {
			ns100 = res.NsPerOp
		}
		if cfg.enforce && cfg.users == 10_000 {
			ns10k = res.NsPerOp
		}
	}
	if ns100 > 0 {
		report.ScalingRatio10k = ns10k / ns100
	}
	fmt.Printf("scaling ratio (10k/100 users): %.2f\n", report.ScalingRatio10k)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
