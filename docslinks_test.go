package w5bench

// The docs satellite of PR 4: every intra-repo markdown link must
// resolve. Docs that point at moved or renamed files rot silently —
// this test makes `go test ./...` (and therefore CI) the link checker.

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target); targets with spaces are not used in
// this repo, which keeps the pattern honest about code spans.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestMarkdownIntraRepoLinksResolve(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found (test running outside the repo root?)")
	}
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			link := m[1]
			switch {
			case strings.HasPrefix(link, "http://"),
				strings.HasPrefix(link, "https://"),
				strings.HasPrefix(link, "mailto:"):
				continue // external: not this test's business
			case strings.HasPrefix(link, "#"):
				continue // same-file anchor
			case strings.Trim(link, ".") == "":
				continue // "[...](...)" prose, not a link
			}
			if i := strings.IndexByte(link, '#'); i >= 0 {
				link = link[:i] // drop the fragment, check the file
			}
			target := filepath.Join(filepath.Dir(md), link)
			if _, err := os.Stat(target); err != nil {
				t.Errorf("%s: link (%s) does not resolve (%s)", md, m[1], target)
			}
		}
	}
}
