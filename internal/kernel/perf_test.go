package kernel

import (
	"errors"
	"sync"
	"testing"

	"w5/internal/audit"
	"w5/internal/difc"
)

// TestSendDropAuditedNotFlowAllowed pins the audit ordering fix: a
// mailbox-full drop must be recorded as a drop, never as a successful
// flow (the old code wrote flow-allowed before attempting delivery).
func TestSendDropAuditedNotFlowAllowed(t *testing.T) {
	log := audit.New()
	k := New(Options{Enforce: true, Log: log, MailboxCap: 1})
	a, _ := k.Spawn(nil, SpawnSpec{Name: "a"})
	b, _ := k.Spawn(nil, SpawnSpec{Name: "b"})

	if err := k.Send(a, b.ID(), []byte("one")); err != nil {
		t.Fatal(err)
	}
	allowed := log.CountKind(audit.KindFlowAllowed)
	if allowed != 1 {
		t.Fatalf("flow-allowed count = %d, want 1", allowed)
	}
	if err := k.Send(a, b.ID(), []byte("two")); !errors.Is(err, ErrMailboxFull) {
		t.Fatalf("err = %v, want ErrMailboxFull", err)
	}
	if got := log.CountKind(audit.KindFlowAllowed); got != allowed {
		t.Errorf("dropped message audited as flow-allowed (count %d -> %d)", allowed, got)
	}
	if got := log.CountKind(audit.KindDrop); got != 1 {
		t.Errorf("drop audit count = %d, want 1", got)
	}
}

// TestEphemeralProcessLifecycle pins the request-scoped spawn contract:
// ephemeral processes work as IPC senders and exporters but are not in
// the process table, and their shells are recycled after Exit.
func TestEphemeralProcessLifecycle(t *testing.T) {
	log := audit.New()
	k := NewEnforcing(log, nil)
	resident, _ := k.Spawn(nil, SpawnSpec{Name: "resident"})

	e, err := k.Spawn(nil, SpawnSpec{Name: "req", Ephemeral: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := k.Lookup(e.ID()); ok {
		t.Error("ephemeral process present in process table")
	}
	if got := len(k.Procs()); got != 1 {
		t.Errorf("Procs() = %d entries, want 1 (the resident)", got)
	}
	// It can still send (it is a first-class principal for flow checks).
	if err := k.Send(e, resident.ID(), []byte("hi")); err != nil {
		t.Fatal(err)
	}
	// And nobody can send to it: request processes never receive IPC.
	if err := k.Send(resident, e.ID(), nil); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("send to ephemeral: %v, want ErrNoSuchProcess", err)
	}
	if log.CountKind(audit.KindSpawn) != 2 || log.CountKind(audit.KindExit) != 0 {
		t.Error("spawn/exit auditing wrong before exit")
	}
	oldPID := e.ID()
	k.Exit(e)
	if e.Alive() {
		t.Error("Alive after Exit")
	}
	if log.CountKind(audit.KindExit) != 1 {
		t.Error("ephemeral exit not audited")
	}

	// The shell is recycled: a fresh ephemeral spawn reuses it with a new
	// identity and clean state.
	e2, err := k.Spawn(nil, SpawnSpec{Name: "req2", Ephemeral: true,
		Secrecy: difc.NewLabel(99)})
	if err != nil {
		t.Fatal(err)
	}
	if e2.ID() == oldPID {
		t.Error("recycled process kept its old pid")
	}
	if !e2.Alive() || e2.Name() != "req2" || !e2.Labels().Secrecy.Has(99) {
		t.Error("recycled process state not reset")
	}
	if _, ok := k.TryReceive(e2); ok {
		t.Error("recycled process has a non-empty mailbox")
	}
}

// TestLabelReadsDoNotAllocate pins the lock-free snapshot reads: every
// storage access consults Labels()/Caps(), so they must stay free.
func TestLabelReadsDoNotAllocate(t *testing.T) {
	k := NewEnforcing(nil, nil)
	p, _ := k.Spawn(nil, SpawnSpec{Name: "p",
		Secrecy: difc.NewLabel(1), Caps: difc.CapsFor(1, 2)})
	var lp difc.LabelPair
	var cs difc.CapSet
	if avg := testing.AllocsPerRun(200, func() { lp = p.Labels() }); avg != 0 {
		t.Errorf("Labels() allocates %.1f times per op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { cs = p.Caps() }); avg != 0 {
		t.Errorf("Caps() allocates %.1f times per op, want 0", avg)
	}
	if !lp.Secrecy.Has(1) || !cs.Owns(2) {
		t.Error("snapshot reads returned wrong state")
	}
}

// TestConcurrentLabelReadsAndWrites drives lock-free readers against
// serialized writers; under -race this pins the snapshot-pointer scheme.
// A reader must always observe a consistent (label, caps) snapshot: the
// secrecy label never contains a tag whose plus-capability is missing
// from the same snapshot, because every raise goes through SetLabels
// with the capability already held.
func TestConcurrentLabelReadsAndWrites(t *testing.T) {
	k := NewEnforcing(nil, nil)
	const tag = difc.Tag(7)
	p, _ := k.Spawn(nil, SpawnSpec{Name: "p", Caps: difc.CapsFor(tag)})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 4)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				lp := p.Labels()
				cs := p.Caps()
				if lp.Secrecy.Has(tag) && !cs.HasPlus(tag) {
					errCh <- errors.New("torn snapshot: tainted without capability")
					return
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		if err := k.SetLabels(p, difc.LabelPair{Secrecy: difc.NewLabel(tag)}); err != nil {
			t.Fatal(err)
		}
		if err := k.SetLabels(p, difc.LabelPair{}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
