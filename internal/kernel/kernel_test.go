package kernel

import (
	"context"
	"errors"
	"testing"
	"time"

	"w5/internal/audit"
	"w5/internal/difc"
	"w5/internal/quota"
)

func newTestKernel(t *testing.T) (*Kernel, *audit.Log) {
	t.Helper()
	log := audit.New()
	return NewEnforcing(log, nil), log
}

func mustSpawn(t *testing.T, k *Kernel, spec SpawnSpec) *Process {
	t.Helper()
	p, err := k.Spawn(nil, spec)
	if err != nil {
		t.Fatalf("Spawn(%s): %v", spec.Name, err)
	}
	return p
}

func TestMintTagGrantsOwnership(t *testing.T) {
	k, _ := newTestKernel(t)
	p := mustSpawn(t, k, SpawnSpec{Name: "p"})
	tag := k.MintTag(p, "bob's secrecy")
	if !p.Caps().Owns(tag) {
		t.Fatalf("creator does not own minted tag %v", tag)
	}
	t2 := k.MintTag(nil, "provider tag")
	if t2 == tag {
		t.Fatal("duplicate tag minted")
	}
	if p.Caps().Owns(t2) {
		t.Fatal("unrelated process owns provider tag")
	}
}

func TestSpawnDelegationRules(t *testing.T) {
	k, log := newTestKernel(t)
	parent := mustSpawn(t, k, SpawnSpec{Name: "parent"})
	tag := k.MintTag(parent, "")

	// Child caps must be a subset of the parent's.
	if _, err := k.Spawn(parent, SpawnSpec{Name: "kid", Caps: difc.CapsFor(tag + 1)}); !errors.Is(err, ErrDenied) {
		t.Fatalf("over-privileged spawn: err = %v, want ErrDenied", err)
	}
	if _, err := k.Spawn(parent, SpawnSpec{Name: "kid", Caps: difc.CapsFor(tag)}); err != nil {
		t.Fatalf("legitimate delegation failed: %v", err)
	}
	if log.CountKind(audit.KindFlowDenied) == 0 {
		t.Error("denied spawn not audited")
	}
}

func TestSpawnCannotLaunderTaint(t *testing.T) {
	k, _ := newTestKernel(t)
	tag := k.MintTag(nil, "secret")
	// Parent is tainted with tag and holds no t-.
	parent := mustSpawn(t, k, SpawnSpec{Name: "tainted", Secrecy: difc.NewLabel(tag)})
	// Spawning an untainted child would launder the secret.
	if _, err := k.Spawn(parent, SpawnSpec{Name: "clean"}); !errors.Is(err, ErrDenied) {
		t.Fatalf("taint laundering via spawn: err = %v, want ErrDenied", err)
	}
	// A child carrying the same taint is fine.
	if _, err := k.Spawn(parent, SpawnSpec{Name: "alsoTainted", Secrecy: difc.NewLabel(tag)}); err != nil {
		t.Fatalf("tainted child spawn failed: %v", err)
	}
}

func TestSetLabelsEnforcesSafety(t *testing.T) {
	k, _ := newTestKernel(t)
	p := mustSpawn(t, k, SpawnSpec{Name: "p"})
	tag := k.MintTag(nil, "secret")

	// Raising without t+ is denied.
	err := k.SetLabels(p, difc.LabelPair{Secrecy: difc.NewLabel(tag)})
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("raise without capability: %v", err)
	}
	// With t+ it succeeds.
	if err := k.Grant(nil, p, difc.NewCapSet(difc.Plus(tag))); err != nil {
		t.Fatal(err)
	}
	if err := k.SetLabels(p, difc.LabelPair{Secrecy: difc.NewLabel(tag)}); err != nil {
		t.Fatalf("raise with capability: %v", err)
	}
	// Dropping without t- is denied.
	err = k.SetLabels(p, difc.LabelPair{})
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("drop without capability: %v", err)
	}
	if got := p.Labels().Secrecy; !got.Has(tag) {
		t.Error("denied change mutated label")
	}
}

func TestRaiseSecrecyHelper(t *testing.T) {
	k, _ := newTestKernel(t)
	p := mustSpawn(t, k, SpawnSpec{Name: "p"})
	tag := k.MintTag(p, "")
	if err := k.RaiseSecrecy(p, tag); err != nil {
		t.Fatal(err)
	}
	if !p.Labels().Secrecy.Has(tag) {
		t.Error("RaiseSecrecy did not raise")
	}
}

func TestGrantRequiresHolding(t *testing.T) {
	k, _ := newTestKernel(t)
	alice := mustSpawn(t, k, SpawnSpec{Name: "alice"})
	mallory := mustSpawn(t, k, SpawnSpec{Name: "mallory"})
	tag := k.MintTag(alice, "alice's tag")

	// Mallory cannot grant what she does not hold.
	if err := k.Grant(mallory, mallory, difc.CapsFor(tag)); !errors.Is(err, ErrDenied) {
		t.Fatalf("self-grant of unheld caps: %v", err)
	}
	// Alice can delegate her own privilege.
	if err := k.Grant(alice, mallory, difc.NewCapSet(difc.Minus(tag))); err != nil {
		t.Fatalf("legitimate delegation: %v", err)
	}
	if !mallory.Caps().HasMinus(tag) {
		t.Error("delegated capability missing")
	}
}

func TestRevokeAndDropPrivileges(t *testing.T) {
	k, _ := newTestKernel(t)
	p := mustSpawn(t, k, SpawnSpec{Name: "p"})
	tag := k.MintTag(p, "")
	k.Revoke(p, difc.NewCapSet(difc.Minus(tag)))
	if p.Caps().HasMinus(tag) {
		t.Error("revoked capability still held")
	}
	if !p.Caps().HasPlus(tag) {
		t.Error("revoke removed too much")
	}
	k.DropPrivileges(p, difc.EmptyCaps)
	if !p.Caps().IsEmpty() {
		t.Error("DropPrivileges left capabilities")
	}
}

func TestSendFlowChecks(t *testing.T) {
	k, log := newTestKernel(t)
	secret := k.MintTag(nil, "bob's data")

	tainted := mustSpawn(t, k, SpawnSpec{Name: "tainted", Secrecy: difc.NewLabel(secret)})
	clean := mustSpawn(t, k, SpawnSpec{Name: "clean"})
	cleanRaisable := mustSpawn(t, k, SpawnSpec{Name: "raisable",
		Caps: difc.NewCapSet(difc.Plus(secret))})

	// Tainted -> clean is a leak: denied.
	if err := k.Send(tainted, clean.ID(), []byte("x")); !errors.Is(err, ErrDenied) {
		t.Fatalf("leak allowed: %v", err)
	}
	// Tainted -> receiver holding secret+ is fine (receiver could raise).
	if err := k.Send(tainted, cleanRaisable.ID(), []byte("x")); err != nil {
		t.Fatalf("send to raisable receiver: %v", err)
	}
	// Clean -> tainted is an upward flow: fine.
	if err := k.Send(clean, tainted.ID(), []byte("x")); err != nil {
		t.Fatalf("upward send: %v", err)
	}
	if log.CountKind(audit.KindFlowDenied) != 1 {
		t.Errorf("flow-denied audit count = %d, want 1", log.CountKind(audit.KindFlowDenied))
	}
}

func TestSendIntegrityChecks(t *testing.T) {
	k, _ := newTestKernel(t)
	w := k.MintTag(nil, "bob's write tag")
	// Receiver demands integrity w.
	guarded := mustSpawn(t, k, SpawnSpec{Name: "guarded", Integrity: difc.NewLabel(w)})
	unendorsed := mustSpawn(t, k, SpawnSpec{Name: "unendorsed"})
	endorsed := mustSpawn(t, k, SpawnSpec{Name: "endorsed", Integrity: difc.NewLabel(w)})

	if err := k.Send(unendorsed, guarded.ID(), []byte("x")); !errors.Is(err, ErrDenied) {
		t.Fatalf("unendorsed write accepted: %v", err)
	}
	if err := k.Send(endorsed, guarded.ID(), []byte("x")); err != nil {
		t.Fatalf("endorsed write denied: %v", err)
	}
}

func TestReceiveDeliversInOrder(t *testing.T) {
	k, _ := newTestKernel(t)
	a := mustSpawn(t, k, SpawnSpec{Name: "a"})
	b := mustSpawn(t, k, SpawnSpec{Name: "b"})
	for _, s := range []string{"one", "two", "three"} {
		if err := k.Send(a, b.ID(), []byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	for _, want := range []string{"one", "two", "three"} {
		m, err := k.Receive(ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		if string(m.Data) != want {
			t.Errorf("got %q, want %q", m.Data, want)
		}
		if m.From != a.ID() || m.FromName != "a" {
			t.Errorf("message provenance wrong: %+v", m)
		}
	}
}

func TestReceiveBlocksUntilSend(t *testing.T) {
	k, _ := newTestKernel(t)
	a := mustSpawn(t, k, SpawnSpec{Name: "a"})
	b := mustSpawn(t, k, SpawnSpec{Name: "b"})
	go func() {
		time.Sleep(10 * time.Millisecond)
		k.Send(a, b.ID(), []byte("ping"))
	}()
	m, err := k.Receive(context.Background(), b)
	if err != nil || string(m.Data) != "ping" {
		t.Fatalf("Receive = %q, %v", m.Data, err)
	}
}

func TestReceiveContextCancel(t *testing.T) {
	k, _ := newTestKernel(t)
	b := mustSpawn(t, k, SpawnSpec{Name: "b"})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := k.Receive(ctx, b); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}

func TestTryReceive(t *testing.T) {
	k, _ := newTestKernel(t)
	a := mustSpawn(t, k, SpawnSpec{Name: "a"})
	b := mustSpawn(t, k, SpawnSpec{Name: "b"})
	if _, ok := k.TryReceive(b); ok {
		t.Fatal("TryReceive on empty mailbox returned a message")
	}
	k.Send(a, b.ID(), []byte("x"))
	if m, ok := k.TryReceive(b); !ok || string(m.Data) != "x" {
		t.Fatalf("TryReceive = %q, %v", m.Data, ok)
	}
}

func TestStaleDeliveryDiscarded(t *testing.T) {
	// A message queued while the receiver was tainted must not be
	// delivered after the receiver sheds the taint.
	k, log := newTestKernel(t)
	secret := k.MintTag(nil, "s")
	sender := mustSpawn(t, k, SpawnSpec{Name: "sender", Secrecy: difc.NewLabel(secret)})
	recv := mustSpawn(t, k, SpawnSpec{Name: "recv",
		Secrecy: difc.NewLabel(secret), Caps: difc.CapsFor(secret)})

	if err := k.Send(sender, recv.ID(), []byte("secret")); err != nil {
		t.Fatal(err)
	}
	// Receiver declassifies itself before reading.
	if err := k.SetLabels(recv, difc.LabelPair{}); err != nil {
		t.Fatal(err)
	}
	// Remove its own +/- so the re-check cannot re-raise. (Revoke is a
	// trusted operation; this models privilege expiry.)
	k.Revoke(recv, difc.CapsFor(secret))
	if m, ok := k.TryReceive(recv); ok {
		t.Fatalf("stale tainted message delivered: %q", m.Data)
	}
	if log.CountKind(audit.KindFlowDenied) == 0 {
		t.Error("stale delivery not audited")
	}
}

func TestMailboxFull(t *testing.T) {
	log := audit.New()
	k := New(Options{Enforce: true, Log: log, MailboxCap: 2})
	a, _ := k.Spawn(nil, SpawnSpec{Name: "a"})
	b, _ := k.Spawn(nil, SpawnSpec{Name: "b"})
	for i := 0; i < 2; i++ {
		if err := k.Send(a, b.ID(), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Send(a, b.ID(), nil); !errors.Is(err, ErrMailboxFull) {
		t.Fatalf("err = %v, want ErrMailboxFull", err)
	}
}

func TestSendToDeadOrMissing(t *testing.T) {
	k, _ := newTestKernel(t)
	a := mustSpawn(t, k, SpawnSpec{Name: "a"})
	b := mustSpawn(t, k, SpawnSpec{Name: "b"})
	k.Exit(b)
	if err := k.Send(a, b.ID(), nil); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("send to exited: %v", err)
	}
	if err := k.Send(a, 9999, nil); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("send to missing: %v", err)
	}
	k.Exit(a)
	if err := k.Send(a, a.ID(), nil); !errors.Is(err, ErrDead) && !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("send from dead: %v", err)
	}
}

func TestExitIdempotentAndReceiveAfterExit(t *testing.T) {
	k, _ := newTestKernel(t)
	p := mustSpawn(t, k, SpawnSpec{Name: "p"})
	k.Exit(p)
	k.Exit(p) // must not panic
	if p.Alive() {
		t.Error("Alive after Exit")
	}
	if _, err := k.Receive(context.Background(), p); !errors.Is(err, ErrDead) {
		t.Fatalf("Receive on dead proc: %v", err)
	}
}

func TestExportRules(t *testing.T) {
	k, log := newTestKernel(t)
	sBob := k.MintTag(nil, "s_bob")
	app := mustSpawn(t, k, SpawnSpec{Name: "app", Secrecy: difc.NewLabel(sBob)})

	// Tainted app cannot export bare.
	if err := k.Export(app, difc.EmptyCaps, "internet", 10); !errors.Is(err, ErrDenied) {
		t.Fatalf("tainted export allowed: %v", err)
	}
	// With Bob's session privilege (s_bob-) it can: this is "destined
	// for Bob's browser".
	session := difc.NewCapSet(difc.Minus(sBob))
	if err := k.Export(app, session, "bob's browser", 10); err != nil {
		t.Fatalf("export to owner denied: %v", err)
	}
	if log.CountKind(audit.KindExportDenied) != 1 || log.CountKind(audit.KindExport) != 1 {
		t.Error("export auditing wrong")
	}
}

func TestExportChargesNetworkQuota(t *testing.T) {
	qm := quota.NewManager(quota.Limits{Network: 100})
	k := New(Options{Enforce: true, Quotas: qm})
	p, _ := k.Spawn(nil, SpawnSpec{Name: "app", Owner: "app:x"})
	if err := k.Export(p, difc.EmptyCaps, "out", 80); err != nil {
		t.Fatal(err)
	}
	err := k.Export(p, difc.EmptyCaps, "out", 30)
	var ex *quota.ErrExceeded
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want quota.ErrExceeded", err)
	}
	if qm.Account("app:x").Used(quota.Network) != 80 {
		t.Error("failed export charged quota")
	}
}

func TestMessageRateLimit(t *testing.T) {
	k := New(Options{Enforce: true, MsgRate: 0.0001, MsgBurst: 3})
	a, _ := k.Spawn(nil, SpawnSpec{Name: "a"})
	b, _ := k.Spawn(nil, SpawnSpec{Name: "b"})
	sent := 0
	for i := 0; i < 10; i++ {
		if k.Send(a, b.ID(), nil) == nil {
			sent++
		}
	}
	if sent != 3 {
		t.Errorf("sent %d messages through burst-3 bucket, want 3", sent)
	}
}

func TestEnforcementToggle(t *testing.T) {
	// With Enforce off (the E3 baseline), leaks are permitted — that is
	// the point of the comparison.
	k := New(Options{Enforce: false})
	secret := k.MintTag(nil, "s")
	tainted, _ := k.Spawn(nil, SpawnSpec{Name: "t", Secrecy: difc.NewLabel(secret)})
	clean, _ := k.Spawn(nil, SpawnSpec{Name: "c"})
	if err := k.Send(tainted, clean.ID(), []byte("leak")); err != nil {
		t.Fatalf("unenforced kernel denied send: %v", err)
	}
	if err := k.Export(tainted, difc.EmptyCaps, "out", 1); err != nil {
		t.Fatalf("unenforced kernel denied export: %v", err)
	}
	if k.Enforcing() {
		t.Error("Enforcing() = true")
	}
}

func TestLookupAndProcs(t *testing.T) {
	k, _ := newTestKernel(t)
	p := mustSpawn(t, k, SpawnSpec{Name: "p", Owner: "user:bob"})
	got, ok := k.Lookup(p.ID())
	if !ok || got != p {
		t.Fatal("Lookup failed")
	}
	if len(k.Procs()) != 1 {
		t.Errorf("Procs len = %d", len(k.Procs()))
	}
	if p.Owner() != "user:bob" || p.Name() != "p" {
		t.Error("accessors wrong")
	}
	k.Exit(p)
	if _, ok := k.Lookup(p.ID()); ok {
		t.Error("Lookup finds exited process")
	}
}
