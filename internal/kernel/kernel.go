// Package kernel implements the W5 reference monitor: the trusted
// component that tracks every process's secrecy label, integrity label
// and capability set, and that interposes on every IPC message, label
// change, privilege grant, and perimeter export.
//
// This is the "logically separate mechanism" the paper demands in §1
// ("Separate data security from other functions"): applications never
// manipulate labels directly — they ask the kernel, and the kernel
// applies the Flume rules from package difc. The kernel together with
// the store, gateway and quota packages forms the provider's entire
// trusted computing base; everything in internal/apps and all WVM
// bytecode is untrusted.
//
// Concurrency: one kernel mutex guards the process table and all label
// state. Label operations are tiny set operations (see experiment E3),
// so a single lock keeps the monitor trivially verifiable — the property
// the paper prizes ("only a small number of components must be correct",
// §2). Mailboxes use per-process channels so blocked receivers do not
// hold the kernel lock.
package kernel

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"w5/internal/audit"
	"w5/internal/difc"
	"w5/internal/quota"
)

// ErrDenied is the only error untrusted code sees for a rejected
// operation. It is deliberately uninformative — a detailed denial
// ("would leak tag t17") would itself leak which tags exist on other
// principals' data, the covert-channel concern of §3.5. The specific
// reason is written to the audit log, which only the provider reads.
var ErrDenied = errors.New("w5: operation denied")

// Exported errors that carry no cross-principal information.
var (
	ErrNoSuchProcess = errors.New("w5: no such process")
	ErrDead          = errors.New("w5: process has exited")
	ErrMailboxFull   = errors.New("w5: mailbox full")
	ErrInterrupted   = errors.New("w5: receive interrupted")
)

// ProcID identifies a process for the lifetime of a kernel.
type ProcID uint64

// Message is one IPC datagram. Labels records the sender's label pair at
// send time; receivers use it to know how tainted the payload is.
type Message struct {
	From     ProcID
	FromName string
	Labels   difc.LabelPair
	Data     []byte
}

// Process is one schedulable principal: an application instance, a
// declassifier, or a platform service. All fields are guarded by the
// kernel mutex; use the accessor methods.
type Process struct {
	id    ProcID
	name  string
	owner string // billing principal, e.g. "app:photo" or "user:bob"

	k         *Kernel
	secrecy   difc.Label
	integrity difc.Label
	caps      difc.CapSet
	alive     bool

	mailbox chan Message
	done    chan struct{}
	account *quota.Account
	msgRate *quota.Bucket // optional per-process message rate limit
}

// ID returns the process identifier.
func (p *Process) ID() ProcID { return p.id }

// Name returns the human-readable process name.
func (p *Process) Name() string { return p.name }

// Owner returns the billing principal.
func (p *Process) Owner() string { return p.owner }

// Account returns the process's quota ledger (nil if quotas disabled).
func (p *Process) Account() *quota.Account { return p.account }

// Labels returns the process's current label pair.
func (p *Process) Labels() difc.LabelPair {
	p.k.mu.Lock()
	defer p.k.mu.Unlock()
	return difc.LabelPair{Secrecy: p.secrecy, Integrity: p.integrity}
}

// Caps returns the process's current capability set.
func (p *Process) Caps() difc.CapSet {
	p.k.mu.Lock()
	defer p.k.mu.Unlock()
	return p.caps
}

// Alive reports whether the process has not exited.
func (p *Process) Alive() bool {
	p.k.mu.Lock()
	defer p.k.mu.Unlock()
	return p.alive
}

// Options configures a Kernel.
type Options struct {
	// Enforce controls whether DIFC checks are applied. It exists only
	// for experiment E3 (measuring enforcement overhead against an
	// unprotected baseline); production providers always enforce.
	Enforce bool
	// Log receives audit events; nil disables auditing.
	Log *audit.Log
	// Quotas supplies per-principal ledgers; nil disables quotas.
	Quotas *quota.Manager
	// MailboxCap is the per-process message queue depth (default 128).
	MailboxCap int
	// MsgRate and MsgBurst configure a per-process token bucket on
	// message sends; zero disables rate limiting.
	MsgRate  float64
	MsgBurst float64
}

// Kernel is the reference monitor. Create one per provider with New.
type Kernel struct {
	mu      sync.Mutex
	opts    Options
	nextTag difc.Tag
	nextPID ProcID
	procs   map[ProcID]*Process
}

// New returns a kernel with the given options.
func New(opts Options) *Kernel {
	if opts.MailboxCap <= 0 {
		opts.MailboxCap = 128
	}
	return &Kernel{opts: opts, procs: make(map[ProcID]*Process)}
}

// NewEnforcing returns a kernel with enforcement on and the given audit
// log and quota manager (either may be nil).
func NewEnforcing(log *audit.Log, quotas *quota.Manager) *Kernel {
	return New(Options{Enforce: true, Log: log, Quotas: quotas})
}

// Enforcing reports whether DIFC checks are applied.
func (k *Kernel) Enforcing() bool { return k.opts.Enforce }

func (k *Kernel) auditf(kind audit.Kind, actor, subject, format string, args ...any) {
	if k.opts.Log != nil {
		k.opts.Log.Appendf(kind, actor, subject, format, args...)
	}
}

// MintTag allocates a fresh tag. If owner is non-nil the tag's dual
// privilege {t+, t-} is added to the owner's capability set — Flume's
// rule that tag creators own their tags. A nil owner mints a tag whose
// privilege is held only by whoever the caller (trusted code) chooses to
// grant it to.
func (k *Kernel) MintTag(owner *Process, note string) difc.Tag {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.nextTag++
	t := k.nextTag
	actor := "provider"
	if owner != nil {
		owner.caps = owner.caps.Grant(difc.Both(t)...)
		actor = owner.name
	}
	k.auditf(audit.KindTagMint, actor, t.String(), "%s", note)
	return t
}

// SpawnSpec describes a process to create.
type SpawnSpec struct {
	Name      string
	Owner     string // billing principal; defaults to Name
	Secrecy   difc.Label
	Integrity difc.Label
	Caps      difc.CapSet
}

// Spawn creates a process. If parent is non-nil the spawn is subject to
// delegation rules: the child's capabilities must be a subset of the
// parent's, and the child's initial labels must be reachable from the
// parent's labels by a safe label change — a child cannot launder away
// taint its parent carries. A nil parent is a trusted provider spawn.
func (k *Kernel) Spawn(parent *Process, spec SpawnSpec) (*Process, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if parent != nil && k.opts.Enforce {
		if !spec.Caps.SubsetOf(parent.caps) {
			k.auditf(audit.KindFlowDenied, parent.name, spec.Name,
				"spawn caps %s exceed parent %s", spec.Caps, parent.caps)
			return nil, ErrDenied
		}
		if !difc.SafeLabelChange(parent.secrecy, spec.Secrecy, parent.caps) ||
			!difc.SafeLabelChange(parent.integrity, spec.Integrity, parent.caps) {
			k.auditf(audit.KindFlowDenied, parent.name, spec.Name,
				"spawn labels unreachable from parent")
			return nil, ErrDenied
		}
	}
	owner := spec.Owner
	if owner == "" {
		owner = spec.Name
	}
	k.nextPID++
	p := &Process{
		id:        k.nextPID,
		name:      spec.Name,
		owner:     owner,
		k:         k,
		secrecy:   spec.Secrecy,
		integrity: spec.Integrity,
		caps:      spec.Caps,
		alive:     true,
		mailbox:   make(chan Message, k.opts.MailboxCap),
		done:      make(chan struct{}),
	}
	if k.opts.Quotas != nil {
		p.account = k.opts.Quotas.Account(owner)
	}
	if k.opts.MsgRate > 0 && k.opts.MsgBurst > 0 {
		p.msgRate = quota.NewBucket(k.opts.MsgBurst, k.opts.MsgRate)
	}
	k.procs[p.id] = p
	k.auditf(audit.KindSpawn, p.name, fmt.Sprintf("pid=%d", p.id),
		"owner=%s %s caps=%s", owner,
		difc.LabelPair{Secrecy: spec.Secrecy, Integrity: spec.Integrity}, spec.Caps)
	return p, nil
}

// Exit terminates a process. Pending mailbox messages are discarded;
// senders racing with exit get ErrDead or a benign drop.
func (k *Kernel) Exit(p *Process) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if !p.alive {
		return
	}
	p.alive = false
	close(p.done)
	delete(k.procs, p.id)
	k.auditf(audit.KindExit, p.name, fmt.Sprintf("pid=%d", p.id), "")
}

// Lookup finds a live process by ID.
func (k *Kernel) Lookup(id ProcID) (*Process, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p, ok := k.procs[id]
	return p, ok
}

// Procs returns a snapshot of live processes.
func (k *Kernel) Procs() []*Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		out = append(out, p)
	}
	return out
}

// SetLabels applies a safe label change to p, using p's own capability
// set (Flume: processes change only their own labels).
func (k *Kernel) SetLabels(p *Process, want difc.LabelPair) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if !p.alive {
		return ErrDead
	}
	if k.opts.Enforce {
		if err := difc.CheckLabelChange(p.secrecy, want.Secrecy, p.caps); err != nil {
			k.auditf(audit.KindFlowDenied, p.name, "self", "secrecy change: %v", err)
			return ErrDenied
		}
		if err := difc.CheckLabelChange(p.integrity, want.Integrity, p.caps); err != nil {
			k.auditf(audit.KindFlowDenied, p.name, "self", "integrity change: %v", err)
			return ErrDenied
		}
	}
	p.secrecy = want.Secrecy
	p.integrity = want.Integrity
	return nil
}

// RaiseSecrecy adds tags to p's secrecy label. Raising is how a process
// becomes able to receive data tainted with those tags; it requires the
// corresponding plus capabilities.
func (k *Kernel) RaiseSecrecy(p *Process, tags ...difc.Tag) error {
	cur := p.Labels()
	return k.SetLabels(p, difc.LabelPair{
		Secrecy:   cur.Secrecy.Union(difc.NewLabel(tags...)),
		Integrity: cur.Integrity,
	})
}

// Grant delegates capabilities from one process to another. The grantor
// must itself hold every granted capability; nil from is a trusted
// provider grant (used when a user authorizes a declassifier via the
// gateway, which acts with the user's stored privileges).
func (k *Kernel) Grant(from, to *Process, caps difc.CapSet) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if !to.alive {
		return ErrDead
	}
	actor := "provider"
	if from != nil {
		actor = from.name
		if k.opts.Enforce && !caps.SubsetOf(from.caps) {
			k.auditf(audit.KindFlowDenied, actor, to.name,
				"grant %s exceeds holdings %s", caps, from.caps)
			return ErrDenied
		}
	}
	to.caps = to.caps.Union(caps)
	k.auditf(audit.KindGrant, actor, to.name, "granted %s", caps)
	return nil
}

// Revoke removes capabilities from a process. Only trusted code calls
// Revoke (users revoke through provider front-ends); there is no
// untrusted revocation in the Flume model.
func (k *Kernel) Revoke(p *Process, caps difc.CapSet) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p.caps = p.caps.Revoke(caps.Caps()...)
	k.auditf(audit.KindRevoke, "provider", p.name, "revoked %s", caps)
}

// Send delivers data from one process to another, subject to the Flume
// safe-message judgment in both secrecy and integrity. The message
// carries the sender's labels so the receiver knows its provenance.
func (k *Kernel) Send(from *Process, to ProcID, data []byte) error {
	k.mu.Lock()
	if !from.alive {
		k.mu.Unlock()
		return ErrDead
	}
	dst, ok := k.procs[to]
	if !ok {
		k.mu.Unlock()
		return ErrNoSuchProcess
	}
	if from.msgRate != nil && !from.msgRate.Take(1) {
		k.mu.Unlock()
		k.auditf(audit.KindQuota, from.name, dst.name, "message rate exceeded")
		return &quota.ErrExceeded{Principal: from.owner, Resource: "msg-rate"}
	}
	send := difc.LabelPair{Secrecy: from.secrecy, Integrity: from.integrity}
	recv := difc.LabelPair{Secrecy: dst.secrecy, Integrity: dst.integrity}
	if k.opts.Enforce {
		if err := difc.CheckFlow(send, from.caps, recv, dst.caps); err != nil {
			k.mu.Unlock()
			k.auditf(audit.KindFlowDenied, from.name, dst.name, "%v", err)
			return ErrDenied
		}
	}
	msg := Message{From: from.id, FromName: from.name, Labels: send, Data: data}
	k.mu.Unlock()

	k.auditf(audit.KindFlowAllowed, from.name, dst.name, "%d bytes %s", len(data), send)
	select {
	case dst.mailbox <- msg:
		return nil
	case <-dst.done:
		return ErrDead
	default:
		return ErrMailboxFull
	}
}

// Receive blocks until a message arrives, the context is canceled, or
// the process exits. The flow is re-validated against the receiver's
// labels at delivery time: if the receiver has shed taint since the
// message was queued, delivering it would be a downward flow, so the
// message is discarded (audited) and the next one is considered.
func (k *Kernel) Receive(ctx context.Context, p *Process) (Message, error) {
	for {
		select {
		case m := <-p.mailbox:
			if k.opts.Enforce {
				k.mu.Lock()
				recv := difc.LabelPair{Secrecy: p.secrecy, Integrity: p.integrity}
				caps := p.caps
				k.mu.Unlock()
				if err := difc.CheckFlow(m.Labels, difc.EmptyCaps, recv, caps); err != nil {
					k.auditf(audit.KindFlowDenied, m.FromName, p.name,
						"stale delivery: %v", err)
					continue
				}
			}
			return m, nil
		case <-p.done:
			return Message{}, ErrDead
		case <-ctx.Done():
			return Message{}, ErrInterrupted
		}
	}
}

// TryReceive is Receive without blocking; ok is false when the mailbox
// is empty.
func (k *Kernel) TryReceive(p *Process) (Message, bool) {
	for {
		select {
		case m := <-p.mailbox:
			if k.opts.Enforce {
				k.mu.Lock()
				recv := difc.LabelPair{Secrecy: p.secrecy, Integrity: p.integrity}
				caps := p.caps
				k.mu.Unlock()
				if err := difc.CheckFlow(m.Labels, difc.EmptyCaps, recv, caps); err != nil {
					k.auditf(audit.KindFlowDenied, m.FromName, p.name,
						"stale delivery: %v", err)
					continue
				}
			}
			return m, true
		default:
			return Message{}, false
		}
	}
}

// Export checks whether p may emit nbytes across the security perimeter
// toward a destination whose session holds extra capabilities (the
// gateway passes the authenticated user's session privileges). On
// success the network quota is charged. The destination string is used
// only for auditing.
func (k *Kernel) Export(p *Process, extra difc.CapSet, dest string, nbytes int) error {
	k.mu.Lock()
	if !p.alive {
		k.mu.Unlock()
		return ErrDead
	}
	s := p.secrecy
	caps := p.caps.Union(extra)
	k.mu.Unlock()

	if k.opts.Enforce && !difc.CanExport(s, caps) {
		k.auditf(audit.KindExportDenied, p.name, dest,
			"residue %s", difc.ExportResidue(s, caps))
		return ErrDenied
	}
	if p.account != nil {
		if err := p.account.Charge(quota.Network, uint64(nbytes)); err != nil {
			k.auditf(audit.KindQuota, p.name, dest, "%v", err)
			return err
		}
	}
	k.auditf(audit.KindExport, p.name, dest, "%d bytes", nbytes)
	return nil
}

// DropPrivileges removes every capability from p, used by declassifier
// harnesses after setup so the running code holds only what its policy
// needs (least privilege).
func (k *Kernel) DropPrivileges(p *Process, keep difc.CapSet) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p.caps = keep
	k.auditf(audit.KindRevoke, "provider", p.name, "privileges reduced to %s", keep)
}
