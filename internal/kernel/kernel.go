// Package kernel implements the W5 reference monitor: the trusted
// component that tracks every process's secrecy label, integrity label
// and capability set, and that interposes on every IPC message, label
// change, privilege grant, and perimeter export.
//
// This is the "logically separate mechanism" the paper demands in §1
// ("Separate data security from other functions"): applications never
// manipulate labels directly — they ask the kernel, and the kernel
// applies the Flume rules from package difc. The kernel together with
// the store, gateway and quota packages forms the provider's entire
// trusted computing base; everything in internal/apps and all WVM
// bytecode is untrusted.
//
// Concurrency: each process's security state (labels + capabilities) is
// an immutable snapshot behind an atomic pointer. Reads — the dominant
// operation: every storage access and every flow check consults labels —
// are lock-free loads; writes (label changes, grants, revocations) are
// serialized per process by a small mutex and publish a fresh snapshot.
// The single kernel mutex now guards only the process table, which
// request-scoped (ephemeral) processes never enter, so the monitor stays
// small and verifiable (the property the paper prizes, §2) without a
// global lock on the request path. Mailboxes are per-process channels,
// created lazily on first use — request processes never receive IPC and
// therefore never pay for one.
package kernel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"w5/internal/audit"
	"w5/internal/difc"
	"w5/internal/quota"
)

// ErrDenied is the only error untrusted code sees for a rejected
// operation. It is deliberately uninformative — a detailed denial
// ("would leak tag t17") would itself leak which tags exist on other
// principals' data, the covert-channel concern of §3.5. The specific
// reason is written to the audit log, which only the provider reads.
var ErrDenied = errors.New("w5: operation denied")

// Exported errors that carry no cross-principal information.
var (
	ErrNoSuchProcess = errors.New("w5: no such process")
	ErrDead          = errors.New("w5: process has exited")
	ErrMailboxFull   = errors.New("w5: mailbox full")
	ErrInterrupted   = errors.New("w5: receive interrupted")
)

// ProcID identifies a process for the lifetime of a kernel.
type ProcID uint64

// Message is one IPC datagram. Labels records the sender's label pair at
// send time; receivers use it to know how tainted the payload is.
type Message struct {
	From     ProcID
	FromName string
	Labels   difc.LabelPair
	Data     []byte
}

// procState is one immutable snapshot of a process's security context.
// A snapshot is never mutated after publication; readers that load the
// pointer see a consistent (secrecy, integrity, caps) triple.
type procState struct {
	secrecy   difc.Label
	integrity difc.Label
	caps      difc.CapSet
}

// Process is one schedulable principal: an application instance, a
// declassifier, or a platform service.
type Process struct {
	id        ProcID
	name      string
	owner     string // billing principal, e.g. "app:photo" or "user:bob"
	ephemeral bool   // request-scoped: not in the process table, recycled on exit

	k     *Kernel
	state atomic.Pointer[procState]
	alive atomic.Bool

	// mu serializes state transitions (read-modify-write of the snapshot
	// pointer), lifecycle changes, and lazy channel creation. It is never
	// held while blocking.
	mu      sync.Mutex
	mailbox atomic.Pointer[chan Message]  // created on first Send/Receive
	done    atomic.Pointer[chan struct{}] // created on first blocking Receive
	account *quota.Account
	msgRate *quota.Bucket // optional per-process message rate limit
}

// ID returns the process identifier.
func (p *Process) ID() ProcID { return p.id }

// Name returns the human-readable process name.
func (p *Process) Name() string { return p.name }

// Owner returns the billing principal.
func (p *Process) Owner() string { return p.owner }

// Account returns the process's quota ledger (nil if quotas disabled).
func (p *Process) Account() *quota.Account { return p.account }

// Labels returns the process's current label pair. Lock-free.
func (p *Process) Labels() difc.LabelPair {
	st := p.state.Load()
	return difc.LabelPair{Secrecy: st.secrecy, Integrity: st.integrity}
}

// Caps returns the process's current capability set. Lock-free.
func (p *Process) Caps() difc.CapSet { return p.state.Load().caps }

// Alive reports whether the process has not exited.
func (p *Process) Alive() bool { return p.alive.Load() }

// mailboxCh returns the process's mailbox, creating it on first use.
func (p *Process) mailboxCh() chan Message {
	if ch := p.mailbox.Load(); ch != nil {
		return *ch
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mailboxLocked()
}

// mailboxLocked is mailboxCh for callers already holding p.mu.
func (p *Process) mailboxLocked() chan Message {
	if ch := p.mailbox.Load(); ch != nil {
		return *ch
	}
	ch := make(chan Message, p.k.opts.MailboxCap)
	p.mailbox.Store(&ch)
	return ch
}

// doneCh returns the process's exit-notification channel, creating it on
// first use. If the process already exited, the returned channel is
// closed.
func (p *Process) doneCh() chan struct{} {
	if ch := p.done.Load(); ch != nil {
		return *ch
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ch := p.done.Load(); ch != nil {
		return *ch
	}
	ch := make(chan struct{})
	if !p.alive.Load() {
		close(ch)
	}
	p.done.Store(&ch)
	return ch
}

// Options configures a Kernel.
type Options struct {
	// Enforce controls whether DIFC checks are applied. It exists only
	// for experiment E3 (measuring enforcement overhead against an
	// unprotected baseline); production providers always enforce.
	Enforce bool
	// Log receives audit events; nil disables auditing.
	Log *audit.Log
	// Quotas supplies per-principal ledgers; nil disables quotas.
	Quotas *quota.Manager
	// MailboxCap is the per-process message queue depth (default 128).
	MailboxCap int
	// MsgRate and MsgBurst configure a per-process token bucket on
	// message sends; zero disables rate limiting.
	MsgRate  float64
	MsgBurst float64
}

// Kernel is the reference monitor. Create one per provider with New.
type Kernel struct {
	mu      sync.Mutex // guards procs only
	opts    Options
	nextTag atomic.Uint64
	nextPID atomic.Uint64
	procs   map[ProcID]*Process

	// pool recycles ephemeral (request-scoped) Process shells so that a
	// Spawn/Exit pair per request stops allocating channels and hitting
	// the shared process table. Only the core Invoke path creates
	// ephemeral processes, and it exits each exactly once.
	pool sync.Pool
}

// New returns a kernel with the given options.
func New(opts Options) *Kernel {
	if opts.MailboxCap <= 0 {
		opts.MailboxCap = 128
	}
	k := &Kernel{opts: opts, procs: make(map[ProcID]*Process)}
	k.pool.New = func() any { return new(Process) }
	return k
}

// NewEnforcing returns a kernel with enforcement on and the given audit
// log and quota manager (either may be nil).
func NewEnforcing(log *audit.Log, quotas *quota.Manager) *Kernel {
	return New(Options{Enforce: true, Log: log, Quotas: quotas})
}

// Enforcing reports whether DIFC checks are applied.
func (k *Kernel) Enforcing() bool { return k.opts.Enforce }

func (k *Kernel) auditf(kind audit.Kind, actor, subject, format string, args ...any) {
	if k.opts.Log != nil {
		k.opts.Log.Appendf(kind, actor, subject, format, args...)
	}
}

// MintTag allocates a fresh tag. If owner is non-nil the tag's dual
// privilege {t+, t-} is added to the owner's capability set — Flume's
// rule that tag creators own their tags. A nil owner mints a tag whose
// privilege is held only by whoever the caller (trusted code) chooses to
// grant it to.
func (k *Kernel) MintTag(owner *Process, note string) difc.Tag {
	t := difc.Tag(k.nextTag.Add(1))
	actor := "provider"
	if owner != nil {
		owner.mu.Lock()
		st := owner.state.Load()
		owner.state.Store(&procState{
			secrecy:   st.secrecy,
			integrity: st.integrity,
			caps:      st.caps.Grant(difc.Both(t)...),
		})
		owner.mu.Unlock()
		actor = owner.name
	}
	k.auditf(audit.KindTagMint, actor, t.String(), "%s", note)
	return t
}

// SpawnSpec describes a process to create.
type SpawnSpec struct {
	Name      string
	Owner     string // billing principal; defaults to Name
	Secrecy   difc.Label
	Integrity difc.Label
	Caps      difc.CapSet
	// Ephemeral marks a request-scoped process: it is not entered into
	// the process table (it can send IPC but never receive it, and
	// Lookup will not find it), and its shell is recycled after Exit.
	// Callers of ephemeral spawns must call Exit exactly once and must
	// not touch the Process after that.
	Ephemeral bool
}

// Spawn creates a process. If parent is non-nil the spawn is subject to
// delegation rules: the child's capabilities must be a subset of the
// parent's, and the child's initial labels must be reachable from the
// parent's labels by a safe label change — a child cannot launder away
// taint its parent carries. A nil parent is a trusted provider spawn.
func (k *Kernel) Spawn(parent *Process, spec SpawnSpec) (*Process, error) {
	if parent != nil && k.opts.Enforce {
		// Hold the parent's mutex from the delegation check through the
		// child's publication: once a Revoke of the parent returns, no
		// child carrying the revoked capabilities can appear afterwards
		// (the same guarantee Grant provides by committing under the
		// grantor's mutex).
		parent.mu.Lock()
		defer parent.mu.Unlock()
		pst := parent.state.Load()
		if !spec.Caps.SubsetOf(pst.caps) {
			k.auditf(audit.KindFlowDenied, parent.name, spec.Name,
				"spawn caps %s exceed parent %s", spec.Caps, pst.caps)
			return nil, ErrDenied
		}
		if !difc.SafeLabelChange(pst.secrecy, spec.Secrecy, pst.caps) ||
			!difc.SafeLabelChange(pst.integrity, spec.Integrity, pst.caps) {
			k.auditf(audit.KindFlowDenied, parent.name, spec.Name,
				"spawn labels unreachable from parent")
			return nil, ErrDenied
		}
	}
	owner := spec.Owner
	if owner == "" {
		owner = spec.Name
	}
	var p *Process
	if spec.Ephemeral {
		p = k.pool.Get().(*Process)
		p.mailbox.Store(nil)
		p.done.Store(nil)
	} else {
		p = new(Process)
	}
	p.id = ProcID(k.nextPID.Add(1))
	p.name = spec.Name
	p.owner = owner
	p.ephemeral = spec.Ephemeral
	p.k = k
	p.state.Store(&procState{secrecy: spec.Secrecy, integrity: spec.Integrity, caps: spec.Caps})
	p.account = nil
	if k.opts.Quotas != nil {
		p.account = k.opts.Quotas.Account(owner)
	}
	p.msgRate = nil
	if k.opts.MsgRate > 0 && k.opts.MsgBurst > 0 {
		p.msgRate = quota.NewBucket(k.opts.MsgBurst, k.opts.MsgRate)
	}
	p.alive.Store(true)
	if !spec.Ephemeral {
		k.mu.Lock()
		k.procs[p.id] = p
		k.mu.Unlock()
	}
	// pid lives in the lazily formatted detail, not the subject: subject
	// formatting would cost an allocation per spawn on the request path.
	k.auditf(audit.KindSpawn, p.name, p.name,
		"pid=%d owner=%s %s caps=%s", uint64(p.id), owner,
		difc.LabelPair{Secrecy: spec.Secrecy, Integrity: spec.Integrity}, spec.Caps)
	return p, nil
}

// Exit terminates a process. Pending mailbox messages are discarded;
// senders racing with exit get ErrDead or a benign drop. Exit is
// idempotent for resident processes; an ephemeral process must be exited
// exactly once (its shell is recycled for a future spawn).
func (k *Kernel) Exit(p *Process) {
	p.mu.Lock()
	if !p.alive.CompareAndSwap(true, false) {
		p.mu.Unlock()
		return
	}
	if ch := p.done.Load(); ch != nil {
		close(*ch)
	}
	p.mu.Unlock()
	k.auditf(audit.KindExit, p.name, p.name, "pid=%d", uint64(p.id))
	if p.ephemeral {
		k.pool.Put(p)
		return
	}
	k.mu.Lock()
	delete(k.procs, p.id)
	k.mu.Unlock()
}

// Lookup finds a live resident process by ID. Ephemeral (request-scoped)
// processes are not in the table.
func (k *Kernel) Lookup(id ProcID) (*Process, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p, ok := k.procs[id]
	return p, ok
}

// Procs returns a snapshot of live resident processes.
func (k *Kernel) Procs() []*Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		out = append(out, p)
	}
	return out
}

// SetLabels applies a safe label change to p, using p's own capability
// set (Flume: processes change only their own labels).
func (k *Kernel) SetLabels(p *Process, want difc.LabelPair) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.alive.Load() {
		return ErrDead
	}
	st := p.state.Load()
	if k.opts.Enforce {
		if err := difc.CheckLabelChange(st.secrecy, want.Secrecy, st.caps); err != nil {
			k.auditf(audit.KindFlowDenied, p.name, "self", "secrecy change: %v", err)
			return ErrDenied
		}
		if err := difc.CheckLabelChange(st.integrity, want.Integrity, st.caps); err != nil {
			k.auditf(audit.KindFlowDenied, p.name, "self", "integrity change: %v", err)
			return ErrDenied
		}
	}
	p.state.Store(&procState{secrecy: want.Secrecy, integrity: want.Integrity, caps: st.caps})
	return nil
}

// RaiseSecrecy adds tags to p's secrecy label. Raising is how a process
// becomes able to receive data tainted with those tags; it requires the
// corresponding plus capabilities.
func (k *Kernel) RaiseSecrecy(p *Process, tags ...difc.Tag) error {
	cur := p.Labels()
	return k.SetLabels(p, difc.LabelPair{
		Secrecy:   cur.Secrecy.Union(difc.NewLabel(tags...)),
		Integrity: cur.Integrity,
	})
}

// lockPair acquires both process mutexes in pid order (a deterministic
// total order, so concurrent Grants cannot deadlock) and returns the
// matching unlock. Handles a == b.
func lockPair(a, b *Process) func() {
	if a == b {
		a.mu.Lock()
		return a.mu.Unlock
	}
	if a.id > b.id {
		a, b = b, a
	}
	a.mu.Lock()
	b.mu.Lock()
	return func() { b.mu.Unlock(); a.mu.Unlock() }
}

// Grant delegates capabilities from one process to another. The grantor
// must itself hold every granted capability; nil from is a trusted
// provider grant (used when a user authorizes a declassifier via the
// gateway, which acts with the user's stored privileges).
//
// The holdings check and the grant commit happen under both processes'
// mutexes, so a concurrent Revoke of the grantor serializes with the
// grant: once Revoke returns, no delegation of the revoked capability
// can succeed.
func (k *Kernel) Grant(from, to *Process, caps difc.CapSet) error {
	actor := "provider"
	var unlock func()
	if from != nil {
		actor = from.name
		unlock = lockPair(from, to)
		if fcaps := from.state.Load().caps; k.opts.Enforce && !caps.SubsetOf(fcaps) {
			unlock()
			k.auditf(audit.KindFlowDenied, actor, to.name,
				"grant %s exceeds holdings %s", caps, fcaps)
			return ErrDenied
		}
	} else {
		to.mu.Lock()
		unlock = to.mu.Unlock
	}
	if !to.alive.Load() {
		unlock()
		return ErrDead
	}
	st := to.state.Load()
	to.state.Store(&procState{secrecy: st.secrecy, integrity: st.integrity, caps: st.caps.Union(caps)})
	unlock()
	k.auditf(audit.KindGrant, actor, to.name, "granted %s", caps)
	return nil
}

// Revoke removes capabilities from a process. Only trusted code calls
// Revoke (users revoke through provider front-ends); there is no
// untrusted revocation in the Flume model.
func (k *Kernel) Revoke(p *Process, caps difc.CapSet) {
	p.mu.Lock()
	st := p.state.Load()
	p.state.Store(&procState{secrecy: st.secrecy, integrity: st.integrity, caps: st.caps.Revoke(caps.Caps()...)})
	p.mu.Unlock()
	k.auditf(audit.KindRevoke, "provider", p.name, "revoked %s", caps)
}

// Send delivers data from one process to another, subject to the Flume
// safe-message judgment in both secrecy and integrity. The message
// carries the sender's labels so the receiver knows its provenance.
//
// The flow-allowed audit record is written only after the message is
// actually queued at the receiver; a delivery that fails (mailbox full,
// receiver exited) is recorded as a drop, never as a successful flow.
func (k *Kernel) Send(from *Process, to ProcID, data []byte) error {
	if !from.alive.Load() {
		return ErrDead
	}
	dst, ok := k.Lookup(to)
	if !ok {
		return ErrNoSuchProcess
	}
	if from.msgRate != nil && !from.msgRate.Take(1) {
		k.auditf(audit.KindQuota, from.name, dst.name, "message rate exceeded")
		return &quota.ErrExceeded{Principal: from.owner, Resource: "msg-rate"}
	}
	fst := from.state.Load()
	dstSt := dst.state.Load()
	send := difc.LabelPair{Secrecy: fst.secrecy, Integrity: fst.integrity}
	if k.opts.Enforce {
		recv := difc.LabelPair{Secrecy: dstSt.secrecy, Integrity: dstSt.integrity}
		if err := difc.CheckFlow(send, fst.caps, recv, dstSt.caps); err != nil {
			k.auditf(audit.KindFlowDenied, from.name, dst.name, "%v", err)
			return ErrDenied
		}
	}
	msg := Message{From: from.id, FromName: from.name, Labels: send, Data: data}

	// Queue under the receiver's mutex: Exit flips alive under the same
	// mutex, so a message can never be queued to an already-exited
	// process, and a successful queue strictly happens-before any exit
	// (whose pending messages are discarded by contract). The send case
	// never blocks — the mailbox is buffered and a full buffer falls
	// through to default.
	dst.mu.Lock()
	if !dst.alive.Load() {
		dst.mu.Unlock()
		k.auditf(audit.KindDrop, from.name, dst.name, "receiver exited, %d bytes dropped", len(data))
		return ErrDead
	}
	select {
	case dst.mailboxLocked() <- msg:
		dst.mu.Unlock()
		k.auditf(audit.KindFlowAllowed, from.name, dst.name, "%d bytes %s", len(data), send)
		return nil
	default:
		dst.mu.Unlock()
		k.auditf(audit.KindDrop, from.name, dst.name, "mailbox full, %d bytes dropped", len(data))
		return ErrMailboxFull
	}
}

// Receive blocks until a message arrives, the context is canceled, or
// the process exits. The flow is re-validated against the receiver's
// labels at delivery time: if the receiver has shed taint since the
// message was queued, delivering it would be a downward flow, so the
// message is discarded (audited) and the next one is considered.
func (k *Kernel) Receive(ctx context.Context, p *Process) (Message, error) {
	if !p.alive.Load() {
		return Message{}, ErrDead
	}
	mailbox, done := p.mailboxCh(), p.doneCh()
	for {
		select {
		case m := <-mailbox:
			if k.opts.Enforce {
				st := p.state.Load()
				recv := difc.LabelPair{Secrecy: st.secrecy, Integrity: st.integrity}
				if err := difc.CheckFlow(m.Labels, difc.EmptyCaps, recv, st.caps); err != nil {
					k.auditf(audit.KindFlowDenied, m.FromName, p.name,
						"stale delivery: %v", err)
					continue
				}
			}
			return m, nil
		case <-done:
			return Message{}, ErrDead
		case <-ctx.Done():
			return Message{}, ErrInterrupted
		}
	}
}

// TryReceive is Receive without blocking; ok is false when the mailbox
// is empty.
func (k *Kernel) TryReceive(p *Process) (Message, bool) {
	ch := p.mailbox.Load()
	if ch == nil {
		return Message{}, false // nothing was ever sent here
	}
	for {
		select {
		case m := <-*ch:
			if k.opts.Enforce {
				st := p.state.Load()
				recv := difc.LabelPair{Secrecy: st.secrecy, Integrity: st.integrity}
				if err := difc.CheckFlow(m.Labels, difc.EmptyCaps, recv, st.caps); err != nil {
					k.auditf(audit.KindFlowDenied, m.FromName, p.name,
						"stale delivery: %v", err)
					continue
				}
			}
			return m, true
		default:
			return Message{}, false
		}
	}
}

// Export checks whether p may emit nbytes across the security perimeter
// toward a destination whose session holds extra capabilities (the
// gateway passes the authenticated user's session privileges). On
// success the network quota is charged. The destination string is used
// only for auditing.
func (k *Kernel) Export(p *Process, extra difc.CapSet, dest string, nbytes int) error {
	if !p.alive.Load() {
		return ErrDead
	}
	st := p.state.Load()
	caps := st.caps.Union(extra)
	if k.opts.Enforce && !difc.CanExport(st.secrecy, caps) {
		k.auditf(audit.KindExportDenied, p.name, dest,
			"residue %s", difc.ExportResidue(st.secrecy, caps))
		return ErrDenied
	}
	if p.account != nil {
		if err := p.account.Charge(quota.Network, uint64(nbytes)); err != nil {
			k.auditf(audit.KindQuota, p.name, dest, "%v", err)
			return err
		}
	}
	k.auditf(audit.KindExport, p.name, dest, "%d bytes", nbytes)
	return nil
}

// DropPrivileges removes every capability from p, used by declassifier
// harnesses after setup so the running code holds only what its policy
// needs (least privilege).
func (k *Kernel) DropPrivileges(p *Process, keep difc.CapSet) {
	p.mu.Lock()
	st := p.state.Load()
	p.state.Store(&procState{secrecy: st.secrecy, integrity: st.integrity, caps: keep})
	p.mu.Unlock()
	k.auditf(audit.KindRevoke, "provider", p.name, "privileges reduced to %s", keep)
}
