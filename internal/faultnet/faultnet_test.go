package faultnet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestPlanScriptIsExactAndDeterministic(t *testing.T) {
	script := []Fault{Drop, None, Status, Truncate, Corrupt, Delay}
	p := &Plan{Script: script}
	for i, want := range script {
		if got := p.next(); got != want {
			t.Fatalf("request %d: fault %v, want %v", i, got, want)
		}
	}
	// Past the script with no flap/prob: clean forever.
	for i := 0; i < 10; i++ {
		if got := p.next(); got != None {
			t.Fatalf("post-script request %d faulted: %v", i, got)
		}
	}
	reqs, inj := p.Stats()
	if reqs != uint64(len(script))+10 {
		t.Errorf("requests = %d", reqs)
	}
	for _, f := range []Fault{Drop, Status, Truncate, Corrupt, Delay} {
		if inj[f] != 1 {
			t.Errorf("injected[%v] = %d, want 1", f, inj[f])
		}
	}
}

func TestPlanFlapCycle(t *testing.T) {
	p := &Plan{FlapUp: 2, FlapDown: 3, FlapFault: Status}
	var got []Fault
	for i := 0; i < 10; i++ {
		got = append(got, p.next())
	}
	want := []Fault{None, None, Status, Status, Status, None, None, Status, Status, Status}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flap sequence %v, want %v", got, want)
		}
	}
}

func TestPlanSeededProbabilityIsReproducible(t *testing.T) {
	run := func() []Fault {
		p := &Plan{Prob: 0.5, ProbFault: Drop, Seed: 42}
		var out []Fault
		for i := 0; i < 32; i++ {
			out = append(out, p.next())
		}
		return out
	}
	a, b := run(), run()
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] == Drop {
			faults++
		}
	}
	if faults == 0 || faults == 32 {
		t.Fatalf("p=0.5 over 32 requests injected %d faults", faults)
	}
}

func TestPlanExtendSchedulesFutureFaults(t *testing.T) {
	p := &Plan{}
	for i := 0; i < 5; i++ {
		if got := p.next(); got != None {
			t.Fatalf("pre-extend request %d faulted: %v", i, got)
		}
	}
	p.Extend(2, Status)
	seq := []Fault{p.next(), p.next(), p.next()}
	want := []Fault{Status, Status, None}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("post-extend sequence %v, want %v", seq, want)
		}
	}
}

// upstream returns a server that answers a fixed JSON document.
func upstream(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true,"payload":"0123456789abcdef0123456789abcdef"}`))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestTransportInjectsEachFault(t *testing.T) {
	srv := upstream(t)
	plan := &Plan{Script: []Fault{None, Drop, Status, Truncate, Corrupt}}
	client := &http.Client{Transport: &Transport{Plan: plan}}

	decode := func() (map[string]any, int, error) {
		resp, err := client.Get(srv.URL)
		if err != nil {
			return nil, 0, err
		}
		defer resp.Body.Close()
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			return nil, resp.StatusCode, err
		}
		return doc, resp.StatusCode, nil
	}

	if doc, _, err := decode(); err != nil || doc["ok"] != true {
		t.Fatalf("clean request: %v %v", doc, err)
	}
	if _, _, err := decode(); err == nil {
		t.Fatal("Drop did not surface a transport error")
	}
	if _, code, _ := decode(); code != http.StatusBadGateway {
		t.Fatalf("Status fault: code %d, want 502", code)
	}
	if _, _, err := decode(); err == nil {
		t.Fatal("Truncate did not break the body")
	}
	if _, _, err := decode(); err == nil {
		t.Fatal("Corrupt did not break the JSON")
	}
	// The plan is exhausted: traffic is clean again (recovery).
	if doc, _, err := decode(); err != nil || doc["ok"] != true {
		t.Fatalf("post-plan request: %v %v", doc, err)
	}
}

func TestTransportDelayRespectsContextDeadline(t *testing.T) {
	srv := upstream(t)
	plan := &Plan{Script: []Fault{Delay}, Latency: 5 * time.Second}
	client := &http.Client{
		Transport: &Transport{Plan: plan},
		Timeout:   50 * time.Millisecond,
	}
	start := time.Now()
	_, err := client.Get(srv.URL)
	if err == nil {
		t.Fatal("delayed request did not time out")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("timeout took %v; the delay ignored the deadline", d)
	}
}

func TestProxyForwardsAndInjects(t *testing.T) {
	srv := upstream(t)
	plan := &Plan{Script: []Fault{None, Drop, Status, Truncate, Corrupt}}
	proxy, err := NewProxy(srv.URL, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	// Fresh connection per request: net/http transparently retries an
	// idempotent request whose REUSED connection died, which would let
	// a Drop consume two plan slots and hide the error.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

	fetch := func() (map[string]any, int, error) {
		resp, err := client.Get(proxy.URL() + "/whatever?x=1")
		if err != nil {
			return nil, 0, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, resp.StatusCode, err
		}
		var doc map[string]any
		if err := json.Unmarshal(body, &doc); err != nil {
			return nil, resp.StatusCode, err
		}
		return doc, resp.StatusCode, nil
	}

	if doc, code, err := fetch(); err != nil || code != 200 || doc["ok"] != true {
		t.Fatalf("clean proxy request: %v %d %v", doc, code, err)
	}
	if _, _, err := fetch(); err == nil {
		t.Fatal("proxy Drop did not kill the connection")
	}
	if _, code, _ := fetch(); code != http.StatusBadGateway {
		t.Fatalf("proxy Status: code %d, want 502", code)
	}
	if _, _, err := fetch(); err == nil {
		t.Fatal("proxy Truncate did not break the body")
	}
	if _, _, err := fetch(); err == nil {
		t.Fatal("proxy Corrupt did not break the JSON")
	}
	if doc, _, err := fetch(); err != nil || doc["ok"] != true {
		t.Fatalf("post-plan proxy request: %v %v", doc, err)
	}
}
