// Package faultnet injects deterministic, seedable network faults into
// HTTP paths, for testing how the federation subsystem (and anything
// else that talks over a socket) degrades and recovers.
//
// Two injection points cover the two test shapes:
//
//   - Transport wraps an http.RoundTripper, for in-process tests: the
//     client under test keeps its real URL and the faults happen
//     between it and the wire.
//   - Proxy is an HTTP forwarder on its own net.Listener, for
//     multi-process tests: point a real daemon's peer URL at the proxy
//     and the faults happen between two live processes on loopback.
//
// Faults are decided per request by a Plan. A Plan is deterministic: a
// scripted prefix fires exactly in order, and anything after the script
// is driven by a seeded math/rand source plus an optional flap cycle —
// the same plan against the same request sequence always injects the
// same faults, so a failing run reproduces.
package faultnet

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Fault is one kind of injected failure.
type Fault int

const (
	// None forwards the request untouched.
	None Fault = iota
	// Drop fails the request at the connection level (refused/reset):
	// the client sees a transport error, never an HTTP response.
	Drop
	// Delay holds the request for Plan.Latency before forwarding it —
	// long enough plans turn this into a client-side timeout.
	Delay
	// Status answers Plan.StatusCode (default 502) without forwarding.
	Status
	// Truncate forwards the request but cuts the response body short,
	// declaring the full Content-Length — the client sees an
	// unexpected EOF mid-body.
	Truncate
	// Corrupt forwards the request but flips bytes in the response
	// body, so structured payloads (JSON) fail to parse.
	Corrupt
)

// String names the fault for logs and counters.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Status:
		return "status"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Plan decides which fault each request suffers. The zero value
// forwards everything. Configure before use; the deciding state is
// internally synchronized, so one Plan may serve concurrent requests
// (decisions are then deterministic per arrival order).
type Plan struct {
	// Script is consumed first: request i < len(Script) suffers
	// Script[i] exactly.
	Script []Fault

	// After the script, FlapUp/FlapDown alternate windows of healthy
	// and faulty requests (FlapUp clean, then FlapDown × FlapFault,
	// repeating) — the "link that works in bursts" shape.
	FlapUp, FlapDown int
	// FlapFault is the fault injected during down windows (default Drop).
	FlapFault Fault

	// Prob injects ProbFault on each post-script request with this
	// probability, drawn from a rand source seeded with Seed — layered
	// on top of the flap cycle (flap wins when both would fire).
	Prob      float64
	ProbFault Fault
	Seed      int64

	// Latency is the hold time for Delay faults (default 50ms).
	Latency time.Duration
	// StatusCode is the response code for Status faults (default 502).
	StatusCode int

	mu       sync.Mutex
	requests uint64
	injected map[Fault]uint64
	rng      *rand.Rand
}

// next decides the fault for the next request and updates counters.
func (p *Plan) next() Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	i := p.requests
	p.requests++
	f := None
	switch {
	case i < uint64(len(p.Script)):
		f = p.Script[i]
	default:
		j := i - uint64(len(p.Script))
		if p.FlapDown > 0 {
			cycle := uint64(p.FlapUp + p.FlapDown)
			if j%cycle >= uint64(p.FlapUp) {
				f = p.FlapFault
				if f == None {
					f = Drop
				}
			}
		}
		if f == None && p.Prob > 0 {
			if p.rng == nil {
				p.rng = rand.New(rand.NewSource(p.Seed))
			}
			if p.rng.Float64() < p.Prob {
				f = p.ProbFault
				if f == None {
					f = Drop
				}
			}
		}
	}
	if f != None {
		if p.injected == nil {
			p.injected = make(map[Fault]uint64)
		}
		p.injected[f]++
	}
	return f
}

// Extend schedules n copies of f for the NEXT n requests, regardless
// of how many requests have already passed: the script is padded with
// None up to the current request count first. This is how a test
// injects a bounded outage mid-run — "the next 12 requests fail" —
// after clean traffic has already flowed.
func (p *Plan) Extend(n int, f Fault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for uint64(len(p.Script)) < p.requests {
		p.Script = append(p.Script, None)
	}
	for i := 0; i < n; i++ {
		p.Script = append(p.Script, f)
	}
}

// latency returns the configured Delay hold time.
func (p *Plan) latency() time.Duration {
	if p.Latency > 0 {
		return p.Latency
	}
	return 50 * time.Millisecond
}

// statusCode returns the configured Status response code.
func (p *Plan) statusCode() int {
	if p.StatusCode > 0 {
		return p.StatusCode
	}
	return http.StatusBadGateway
}

// Stats reports how many requests the plan has seen and how many
// faults it injected, by kind.
func (p *Plan) Stats() (requests uint64, injected map[Fault]uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Fault]uint64, len(p.injected))
	for k, v := range p.injected {
		out[k] = v
	}
	return p.requests, out
}

// errDropped is the transport-level error a Drop fault surfaces.
type errDropped struct{}

func (errDropped) Error() string   { return "faultnet: connection dropped" }
func (errDropped) Timeout() bool   { return false }
func (errDropped) Temporary() bool { return true }

var _ net.Error = errDropped{}

// Transport wraps an http.RoundTripper with a fault plan. The zero
// Base means http.DefaultTransport.
type Transport struct {
	Base http.RoundTripper
	Plan *Plan
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	f := None
	if t.Plan != nil {
		f = t.Plan.next()
	}
	switch f {
	case Drop:
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: errDropped{}}
	case Delay:
		select {
		case <-time.After(t.Plan.latency()):
		case <-req.Context().Done():
			// The client's deadline fired during the hold — surface it
			// exactly like a dial that timed out.
			return nil, req.Context().Err()
		}
	case Status:
		code := t.Plan.statusCode()
		return &http.Response{
			Status:     fmt.Sprintf("%d %s", code, http.StatusText(code)),
			StatusCode: code,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader("injected fault\n")),
			ContentLength: int64(len("injected fault\n")),
			Request:       req,
		}, nil
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	switch f {
	case Truncate:
		resp.Body = truncateBody(resp.Body)
	case Corrupt:
		resp.Body = corruptBody(resp.Body)
	}
	return resp, nil
}

// truncateBody reads the upstream body and returns roughly the first
// half, closing the original; the declared Content-Length (if any) is
// left alone so the client sees a short read.
func truncateBody(body io.ReadCloser) io.ReadCloser {
	data, _ := io.ReadAll(body)
	body.Close()
	return io.NopCloser(&shortReader{data: data[:len(data)/2]})
}

// shortReader serves its bytes then returns ErrUnexpectedEOF, which is
// what a connection cut mid-body looks like to net/http clients.
type shortReader struct{ data []byte }

func (r *shortReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// corruptBody stomps a NUL over the middle of the payload, keeping the
// length intact. A control byte is illegal anywhere in JSON — even
// inside strings, where a mere bit-flip would survive decoding.
func corruptBody(body io.ReadCloser) io.ReadCloser {
	data, _ := io.ReadAll(body)
	body.Close()
	if len(data) > 0 {
		data[len(data)/2] = 0x00
	}
	return io.NopCloser(strings.NewReader(string(data)))
}
