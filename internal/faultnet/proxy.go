package faultnet

// Proxy: the multi-process injection point. It owns a real
// net.Listener on loopback and forwards each HTTP request to a fixed
// upstream, consulting its Plan first — so two live daemons can talk
// through it and suffer exactly the faults the test scripted.

import (
	"io"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Proxy is a fault-injecting HTTP forwarder.
type Proxy struct {
	plan     *Plan
	upstream string // base URL, e.g. http://127.0.0.1:8055
	ln       net.Listener
	srv      *http.Server
	client   *http.Client
}

// NewProxy listens on 127.0.0.1:0 and forwards to the upstream base
// URL through plan. Close releases the listener.
func NewProxy(upstream string, plan *Plan) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		plan:     plan,
		upstream: upstream,
		ln:       ln,
		// The proxy's own client must not recycle a connection the
		// upstream half-closed during a fault, so keep-alives stay on
		// but with a short idle timeout.
		client: &http.Client{Transport: &http.Transport{IdleConnTimeout: 5 * time.Second}},
	}
	p.srv = &http.Server{Handler: http.HandlerFunc(p.serve)}
	go p.srv.Serve(ln)
	return p, nil
}

// URL is the proxy's base URL — hand it to the peer configuration
// under test in place of the upstream's.
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// Close stops accepting and closes the listener.
func (p *Proxy) Close() error { return p.srv.Close() }

func (p *Proxy) serve(w http.ResponseWriter, r *http.Request) {
	f := None
	if p.plan != nil {
		f = p.plan.next()
	}
	switch f {
	case Drop:
		// Kill the TCP connection without an HTTP response: the client
		// sees a reset/EOF, the connection-failure class.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		// No hijacking support (shouldn't happen on HTTP/1.1): degrade
		// to an empty 502.
		w.WriteHeader(http.StatusBadGateway)
		return
	case Delay:
		select {
		case <-time.After(p.plan.latency()):
		case <-r.Context().Done():
			return
		}
	case Status:
		http.Error(w, "injected fault", p.plan.statusCode())
		return
	}

	req, err := http.NewRequestWithContext(r.Context(), r.Method,
		p.upstream+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, "proxy: bad request", http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		http.Error(w, "proxy: upstream unreachable", http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, "proxy: upstream read failed", http.StatusBadGateway)
		return
	}
	switch f {
	case Truncate:
		// Declare the full length, send half, and close: the client
		// observes a connection cut mid-body.
		for k, vs := range resp.Header {
			w.Header()[k] = vs
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(resp.StatusCode)
		w.Write(body[:len(body)/2])
		// Returning with fewer bytes than declared makes net/http
		// terminate the connection, surfacing ErrUnexpectedEOF.
		return
	case Corrupt:
		// NUL, not a bit-flip: control bytes are illegal anywhere in
		// JSON, including inside strings (see corruptBody).
		if len(body) > 0 {
			body[len(body)/2] = 0x00
		}
	}
	for k, vs := range resp.Header {
		w.Header()[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}
