package loadgen

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Bucket mapping must be monotone and self-consistent: every value
// lands in a bucket whose upper bound is >= the value and within ~3.1%
// of it (one sub-bucket width).
func TestHistBucketBounds(t *testing.T) {
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 12345,
		1e6, 19e6 + 7, 1e9, 5e10, 1<<39 - 2} {
		idx := bucketOf(v)
		upper := bucketUpper(idx)
		if upper < v {
			t.Errorf("v=%d: bucket upper %d below the value", v, upper)
		}
		if v >= histSub {
			if rel := float64(upper-v) / float64(v); rel > 1.0/histSub {
				t.Errorf("v=%d: bucket upper %d overshoots by %.3f (> %.3f)",
					v, upper, rel, 1.0/histSub)
			}
		}
		if idx > 0 && bucketUpper(idx-1) >= upper {
			t.Errorf("bucket %d: upper bounds not strictly increasing", idx)
		}
	}
}

// Percentiles over a known sample set must match the exact order
// statistics within one bucket width (3.1% relative), and never
// under-report.
func TestHistPercentileAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var h Hist
	samples := make([]int64, 100_000)
	for i := range samples {
		// Log-uniform over ~[1µs, 1s]: exercises many octaves.
		v := int64(math.Exp(r.Float64()*math.Log(1e9/1e3)) * 1e3)
		samples[i] = v
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)-1))]
		got := h.Percentile(q)
		if got < exact {
			t.Errorf("p%g: %d under-reports exact %d", q*100, got, exact)
		}
		if rel := float64(got-exact) / float64(exact); rel > 2.0/histSub {
			t.Errorf("p%g: %d vs exact %d, rel error %.3f", q*100, got, exact, rel)
		}
	}
	if h.Percentile(1) != h.Max() {
		t.Errorf("p100 %d != max %d", h.Percentile(1), h.Max())
	}
}

// Merging per-connection histograms must equal recording everything
// into one — the contention-free merge contract.
func TestHistMergeEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var whole Hist
	parts := make([]Hist, 8)
	for i := 0; i < 50_000; i++ {
		v := int64(r.Intn(1e8))
		whole.Record(v)
		parts[i%len(parts)].Record(v)
	}
	var merged Hist
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged != whole {
		t.Fatal("merged per-connection histograms differ from single-histogram recording")
	}
}

func TestHistEmptyAndClamp(t *testing.T) {
	var h Hist
	if h.Percentile(0.99) != 0 {
		t.Error("empty histogram should report 0")
	}
	h.Record(-5) // clamps to 0, never panics
	h.Record(1 << 50)
	if h.Count() != 2 {
		t.Errorf("count %d after two records", h.Count())
	}
	if h.Percentile(1) != 1<<50 {
		t.Errorf("max-tracking lost the clamped value: %d", h.Percentile(1))
	}
}
