// Package loadgen is the capacity harness: an open-loop,
// multi-connection load driver that replays a deterministic mixed
// scenario trace (internal/workload) against a live W5 gateway over
// raw keep-alive sockets (internal/benchutil's GatewayConn), recording
// coordinated-omission-corrected latency histograms and error rates.
//
// Open-loop means the request schedule is fixed BEFORE the run: with a
// target rate R, request k is due at T0 + k/R whether or not the
// server has answered request k-1. A closed-loop driver (issue, wait,
// issue) would slow its own arrival rate exactly when the server
// struggles — the coordinated-omission trap that makes saturated
// systems look healthy. Here a stalled server faces a growing backlog
// of due requests, and every latency is measured from the request's
// INTENDED send time, so queueing delay the schedule suffered is in
// the histogram where it belongs. See README.md for the full argument.
package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"w5/internal/benchutil"
	"w5/internal/gateway"
	"w5/internal/workload"
)

// SeedPassword is the password every dev-seeded account gets (this is
// a load fixture, not a threat model).
const SeedPassword = "pw"

// SLO is the service-level objective a rate must meet to count as
// sustained: error rate at or under MaxErrorRate AND p99 latency at or
// under P99.
type SLO struct {
	MaxErrorRate float64
	P99          time.Duration
}

// DefaultSLO: at most 1% errors, p99 under 250 ms. Generous on
// purpose — shared CI runners are the floor this has to hold on; the
// committed baseline tightens the real contract.
func DefaultSLO() SLO {
	return SLO{MaxErrorRate: 0.01, P99: 250 * time.Millisecond}
}

// Config parameterizes one fixed-rate open-loop run.
type Config struct {
	// Addr is the gateway's host:port. The daemon there must have been
	// seeded with at least Users dev accounts (w5d -dev-seed N, or
	// StartFixture) and must not rate-limit logins.
	Addr string
	// Users is the seeded population size the trace draws from.
	Users int
	// Conns is the number of concurrent keep-alive connections; ops are
	// dealt to them round-robin off the one global schedule.
	Conns int
	// RPS is the open-loop arrival rate; Duration the schedule length.
	RPS      float64
	Duration time.Duration
	// Seed pins the whole trace; same seed, same requests.
	Seed int64
	// Mix, ItemsPerUser, ZipfS parameterize the trace
	// (workload.TraceConfig); zero values take workload's defaults.
	Mix          []workload.MixEntry
	ItemsPerUser int
	ZipfS        float64
	// SLO judges the run; zero value means DefaultSLO.
	SLO SLO
}

// ScenarioStats counts one scenario's outcomes within a run.
type ScenarioStats struct {
	Sent   int
	Errors int
}

// Result is one fixed-rate run's measurement.
type Result struct {
	OfferedRPS  float64
	AchievedRPS float64
	Ops         int
	Errors      int
	ErrorRate   float64
	Elapsed     time.Duration
	Hist        Hist
	P50         time.Duration
	P99         time.Duration
	P999        time.Duration
	Scenarios   map[string]*ScenarioStats
	// SLOPass reports whether this run met cfg.SLO while keeping up
	// with the offered schedule (achieved >= 90% of offered).
	SLOPass bool
}

// Run executes one fixed-rate open-loop window and reports it.
func Run(cfg Config) (*Result, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("loadgen: Addr required")
	}
	if cfg.Users < 1 {
		cfg.Users = 1
	}
	if cfg.Conns < 1 {
		cfg.Conns = 1
	}
	if cfg.RPS <= 0 {
		return nil, fmt.Errorf("loadgen: RPS must be positive")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Duration must be positive")
	}
	if cfg.SLO == (SLO{}) {
		cfg.SLO = DefaultSLO()
	}

	users := workload.Users(cfg.Users)
	cookies, err := loginAll(cfg.Addr, users)
	if err != nil {
		return nil, err
	}

	n := int(cfg.RPS * cfg.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	ops := workload.Trace(workload.TraceConfig{
		Seed: cfg.Seed, Users: cfg.Users, ItemsPerUser: cfg.ItemsPerUser,
		ZipfS: cfg.ZipfS, Mix: cfg.Mix,
	}, n)

	workers := make([]*worker, cfg.Conns)
	for i := range workers {
		w, err := newWorker(cfg.Addr, users, cookies)
		if err != nil {
			for _, prev := range workers[:i] {
				prev.close()
			}
			return nil, fmt.Errorf("loadgen: dialing conn %d: %w", i, err)
		}
		workers[i] = w
	}
	defer func() {
		for _, w := range workers {
			w.close()
		}
	}()

	// The schedule: op k is due at t0 + k*gap, regardless of anything
	// the server does. A small lead lets every worker reach its first
	// sleep before the clock starts.
	gap := time.Duration(float64(time.Second) / cfg.RPS)
	t0 := time.Now().Add(10 * time.Millisecond)
	var wg sync.WaitGroup
	for c, w := range workers {
		wg.Add(1)
		go func(c int, w *worker) {
			defer wg.Done()
			for k := c; k < n; k += cfg.Conns {
				w.issue(ops[k], t0.Add(time.Duration(k)*gap))
			}
			w.done = time.Now()
		}(c, w)
	}
	wg.Wait()

	res := &Result{
		OfferedRPS: cfg.RPS,
		Ops:        n,
		Scenarios:  map[string]*ScenarioStats{},
	}
	end := t0
	for _, w := range workers {
		res.Hist.Merge(&w.hist)
		res.Errors += w.errors
		for s, st := range w.scenarios {
			agg := res.Scenarios[s]
			if agg == nil {
				agg = &ScenarioStats{}
				res.Scenarios[s] = agg
			}
			agg.Sent += st.Sent
			agg.Errors += st.Errors
		}
		if w.done.After(end) {
			end = w.done
		}
	}
	res.Elapsed = end.Sub(t0)
	if res.Elapsed > 0 {
		res.AchievedRPS = float64(n) / res.Elapsed.Seconds()
	}
	res.ErrorRate = float64(res.Errors) / float64(n)
	res.P50 = time.Duration(res.Hist.Percentile(0.50))
	res.P99 = time.Duration(res.Hist.Percentile(0.99))
	res.P999 = time.Duration(res.Hist.Percentile(0.999))
	res.SLOPass = res.ErrorRate <= cfg.SLO.MaxErrorRate &&
		res.P99 <= cfg.SLO.P99 &&
		res.AchievedRPS >= 0.9*cfg.RPS
	return res, nil
}

// loginAll establishes one session per seeded user and returns the
// cookie values, indexed like users. Logins go through net/http — this
// is setup, not measurement — with modest parallelism because each one
// costs the server a ~0.5 ms KDF.
func loginAll(addr string, users []string) ([]string, error) {
	cookies := make([]string, len(users))
	sem := make(chan struct{}, 8)
	errs := make(chan error, len(users))
	var wg sync.WaitGroup
	for i, u := range users {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			resp, err := http.PostForm("http://"+addr+"/login",
				url.Values{"user": {u}, "password": {SeedPassword}})
			if err != nil {
				errs <- fmt.Errorf("loadgen: login %s: %w", u, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("loadgen: login %s: status %d (is the daemon seeded with -dev-seed >= %d and -login-rate 0?)",
					u, resp.StatusCode, len(users))
				return
			}
			for _, c := range resp.Cookies() {
				if c.Name == gateway.SessionCookie {
					cookies[i] = c.Value
				}
			}
			if cookies[i] == "" {
				errs <- fmt.Errorf("loadgen: login %s: no session cookie", u)
			}
		}(i, u)
	}
	wg.Wait()
	close(errs)
	return cookies, <-errs
}

// worker is one keep-alive connection plus its private, unsynchronized
// measurement state.
type worker struct {
	addr      string
	conn      *benchutil.GatewayConn
	b         reqBuilder
	hist      Hist
	errors    int
	scenarios map[string]*ScenarioStats
	done      time.Time
}

func newWorker(addr string, users, cookies []string) (*worker, error) {
	conn, err := benchutil.DialAddr(addr)
	if err != nil {
		return nil, err
	}
	w := &worker{
		addr:      addr,
		conn:      conn,
		b:         reqBuilder{host: addr, users: users, cookies: cookies},
		scenarios: map[string]*ScenarioStats{},
	}
	// Warm the connection outside the measured schedule.
	if _, err := conn.Exchange(w.b.whoami()); err != nil {
		conn.Close()
		return nil, err
	}
	return w, nil
}

func (w *worker) close() {
	if w.conn != nil {
		w.conn.Close()
	}
}

// issue sends one op at (or as soon as possible after) its scheduled
// time and records the latency from the SCHEDULED time — the
// coordinated-omission correction: a request the connection could not
// even start on time has already waited, and that wait is real
// user-visible latency.
func (w *worker) issue(op workload.Op, due time.Time) {
	if d := time.Until(due); d > 0 {
		time.Sleep(d)
	}
	req := w.b.build(op)
	ok := false
	if w.conn != nil {
		status, err := w.conn.Exchange(req)
		if err != nil {
			// The connection is poisoned (mid-response failure, reset);
			// drop it and redial for the next op.
			w.conn.Close()
			w.conn = nil
		} else {
			ok = status == http.StatusOK
		}
	}
	if w.conn == nil {
		if conn, err := benchutil.DialAddr(w.addr); err == nil {
			w.conn = conn
		}
	}
	w.hist.RecordDuration(time.Since(due))
	st := w.scenarios[op.Scenario]
	if st == nil {
		st = &ScenarioStats{}
		w.scenarios[op.Scenario] = st
	}
	st.Sent++
	if !ok {
		w.errors++
		st.Errors++
	}
}

// reqBuilder renders ops into raw HTTP/1.1 request bytes, reusing one
// buffer per connection. The rendering is a pure function of the op
// and the (fixed) session table, so the byte stream each connection
// writes is as deterministic as the trace itself.
type reqBuilder struct {
	host    string
	users   []string
	cookies []string
	buf     []byte
}

// marketQueries is the pool a market-search op draws from (by item
// index). Every entry matches at least one dev-seeded module so the
// scenario measures a served result page, not an empty miss.
var marketQueries = []string{"social", "blog", "photo", "twin", "wvm", "bytecode"}

// photoPayload is the base64 body every photo-write carries: content
// is constant by design (the trace pins WHICH photo is written; the
// bytes themselves are not what the harness measures).
const photoPayload = "bG9hZGdlbi1waG90by1wYXlsb2Fk" // "loadgen-photo-payload"

func (b *reqBuilder) whoami() []byte {
	b.buf = b.buf[:0]
	b.buf = append(b.buf, "GET /whoami HTTP/1.1\r\nHost: "...)
	b.buf = append(b.buf, b.host...)
	b.buf = append(b.buf, "\r\n\r\n"...)
	return b.buf
}

// build renders one op. Scenario shapes mirror the routes the stock
// apps serve (see workload scenario constants).
func (b *reqBuilder) build(op workload.Op) []byte {
	viewer := b.users[op.Viewer]
	owner := b.users[op.Owner]
	b.buf = b.buf[:0]
	switch op.Scenario {
	case workload.ScenarioLogin:
		body := len("user=") + len(viewer) + len("&password=") + len(SeedPassword)
		b.buf = append(b.buf, "POST /login HTTP/1.1\r\nHost: "...)
		b.buf = append(b.buf, b.host...)
		b.buf = append(b.buf, "\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: "...)
		b.buf = strconv.AppendInt(b.buf, int64(body), 10)
		b.buf = append(b.buf, "\r\n\r\nuser="...)
		b.buf = append(b.buf, viewer...)
		b.buf = append(b.buf, "&password="...)
		b.buf = append(b.buf, SeedPassword...)

	case workload.ScenarioSocialRead:
		b.buf = append(b.buf, "GET /app/social/profile?owner="...)
		b.buf = append(b.buf, owner...)
		b.appendCommon(op.Viewer)

	case workload.ScenarioWVMRead:
		b.buf = append(b.buf, "GET /app/social-wvm/profile?owner="...)
		b.buf = append(b.buf, owner...)
		b.appendCommon(op.Viewer)

	case workload.ScenarioTableQuery:
		b.buf = append(b.buf, "GET /app/blog/?owner="...)
		b.buf = append(b.buf, owner...)
		b.appendCommon(op.Viewer)

	case workload.ScenarioAuditPull:
		b.buf = append(b.buf, "GET /audit?limit=25"...)
		b.appendCommon(op.Viewer)

	case workload.ScenarioMarketSearch:
		// The query is keyed by the op's item draw, so which searches
		// are hot is as Zipf-shaped (and as deterministic) as the rest
		// of the trace. All queries match the dev-seeded twin modules.
		b.buf = append(b.buf, "GET /registry/search?q="...)
		b.buf = append(b.buf, marketQueries[op.Item%len(marketQueries)]...)
		b.appendCommon(op.Viewer)

	case workload.ScenarioPhotoWrite:
		name := "p" + strconv.Itoa(op.Item)
		body := len("name=") + len(name) + len("&data=") + len(photoPayload)
		b.buf = append(b.buf, "POST /app/photoshare/upload?owner="...)
		b.buf = append(b.buf, viewer...) // writes target the viewer's own album
		b.buf = append(b.buf, " HTTP/1.1\r\nHost: "...)
		b.buf = append(b.buf, b.host...)
		b.buf = append(b.buf, "\r\nCookie: "...)
		b.buf = append(b.buf, gateway.SessionCookie...)
		b.buf = append(b.buf, '=')
		b.buf = append(b.buf, b.cookies[op.Viewer]...)
		b.buf = append(b.buf, "\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: "...)
		b.buf = strconv.AppendInt(b.buf, int64(body), 10)
		b.buf = append(b.buf, "\r\n\r\nname="...)
		b.buf = append(b.buf, name...)
		b.buf = append(b.buf, "&data="...)
		b.buf = append(b.buf, photoPayload...)

	default:
		// Unknown scenarios degrade to a cheap authenticated no-op so a
		// mix extension cannot crash the driver mid-run.
		b.buf = append(b.buf, "GET /whoami"...)
		b.appendCommon(op.Viewer)
	}
	return b.buf
}

// appendCommon finishes a body-less GET: HTTP version, Host, session
// cookie, terminator.
func (b *reqBuilder) appendCommon(viewer int) {
	b.buf = append(b.buf, " HTTP/1.1\r\nHost: "...)
	b.buf = append(b.buf, b.host...)
	b.buf = append(b.buf, "\r\nCookie: "...)
	b.buf = append(b.buf, gateway.SessionCookie...)
	b.buf = append(b.buf, '=')
	b.buf = append(b.buf, b.cookies[viewer]...)
	b.buf = append(b.buf, "\r\n\r\n"...)
}
