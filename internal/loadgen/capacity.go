package loadgen

// Capacity measurement: the two BENCH_capacity.json entries.
//
//   - capacity/mixed/rps=<R>: one fixed-rate window well below
//     saturation. Its latency percentiles are comparable run to run
//     (same operating point), so the gate bounds them.
//   - capacity/mixed/max-sustainable: the highest rung of a geometric
//     rate ladder that still meets the SLO while keeping up with the
//     offered schedule. Throughput gates a LOWER bound; latencies are
//     recorded for the table but not gated (NsTolMult 0), because the
//     operating point itself moves between runs.

import (
	"fmt"
	"runtime"
	"time"

	"w5/internal/benchutil"
)

// CapacityOptions parameterizes MeasureCapacity.
type CapacityOptions struct {
	// Addr targets an already-running seeded daemon; empty starts an
	// in-process fixture (StartFixture) for the measurement's duration.
	Addr  string
	Users int
	Conns int
	Seed  int64
	// FixedRPS is the below-saturation reference rate (default 250).
	FixedRPS float64
	// Ladder lists ascending saturation-probe rates; default geometric
	// 250..8000. The search stops at the first failing rung.
	Ladder []float64
	// Window is each run's scheduled duration (default 2s).
	Window time.Duration
	SLO    SLO
}

func (o *CapacityOptions) fill() {
	if o.Users < 1 {
		o.Users = 128
	}
	if o.Conns < 1 {
		o.Conns = 4
	}
	if o.FixedRPS <= 0 {
		o.FixedRPS = 250
	}
	if len(o.Ladder) == 0 {
		o.Ladder = []float64{250, 500, 1000, 2000, 4000, 8000}
	}
	if o.Window <= 0 {
		o.Window = 2 * time.Second
	}
	if o.SLO == (SLO{}) {
		o.SLO = DefaultSLO()
	}
}

// MeasureCapacity runs the fixed-rate window and the saturation ladder
// and returns a Report whose Capacity section is the committed-baseline
// schema. progress (optional) observes each completed run.
func MeasureCapacity(opts CapacityOptions, progress func(string, *Result)) (benchutil.Report, error) {
	opts.fill()
	rep := benchutil.Report{
		Benchmark: "w5 open-loop capacity",
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
	}

	addr := opts.Addr
	if addr == "" {
		fx, err := StartFixture(opts.Users, opts.Seed)
		if err != nil {
			return rep, err
		}
		defer fx.Close()
		addr = fx.Addr
	}
	run := func(rps float64) (*Result, error) {
		return Run(Config{
			Addr: addr, Users: opts.Users, Conns: opts.Conns,
			RPS: rps, Duration: opts.Window, Seed: opts.Seed, SLO: opts.SLO,
		})
	}

	fixed, err := run(opts.FixedRPS)
	if err != nil {
		return rep, err
	}
	fixedName := fmt.Sprintf("capacity/mixed/rps=%g", opts.FixedRPS)
	if progress != nil {
		progress(fixedName, fixed)
	}
	rep.Capacity = append(rep.Capacity, toCapacityResult(fixedName, fixed, opts,
		1, // throughput at a fixed offered rate barely moves: tight bound
		8, // latency on shared runners jitters: 8x the base tolerance
	))

	// Ladder search: rungs are ascending, so the first failure ends it —
	// a higher rate will not get healthier.
	var best *Result
	for _, rps := range opts.Ladder {
		r, err := run(rps)
		if err != nil {
			return rep, err
		}
		if progress != nil {
			progress(fmt.Sprintf("ladder rps=%g", rps), r)
		}
		if !r.SLOPass {
			break
		}
		best = r
	}
	sat := &Result{} // no rung passed: zeros, which the gate will fail
	if best != nil {
		sat = best
	}
	rep.Capacity = append(rep.Capacity, toCapacityResult("capacity/mixed/max-sustainable", sat, opts,
		2, // the sustained rate is the noisiest number: loosest bound
		0, // latencies at a moving operating point: recorded, not gated
	))
	return rep, nil
}

func toCapacityResult(name string, r *Result, opts CapacityOptions, rpsTol, nsTol float64) benchutil.CapacityResult {
	return benchutil.CapacityResult{
		Name:        name,
		OfferedRPS:  r.OfferedRPS,
		AchievedRPS: r.AchievedRPS,
		ErrorRate:   r.ErrorRate,
		P50Ns:       float64(r.P50),
		P99Ns:       float64(r.P99),
		P999Ns:      float64(r.P999),
		Conns:       opts.Conns,
		Ops:         r.Ops,
		RPSTolMult:  rpsTol,
		NsTolMult:   nsTol,
	}
}
