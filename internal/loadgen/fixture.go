package loadgen

// In-process load fixture: a fully wired provider + gateway serving on
// a real local TCP listener, so loadgen tests and `w5bench -capacity`
// (without -capacity-addr) exercise the exact socket path production
// traffic takes — keep-alive parsing, per-connection session cache,
// sanitizer — with no external daemon to spawn.

import (
	"fmt"
	"net"
	"net/http"

	"w5/internal/apps"
	"w5/internal/audit"
	"w5/internal/core"
	"w5/internal/gateway"
)

// Fixture is a live in-process gateway with a seeded population.
type Fixture struct {
	// Addr is the listener's host:port, ready for Config.Addr.
	Addr     string
	Provider *core.Provider
	srv      *http.Server
	ln       net.Listener
}

// StartFixture seeds a provider with users dev accounts (SeedProvider)
// and serves its gateway on an ephemeral 127.0.0.1 port. Quotas are
// disabled (an open-loop run exhausts cumulative per-app budgets by
// design) and the audit log is a bounded ring (the run only reads the
// recent tail via /audit). Callers must Close.
func StartFixture(users int, seed int64) (*Fixture, error) {
	p := core.NewProvider(core.Config{
		Name:          "w5-load",
		Enforce:       true,
		DisableQuotas: true,
		Audit:         audit.Options{SegmentSize: 1024, RingSegments: 64},
	})
	for _, app := range []core.App{
		apps.Social{}, apps.PhotoShare{}, apps.Blog{},
		apps.Recommend{}, apps.Dating{}, apps.Mashup{},
	} {
		p.InstallApp(app)
	}
	// The WVM twins ride the same request path as the natives; the
	// capacity mix sends a slice of profile reads through social-wvm.
	if err := apps.InstallWVMTwins(p); err != nil {
		return nil, err
	}
	if err := SeedProvider(p, users, seed); err != nil {
		return nil, err
	}
	gw := gateway.New(p, gateway.Options{
		FilterHTML:           true,
		SanitizeCacheEntries: 1024,
		SanitizeCacheBytes:   16 << 20,
		// No login limiter: the harness churns logins on purpose.
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("loadgen: fixture listen: %w", err)
	}
	srv := &http.Server{Handler: gw, ConnContext: gw.ConnContext}
	go srv.Serve(ln)
	return &Fixture{Addr: ln.Addr().String(), Provider: p, srv: srv, ln: ln}, nil
}

// Close tears the fixture down.
func (f *Fixture) Close() {
	f.srv.Close()
}
