package loadgen

// Dev-seed: provision a deterministic synthetic population a load run
// can drive. The same (users, seed) always produces the same accounts,
// friend graph, profiles and blog posts, so a trace replayed against a
// freshly seeded daemon exercises identical server-side state run to
// run. cmd/w5d exposes this as -dev-seed; StartFixture uses it for the
// in-process harness.

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"w5/internal/core"
	"w5/internal/declass"
	"w5/internal/difc"
	"w5/internal/registry"
	"w5/internal/workload"
)

// seedApps are the applications every seeded user enables; the write
// set is the subset the mixed trace writes through.
var (
	seedEnabled = []string{"social", "photoshare", "blog", "social-wvm"}
	seedWrites  = []string{"photoshare", "blog"}
)

// SeedProvider provisions n dev accounts u0000..u<n-1> (password
// SeedPassword) with the scenario mix's prerequisites: the stock apps
// enabled, write grants for the writing apps, a Public declassifier so
// cross-user reads export, a profile and friend list, and two blog
// posts (one private, one public). Content is a pure function of
// (n, seed).
func SeedProvider(p *core.Provider, n int, seed int64) error {
	if n < 1 {
		return fmt.Errorf("loadgen: seed population must be positive")
	}
	names := workload.Users(n)
	friends := workload.FriendGraph(n, 4, 0.1, seed)

	workers := runtime.GOMAXPROCS(0) * 2
	if workers > n {
		workers = n
	}
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if err := seedUser(p, names, friends, i, seed); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}

	// Editors endorse the twin modules with distinct counts, so the
	// market-search scenario exercises a non-trivial CodeRank
	// personalization vector. A provider seeded without the twins (no
	// InstallWVMTwins) just skips them.
	for i, mod := range []string{"social-wvm", "blog-wvm", "photoshare-wvm"} {
		for e := 0; e <= i; e++ {
			if err := p.Registry.Endorse(fmt.Sprintf("editor%d", e), mod); err != nil &&
				!errors.Is(err, registry.ErrNotFound) {
				return fmt.Errorf("loadgen: endorsing %s: %w", mod, err)
			}
		}
	}
	return nil
}

// seedUser provisions one account end to end. Per-user content derives
// from seed+i, and each user's writes happen sequentially on one
// goroutine, so parallel seeding stays deterministic per user (blog
// seq numbers count only the author's own rows).
func seedUser(p *core.Provider, names []string, friends [][]int, i int, seed int64) error {
	name := names[i]
	u, err := p.CreateUser(name, SeedPassword)
	if err != nil {
		return fmt.Errorf("loadgen: seeding %s: %w", name, err)
	}
	for _, app := range seedEnabled {
		if err := p.EnableApp(name, app); err != nil {
			return fmt.Errorf("loadgen: enabling %s for %s: %w", app, name, err)
		}
	}
	for _, app := range seedWrites {
		if err := p.GrantWrite(name, app); err != nil {
			return fmt.Errorf("loadgen: write grant %s for %s: %w", app, name, err)
		}
	}
	// The load mix reads Zipf-sampled OTHER users' profiles and blogs;
	// without an export policy every cross-user response would be
	// (correctly) refused at the gateway. Public is the honest fixture
	// policy: the population consents to being read.
	if err := p.AuthorizeDeclassifier(name, declass.Public{}); err != nil {
		return fmt.Errorf("loadgen: declassifier for %s: %w", name, err)
	}

	label := difc.LabelPair{
		Secrecy:   difc.NewLabel(u.SecrecyTag),
		Integrity: difc.NewLabel(u.WriteTag),
	}
	cred := p.UserCred(name)
	profile := fmt.Sprintf("name: %s\nbio: %s\n", name, workload.Words(12, seed+int64(i)))
	if err := p.FS.Write(cred, "/home/"+name+"/social/profile", []byte(profile), label); err != nil {
		return fmt.Errorf("loadgen: profile for %s: %w", name, err)
	}
	var fl strings.Builder
	for _, f := range friends[i] {
		fl.WriteString(names[f])
		fl.WriteByte('\n')
	}
	if err := p.FS.Write(cred, "/home/"+name+"/social/friends", []byte(fl.String()), label); err != nil {
		return fmt.Errorf("loadgen: friends for %s: %w", name, err)
	}

	for post := 0; post < 2; post++ {
		inv, err := p.Invoke("blog", core.AppRequest{
			Viewer: name, Owner: name, Path: "/post", Method: "POST",
			Params: map[string]string{
				"title":  fmt.Sprintf("%s post %d", name, post+1),
				"body":   workload.Words(40, seed+int64(i)*2+int64(post)),
				"public": map[bool]string{false: "0", true: "1"}[post == 1],
			},
		})
		if err != nil {
			return fmt.Errorf("loadgen: blog post for %s: %w", name, err)
		}
		// Complete the invocation lifecycle (releases the app process);
		// exporting to the author always succeeds.
		if _, err := p.ExportCheck(inv, name); err != nil {
			return fmt.Errorf("loadgen: blog post export for %s: %w", name, err)
		}
	}
	return nil
}
