package loadgen

// Hist is an HDR-style log-linear latency histogram: 32 linear
// sub-buckets per power of two, so every recorded value lands in a
// bucket whose width is at most 1/32 (~3.1%) of its magnitude —
// precise enough to gate percentiles against, across nine decades of
// nanoseconds, in a fixed ~10 KiB array.
//
// The shape is chosen for the open-loop driver's concurrency model:
// each connection records into its OWN Hist with no synchronization at
// all (Record is a single add on a private array), and the driver
// merges the per-connection histograms after the run with Merge —
// bucket-aligned addition, exact, order-independent. Percentiles over
// the merged histogram are therefore computed over every request from
// every connection without a single contended cache line on the hot
// path, which matters because the recording happens INSIDE the latency
// pipeline being measured.

import (
	"fmt"
	"math/bits"
	"time"
)

const (
	// histSubBits: 2^5 = 32 sub-buckets per octave => ≤3.1% relative
	// bucket width.
	histSubBits = 5
	histSub     = 1 << histSubBits
	// Buckets cover [0, 2^39) ns ≈ 9 minutes; anything above clamps
	// into the top bucket and reports the exact tracked max (and a
	// latency that large failed its SLO long before precision
	// mattered).
	histMaxExp  = 40
	histBuckets = (histMaxExp - histSubBits) * histSub // 1120
)

// Hist records non-negative int64 values (nanoseconds, by convention).
// The zero value is ready to use. Not safe for concurrent use — that
// is the point; see the package comment on per-connection recording.
type Hist struct {
	counts [histBuckets]uint64
	total  uint64
	max    int64
}

// bucketOf maps a value to its bucket index. Values < histSub map
// linearly (bucket = value); larger values keep their top 5 mantissa
// bits: index = u*32 + (v>>u) where u shifts v into [32, 64).
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSub {
		return int(v)
	}
	u := bits.Len64(uint64(v)) - (histSubBits + 1)
	idx := u*histSub + int(v>>uint(u))
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketUpper returns the inclusive upper bound of a bucket — the
// value Percentile reports, so percentile estimates err pessimistically
// (never under-reporting a latency) by at most the bucket width.
func bucketUpper(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	u := idx/histSub - 1
	base := int64(idx - u*histSub) // in [32, 64)
	return (base+1)<<uint(u) - 1
}

// Record adds one value.
func (h *Hist) Record(v int64) {
	h.counts[bucketOf(v)]++
	h.total++
	if v > h.max {
		h.max = v
	}
}

// RecordDuration adds one duration in nanoseconds.
func (h *Hist) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded values.
func (h *Hist) Count() uint64 { return h.total }

// Max returns the largest recorded value (exact, not bucketed).
func (h *Hist) Max() int64 { return h.max }

// Merge adds other's counts into h. Buckets are identical across all
// Hists, so merging is exact and commutative.
func (h *Hist) Merge(other *Hist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	if other.max > h.max {
		h.max = other.max
	}
}

// Percentile returns the value at quantile q in [0, 1] (0.99 = p99):
// the upper bound of the bucket containing the q-th ordered sample,
// except the exact maximum for the top occupied bucket. Returns 0 on
// an empty histogram.
func (h *Hist) Percentile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based; q=0 -> first, q=1 -> last.
	rank := uint64(q*float64(h.total-1)) + 1
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			upper := bucketUpper(i)
			// The saturated top bucket and any overshoot past the true
			// maximum both report the exact tracked max instead.
			if i == histBuckets-1 || upper > h.max {
				return h.max
			}
			return upper
		}
	}
	return h.max
}

// String summarizes the distribution for human logs.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v p999=%v max=%v",
		h.total,
		time.Duration(h.Percentile(0.50)),
		time.Duration(h.Percentile(0.99)),
		time.Duration(h.Percentile(0.999)),
		time.Duration(h.max))
}
