package loadgen

import (
	"bytes"
	"testing"
	"time"

	"w5/internal/workload"
)

// End to end: seed a real in-process gateway, drive a short open-loop
// mixed window over multiple raw connections, and require every
// scenario to have run essentially error-free.
func TestRunAgainstFixture(t *testing.T) {
	fx, err := StartFixture(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fx.Close()

	res, err := Run(Config{
		Addr: fx.Addr, Users: 16, Conns: 4,
		RPS: 200, Duration: 1500 * time.Millisecond, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 300 {
		t.Fatalf("expected 300 scheduled ops, got %d", res.Ops)
	}
	if res.Hist.Count() != uint64(res.Ops) {
		t.Errorf("histogram holds %d samples for %d ops", res.Hist.Count(), res.Ops)
	}
	// The DIFC path must answer 200 for every scenario in the mix:
	// cross-user reads export via the seeded Public declassifier, writes
	// ride the write grants. Anything else means the fixture and the
	// driver disagree about the platform's contract.
	if res.Errors != 0 {
		t.Errorf("%d/%d ops failed (%.1f%%): %+v",
			res.Errors, res.Ops, res.ErrorRate*100, res.Scenarios)
	}
	for _, s := range []string{
		workload.ScenarioLogin, workload.ScenarioSocialRead,
		workload.ScenarioPhotoWrite, workload.ScenarioTableQuery,
		workload.ScenarioAuditPull,
	} {
		if res.Scenarios[s] == nil || res.Scenarios[s].Sent == 0 {
			t.Errorf("scenario %s never ran in a 300-op window", s)
		}
	}
	if res.AchievedRPS <= 0 || res.P99 <= 0 {
		t.Errorf("degenerate measurement: achieved=%.1f p99=%v", res.AchievedRPS, res.P99)
	}
}

// Two same-seed configurations must render byte-identical request
// streams — the acceptance criterion that makes capacity runs
// comparable. The builder is exercised exactly as Run uses it: one
// trace, ops dealt round-robin to per-connection builders.
func TestRequestTraceDeterministic(t *testing.T) {
	users := workload.Users(16)
	cookies := make([]string, len(users))
	for i := range cookies {
		cookies[i] = "fixed-cookie-for-determinism-test"
	}
	render := func(seed int64) [][]byte {
		ops := workload.Trace(workload.TraceConfig{Seed: seed, Users: 16}, 400)
		conns := make([]reqBuilder, 4)
		for i := range conns {
			conns[i] = reqBuilder{host: "gw:80", users: users, cookies: cookies}
		}
		out := make([][]byte, len(ops))
		for k, op := range ops {
			out[k] = append([]byte(nil), conns[k%len(conns)].build(op)...)
		}
		return out
	}
	a, b := render(42), render(42)
	for k := range a {
		if !bytes.Equal(a[k], b[k]) {
			t.Fatalf("op %d differs between same-seed renders:\n%q\n%q", k, a[k], b[k])
		}
	}
	c := render(43)
	same := 0
	for k := range a {
		if bytes.Equal(a[k], c[k]) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds rendered identical request streams")
	}
}

// The capacity schema carries what the gate needs: both entries
// present, tolerance multipliers set, and the fixed entry latency-gated
// while the saturation entry is not.
func TestMeasureCapacitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window load run")
	}
	rep, err := MeasureCapacity(CapacityOptions{
		Users: 16, Conns: 2, Seed: 1,
		FixedRPS: 100, Ladder: []float64{100, 200},
		Window: 500 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Capacity) != 2 {
		t.Fatalf("expected 2 capacity entries, got %d", len(rep.Capacity))
	}
	fixed, sat := rep.Capacity[0], rep.Capacity[1]
	if fixed.Name != "capacity/mixed/rps=100" || sat.Name != "capacity/mixed/max-sustainable" {
		t.Fatalf("unexpected entry names: %q, %q", fixed.Name, sat.Name)
	}
	if fixed.NsTolMult == 0 || sat.NsTolMult != 0 {
		t.Errorf("latency gating direction wrong: fixed %v, saturation %v",
			fixed.NsTolMult, sat.NsTolMult)
	}
	if fixed.AchievedRPS <= 0 || fixed.ErrorRate > 0.01 {
		t.Errorf("fixed window unhealthy: %+v", fixed)
	}
	if sat.AchievedRPS <= 0 {
		t.Errorf("no sustainable rung found on loopback: %+v", sat)
	}
}
