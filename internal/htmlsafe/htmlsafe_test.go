package htmlsafe

import (
	"strings"
	"testing"
)

func sanitize(t *testing.T, html string) (string, Report) {
	t.Helper()
	return Sanitize(html, Policy{})
}

func TestPlainHTMLUntouched(t *testing.T) {
	in := `<!DOCTYPE html><html><body><h1>Hi</h1><p class="x">text &amp; more</p></body></html>`
	out, rep := sanitize(t, in)
	if out != in {
		t.Errorf("clean HTML modified:\n in: %s\nout: %s", in, out)
	}
	if !rep.Clean() {
		t.Errorf("report not clean: %+v", rep)
	}
}

func TestScriptElementRemoved(t *testing.T) {
	in := `<p>a</p><script>alert(document.cookie)</script><p>b</p>`
	out, rep := sanitize(t, in)
	if strings.Contains(out, "alert") || strings.Contains(out, "script") {
		t.Errorf("script survived: %s", out)
	}
	if out != "<p>a</p><p>b</p>" {
		t.Errorf("out = %s", out)
	}
	if rep.ScriptsRemoved != 1 {
		t.Errorf("ScriptsRemoved = %d", rep.ScriptsRemoved)
	}
}

func TestScriptObfuscations(t *testing.T) {
	cases := []string{
		`<ScRiPt>evil()</sCrIpT>`,
		`<script type="text/javascript">evil()</script>`,
		`<script
			src="http://evil.example/x.js"></script>`,
		`<script>if (a<b) evil()</script>`,   // '<' inside body
		`<script>s="</scr"+"ipt>"</script >`, // whitespace before '>'
	}
	for _, in := range cases {
		out, rep := sanitize(t, in)
		if strings.Contains(strings.ToLower(out), "evil") {
			t.Errorf("payload survived %q -> %q", in, out)
		}
		if rep.ScriptsRemoved == 0 {
			t.Errorf("no removal reported for %q", in)
		}
	}
}

func TestUnterminatedScriptConsumed(t *testing.T) {
	out, rep := sanitize(t, `<p>x</p><script>evil()`)
	if strings.Contains(out, "evil") {
		t.Errorf("unterminated script leaked: %q", out)
	}
	if rep.ScriptsRemoved != 1 {
		t.Errorf("ScriptsRemoved = %d", rep.ScriptsRemoved)
	}
}

func TestEventHandlerAttributesRemoved(t *testing.T) {
	in := `<img src="cat.jpg" onload="evil()" alt="cat"><div ONCLICK='evil()'>x</div><a onmouseover=evil()>y</a>`
	out, rep := sanitize(t, in)
	low := strings.ToLower(out)
	if strings.Contains(low, "onload") || strings.Contains(low, "onclick") || strings.Contains(low, "onmouseover") {
		t.Errorf("handler survived: %s", out)
	}
	if !strings.Contains(out, `src="cat.jpg"`) || !strings.Contains(out, `alt="cat"`) {
		t.Errorf("legitimate attributes lost: %s", out)
	}
	if rep.AttrsRemoved != 3 {
		t.Errorf("AttrsRemoved = %d, want 3", rep.AttrsRemoved)
	}
}

func TestOnlyRealHandlersRemoved(t *testing.T) {
	// Attributes that merely start with "on" in value, or are exactly
	// "on", survive.
	in := `<input name="once" value="onload"><option on>`
	out, _ := sanitize(t, in)
	if !strings.Contains(out, `name="once"`) || !strings.Contains(out, `value="onload"`) {
		t.Errorf("legitimate attrs removed: %s", out)
	}
}

func TestJavascriptURLsNeutralized(t *testing.T) {
	cases := []string{
		`<a href="javascript:evil()">x</a>`,
		`<a href="JaVaScRiPt:evil()">x</a>`,
		`<a href=" javascript:evil()">x</a>`,
		"<a href=\"\tjavascript:evil()\">x</a>",
		`<a href=javascript:evil()>x</a>`,
		`<form action="javascript:evil()">`,
		`<img src='vbscript:evil()'>`,
		`<a href="data:text/html,<script>evil()</script>">x</a>`,
	}
	for _, in := range cases {
		out, rep := Sanitize(in, Policy{})
		if strings.Contains(strings.ToLower(out), "evil") {
			t.Errorf("URL survived %q -> %q", in, out)
		}
		if rep.URLsNeutralized == 0 {
			t.Errorf("no neutralization reported for %q", in)
		}
		if !strings.Contains(out, "#blocked") {
			t.Errorf("no placeholder in %q", out)
		}
	}
}

func TestSafeURLsKept(t *testing.T) {
	in := `<a href="https://example.org/page?q=1">x</a><img src="/img/cat.png">`
	out, rep := sanitize(t, in)
	if out != in {
		t.Errorf("safe URLs rewritten: %s", out)
	}
	if rep.URLsNeutralized != 0 {
		t.Errorf("URLsNeutralized = %d", rep.URLsNeutralized)
	}
}

func TestActiveElementsStripped(t *testing.T) {
	in := `<iframe src="http://evil"></iframe><object data="x">fallback</object><embed src="y"><applet code="z">old</applet>`
	out, rep := sanitize(t, in)
	low := strings.ToLower(out)
	for _, bad := range []string{"<iframe", "<object", "<embed", "<applet"} {
		if strings.Contains(low, bad) {
			t.Errorf("%s survived: %s", bad, out)
		}
	}
	// Fallback content preserved.
	if !strings.Contains(out, "fallback") || !strings.Contains(out, "old") {
		t.Errorf("fallback content lost: %s", out)
	}
	if rep.ElementsRemoved != 7 { // 4 opening tags + 3 closing tags
		t.Errorf("ElementsRemoved = %d, want 7", rep.ElementsRemoved)
	}
}

func TestAllowScriptsPolicy(t *testing.T) {
	in := `<script>app()</script>`
	out, rep := Sanitize(in, Policy{AllowScripts: true})
	if out != in {
		t.Errorf("AllowScripts modified: %s", out)
	}
	if rep.ScriptsAllowed != 1 || rep.ScriptsRemoved != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestHashAllowlist(t *testing.T) {
	body := `render("profile")`
	in := `<script>` + body + `</script><script>evil()</script>`
	pol := Policy{AllowedHashes: map[string]bool{ScriptHash(body): true}}
	out, rep := Sanitize(in, pol)
	if !strings.Contains(out, "render") {
		t.Errorf("audited script removed: %s", out)
	}
	if strings.Contains(out, "evil") {
		t.Errorf("unaudited script kept: %s", out)
	}
	if rep.ScriptsAllowed != 1 || rep.ScriptsRemoved != 1 {
		t.Errorf("report = %+v", rep)
	}
}

func TestCommentsPreserved(t *testing.T) {
	in := `<p>a</p><!-- a comment with <tags> inside --><p>b</p>`
	out, _ := sanitize(t, in)
	if out != in {
		t.Errorf("comments mangled: %s", out)
	}
}

func TestUnterminatedCommentDropped(t *testing.T) {
	out, _ := sanitize(t, `<p>a</p><!-- hidden <script>evil()</script>`)
	if strings.Contains(out, "evil") {
		t.Errorf("unterminated comment leaked: %s", out)
	}
	if !strings.Contains(out, "<p>a</p>") {
		t.Errorf("preceding content lost: %s", out)
	}
}

func TestBareAngleBracketsAreText(t *testing.T) {
	in := `<p>3 < 5 and x <= y</p>`
	out, _ := sanitize(t, in)
	if out != in {
		t.Errorf("text comparison mangled: got %s", out)
	}
}

func TestSelfClosingTagPreserved(t *testing.T) {
	in := `<br/><img src="a.png" onerror="evil()"/>`
	out, _ := sanitize(t, in)
	if !strings.Contains(out, "<br/>") {
		t.Errorf("self-closing lost: %s", out)
	}
	if !strings.HasSuffix(out, "/>") || strings.Contains(out, "onerror") {
		t.Errorf("self-closing img wrong: %s", out)
	}
}

func TestEmptyAndEdgeInputs(t *testing.T) {
	for _, in := range []string{"", "<", "<>", "< >", "plain text", "<p", "<!---->", "<!doctype html>"} {
		out, _ := sanitize(t, in) // must not panic
		_ = out
	}
}

func TestReportClean(t *testing.T) {
	if !(Report{}).Clean() {
		t.Error("zero report not clean")
	}
	if (Report{AttrsRemoved: 1}).Clean() {
		t.Error("dirty report reported clean")
	}
}

func TestScriptHashStable(t *testing.T) {
	if ScriptHash("x") != ScriptHash("x") {
		t.Error("hash not deterministic")
	}
	if ScriptHash("x") == ScriptHash("y") {
		t.Error("hash collision on different bodies")
	}
	if len(ScriptHash("x")) != 64 {
		t.Error("hash length wrong")
	}
}
