package htmlsafe

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(8, 1<<20)
	pol := Policy{}
	fp := pol.Fingerprint()

	dirty := []byte(`<p>a</p><script>evil()</script>`)
	clean := []byte(`<p>honest page</p>`)

	out, rep, hit := c.Sanitize(nil, dirty, pol, fp)
	if hit || rep.ScriptsRemoved != 1 || string(out) != "<p>a</p>" {
		t.Fatalf("first dirty call: out=%q rep=%+v hit=%v", out, rep, hit)
	}
	out, rep, hit = c.Sanitize(nil, dirty, pol, fp)
	if !hit || rep.ScriptsRemoved != 1 || string(out) != "<p>a</p>" {
		t.Fatalf("second dirty call: out=%q rep=%+v hit=%v", out, rep, hit)
	}

	out, rep, hit = c.Sanitize(nil, clean, pol, fp)
	if hit || !rep.Clean() {
		t.Fatalf("first clean call: rep=%+v hit=%v", rep, hit)
	}
	out, rep, hit = c.Sanitize(nil, clean, pol, fp)
	if !hit || !rep.Clean() {
		t.Fatalf("second clean call: rep=%+v hit=%v", rep, hit)
	}
	// A clean hit serves the caller's own slice — no stored copy.
	if len(out) != len(clean) || &out[0] != &clean[0] {
		t.Error("clean hit did not alias the input body")
	}

	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 0 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 2 hits / 2 misses / 0 evictions / 2 entries", st)
	}
	if st.Bytes != int64(len("<p>a</p>")) {
		t.Errorf("bytes = %d, want only the dirty copy charged", st.Bytes)
	}
}

func TestCacheEntryCapEviction(t *testing.T) {
	c := NewCache(4, 1<<20)
	pol := Policy{}
	fp := pol.Fingerprint()
	for i := 0; i < 10; i++ {
		body := []byte(fmt.Sprintf("<p>page %d</p><script>x()</script>", i))
		c.Sanitize(nil, body, pol, fp)
	}
	st := c.Stats()
	if st.Entries > 4 {
		t.Errorf("entries = %d, want <= 4", st.Entries)
	}
	if st.Evictions == 0 {
		t.Error("expected evictions after overflowing the entry cap")
	}
	if st.Misses != 10 {
		t.Errorf("misses = %d, want 10", st.Misses)
	}
}

func TestCacheByteCapEviction(t *testing.T) {
	// Each dirty page stores ~1 KiB; a 3 KiB budget holds at most 3.
	c := NewCache(64, 3<<10)
	pol := Policy{}
	fp := pol.Fingerprint()
	filler := strings.Repeat("x", 1<<10)
	for i := 0; i < 8; i++ {
		body := []byte(fmt.Sprintf("<p>%s%d</p><script>x()</script>", filler, i))
		c.Sanitize(nil, body, pol, fp)
	}
	st := c.Stats()
	if st.Bytes > 3<<10 {
		t.Errorf("bytes = %d, want <= %d", st.Bytes, 3<<10)
	}
	if st.Evictions == 0 {
		t.Error("expected evictions after overflowing the byte cap")
	}

	// An output larger than the whole budget is never admitted.
	before := c.Stats().Entries
	huge := []byte("<p>" + strings.Repeat("y", 8<<10) + "</p><script>x()</script>")
	_, _, hit := c.Sanitize(nil, huge, pol, fp)
	if hit {
		t.Fatal("first sight of a body cannot be a hit")
	}
	_, _, hit = c.Sanitize(nil, huge, pol, fp)
	if hit {
		t.Error("over-budget output should not have been cached")
	}
	if got := c.Stats().Entries; got != before {
		t.Errorf("entries changed %d -> %d admitting an over-budget body", before, got)
	}
}

// TestCachePolicyIsolation: a user with a different script allowlist
// must never receive bytes sanitized under someone else's policy.
func TestCachePolicyIsolation(t *testing.T) {
	c := NewCache(16, 1<<20)
	body := []byte(`<p>w</p><script>trusted()</script>`)

	strict := Policy{}
	lax := Policy{AllowedHashes: map[string]bool{ScriptHash("trusted()"): true}}
	strictFP, laxFP := strict.Fingerprint(), lax.Fingerprint()
	if strictFP == laxFP {
		t.Fatal("distinct policies produced the same fingerprint")
	}

	outStrict, repStrict, _ := c.Sanitize(nil, body, strict, strictFP)
	if repStrict.ScriptsRemoved != 1 {
		t.Fatalf("strict rep = %+v", repStrict)
	}
	// Same body under the lax policy: must MISS and keep the script.
	outLax, repLax, hit := c.Sanitize(nil, body, lax, laxFP)
	if hit {
		t.Fatal("lax policy hit the strict policy's entry")
	}
	if repLax.ScriptsAllowed != 1 || string(outLax) != string(body) {
		t.Fatalf("lax rep = %+v out = %q", repLax, outLax)
	}
	// Both now cached independently.
	if out, _, hit := c.Sanitize(nil, body, strict, strictFP); !hit || string(out) != string(outStrict) {
		t.Errorf("strict re-request: hit=%v out=%q", hit, out)
	}
	if _, _, hit := c.Sanitize(nil, body, lax, laxFP); !hit {
		t.Error("lax re-request missed")
	}
}

func TestPolicyFingerprintProperties(t *testing.T) {
	a := Policy{AllowedHashes: map[string]bool{"aa": true, "bb": true}}
	b := Policy{AllowedHashes: map[string]bool{"bb": true, "aa": true, "cc": false}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint should ignore order and false entries")
	}
	c := Policy{AllowedHashes: map[string]bool{"aa": true}}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different allowlists collided")
	}
	if (Policy{}).Fingerprint() == (Policy{AllowScripts: true}).Fingerprint() {
		t.Error("AllowScripts must change the fingerprint")
	}
	// "ab","c" vs "a","bc" — the terminator keeps them apart.
	x := Policy{AllowedHashes: map[string]bool{"ab": true, "c": true}}
	y := Policy{AllowedHashes: map[string]bool{"a": true, "bc": true}}
	if x.Fingerprint() == y.Fingerprint() {
		t.Error("concatenation ambiguity in fingerprint")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0, 0)
	body := []byte(`<p>a</p><script>evil()</script>`)
	for i := 0; i < 2; i++ {
		out, rep, hit := c.Sanitize(nil, body, Policy{}, 0)
		if hit || rep.ScriptsRemoved != 1 || string(out) != "<p>a</p>" {
			t.Fatalf("disabled cache call %d: out=%q rep=%+v hit=%v", i, out, rep, hit)
		}
	}
	if st := c.Stats(); st.Entries != 0 || st.Hits != 0 {
		t.Errorf("disabled cache kept state: %+v", st)
	}
}

// TestCacheHotPageStress hammers one hot page from many goroutines
// (run under -race in CI): every request must get the identical
// sanitized bytes, and the cache must settle at one entry.
func TestCacheHotPageStress(t *testing.T) {
	c := NewCache(128, 1<<20)
	pol := Policy{}
	fp := pol.Fingerprint()
	hot := []byte(`<html><body><p>hot</p><script>evil()</script><p>page</p></body></html>`)
	want := `<html><body><p>hot</p><p>page</p></body></html>`

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 0, len(hot))
			for i := 0; i < 500; i++ {
				out, rep, _ := c.Sanitize(buf, hot, pol, fp)
				if rep.ScriptsRemoved != 1 || string(out) != want {
					t.Errorf("hot page corrupted: %q %+v", out, rep)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
	if st.Hits+st.Misses != 8*500 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*500)
	}
	if st.Hits == 0 {
		t.Error("no hits on a hot page")
	}
}
