package htmlsafe

import (
	"crypto/sha256"
	"sort"
	"sync"
	"sync/atomic"
)

// Sanitized-output cache.
//
// The power-law shape of web traffic means a small set of hot public
// pages absorbs most requests, and those pages are usually byte-
// identical between requests. Cache is a bounded cache of sanitizer
// results keyed by (SHA-256 of the raw body, policy fingerprint): a hot
// page pays the filtering pass once per content version and every
// subsequent request is one hash plus one map lookup.
//
// Content-addressed keying is what makes the cache safe to run without
// a TTL: if the app's output changes by even one byte, the key changes
// and the stale entry is simply never looked up again (and is evicted
// by capacity pressure). There is no invalidation protocol to get
// wrong.
//
// Security invariants:
//
//   - Admission happens ONLY inside Cache.Sanitize, with the value the
//     filter itself just produced. There is no Put. The cache can never
//     serve bytes that did not come out of the sanitizer.
//   - The policy fingerprint is part of the key, so a user whose script
//     allowlist differs can never receive bytes sanitized under
//     someone else's policy.
//   - Keys are full SHA-256 sums of the exact body, so a request can
//     only hit an entry whose plaintext the requesting app already
//     produced. See README.md for the covert-channel discussion.
type Cache struct {
	maxEntries int
	maxBytes   int64

	mu    sync.RWMutex
	m     map[cacheKey]*cacheEntry
	bytes int64 // sum of stored sanitized copies

	hits, misses, evictions atomic.Uint64
}

type cacheKey struct {
	sum [sha256.Size]byte // SHA-256 of the raw (pre-sanitize) body
	pol uint64            // Policy.Fingerprint of the policy applied
}

type cacheEntry struct {
	// out is the sanitized output for dirty bodies: a private immutable
	// copy, shared with every hit — callers must not modify it. nil for
	// clean bodies, where the output IS the input the caller already
	// holds, so storing it would only duplicate memory.
	out []byte
	rep Report
}

// NewCache returns a cache bounded to maxEntries entries and maxBytes
// total stored sanitized bytes (clean entries store no bytes and count
// only against maxEntries). Non-positive bounds disable the cache:
// Sanitize degrades to a plain SanitizeBytes call.
func NewCache(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 || maxBytes <= 0 {
		return &Cache{}
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		m:          make(map[cacheKey]*cacheEntry, maxEntries),
	}
}

// Sanitize filters body under pol, consulting the cache. fp must be
// pol.Fingerprint() — callers compute it once per policy, not per
// request. dst is the scratch buffer handed to SanitizeBytes on a miss
// (nil is fine).
//
// On a hit the returned slice is either body itself (clean entry) or
// the shared immutable cached copy (dirty entry) — never rooted in dst.
// Callers must not modify the returned bytes.
func (c *Cache) Sanitize(dst, body []byte, pol Policy, fp uint64) (out []byte, rep Report, hit bool) {
	if c.m == nil { // disabled
		out, rep = SanitizeBytes(dst, body, pol)
		return out, rep, false
	}

	key := cacheKey{sum: sha256.Sum256(body), pol: fp}
	c.mu.RLock()
	e := c.m[key]
	c.mu.RUnlock()
	if e != nil {
		c.hits.Add(1)
		if e.out == nil {
			return body, e.rep, true
		}
		return e.out, e.rep, true
	}

	c.misses.Add(1)
	out, rep = SanitizeBytes(dst, body, pol)

	e = &cacheEntry{rep: rep}
	var cost int64
	if rep.Clean() && len(out) == len(body) {
		// Verbatim pass-through: the entry records only "this content
		// is clean under this policy"; hits serve the caller's own body.
	} else {
		// The output may be rooted in a pooled dst the caller will
		// recycle; the cache keeps its own immutable copy.
		cp := make([]byte, len(out))
		copy(cp, out)
		e.out = cp
		cost = int64(len(cp))
		if cost > c.maxBytes {
			return out, rep, false // larger than the whole budget: never cache
		}
	}

	c.mu.Lock()
	if _, dup := c.m[key]; !dup {
		// Evict-one until the newcomer fits, mirroring the store's
		// path-intern cache: a burst of one-off pages causes churn,
		// never a permanently disabled cache.
		for len(c.m) >= c.maxEntries || c.bytes+cost > c.maxBytes {
			evicted := false
			for k, v := range c.m {
				c.bytes -= int64(len(v.out))
				delete(c.m, k)
				c.evictions.Add(1)
				evicted = true
				break
			}
			if !evicted {
				break
			}
		}
		c.m[key] = e
		c.bytes += cost
	}
	c.mu.Unlock()
	return out, rep, false
}

// CacheStats is a point-in-time snapshot of cache behavior, exported
// through the gateway's /healthz-style stats plumbing and asserted by
// tests.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Bytes     int64
}

// Stats returns current counters. Hits/misses/evictions are cumulative;
// entries/bytes are the live footprint.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	if c.m != nil {
		c.mu.RLock()
		st.Entries = len(c.m)
		st.Bytes = c.bytes
		c.mu.RUnlock()
	}
	return st
}

// Fingerprint condenses the policy into the cache-key component that
// isolates one policy's entries from another's. It is order-insensitive
// over the allowlist and ignores hashes explicitly mapped to false, so
// two policies that permit the same scripts share cache entries. It
// allocates (sorts the allowlist) — compute it once per policy, not per
// request.
func (p Policy) Fingerprint() uint64 {
	const (
		fnvOffset64 = 14695981039346656037
		fnvPrime64  = 1099511628211
	)
	mix := func(h uint64, s string) uint64 {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * fnvPrime64
		}
		return (h ^ 0xff) * fnvPrime64 // terminator: "ab","c" ≠ "a","bc"
	}
	h := uint64(fnvOffset64)
	if p.AllowScripts {
		h = mix(h, "allow-scripts")
	}
	if len(p.AllowedHashes) > 0 {
		keys := make([]string, 0, len(p.AllowedHashes))
		for k, ok := range p.AllowedHashes {
			if ok {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			h = mix(h, k)
		}
	}
	return h
}
