// Package htmlsafe implements the W5 perimeter HTML filter.
//
// §3.5 ("Client-side support") observes that W5 lets developers upload
// arbitrary JavaScript, exacerbating cross-site-scripting risk, and
// proposes that "W5 could disable JavaScript entirely by filtering it
// out at the security perimeter". This package is that filter: a small,
// standalone HTML tokenizer and sanitizer the gateway applies to every
// text/html response before it crosses the perimeter.
//
// The default policy removes:
//
//   - <script> elements and their contents (unless the script's hash is
//     on the user's audited allowlist — the MashupOS-flavoured
//     extension point);
//   - active-content elements (iframe, object, embed, applet) — their
//     inner fallback content is preserved;
//   - on* event-handler attributes;
//   - javascript: URLs in href/src/action/formaction attributes.
//
// The sanitizer never parses into a DOM: it is a single linear pass,
// so its cost is O(bytes) and measured by experiment E10.
package htmlsafe

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
)

// Policy controls what the filter permits.
type Policy struct {
	// AllowScripts passes script elements through untouched. Only a
	// user who explicitly opted out of filtering gets this.
	AllowScripts bool
	// AllowedHashes permits script elements whose body's SHA-256 (hex)
	// appears in the set — the "audited script" escape hatch.
	AllowedHashes map[string]bool
}

// Report counts what the filter did; the gateway logs it and E10
// aggregates it.
type Report struct {
	ScriptsRemoved  int
	ScriptsAllowed  int
	ElementsRemoved int // iframe/object/embed/applet tags stripped
	AttrsRemoved    int // on* handlers dropped
	URLsNeutralized int // javascript: URLs replaced
}

// Clean reports whether the filter changed nothing.
func (r Report) Clean() bool {
	return r.ScriptsRemoved == 0 && r.ElementsRemoved == 0 &&
		r.AttrsRemoved == 0 && r.URLsNeutralized == 0
}

// ScriptHash computes the allowlist key for a script body.
func ScriptHash(body string) string {
	h := sha256.Sum256([]byte(body))
	return hex.EncodeToString(h[:])
}

// activeElements are stripped (tags only; inner content preserved).
var activeElements = map[string]bool{
	"iframe": true, "object": true, "embed": true, "applet": true,
}

// urlAttrs are checked for javascript: schemes.
var urlAttrs = map[string]bool{
	"href": true, "src": true, "action": true, "formaction": true,
}

// Sanitize filters one HTML document under the policy.
func Sanitize(html string, pol Policy) (string, Report) {
	var out strings.Builder
	out.Grow(len(html))
	var rep Report

	// Lowered once so script-end scanning stays O(bytes) for the whole
	// document rather than per-script.
	lower := strings.ToLower(html)

	i := 0
	for i < len(html) {
		lt := strings.IndexByte(html[i:], '<')
		if lt < 0 {
			out.WriteString(html[i:])
			break
		}
		out.WriteString(html[i : i+lt])
		i += lt

		rest := html[i:]
		switch {
		case strings.HasPrefix(rest, "<!--"):
			end := strings.Index(rest[4:], "-->")
			if end < 0 {
				// Unterminated comment swallows the remainder; emit
				// nothing further (a dangling comment can hide markup
				// from naive filters — fail safe by dropping it).
				return out.String(), rep
			}
			out.WriteString(rest[:4+end+3])
			i += 4 + end + 3

		case strings.HasPrefix(rest, "<!") || strings.HasPrefix(rest, "<?"):
			// DOCTYPE or processing instruction: pass through to '>'.
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				out.WriteString(rest)
				return out.String(), rep
			}
			out.WriteString(rest[:end+1])
			i += end + 1

		default:
			tag, tagLen, ok := parseTag(rest)
			if !ok {
				// A bare '<' that opens no tag: emit as text.
				out.WriteByte('<')
				i++
				continue
			}
			name := strings.ToLower(tag.name)
			switch {
			case name == "script" && !tag.closing:
				bodyEnd, closeLen := findScriptEnd(rest[tagLen:], lower[i+tagLen:])
				body := rest[tagLen : tagLen+bodyEnd]
				total := tagLen + bodyEnd + closeLen
				if pol.AllowScripts || pol.AllowedHashes[ScriptHash(body)] {
					out.WriteString(rest[:total])
					rep.ScriptsAllowed++
				} else {
					rep.ScriptsRemoved++
				}
				i += total

			case name == "script" && tag.closing:
				// Stray close tag; drop it.
				rep.ScriptsRemoved++
				i += tagLen

			case activeElements[name]:
				rep.ElementsRemoved++
				i += tagLen // tag dropped, content preserved

			default:
				cleaned, changed := sanitizeTag(rest[:tagLen], tag, &rep)
				if changed {
					out.WriteString(cleaned)
				} else {
					out.WriteString(rest[:tagLen])
				}
				i += tagLen
			}
		}
	}
	return out.String(), rep
}

// tagToken is a parsed start or end tag.
type tagToken struct {
	name    string
	closing bool
	attrs   []attr
	selfEnd bool // "/>" form
}

type attr struct {
	name  string // original case preserved for output
	value string
	quote byte // '"', '\'' or 0 for unquoted/valueless
	hasEq bool
}

// parseTag parses "<name attr=... >" from the front of s. Returns the
// token and total byte length including both angle brackets.
func parseTag(s string) (tagToken, int, bool) {
	if len(s) < 2 || s[0] != '<' {
		return tagToken{}, 0, false
	}
	j := 1
	var tok tagToken
	if s[j] == '/' {
		tok.closing = true
		j++
	}
	start := j
	for j < len(s) && isNameChar(s[j]) {
		j++
	}
	if j == start {
		return tagToken{}, 0, false
	}
	tok.name = s[start:j]
	// Attributes.
	for j < len(s) {
		for j < len(s) && isSpace(s[j]) {
			j++
		}
		if j >= len(s) {
			return tok, j, true // unterminated tag: treat rest as tag
		}
		if s[j] == '>' {
			return tok, j + 1, true
		}
		if s[j] == '/' && j+1 < len(s) && s[j+1] == '>' {
			tok.selfEnd = true
			return tok, j + 2, true
		}
		// Attribute name.
		nameStart := j
		for j < len(s) && s[j] != '=' && s[j] != '>' && s[j] != '/' && !isSpace(s[j]) {
			j++
		}
		a := attr{name: s[nameStart:j]}
		for j < len(s) && isSpace(s[j]) {
			j++
		}
		if j < len(s) && s[j] == '=' {
			a.hasEq = true
			j++
			for j < len(s) && isSpace(s[j]) {
				j++
			}
			if j < len(s) && (s[j] == '"' || s[j] == '\'') {
				a.quote = s[j]
				j++
				valStart := j
				for j < len(s) && s[j] != a.quote {
					j++
				}
				a.value = s[valStart:j]
				if j < len(s) {
					j++ // closing quote
				}
			} else {
				valStart := j
				for j < len(s) && !isSpace(s[j]) && s[j] != '>' {
					j++
				}
				a.value = s[valStart:j]
			}
		}
		if a.name != "" {
			tok.attrs = append(tok.attrs, a)
		}
	}
	return tok, len(s), true
}

// findScriptEnd locates the closing </script> (case-insensitive,
// optional whitespace before '>'). lower is the pre-lowercased form of
// s. Returns the body length and the length of the close tag; an
// unterminated script consumes the rest.
func findScriptEnd(s, lower string) (bodyLen, closeLen int) {
	from := 0
	for {
		k := strings.Index(lower[from:], "</script")
		if k < 0 {
			return len(s), 0
		}
		k += from
		j := k + len("</script")
		for j < len(s) && isSpace(s[j]) {
			j++
		}
		if j < len(s) && s[j] == '>' {
			return k, j + 1 - k
		}
		from = k + 1
	}
}

// sanitizeTag rewrites a tag, dropping on* attributes and neutralizing
// javascript: URLs. Returns the possibly-rewritten tag text.
func sanitizeTag(orig string, tok tagToken, rep *Report) (string, bool) {
	if tok.closing || len(tok.attrs) == 0 {
		return orig, false
	}
	changed := false
	var kept []attr
	for _, a := range tok.attrs {
		ln := strings.ToLower(a.name)
		if strings.HasPrefix(ln, "on") && len(ln) > 2 {
			rep.AttrsRemoved++
			changed = true
			continue
		}
		if urlAttrs[ln] && isJavascriptURL(a.value) {
			a.value = "#blocked"
			a.quote = '"'
			rep.URLsNeutralized++
			changed = true
		}
		kept = append(kept, a)
	}
	if !changed {
		return orig, false
	}
	var sb strings.Builder
	sb.WriteByte('<')
	sb.WriteString(tok.name)
	for _, a := range kept {
		sb.WriteByte(' ')
		sb.WriteString(a.name)
		if a.hasEq {
			sb.WriteByte('=')
			q := a.quote
			if q == 0 {
				q = '"'
			}
			sb.WriteByte(q)
			sb.WriteString(a.value)
			sb.WriteByte(q)
		}
	}
	if tok.selfEnd {
		sb.WriteString("/>")
	} else {
		sb.WriteByte('>')
	}
	return sb.String(), true
}

// isJavascriptURL detects javascript: (and vbscript:, data:text/html)
// schemes, ignoring leading whitespace/control bytes and case — the
// obfuscations real-world filters must handle.
func isJavascriptURL(v string) bool {
	var sb strings.Builder
	for i := 0; i < len(v) && sb.Len() < 16; i++ {
		c := v[i]
		if c <= 0x20 { // strip whitespace and control chars anywhere in prefix
			continue
		}
		if c >= 'A' && c <= 'Z' {
			c += 32
		}
		sb.WriteByte(c)
	}
	p := sb.String()
	return strings.HasPrefix(p, "javascript:") ||
		strings.HasPrefix(p, "vbscript:") ||
		strings.HasPrefix(p, "data:text/h")
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func isNameChar(c byte) bool {
	return c == '-' || c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
