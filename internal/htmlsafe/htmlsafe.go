// Package htmlsafe implements the W5 perimeter HTML filter.
//
// §3.5 ("Client-side support") observes that W5 lets developers upload
// arbitrary JavaScript, exacerbating cross-site-scripting risk, and
// proposes that "W5 could disable JavaScript entirely by filtering it
// out at the security perimeter". This package is that filter: a small,
// standalone HTML tokenizer and sanitizer the gateway applies to every
// text/html response before it crosses the perimeter.
//
// The default policy removes:
//
//   - <script> elements and their contents (unless the script's hash is
//     on the user's audited allowlist — the MashupOS-flavoured
//     extension point);
//   - active-content elements (iframe, object, embed, applet) — their
//     inner fallback content is preserved;
//   - on* event-handler attributes;
//   - javascript: URLs in href/src/action/formaction attributes.
//
// The sanitizer never parses into a DOM: it is a single linear pass
// over the raw bytes, so its cost is O(bytes) and measured by
// experiment E10 and the CI-gated htmlsafe/sanitize-* bench entries.
// SanitizeBytes is the streaming form the gateway uses: it appends into
// a caller-supplied buffer and, when the pass removes nothing — the
// common case for honest apps — returns the input slice itself: zero
// copies, zero allocations. See README.md for the design note and the
// sanitized-output cache (cache.go) that lets hot public pages pay the
// pass once per content version.
package htmlsafe

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
)

// Policy controls what the filter permits.
type Policy struct {
	// AllowScripts passes script elements through untouched. Only a
	// user who explicitly opted out of filtering gets this.
	AllowScripts bool
	// AllowedHashes permits script elements whose body's SHA-256 (hex)
	// appears in the set — the "audited script" escape hatch.
	AllowedHashes map[string]bool
}

// Report counts what the filter did; the gateway logs it and E10
// aggregates it.
type Report struct {
	ScriptsRemoved  int
	ScriptsAllowed  int
	ElementsRemoved int // iframe/object/embed/applet tags stripped
	AttrsRemoved    int // on* handlers dropped
	URLsNeutralized int // javascript: URLs replaced
}

// Clean reports whether the filter changed nothing.
func (r Report) Clean() bool {
	return r.ScriptsRemoved == 0 && r.ElementsRemoved == 0 &&
		r.AttrsRemoved == 0 && r.URLsNeutralized == 0
}

// ScriptHash computes the allowlist key for a script body.
func ScriptHash(body string) string {
	h := sha256.Sum256([]byte(body))
	return hex.EncodeToString(h[:])
}

// Sanitize filters one HTML document under the policy. It is the
// string-typed convenience form (experiment tables, tests); the
// gateway's request path uses SanitizeBytes, which avoids the two
// string round-trip copies this wrapper pays.
func Sanitize(html string, pol Policy) (string, Report) {
	out, rep := SanitizeBytes(nil, []byte(html), pol)
	return string(out), rep
}

// SanitizeBytes filters one HTML document under the policy, streaming
// the output into dst (whose contents are overwritten; nil is fine).
//
// Fast path: when the pass finds nothing to remove AND reaches the end
// of the input, the returned slice is body itself — zero copies, zero
// allocations. Otherwise the returned slice is rooted in dst, grown as
// needed. body is never modified; callers that pool dst must not
// recycle the returned slice's backing array while the output is still
// referenced.
func SanitizeBytes(dst, body []byte, pol Policy) ([]byte, Report) {
	// The attribute scratch lives in its own local, never stored in the
	// sanitizer struct: escape analysis is field-insensitive for the
	// address-taken s, so anything reachable from it is dragged to the
	// heap along with the (necessarily escaping) output slice — which
	// would cost one allocation per call and break the zero-alloc
	// contract on both paths.
	var attrBuf [16]battr
	scratch := attrBuf[:0]
	s := sanitizer{src: body, dst: dst}
	var rep Report

	i := 0
	for i < len(body) {
		rel := bytes.IndexByte(body[i:], '<')
		if rel < 0 {
			s.emit(i, len(body))
			break
		}
		s.emit(i, i+rel)
		i += rel

		switch {
		case hasPrefixAt(body, i, "<!--"):
			end := bytes.Index(body[i+4:], commentClose)
			if end < 0 {
				// Unterminated comment swallows the remainder; emit
				// nothing further (a dangling comment can hide markup
				// from naive filters — fail safe by dropping it).
				return s.finish(), rep
			}
			s.emit(i, i+4+end+3)
			i += 4 + end + 3

		case hasPrefixAt(body, i, "<!") || hasPrefixAt(body, i, "<?"):
			// DOCTYPE or processing instruction: pass through to '>'.
			end := bytes.IndexByte(body[i:], '>')
			if end < 0 {
				s.emit(i, len(body))
				return s.finish(), rep
			}
			s.emit(i, i+end+1)
			i += end + 1

		default:
			tg, ok := parseTag(body, i, scratch)
			if !ok {
				// A bare '<' that opens no tag: emit as text.
				s.emit(i, i+1)
				i++
				continue
			}
			name := body[tg.nameLo:tg.nameHi]
			switch {
			case foldEq(name, "script") && !tg.closing:
				bodyEnd, end := s.findScriptEnd(tg.end)
				if pol.AllowScripts || allowedHash(pol.AllowedHashes, body[tg.end:bodyEnd]) {
					s.emit(i, end)
					rep.ScriptsAllowed++
				} else {
					rep.ScriptsRemoved++ // bytes skipped, not emitted
				}
				i = end

			case foldEq(name, "script"):
				// Stray close tag; drop it.
				rep.ScriptsRemoved++
				i = tg.end

			case isActiveElement(name):
				rep.ElementsRemoved++
				i = tg.end // tag dropped, content preserved

			default:
				s.sanitizeTag(i, tg, &rep)
				i = tg.end
			}
			// Keep a spilled (>16-attr) backing for subsequent tags.
			scratch = tg.attrs[:0]
		}
	}
	return s.finish(), rep
}

var commentClose = []byte("-->")

// sanitizer is one pass's lazy-copy output writer. A pass over a clean
// document performs no allocation at all.
type sanitizer struct {
	src []byte
	dst []byte // caller-supplied backing for the rewrite path
	out []byte // nil while the output is still a verbatim prefix of src
	n   int    // length of that verbatim prefix
}

// emit appends src[lo:hi] to the output. While the output is a
// verbatim prefix of src, contiguous emission just extends the prefix;
// the first skipped or synthesized byte materializes the copy into dst.
func (s *sanitizer) emit(lo, hi int) {
	if s.out == nil {
		if lo == s.n {
			s.n = hi
			return
		}
		s.materialize()
	}
	s.out = append(s.out, s.src[lo:hi]...)
}

func (s *sanitizer) materialize() {
	s.out = append(s.dst[:0], s.src[:s.n]...)
}

func (s *sanitizer) emitByte(c byte) {
	if s.out == nil {
		s.materialize()
	}
	s.out = append(s.out, c)
}

func (s *sanitizer) emitString(str string) {
	if s.out == nil {
		s.materialize()
	}
	s.out = append(s.out, str...)
}

// finish returns the final output slice. The zero-copy return requires
// both an untouched report AND a pass that reached the end of src: a
// truncating stop (unterminated comment) leaves a clean report but must
// still copy, because the result is a strict prefix.
func (s *sanitizer) finish() []byte {
	if s.out != nil {
		return s.out
	}
	if s.n == len(s.src) {
		return s.src
	}
	s.materialize()
	return s.out
}

// battr is one parsed attribute, as offsets into src (no substrings).
type battr struct {
	nameLo, nameHi int
	valLo, valHi   int
	quote          byte // '"', '\'' or 0 for unquoted/valueless
	hasEq          bool
	blocked        bool // value neutralized to "#blocked"
}

// tagToken is a parsed start or end tag.
type tagToken struct {
	nameLo, nameHi int
	closing        bool
	selfEnd        bool    // "/>" form
	end            int     // absolute offset past the consumed bytes
	attrs          []battr // aliases the sanitizer scratch until the next parseTag
}

// parseTag parses "<name attr=... >" at absolute offset at, collecting
// attributes into scratch (whose backing tg.attrs reuses). ok=false
// means the '<' opens no tag. An unterminated tag consumes the rest of
// the input (end == len(src)), mirroring the fail-safe of the comment
// path. It is a free function, not a sanitizer method, so the
// stack-backed scratch never pins the (escaping) writer state.
func parseTag(src []byte, at int, scratch []battr) (tg tagToken, ok bool) {
	if at+1 >= len(src) {
		return tg, false
	}
	j := at + 1
	if src[j] == '/' {
		tg.closing = true
		j++
	}
	start := j
	for j < len(src) && isNameChar(src[j]) {
		j++
	}
	if j == start {
		return tg, false
	}
	tg.nameLo, tg.nameHi = start, j
	attrs := scratch[:0]
	for j < len(src) {
		for j < len(src) && isSpace(src[j]) {
			j++
		}
		if j >= len(src) {
			break // unterminated tag: treat rest as tag
		}
		if src[j] == '>' {
			tg.end = j + 1
			tg.attrs = attrs
			return tg, true
		}
		if src[j] == '/' {
			if j+1 < len(src) && src[j+1] == '>' {
				tg.selfEnd = true
				tg.end = j + 2
				tg.attrs = attrs
				return tg, true
			}
			// A stray '/' that closes nothing (e.g. "<img src=x / on...>")
			// is tag noise; consume it. The legacy string parser looped
			// forever here — TestLoneSlashInTagTerminates pins the fix.
			j++
			continue
		}
		// Attribute name.
		nameStart := j
		for j < len(src) && src[j] != '=' && src[j] != '>' && src[j] != '/' && !isSpace(src[j]) {
			j++
		}
		a := battr{nameLo: nameStart, nameHi: j}
		for j < len(src) && isSpace(src[j]) {
			j++
		}
		if j < len(src) && src[j] == '=' {
			a.hasEq = true
			j++
			for j < len(src) && isSpace(src[j]) {
				j++
			}
			if j < len(src) && (src[j] == '"' || src[j] == '\'') {
				a.quote = src[j]
				j++
				valStart := j
				for j < len(src) && src[j] != a.quote {
					j++
				}
				a.valLo, a.valHi = valStart, j
				if j < len(src) {
					j++ // closing quote
				}
			} else {
				valStart := j
				for j < len(src) && !isSpace(src[j]) && src[j] != '>' {
					j++
				}
				a.valLo, a.valHi = valStart, j
			}
		}
		if a.nameHi > a.nameLo {
			attrs = append(attrs, a)
		}
	}
	tg.end = len(src)
	tg.attrs = attrs
	return tg, true
}

// findScriptEnd locates the closing </script> (case-insensitive,
// optional whitespace before '>') scanning from absolute offset at.
// Returns the absolute script-body end and the absolute offset past the
// close tag; an unterminated script consumes the rest.
func (s *sanitizer) findScriptEnd(at int) (bodyEnd, tagEnd int) {
	src := s.src
	from := at
	for {
		rel := bytes.IndexByte(src[from:], '<')
		if rel < 0 {
			return len(src), len(src)
		}
		k := from + rel
		if k+len("</script") > len(src) {
			return len(src), len(src)
		}
		if src[k+1] == '/' && foldEq(src[k+2:k+8], "script") {
			j := k + 8
			for j < len(src) && isSpace(src[j]) {
				j++
			}
			if j < len(src) && src[j] == '>' {
				return k, j + 1
			}
		}
		from = k + 1
	}
}

// sanitizeTag emits the tag spanning [lo:tg.end), dropping on*
// attributes and neutralizing javascript: URLs. Unchanged tags are
// emitted verbatim (keeping the fast path alive); changed tags are
// re-rendered in normalized form — '<' name, single-space-separated
// attributes, values quoted — exactly as the legacy sanitizer did, so
// the equivalence corpus holds byte-for-byte.
func (s *sanitizer) sanitizeTag(lo int, tg tagToken, rep *Report) {
	src := s.src
	if tg.closing || len(tg.attrs) == 0 {
		s.emit(lo, tg.end)
		return
	}
	changed := false
	for k := range tg.attrs {
		a := &tg.attrs[k]
		name := src[a.nameLo:a.nameHi]
		if isEventAttr(name) {
			rep.AttrsRemoved++
			changed = true
			continue
		}
		if isURLAttr(name) && isJavascriptURL(src[a.valLo:a.valHi]) {
			a.blocked = true
			rep.URLsNeutralized++
			changed = true
		}
	}
	if !changed {
		s.emit(lo, tg.end)
		return
	}
	s.emitByte('<')
	s.emit(tg.nameLo, tg.nameHi)
	for _, a := range tg.attrs {
		if isEventAttr(src[a.nameLo:a.nameHi]) {
			continue
		}
		s.emitByte(' ')
		s.emit(a.nameLo, a.nameHi)
		if !a.hasEq {
			continue
		}
		s.emitByte('=')
		q := a.quote
		if a.blocked || q == 0 {
			q = '"'
		}
		s.emitByte(q)
		if a.blocked {
			s.emitString("#blocked")
		} else {
			s.emit(a.valLo, a.valHi)
		}
		s.emitByte(q)
	}
	if tg.selfEnd {
		s.emitString("/>")
	} else {
		s.emitByte('>')
	}
}

// allowedHash reports whether the script body's SHA-256 is on the
// audited allowlist. The hex key is built in a stack buffer; the map
// lookup's string conversion does not allocate.
func allowedHash(m map[string]bool, body []byte) bool {
	if len(m) == 0 {
		return false
	}
	h := sha256.Sum256(body)
	var hx [64]byte
	hex.Encode(hx[:], h[:])
	return m[string(hx[:])]
}

// isJavascriptURL detects javascript: (and vbscript:, data:text/html)
// schemes, ignoring leading whitespace/control bytes and case — the
// obfuscations real-world filters must handle.
func isJavascriptURL(v []byte) bool {
	var p [16]byte
	n := 0
	for i := 0; i < len(v) && n < len(p); i++ {
		c := v[i]
		if c <= 0x20 { // strip whitespace and control chars anywhere in prefix
			continue
		}
		p[n] = lowerByte(c)
		n++
	}
	pre := p[:n]
	return hasPrefixBytes(pre, "javascript:") ||
		hasPrefixBytes(pre, "vbscript:") ||
		hasPrefixBytes(pre, "data:text/h")
}

// isEventAttr reports whether the attribute name is an on* handler
// (strictly longer than "on", any case).
func isEventAttr(name []byte) bool {
	return len(name) > 2 && lowerByte(name[0]) == 'o' && lowerByte(name[1]) == 'n'
}

// isURLAttr reports whether the attribute's value is checked for
// javascript: schemes.
func isURLAttr(name []byte) bool {
	return foldEq(name, "href") || foldEq(name, "src") ||
		foldEq(name, "action") || foldEq(name, "formaction")
}

// isActiveElement reports whether the element is stripped (tags only;
// inner content preserved).
func isActiveElement(name []byte) bool {
	return foldEq(name, "iframe") || foldEq(name, "object") ||
		foldEq(name, "embed") || foldEq(name, "applet")
}

// foldEq reports whether b equals the all-lowercase word, ASCII
// case-insensitively.
func foldEq(b []byte, word string) bool {
	if len(b) != len(word) {
		return false
	}
	for i := 0; i < len(word); i++ {
		if lowerByte(b[i]) != word[i] {
			return false
		}
	}
	return true
}

func hasPrefixAt(b []byte, at int, p string) bool {
	if at+len(p) > len(b) {
		return false
	}
	for i := 0; i < len(p); i++ {
		if b[at+i] != p[i] {
			return false
		}
	}
	return true
}

func hasPrefixBytes(b []byte, p string) bool {
	return len(b) >= len(p) && hasPrefixAt(b, 0, p)
}

func lowerByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 32
	}
	return c
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func isNameChar(c byte) bool {
	return c == '-' || c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
