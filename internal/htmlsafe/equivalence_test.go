package htmlsafe

// The pre-streaming sanitizer, kept verbatim as the equivalence oracle.
//
// PR 7 replaced the string-based Sanitize (string round trips, a whole-
// document ToLower copy, per-tag attr slices) with the streaming
// SanitizeBytes. The contract for that swap is byte-identical output
// and identical reports over the adversarial corpus below, checked
// against this frozen copy of the old implementation.
//
// One deliberate divergence: the old parser spun forever on a stray '/'
// inside a tag that is not followed by '>' (e.g. "<img src=x / on...>")
// — the attribute-name scan consumed zero bytes and never advanced. The
// oracle carries the same one-line fix as the new parser (skip the
// slash) so it can terminate on arbitrary corpus inputs;
// TestLoneSlashInTagTerminates pins the fix itself.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"w5/internal/workload"
)

func legacySanitize(html string, pol Policy) (string, Report) {
	var out strings.Builder
	out.Grow(len(html))
	var rep Report

	lower := strings.ToLower(html)

	i := 0
	for i < len(html) {
		lt := strings.IndexByte(html[i:], '<')
		if lt < 0 {
			out.WriteString(html[i:])
			break
		}
		out.WriteString(html[i : i+lt])
		i += lt

		rest := html[i:]
		switch {
		case strings.HasPrefix(rest, "<!--"):
			end := strings.Index(rest[4:], "-->")
			if end < 0 {
				return out.String(), rep
			}
			out.WriteString(rest[:4+end+3])
			i += 4 + end + 3

		case strings.HasPrefix(rest, "<!") || strings.HasPrefix(rest, "<?"):
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				out.WriteString(rest)
				return out.String(), rep
			}
			out.WriteString(rest[:end+1])
			i += end + 1

		default:
			tag, tagLen, ok := legacyParseTag(rest)
			if !ok {
				out.WriteByte('<')
				i++
				continue
			}
			name := strings.ToLower(tag.name)
			switch {
			case name == "script" && !tag.closing:
				bodyEnd, closeLen := legacyFindScriptEnd(rest[tagLen:], lower[i+tagLen:])
				body := rest[tagLen : tagLen+bodyEnd]
				total := tagLen + bodyEnd + closeLen
				if pol.AllowScripts || pol.AllowedHashes[ScriptHash(body)] {
					out.WriteString(rest[:total])
					rep.ScriptsAllowed++
				} else {
					rep.ScriptsRemoved++
				}
				i += total

			case name == "script" && tag.closing:
				rep.ScriptsRemoved++
				i += tagLen

			case legacyActiveElements[name]:
				rep.ElementsRemoved++
				i += tagLen

			default:
				cleaned, changed := legacySanitizeTag(rest[:tagLen], tag, &rep)
				if changed {
					out.WriteString(cleaned)
				} else {
					out.WriteString(rest[:tagLen])
				}
				i += tagLen
			}
		}
	}
	return out.String(), rep
}

var legacyActiveElements = map[string]bool{
	"iframe": true, "object": true, "embed": true, "applet": true,
}

var legacyURLAttrs = map[string]bool{
	"href": true, "src": true, "action": true, "formaction": true,
}

type legacyTagToken struct {
	name    string
	closing bool
	attrs   []legacyAttr
	selfEnd bool
}

type legacyAttr struct {
	name  string
	value string
	quote byte
	hasEq bool
}

func legacyParseTag(s string) (legacyTagToken, int, bool) {
	if len(s) < 2 || s[0] != '<' {
		return legacyTagToken{}, 0, false
	}
	j := 1
	var tok legacyTagToken
	if s[j] == '/' {
		tok.closing = true
		j++
	}
	start := j
	for j < len(s) && isNameChar(s[j]) {
		j++
	}
	if j == start {
		return legacyTagToken{}, 0, false
	}
	tok.name = s[start:j]
	for j < len(s) {
		for j < len(s) && isSpace(s[j]) {
			j++
		}
		if j >= len(s) {
			return tok, j, true
		}
		if s[j] == '>' {
			return tok, j + 1, true
		}
		if s[j] == '/' {
			if j+1 < len(s) && s[j+1] == '>' {
				tok.selfEnd = true
				return tok, j + 2, true
			}
			// Oracle-only termination fix (see file comment): the
			// original spun forever on a stray '/' inside a tag.
			j++
			continue
		}
		nameStart := j
		for j < len(s) && s[j] != '=' && s[j] != '>' && s[j] != '/' && !isSpace(s[j]) {
			j++
		}
		a := legacyAttr{name: s[nameStart:j]}
		for j < len(s) && isSpace(s[j]) {
			j++
		}
		if j < len(s) && s[j] == '=' {
			a.hasEq = true
			j++
			for j < len(s) && isSpace(s[j]) {
				j++
			}
			if j < len(s) && (s[j] == '"' || s[j] == '\'') {
				a.quote = s[j]
				j++
				valStart := j
				for j < len(s) && s[j] != a.quote {
					j++
				}
				a.value = s[valStart:j]
				if j < len(s) {
					j++
				}
			} else {
				valStart := j
				for j < len(s) && !isSpace(s[j]) && s[j] != '>' {
					j++
				}
				a.value = s[valStart:j]
			}
		}
		if a.name != "" {
			tok.attrs = append(tok.attrs, a)
		}
	}
	return tok, len(s), true
}

func legacyFindScriptEnd(s, lower string) (bodyLen, closeLen int) {
	from := 0
	for {
		k := strings.Index(lower[from:], "</script")
		if k < 0 {
			return len(s), 0
		}
		k += from
		j := k + len("</script")
		for j < len(s) && isSpace(s[j]) {
			j++
		}
		if j < len(s) && s[j] == '>' {
			return k, j + 1 - k
		}
		from = k + 1
	}
}

func legacySanitizeTag(orig string, tok legacyTagToken, rep *Report) (string, bool) {
	if tok.closing || len(tok.attrs) == 0 {
		return orig, false
	}
	changed := false
	var kept []legacyAttr
	for _, a := range tok.attrs {
		ln := strings.ToLower(a.name)
		if strings.HasPrefix(ln, "on") && len(ln) > 2 {
			rep.AttrsRemoved++
			changed = true
			continue
		}
		if legacyURLAttrs[ln] && legacyIsJavascriptURL(a.value) {
			a.value = "#blocked"
			a.quote = '"'
			rep.URLsNeutralized++
			changed = true
		}
		kept = append(kept, a)
	}
	if !changed {
		return orig, false
	}
	var sb strings.Builder
	sb.WriteByte('<')
	sb.WriteString(tok.name)
	for _, a := range kept {
		sb.WriteByte(' ')
		sb.WriteString(a.name)
		if a.hasEq {
			sb.WriteByte('=')
			q := a.quote
			if q == 0 {
				q = '"'
			}
			sb.WriteByte(q)
			sb.WriteString(a.value)
			sb.WriteByte(q)
		}
	}
	if tok.selfEnd {
		sb.WriteString("/>")
	} else {
		sb.WriteByte('>')
	}
	return sb.String(), true
}

func legacyIsJavascriptURL(v string) bool {
	var sb strings.Builder
	for i := 0; i < len(v) && sb.Len() < 16; i++ {
		c := v[i]
		if c <= 0x20 {
			continue
		}
		if c >= 'A' && c <= 'Z' {
			c += 32
		}
		sb.WriteByte(c)
	}
	p := sb.String()
	return strings.HasPrefix(p, "javascript:") ||
		strings.HasPrefix(p, "vbscript:") ||
		strings.HasPrefix(p, "data:text/h")
}

// adversarialCorpus is the fixed equivalence corpus: every shape the
// tests above exercise plus the hostile edges the ISSUE calls out —
// unterminated scripts, mixed-case close tags, nested/overlapping
// tags, javascript: URLs hidden behind whitespace and entities, and
// comment/doctype truncation.
var adversarialCorpus = []string{
	// Honest pages.
	``,
	`plain text, no markup at all`,
	`<!DOCTYPE html><html><body><h1>Hi</h1><p class="x">text &amp; more</p></body></html>`,
	`<p>3 < 5 and x <= y</p>`,
	`<p>a</p><!-- a comment with <tags> inside --><p>b</p>`,
	`<br/><hr /><img src="a.png" alt="ok"/>`,
	`<a href="https://example.org/page?q=1&r=2">x</a>`,

	// Script removal and obfuscation.
	`<p>a</p><script>alert(document.cookie)</script><p>b</p>`,
	`<ScRiPt>evil()</sCrIpT>`,
	`<script type="text/javascript">evil()</script>`,
	"<script\n\tsrc=\"http://evil.example/x.js\"></script>",
	`<script>if (a<b) evil()</script>`,
	`<script>s="</scr"+"ipt>"</script >`,
	`<p>x</p><script>evil()`,                 // unterminated open script
	`<script`,                                // unterminated open tag itself
	`<script >`,                              // unterminated body after spaced tag
	`</script>`,                              // stray close
	`</ScRiPt >`,                             // mixed-case stray close
	`<script></ScRiPt>done`,                  // mixed-case close terminates body
	`<script><script></script>after`,         // nested opens, one close
	`<script></script foo></script>x`,        // attributed close is not a close
	`a<script>1</script><script>2</script>b`, // back-to-back scripts

	// Overlapping / malformed tag structure.
	`<b><i>bold-italic</b></i>`,
	`<div <span>>text</div>`,
	`<p`,
	`<`,
	`<>`,
	`< >`,
	`<!---->`,
	`<!-- unterminated`,
	`<p>a</p><!-- hidden <script>evil()</script>`,
	`<!doctype html>`,
	`<?xml version="1.0"?><p>x</p>`,
	`<?unterminated-pi`,
	`<!unterminated-doctype`,

	// Event handlers and URL schemes.
	`<img src="cat.jpg" onload="evil()" alt="cat"><div ONCLICK='evil()'>x</div><a onmouseover=evil()>y</a>`,
	`<input name="once" value="onload"><option on>`,
	`<a href="javascript:evil()">x</a>`,
	`<a href="JaVaScRiPt:evil()">x</a>`,
	`<a href=" javascript:evil()">x</a>`,
	"<a href=\"\tjava\nscript:evil()\">x</a>",
	"<a href=\"\x01\x02javascript:evil()\">x</a>",
	`<a href=javascript:evil()>x</a>`,
	`<a href="&#106;avascript:evil()">entity-obfuscated (not decoded: must match oracle)</a>`,
	`<a href="jav&#x61;script:evil()">y</a>`,
	`<form action="javascript:evil()">`,
	`<img src='vbscript:evil()'>`,
	`<a href="data:text/html,<script>evil()</script>">x</a>`,
	`<a href="DATA:TEXT/Html;base64,x">x</a>`,
	`<iframe src="http://evil"></iframe><object data="x">fallback</object><embed src="y"><applet code="z">old</applet>`,
	`<IFRAME SRC=x>`,
	`<a onclick="x" href="javascript:y" onfocus>both dropped and blocked</a>`,
	`<a href = "javascript:spaced-equals()">x</a>`,
	`<a href="unterminated-quote javascript:...`,
	`<area href=javascript:1 shape=rect>`,
}

// policiesFor returns the policy variants the corpus is checked under.
func policiesFor(in string) []Policy {
	pols := []Policy{
		{},
		{AllowScripts: true},
		{AllowedHashes: map[string]bool{ScriptHash("evil()"): true}},
	}
	// An allowlist matching a body actually present in the input.
	if i := strings.Index(in, "<script>"); i >= 0 {
		if j := strings.Index(in[i:], "</script>"); j >= 0 {
			pols = append(pols, Policy{AllowedHashes: map[string]bool{
				ScriptHash(in[i+len("<script>") : i+j]): true,
			}})
		}
	}
	return pols
}

// TestStreamingMatchesLegacyCorpus pins the rewrite: byte-identical
// output and identical reports against the frozen legacy sanitizer over
// the adversarial corpus, under every policy variant.
func TestStreamingMatchesLegacyCorpus(t *testing.T) {
	for ci, in := range adversarialCorpus {
		for pi, pol := range policiesFor(in) {
			wantOut, wantRep := legacySanitize(in, pol)
			gotOut, gotRep := Sanitize(in, pol)
			if gotOut != wantOut {
				t.Errorf("corpus[%d] policy[%d] %q:\nlegacy: %q\nstream: %q", ci, pi, in, wantOut, gotOut)
			}
			if gotRep != wantRep {
				t.Errorf("corpus[%d] policy[%d] %q: report legacy %+v stream %+v", ci, pi, in, wantRep, gotRep)
			}
		}
	}
}

// TestStreamingMatchesLegacyGenerated extends the corpus with seeded
// multi-KB to multi-MB synthetic pages (clean, script-laden, handler-
// laden) and random tag soup assembled from hostile fragments.
func TestStreamingMatchesLegacyGenerated(t *testing.T) {
	pages := []string{
		workload.HTMLPage(4<<10, 0, 0, 1),
		workload.HTMLPage(64<<10, 20, 20, 2),
		workload.HTMLPage(2<<20, 200, 200, 3), // multi-MB body
		workload.HTMLPage(3<<20, 0, 0, 4),     // multi-MB clean body
	}
	frags := []string{
		`<script>`, `</script>`, `</ScRiPt >`, `<script src=x>`,
		`<p onclick=evil()>`, `<a href="javascript:x">`, `<a href=ok>`,
		`<!--`, `-->`, `<!doctype>`, `<iframe>`, `</iframe>`, `<br/>`,
		`text`, `<`, `>`, `"`, `'`, ` `, `=`, `<b class="k">`, `</b>`,
		"\n", `<img src=x >`, `<embed>`, `<x y=`, `javascript:`,
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		var sb strings.Builder
		for n := r.Intn(40); n >= 0; n-- {
			sb.WriteString(frags[r.Intn(len(frags))])
		}
		pages = append(pages, sb.String())
	}
	for ci, in := range pages {
		for pi, pol := range policiesFor(in) {
			wantOut, wantRep := legacySanitize(in, pol)
			gotOut, gotRep := Sanitize(in, pol)
			if gotOut != wantOut {
				a, b := diffAround(wantOut, gotOut)
				t.Fatalf("generated[%d] policy[%d] (len %d): first divergence:\nlegacy: %q\nstream: %q", ci, pi, len(in), a, b)
			}
			if gotRep != wantRep {
				t.Fatalf("generated[%d] policy[%d]: report legacy %+v stream %+v", ci, pi, wantRep, gotRep)
			}
		}
	}
}

// diffAround returns a small window around the first differing byte.
func diffAround(a, b string) (string, string) {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 40
	if lo < 0 {
		lo = 0
	}
	win := func(s string) string {
		hi := i + 40
		if hi > len(s) {
			hi = len(s)
		}
		if lo > len(s) {
			return fmt.Sprintf("(len %d < %d)", len(s), lo)
		}
		return s[lo:hi]
	}
	return win(a), win(b)
}
