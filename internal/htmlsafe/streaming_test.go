package htmlsafe

// Contracts specific to the streaming SanitizeBytes form: the zero-copy
// clean fast path, buffer reuse, allocation-freedom, and termination on
// the input that hung the legacy parser.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"w5/internal/workload"
)

// TestCleanFastPathAliasesInput: a document the filter does not change
// comes back as the input slice itself — no copy, and dst untouched.
func TestCleanFastPathAliasesInput(t *testing.T) {
	in := []byte(`<!DOCTYPE html><html><body><h1>Hi</h1><p class="x">t &amp; m</p></body></html>`)
	dst := make([]byte, 0, 16)
	out, rep := SanitizeBytes(dst, in, Policy{})
	if !rep.Clean() {
		t.Fatalf("report not clean: %+v", rep)
	}
	if len(out) != len(in) || &out[0] != &in[0] {
		t.Errorf("clean output is not the input slice (len %d vs %d)", len(out), len(in))
	}
}

// TestDirtyOutputRootedInDst: a rewrite lands in the caller's buffer
// when it fits, so pooled buffers are actually reused.
func TestDirtyOutputRootedInDst(t *testing.T) {
	in := []byte(`<p>a</p><script>evil()</script><p>b</p>`)
	dst := make([]byte, 0, 256)
	out, rep := SanitizeBytes(dst, in, Policy{})
	if rep.ScriptsRemoved != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if string(out) != "<p>a</p><p>b</p>" {
		t.Fatalf("out = %q", out)
	}
	if &out[0] != &dst[:1][0] {
		t.Errorf("dirty output did not use the supplied buffer")
	}
	// The input must never be modified.
	if !bytes.Contains(in, []byte("evil()")) {
		t.Error("input mutated")
	}
}

// TestTruncatedCleanOutputDoesNotAliasInput: an unterminated comment
// drops the remainder — the report is clean but the result is a strict
// prefix, which must be a copy (the gateway may cache or pool it).
func TestTruncatedCleanOutputDoesNotAliasInput(t *testing.T) {
	in := []byte(`<p>a</p><!-- hidden <script>evil()</script>`)
	out, rep := SanitizeBytes(nil, in, Policy{})
	if !rep.Clean() {
		t.Fatalf("report: %+v", rep)
	}
	if string(out) != "<p>a</p>" {
		t.Fatalf("out = %q", out)
	}
	if len(out) > 0 && &out[0] == &in[0] {
		t.Error("truncated output aliases the input")
	}
}

// TestCleanSanitizeAllocationFree pins the fast path's contract: a pass
// over an honest page costs zero allocations.
func TestCleanSanitizeAllocationFree(t *testing.T) {
	in := []byte(workload.HTMLPage(8<<10, 0, 0, 7))
	if n := testing.AllocsPerRun(200, func() {
		out, rep := SanitizeBytes(nil, in, Policy{})
		if !rep.Clean() || len(out) != len(in) {
			t.Fatal("page unexpectedly dirty")
		}
	}); n != 0 {
		t.Errorf("clean sanitize allocates %.1f per op, want 0", n)
	}
}

// TestDirtySanitizeReusesBuffer: with a caller-supplied buffer big
// enough, even the rewrite path allocates nothing.
func TestDirtySanitizeReusesBuffer(t *testing.T) {
	in := []byte(workload.HTMLPage(8<<10, 4, 4, 7))
	buf := make([]byte, 0, len(in))
	if n := testing.AllocsPerRun(200, func() {
		out, rep := SanitizeBytes(buf, in, Policy{})
		if rep.Clean() || len(out) == 0 {
			t.Fatal("page unexpectedly clean")
		}
	}); n != 0 {
		t.Errorf("buffered dirty sanitize allocates %.1f per op, want 0", n)
	}
}

// TestLoneSlashInTagTerminates: the legacy parser looped forever on a
// stray '/' inside a tag (a trivial request-hang DoS through the
// perimeter). The streaming parser must terminate AND still strip the
// handler riding behind the slash.
func TestLoneSlashInTagTerminates(t *testing.T) {
	inputs := []string{
		`<img src=x / onerror=evil()>`,
		`<a / href="javascript:evil()">x</a>`,
		`<p / / / onclick=evil()>text</p>`,
		`<a /`,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, in := range inputs {
			out, _ := Sanitize(in, Policy{})
			if strings.Contains(strings.ToLower(out), "evil") {
				t.Errorf("payload survived %q -> %q", in, out)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sanitizer hung on stray '/' inside a tag")
	}
}
