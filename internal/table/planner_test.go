package table

import (
	"fmt"
	"testing"

	"w5/internal/difc"
	"w5/internal/quota"
)

// billingStore returns a store with a quota manager so tests can read
// the billed plan-touch counts off the ledger.
func billingStore(schema Schema) (*Store, *quota.Manager) {
	qm := quota.NewManager(quota.Limits{})
	s := New(Options{Quotas: qm})
	if err := s.Create(schema); err != nil {
		panic(err)
	}
	return s, qm
}

// The planner must choose the smallest postings list across all
// indexed equality conjuncts, not the first one that hits.
func TestPlanPicksSmallestIndex(t *testing.T) {
	s, qm := billingStore(Schema{
		Name: "t", Columns: []string{"a", "b"}, Index: []string{"a", "b"},
	})
	for i := 0; i < 100; i++ {
		s.Insert(publicCred, "t", map[string]string{
			"a": "common",                 // 100 rows post under a=common
			"b": fmt.Sprintf("v%d", i%10), // 10 rows per b value
		}, public)
	}
	cred := Cred{Principal: "app:planner"}
	// a=common AND b=v3: the b index (10 rows) must win over a (100).
	rows, _, err := s.Select(cred, "t", And{
		L: Cmp{Col: "a", Op: Eq, Val: "common"},
		R: Cmp{Col: "b", Op: Eq, Val: "v3"},
	})
	if err != nil || len(rows) != 10 {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
	if used := qm.Account("app:planner").Used(quota.Query); used != 10 {
		t.Errorf("billed %d, want 10 (planner took the larger index?)", used)
	}
	// Order of conjuncts must not matter.
	s.Select(cred, "t", And{
		L: Cmp{Col: "b", Op: Eq, Val: "v3"},
		R: Cmp{Col: "a", Op: Eq, Val: "common"},
	})
	if used := qm.Account("app:planner").Used(quota.Query); used != 20 {
		t.Errorf("billed %d total, want 20", used)
	}
}

// An equality miss on an indexed column is a definitive empty result:
// zero rows touched, zero billed.
func TestPlanIndexMissBillsNothing(t *testing.T) {
	s, qm := billingStore(Schema{Name: "t", Columns: []string{"a"}, Index: []string{"a"}})
	for i := 0; i < 50; i++ {
		s.Insert(publicCred, "t", map[string]string{"a": "x"}, public)
	}
	cred := Cred{Principal: "app:miss"}
	rows, _, err := s.Select(cred, "t", Cmp{Col: "a", Op: Eq, Val: "absent"})
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
	if used := qm.Account("app:miss").Used(quota.Query); used != 0 {
		t.Errorf("billed %d for a definitive miss, want 0", used)
	}
}

// Range conjuncts over an ordered index touch only the rows whose keys
// satisfy the bound, and return exactly what a scan returns.
func TestOrderedIndexServesRanges(t *testing.T) {
	s, qm := billingStore(Schema{
		Name: "t", Columns: []string{"n", "tag"}, Ordered: []string{"n"},
	})
	for i := 0; i < 100; i++ {
		s.Insert(publicCred, "t", map[string]string{
			"n": fmt.Sprintf("%03d", i), "tag": "r",
		}, public)
	}
	cred := Cred{Principal: "app:range"}
	cases := []struct {
		pred       Pred
		want, bill int
	}{
		{Cmp{Col: "n", Op: Lt, Val: "010"}, 10, 10},
		{Cmp{Col: "n", Op: Ge, Val: "090"}, 10, 10},
		{Cmp{Col: "n", Op: Prefix, Val: "04"}, 10, 10},
		// The planner takes the cheaper bound: Lt '025' touches 25
		// rows, Ge '020' would touch 80.
		{And{L: Cmp{Col: "n", Op: Ge, Val: "020"}, R: Cmp{Col: "n", Op: Lt, Val: "025"}}, 5, 25},
	}
	var billed uint64
	for _, tc := range cases {
		rows, _, err := s.Select(cred, "t", tc.pred)
		if err != nil || len(rows) != tc.want {
			t.Fatalf("%s: rows=%d err=%v, want %d", tc.pred, len(rows), err, tc.want)
		}
		used := qm.Account("app:range").Used(quota.Query)
		if got := used - billed; got != uint64(tc.bill) {
			t.Errorf("%s: billed %d rows, want %d", tc.pred, got, tc.bill)
		}
		billed = used
	}
	// Numeric-aware comparison: values that parse as integers order
	// numerically even though the key slice is lexicographic.
	s.Create(Schema{Name: "num", Columns: []string{"n"}, Ordered: []string{"n"}})
	for _, v := range []string{"2", "10", "9", "100"} {
		s.Insert(publicCred, "num", map[string]string{"n": v}, public)
	}
	rows, _, _ := s.Select(cred, "num", Cmp{Col: "n", Op: Lt, Val: "10"})
	if len(rows) != 2 { // 2 and 9 — not the lexicographic {10, 100}
		t.Errorf("numeric range via ordered index: got %d rows", len(rows))
	}
}

// The ordered index must stay consistent across Update and Delete:
// retired keys leave the key slice, moved rows re-post.
func TestOrderedIndexMaintainedAcrossMutation(t *testing.T) {
	s, _ := billingStore(Schema{Name: "t", Columns: []string{"n"}, Ordered: []string{"n"}})
	for _, v := range []string{"a", "b", "c"} {
		s.Insert(publicCred, "t", map[string]string{"n": v}, public)
	}
	s.Update(publicCred, "t", Cmp{Col: "n", Op: Eq, Val: "b"}, map[string]string{"n": "z"})
	s.Delete(publicCred, "t", Cmp{Col: "n", Op: Eq, Val: "c"})
	rows, _, err := s.Select(publicCred, "t", Cmp{Col: "n", Op: Ge, Val: "b"})
	if err != nil || len(rows) != 1 || rows[0].Values["n"] != "z" {
		t.Fatalf("rows=%+v err=%v", rows, err)
	}
	ix := mustTable(t, s, "t").indexes["n"]
	if len(ix.keys) != 2 { // a, z
		t.Errorf("ordered keys = %v, want [a z]", ix.keys)
	}
}

// The automatic index on Schema.Unique serves only the conflict
// probe: a point query on an undeclared unique column must bill the
// full scan, not the per-key candidate count — a per-key bill on the
// polyinstantiated column would tell a budget-watching attacker
// whether an invisible partition inserted the key (0 vs 1 rows
// touched), the E7 bit through the ledger.
func TestUniqueIndexNotPlannable(t *testing.T) {
	qm := quota.NewManager(quota.Limits{})
	s := New(Options{Quotas: qm})
	s.Create(Schema{Name: "accounts", Columns: []string{"handle"}, Unique: "handle"})
	s.Insert(bobCred, "accounts", map[string]string{"handle": "neo"}, bobSecret)
	for i := 0; i < 9; i++ {
		s.Insert(publicCred, "accounts", map[string]string{"handle": fmt.Sprintf("h%d", i)}, public)
	}
	probe := Cred{Principal: "app:probe"}
	// Whether the probed key exists in a secret partition ("neo") or
	// nowhere ("zion"), the bill is the same full scan.
	s.Select(probe, "accounts", Cmp{Col: "handle", Op: Eq, Val: "neo"})
	if used := qm.Account("app:probe").Used(quota.Query); used != 10 {
		t.Errorf("billed %d for unique-column point query, want full scan 10", used)
	}
	s.Select(probe, "accounts", Cmp{Col: "handle", Op: Eq, Val: "zion"})
	if used := qm.Account("app:probe").Used(quota.Query); used != 20 {
		t.Errorf("billed %d total, want 20 — bill depends on invisible insertions", used)
	}
	// Declaring the column in Index is the explicit opt-in to per-key
	// billing.
	s.Create(Schema{Name: "opted", Columns: []string{"handle"}, Unique: "handle", Index: []string{"handle"}})
	s.Insert(publicCred, "opted", map[string]string{"handle": "a"}, public)
	s.Select(probe, "opted", Cmp{Col: "handle", Op: Eq, Val: "a"})
	if used := qm.Account("app:probe").Used(quota.Query); used != 21 {
		t.Errorf("declared index not planned: billed %d, want 21", used)
	}
}

// Credential epochs key on the (Labels, Caps) state, not the
// principal: one app's concurrent processes at different taint levels
// must each keep a stable epoch (a per-principal slot would mint a
// fresh epoch on every alternation, silently defeating the cache),
// and equal states share one epoch across principals.
func TestCredEpochsStableAcrossStateAlternation(t *testing.T) {
	s := New(Options{})
	s.Create(Schema{Name: "t", Columns: []string{"v"}})
	s.Insert(publicCred, "t", map[string]string{"v": "x"}, public)

	tb := mustTable(t, s, "t")
	untainted := Cred{Principal: "app:blog", Caps: difc.CapsFor(sBob)}
	tainted := Cred{Principal: "app:blog", Labels: bobSecret, Caps: difc.CapsFor(sBob)}
	e1 := tb.epochs.resolve(untainted)
	e2 := tb.epochs.resolve(tainted)
	if e1 == e2 {
		t.Fatal("distinct states share an epoch")
	}
	for i := 0; i < 10; i++ {
		if got := tb.epochs.resolve(untainted); got != e1 {
			t.Fatalf("untainted state's epoch drifted: %d -> %d", e1, got)
		}
		if got := tb.epochs.resolve(tainted); got != e2 {
			t.Fatalf("tainted state's epoch drifted: %d -> %d", e2, got)
		}
	}
	// Same state, different principal: shared epoch (visibility is a
	// function of the state alone).
	other := Cred{Principal: "app:photos", Caps: difc.CapsFor(sBob)}
	if got := tb.epochs.resolve(other); got != e1 {
		t.Errorf("equal state minted a second epoch: %d vs %d", got, e1)
	}
}

// Visibility verdicts are cached per (interned label, credential
// epoch); a credential that loses a capability must get fresh verdicts
// — a stale cached positive would leak the row.
func TestVisibilityCacheInvalidatedOnCredentialChange(t *testing.T) {
	s := New(Options{})
	s.Create(Schema{Name: "t", Columns: []string{"v"}})
	s.Insert(bobCred, "t", map[string]string{"v": "secret"}, bobSecret)

	reader := Cred{Caps: difc.NewCapSet(difc.Plus(sBob)), Principal: "app:r"}
	if rows, _, _ := s.Select(reader, "t", True{}); len(rows) != 1 {
		t.Fatal("privileged reader blind")
	}
	// Warm the cache, then present the same principal without the cap.
	s.Select(reader, "t", True{})
	revoked := Cred{Principal: "app:r"}
	if rows, _, _ := s.Select(revoked, "t", True{}); len(rows) != 0 {
		t.Fatal("stale cached verdict leaked a row after capability revocation")
	}
	// And the grant direction: a fresh capability is honored immediately.
	if rows, _, _ := s.Select(reader, "t", True{}); len(rows) != 1 {
		t.Fatal("regrant not honored")
	}
}

// Interned label classes are refcounted and retired when their last
// row is deleted: a long-running table's interner must be bounded by
// the labels of its live rows, not every label ever inserted (user
// churn under per-user boilerplate labels would otherwise grow it
// forever).
func TestLabelClassesRetiredOnDelete(t *testing.T) {
	s := New(Options{})
	s.Create(Schema{Name: "t", Columns: []string{"owner"}})
	classCount := func() int {
		tb := mustTable(t, s, "t")
		n := 0
		for _, b := range tb.classes {
			n += len(b)
		}
		return n
	}
	creds := make([]Cred, 50)
	for i := range creds {
		tag := difc.Tag(i + 1)
		creds[i] = Cred{Caps: difc.CapsFor(tag), Principal: fmt.Sprintf("u%d", i)}
		for j := 0; j < 3; j++ {
			s.Insert(creds[i], "t", map[string]string{"owner": creds[i].Principal},
				difc.LabelPair{Secrecy: difc.NewLabel(tag)})
		}
	}
	if got := classCount(); got != 50 {
		t.Fatalf("%d classes, want 50", got)
	}
	// Account closure: each user deletes their rows; their label's
	// class goes with the last row.
	for i := 0; i < 40; i++ {
		w := Cred{Labels: difc.LabelPair{Secrecy: difc.NewLabel(difc.Tag(i + 1))},
			Caps: difc.CapsFor(difc.Tag(i + 1)), Principal: creds[i].Principal}
		if n, err := s.Delete(w, "t", True{}); err != nil || n != 3 {
			t.Fatalf("delete u%d: n=%d err=%v", i, n, err)
		}
	}
	if got := classCount(); got != 10 {
		t.Fatalf("%d classes after churn, want 10 (retired classes leaked)", got)
	}
	// Survivors still resolve correctly.
	if rows, _, _ := s.Select(creds[45], "t", True{}); len(rows) != 3 {
		t.Fatalf("survivor sees %d rows", len(rows))
	}
}

// mustTable reaches into the store for white-box index assertions.
func mustTable(t *testing.T, s *Store, name string) *tbl {
	t.Helper()
	s.mu.RLock()
	defer s.mu.RUnlock()
	tb, ok := s.tables[name]
	if !ok {
		t.Fatalf("no table %s", name)
	}
	return tb
}
