package table

import (
	"errors"
	"testing"

	"w5/internal/difc"
	"w5/internal/quota"
)

const (
	sBob   = difc.Tag(1)
	sAlice = difc.Tag(2)
)

var (
	bobCred    = Cred{Caps: difc.CapsFor(sBob), Principal: "user:bob"}
	aliceCred  = Cred{Caps: difc.CapsFor(sAlice), Principal: "user:alice"}
	publicCred = Cred{Principal: "anon"}

	bobSecret   = difc.LabelPair{Secrecy: difc.NewLabel(sBob)}
	aliceSecret = difc.LabelPair{Secrecy: difc.NewLabel(sAlice)}
	public      = difc.LabelPair{}
)

func photoSchema() Schema {
	return Schema{
		Name:    "photos",
		Columns: []string{"owner", "title", "bytes"},
		Index:   []string{"owner"},
	}
}

func newStore(t *testing.T) *Store {
	t.Helper()
	s := New(Options{})
	if err := s.Create(photoSchema()); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateValidation(t *testing.T) {
	s := New(Options{})
	cases := []struct {
		name   string
		schema Schema
	}{
		{"empty name", Schema{Columns: []string{"a"}}},
		{"no columns", Schema{Name: "t"}},
		{"dup column", Schema{Name: "t", Columns: []string{"a", "a"}}},
		{"empty column", Schema{Name: "t", Columns: []string{""}}},
		{"unique not in schema", Schema{Name: "t", Columns: []string{"a"}, Unique: "b"}},
		{"index not in schema", Schema{Name: "t", Columns: []string{"a"}, Index: []string{"b"}}},
	}
	for _, tt := range cases {
		if err := s.Create(tt.schema); err == nil {
			t.Errorf("%s: accepted", tt.name)
		}
	}
	if err := s.Create(photoSchema()); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(photoSchema()); !errors.Is(err, ErrTableExist) {
		t.Errorf("duplicate table: %v", err)
	}
	if got := s.Tables(); len(got) != 1 || got[0] != "photos" {
		t.Errorf("Tables = %v", got)
	}
	if sc, err := s.SchemaOf("photos"); err != nil || sc.Name != "photos" {
		t.Errorf("SchemaOf = %+v, %v", sc, err)
	}
	if _, err := s.SchemaOf("none"); !errors.Is(err, ErrNoTable) {
		t.Errorf("SchemaOf missing: %v", err)
	}
}

func TestInsertAndSelectOwnRows(t *testing.T) {
	s := newStore(t)
	id, err := s.Insert(bobCred, "photos", map[string]string{"owner": "bob", "title": "cat"}, bobSecret)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Error("zero row id")
	}
	rows, label, err := s.Select(bobCred, "photos", Cmp{Col: "owner", Op: Eq, Val: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Values["title"] != "cat" {
		t.Fatalf("rows = %+v", rows)
	}
	if !label.Secrecy.Has(sBob) {
		t.Error("result label missing taint")
	}
}

func TestSelectFiltersInvisibleRows(t *testing.T) {
	s := newStore(t)
	s.Insert(bobCred, "photos", map[string]string{"owner": "bob", "title": "secret-cat"}, bobSecret)
	s.Insert(aliceCred, "photos", map[string]string{"owner": "alice", "title": "public-dog"}, public)

	// Public cred sees only the public row.
	rows, label, err := s.Select(publicCred, "photos", True{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Values["title"] != "public-dog" {
		t.Fatalf("public sees %+v", rows)
	}
	if !label.Secrecy.IsEmpty() {
		t.Error("public result carries secrecy")
	}
	// Bob sees both (he can raise to his own tag).
	rows, label, _ = s.Select(bobCred, "photos", True{})
	if len(rows) != 2 {
		t.Fatalf("bob sees %d rows", len(rows))
	}
	if !label.Secrecy.Has(sBob) {
		t.Error("joined label lost bob's tag")
	}
}

func TestCountSeesOnlyVisiblePartition(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 5; i++ {
		s.Insert(bobCred, "photos", map[string]string{"owner": "bob"}, bobSecret)
	}
	s.Insert(aliceCred, "photos", map[string]string{"owner": "alice"}, public)

	n, err := s.Count(publicCred, "photos", True{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("public count = %d, want 1 — COUNT leaks secret activity", n)
	}
	n, _ = s.Count(bobCred, "photos", True{})
	if n != 6 {
		t.Errorf("bob count = %d, want 6", n)
	}
}

func TestInsertWriteChecks(t *testing.T) {
	s := newStore(t)
	// A tainted credential cannot write a public row (write-down).
	tainted := Cred{Labels: bobSecret, Principal: "app:t"}
	if _, err := s.Insert(tainted, "photos", map[string]string{"owner": "x"}, public); !errors.Is(err, ErrDenied) {
		t.Fatalf("write-down allowed: %v", err)
	}
	// Nobody can forge an integrity tag they cannot endorse.
	wTag := difc.Tag(9)
	endorsed := difc.LabelPair{Integrity: difc.NewLabel(wTag)}
	if _, err := s.Insert(publicCred, "photos", map[string]string{"owner": "x"}, endorsed); !errors.Is(err, ErrDenied) {
		t.Fatalf("integrity forgery allowed: %v", err)
	}
	// Unknown column rejected.
	if _, err := s.Insert(bobCred, "photos", map[string]string{"bogus": "x"}, public); !errors.Is(err, ErrBadSchema) {
		t.Fatalf("bad column: %v", err)
	}
	// Unknown table.
	if _, err := s.Insert(bobCred, "none", nil, public); !errors.Is(err, ErrNoTable) {
		t.Fatalf("missing table: %v", err)
	}
}

func TestUpdateRespectsLabels(t *testing.T) {
	// Rows carry write-protection (integrity) tags, the table analogue
	// of the store's default write protection.
	s := newStore(t)
	wBob, wAlice := difc.Tag(10), difc.Tag(11)
	bobProt := difc.LabelPair{Secrecy: difc.NewLabel(sBob), Integrity: difc.NewLabel(wBob)}
	aliceProt := difc.LabelPair{Secrecy: difc.NewLabel(sAlice), Integrity: difc.NewLabel(wAlice)}
	bobOwner := Cred{Caps: difc.CapsFor(sBob, wBob), Principal: "user:bob"}
	aliceOwner := Cred{Caps: difc.CapsFor(sAlice, wAlice), Principal: "user:alice"}
	s.Insert(bobOwner, "photos", map[string]string{"owner": "bob", "title": "old"}, bobProt)
	s.Insert(aliceOwner, "photos", map[string]string{"owner": "alice", "title": "old"}, aliceProt)

	// Bob updates his row; Alice's is invisible to him, untouched, and
	// unreported.
	n, err := s.Update(bobOwner, "photos", Cmp{Col: "title", Op: Eq, Val: "old"}, map[string]string{"title": "new"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("updated %d rows, want 1", n)
	}
	rows, _, _ := s.Select(aliceOwner, "photos", Cmp{Col: "owner", Op: Eq, Val: "alice"})
	if rows[0].Values["title"] != "old" {
		t.Error("alice's row modified by bob's update")
	}
	// A read-only credential sees Bob's row but cannot endorse w_bob:
	// the whole update is denied, nothing is vandalized.
	reader := Cred{Caps: difc.NewCapSet(difc.Plus(sBob)), Principal: "app:reader"}
	if _, err := s.Update(reader, "photos", True{}, map[string]string{"title": "vandal"}); !errors.Is(err, ErrDenied) {
		t.Fatalf("reader vandalized rows: %v", err)
	}
	rows, _, _ = s.Select(bobOwner, "photos", Cmp{Col: "owner", Op: Eq, Val: "bob"})
	if rows[0].Values["title"] != "new" {
		t.Error("denied update modified the row anyway")
	}
}

func TestDeleteRespectsLabels(t *testing.T) {
	s := newStore(t)
	s.Insert(bobCred, "photos", map[string]string{"owner": "bob"}, bobSecret)
	s.Insert(aliceCred, "photos", map[string]string{"owner": "alice"}, aliceSecret)

	bobWriter := Cred{Labels: bobSecret, Caps: difc.CapsFor(sBob), Principal: "user:bob"}
	n, err := s.Delete(bobWriter, "photos", True{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("deleted %d, want 1", n)
	}
	if n, _ := s.Count(aliceCred, "photos", True{}); n != 1 {
		t.Error("alice's row deleted")
	}
}

func TestPolyinstantiation(t *testing.T) {
	// The E7 property at unit scale: a unique key inserted under a
	// secret label does not block (or reveal itself to) a public
	// insert of the same key.
	s := New(Options{})
	s.Create(Schema{Name: "accounts", Columns: []string{"handle"}, Unique: "handle"})

	if _, err := s.Insert(bobCred, "accounts", map[string]string{"handle": "neo"}, bobSecret); err != nil {
		t.Fatal(err)
	}
	// Public insert of the same handle succeeds: no covert channel.
	if _, err := s.Insert(publicCred, "accounts", map[string]string{"handle": "neo"}, public); err != nil {
		t.Fatalf("labeled store leaked via unique constraint: %v", err)
	}
	// Within a partition the constraint still holds.
	if _, err := s.Insert(publicCred, "accounts", map[string]string{"handle": "neo"}, public); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate in same partition: %v", err)
	}
	// Bob, who sees both, is blocked from duplicating his own.
	if _, err := s.Insert(bobCred, "accounts", map[string]string{"handle": "neo"}, bobSecret); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("bob duplicate: %v", err)
	}
}

func TestNaiveModeLeaksUniqueness(t *testing.T) {
	// The SQL behaviour the paper says must be replaced: global unique
	// constraints turn secret inserts into a 1-bit public signal.
	s := New(Options{Naive: true})
	s.Create(Schema{Name: "accounts", Columns: []string{"handle"}, Unique: "handle"})

	s.Insert(bobCred, "accounts", map[string]string{"handle": "neo"}, bobSecret)
	_, err := s.Insert(publicCred, "accounts", map[string]string{"handle": "neo"}, public)
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("naive store did not exhibit the covert channel: %v", err)
	}
	// And COUNT sees everything.
	n, _ := s.Count(publicCred, "accounts", True{})
	if n != 1 {
		t.Errorf("naive count = %d, want 1 (the secret row)", n)
	}
	if !s.Naive() {
		t.Error("Naive() = false")
	}
}

func TestIndexedSelectUsesIndex(t *testing.T) {
	qm := quota.NewManager(quota.Limits{Query: 1000})
	s := New(Options{Quotas: qm})
	s.Create(photoSchema())
	for i := 0; i < 100; i++ {
		owner := "bob"
		if i%2 == 0 {
			owner = "alice"
		}
		s.Insert(publicCred, "photos", map[string]string{"owner": owner}, public)
	}
	cred := Cred{Principal: "app:q"}
	rows, _, err := s.Select(cred, "photos", Cmp{Col: "owner", Op: Eq, Val: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Index hit: only 50 rows billed, not 100.
	if used := qm.Account("app:q").Used(quota.Query); used != 50 {
		t.Errorf("billed %d scan units, want 50 (index not used?)", used)
	}
	// Unindexed predicate scans everything.
	s.Select(cred, "photos", Cmp{Col: "title", Op: Eq, Val: "x"})
	if used := qm.Account("app:q").Used(quota.Query); used != 150 {
		t.Errorf("billed %d total, want 150", used)
	}
}

func TestIndexMaintainedAcrossUpdateDelete(t *testing.T) {
	s := newStore(t)
	id, _ := s.Insert(publicCred, "photos", map[string]string{"owner": "bob", "title": "x"}, public)
	s.Insert(publicCred, "photos", map[string]string{"owner": "bob", "title": "y"}, public)

	// Move one row to a new owner; index must follow.
	n, err := s.Update(publicCred, "photos", Cmp{Col: "title", Op: Eq, Val: "x"}, map[string]string{"owner": "carol"})
	if err != nil || n != 1 {
		t.Fatalf("update: %d, %v", n, err)
	}
	rows, _, _ := s.Select(publicCred, "photos", Cmp{Col: "owner", Op: Eq, Val: "carol"})
	if len(rows) != 1 || rows[0].ID != id {
		t.Fatalf("index lookup after update: %+v", rows)
	}
	rows, _, _ = s.Select(publicCred, "photos", Cmp{Col: "owner", Op: Eq, Val: "bob"})
	if len(rows) != 1 {
		t.Fatalf("stale index entry: %+v", rows)
	}
	// Delete and verify index cleanup.
	s.Delete(publicCred, "photos", Cmp{Col: "owner", Op: Eq, Val: "carol"})
	rows, _, _ = s.Select(publicCred, "photos", Cmp{Col: "owner", Op: Eq, Val: "carol"})
	if len(rows) != 0 {
		t.Fatalf("deleted row still indexed: %+v", rows)
	}
}

func TestQueryQuotaExhaustion(t *testing.T) {
	qm := quota.NewManager(quota.Limits{Query: 10})
	s := New(Options{Quotas: qm})
	s.Create(photoSchema())
	for i := 0; i < 20; i++ {
		s.Insert(publicCred, "photos", map[string]string{"title": "t"}, public)
	}
	cred := Cred{Principal: "app:bomb"}
	_, _, err := s.Select(cred, "photos", True{}) // full scan of 20 > 10
	var ex *quota.ErrExceeded
	if !errors.As(err, &ex) {
		t.Fatalf("query bomb not stopped: %v", err)
	}
}

func TestRowCopiesAreIsolated(t *testing.T) {
	s := newStore(t)
	s.Insert(publicCred, "photos", map[string]string{"title": "orig"}, public)
	rows, _, _ := s.Select(publicCred, "photos", True{})
	rows[0].Values["title"] = "mutated"
	rows2, _, _ := s.Select(publicCred, "photos", True{})
	if rows2[0].Values["title"] != "orig" {
		t.Error("returned rows alias store memory")
	}
}

func TestSelectInsertionOrder(t *testing.T) {
	s := newStore(t)
	for _, title := range []string{"a", "b", "c"} {
		s.Insert(publicCred, "photos", map[string]string{"title": title}, public)
	}
	rows, _, _ := s.Select(publicCred, "photos", True{})
	for i, want := range []string{"a", "b", "c"} {
		if rows[i].Values["title"] != want {
			t.Fatalf("order: got %v", rows)
		}
	}
}
