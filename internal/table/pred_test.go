package table

import (
	"testing"
)

func row(kv ...string) map[string]string {
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

func TestCmpOperators(t *testing.T) {
	r := row("name", "bob", "age", "30", "bio", "hello world")
	cases := []struct {
		pred Cmp
		want bool
	}{
		{Cmp{"name", Eq, "bob"}, true},
		{Cmp{"name", Eq, "alice"}, false},
		{Cmp{"name", Ne, "alice"}, true},
		{Cmp{"age", Lt, "40"}, true},
		{Cmp{"age", Lt, "30"}, false},
		{Cmp{"age", Le, "30"}, true},
		{Cmp{"age", Gt, "7"}, true}, // numeric: 30 > 7 though "30" < "7" lexically
		{Cmp{"age", Ge, "30"}, true},
		{Cmp{"age", Ge, "31"}, false},
		{Cmp{"bio", Contains, "world"}, true},
		{Cmp{"bio", Contains, "mars"}, false},
		{Cmp{"bio", Prefix, "hello"}, true},
		{Cmp{"bio", Prefix, "world"}, false},
		{Cmp{"missing", Eq, "x"}, false},
	}
	for _, tt := range cases {
		if got := tt.pred.Match(r); got != tt.want {
			t.Errorf("%s on %v = %v, want %v", tt.pred, r, got, tt.want)
		}
	}
}

func TestLexicographicFallback(t *testing.T) {
	r := row("v", "apple")
	if !(Cmp{"v", Lt, "banana"}).Match(r) {
		t.Error("lexicographic < failed")
	}
	if (Cmp{"v", Gt, "banana"}).Match(r) {
		t.Error("lexicographic > wrong")
	}
}

func TestBooleanCombinators(t *testing.T) {
	r := row("a", "1", "b", "2")
	p := And{L: Cmp{"a", Eq, "1"}, R: Cmp{"b", Eq, "2"}}
	if !p.Match(r) {
		t.Error("And failed")
	}
	q := Or{L: Cmp{"a", Eq, "9"}, R: Cmp{"b", Eq, "2"}}
	if !q.Match(r) {
		t.Error("Or failed")
	}
	n := Not{P: Cmp{"a", Eq, "9"}}
	if !n.Match(r) {
		t.Error("Not failed")
	}
	if !(True{}).Match(nil) {
		t.Error("True failed")
	}
}

func TestParsePredBasic(t *testing.T) {
	cases := []struct {
		src   string
		match map[string]string
		want  bool
	}{
		{"", row("x", "1"), true},
		{"true", row(), true},
		{"name = bob", row("name", "bob"), true},
		{"name = bob", row("name", "eve"), false},
		{"name = 'bob smith'", row("name", "bob smith"), true},
		{"age > 21 AND age < 30", row("age", "25"), true},
		{"age > 21 AND age < 30", row("age", "55"), false},
		{"a = 1 OR b = 2", row("a", "0", "b", "2"), true},
		{"NOT a = 1", row("a", "2"), true},
		{"NOT (a = 1 OR a = 2)", row("a", "3"), true},
		{"a = 1 AND (b = 2 OR b = 3)", row("a", "1", "b", "3"), true},
		{"bio contains cats", row("bio", "i like cats a lot"), true},
		{"bio prefix dr", row("bio", "dr strange"), true},
		{"a != 1", row("a", "2"), true},
		{"a >= 10 AND a <= 20", row("a", "15"), true},
	}
	for _, tt := range cases {
		p, err := ParsePred(tt.src)
		if err != nil {
			t.Fatalf("ParsePred(%q): %v", tt.src, err)
		}
		if got := p.Match(tt.match); got != tt.want {
			t.Errorf("ParsePred(%q).Match(%v) = %v, want %v", tt.src, tt.match, got, tt.want)
		}
	}
}

func TestParsePredPrecedence(t *testing.T) {
	// AND binds tighter than OR: a=1 OR b=2 AND c=3  ==  a=1 OR (b=2 AND c=3)
	p, err := ParsePred("a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Match(row("a", "1", "b", "0", "c", "0")) {
		t.Error("left OR branch failed")
	}
	if !p.Match(row("a", "0", "b", "2", "c", "3")) {
		t.Error("right AND branch failed")
	}
	if p.Match(row("a", "0", "b", "2", "c", "0")) {
		t.Error("precedence wrong: partial AND matched")
	}
}

func TestParsePredErrors(t *testing.T) {
	for _, src := range []string{
		"name =",
		"= bob",
		"name ~ bob",
		"(a = 1",
		"a = 1 )",
		"a = 'unterminated",
		"AND a = 1",
		"a = 1 b = 2",
		"a ! 1",
		"'quoted' = x",
		"NOT",
	} {
		if _, err := ParsePred(src); err == nil {
			t.Errorf("ParsePred(%q) succeeded, want error", src)
		}
	}
}

func TestParsePredRoundTripStrings(t *testing.T) {
	// String() output of a parsed predicate must parse to an equivalent
	// predicate (checked by behaviour on sample rows).
	srcs := []string{
		"a = 1 AND b = 2",
		"NOT (x contains y)",
		"a = 1 OR b = 2 AND c = 3",
	}
	samples := []map[string]string{
		row("a", "1", "b", "2", "c", "3", "x", "wy"),
		row("a", "0", "b", "2", "c", "0", "x", "zz"),
		row("a", "1", "b", "0", "c", "0", "x", "y"),
	}
	for _, src := range srcs {
		p1, err := ParsePred(src)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := ParsePred(p1.String())
		if err != nil {
			t.Fatalf("reparse of %q (%q): %v", src, p1.String(), err)
		}
		for _, s := range samples {
			if p1.Match(s) != p2.Match(s) {
				t.Errorf("%q and its round trip disagree on %v", src, s)
			}
		}
	}
}

func TestEqConjunctExtraction(t *testing.T) {
	p, _ := ParsePred("owner = bob AND age > 3")
	cs := eqConjuncts(p)
	if len(cs) != 1 || cs[0].Col != "owner" || cs[0].Val != "bob" {
		t.Errorf("eqConjuncts = %v", cs)
	}
	// OR poisons index use: no conjunct is guaranteed.
	p, _ = ParsePred("owner = bob OR age > 3")
	if cs := eqConjuncts(p); len(cs) != 0 {
		t.Errorf("eqConjuncts through OR = %v, want none", cs)
	}
	// Nested ANDs accumulate.
	p, _ = ParsePred("a = 1 AND b = 2 AND c > 3")
	if cs := eqConjuncts(p); len(cs) != 2 {
		t.Errorf("eqConjuncts = %v, want 2", cs)
	}
}
