package table

import (
	"errors"
	"testing"
)

func accountsStore(naive bool) *Store {
	s := New(Options{Naive: naive})
	s.Create(Schema{Name: "accounts", Columns: []string{"handle", "note"}, Unique: "handle"})
	return s
}

// Regression test: before PR 5, Update did not enforce Schema.Unique at
// all — setting the unique column to a value another visible row
// already carried succeeded, silently violating the constraint Insert
// enforces.
func TestUpdateCannotViolateUnique(t *testing.T) {
	s := accountsStore(false)
	s.Insert(publicCred, "accounts", map[string]string{"handle": "neo", "note": "a"}, public)
	s.Insert(publicCred, "accounts", map[string]string{"handle": "trinity", "note": "b"}, public)

	// Renaming trinity to neo collides with a visible row: denied whole.
	n, err := s.Update(publicCred, "accounts",
		Cmp{Col: "handle", Op: Eq, Val: "trinity"}, map[string]string{"handle": "neo"})
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("update violated unique constraint: n=%d err=%v", n, err)
	}
	rows, _, _ := s.Select(publicCred, "accounts", Cmp{Col: "handle", Op: Eq, Val: "trinity"})
	if len(rows) != 1 || rows[0].Values["note"] != "b" {
		t.Fatalf("denied update modified the row: %+v", rows)
	}

	// A self-rename (key unchanged) is not a conflict.
	if n, err := s.Update(publicCred, "accounts",
		Cmp{Col: "handle", Op: Eq, Val: "trinity"}, map[string]string{"handle": "trinity", "note": "b2"}); err != nil || n != 1 {
		t.Fatalf("self-keyed update: n=%d err=%v", n, err)
	}

	// A rename to a fresh key succeeds and the index follows.
	if n, err := s.Update(publicCred, "accounts",
		Cmp{Col: "handle", Op: Eq, Val: "trinity"}, map[string]string{"handle": "morpheus"}); err != nil || n != 1 {
		t.Fatalf("rename: n=%d err=%v", n, err)
	}
	if _, err := s.Insert(publicCred, "accounts", map[string]string{"handle": "morpheus"}, public); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("index missed renamed key: %v", err)
	}
	if _, err := s.Insert(publicCred, "accounts", map[string]string{"handle": "trinity"}, public); err != nil {
		t.Fatalf("old key not released: %v", err)
	}
}

// A multi-row update that sets the unique column converges every
// matched row onto one value — always a violation when more than one
// row matches.
func TestUpdateUniqueMultiRowConvergence(t *testing.T) {
	s := accountsStore(false)
	s.Insert(publicCred, "accounts", map[string]string{"handle": "a", "note": "x"}, public)
	s.Insert(publicCred, "accounts", map[string]string{"handle": "b", "note": "x"}, public)
	n, err := s.Update(publicCred, "accounts",
		Cmp{Col: "note", Op: Eq, Val: "x"}, map[string]string{"handle": "c"})
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("convergent update allowed: n=%d err=%v", n, err)
	}
	if rows, _, _ := s.Select(publicCred, "accounts", Cmp{Col: "handle", Op: Eq, Val: "c"}); len(rows) != 0 {
		t.Fatalf("denied update left rows behind: %+v", rows)
	}
}

// Uniqueness on update is partition-scoped, exactly like Insert: a
// public rename onto a key that exists only in a secret partition must
// succeed — blocking it would be the E7 covert channel through Update.
func TestUpdateUniquePartitionScoped(t *testing.T) {
	s := accountsStore(false)
	s.Insert(bobCred, "accounts", map[string]string{"handle": "neo"}, bobSecret)
	s.Insert(publicCred, "accounts", map[string]string{"handle": "smith"}, public)

	if n, err := s.Update(publicCred, "accounts",
		Cmp{Col: "handle", Op: Eq, Val: "smith"}, map[string]string{"handle": "neo"}); err != nil || n != 1 {
		t.Fatalf("labeled store leaked via unique-on-update: n=%d err=%v", n, err)
	}
	// Bob, who sees both copies of "neo", cannot create a third within
	// his partition by renaming his own row onto it.
	s.Insert(bobCred, "accounts", map[string]string{"handle": "cypher"}, bobSecret)
	if _, err := s.Update(bobCred, "accounts",
		Cmp{Col: "handle", Op: Eq, Val: "cypher"}, map[string]string{"handle": "neo"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("bob duplicated within his partition: %v", err)
	}
}

// In naive mode the constraint is global on update too — the covert
// channel the comparator exists to exhibit.
func TestUpdateUniqueNaiveGlobal(t *testing.T) {
	s := accountsStore(true)
	s.Insert(bobCred, "accounts", map[string]string{"handle": "neo"}, bobSecret)
	s.Insert(publicCred, "accounts", map[string]string{"handle": "smith"}, public)
	if _, err := s.Update(publicCred, "accounts",
		Cmp{Col: "handle", Op: Eq, Val: "smith"}, map[string]string{"handle": "neo"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("naive store did not exhibit the global constraint: %v", err)
	}
}
