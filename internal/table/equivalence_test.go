package table

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"w5/internal/difc"
	"w5/internal/quota"
)

// TestPlanEquivalence pins the planner's one invariant that matters
// for E7: plan choice is invisible in results. The same E7-style
// sharded workload — ten users' labeled partitions plus a public
// partition — is loaded into a scan-only store, an equality-indexed
// store, and an ordered-indexed store; every (credential, predicate)
// pair must return byte-identical rows and joined labels from all
// three. Billing must follow "one unit per row the plan touches",
// must never exceed the scan plan's bill, and must be identical for
// every credential asking the same question — a bill that depended on
// the asker's visibility would itself be an observable.
func TestPlanEquivalence(t *testing.T) {
	const users = 10
	schemas := map[string]Schema{
		"scan":    {Name: "rv", Columns: []string{"owner", "n", "title"}},
		"indexed": {Name: "rv", Columns: []string{"owner", "n", "title"}, Index: []string{"owner"}},
		"ordered": {Name: "rv", Columns: []string{"owner", "n", "title"}, Index: []string{"owner"}, Ordered: []string{"n"}},
	}
	stores := map[string]*Store{}
	managers := map[string]*quota.Manager{}
	creds := make([]Cred, users)
	for i := range creds {
		creds[i] = Cred{Caps: difc.CapsFor(difc.Tag(i + 1)), Principal: fmt.Sprintf("user:u%02d", i)}
	}
	for name, schema := range schemas {
		qm := quota.NewManager(quota.Limits{})
		s := New(Options{Quotas: qm})
		if err := s.Create(schema); err != nil {
			t.Fatal(err)
		}
		// Identical insertion sequence everywhere → identical row ids.
		for i := 0; i < 40*users; i++ {
			u := i % users
			label := difc.LabelPair{Secrecy: difc.NewLabel(difc.Tag(u + 1))}
			cred := creds[u]
			if i%4 == 3 { // every 4th row is public
				label = difc.LabelPair{}
			}
			if _, err := s.Insert(cred, "rv", map[string]string{
				"owner": cred.Principal,
				"n":     fmt.Sprintf("%03d", i/users),
				"title": fmt.Sprintf("t%d", i%7),
			}, label); err != nil {
				t.Fatal(err)
			}
		}
		stores[name], managers[name] = s, qm
	}
	preds := []Pred{
		True{},
		Cmp{Col: "owner", Op: Eq, Val: "user:u03"},
		Cmp{Col: "owner", Op: Eq, Val: "user:u99"}, // index miss
		Cmp{Col: "n", Op: Ge, Val: "030"},
		Cmp{Col: "n", Op: Prefix, Val: "01"},
		And{L: Cmp{Col: "owner", Op: Eq, Val: "user:u03"}, R: Cmp{Col: "n", Op: Lt, Val: "010"}},
		Or{L: Cmp{Col: "n", Op: Eq, Val: "001"}, R: Cmp{Col: "title", Op: Eq, Val: "t3"}},
		Not{P: Cmp{Col: "title", Op: Contains, Val: "3"}},
	}
	queriers := append(append([]Cred{}, creds...), Cred{Principal: "anon"})
	golden := map[string]string{} // (pred, querier) -> scan store's result
	for pi, pred := range preds {
		var scanBill uint64
		for _, name := range []string{"scan", "indexed", "ordered"} {
			s, qm := stores[name], managers[name]
			for qi, cred := range queriers {
				rows, joined, err := s.Select(cred, "rv", pred)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", name, cred.Principal, pred, err)
				}
				got := renderResult(rows, joined)
				key := fmt.Sprintf("p%d/q%d", pi, qi)
				if want, ok := golden[key]; !ok {
					golden[key] = got // scan store defines the reference
				} else if got != want {
					t.Errorf("%s %s %s:\n got %s\nwant %s", name, cred.Principal, pred, got, want)
				}
			}
			// Billing is a pure function of the question, never of the
			// asker: the cumulative ledgers stay in lockstep across
			// every credential, visible partition or not.
			base := qm.Account(queriers[0].Principal).Used(quota.Query)
			for _, cred := range queriers {
				if got := qm.Account(cred.Principal).Used(quota.Query); got != base {
					t.Fatalf("%s: bill for %s = %d, for %s = %d — billing depends on the asker",
						name, cred.Principal, got, queriers[0].Principal, base)
				}
			}
			if name == "scan" {
				scanBill = base
			} else if base > scanBill {
				t.Errorf("%s billed %d > scan's %d for %s", name, base, scanBill, pred)
			}
		}
	}
}

// renderResult serializes a result set byte-stably: id, sorted
// columns, row label, then the joined label.
func renderResult(rows []Row, joined difc.LabelPair) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%d[", r.ID)
		cols := make([]string, 0, len(r.Values))
		for c := range r.Values {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, c := range cols {
			fmt.Fprintf(&b, "%s=%s;", c, r.Values[c])
		}
		fmt.Fprintf(&b, "]%s|", r.Label)
	}
	fmt.Fprintf(&b, " join=%s", joined)
	return b.String()
}
