package table

import (
	"fmt"
	"strconv"
	"strings"
)

// Pred is a row predicate. Predicates are pure: they see only the row's
// column values, never labels, so evaluating one cannot depend on
// another principal's secrets beyond the rows already visible.
type Pred interface {
	Match(values map[string]string) bool
	String() string
}

// Op is a comparison operator.
type Op string

// Comparison operators. Lt/Le/Gt/Ge compare numerically when both sides
// parse as integers, lexicographically otherwise.
const (
	Eq       Op = "="
	Ne       Op = "!="
	Lt       Op = "<"
	Le       Op = "<="
	Gt       Op = ">"
	Ge       Op = ">="
	Contains Op = "contains"
	Prefix   Op = "prefix"
)

// True matches every row.
type True struct{}

// Match implements Pred.
func (True) Match(map[string]string) bool { return true }

// String implements Pred.
func (True) String() string { return "true" }

// Cmp compares one column against a constant.
type Cmp struct {
	Col string
	Op  Op
	Val string
}

// Match implements Pred.
func (c Cmp) Match(values map[string]string) bool {
	v, ok := values[c.Col]
	if !ok {
		return false
	}
	switch c.Op {
	case Eq:
		return v == c.Val
	case Ne:
		return v != c.Val
	case Contains:
		return strings.Contains(v, c.Val)
	case Prefix:
		return strings.HasPrefix(v, c.Val)
	}
	return cmpMatches(c.Op, compare(v, c.Val))
}

// compare orders two values, numerically when both are integers.
func compare(a, b string) int {
	ai, errA := strconv.ParseInt(a, 10, 64)
	bi, errB := strconv.ParseInt(b, 10, 64)
	if errA == nil && errB == nil {
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}

// String implements Pred. Values are single-quoted, the form ParsePred
// accepts, so String output always reparses.
func (c Cmp) String() string { return fmt.Sprintf("%s %s '%s'", c.Col, c.Op, c.Val) }

// And matches rows matching both operands.
type And struct{ L, R Pred }

// Match implements Pred.
func (a And) Match(v map[string]string) bool { return a.L.Match(v) && a.R.Match(v) }

// String implements Pred.
func (a And) String() string { return "(" + a.L.String() + " AND " + a.R.String() + ")" }

// Or matches rows matching either operand.
type Or struct{ L, R Pred }

// Match implements Pred.
func (o Or) Match(v map[string]string) bool { return o.L.Match(v) || o.R.Match(v) }

// String implements Pred.
func (o Or) String() string { return "(" + o.L.String() + " OR " + o.R.String() + ")" }

// Not matches rows the operand rejects.
type Not struct{ P Pred }

// Match implements Pred.
func (n Not) Match(v map[string]string) bool { return !n.P.Match(v) }

// String implements Pred.
func (n Not) String() string { return "NOT " + n.P.String() }

// eqConjuncts extracts column=constant conjuncts reachable from the root
// through AND nodes only; the planner uses them for index lookups.
func eqConjuncts(p Pred) []Cmp {
	switch q := p.(type) {
	case Cmp:
		if q.Op == Eq {
			return []Cmp{q}
		}
	case And:
		return append(eqConjuncts(q.L), eqConjuncts(q.R)...)
	}
	return nil
}

// rangeConjuncts extracts the Lt/Le/Gt/Ge/Prefix conjuncts reachable
// from the root through AND nodes only; the planner serves them from
// ordered indexes.
func rangeConjuncts(p Pred) []Cmp {
	switch q := p.(type) {
	case Cmp:
		switch q.Op {
		case Lt, Le, Gt, Ge, Prefix:
			return []Cmp{q}
		}
	case And:
		return append(rangeConjuncts(q.L), rangeConjuncts(q.R)...)
	}
	return nil
}

// cmpMatches reports whether a compare() result satisfies an ordering
// operator — the single definition Match and the ordered index share,
// so an index range can never disagree with a scan.
func cmpMatches(op Op, cmp int) bool {
	switch op {
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	}
	return false
}

// ParsePred parses a predicate expression:
//
//	expr   := term { OR term }
//	term   := factor { AND factor }
//	factor := NOT factor | '(' expr ')' | col op value | TRUE
//	op     := = | != | < | <= | > | >= | CONTAINS | PREFIX
//	value  := 'single-quoted' | bareword
//
// Keywords are case-insensitive. The empty string parses as True.
func ParsePred(s string) (Pred, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return True{}, nil
	}
	p := &parser{toks: toks}
	pred, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("table: trailing input at %q", p.toks[p.pos])
	}
	return pred, nil
}

func lex(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == '\'':
			j := i + 1
			for j < len(s) && s[j] != '\'' {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("table: unterminated string at %d", i)
			}
			toks = append(toks, "'"+s[i+1:j]) // marker prefix keeps quoting info
			i = j + 1
		case c == '!' || c == '<' || c == '>' || c == '=':
			j := i + 1
			if j < len(s) && s[j] == '=' {
				j++
			}
			op := s[i:j]
			if op == "!" {
				return nil, fmt.Errorf("table: stray '!' at %d", i)
			}
			toks = append(toks, op)
			i = j
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\n()!<>='", rune(s[j])) {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("table: unexpected character %q at %d", c, i)
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks, nil
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) parseExpr() (Pred, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "OR") {
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = Or{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseTerm() (Pred, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "AND") {
		p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = And{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseFactor() (Pred, error) {
	tok := p.peek()
	switch {
	case tok == "":
		return nil, fmt.Errorf("table: unexpected end of predicate")
	case strings.EqualFold(tok, "NOT"):
		p.next()
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Not{P: inner}, nil
	case strings.EqualFold(tok, "TRUE"):
		p.next()
		return True{}, nil
	case tok == "(":
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("table: missing ')'")
		}
		return inner, nil
	}
	// col op value
	col := p.next()
	if strings.HasPrefix(col, "'") {
		return nil, fmt.Errorf("table: column name cannot be quoted: %q", col[1:])
	}
	opTok := p.next()
	var op Op
	switch {
	case opTok == "=", opTok == "==":
		op = Eq
	case opTok == "!=":
		op = Ne
	case opTok == "<":
		op = Lt
	case opTok == "<=":
		op = Le
	case opTok == ">":
		op = Gt
	case opTok == ">=":
		op = Ge
	case strings.EqualFold(opTok, "CONTAINS"):
		op = Contains
	case strings.EqualFold(opTok, "PREFIX"):
		op = Prefix
	default:
		return nil, fmt.Errorf("table: bad operator %q", opTok)
	}
	val := p.next()
	if val == "" {
		return nil, fmt.Errorf("table: missing value after %q %s", col, op)
	}
	val = strings.TrimPrefix(val, "'")
	return Cmp{Col: col, Op: op, Val: val}, nil
}
