// Package table implements the W5 labeled tuple store — the replacement
// for the SQL interface that the paper says "can leak information
// implicitly and thus needs to be replaced under W5" (§3.5, citing the
// Asbestos Web server experience).
//
// Design principles:
//
//   - Every row carries a secrecy/integrity label pair, like a file.
//   - A query executes against exactly the rows whose labels can flow to
//     the querying credential; invisible rows contribute nothing to
//     results, counts, aggregates, or errors. A query over data you
//     cannot see behaves identically to a query over a store where that
//     data does not exist — that is the covert-channel-freedom property,
//     demonstrated by experiment E7.
//   - Uniqueness constraints are scoped to the visible partition
//     (polyinstantiation): a public process inserting key K learns
//     nothing about whether some secret process also inserted K. A
//     global uniqueness constraint is exactly the SQL covert channel.
//   - Every row scanned charges one query-cost unit against the
//     caller's quota, so query bombs are contained (§3.5).
//
// A Store in naive mode drops the first three properties while keeping
// the same API; it models the conventional SQL backend and exists only
// as the comparator for experiment E7 and the baseline platform.
package table

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"w5/internal/audit"
	"w5/internal/difc"
	"w5/internal/quota"
)

// Errors. ErrDenied is opaque by design; see kernel.ErrDenied.
var (
	ErrDenied     = errors.New("w5: table operation denied")
	ErrNoTable    = errors.New("w5: no such table")
	ErrBadSchema  = errors.New("w5: schema violation")
	ErrDuplicate  = errors.New("w5: unique constraint violated")
	ErrTableExist = errors.New("w5: table already exists")
)

// Cred is the security context of a table operation.
type Cred struct {
	Labels    difc.LabelPair
	Caps      difc.CapSet
	Principal string
}

// Row is one labeled tuple as returned by queries. Values is a copy;
// mutating it does not affect the store.
type Row struct {
	ID     uint64
	Values map[string]string
	Label  difc.LabelPair
}

// Schema describes a table.
type Schema struct {
	Name    string
	Columns []string
	// Unique, if non-empty, names a column whose values must be unique
	// — within the visible partition in labeled mode, globally in naive
	// mode (the covert channel).
	Unique string
	// Index names columns to maintain equality indexes on.
	Index []string
}

type tbl struct {
	schema  Schema
	cols    map[string]bool
	rows    map[uint64]*Row
	order   []uint64 // insertion order for deterministic scans
	nextID  uint64
	indexes map[string]map[string][]uint64 // col -> value -> row ids
}

// Store is a collection of labeled tables. Safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*tbl
	naive  bool
	log    *audit.Log
	quotas *quota.Manager
}

// Options configures a Store.
type Options struct {
	// Naive disables label filtering and scopes uniqueness globally;
	// it exists for the E7 comparator and the baseline platform only.
	Naive  bool
	Log    *audit.Log
	Quotas *quota.Manager
}

// New returns an empty store.
func New(opts Options) *Store {
	return &Store{tables: make(map[string]*tbl), naive: opts.Naive, log: opts.Log, quotas: opts.Quotas}
}

// Naive reports whether the store is the covert-channel-prone comparator.
func (s *Store) Naive() bool { return s.naive }

func (s *Store) auditf(kind audit.Kind, actor, subject, format string, args ...any) {
	if s.log != nil {
		s.log.Appendf(kind, actor, subject, format, args...)
	}
}

// chargeScan bills one query-cost unit per scanned row.
func (s *Store) chargeScan(cred Cred, rows int) error {
	if s.quotas == nil || rows == 0 {
		return nil
	}
	return s.quotas.Account(cred.Principal).Charge(quota.Query, uint64(rows))
}

// visible reports whether a row's label can flow to the credential.
func visible(r *Row, cred Cred, naive bool) bool {
	if naive {
		return true
	}
	return difc.SafeMessage(r.Label.Secrecy, difc.EmptyCaps, cred.Labels.Secrecy, cred.Caps)
}

// writable reports whether the credential can write a row at label l.
func writable(l difc.LabelPair, cred Cred) bool {
	return difc.SafeFlow(cred.Labels, cred.Caps, l, difc.EmptyCaps)
}

// Create adds a table. Schema operations are not label-checked: schemas
// are public metadata created by application install, not user data.
func (s *Store) Create(schema Schema) error {
	if schema.Name == "" || len(schema.Columns) == 0 {
		return ErrBadSchema
	}
	cols := make(map[string]bool, len(schema.Columns))
	for _, c := range schema.Columns {
		if c == "" || cols[c] {
			return ErrBadSchema
		}
		cols[c] = true
	}
	if schema.Unique != "" && !cols[schema.Unique] {
		return fmt.Errorf("%w: unique column %q not in schema", ErrBadSchema, schema.Unique)
	}
	for _, c := range schema.Index {
		if !cols[c] {
			return fmt.Errorf("%w: index column %q not in schema", ErrBadSchema, c)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[schema.Name]; ok {
		return ErrTableExist
	}
	t := &tbl{
		schema:  schema,
		cols:    cols,
		rows:    make(map[uint64]*Row),
		indexes: make(map[string]map[string][]uint64),
	}
	for _, c := range schema.Index {
		t.indexes[c] = make(map[string][]uint64)
	}
	s.tables[schema.Name] = t
	return nil
}

// Tables returns the table names in sorted order.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SchemaOf returns the schema for a table.
func (s *Store) SchemaOf(name string) (Schema, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return Schema{}, ErrNoTable
	}
	return t.schema, nil
}

// Insert adds a row labeled label. The credential must be able to write
// at that label (no write-down of its taint, no forging of integrity).
// Uniqueness is checked within the partition visible to cred — never
// against rows cred cannot see.
func (s *Store) Insert(cred Cred, table string, values map[string]string, label difc.LabelPair) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[table]
	if !ok {
		return 0, ErrNoTable
	}
	for c := range values {
		if !t.cols[c] {
			return 0, fmt.Errorf("%w: no column %q", ErrBadSchema, c)
		}
	}
	if !writable(label, cred) {
		s.auditf(audit.KindFlowDenied, cred.Principal, table, "insert at %s denied", label)
		return 0, ErrDenied
	}
	if t.schema.Unique != "" {
		key := values[t.schema.Unique]
		if s.uniqueConflict(t, cred, key) {
			return 0, ErrDuplicate
		}
	}
	t.nextID++
	id := t.nextID
	row := &Row{ID: id, Values: copyValues(values), Label: label}
	t.rows[id] = row
	t.order = append(t.order, id)
	for col, idx := range t.indexes {
		v := row.Values[col]
		idx[v] = append(idx[v], id)
	}
	return id, nil
}

// uniqueConflict reports whether key collides with an existing row in
// the unique column. Labeled mode checks only rows visible to cred; the
// check charges no query cost (it is bounded by the index-free scan of
// the unique column, billed to the writer as part of insert cost).
func (s *Store) uniqueConflict(t *tbl, cred Cred, key string) bool {
	for _, id := range t.order {
		r := t.rows[id]
		if r.Values[t.schema.Unique] != key {
			continue
		}
		if s.naive || visible(r, cred, false) {
			return true
		}
	}
	return false
}

// Select returns the rows matching pred that are visible to cred, in
// insertion order, together with the join of their labels — the label
// of the result set as a whole. Each row scanned (visible or not)
// charges one query-cost unit.
func (s *Store) Select(cred Cred, table string, pred Pred) ([]Row, difc.LabelPair, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok {
		return nil, difc.LabelPair{}, ErrNoTable
	}
	candidates, scanned := s.plan(t, pred)
	if err := s.chargeScan(cred, scanned); err != nil {
		s.auditf(audit.KindQuota, cred.Principal, table, "%v", err)
		return nil, difc.LabelPair{}, err
	}
	var out []Row
	joined := difc.LabelPair{}
	first := true
	for _, id := range candidates {
		r := t.rows[id]
		if r == nil || !visible(r, cred, s.naive) || !pred.Match(r.Values) {
			continue
		}
		out = append(out, Row{ID: r.ID, Values: copyValues(r.Values), Label: r.Label})
		if first {
			joined = r.Label
			first = false
		} else {
			joined = joined.Join(r.Label)
		}
	}
	return out, joined, nil
}

// plan chooses the candidate row set: an index lookup when an equality
// conjunct hits an indexed column, else a full scan. Returns candidates
// in insertion order plus the number of rows that will be touched (the
// billing basis).
func (s *Store) plan(t *tbl, pred Pred) (candidates []uint64, scanned int) {
	for _, c := range eqConjuncts(pred) {
		if idx, ok := t.indexes[c.Col]; ok {
			ids := idx[c.Val]
			sorted := append([]uint64(nil), ids...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			return sorted, len(sorted)
		}
	}
	return t.order, len(t.order)
}

// Count returns the number of visible rows matching pred. Like Select,
// it sees only the caller's partition — COUNT(*) cannot be used to
// sense other principals' activity.
func (s *Store) Count(cred Cred, table string, pred Pred) (int, error) {
	rows, _, err := s.Select(cred, table, pred)
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// Update rewrites the values of every visible row matching pred. All
// matched rows must be writable by cred or the whole update is denied
// (no partial vandalism); invisible rows are untouched and unreported.
func (s *Store) Update(cred Cred, table string, pred Pred, set map[string]string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[table]
	if !ok {
		return 0, ErrNoTable
	}
	for c := range set {
		if !t.cols[c] {
			return 0, fmt.Errorf("%w: no column %q", ErrBadSchema, c)
		}
	}
	candidates, scanned := s.plan(t, pred)
	if err := s.chargeScan(cred, scanned); err != nil {
		return 0, err
	}
	var matched []*Row
	for _, id := range candidates {
		r := t.rows[id]
		if r == nil || !visible(r, cred, s.naive) || !pred.Match(r.Values) {
			continue
		}
		if !s.naive && !writable(r.Label, cred) {
			s.auditf(audit.KindFlowDenied, cred.Principal, table, "update row %d denied", r.ID)
			return 0, ErrDenied
		}
		matched = append(matched, r)
	}
	for _, r := range matched {
		for col, idx := range t.indexes {
			if nv, ok := set[col]; ok && nv != r.Values[col] {
				idx[r.Values[col]] = removeID(idx[r.Values[col]], r.ID)
				idx[nv] = append(idx[nv], r.ID)
			}
		}
		for c, v := range set {
			r.Values[c] = v
		}
	}
	return len(matched), nil
}

// Delete removes every visible, writable row matching pred; like
// Update, one unwritable visible match denies the whole operation.
func (s *Store) Delete(cred Cred, table string, pred Pred) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[table]
	if !ok {
		return 0, ErrNoTable
	}
	candidates, scanned := s.plan(t, pred)
	if err := s.chargeScan(cred, scanned); err != nil {
		return 0, err
	}
	var matched []uint64
	for _, id := range candidates {
		r := t.rows[id]
		if r == nil || !visible(r, cred, s.naive) || !pred.Match(r.Values) {
			continue
		}
		if !s.naive && !writable(r.Label, cred) {
			s.auditf(audit.KindFlowDenied, cred.Principal, table, "delete row %d denied", r.ID)
			return 0, ErrDenied
		}
		matched = append(matched, id)
	}
	for _, id := range matched {
		r := t.rows[id]
		for col, idx := range t.indexes {
			idx[r.Values[col]] = removeID(idx[r.Values[col]], id)
		}
		delete(t.rows, id)
	}
	if len(matched) > 0 {
		kept := t.order[:0]
		dead := make(map[uint64]bool, len(matched))
		for _, id := range matched {
			dead[id] = true
		}
		for _, id := range t.order {
			if !dead[id] {
				kept = append(kept, id)
			}
		}
		t.order = kept
	}
	return len(matched), nil
}

func copyValues(v map[string]string) map[string]string {
	out := make(map[string]string, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

func removeID(ids []uint64, id uint64) []uint64 {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}
