// Package table implements the W5 labeled tuple store — the replacement
// for the SQL interface that the paper says "can leak information
// implicitly and thus needs to be replaced under W5" (§3.5, citing the
// Asbestos Web server experience).
//
// Design principles:
//
//   - Every row carries a secrecy/integrity label pair, like a file.
//   - A query executes against exactly the rows whose labels can flow to
//     the querying credential; invisible rows contribute nothing to
//     results, counts, aggregates, or errors. A query over data you
//     cannot see behaves identically to a query over a store where that
//     data does not exist — that is the covert-channel-freedom property,
//     demonstrated by experiment E7.
//   - Uniqueness constraints are scoped to the visible partition
//     (polyinstantiation): a public process inserting key K learns
//     nothing about whether some secret process also inserted K. A
//     global uniqueness constraint is exactly the SQL covert channel.
//   - Every row the query plan touches charges one query-cost unit
//     against the caller's quota, so query bombs are contained (§3.5)
//     and index savings show up in users' bills.
//
// The store serves production traffic concurrently: tables lock
// independently (the store-wide lock guards only the table map),
// secondary indexes keep their postings sorted at insert time, ordered
// indexes serve range and prefix conjuncts, uniqueness checks route
// through the unique column's index, and per-query label algebra is
// O(distinct labels) via interned labels with an epoch-keyed
// visibility cache. README.md in this directory is the design note:
// the locking protocol, the predicate grammar, and the argument for
// why none of the index paths reopens the SQL covert channel.
//
// A Store in naive mode drops the label-enforcement properties while
// keeping the same API; it models the conventional SQL backend and
// exists only as the comparator for experiment E7 and the baseline
// platform.
package table

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"w5/internal/audit"
	"w5/internal/difc"
	"w5/internal/quota"
)

// Errors. ErrDenied is opaque by design; see kernel.ErrDenied.
var (
	ErrDenied     = errors.New("w5: table operation denied")
	ErrNoTable    = errors.New("w5: no such table")
	ErrBadSchema  = errors.New("w5: schema violation")
	ErrDuplicate  = errors.New("w5: unique constraint violated")
	ErrTableExist = errors.New("w5: table already exists")
)

// Cred is the security context of a table operation.
type Cred struct {
	Labels    difc.LabelPair
	Caps      difc.CapSet
	Principal string
}

// Row is one labeled tuple as returned by queries. Values is a copy;
// mutating it does not affect the store.
type Row struct {
	ID     uint64
	Values map[string]string
	Label  difc.LabelPair
}

// Schema describes a table.
type Schema struct {
	Name    string
	Columns []string
	// Unique, if non-empty, names a column whose values must be unique
	// — within the visible partition in labeled mode, globally in naive
	// mode (the covert channel). A row that omits the column takes the
	// empty-string key, so two rows without a value collide like any
	// other duplicate (there is no NULL). The column is always
	// equality-indexed so the constraint check is O(rows with that
	// value), not O(table); the planner only serves queries (and
	// bills) from that index when the column is also listed in Index
	// or Ordered.
	Unique string
	// Index names columns to maintain equality indexes on.
	Index []string
	// Ordered names columns to maintain ordered indexes on: equality
	// conjuncts plan through them like Index columns, and range
	// conjuncts (<, <=, >, >=, PREFIX) plan through the sorted distinct
	// values in O(distinct values) instead of scanning the table.
	Ordered []string
}

// irow is a stored tuple. The label lives on the interned class, shared
// by every row carrying an equal label.
type irow struct {
	id     uint64
	values map[string]string
	class  *labelClass
}

// tbl is one table and everything queried or mutated through it. Each
// table has its own lock, so traffic on different tables never
// contends; see README.md for the protocol.
type tbl struct {
	mu      sync.RWMutex
	schema  Schema
	cols    map[string]bool
	rows    map[uint64]*irow
	order   []uint64 // insertion order for deterministic scans
	nextID  uint64
	indexes map[string]*colIndex

	// Label interning + visibility cache (labelcache.go). classes is
	// written only under mu held exclusively (Insert interns, Delete
	// retires); epochs and the per-class verdict rings carry their own
	// mutexes because Select updates them under mu held shared.
	classes map[uint64][]*labelClass
	epochs  credEpochs
}

// Store is a collection of labeled tables. Safe for concurrent use.
type Store struct {
	mu     sync.RWMutex // guards the tables map only; rows lock per table
	tables map[string]*tbl
	naive  bool
	log    *audit.Log
	quotas *quota.Manager
}

// Options configures a Store.
type Options struct {
	// Naive disables label filtering and scopes uniqueness globally;
	// it exists for the E7 comparator and the baseline platform only.
	Naive  bool
	Log    *audit.Log
	Quotas *quota.Manager
}

// New returns an empty store.
func New(opts Options) *Store {
	return &Store{tables: make(map[string]*tbl), naive: opts.Naive, log: opts.Log, quotas: opts.Quotas}
}

// Naive reports whether the store is the covert-channel-prone comparator.
func (s *Store) Naive() bool { return s.naive }

func (s *Store) auditf(kind audit.Kind, actor, subject, format string, args ...any) {
	if s.log != nil {
		s.log.Appendf(kind, actor, subject, format, args...)
	}
}

// chargeScan bills one query-cost unit per row the plan touches.
func (s *Store) chargeScan(cred Cred, rows int) error {
	if s.quotas == nil || rows == 0 {
		return nil
	}
	return s.quotas.Account(cred.Principal).Charge(quota.Query, uint64(rows))
}

// table resolves a table name under the store lock. The returned *tbl
// is immortal (tables are never dropped), so the store lock is released
// before the per-table lock is taken.
func (s *Store) table(name string) (*tbl, error) {
	s.mu.RLock()
	t, ok := s.tables[name]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNoTable
	}
	return t, nil
}

// writable reports whether the credential can write a row at label l.
func writable(l difc.LabelPair, cred Cred) bool {
	return difc.SafeFlow(cred.Labels, cred.Caps, l, difc.EmptyCaps)
}

// Create adds a table. Schema operations are not label-checked: schemas
// are public metadata created by application install, not user data.
func (s *Store) Create(schema Schema) error {
	if schema.Name == "" || len(schema.Columns) == 0 {
		return ErrBadSchema
	}
	cols := make(map[string]bool, len(schema.Columns))
	for _, c := range schema.Columns {
		if c == "" || cols[c] {
			return ErrBadSchema
		}
		cols[c] = true
	}
	if schema.Unique != "" && !cols[schema.Unique] {
		return fmt.Errorf("%w: unique column %q not in schema", ErrBadSchema, schema.Unique)
	}
	for _, c := range schema.Index {
		if !cols[c] {
			return fmt.Errorf("%w: index column %q not in schema", ErrBadSchema, c)
		}
	}
	for _, c := range schema.Ordered {
		if !cols[c] {
			return fmt.Errorf("%w: ordered index column %q not in schema", ErrBadSchema, c)
		}
	}
	t := &tbl{
		schema:  schema,
		cols:    cols,
		rows:    make(map[uint64]*irow),
		indexes: make(map[string]*colIndex),
	}
	for _, c := range schema.Ordered {
		t.indexes[c] = newColIndex(true, true)
	}
	for _, c := range schema.Index {
		if t.indexes[c] == nil {
			t.indexes[c] = newColIndex(false, true)
		}
	}
	// The unique column's automatic index serves only the conflict
	// probe, never query planning — an opt-in matter of billing
	// observables, not correctness (see colIndex.plannable).
	if u := schema.Unique; u != "" && t.indexes[u] == nil {
		t.indexes[u] = newColIndex(false, false)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[schema.Name]; ok {
		return ErrTableExist
	}
	s.tables[schema.Name] = t
	return nil
}

// Tables returns the table names in sorted order.
func (s *Store) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SchemaOf returns the schema for a table.
func (s *Store) SchemaOf(name string) (Schema, error) {
	t, err := s.table(name)
	if err != nil {
		return Schema{}, err
	}
	return t.schema, nil // immutable after Create; no table lock needed
}

// Insert adds a row labeled label. The credential must be able to write
// at that label (no write-down of its taint, no forging of integrity).
// Uniqueness is checked within the partition visible to cred — never
// against rows cred cannot see — through the unique column's index.
func (s *Store) Insert(cred Cred, table string, values map[string]string, label difc.LabelPair) (uint64, error) {
	t, err := s.table(table)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for c := range values {
		if !t.cols[c] {
			return 0, fmt.Errorf("%w: no column %q", ErrBadSchema, c)
		}
	}
	if !writable(label, cred) {
		s.auditf(audit.KindFlowDenied, cred.Principal, table, "insert at %s denied", label)
		return 0, ErrDenied
	}
	if t.schema.Unique != "" {
		vm := t.visMemo(cred, s.naive)
		if t.uniqueConflict(&vm, values[t.schema.Unique], 0) {
			return 0, ErrDuplicate
		}
	}
	t.nextID++
	id := t.nextID
	row := &irow{id: id, values: copyValues(values), class: t.intern(label)}
	t.rows[id] = row
	t.order = append(t.order, id)
	for col, ix := range t.indexes {
		ix.add(row.values[col], id)
	}
	return id, nil
}

// uniqueConflict reports whether key collides with an existing row in
// the unique column, consulting only the postings of the unique
// column's index (always present; see Create). Labeled mode counts
// only rows visible to cred; exclude names a row id to ignore (the row
// being updated). The check charges no query cost — its work is
// bounded by the rows already carrying the key, part of the write's
// own cost.
func (t *tbl) uniqueConflict(vm *visMemo, key string, exclude uint64) bool {
	for _, id := range t.indexes[t.schema.Unique].postings[key] {
		if id == exclude {
			continue
		}
		if vm.visible(t.rows[id].class) {
			return true
		}
	}
	return false
}

// Select returns the rows matching pred that are visible to cred, in
// insertion order, together with the join of their labels — the label
// of the result set as a whole. Each row the plan touches (visible or
// not) charges one query-cost unit.
func (s *Store) Select(cred Cred, table string, pred Pred) ([]Row, difc.LabelPair, error) {
	t, err := s.table(table)
	if err != nil {
		return nil, difc.LabelPair{}, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	candidates, scanned := t.plan(pred)
	if err := s.chargeScan(cred, scanned); err != nil {
		s.auditf(audit.KindQuota, cred.Principal, table, "%v", err)
		return nil, difc.LabelPair{}, err
	}
	vm := t.visMemo(cred, s.naive)
	var out []Row
	// Distinct classes are joined once, not per row; like visMemo, the
	// first class is tracked inline so single-class results (indexed
	// point queries) allocate nothing for the dedup.
	var firstJoined *labelClass
	var alsoJoined map[*labelClass]bool
	joined := difc.LabelPair{}
	for _, id := range candidates {
		r := t.rows[id]
		if r == nil || !vm.visible(r.class) || !pred.Match(r.values) {
			continue
		}
		out = append(out, Row{ID: r.id, Values: copyValues(r.values), Label: r.class.label})
		switch {
		case r.class == firstJoined || alsoJoined[r.class]:
			// already in the join
		case firstJoined == nil:
			firstJoined, joined = r.class, r.class.label
		default:
			if alsoJoined == nil {
				alsoJoined = make(map[*labelClass]bool, 4)
			}
			alsoJoined[r.class] = true
			joined = joined.Join(r.class.label)
		}
	}
	return out, joined, nil
}

// Count returns the number of visible rows matching pred. Like Select,
// it sees only the caller's partition — COUNT(*) cannot be used to
// sense other principals' activity.
func (s *Store) Count(cred Cred, table string, pred Pred) (int, error) {
	rows, _, err := s.Select(cred, table, pred)
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// Update rewrites the values of every visible row matching pred. All
// matched rows must be writable by cred or the whole update is denied
// (no partial vandalism); invisible rows are untouched and unreported.
// Setting the unique column is checked against the caller's visible
// partition exactly like Insert: a collision with another visible row
// — or an update that would converge two matched rows onto one value —
// denies the whole update with ErrDuplicate.
func (s *Store) Update(cred Cred, table string, pred Pred, set map[string]string) (int, error) {
	t, err := s.table(table)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for c := range set {
		if !t.cols[c] {
			return 0, fmt.Errorf("%w: no column %q", ErrBadSchema, c)
		}
	}
	candidates, scanned := t.plan(pred)
	if err := s.chargeScan(cred, scanned); err != nil {
		return 0, err
	}
	vm := t.visMemo(cred, s.naive)
	var matched []*irow
	for _, id := range candidates {
		r := t.rows[id]
		if r == nil || !vm.visible(r.class) || !pred.Match(r.values) {
			continue
		}
		if !s.naive && !writable(r.class.label, cred) {
			s.auditf(audit.KindFlowDenied, cred.Principal, table, "update row %d denied", r.id)
			return 0, ErrDenied
		}
		matched = append(matched, r)
	}
	if u := t.schema.Unique; u != "" && len(matched) > 0 {
		if nv, ok := set[u]; ok {
			if len(matched) > 1 {
				// Every matched row would end up carrying nv.
				return 0, ErrDuplicate
			}
			r := matched[0]
			if r.values[u] != nv && t.uniqueConflict(&vm, nv, r.id) {
				return 0, ErrDuplicate
			}
		}
	}
	for _, r := range matched {
		for col, ix := range t.indexes {
			if nv, ok := set[col]; ok && nv != r.values[col] {
				ix.remove(r.values[col], r.id)
				ix.add(nv, r.id)
			}
		}
		for c, v := range set {
			r.values[c] = v
		}
	}
	return len(matched), nil
}

// Delete removes every visible, writable row matching pred; like
// Update, one unwritable visible match denies the whole operation.
func (s *Store) Delete(cred Cred, table string, pred Pred) (int, error) {
	t, err := s.table(table)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	candidates, scanned := t.plan(pred)
	if err := s.chargeScan(cred, scanned); err != nil {
		return 0, err
	}
	vm := t.visMemo(cred, s.naive)
	var matched []*irow
	for _, id := range candidates {
		r := t.rows[id]
		if r == nil || !vm.visible(r.class) || !pred.Match(r.values) {
			continue
		}
		if !s.naive && !writable(r.class.label, cred) {
			s.auditf(audit.KindFlowDenied, cred.Principal, table, "delete row %d denied", r.id)
			return 0, ErrDenied
		}
		matched = append(matched, r)
	}
	// candidates may alias index postings; all mutation happens after
	// the iteration above completes.
	for _, r := range matched {
		for col, ix := range t.indexes {
			ix.remove(r.values[col], r.id)
		}
		delete(t.rows, r.id)
		t.release(r.class)
	}
	if len(matched) > 0 {
		dead := make(map[uint64]bool, len(matched))
		for _, r := range matched {
			dead[r.id] = true
		}
		kept := t.order[:0]
		for _, id := range t.order {
			if !dead[id] {
				kept = append(kept, id)
			}
		}
		t.order = kept
	}
	return len(matched), nil
}

func copyValues(v map[string]string) map[string]string {
	out := make(map[string]string, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

func removeID(ids []uint64, id uint64) []uint64 {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}
