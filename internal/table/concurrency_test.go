package table

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"w5/internal/difc"
	"w5/internal/quota"
)

// TestConcurrentTableStress drives the per-table locking protocol under
// the race detector: per-table writers and readers running fully in
// parallel across independent tables (the no-contention contract),
// readers and writers colliding on shared tables, and Create/Tables/
// SchemaOf churn on the store-wide map — all at once. Assertions are
// deliberately weak (no panics, no impossible results); the point is
// that -race audits every lock edge.
func TestConcurrentTableStress(t *testing.T) {
	s := New(Options{Quotas: quota.NewManager(quota.Limits{})})
	const (
		tables = 8
		opsPer = 400
	)
	creds := make([]Cred, tables)
	labels := make([]difc.LabelPair, tables)
	for i := 0; i < tables; i++ {
		tag := difc.Tag(i + 1)
		creds[i] = Cred{Caps: difc.CapsFor(tag), Principal: fmt.Sprintf("user:u%d", i)}
		labels[i] = difc.LabelPair{Secrecy: difc.NewLabel(tag)}
		if err := s.Create(Schema{
			Name:    fmt.Sprintf("t%d", i),
			Columns: []string{"owner", "n", "handle"},
			Index:   []string{"owner"},
			Ordered: []string{"n"},
			Unique:  "handle",
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	fail := make(chan error, tables*3+1)

	// One writer per table: insert / update / delete churn, including
	// unique-key traffic through the index-routed conflict check.
	for i := 0; i < tables; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			name := fmt.Sprintf("t%d", i)
			for op := 0; op < opsPer; op++ {
				n := fmt.Sprintf("%03d", rng.Intn(50))
				switch rng.Intn(4) {
				case 0, 1:
					_, err := s.Insert(creds[i], name, map[string]string{
						"owner": creds[i].Principal, "n": n,
						"handle": fmt.Sprintf("h%d-%d", i, op),
					}, labels[i])
					if err != nil {
						fail <- fmt.Errorf("insert: %w", err)
						return
					}
				case 2:
					if _, err := s.Update(creds[i], name,
						Cmp{Col: "n", Op: Eq, Val: n},
						map[string]string{"n": fmt.Sprintf("%03d", rng.Intn(50))}); err != nil {
						fail <- fmt.Errorf("update: %w", err)
						return
					}
				case 3:
					if _, err := s.Delete(creds[i], name,
						Cmp{Col: "n", Op: Lt, Val: "005"}); err != nil {
						fail <- fmt.Errorf("delete: %w", err)
						return
					}
				}
			}
		}(i)
	}
	// Two readers per table: one with the owner's credential, one
	// public — both exercise the epoch registry and the per-class
	// verdict rings concurrently with inserts interning new labels.
	for i := 0; i < tables; i++ {
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(i, r int) {
				defer wg.Done()
				cred := creds[i]
				if r == 1 {
					cred = Cred{Principal: "anon"}
				}
				rng := rand.New(rand.NewSource(int64(100 + i*2 + r)))
				name := fmt.Sprintf("t%d", i)
				for op := 0; op < opsPer; op++ {
					var pred Pred
					switch rng.Intn(3) {
					case 0:
						pred = Cmp{Col: "owner", Op: Eq, Val: creds[i].Principal}
					case 1:
						pred = Cmp{Col: "n", Op: Ge, Val: "025"}
					default:
						pred = True{}
					}
					rows, _, err := s.Select(cred, name, pred)
					if err != nil {
						fail <- fmt.Errorf("select: %w", err)
						return
					}
					if r == 1 && len(rows) != 0 {
						fail <- fmt.Errorf("public reader saw %d secret rows", len(rows))
						return
					}
				}
			}(i, r)
		}
	}
	// Store-map churn: Create against the same and fresh names, plus
	// Tables/SchemaOf, racing every per-table operation above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for op := 0; op < opsPer; op++ {
			err := s.Create(Schema{Name: fmt.Sprintf("churn%d", op%17), Columns: []string{"v"}})
			if err != nil && !errors.Is(err, ErrTableExist) {
				fail <- fmt.Errorf("create churn: %w", err)
				return
			}
			s.Tables()
			if _, err := s.SchemaOf("t0"); err != nil {
				fail <- fmt.Errorf("schemaof: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(fail)
	if err := <-fail; err != nil {
		t.Fatal(err)
	}
	// Post-churn sanity: every owner still sees only their partition.
	for i := 0; i < tables; i++ {
		rows, _, err := s.Select(creds[i], fmt.Sprintf("t%d", i), True{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.Values["owner"] != creds[i].Principal {
				t.Fatalf("cross-partition row in t%d: %+v", i, r)
			}
		}
	}
}
