package table

// Label interning and the visibility-verdict cache.
//
// Row labels in a real table are heavily repeated: every row a user
// writes under their boilerplate policy carries the same {s_u} pair.
// Recomputing difc.SafeMessage per row per query is therefore almost
// entirely redundant work — a 10k-row scan over 100 users' rows asks
// the same 100 questions 100 times each. This file makes the label
// algebra cost of a query O(distinct labels), not O(rows):
//
//   - every row label is interned per table into a *labelClass; rows
//     whose labels are equal share one class (pointer identity);
//   - each class caches recent visibility verdicts keyed by a
//     *credential epoch* — a number that identifies one exact
//     (Labels, Caps) credential state. A cached verdict is a pure
//     function of (class label, epoch), so it can never go stale: a
//     credential with different labels or capabilities is a different
//     state, resolves to a different epoch, and every verdict cached
//     under the old one is unreachable from it. A revoked capability
//     therefore cannot keep a row visible through the cache — the
//     invariant the design note (README.md) pins.
//
// Locking: the class bucket map is only written by Insert and Delete,
// which hold the table lock exclusively. Classes are refcounted by the
// rows pointing at them and retired when the last such row is deleted;
// a reader under the shared lock can only reach a class through a live
// row, and retirement cannot run concurrently with shared holders, so
// readers need no extra synchronization to follow r.class. The epoch
// registry and each class's verdict ring have their own small mutexes
// because Select mutates them under the table *read* lock.

import (
	"sync"

	"w5/internal/difc"
)

// visCacheSize bounds the per-class verdict ring. Requests interleave
// a handful of distinct credentials per table in steady state (the
// row owner, the app, the public viewer); a small ring keeps the
// common case hitting while bounding memory at O(classes).
const visCacheSize = 4

// labelClass is one interned row label and its verdict cache.
type labelClass struct {
	label difc.LabelPair
	hash  uint64 // bucket key, kept for retirement
	refs  int    // rows pointing here; guarded by the exclusive table lock

	mu   sync.Mutex
	vis  [visCacheSize]visEntry
	next int // ring cursor
}

// visEntry caches one visibility judgment. epoch 0 is never minted,
// so the zero value is an empty slot.
type visEntry struct {
	epoch uint64
	ok    bool
}

// visible reports whether rows of this class can flow to the
// credential identified by epoch, computing the Flume judgment at most
// once per (class, epoch) while the entry stays in the ring.
func (c *labelClass) visible(cred Cred, epoch uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.vis {
		if c.vis[i].epoch == epoch {
			return c.vis[i].ok
		}
	}
	ok := difc.SafeMessage(c.label.Secrecy, difc.EmptyCaps, cred.Labels.Secrecy, cred.Caps)
	c.vis[c.next] = visEntry{epoch: epoch, ok: ok}
	c.next = (c.next + 1) % visCacheSize
	return ok
}

// credEntry records one credential *state* — an exact (Labels, Caps)
// pair — and the epoch minted for it. Identity is the state, not the
// principal: visibility is a pure function of the state, so every
// credential presenting the same labels and capabilities shares one
// epoch (all public queriers share the empty state's), and concurrent
// processes of one app at different taint levels each keep their own
// stable epoch instead of thrashing a per-principal slot.
type credEntry struct {
	labels difc.LabelPair
	caps   difc.CapSet
	epoch  uint64
}

// credEpochs is the per-table credential-state registry,
// hash-bucketed like the label interner.
type credEpochs struct {
	mu   sync.Mutex
	next uint64
	m    map[uint64][]*credEntry
	size int
}

// maxCredEntries bounds the registry. When full it evicts an
// arbitrary entry rather than refusing (the PR 2 intern-cache
// policy): a credential-state flood cannot grow the table, and a
// re-presented state simply mints a fresh epoch — always safe, since
// epochs are never reused and stale ones just miss every cache.
const maxCredEntries = 1024

// resolve returns the epoch for cred's state, minting a new one on
// first sight. Epochs are never reused, so a credential that loses a
// capability resolves to a different state and therefore a different
// epoch — every verdict cached under the old state is unreachable
// from it by construction.
func (ce *credEpochs) resolve(cred Cred) uint64 {
	h := cred.Labels.Secrecy.Hash64() ^
		cred.Labels.Integrity.Hash64()*0x9e3779b97f4a7c15 ^
		cred.Caps.Plus().Hash64()*0xc2b2ae3d27d4eb4f ^
		cred.Caps.Minus().Hash64()*0x165667b19e3779f9
	ce.mu.Lock()
	defer ce.mu.Unlock()
	for _, e := range ce.m[h] {
		if e.labels.Equal(cred.Labels) && e.caps.Equal(cred.Caps) {
			return e.epoch
		}
	}
	if ce.m == nil {
		ce.m = make(map[uint64][]*credEntry)
	}
	if ce.size >= maxCredEntries {
		for bh, bucket := range ce.m {
			if len(bucket) > 1 {
				ce.m[bh] = bucket[:len(bucket)-1]
			} else {
				delete(ce.m, bh)
			}
			ce.size--
			break
		}
	}
	ce.next++
	ce.m[h] = append(ce.m[h], &credEntry{labels: cred.Labels, caps: cred.Caps, epoch: ce.next})
	ce.size++
	return ce.next
}

// visMemo scopes visibility to one query: it consults the shared
// per-class verdict ring (and its mutex) at most once per distinct
// class, so a 10k-row scan does ~100 synchronized lookups instead of
// 10k — concurrent queries over the same hot table do not bounce the
// class mutexes between cores. The first distinct class is memoized
// inline, so the common single-class candidate set (an indexed point
// query) allocates nothing.
type visMemo struct {
	naive   bool
	cred    Cred
	epoch   uint64
	first   *labelClass
	firstOK bool
	m       map[*labelClass]bool
}

// visMemo builds the query-scoped memo, resolving the caller's
// credential epoch once (naive mode never consults visibility).
func (t *tbl) visMemo(cred Cred, naive bool) visMemo {
	vm := visMemo{naive: naive, cred: cred}
	if !naive {
		vm.epoch = t.epochs.resolve(cred)
	}
	return vm
}

// visible reports whether rows of class c can flow to the query's
// credential.
func (v *visMemo) visible(c *labelClass) bool {
	switch {
	case v.naive:
		return true
	case c == v.first:
		return v.firstOK
	case v.first == nil:
		v.first, v.firstOK = c, c.visible(v.cred, v.epoch)
		return v.firstOK
	}
	ok, hit := v.m[c]
	if !hit {
		ok = c.visible(v.cred, v.epoch)
		if v.m == nil {
			v.m = make(map[*labelClass]bool, 4)
		}
		v.m[c] = ok
	}
	return ok
}

// intern returns the table's class for label — counting one row
// reference — creating it on first sight. Must be called with the
// table lock held exclusively (Insert).
func (t *tbl) intern(label difc.LabelPair) *labelClass {
	h := label.Secrecy.Hash64() ^ label.Integrity.Hash64()*0x9e3779b97f4a7c15
	for _, c := range t.classes[h] {
		if c.label.Equal(label) {
			c.refs++
			return c
		}
	}
	c := &labelClass{label: label, hash: h, refs: 1}
	if t.classes == nil {
		t.classes = make(map[uint64][]*labelClass)
	}
	t.classes[h] = append(t.classes[h], c)
	return c
}

// release drops one row reference, retiring the class when its last
// row goes — so a table's interner is bounded by the distinct labels
// of its *live* rows, not of every label ever inserted. Must be called
// with the table lock held exclusively (Delete).
func (t *tbl) release(c *labelClass) {
	c.refs--
	if c.refs > 0 {
		return
	}
	bucket := t.classes[c.hash]
	for i, x := range bucket {
		if x == c {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(t.classes, c.hash)
	} else {
		t.classes[c.hash] = bucket
	}
}
