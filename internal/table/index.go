package table

// Secondary indexes and the query planner.
//
// A colIndex maps column values to postings — row-id lists kept sorted
// ascending at insert time. Row ids are minted monotonically, so
// ascending id order IS insertion order, and a postings list (or a
// merge of several) can be returned as Select candidates directly,
// with no per-query copy+sort.
//
// Ordered indexes additionally maintain the distinct values of the
// column as a lexicographically sorted key slice, which the planner
// uses to serve Lt/Le/Gt/Ge/Prefix range conjuncts in O(distinct
// values) instead of O(rows). Prefix runs are contiguous in the key
// slice and found by binary search; the numeric-aware order of the
// other comparisons (see compare in pred.go) is not a single total
// order over mixed values, so those filter the key slice linearly with
// exactly the comparison Match uses — the index can never disagree
// with a scan.
//
// Index candidate sets are supersets of the matching rows (Select
// re-checks Match per row), so planning is a pure optimization with
// one observable: the number of candidate rows is the query's billed
// cost. See README.md for why that stays covert-channel-free.

import (
	"sort"
	"strings"
)

// colIndex is one column's secondary index.
type colIndex struct {
	postings map[string][]uint64 // value -> ascending row ids
	keys     []string            // distinct values, sorted; only when ordered
	ordered  bool
	// plannable marks indexes the query planner may serve candidates
	// (and therefore bills) from: the columns the schema author
	// declared in Index/Ordered. The automatic index on Schema.Unique
	// is NOT plannable unless also declared — it exists to accelerate
	// the uniqueConflict probe, which is visibility-filtered and
	// charges nothing. Letting it silently drive billing would turn
	// the bill for a point query on the polyinstantiated column into a
	// per-key row count that includes invisible rows — a sharper
	// observable than the per-table scan bill, on exactly the column
	// E7's covert channel rendezvouses on. See README.md.
	plannable bool
}

func newColIndex(ordered, plannable bool) *colIndex {
	return &colIndex{postings: make(map[string][]uint64), ordered: ordered, plannable: plannable}
}

// add indexes id under val, keeping postings sorted. The insert path
// always appends (fresh ids are the largest yet); only Update moving a
// row to a new value splices into the middle.
func (ix *colIndex) add(val string, id uint64) {
	ids := ix.postings[val]
	if len(ids) == 0 && ix.ordered {
		i := sort.SearchStrings(ix.keys, val)
		if i == len(ix.keys) || ix.keys[i] != val {
			ix.keys = append(ix.keys, "")
			copy(ix.keys[i+1:], ix.keys[i:])
			ix.keys[i] = val
		}
	}
	if n := len(ids); n == 0 || ids[n-1] < id {
		ix.postings[val] = append(ids, id)
		return
	}
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	ix.postings[val] = ids
}

// remove drops id from val's postings, retiring the key when its last
// row goes.
func (ix *colIndex) remove(val string, id uint64) {
	ids := removeID(ix.postings[val], id)
	if len(ids) > 0 {
		ix.postings[val] = ids
		return
	}
	delete(ix.postings, val)
	if ix.ordered {
		if i := sort.SearchStrings(ix.keys, val); i < len(ix.keys) && ix.keys[i] == val {
			ix.keys = append(ix.keys[:i], ix.keys[i+1:]...)
		}
	}
}

// rangeKeys returns the distinct indexed values satisfying the range
// conjunct c, and the total number of rows they post. Prefix is a
// contiguous run of the sorted key slice (binary search, no
// allocation); the numeric-aware comparisons filter linearly.
func (ix *colIndex) rangeKeys(c Cmp) (keys []string, rows int) {
	switch c.Op {
	case Prefix:
		lo := sort.SearchStrings(ix.keys, c.Val)
		hi := lo + sort.Search(len(ix.keys)-lo, func(i int) bool {
			return !strings.HasPrefix(ix.keys[lo+i], c.Val)
		})
		keys = ix.keys[lo:hi]
	case Lt, Le, Gt, Ge:
		for _, k := range ix.keys {
			if cmpMatches(c.Op, compare(k, c.Val)) {
				keys = append(keys, k)
			}
		}
	}
	for _, k := range keys {
		rows += len(ix.postings[k])
	}
	return keys, rows
}

// gather materializes the candidate ids for a set of keys in ascending
// (= insertion) order. A single key's postings are returned directly —
// callers treat candidates as read-only.
func (ix *colIndex) gather(keys []string, rows int) []uint64 {
	if len(keys) == 1 {
		return ix.postings[keys[0]]
	}
	out := make([]uint64, 0, rows)
	for _, k := range keys {
		out = append(out, ix.postings[k]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// plan chooses the candidate row set for pred: the smallest candidate
// set offered by any equality conjunct over an indexed column or any
// range conjunct over an ordered column, else a full scan. Candidates
// are in insertion order; scanned is the number of rows the plan
// touches — the billing basis. Callers must treat candidates as
// read-only (it may alias index postings or t.order).
func (t *tbl) plan(pred Pred) (candidates []uint64, scanned int) {
	bestEq := -1
	var bestEqIDs []uint64
	for _, c := range eqConjuncts(pred) {
		if ix, ok := t.indexes[c.Col]; ok && ix.plannable {
			ids := ix.postings[c.Val]
			if bestEq < 0 || len(ids) < bestEq {
				bestEq, bestEqIDs = len(ids), ids
			}
		}
	}
	bestRange := -1
	var bestRangeKeys []string
	var bestRangeIx *colIndex
	for _, c := range rangeConjuncts(pred) {
		if ix, ok := t.indexes[c.Col]; ok && ix.ordered {
			keys, rows := ix.rangeKeys(c)
			if bestRange < 0 || rows < bestRange {
				bestRange, bestRangeKeys, bestRangeIx = rows, keys, ix
			}
		}
	}
	switch {
	case bestEq >= 0 && (bestRange < 0 || bestEq <= bestRange):
		return bestEqIDs, bestEq
	case bestRange >= 0:
		return bestRangeIx.gather(bestRangeKeys, bestRange), bestRange
	}
	return t.order, len(t.order)
}
