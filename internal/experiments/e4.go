package experiments

import (
	"fmt"
	"strings"

	"w5/internal/apps"
	"w5/internal/core"
	"w5/internal/declass"
	"w5/internal/wvm"
)

// E4TCBSize quantifies §3.1's auditability claim: "because
// declassifiers are typically much smaller than entire applications,
// they are easier to audit." Both sides of the comparison are W5
// Assembly modules — the unit a user actually audits before pinning a
// hash — so the metric is honest: module bytes and instruction count.
func E4TCBSize() Table {
	type entry struct {
		name string
		kind string
		src  string
		sys  map[string]uint16
	}
	entries := []entry{
		{"declass/friend-list", "declassifier", declass.FriendListWVMSource, declass.WVMSyscallNames},
		{"declass/owner-only", "declassifier", ownerOnlyWVMSource, declass.WVMSyscallNames},
		{"app/greeter", "application", greeterWVMSource, core.AppSyscallNames},
		{"app/guestbook", "application", guestbookWVMSource, core.AppSyscallNames},
		{"app/gallery", "application", galleryWVMSource, core.AppSyscallNames},
	}
	t := Table{
		ID:     "E4",
		Title:  "Audit burden: declassifiers vs applications",
		Claim:  "declassifiers are much smaller than entire applications, hence easier to audit (§3.1)",
		Header: []string{"unit", "kind", "bytes", "instructions", "source lines"},
	}
	for _, e := range entries {
		prog, err := wvm.Assemble(e.src, e.sys)
		if err != nil {
			panic(fmt.Sprintf("E4 module %s: %v", e.name, err))
		}
		t.Rows = append(t.Rows, []string{
			e.name, e.kind, itoa(len(prog.Marshal())),
			itoa(countInstructions(prog)), itoa(countSourceLines(e.src)),
		})
	}
	// The shipped production applications (Go implementations) vs the
	// shipped policy library, measured by lines a human must read.
	var appLines, appCount int
	for file, lines := range apps.SourceLines() {
		t.Rows = append(t.Rows, []string{
			"apps/" + file, "application", "-", "-", itoa(lines),
		})
		appLines += lines
		appCount++
	}
	perPolicy := float64(declass.PolicyLibraryLines()) / declass.StandardPolicyCount
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("declass stdlib (%d policies, mean)", declass.StandardPolicyCount),
		"declassifier", "-", "-", f0(perPolicy),
	})
	ratio := float64(appLines) / float64(appCount) / perPolicy
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean application source = %.0f lines; mean declassifier = %.0f lines; ratio %.1fx",
			float64(appLines)/float64(appCount), perPolicy, ratio),
		"the audit burden for a user: read the declassifier listing, pin its hash; applications never need auditing because they are confined")
	return t
}

// countInstructions counts executable instructions by disassembling.
func countInstructions(p *wvm.Program) int {
	n := 0
	for _, line := range strings.Split(wvm.Disassemble(p), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasSuffix(trimmed, ":") || strings.HasPrefix(trimmed, ".data") {
			continue
		}
		n++
	}
	return n
}

func countSourceLines(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, ";") {
			n++
		}
	}
	return n
}

// ownerOnlyWVMSource is the boilerplate policy as a bytecode module:
// allow iff viewer == owner (non-empty).
const ownerOnlyWVMSource = `
; owner-only declassifier: allow iff viewer == owner
        push 0
        sys copy_viewer
        store 0
        load 0
        push 0
        le
        jnz deny
        push 512
        sys copy_owner
        store 1
        load 0
        load 1
        ne
        jnz deny
        push 0
        store 2
loop:   load 2
        load 0
        ge
        jnz allow
        load 2
        mload
        load 2
        push 512
        add
        mload
        ne
        jnz deny
        load 2
        push 1
        add
        store 2
        jmp loop
allow:  push 1
        halt
deny:   push 0
        halt
`

// greeterWVMSource is the minimal application: greet the viewer.
const greeterWVMSource = `
.data greet "hello "
        push @greet
        push #greet
        sys emit
        pop
        push 1024
        sys copy_viewer
        store 0
        push 1024
        load 0
        sys emit
        pop
        halt
`

// guestbookWVMSource is a small but real application: append a message
// to the owner's guestbook file and render the whole book.
const guestbookWVMSource = `
.data path "guestbook"
.data pfx "/home/"
.data sl "/private/guestbook"
.data hdr "<html><body><h1>guestbook</h1><pre>"
.data ftr "</pre></body></html>"
.data msgkey "msg"
.data nl "\n"
; build file path "/home/<owner>/private/guestbook" at 2048
        push 0
        store 10            ; cursor
        push @pfx
        push #pfx
        call append
        push 1024
        sys copy_owner
        store 0
        push 1024
        load 0
        call append
        push @sl
        push #sl
        call append
; read existing book into 4096 (cap 8192), length g1
        push 2048
        load 10
        push 4096
        push 8192
        sys read_file
        store 1
        load 1
        push 0
        ge
        jnz haveold
        push 0
        store 1
haveold:
; append new message (param "msg") at 4096+g1
        push @msgkey
        push #msgkey
        load 1
        push 4096
        add
        push 512
        sys copy_param
        store 2
        load 2
        push 0
        ge
        jnz gotmsg
        push 0
        store 2
gotmsg:
; append newline after message
        load 1
        load 2
        add
        push 4096
        add
        push 10
        mstore
; total book length g3 = g1 + g2 + 1
        load 1
        load 2
        add
        push 1
        add
        store 3
; write back
        push 2048
        load 10
        push 4096
        load 3
        sys write_private
        pop
; render
        push @hdr
        push #hdr
        sys emit
        pop
        push 4096
        load 3
        sys emit
        pop
        push @ftr
        push #ftr
        sys emit
        pop
        halt
; append(addr, len): copies [addr,addr+len) to 2048+g10, advances g10
append: store 20            ; len
        store 21            ; src
        push 0
        store 22            ; i
aploop: load 22
        load 20
        ge
        jnz apdone
        load 22
        push 2048
        add
        load 10
        add
        load 22
        load 21
        add
        mload
        mstore
        load 22
        push 1
        add
        store 22
        jmp aploop
apdone: load 10
        load 20
        add
        store 10
        ret
`

// galleryWVMSource renders an HTML gallery of the owner's photo names
// passed as a parameter list (the directory listing arrives as a
// request parameter prepared by the front-end in this demo ABI).
const galleryWVMSource = `
.data hdr "<html><body><h1>gallery of "
.data mid "</h1><ul>"
.data li1 "<li>"
.data li2 "</li>"
.data ftr "</ul></body></html>"
.data key "names"
        push @hdr
        push #hdr
        sys emit
        pop
        push 1024
        sys copy_owner
        store 0
        push 1024
        load 0
        sys emit
        pop
        push @mid
        push #mid
        sys emit
        pop
; names param: comma-separated at 2048, len g1
        push @key
        push #key
        push 2048
        push 4096
        sys copy_param
        store 1
        load 1
        push 0
        le
        jnz done
        push 0
        store 2             ; start
        push 0
        store 3             ; cursor
scan:   load 3
        load 1
        ge
        jnz lastone
        load 3
        push 2048
        add
        mload
        push 44             ; ','
        eq
        jnz emitone
        load 3
        push 1
        add
        store 3
        jmp scan
emitone:
        call item
        load 3
        push 1
        add
        dup
        store 2
        store 3
        jmp scan
lastone:
        call item
        jmp done
; item: emits <li> names[g2:g3] </li>
item:   push @li1
        push #li1
        sys emit
        pop
        load 2
        push 2048
        add
        load 3
        load 2
        sub
        sys emit
        pop
        push @li2
        push #li2
        sys emit
        pop
        ret
done:   push @ftr
        push #ftr
        sys emit
        pop
        halt
`
