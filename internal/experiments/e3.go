package experiments

import (
	"fmt"
	"math/rand"

	"w5/internal/core"
	"w5/internal/difc"
)

// E3LabelOps microbenchmarks the DIFC primitive operations as a
// function of label size — the per-flow cost of enforcement.
func E3LabelOps() Table {
	t := Table{
		ID:     "E3a",
		Title:  "DIFC primitive cost vs label size",
		Claim:  "tracking data as it moves is feasible with DIFC (§2, §3.1)",
		Header: []string{"tags/label", "union ns", "subset ns", "flow-check ns", "export-check ns"},
	}
	r := rand.New(rand.NewSource(42))
	for _, k := range []int{1, 4, 16, 64} {
		mk := func() difc.Label {
			ts := make([]difc.Tag, k)
			for i := range ts {
				ts[i] = difc.Tag(r.Intn(4*k) + 1)
			}
			return difc.NewLabel(ts...)
		}
		a, b := mk(), mk()
		caps := difc.CapsFor(a.Tags()[:min(k, 4)]...)
		iters := 200_000
		union := timeOp(iters, func() { _ = a.Union(b) })
		subset := timeOp(iters, func() { _ = a.SubsetOf(b) })
		flow := timeOp(iters, func() {
			_ = difc.SafeFlow(difc.LabelPair{Secrecy: a}, caps, difc.LabelPair{Secrecy: b}, difc.EmptyCaps)
		})
		export := timeOp(iters, func() { _ = difc.CanExport(a, caps) })
		t.Rows = append(t.Rows, []string{itoa(k), f2(union), f2(subset), f2(flow), f2(export)})
	}
	t.Notes = append(t.Notes, "labels in real workloads have 1-4 tags (owner + write tag); 64 is adversarially large")
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// e3App reads one private file and returns it — the canonical W5
// request (read user data, render, export).
type e3App struct{}

func (e3App) Name() string { return "e3app" }
func (e3App) Handle(env *core.AppEnv, req core.AppRequest) (core.AppResponse, error) {
	data, err := env.ReadFile("/home/" + req.Owner + "/private/doc")
	if err != nil {
		return core.AppResponse{Status: 404}, nil
	}
	return core.AppResponse{Body: data}, nil
}

// E3RequestPath measures the end-to-end request path (spawn, read,
// taint, export-check) with enforcement on vs off — the total price of
// the reference monitor.
func E3RequestPath(requests int) Table {
	t := Table{
		ID:     "E3b",
		Title:  "End-to-end request cost: enforcement on vs off",
		Claim:  "the factorized security mechanism is affordable on the request path (§1, §2)",
		Header: []string{"kernel", "requests", "µs/request", "requests/s"},
	}
	var baseNs float64
	for _, enforce := range []bool{false, true} {
		p := core.NewProvider(core.Config{Name: "e3", Enforce: enforce})
		p.InstallApp(e3App{})
		p.CreateUser("bob", "pw")
		u, _ := p.GetUser("bob")
		label := difc.LabelPair{
			Secrecy:   difc.NewLabel(u.SecrecyTag),
			Integrity: difc.NewLabel(u.WriteTag),
		}
		p.FS.Write(p.UserCred("bob"), "/home/bob/private/doc", make([]byte, 1024), label)
		p.EnableApp("bob", "e3app")

		ns := timeOp(requests, func() {
			inv, err := p.Invoke("e3app", core.AppRequest{Viewer: "bob", Owner: "bob"})
			if err != nil {
				panic(err)
			}
			if _, err := p.ExportCheck(inv, "bob"); err != nil {
				panic(err)
			}
		})
		mode := "enforcing"
		if !enforce {
			mode = "no checks (baseline)"
			baseNs = ns
		}
		t.Rows = append(t.Rows, []string{mode, itoa(requests), f2(ns / 1e3), f0(1e9 / ns)})
		if enforce && baseNs > 0 {
			t.Notes = append(t.Notes,
				fmt.Sprintf("enforcement overhead: %.1f%%", (ns-baseNs)/baseNs*100))
		}
	}
	return t
}
