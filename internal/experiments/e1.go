package experiments

import (
	"fmt"

	"w5/internal/baseline"
	"w5/internal/core"
	"w5/internal/difc"
	"w5/internal/workload"
)

// E1AdoptionCost reproduces Figure 1 vs Figure 2 as a measurement: the
// user-side cost of adopting each successive application.
//
// Baseline (Figure 1): every new application is a new silo — sign up
// again, re-upload every datum, re-enter the friend graph.
// W5 (Figure 2): data is uploaded once to the platform; adopting an
// application is "checking a box" (§1: "a prospective user can sign up
// simply by checking a box").
func E1AdoptionCost(users, itemsPerUser, apps int) Table {
	names := workload.Users(users)
	graph := workload.FriendGraph(users, 3, 0.1, 1)

	// ---- Baseline: one silo per app.
	var sites []*baseline.Site
	blOps, blBytes := 0, 0
	for a := 0; a < apps; a++ {
		site := baseline.NewSite(fmt.Sprintf("site%d", a))
		for ui, u := range names {
			site.Signup(u, "pw")
			for _, it := range workload.Items(u, itemsPerUser, 64, 4096, int64(ui)) {
				site.Upload(u, "/"+it.Name, it.Data, baseline.Private)
			}
			for _, f := range graph[ui] {
				site.AddFriend(u, names[f])
			}
		}
		sites = append(sites, site)
		blOps += site.Ops() - sumOps(sites[:a])
		_ = blOps
	}
	blOps, blBytes = sumOps(sites), sumBytes(sites)

	// ---- W5: one platform, data uploaded once, then one enable per app.
	p := core.NewProvider(core.Config{Name: "e1", Enforce: true})
	w5Ops, w5Bytes := 0, 0
	for ui, u := range names {
		p.CreateUser(u, "pw")
		w5Ops++
		usr, _ := p.GetUser(u)
		label := difc.LabelPair{
			Secrecy:   difc.NewLabel(usr.SecrecyTag),
			Integrity: difc.NewLabel(usr.WriteTag),
		}
		cred := p.UserCred(u)
		for _, it := range workload.Items(u, itemsPerUser, 64, 4096, int64(ui)) {
			p.FS.Write(cred, "/home/"+u+"/private/"+it.Name, it.Data, label)
			w5Ops++
			w5Bytes += len(it.Data)
		}
		var friendLines string
		for _, f := range graph[ui] {
			friendLines += names[f] + "\n"
		}
		p.FS.Write(cred, "/home/"+u+"/social/friends", []byte(friendLines), label)
		w5Ops++
		w5Bytes += len(friendLines)
	}
	// Adoption: apps-1 FURTHER apps cost one op each (the first app's
	// cost was the initial upload, counted above, same as baseline's
	// first silo).
	adoptionOps := 0
	for a := 0; a < apps; a++ {
		appName := fmt.Sprintf("app%d", a)
		for _, u := range names {
			p.EnableApp(u, appName)
			adoptionOps++
		}
	}
	w5Ops += adoptionOps

	copies := baseline.DataCopies(sites, names[0]) / itemsPerUser

	return Table{
		ID:     "E1",
		Title:  "Cost of adopting applications (Figure 1 vs Figure 2, functional)",
		Claim:  "decoupling applications from data removes per-app re-entry; adoption is one checkbox (§1, §2)",
		Header: []string{"platform", "users", "items/user", "apps", "user ops", "bytes uploaded", "copies of each datum"},
		Rows: [][]string{
			{"today's Web (baseline)", itoa(users), itoa(itemsPerUser), itoa(apps),
				itoa(blOps), itoa(blBytes), itoa(copies)},
			{"W5", itoa(users), itoa(itemsPerUser), itoa(apps),
				itoa(w5Ops), itoa(w5Bytes), "1"},
		},
		Notes: []string{
			fmt.Sprintf("W5 marginal cost per additional app per user: 1 op, 0 bytes (total %d enable ops)", adoptionOps),
			fmt.Sprintf("baseline marginal cost per additional app per user: %d ops, %d bytes",
				1+itemsPerUser+len(graph[0]), sumBytes(sites)/apps/users),
		},
	}
}

func sumOps(sites []*baseline.Site) int {
	n := 0
	for _, s := range sites {
		n += s.Ops()
	}
	return n
}

func sumBytes(sites []*baseline.Site) int {
	n := 0
	for _, s := range sites {
		n += s.Bytes()
	}
	return n
}
