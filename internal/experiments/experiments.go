// Package experiments implements the W5 evaluation suite defined in
// DESIGN.md §3. The paper itself (HotNets 2007) has no evaluation
// section, so each experiment here validates one of its qualitative
// claims with a measurement; EXPERIMENTS.md records the outcomes.
//
// Every experiment is a pure function returning a Table so that
// cmd/w5bench can print the suite and bench_test.go can wrap the same
// code paths in testing.B benchmarks. All workloads come from
// internal/workload with fixed seeds: runs are reproducible.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's result, printable in the style of a paper
// table.
type Table struct {
	ID     string // e.g. "E2"
	Title  string
	Claim  string // the paper claim under test, with section
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table for a terminal.
func (t Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// timeOp runs fn `iters` times and returns ns/op.
func timeOp(iters int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func itoa(v int) string   { return fmt.Sprintf("%d", v) }
func u64(v uint64) string { return fmt.Sprintf("%d", v) }
func yesno(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// All runs the full suite with default parameters, in order.
func All() []Table {
	return []Table{
		E1AdoptionCost(20, 10, 5),
		E2SecurityMatrix(),
		E3LabelOps(),
		E3RequestPath(300),
		E4TCBSize(),
		E5CodeRank([]int{100, 1000, 5000}),
		E6Federation(50),
		E7CovertChannel(200),
		E8ResourceIsolation(),
		E9GatewayThroughput([]int{1, 4, 16}, 200),
		E10JSFilter([]int{4, 64, 512}),
	}
}
