package experiments

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"w5/internal/core"
	"w5/internal/difc"
	"w5/internal/quota"
	"w5/internal/table"
	"w5/internal/wvm"
)

// rogue programs for E8.
const (
	spinnerSource = "loop: jmp loop\n" // burns CPU forever
)

// E8ResourceIsolation pits rogue applications against an honest one,
// with and without quotas (§3.5: rogues must not "degrade the
// performance of the W5 cluster" or "lock the database").
func E8ResourceIsolation() Table {
	t := Table{
		ID:     "E8",
		Title:  "Rogue applications: contained resource consumption",
		Claim:  "processes must be limited in disk, network, memory and CPU; malicious queries must not lock the database (§3.5)",
		Header: []string{"rogue", "quotas", "rogue stopped", "rogue consumed", "honest p50 µs", "honest max µs"},
	}

	for _, quotasOn := range []bool{true, false} {
		for _, rogue := range []string{"cpu-spinner", "alloc-bomb", "query-bomb"} {
			stopped, consumed, p50, max := runE8(rogue, quotasOn)
			t.Rows = append(t.Rows, []string{
				rogue, yesno(quotasOn), yesno(stopped), consumed, f2(p50), f2(max),
			})
		}
	}
	t.Notes = append(t.Notes,
		"without quotas the rogue is capped at a 50M-instruction harness limit so the experiment terminates; on a real cluster it would not",
		"honest latency measured concurrently with the rogue on GOMAXPROCS CPUs")
	return t
}

func runE8(rogue string, quotasOn bool) (stopped bool, consumed string, p50, maxv float64) {
	cfg := core.Config{Name: "e8", Enforce: true, DisableQuotas: !quotasOn}
	p := core.NewProvider(cfg)
	p.InstallApp(e3App{})
	p.CreateUser("bob", "pw")
	u, _ := p.GetUser("bob")
	label := difc.LabelPair{
		Secrecy:   difc.NewLabel(u.SecrecyTag),
		Integrity: difc.NewLabel(u.WriteTag),
	}
	p.FS.Write(p.UserCred("bob"), "/home/bob/private/doc", make([]byte, 512), label)
	p.EnableApp("bob", "e3app")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		switch rogue {
		case "cpu-spinner":
			prog, _ := wvm.Assemble(spinnerSource, nil)
			var acct *quota.Account
			if p.Quotas != nil {
				acct = p.Quotas.Account("app:rogue")
			}
			vm := wvm.New(prog, wvm.Config{Gas: 50_000_000, Account: acct})
			_, err := vm.Run()
			stopped = errors.Is(err, wvm.ErrGas) && quotasOn
			consumed = fmt.Sprintf("%d instrs", vm.Steps())
		case "alloc-bomb":
			prog, _ := wvm.Assemble("halt", nil)
			var acct *quota.Account
			if p.Quotas != nil {
				acct = p.Quotas.Account("app:rogue")
			}
			vm := wvm.New(prog, wvm.Config{MemSize: 512 << 20, Account: acct})
			_, err := vm.Run()
			stopped = errors.Is(err, wvm.ErrMemQuota)
			if stopped {
				consumed = "0 B (refused)"
			} else {
				consumed = "512 MiB"
			}
		case "query-bomb":
			// Hammer the shared table store with full scans.
			p.Tables.Create(table.Schema{Name: "e8load", Columns: []string{"v"}})
			loader := table.Cred{Principal: "loader"}
			for i := 0; i < 2000; i++ {
				p.Tables.Insert(loader, "e8load", map[string]string{"v": "x"}, difc.LabelPair{})
			}
			rogueCred := table.Cred{Principal: "app:rogue"}
			scans := 0
			for i := 0; i < 5000; i++ {
				if _, _, err := p.Tables.Select(rogueCred, "e8load", table.True{}); err != nil {
					stopped = true
					break
				}
				scans++
			}
			consumed = fmt.Sprintf("%d full scans", scans)
		}
	}()

	// Honest traffic concurrently.
	var lat []float64
	for i := 0; i < 200; i++ {
		start := time.Now()
		inv, err := p.Invoke("e3app", core.AppRequest{Viewer: "bob", Owner: "bob"})
		if err == nil {
			p.ExportCheck(inv, "bob")
		}
		lat = append(lat, float64(time.Since(start).Microseconds()))
	}
	wg.Wait()
	sortF(lat)
	return stopped, consumed, lat[len(lat)/2], lat[len(lat)-1]
}

func sortF(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
