package experiments

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"time"

	"w5/internal/core"
	"w5/internal/difc"
	"w5/internal/gateway"
)

// E9GatewayThroughput measures the HTTP perimeter under concurrency —
// §2's requirement that W5 serve today's Web clients — against a plain
// net/http handler serving identical bytes with no platform behind it.
func E9GatewayThroughput(concurrencies []int, requestsPerClient int) Table {
	t := Table{
		ID:     "E9",
		Title:  "Gateway throughput: W5 perimeter vs plain HTTP",
		Claim:  "DNS/HTTP front-ends let users interact with W5 using today's Web clients (§2)",
		Header: []string{"server", "clients", "requests", "req/s", "mean µs/req"},
	}

	// ---- W5 provider behind its gateway.
	p := core.NewProvider(core.Config{Name: "e9", Enforce: true})
	p.InstallApp(e3App{})
	p.CreateUser("bob", "pw")
	u, _ := p.GetUser("bob")
	label := difc.LabelPair{
		Secrecy:   difc.NewLabel(u.SecrecyTag),
		Integrity: difc.NewLabel(u.WriteTag),
	}
	p.FS.Write(p.UserCred("bob"), "/home/bob/private/doc", make([]byte, 1024), label)
	p.EnableApp("bob", "e3app")
	gw := gateway.New(p, gateway.Options{FilterHTML: true})
	w5srv := httptest.NewServer(gw)
	defer w5srv.Close()

	// Authenticate one session, reuse its cookie across clients.
	resp, err := http.PostForm(w5srv.URL+"/login", url.Values{"user": {"bob"}, "password": {"pw"}})
	if err != nil {
		panic(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var cookie *http.Cookie
	for _, c := range resp.Cookies() {
		if c.Name == gateway.SessionCookie {
			cookie = c
		}
	}
	if cookie == nil {
		panic("e9: no session cookie")
	}

	// ---- Plain HTTP comparator serving the same 1 KiB.
	payload := make([]byte, 1024)
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer plain.Close()

	run := func(name, base, path string, withCookie bool, clients int) {
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				client := &http.Client{}
				for i := 0; i < requestsPerClient; i++ {
					req, _ := http.NewRequest("GET", base+path, nil)
					if withCookie {
						req.AddCookie(cookie)
					}
					resp, err := client.Do(req)
					if err != nil {
						panic(err)
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		total := clients * requestsPerClient
		t.Rows = append(t.Rows, []string{
			name, itoa(clients), itoa(total),
			f0(float64(total) / elapsed.Seconds()),
			f2(float64(elapsed.Microseconds()) / float64(total)),
		})
	}

	for _, c := range concurrencies {
		run("plain net/http", plain.URL, "/", false, c)
		run("W5 gateway", w5srv.URL, "/app/e3app/?owner=bob", true, c)
	}
	t.Notes = append(t.Notes,
		"each W5 request spawns a confined process, reads a private labeled file, passes the export check, and is HTML-filtered",
		fmt.Sprintf("%d requests per client per row", requestsPerClient))
	return t
}
