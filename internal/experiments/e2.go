package experiments

import (
	"w5/internal/attack"
)

// E2SecurityMatrix runs the full adversary suite against both
// platforms — §2's claim that the platform protects users' data "from
// other users, from external attack, and from applications", versus
// the baseline where "such calamities will not happen is something
// that a user must trust".
func E2SecurityMatrix() Table {
	t := Table{
		ID:     "E2",
		Title:  "Exfiltration & vandalism vectors: blocked?",
		Claim:  "untrusted code can read private data but neither export it nor enlist another application to do so (§3.1); write protection stops vandalism",
		Header: []string{"attack vector", "W5 blocked", "baseline blocked", "W5 refusal"},
	}
	blockedW5, blockedBL := 0, 0
	for _, atk := range attack.Suite() {
		w5s, err := attack.NewW5Surface()
		if err != nil {
			panic(err)
		}
		outW5 := atk.Run(w5s)
		bls, err := attack.NewBaselineSurface()
		if err != nil {
			panic(err)
		}
		outBL := atk.Run(bls)
		if outW5.Blocked() {
			blockedW5++
		}
		if outBL.Blocked() {
			blockedBL++
		}
		refusal := "(silent containment)"
		if outW5.Err != nil {
			refusal = outW5.Err.Error()
		}
		t.Rows = append(t.Rows, []string{
			atk.Name, yesno(outW5.Blocked()), yesno(outBL.Blocked()), refusal,
		})
	}
	t.Notes = append(t.Notes,
		"W5 blocked "+itoa(blockedW5)+"/"+itoa(len(attack.Suite()))+
			"; baseline blocked "+itoa(blockedBL)+"/"+itoa(len(attack.Suite())),
		"every attack runs with the read grant the victim gave the app: W5's protection is confinement, not read denial")
	return t
}
