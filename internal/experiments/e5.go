package experiments

import (
	"fmt"
	"time"

	"w5/internal/rank"
	"w5/internal/registry"
	"w5/internal/workload"
)

// E5CodeRank evaluates the §3.2 trust inference: on a planted-partition
// dependency graph (a reputable core that everything imports, plus
// noise), CodeRank should put the planted core at the top. Metric:
// precision@k where k = size of the planted set, plus convergence
// iterations and wall time as the graph grows.
func E5CodeRank(sizes []int) Table {
	t := Table{
		ID:     "E5",
		Title:  "CodeRank: identifying trusted modules from dependency structure",
		Claim:  "dependency-graph PageRank surfaces widely-trusted modules and developers (§3.2)",
		Header: []string{"modules", "planted core", "precision@k", "iterations", "ms"},
	}
	for _, n := range sizes {
		k := n / 10
		edgePairs := workload.PlantedGraph(n, k, 3, 99)
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("mod%05d", i)
		}
		edges := make([]registry.Edge, len(edgePairs))
		for i, e := range edgePairs {
			kind := "import"
			if i%5 == 4 {
				kind = "embed"
			}
			edges[i] = registry.Edge{From: nodes[e[0]], To: nodes[e[1]], Kind: kind}
		}
		start := time.Now()
		res := rank.Compute(nodes, edges, rank.Options{})
		elapsed := time.Since(start)

		ranked := rank.Order(res.Scores)
		hits := 0
		for i := 0; i < k && i < len(ranked); i++ {
			var idx int
			fmt.Sscanf(ranked[i].Module, "mod%d", &idx)
			if idx < k {
				hits++
			}
		}
		precision := float64(hits) / float64(k)
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(k), f2(precision), itoa(res.Iterations),
			f2(float64(elapsed.Microseconds()) / 1000),
		})
	}
	t.Notes = append(t.Notes, "precision@k = fraction of the top-k ranked modules that belong to the planted reputable core")
	return t
}
