package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"w5/internal/difc"
	"w5/internal/table"
)

// E7CovertChannel measures the §3.5 database covert channel: a victim
// process inserts a well-known unique key iff its secret bit is 1; a
// public attacker probes by inserting the same key and watching for
// the duplicate error. On a conventional (naive) store the channel
// transmits perfectly; on the W5 labeled store polyinstantiation makes
// the probe uninformative.
func E7CovertChannel(trials int) Table {
	t := Table{
		ID:     "E7",
		Title:  "Unique-constraint covert channel: attacker guess accuracy",
		Claim:  "the SQL interface can leak information implicitly and needs to be replaced under W5 (§3.5)",
		Header: []string{"store", "trials", "guess accuracy", "est. bits/query"},
	}
	for _, naive := range []bool{true, false} {
		r := rand.New(rand.NewSource(123))
		correct := 0
		for i := 0; i < trials; i++ {
			bit := r.Intn(2) == 1
			s := table.New(table.Options{Naive: naive})
			s.Create(table.Schema{Name: "rv", Columns: []string{"k"}, Unique: "k"})
			victim := table.Cred{
				Caps:      difc.CapsFor(difc.Tag(1)),
				Principal: "victim",
			}
			if bit {
				if _, err := s.Insert(victim, "rv", map[string]string{"k": "x"},
					difc.LabelPair{Secrecy: difc.NewLabel(difc.Tag(1))}); err != nil {
					panic(err)
				}
			}
			// The attacker probes from a public context.
			_, err := s.Insert(table.Cred{Principal: "attacker"}, "rv",
				map[string]string{"k": "x"}, difc.LabelPair{})
			guess := errors.Is(err, table.ErrDuplicate)
			if guess == bit {
				correct++
			}
		}
		acc := float64(correct) / float64(trials)
		// Channel capacity estimate: accuracy 0.5 = 0 bits, 1.0 = 1 bit
		// (binary symmetric channel, crude linearization).
		bits := 2*acc - 1
		if bits < 0 {
			bits = 0
		}
		name := "W5 labeled store"
		if naive {
			name = "naive SQL-style store"
		}
		t.Rows = append(t.Rows, []string{name, itoa(trials), f2(acc), f2(bits)})
	}
	t.Notes = append(t.Notes,
		"labeled-store accuracy ~0.5 = coin flipping: the attacker's probe always succeeds (polyinstantiation), revealing nothing",
		fmt.Sprintf("trials per store: %d, secret bits drawn uniformly", trials))
	return t
}
