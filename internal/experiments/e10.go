package experiments

import (
	"fmt"
	"strings"

	"w5/internal/htmlsafe"
	"w5/internal/workload"
)

// E10JSFilter measures the §3.5 perimeter JavaScript filter: block rate
// (it must be total) and throughput across page sizes.
func E10JSFilter(sizesKB []int) Table {
	t := Table{
		ID:     "E10",
		Title:  "Perimeter JavaScript filtering",
		Claim:  "W5 could disable JavaScript entirely by filtering it out at the security perimeter (§3.5)",
		Header: []string{"page KiB", "scripts", "handlers", "all blocked", "MB/s"},
	}
	for _, kb := range sizesKB {
		scripts := kb/2 + 1
		handlers := kb/2 + 1
		page := workload.HTMLPage(kb<<10, scripts, handlers, int64(kb))
		var rep htmlsafe.Report
		var out string
		iters := 50
		ns := timeOp(iters, func() {
			out, rep = htmlsafe.Sanitize(page, htmlsafe.Policy{})
		})
		blocked := rep.ScriptsRemoved == scripts && rep.AttrsRemoved == handlers &&
			!strings.Contains(out, "<script") && !strings.Contains(out, "onclick")
		mbs := float64(len(page)) / (1 << 20) / (ns / 1e9)
		t.Rows = append(t.Rows, []string{
			itoa(kb), itoa(scripts), itoa(handlers), yesno(blocked), f0(mbs),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("corpus: synthetic pages with embedded <script> elements and on* handlers (%d sizes)", len(sizesKB)),
		"single linear pass; see internal/htmlsafe tests for the obfuscation corpus (case, whitespace, javascript: URLs)")
	return t
}
