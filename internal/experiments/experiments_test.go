package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// The experiment suite is itself load-bearing (EXPERIMENTS.md is
// generated from it), so each experiment gets a correctness test with
// small parameters.

func TestE1W5CheaperThanBaseline(t *testing.T) {
	tb := E1AdoptionCost(5, 4, 3)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	blOps, w5Ops := atoiT(t, tb.Rows[0][4]), atoiT(t, tb.Rows[1][4])
	blBytes, w5Bytes := atoiT(t, tb.Rows[0][5]), atoiT(t, tb.Rows[1][5])
	if w5Ops >= blOps {
		t.Errorf("W5 ops %d not cheaper than baseline %d", w5Ops, blOps)
	}
	if w5Bytes >= blBytes {
		t.Errorf("W5 bytes %d not cheaper than baseline %d", w5Bytes, blBytes)
	}
	if tb.Rows[1][6] != "1" {
		t.Errorf("W5 data copies = %s, want 1", tb.Rows[1][6])
	}
}

func TestE2AllBlockedOnW5NoneOnBaseline(t *testing.T) {
	tb := E2SecurityMatrix()
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[1] != "yes" {
			t.Errorf("W5 did not block %s", row[0])
		}
		if row[2] != "no" {
			t.Errorf("baseline blocked %s (comparator broken)", row[0])
		}
	}
}

func TestE3TablesShape(t *testing.T) {
	ops := E3LabelOps()
	if len(ops.Rows) != 4 {
		t.Fatalf("E3a rows = %d", len(ops.Rows))
	}
	req := E3RequestPath(50)
	if len(req.Rows) != 2 {
		t.Fatalf("E3b rows = %d", len(req.Rows))
	}
	if len(req.Notes) == 0 || !strings.Contains(req.Notes[0], "overhead") {
		t.Error("E3b missing overhead note")
	}
}

func TestE4DeclassifiersSmaller(t *testing.T) {
	tb := E4TCBSize()
	var ratioNote string
	for _, n := range tb.Notes {
		if strings.Contains(n, "ratio") {
			ratioNote = n
		}
	}
	if ratioNote == "" {
		t.Fatal("no ratio note")
	}
	// mean application lines must exceed mean declassifier lines
	// (the §3.1 claim); extract the ratio "...ratio X.Yx".
	i := strings.Index(ratioNote, "ratio ")
	var ratio float64
	if _, err := sscan(ratioNote[i+6:], &ratio); err != nil {
		t.Fatalf("cannot parse ratio from %q", ratioNote)
	}
	if ratio <= 1.5 {
		t.Errorf("application/declassifier ratio %.1f too small for the claim", ratio)
	}
}

func TestE5HighPrecision(t *testing.T) {
	tb := E5CodeRank([]int{200})
	var prec float64
	if _, err := sscan(tb.Rows[0][2], &prec); err != nil {
		t.Fatal(err)
	}
	if prec < 0.9 {
		t.Errorf("precision@k = %v, want >= 0.9", prec)
	}
}

func TestE6SyncCounts(t *testing.T) {
	tb := E6Federation(8)
	if got := tb.Rows[0][1]; got != "8" {
		t.Errorf("initial sync shipped %s files, want 8", got)
	}
	if got := tb.Rows[1][1]; got != "0" {
		t.Errorf("re-sync shipped %s files, want 0", got)
	}
	if got := tb.Rows[2][1]; got != "1" {
		t.Errorf("update sync shipped %s files, want 1", got)
	}
}

func TestE7ChannelClosedOnW5(t *testing.T) {
	tb := E7CovertChannel(100)
	var naiveAcc, w5Acc float64
	sscan(tb.Rows[0][2], &naiveAcc)
	sscan(tb.Rows[1][2], &w5Acc)
	if naiveAcc != 1.0 {
		t.Errorf("naive channel accuracy %v, want 1.0", naiveAcc)
	}
	if w5Acc > 0.7 {
		t.Errorf("labeled store channel accuracy %v — channel not closed", w5Acc)
	}
	if tb.Rows[1][3] != "0.00" {
		t.Errorf("labeled store bits/query = %s, want 0.00", tb.Rows[1][3])
	}
}

func TestE8RoguesStoppedWithQuotas(t *testing.T) {
	tb := E8ResourceIsolation()
	for _, row := range tb.Rows {
		rogue, quotas, stopped := row[0], row[1], row[2]
		if quotas == "yes" && rogue != "query-bomb" && stopped != "yes" {
			t.Errorf("%s not stopped under quotas", rogue)
		}
		if quotas == "yes" && rogue == "query-bomb" && stopped != "yes" {
			t.Errorf("query bomb not stopped under quotas")
		}
	}
}

func TestE10AllBlocked(t *testing.T) {
	tb := E10JSFilter([]int{4, 16})
	for _, row := range tb.Rows {
		if row[3] != "yes" {
			t.Errorf("page %s KiB not fully filtered", row[0])
		}
	}
}

func TestRenderContainsEverything(t *testing.T) {
	tb := Table{
		ID: "EX", Title: "title", Claim: "claim",
		Header: []string{"a", "bee"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"note text"},
	}
	s := tb.Render()
	for _, want := range []string{"EX", "title", "claim", "bee", "note text"} {
		if !strings.Contains(s, want) {
			t.Errorf("Render missing %q:\n%s", want, s)
		}
	}
}

func atoiT(t *testing.T, s string) int {
	t.Helper()
	var v int
	if _, err := sscan(s, &v); err != nil {
		t.Fatalf("atoi(%q): %v", s, err)
	}
	return v
}

func sscan(s string, v any) (int, error) {
	return fmt.Sscan(s, v)
}
