package experiments

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"w5/internal/core"
	"w5/internal/difc"
	"w5/internal/federation"
	"w5/internal/workload"
)

// E6Federation measures §3.3's import/export-declassifier peering: how
// fast one user's data propagates between providers, and that a second
// sync is an incremental no-op.
func E6Federation(files int) Table {
	A := core.NewProvider(core.Config{Name: "provA", Enforce: true})
	B := core.NewProvider(core.Config{Name: "provB", Enforce: true})
	A.CreateUser("bob", "pw")
	B.CreateUser("bob", "pw")
	federation.AuthorizePeer(A, "bob", "provB")

	mux := http.NewServeMux()
	federation.MountExport(A, mux, map[string]string{"provB": "s"})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	u, _ := A.GetUser("bob")
	label := difc.LabelPair{
		Secrecy:   difc.NewLabel(u.SecrecyTag),
		Integrity: difc.NewLabel(u.WriteTag),
	}
	cred := A.UserCred("bob")
	totalBytes := 0
	for i, it := range workload.Items("bob", files, 256, 8192, 7) {
		A.FS.Write(cred, fmt.Sprintf("/home/bob/private/f%04d", i), it.Data, label)
		totalBytes += len(it.Data)
	}

	link := &federation.Link{Local: B, PeerName: "provA", BaseURL: srv.URL,
		Secret: "s", User: "bob"}

	start := time.Now()
	n1, err := link.SyncOnce()
	if err != nil {
		panic(err)
	}
	firstSync := time.Since(start)

	start = time.Now()
	n2, _ := link.SyncOnce()
	secondSync := time.Since(start)

	// One-file update propagation latency.
	A.FS.Write(cred, "/home/bob/private/f0000", []byte("updated"), label)
	start = time.Now()
	n3, _ := link.SyncOnce()
	updateSync := time.Since(start)

	return Table{
		ID:     "E6",
		Title:  "Cross-provider synchronization via import/export declassifiers",
		Claim:  "whenever the user updates data on one platform, changes propagate to the other (§3.3)",
		Header: []string{"phase", "files shipped", "ms", "MB/s"},
		Rows: [][]string{
			{"initial sync", itoa(n1), f2(ms(firstSync)), f2(mbps(totalBytes, firstSync))},
			{"re-sync (no changes)", itoa(n2), f2(ms(secondSync)), "-"},
			{"single-update sync", itoa(n3), f2(ms(updateSync)), "-"},
		},
		Notes: []string{
			fmt.Sprintf("payload: %d files, %d bytes total, over real HTTP (loopback)", files, totalBytes),
			"private files crossed only because bob authorized the peer declassifier; see federation tests for the unauthorized case",
		},
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func mbps(bytes int, d time.Duration) float64 {
	s := d.Seconds()
	if s == 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / s
}
