package registry_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"w5/internal/core"
	"w5/internal/rank"
	"w5/internal/registry"
	"w5/internal/wvm"
)

// TestSnapshotStress hammers the registry with concurrent publish,
// fork, pin, endorse, and embed mutations while readers spin on View()
// and on a shared rank.Index. Every reader must observe a coherent
// pre- or post-mutation catalogue — never a torn one — and sequence
// numbers must be monotonic per reader. Run under -race (the internal
// CI job does).
func TestSnapshotStress(t *testing.T) {
	prog, err := wvm.Assemble("start:\n  push 0\n  halt\n", core.AppSyscallNames)
	if err != nil {
		t.Fatal(err)
	}
	src := "start:\n  push 0\n  halt\n"
	r := registry.New(nil)
	// Seed one module so forks/pins have something to land on.
	if _, err := r.Put(registry.Upload{
		Module: "seed", Version: "1.0", Developer: "dev0",
		Kind: registry.KindApp, Program: prog, Source: src,
		SysNames: core.AppSyscallNames, Summary: "seed module",
	}); err != nil {
		t.Fatal(err)
	}
	idx := rank.NewIndex(rank.Options{})

	const writers, readers, rounds = 4, 4, 200
	var stop atomic.Bool
	var writersWg, readersWg sync.WaitGroup

	for w := 0; w < writers; w++ {
		w := w
		writersWg.Add(1)
		go func() {
			defer writersWg.Done()
			for i := 0; i < rounds; i++ {
				mod := fmt.Sprintf("mod-%d", i%7)
				switch i % 5 {
				case 0:
					_, _ = r.Put(registry.Upload{
						Module: mod, Version: fmt.Sprintf("1.%d.%d", w, i),
						Developer: fmt.Sprintf("dev%d", w), Kind: registry.KindApp,
						Program: prog, Source: src, SysNames: core.AppSyscallNames,
						Deps: []string{"seed"}, Summary: "stress module",
					})
				case 1:
					_, _ = r.Fork(fmt.Sprintf("dev%d", w), "seed", "", fmt.Sprintf("fork-%d-%d", w, i%3), "1.0")
				case 2:
					_ = r.Pin("seed", "")
				case 3:
					_ = r.Endorse(fmt.Sprintf("editor%d", w), mod)
				case 4:
					r.RecordEmbed(mod, "seed")
				}
			}
		}()
	}

	for g := 0; g < readers; g++ {
		readersWg.Add(1)
		go func() {
			defer readersWg.Done()
			var lastSeq uint64
			for !stop.Load() {
				v := r.View()
				if v.Seq() < lastSeq {
					t.Errorf("sequence went backwards: %d after %d", v.Seq(), lastSeq)
					return
				}
				lastSeq = v.Seq()
				names := v.Modules()
				// Every listed module resolves, and its latest version
				// belongs to it — a torn snapshot would mix these up.
				for _, n := range names {
					ver, err := v.Get(n, "")
					if err != nil {
						t.Errorf("seq %d: listed module %s does not resolve: %v", v.Seq(), n, err)
						return
					}
					if ver.Module != n {
						t.Errorf("seq %d: module %s resolved to version of %s", v.Seq(), n, ver.Module)
						return
					}
					if got, err := v.GetByHash(ver.Hash); err != nil || got == nil {
						t.Errorf("seq %d: hash of %s not indexed: %v", v.Seq(), n, err)
						return
					}
				}
				if res := v.Search(""); len(res) != len(names) {
					t.Errorf("seq %d: empty search returned %d of %d modules", v.Seq(), len(res), len(names))
					return
				}
				// Dependency edges never reference modules outside the
				// same snapshot.
				inSnap := make(map[string]bool, len(names))
				for _, n := range names {
					inSnap[n] = true
				}
				for _, e := range v.Edges() {
					if !inSnap[e.From] || !inSnap[e.To] {
						t.Errorf("seq %d: edge %s→%s references module outside snapshot", v.Seq(), e.From, e.To)
						return
					}
				}
				// The rank view derives from one coherent snapshot: its
				// ordering agrees with its scores.
				rv := idx.View(r)
				if len(rv.Ordered) != len(rv.Scores) {
					t.Errorf("rank view: %d ordered vs %d scores", len(rv.Ordered), len(rv.Scores))
					return
				}
				for i := 1; i < len(rv.Ordered); i++ {
					if rv.Ordered[i-1].Score < rv.Ordered[i].Score {
						t.Errorf("rank view not sorted at %d", i)
						return
					}
				}
			}
		}()
	}

	// Readers spin until every writer has finished, so the corpus is
	// guaranteed to overlap mutations with reads.
	writersWg.Wait()
	stop.Store(true)
	readersWg.Wait()
}
