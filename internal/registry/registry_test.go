package registry

import (
	"errors"
	"testing"
	"time"

	"w5/internal/audit"
	"w5/internal/wvm"
)

const tinySource = "push 1\nhalt\n"

func tinyProgram(t *testing.T) *wvm.Program {
	t.Helper()
	p, err := wvm.Assemble(tinySource, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func upload(t *testing.T, r *Registry, module, version, dev string, open bool) *Version {
	t.Helper()
	u := Upload{
		Module: module, Version: version, Developer: dev,
		Kind: KindApp, Program: tinyProgram(t), Summary: module + " summary",
	}
	if open {
		u.Source = tinySource
	}
	v, err := r.Put(u)
	if err != nil {
		t.Fatalf("Put(%s@%s): %v", module, version, err)
	}
	return v
}

func TestPutAndGet(t *testing.T) {
	log := audit.New()
	r := New(log)
	v := upload(t, r, "photoshare", "1.0", "devA", true)
	if v.Hash == "" || !v.OpenSource {
		t.Fatalf("version = %+v", v)
	}
	got, err := r.Get("photoshare", "1.0")
	if err != nil || got.Hash != v.Hash {
		t.Fatalf("Get: %v", err)
	}
	if _, err := r.Get("photoshare", "9.9"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing version: %v", err)
	}
	if _, err := r.Get("nope", ""); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing module: %v", err)
	}
	if log.CountKind(audit.KindUpload) != 1 {
		t.Error("upload not audited")
	}
	// Program round-trips.
	prog, err := got.Program()
	if err != nil || prog.Hash() != v.Hash {
		t.Errorf("Program(): %v", err)
	}
}

func TestLatestVersionSelection(t *testing.T) {
	r := New(nil)
	upload(t, r, "m", "1.0", "dev", false)
	upload(t, r, "m", "2.0", "dev", false)
	upload(t, r, "m", "1.5", "dev", false) // upload order defines "latest"
	got, err := r.Get("m", "")
	if err != nil || got.Version != "1.5" {
		t.Fatalf("latest = %v, %v; want 1.5 (last uploaded)", got.Version, err)
	}
	vs, err := r.Versions("m")
	if err != nil || len(vs) != 3 || vs[0] != "1.0" || vs[2] != "1.5" {
		t.Errorf("Versions = %v, %v", vs, err)
	}
}

func TestPutValidation(t *testing.T) {
	r := New(nil)
	prog := tinyProgram(t)
	cases := []struct {
		name string
		u    Upload
	}{
		{"no module", Upload{Version: "1", Developer: "d", Program: prog}},
		{"no version", Upload{Module: "m", Developer: "d", Program: prog}},
		{"no developer", Upload{Module: "m", Version: "1", Program: prog}},
		{"no program", Upload{Module: "m", Version: "1", Developer: "d"}},
		{"at in name", Upload{Module: "m@x", Version: "1", Developer: "d", Program: prog}},
		{"slash in version", Upload{Module: "m", Version: "1/2", Developer: "d", Program: prog}},
	}
	for _, tt := range cases {
		if _, err := r.Put(tt.u); err == nil {
			t.Errorf("%s: accepted", tt.name)
		}
	}
	upload(t, r, "m", "1", "d", false)
	if _, err := r.Put(Upload{Module: "m", Version: "1", Developer: "d", Program: prog}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate: %v", err)
	}
}

func TestOpenSourceMustReproduceBytecode(t *testing.T) {
	// The §2 audit guarantee: a listing that does not compile to the
	// submitted bytecode is rejected.
	r := New(nil)
	prog := tinyProgram(t)
	_, err := r.Put(Upload{
		Module: "m", Version: "1", Developer: "d", Program: prog,
		Source: "push 2\nhalt\n", // different program!
	})
	if !errors.Is(err, ErrSourceMismatch) {
		t.Fatalf("mismatched source accepted: %v", err)
	}
	_, err = r.Put(Upload{
		Module: "m", Version: "1", Developer: "d", Program: prog,
		Source: "this is not assembly",
	})
	if !errors.Is(err, ErrSourceMismatch) {
		t.Fatalf("unassemblable source: %v", err)
	}
}

func TestClosedSourceHasNoListing(t *testing.T) {
	r := New(nil)
	v := upload(t, r, "secretapp", "1.0", "devB", false)
	if v.OpenSource || v.Source != "" {
		t.Error("closed-source module leaked a listing")
	}
	// But it is executable.
	if _, err := v.Program(); err != nil {
		t.Errorf("closed-source module not executable: %v", err)
	}
}

func TestFork(t *testing.T) {
	r := New(nil)
	upload(t, r, "cropper", "1.0", "devA", true)
	fork, err := r.Fork("devB", "cropper", "", "bettercropper", "1.0")
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if fork.Developer != "devB" || fork.ForkOf != "cropper@1.0" {
		t.Errorf("fork = %+v", fork)
	}
	orig, _ := r.Get("cropper", "1.0")
	if fork.Hash != orig.Hash {
		t.Error("fork changed the program")
	}
	// Closed-source cannot be forked.
	upload(t, r, "closed", "1.0", "devC", false)
	if _, err := r.Fork("devB", "closed", "", "x", "1"); !errors.Is(err, ErrClosedSource) {
		t.Errorf("closed fork: %v", err)
	}
	if _, err := r.Fork("devB", "ghost", "", "x", "1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing fork: %v", err)
	}
}

func TestGetByHash(t *testing.T) {
	r := New(nil)
	v := upload(t, r, "m", "1", "d", false)
	got, err := r.GetByHash(v.Hash)
	if err != nil || got.Module != "m" {
		t.Fatalf("GetByHash: %v", err)
	}
	if _, err := r.GetByHash("feedface"); !errors.Is(err, ErrNotFound) {
		t.Errorf("bogus hash: %v", err)
	}
}

func TestEndorsements(t *testing.T) {
	r := New(nil)
	upload(t, r, "m", "1", "d", false)
	if err := r.Endorse("editor:linuxmag", "m"); err != nil {
		t.Fatal(err)
	}
	r.Endorse("editor:linuxmag", "m") // idempotent
	r.Endorse("editor:acm", "m")
	got := r.Endorsements("m")
	if len(got) != 2 || got[0] != "editor:acm" {
		t.Errorf("Endorsements = %v", got)
	}
	if err := r.Endorse("e", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("endorse missing module: %v", err)
	}
}

func TestDependencyGraph(t *testing.T) {
	r := New(nil)
	prog := tinyProgram(t)
	r.Put(Upload{Module: "lib", Version: "1", Developer: "d", Program: prog})
	r.Put(Upload{Module: "app1", Version: "1", Developer: "d", Program: prog,
		Deps: []string{"lib", "unregistered"}})
	r.Put(Upload{Module: "app2", Version: "1", Developer: "d", Program: prog,
		Deps: []string{"lib"}})
	r.RecordEmbed("app1", "app2")
	r.RecordEmbed("app1", "ghost") // dropped

	edges := r.DependencyGraph()
	want := map[string]bool{
		"app1->lib:import": true,
		"app2->lib:import": true,
		"app1->app2:embed": true,
	}
	if len(edges) != len(want) {
		t.Fatalf("edges = %+v", edges)
	}
	for _, e := range edges {
		key := e.From + "->" + e.To + ":" + e.Kind
		if !want[key] {
			t.Errorf("unexpected edge %s", key)
		}
	}
}

func TestSearch(t *testing.T) {
	r := New(nil)
	prog := tinyProgram(t)
	r.Put(Upload{Module: "photocrop", Version: "1", Developer: "a", Program: prog,
		Summary: "crops photos"})
	r.Put(Upload{Module: "blogger", Version: "1", Developer: "b", Program: prog,
		Summary: "writes blogs"})

	if got := r.Search("photo"); len(got) != 1 || got[0].Module != "photocrop" {
		t.Errorf("Search(photo) = %v", got)
	}
	if got := r.Search("CROPS"); len(got) != 1 {
		t.Errorf("case-insensitive summary search failed: %v", got)
	}
	if got := r.Search(""); len(got) != 2 {
		t.Errorf("empty query = %d results", len(got))
	}
	if got := r.Search("zebra"); len(got) != 0 {
		t.Errorf("no-match query = %v", got)
	}
}

func TestClockInjection(t *testing.T) {
	r := New(nil)
	fixed := time.Date(2007, 8, 24, 12, 0, 0, 0, time.UTC)
	r.SetClock(func() time.Time { return fixed })
	v := upload(t, r, "m", "1", "d", false)
	if !v.Uploaded.Equal(fixed) {
		t.Errorf("Uploaded = %v", v.Uploaded)
	}
}

// TestModuleOwnership pins the anti-hijack invariant: the first
// publisher of a module name owns it, and only the owner may add
// versions or pin. Everyone else must fork, which creates a module the
// forker owns.
func TestModuleOwnership(t *testing.T) {
	r := New(nil)
	prog := tinyProgram(t)
	upload(t, r, "m", "1.0", "alice", true)

	// A different developer cannot publish a new "latest" into m.
	_, err := r.Put(Upload{Module: "m", Version: "2.0", Developer: "mallory", Program: prog})
	if !errors.Is(err, ErrNotOwner) {
		t.Fatalf("hijack publish: err = %v, want ErrNotOwner", err)
	}
	if got, _ := r.Get("m", ""); got == nil || got.Version != "1.0" {
		t.Fatalf("latest after refused hijack = %v", got)
	}
	// The owner still can.
	upload(t, r, "m", "2.0", "alice", true)

	if owner, err := r.Owner("m"); err != nil || owner != "alice" {
		t.Fatalf("Owner(m) = %q, %v", owner, err)
	}
	if _, err := r.Owner("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Owner(nope): %v", err)
	}

	// Forking is the outsider's customization path; the fork is theirs.
	fv, err := r.Fork("mallory", "m", "", "m-fork", "1.0")
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	if owner, _ := r.Owner("m-fork"); owner != "mallory" {
		t.Fatalf("fork owner = %q", owner)
	}
	if fv.ForkOf != "m@2.0" {
		t.Fatalf("fork ancestry = %q", fv.ForkOf)
	}
	// ...and the original owner cannot push into the fork either.
	if _, err := r.Put(Upload{Module: "m-fork", Version: "2.0", Developer: "alice", Program: prog}); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("publish into fork: %v, want ErrNotOwner", err)
	}

	// PinBy anchors pin rights to the owner, not to any version's
	// developer, and checks inside the mutation.
	if err := r.PinBy("mallory", "m", "1.0"); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("hijack pin: %v, want ErrNotOwner", err)
	}
	if err := r.PinBy("alice", "m", "1.0"); err != nil {
		t.Fatalf("owner pin: %v", err)
	}
	if got, _ := r.Get("m", ""); got.Version != "1.0" {
		t.Fatalf("pinned latest = %v", got.Version)
	}
	if err := r.PinBy("alice", "m", "9.9"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pin missing version: %v", err)
	}
	if err := r.PinBy("alice", "nope", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pin missing module: %v", err)
	}

	// The deps bound refuses oversized dependency lists up front.
	big := make([]string, MaxDeps+1)
	for i := range big {
		big[i] = "d"
	}
	if _, err := r.Put(Upload{Module: "deps", Version: "1", Developer: "d", Program: prog, Deps: big}); !errors.Is(err, ErrBadModule) {
		t.Fatalf("oversized deps: %v, want ErrBadModule", err)
	}
}
