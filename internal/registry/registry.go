// Package registry implements the W5 module registry: the catalogue of
// developer-contributed software that users choose from.
//
// The paper's developer story (§2) requires:
//
//   - Uploads of closed-source modules, "executable but not readable":
//     stored as bytecode with no listing; identified by hash.
//   - Open-source modules, where "the platform itself can guarantee
//     that the code with which a user is interacting is exactly the
//     code that the user has audited": the registry recompiles the
//     submitted listing and refuses the upload unless it reproduces the
//     submitted bytecode bit-for-bit.
//   - Forking: "any developer — not just the application owner — can
//     customize an existing application by simply 'forking' the
//     existing code" (open-source modules only).
//   - Version pinning: users can run "version X.Y of that Web
//     application, not the latest version".
//   - The §3.2 trust signals: editor endorsements, and the dependency
//     edges (library imports and HTML-embed references) that feed the
//     CodeRank computation in package rank.
//
// Concurrency protocol (the PR 3 session-snapshot protocol, reused):
// every mutation (publish, fork, pin, embed, endorse) is serialized
// under a mutex, builds a fresh immutable catalogue, and publishes it
// with a single atomic pointer store. Reads (search, version
// resolution, dependency-edge walks) load the pointer once and operate
// on data that will never change — no locks, no torn catalogues, and
// the hot-path derived structures (sorted name list, lowercased search
// haystack, dependency edges) are computed once per mutation instead of
// once per read. Each snapshot carries a monotonically increasing
// change sequence that package rank uses to recompute its ranked view
// incrementally.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"w5/internal/audit"
	"w5/internal/wvm"
)

// Kind classifies what a module is for.
type Kind string

// Module kinds.
const (
	KindApp          Kind = "app"
	KindLibrary      Kind = "library"
	KindDeclassifier Kind = "declassifier"
)

// Errors.
var (
	ErrNotFound       = errors.New("registry: no such module or version")
	ErrExists         = errors.New("registry: version already exists")
	ErrClosedSource   = errors.New("registry: module is closed-source")
	ErrSourceMismatch = errors.New("registry: source does not reproduce bytecode")
	ErrBadModule      = errors.New("registry: invalid module")
	ErrNotOwner       = errors.New("registry: module is owned by another developer")
)

// MaxDeps bounds how many dependency edges one version may declare.
const MaxDeps = 64

// Version is one immutable uploaded revision of a module.
type Version struct {
	Module     string
	Version    string
	Developer  string
	Kind       Kind
	Hash       string            // SHA-256 of the serialized program
	Blob       []byte            // serialized wvm.Program
	Source     string            // assembly listing; empty for closed-source
	SysNames   map[string]uint16 // syscall name table the source uses
	OpenSource bool
	Deps       []string // module names this version imports
	Summary    string   // one-line description for search
	ForkOf     string   // "module@version" this was forked from, if any
	Uploaded   time.Time
}

// Program deserializes the version's bytecode.
func (v *Version) Program() (*wvm.Program, error) {
	return wvm.Unmarshal(v.Blob)
}

// module groups the versions of one name. A module value inside a
// published catalogue is immutable; mutations clone it.
type module struct {
	owner    string // first publisher; the only developer who may add versions or pin
	versions map[string]*Version
	order    []string // upload order; last is "latest" unless pinned
	pinned   string   // version Get(name, "") resolves to; "" = last upload
}

func (m *module) clone() *module {
	nm := &module{
		owner:    m.owner,
		versions: make(map[string]*Version, len(m.versions)+1),
		order:    append(make([]string, 0, len(m.order)+1), m.order...),
		pinned:   m.pinned,
	}
	for k, v := range m.versions {
		nm.versions[k] = v
	}
	return nm
}

// latest resolves the version Get(name, "") returns.
func (m *module) latest() *Version {
	if m.pinned != "" {
		if v, ok := m.versions[m.pinned]; ok {
			return v
		}
	}
	return m.versions[m.order[len(m.order)-1]]
}

// catalogue is one immutable snapshot of the whole registry. Everything
// reachable from a published catalogue is read-only.
type catalogue struct {
	seq     uint64
	modules map[string]*module
	embeds  map[string]map[string]bool // from module -> to modules (HTML embed edges)
	endorse map[string]map[string]bool // module -> editors who endorsed it

	// Derived, rebuilt once per mutation so reads are O(result):
	names    []string   // sorted module names
	latest   []*Version // latest (or pinned) version per module, name order
	haystack []string   // lowercase name+"\x00"+summary per latest entry
	byHash   map[string]*Version
	edges    []Edge // full dependency graph, deterministic order
}

// emptyCatalogue is the seq-0 snapshot a fresh registry serves.
var emptyCatalogue = &catalogue{
	modules: map[string]*module{},
	embeds:  map[string]map[string]bool{},
	endorse: map[string]map[string]bool{},
	byHash:  map[string]*Version{},
}

// Registry is the module catalogue. Safe for concurrent use: reads are
// lock-free against the current snapshot, mutations serialize on mu.
type Registry struct {
	mu    sync.Mutex // serializes mutations; reads never take it
	snap  atomic.Pointer[catalogue]
	log   *audit.Log
	clock func() time.Time
}

// New returns an empty registry; log may be nil.
func New(log *audit.Log) *Registry {
	r := &Registry{log: log, clock: time.Now}
	r.snap.Store(emptyCatalogue)
	return r
}

// SetClock injects a time source for deterministic tests.
func (r *Registry) SetClock(clock func() time.Time) { r.clock = clock }

// Seq returns the change sequence of the current catalogue snapshot. It
// increases by exactly one per completed mutation, so a cached
// derivation (package rank's view) is fresh iff its recorded sequence
// matches.
func (r *Registry) Seq() uint64 { return r.snap.Load().seq }

// View returns the current immutable catalogue snapshot. All reads on a
// View observe one coherent catalogue: either entirely before or
// entirely after any concurrent mutation, never a mix.
func (r *Registry) View() View { return View{c: r.snap.Load()} }

// mutate runs fn against a private clone of the current catalogue and
// publishes the result with seq+1. fn returning an error abandons the
// clone. The shallow fields (modules/embeds/endorse maps) are copied
// here; fn must clone any *module it modifies.
func (r *Registry) mutate(fn func(c *catalogue) error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.snap.Load()
	next := &catalogue{
		seq:     cur.seq + 1,
		modules: make(map[string]*module, len(cur.modules)+1),
		embeds:  cur.embeds,
		endorse: cur.endorse,
	}
	for k, v := range cur.modules {
		next.modules[k] = v
	}
	if err := fn(next); err != nil {
		return err
	}
	next.rebuild()
	r.snap.Store(next)
	return nil
}

// rebuild recomputes the derived read-path structures.
func (c *catalogue) rebuild() {
	c.names = make([]string, 0, len(c.modules))
	for n := range c.modules {
		c.names = append(c.names, n)
	}
	sort.Strings(c.names)
	c.latest = make([]*Version, len(c.names))
	c.haystack = make([]string, len(c.names))
	c.byHash = make(map[string]*Version, len(c.modules))
	for i, n := range c.names {
		m := c.modules[n]
		c.latest[i] = m.latest()
		c.haystack[i] = strings.ToLower(n) + "\x00" + strings.ToLower(c.latest[i].Summary)
		for _, ver := range m.order {
			v := m.versions[ver]
			if _, dup := c.byHash[v.Hash]; !dup {
				c.byHash[v.Hash] = v
			}
		}
	}
	c.edges = c.edges[:0]
	for i, from := range c.names {
		deps := append([]string(nil), c.latest[i].Deps...)
		sort.Strings(deps)
		for _, to := range deps {
			if _, ok := c.modules[to]; ok {
				c.edges = append(c.edges, Edge{From: from, To: to, Kind: "import"})
			}
		}
	}
	for _, from := range c.names {
		tos := make([]string, 0, len(c.embeds[from]))
		for to := range c.embeds[from] {
			if _, ok := c.modules[to]; ok {
				tos = append(tos, to)
			}
		}
		sort.Strings(tos)
		for _, to := range tos {
			c.edges = append(c.edges, Edge{From: from, To: to, Kind: "embed"})
		}
	}
}

// Upload describes a module submission.
type Upload struct {
	Module    string
	Version   string
	Developer string
	Kind      Kind
	// Program is the compiled module.
	Program *wvm.Program
	// Source, if non-empty, publishes the module as open-source. The
	// registry verifies that assembling Source reproduces Program
	// exactly; submission fails otherwise.
	Source string
	// SysNames is the syscall name table the source was written
	// against (e.g. core.AppSyscallNames); needed to reproduce sources
	// that invoke syscalls by name.
	SysNames map[string]uint16
	Deps     []string
	Summary  string
	forkOf   string
}

// Put registers a new module version. The first publisher of a module
// name becomes its owner; uploads into an existing module by any other
// developer fail with ErrNotOwner, so nobody can ship code as a new
// "latest" under someone else's name, endorsements, and CodeRank score
// — §2's customization path for outsiders is Fork, which creates a
// module they own.
func (r *Registry) Put(u Upload) (*Version, error) {
	if u.Module == "" || u.Version == "" || u.Developer == "" || u.Program == nil {
		return nil, ErrBadModule
	}
	if strings.ContainsAny(u.Module, "@/ \t") || strings.ContainsAny(u.Version, "@/ \t") {
		return nil, fmt.Errorf("%w: names may not contain '@', '/', or spaces", ErrBadModule)
	}
	if len(u.Deps) > MaxDeps {
		return nil, fmt.Errorf("%w: more than %d deps", ErrBadModule, MaxDeps)
	}
	if err := u.Program.Verify(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModule, err)
	}
	open := u.Source != ""
	if open {
		rebuilt, err := wvm.Assemble(u.Source, u.SysNames)
		if err != nil {
			return nil, fmt.Errorf("%w: source does not assemble: %v", ErrSourceMismatch, err)
		}
		if rebuilt.Hash() != u.Program.Hash() {
			return nil, ErrSourceMismatch
		}
	}
	v := &Version{
		Module:     u.Module,
		Version:    u.Version,
		Developer:  u.Developer,
		Kind:       u.Kind,
		Hash:       u.Program.Hash(),
		Blob:       u.Program.Marshal(),
		Source:     u.Source,
		SysNames:   u.SysNames,
		OpenSource: open,
		Deps:       append([]string(nil), u.Deps...),
		Summary:    u.Summary,
		ForkOf:     u.forkOf,
		Uploaded:   r.clock(),
	}
	err := r.mutate(func(c *catalogue) error {
		m, ok := c.modules[u.Module]
		if !ok {
			m = &module{owner: u.Developer, versions: make(map[string]*Version)}
		} else {
			if m.owner != u.Developer {
				return ErrNotOwner
			}
			if _, dup := m.versions[u.Version]; dup {
				return ErrExists
			}
			m = m.clone()
		}
		m.versions[u.Version] = v
		m.order = append(m.order, u.Version)
		c.modules[u.Module] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	if r.log != nil {
		r.log.Appendf(audit.KindUpload, u.Developer, u.Module+"@"+u.Version,
			"kind=%s open=%v hash=%s", u.Kind, open, v.Hash[:12])
	}
	return v, nil
}

// Get fetches a specific version, or the latest (respecting any pin)
// when version is "".
func (r *Registry) Get(name, version string) (*Version, error) {
	return r.View().Get(name, version)
}

// GetByHash finds a version by its program hash — used by the platform
// to guarantee a user runs exactly the audited code.
func (r *Registry) GetByHash(hash string) (*Version, error) {
	return r.View().GetByHash(hash)
}

// Pin makes Get(name, "") resolve to the given version instead of the
// latest upload — the §2 "version X.Y of that Web application, not the
// latest version" story. An empty version clears the pin. This is the
// operator/trusted path with no ownership check; untrusted callers (the
// gateway) must use PinBy.
func (r *Registry) Pin(name, version string) error {
	return r.pin("registry", name, version, false)
}

// PinBy pins on behalf of a developer: it fails with ErrNotOwner unless
// dev is the module's owner (its first publisher). The ownership check
// and the pin happen inside one mutation, against the same catalogue
// snapshot — there is no check-then-act window in which a concurrent
// publish could change what is being authorized.
func (r *Registry) PinBy(dev, name, version string) error {
	return r.pin(dev, name, version, true)
}

func (r *Registry) pin(dev, name, version string, enforceOwner bool) error {
	err := r.mutate(func(c *catalogue) error {
		m, ok := c.modules[name]
		if !ok {
			return ErrNotFound
		}
		if enforceOwner && m.owner != dev {
			return ErrNotOwner
		}
		if version != "" {
			if _, ok := m.versions[version]; !ok {
				return ErrNotFound
			}
		}
		m = m.clone()
		m.pinned = version
		c.modules[name] = m
		return nil
	})
	if err != nil {
		return err
	}
	if r.log != nil {
		if version == "" {
			r.log.Appendf(audit.KindUpload, dev, name, "pin cleared")
		} else {
			r.log.Appendf(audit.KindUpload, dev, name+"@"+version, "pinned")
		}
	}
	return nil
}

// Fork copies the latest (or given) version of an open-source module
// into a new module owned by dev. The fork records its ancestry so
// users can see provenance, and the forker instantly has "a pool of
// users" in the sense that existing users need only switch names.
func (r *Registry) Fork(dev, srcModule, srcVersion, newModule, newVersion string) (*Version, error) {
	src, err := r.Get(srcModule, srcVersion)
	if err != nil {
		return nil, err
	}
	if !src.OpenSource {
		return nil, ErrClosedSource
	}
	prog, err := src.Program()
	if err != nil {
		return nil, err
	}
	return r.Put(Upload{
		Module:    newModule,
		Version:   newVersion,
		Developer: dev,
		Kind:      src.Kind,
		Program:   prog,
		Source:    src.Source,
		SysNames:  src.SysNames,
		Deps:      src.Deps,
		Summary:   src.Summary + " (fork of " + src.Module + ")",
		forkOf:    src.Module + "@" + src.Version,
	})
}

// Modules lists all module names, sorted.
func (r *Registry) Modules() []string { return r.View().Modules() }

// Owner returns the module's owner — its first publisher, the only
// developer who may add versions or pin.
func (r *Registry) Owner(name string) (string, error) { return r.View().Owner(name) }

// Versions lists a module's versions in upload order.
func (r *Registry) Versions(name string) ([]string, error) {
	return r.View().Versions(name)
}

// RecordEmbed records that module from emits HTML that references
// module to — the first dependency kind of §3.2. The gateway calls this
// as it serves pages. Re-recording a known edge is a no-op and does not
// advance the change sequence.
func (r *Registry) RecordEmbed(from, to string) {
	if r.snap.Load().embeds[from][to] {
		return
	}
	_ = r.mutate(func(c *catalogue) error {
		if c.embeds[from][to] {
			return errNoChange
		}
		c.embeds = cloneEdgeSet(c.embeds, from)
		c.embeds[from][to] = true
		return nil
	})
}

var errNoChange = errors.New("registry: no change")

// cloneEdgeSet shallow-copies an adjacency map, deep-copying only the
// row about to change.
func cloneEdgeSet(src map[string]map[string]bool, row string) map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(src)+1)
	for k, v := range src {
		out[k] = v
	}
	nr := make(map[string]bool, len(src[row])+1)
	for k, v := range src[row] {
		nr[k] = v
	}
	out[row] = nr
	return out
}

// Endorse records an editor's endorsement (§3.2 "W5 editors, who
// collect, audit and vet software collections"). Idempotent per
// (editor, module).
func (r *Registry) Endorse(editor, moduleName string) error {
	err := r.mutate(func(c *catalogue) error {
		if _, ok := c.modules[moduleName]; !ok {
			return ErrNotFound
		}
		if c.endorse[moduleName][editor] {
			return errNoChange
		}
		c.endorse = cloneEdgeSet(c.endorse, moduleName)
		c.endorse[moduleName][editor] = true
		return nil
	})
	if errors.Is(err, errNoChange) {
		return nil
	}
	return err
}

// Endorsements returns the editors who endorsed a module, sorted.
func (r *Registry) Endorsements(moduleName string) []string {
	return r.View().Endorsements(moduleName)
}

// Edge is one dependency edge for CodeRank. Import edges come from the
// latest version's Deps; embed edges from RecordEmbed observations.
type Edge struct {
	From, To string
	Kind     string // "import" or "embed"
}

// DependencyGraph exports every edge among registered modules. Edges
// referencing unregistered modules are dropped. The returned slice is
// the caller's to modify.
func (r *Registry) DependencyGraph() []Edge {
	return append([]Edge(nil), r.View().Edges()...)
}

// Search returns the modules whose name or summary contains the query
// (case-insensitive), sorted by name; package rank re-orders results by
// CodeRank. An empty query matches everything.
func (r *Registry) Search(query string) []*Version {
	return r.View().Search(query)
}

// View is a read handle on one immutable catalogue snapshot. All
// methods are lock-free, safe for concurrent use, and mutually
// consistent: two reads on the same View can never observe different
// catalogue states. Obtain one with Registry.View; a View held across a
// mutation simply keeps serving the older snapshot.
type View struct {
	c *catalogue
}

// Seq is the snapshot's change sequence (0 for an empty registry).
func (v View) Seq() uint64 { return v.c.seq }

// Get resolves (name, version) in this snapshot; "" means latest,
// respecting any pin.
func (v View) Get(name, version string) (*Version, error) {
	m, ok := v.c.modules[name]
	if !ok {
		return nil, ErrNotFound
	}
	if version == "" {
		return m.latest(), nil
	}
	ver, ok := m.versions[version]
	if !ok {
		return nil, ErrNotFound
	}
	return ver, nil
}

// GetByHash resolves a program hash to its version in O(1).
func (v View) GetByHash(hash string) (*Version, error) {
	ver, ok := v.c.byHash[hash]
	if !ok {
		return nil, ErrNotFound
	}
	return ver, nil
}

// Modules lists all module names, sorted.
func (v View) Modules() []string {
	return append([]string(nil), v.c.names...)
}

// Owner returns the module's owner (its first publisher).
func (v View) Owner(name string) (string, error) {
	m, ok := v.c.modules[name]
	if !ok {
		return "", ErrNotFound
	}
	return m.owner, nil
}

// Versions lists a module's versions in upload order.
func (v View) Versions(name string) ([]string, error) {
	m, ok := v.c.modules[name]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]string(nil), m.order...), nil
}

// Endorsements returns the editors who endorsed a module, sorted.
func (v View) Endorsements(moduleName string) []string {
	out := make([]string, 0, len(v.c.endorse[moduleName]))
	for e := range v.c.endorse[moduleName] {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// EndorsementCount returns how many editors endorsed a module without
// materializing the list.
func (v View) EndorsementCount(moduleName string) int {
	return len(v.c.endorse[moduleName])
}

// Edges returns the snapshot's dependency graph. The slice is shared
// with the snapshot and MUST NOT be modified; use
// Registry.DependencyGraph for an owned copy.
func (v View) Edges() []Edge { return v.c.edges }

// Search returns the latest version of every module whose name or
// summary contains the query (case-insensitive), sorted by name. The
// only allocations are the lowered query and the result slice; the
// haystack is precomputed per snapshot.
func (v View) Search(query string) []*Version {
	if query == "" {
		return append([]*Version(nil), v.c.latest...)
	}
	q := strings.ToLower(query)
	var out []*Version
	for i, hay := range v.c.haystack {
		if strings.Contains(hay, q) {
			out = append(out, v.c.latest[i])
		}
	}
	return out
}
