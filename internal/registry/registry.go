// Package registry implements the W5 module registry: the catalogue of
// developer-contributed software that users choose from.
//
// The paper's developer story (§2) requires:
//
//   - Uploads of closed-source modules, "executable but not readable":
//     stored as bytecode with no listing; identified by hash.
//   - Open-source modules, where "the platform itself can guarantee
//     that the code with which a user is interacting is exactly the
//     code that the user has audited": the registry recompiles the
//     submitted listing and refuses the upload unless it reproduces the
//     submitted bytecode bit-for-bit.
//   - Forking: "any developer — not just the application owner — can
//     customize an existing application by simply 'forking' the
//     existing code" (open-source modules only).
//   - Version pinning: users can run "version X.Y of that Web
//     application, not the latest version".
//   - The §3.2 trust signals: editor endorsements, and the dependency
//     edges (library imports and HTML-embed references) that feed the
//     CodeRank computation in package rank.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"w5/internal/audit"
	"w5/internal/wvm"
)

// Kind classifies what a module is for.
type Kind string

// Module kinds.
const (
	KindApp          Kind = "app"
	KindLibrary      Kind = "library"
	KindDeclassifier Kind = "declassifier"
)

// Errors.
var (
	ErrNotFound       = errors.New("registry: no such module or version")
	ErrExists         = errors.New("registry: version already exists")
	ErrClosedSource   = errors.New("registry: module is closed-source")
	ErrSourceMismatch = errors.New("registry: source does not reproduce bytecode")
	ErrBadModule      = errors.New("registry: invalid module")
)

// Version is one immutable uploaded revision of a module.
type Version struct {
	Module     string
	Version    string
	Developer  string
	Kind       Kind
	Hash       string            // SHA-256 of the serialized program
	Blob       []byte            // serialized wvm.Program
	Source     string            // assembly listing; empty for closed-source
	SysNames   map[string]uint16 // syscall name table the source uses
	OpenSource bool
	Deps       []string // module names this version imports
	Summary    string   // one-line description for search
	ForkOf     string   // "module@version" this was forked from, if any
	Uploaded   time.Time
}

// Program deserializes the version's bytecode.
func (v *Version) Program() (*wvm.Program, error) {
	return wvm.Unmarshal(v.Blob)
}

// module groups the versions of one name.
type module struct {
	versions map[string]*Version
	order    []string // upload order; last is "latest"
}

// Registry is the module catalogue. Safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	modules map[string]*module
	embeds  map[string]map[string]bool // from module -> to modules (HTML embed edges)
	endorse map[string]map[string]bool // module -> editors who endorsed it
	log     *audit.Log
	clock   func() time.Time
}

// New returns an empty registry; log may be nil.
func New(log *audit.Log) *Registry {
	return &Registry{
		modules: make(map[string]*module),
		embeds:  make(map[string]map[string]bool),
		endorse: make(map[string]map[string]bool),
		log:     log,
		clock:   time.Now,
	}
}

// SetClock injects a time source for deterministic tests.
func (r *Registry) SetClock(clock func() time.Time) { r.clock = clock }

// Upload describes a module submission.
type Upload struct {
	Module    string
	Version   string
	Developer string
	Kind      Kind
	// Program is the compiled module.
	Program *wvm.Program
	// Source, if non-empty, publishes the module as open-source. The
	// registry verifies that assembling Source reproduces Program
	// exactly; submission fails otherwise.
	Source string
	// SysNames is the syscall name table the source was written
	// against (e.g. core.AppSyscallNames); needed to reproduce sources
	// that invoke syscalls by name.
	SysNames map[string]uint16
	Deps     []string
	Summary  string
	forkOf   string
}

// Put registers a new module version.
func (r *Registry) Put(u Upload) (*Version, error) {
	if u.Module == "" || u.Version == "" || u.Developer == "" || u.Program == nil {
		return nil, ErrBadModule
	}
	if strings.ContainsAny(u.Module, "@/ \t") || strings.ContainsAny(u.Version, "@/ \t") {
		return nil, fmt.Errorf("%w: names may not contain '@', '/', or spaces", ErrBadModule)
	}
	if err := u.Program.Verify(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadModule, err)
	}
	open := u.Source != ""
	if open {
		rebuilt, err := wvm.Assemble(u.Source, u.SysNames)
		if err != nil {
			return nil, fmt.Errorf("%w: source does not assemble: %v", ErrSourceMismatch, err)
		}
		if rebuilt.Hash() != u.Program.Hash() {
			return nil, ErrSourceMismatch
		}
	}
	v := &Version{
		Module:     u.Module,
		Version:    u.Version,
		Developer:  u.Developer,
		Kind:       u.Kind,
		Hash:       u.Program.Hash(),
		Blob:       u.Program.Marshal(),
		Source:     u.Source,
		SysNames:   u.SysNames,
		OpenSource: open,
		Deps:       append([]string(nil), u.Deps...),
		Summary:    u.Summary,
		ForkOf:     u.forkOf,
		Uploaded:   r.clock(),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.modules[u.Module]
	if !ok {
		m = &module{versions: make(map[string]*Version)}
		r.modules[u.Module] = m
	}
	if _, dup := m.versions[u.Version]; dup {
		return nil, ErrExists
	}
	m.versions[u.Version] = v
	m.order = append(m.order, u.Version)
	if r.log != nil {
		r.log.Appendf(audit.KindUpload, u.Developer, u.Module+"@"+u.Version,
			"kind=%s open=%v hash=%s", u.Kind, open, v.Hash[:12])
	}
	return v, nil
}

// Get fetches a specific version, or the latest when version is "".
// This is how users pin "version X.Y, not the latest" (§2).
func (r *Registry) Get(name, version string) (*Version, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.modules[name]
	if !ok {
		return nil, ErrNotFound
	}
	if version == "" {
		version = m.order[len(m.order)-1]
	}
	v, ok := m.versions[version]
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}

// GetByHash finds a version by its program hash — used by the platform
// to guarantee a user runs exactly the audited code.
func (r *Registry) GetByHash(hash string) (*Version, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, m := range r.modules {
		for _, v := range m.versions {
			if v.Hash == hash {
				return v, nil
			}
		}
	}
	return nil, ErrNotFound
}

// Fork copies the latest (or given) version of an open-source module
// into a new module owned by dev. The fork records its ancestry so
// users can see provenance, and the forker instantly has "a pool of
// users" in the sense that existing users need only switch names.
func (r *Registry) Fork(dev, srcModule, srcVersion, newModule, newVersion string) (*Version, error) {
	src, err := r.Get(srcModule, srcVersion)
	if err != nil {
		return nil, err
	}
	if !src.OpenSource {
		return nil, ErrClosedSource
	}
	prog, err := src.Program()
	if err != nil {
		return nil, err
	}
	return r.Put(Upload{
		Module:    newModule,
		Version:   newVersion,
		Developer: dev,
		Kind:      src.Kind,
		Program:   prog,
		Source:    src.Source,
		SysNames:  src.SysNames,
		Deps:      src.Deps,
		Summary:   src.Summary + " (fork of " + src.Module + ")",
		forkOf:    src.Module + "@" + src.Version,
	})
}

// Modules lists all module names, sorted.
func (r *Registry) Modules() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.modules))
	for n := range r.modules {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Versions lists a module's versions in upload order.
func (r *Registry) Versions(name string) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.modules[name]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]string(nil), m.order...), nil
}

// RecordEmbed records that module from emits HTML that references
// module to — the first dependency kind of §3.2. The gateway calls this
// as it serves pages.
func (r *Registry) RecordEmbed(from, to string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.embeds[from] == nil {
		r.embeds[from] = make(map[string]bool)
	}
	r.embeds[from][to] = true
}

// Endorse records an editor's endorsement (§3.2 "W5 editors, who
// collect, audit and vet software collections").
func (r *Registry) Endorse(editor, moduleName string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.modules[moduleName]; !ok {
		return ErrNotFound
	}
	if r.endorse[moduleName] == nil {
		r.endorse[moduleName] = make(map[string]bool)
	}
	r.endorse[moduleName][editor] = true
	return nil
}

// Endorsements returns the editors who endorsed a module, sorted.
func (r *Registry) Endorsements(moduleName string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.endorse[moduleName]))
	for e := range r.endorse[moduleName] {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Edge is one dependency edge for CodeRank. Import edges come from the
// latest version's Deps; embed edges from RecordEmbed observations.
type Edge struct {
	From, To string
	Kind     string // "import" or "embed"
}

// DependencyGraph exports every edge among registered modules. Edges
// referencing unregistered modules are dropped.
func (r *Registry) DependencyGraph() []Edge {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var edges []Edge
	names := make([]string, 0, len(r.modules))
	for n := range r.modules {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, from := range names {
		m := r.modules[from]
		latest := m.versions[m.order[len(m.order)-1]]
		deps := append([]string(nil), latest.Deps...)
		sort.Strings(deps)
		for _, to := range deps {
			if _, ok := r.modules[to]; ok {
				edges = append(edges, Edge{From: from, To: to, Kind: "import"})
			}
		}
	}
	for _, from := range names {
		tos := make([]string, 0, len(r.embeds[from]))
		for to := range r.embeds[from] {
			if _, ok := r.modules[to]; ok {
				tos = append(tos, to)
			}
		}
		sort.Strings(tos)
		for _, to := range tos {
			edges = append(edges, Edge{From: from, To: to, Kind: "embed"})
		}
	}
	return edges
}

// Search returns the modules whose name or summary contains the query
// (case-insensitive), sorted by name; package rank re-orders results by
// CodeRank. An empty query matches everything.
func (r *Registry) Search(query string) []*Version {
	q := strings.ToLower(query)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Version
	names := make([]string, 0, len(r.modules))
	for n := range r.modules {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := r.modules[n]
		latest := m.versions[m.order[len(m.order)-1]]
		if q == "" || strings.Contains(strings.ToLower(n), q) ||
			strings.Contains(strings.ToLower(latest.Summary), q) {
			out = append(out, latest)
		}
	}
	return out
}
