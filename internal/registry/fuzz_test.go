package registry_test

import (
	"errors"
	"strings"
	"testing"

	"w5/internal/apps"
	"w5/internal/core"
	"w5/internal/registry"
	"w5/internal/wvm"
)

// FuzzPublish fuzzes the registry's open-source reproducibility check —
// the §2 guarantee that a published listing reproduces the published
// bytecode bit-for-bit. For every (module name, source, tamper) input:
//
//   - Put never panics, whatever the source looks like.
//   - If the source assembles, the honest upload is accepted and comes
//     back marked open-source with the right hash.
//   - A tampered program whose hash differs from the honest build is
//     ALWAYS rejected with ErrSourceMismatch; a tamper that round-trips
//     to the identical program is indistinguishable and accepted.
//
// Corpus: the embedded WVM twin listings (real apps) plus minimal and
// malformed listings. CI runs this seeded for a few seconds (see
// ci.yml); longer local runs: go test -fuzz=FuzzPublish ./internal/registry/
func FuzzPublish(f *testing.F) {
	for _, tw := range apps.WVMTwins() {
		f.Add(tw.Name, tw.Source, uint(0), byte(0))
		f.Add(tw.Name, tw.Source, uint(17), byte(0x41))
	}
	f.Add("tiny", "start:\n  push 0\n  halt\n", uint(3), byte(1))
	f.Add("bad", "not a program", uint(0), byte(0xff))
	f.Add("with@at", "start:\n  push 0\n  halt\n", uint(1), byte(2))

	f.Fuzz(func(t *testing.T, module, source string, pos uint, xor byte) {
		r := registry.New(nil)
		prog, err := wvm.Assemble(source, core.AppSyscallNames)
		if err != nil {
			// Unassemblable source must be refused, never panic.
			if _, perr := r.Put(registry.Upload{
				Module: "m", Version: "1", Developer: "dev",
				Kind: registry.KindApp, Program: &wvm.Program{}, Source: source,
				SysNames: core.AppSyscallNames,
			}); !errors.Is(perr, registry.ErrSourceMismatch) && !errors.Is(perr, registry.ErrBadModule) {
				t.Fatalf("unassemblable source accepted: %v", perr)
			}
			return
		}

		honest := registry.Upload{
			Module: module, Version: "1", Developer: "dev",
			Kind: registry.KindApp, Program: prog, Source: source,
			SysNames: core.AppSyscallNames, Summary: "fuzz",
		}
		v, err := r.Put(honest)
		if err != nil {
			// Only name validation may refuse an honest reproducible upload.
			if !errors.Is(err, registry.ErrBadModule) {
				t.Fatalf("honest upload refused: %v", err)
			}
			if !strings.ContainsAny(module, "@/ \t") && module != "" {
				t.Fatalf("valid module name %q refused: %v", module, err)
			}
			return
		}
		if v.OpenSource != (source != "") || v.Hash != prog.Hash() {
			t.Fatalf("honest upload stored wrong: open=%v (src len %d) hash=%s want %s",
				v.OpenSource, len(source), v.Hash, prog.Hash())
		}
		if source == "" {
			return // closed-source: no listing, no reproducibility check
		}
		got, err := r.Get(module, "1")
		if err != nil || got.Hash != v.Hash {
			t.Fatalf("round-trip Get: %v", err)
		}

		// Tamper with the serialized program and try to pass it off as
		// the build of the same listing.
		blob := prog.Marshal()
		if len(blob) == 0 {
			return
		}
		blob[int(pos)%len(blob)] ^= xor
		tampered, err := wvm.Unmarshal(blob)
		if err != nil {
			return // tamper broke the container format; nothing to publish
		}
		_, err = r.Put(registry.Upload{
			Module: module, Version: "2", Developer: "dev",
			Kind: registry.KindApp, Program: tampered, Source: source,
			SysNames: core.AppSyscallNames,
		})
		if tampered.Hash() == prog.Hash() {
			if err != nil {
				t.Fatalf("identical rebuild refused: %v", err)
			}
			return
		}
		if !errors.Is(err, registry.ErrSourceMismatch) && !errors.Is(err, registry.ErrBadModule) {
			t.Fatalf("tampered bytecode accepted under an honest listing: err=%v", err)
		}
	})
}
