// Package quota implements per-principal resource allocation for the W5
// platform.
//
// The paper (§3.5 "Performance and resource allocation") requires that
// "processes must be limited to reasonable amounts of disk, network,
// memory and CPU usage, lest rogue applications degrade the performance
// of the W5 cluster", and that the database "prevent malicious queries
// from locking the database for all other applications". This package
// provides:
//
//   - Limits: a static budget over five resource dimensions;
//   - Account: a concurrency-safe usage ledger charged by the kernel, the
//     WVM (one CPU unit per executed instruction), the store (disk
//     bytes), the gateway (network bytes), and the table store (query
//     cost units);
//   - Bucket: a token-bucket rate limiter used for message and request
//     rates.
//
// Experiment E8 turns quotas off and on around a rogue application to
// measure the isolation they buy.
package quota

import (
	"fmt"
	"sync"
	"time"
)

// Resource identifies one budgeted dimension.
type Resource string

// The five budgeted dimensions from §3.5.
const (
	CPU     Resource = "cpu"     // abstract instructions executed
	Memory  Resource = "memory"  // peak working-set bytes
	Disk    Resource = "disk"    // persistent bytes stored
	Network Resource = "network" // bytes crossing the perimeter
	Query   Resource = "query"   // table-store cost units (rows scanned)
)

// Resources lists every dimension in deterministic order.
var Resources = []Resource{CPU, Memory, Disk, Network, Query}

// Limits is a budget across all dimensions. A zero limit in any
// dimension means "unlimited" in that dimension; Unlimited() is the
// all-zero value.
type Limits struct {
	CPU     uint64
	Memory  uint64
	Disk    uint64
	Network uint64
	Query   uint64
}

// Unlimited returns a Limits with no bound in any dimension.
func Unlimited() Limits { return Limits{} }

// DefaultAppLimits is the provider's stock budget for an untrusted
// application process: enough for real work, small enough that a rogue
// cannot monopolize the cluster. Values are per process lifetime except
// Memory, which is a high-water mark.
func DefaultAppLimits() Limits {
	return Limits{
		CPU:     5_000_000, // instructions
		Memory:  16 << 20,  // 16 MiB
		Disk:    64 << 20,  // 64 MiB
		Network: 8 << 20,   // 8 MiB
		Query:   1_000_000, // rows scanned
	}
}

// Get returns the limit in one dimension.
func (l Limits) Get(r Resource) uint64 {
	switch r {
	case CPU:
		return l.CPU
	case Memory:
		return l.Memory
	case Disk:
		return l.Disk
	case Network:
		return l.Network
	case Query:
		return l.Query
	}
	return 0
}

// ErrExceeded reports an exhausted budget. It deliberately carries the
// principal and dimension but not the amounts: the error can surface to
// untrusted code, and usage values could otherwise carry information
// about other principals' activity.
type ErrExceeded struct {
	Principal string
	Resource  Resource
}

func (e *ErrExceeded) Error() string {
	return fmt.Sprintf("quota: %s exceeded for %s", e.Resource, e.Principal)
}

// Account is a usage ledger against a Limits budget. The zero value is
// unusable; create accounts through a Manager or NewAccount.
type Account struct {
	principal string
	mu        sync.Mutex
	limits    Limits
	used      map[Resource]uint64
}

// NewAccount returns a ledger for the given principal and budget.
func NewAccount(principal string, limits Limits) *Account {
	return &Account{
		principal: principal,
		limits:    limits,
		used:      make(map[Resource]uint64, len(Resources)),
	}
}

// Principal returns the account owner's name.
func (a *Account) Principal() string { return a.principal }

// Limits returns the account's budget.
func (a *Account) Limits() Limits {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limits
}

// SetLimits replaces the budget; existing usage is retained, so lowering
// a limit below current usage makes further charges fail immediately.
func (a *Account) SetLimits(l Limits) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.limits = l
}

// Charge consumes n units of r, failing atomically (no partial charge)
// if the budget would be exceeded. A zero limit admits any charge.
func (a *Account) Charge(r Resource, n uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	limit := a.limits.Get(r)
	if limit > 0 && a.used[r]+n > limit {
		return &ErrExceeded{Principal: a.principal, Resource: r}
	}
	a.used[r] += n
	return nil
}

// Refund returns n units of r to the budget (e.g. when a file is
// deleted, its disk bytes come back). Refunding more than was used
// clamps to zero.
func (a *Account) Refund(r Resource, n uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > a.used[r] {
		n = a.used[r]
	}
	a.used[r] -= n
}

// Used reports current usage in one dimension.
func (a *Account) Used(r Resource) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used[r]
}

// Remaining reports the headroom in one dimension; unlimited dimensions
// report ^uint64(0).
func (a *Account) Remaining(r Resource) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	limit := a.limits.Get(r)
	if limit == 0 {
		return ^uint64(0)
	}
	if a.used[r] >= limit {
		return 0
	}
	return limit - a.used[r]
}

// Reset zeroes all usage (process restart).
func (a *Account) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	clear(a.used)
}

// Manager tracks one Account per principal, creating them on demand with
// a default budget. Safe for concurrent use.
type Manager struct {
	mu       sync.Mutex
	defaults Limits
	accounts map[string]*Account
}

// NewManager returns a Manager whose on-demand accounts get the given
// default budget.
func NewManager(defaults Limits) *Manager {
	return &Manager{defaults: defaults, accounts: make(map[string]*Account)}
}

// Account returns the ledger for principal, creating it with the default
// budget on first use.
func (m *Manager) Account(principal string) *Account {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.accounts[principal]
	if !ok {
		a = NewAccount(principal, m.defaults)
		m.accounts[principal] = a
	}
	return a
}

// SetLimits overrides the budget for one principal (creating the account
// if needed).
func (m *Manager) SetLimits(principal string, l Limits) {
	m.Account(principal).SetLimits(l)
}

// Principals returns the principals with accounts, in no particular order.
func (m *Manager) Principals() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.accounts))
	for p := range m.accounts {
		out = append(out, p)
	}
	return out
}

// Bucket is a token-bucket rate limiter: capacity tokens, refilled at
// rate tokens/second. Used by the kernel to bound per-process message
// rates and by the gateway to bound per-user request rates. Safe for
// concurrent use. Time is injectable for deterministic tests.
type Bucket struct {
	mu       sync.Mutex
	capacity float64
	rate     float64 // tokens per second
	tokens   float64
	last     time.Time
	now      func() time.Time
}

// NewBucket returns a full bucket with the given capacity and refill
// rate per second. Capacity and rate must be positive.
func NewBucket(capacity, rate float64) *Bucket {
	if capacity <= 0 || rate <= 0 {
		panic("quota: bucket capacity and rate must be positive")
	}
	b := &Bucket{capacity: capacity, rate: rate, tokens: capacity, now: time.Now}
	b.last = b.now()
	return b
}

// SetClock injects a time source for tests; nil restores time.Now.
func (b *Bucket) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	b.now = now
	b.last = now()
}

// Take attempts to remove n tokens; it reports false (consuming
// nothing) if fewer than n are available.
func (b *Bucket) Take(n float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// Available reports the tokens currently in the bucket.
func (b *Bucket) Available() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	return b.tokens
}

func (b *Bucket) refill() {
	now := b.now()
	dt := now.Sub(b.last).Seconds()
	if dt <= 0 {
		return
	}
	b.last = now
	b.tokens += dt * b.rate
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
}
