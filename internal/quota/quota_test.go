package quota

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestChargeWithinLimit(t *testing.T) {
	a := NewAccount("app", Limits{CPU: 100})
	if err := a.Charge(CPU, 60); err != nil {
		t.Fatal(err)
	}
	if err := a.Charge(CPU, 40); err != nil {
		t.Fatal(err)
	}
	if a.Used(CPU) != 100 {
		t.Errorf("Used = %d, want 100", a.Used(CPU))
	}
	if a.Remaining(CPU) != 0 {
		t.Errorf("Remaining = %d, want 0", a.Remaining(CPU))
	}
}

func TestChargeOverLimitAtomic(t *testing.T) {
	a := NewAccount("app", Limits{Disk: 100})
	if err := a.Charge(Disk, 90); err != nil {
		t.Fatal(err)
	}
	err := a.Charge(Disk, 20)
	var ex *ErrExceeded
	if !errors.As(err, &ex) {
		t.Fatalf("error = %v, want *ErrExceeded", err)
	}
	if ex.Resource != Disk || ex.Principal != "app" {
		t.Errorf("ErrExceeded = %+v", ex)
	}
	// The failed charge must not have consumed anything.
	if a.Used(Disk) != 90 {
		t.Errorf("Used after failed charge = %d, want 90", a.Used(Disk))
	}
	// Exactly-at-limit succeeds.
	if err := a.Charge(Disk, 10); err != nil {
		t.Errorf("charge to exact limit failed: %v", err)
	}
}

func TestZeroLimitIsUnlimited(t *testing.T) {
	a := NewAccount("app", Unlimited())
	if err := a.Charge(Network, 1<<40); err != nil {
		t.Fatalf("unlimited charge failed: %v", err)
	}
	if a.Remaining(Network) != ^uint64(0) {
		t.Error("Remaining for unlimited dimension should be max")
	}
}

func TestRefund(t *testing.T) {
	a := NewAccount("app", Limits{Disk: 100})
	a.Charge(Disk, 80)
	a.Refund(Disk, 30)
	if a.Used(Disk) != 50 {
		t.Errorf("Used = %d, want 50", a.Used(Disk))
	}
	a.Refund(Disk, 1000) // over-refund clamps
	if a.Used(Disk) != 0 {
		t.Errorf("Used after over-refund = %d, want 0", a.Used(Disk))
	}
}

func TestResetAndSetLimits(t *testing.T) {
	a := NewAccount("app", Limits{CPU: 10})
	a.Charge(CPU, 10)
	a.Reset()
	if a.Used(CPU) != 0 {
		t.Error("Reset did not clear usage")
	}
	a.Charge(CPU, 5)
	a.SetLimits(Limits{CPU: 4}) // below current usage
	if err := a.Charge(CPU, 1); err == nil {
		t.Error("charge after lowering limit below usage succeeded")
	}
	if got := a.Limits(); got.CPU != 4 {
		t.Errorf("Limits().CPU = %d, want 4", got.CPU)
	}
}

func TestLimitsGetCoversAllResources(t *testing.T) {
	l := Limits{CPU: 1, Memory: 2, Disk: 3, Network: 4, Query: 5}
	want := map[Resource]uint64{CPU: 1, Memory: 2, Disk: 3, Network: 4, Query: 5}
	for _, r := range Resources {
		if l.Get(r) != want[r] {
			t.Errorf("Get(%s) = %d, want %d", r, l.Get(r), want[r])
		}
	}
	if l.Get(Resource("bogus")) != 0 {
		t.Error("unknown resource should report 0")
	}
}

func TestDefaultAppLimitsBounded(t *testing.T) {
	l := DefaultAppLimits()
	for _, r := range Resources {
		if l.Get(r) == 0 {
			t.Errorf("default app budget leaves %s unlimited", r)
		}
	}
}

func TestManagerCreatesOnDemand(t *testing.T) {
	m := NewManager(Limits{CPU: 7})
	a := m.Account("app1")
	if a.Limits().CPU != 7 {
		t.Error("default limits not applied")
	}
	if m.Account("app1") != a {
		t.Error("Account not idempotent")
	}
	m.SetLimits("app2", Limits{CPU: 99})
	if m.Account("app2").Limits().CPU != 99 {
		t.Error("SetLimits did not take")
	}
	ps := m.Principals()
	if len(ps) != 2 {
		t.Errorf("Principals = %v, want 2 entries", ps)
	}
}

func TestConcurrentChargesNeverOvershoot(t *testing.T) {
	a := NewAccount("app", Limits{CPU: 10_000})
	var wg sync.WaitGroup
	var granted sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 0
			for i := 0; i < 5000; i++ {
				if a.Charge(CPU, 1) == nil {
					n++
				}
			}
			granted.Store(g, n)
		}(g)
	}
	wg.Wait()
	total := 0
	granted.Range(func(_, v any) bool { total += v.(int); return true })
	if total != 10_000 {
		t.Errorf("granted %d charges, want exactly 10000", total)
	}
	if a.Used(CPU) != 10_000 {
		t.Errorf("Used = %d, want 10000", a.Used(CPU))
	}
}

func TestBucketBasics(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBucket(10, 5) // cap 10, 5 tokens/s
	b.SetClock(func() time.Time { return now })

	if !b.Take(10) {
		t.Fatal("full bucket refused capacity take")
	}
	if b.Take(1) {
		t.Fatal("empty bucket granted take")
	}
	now = now.Add(time.Second) // +5 tokens
	if !b.Take(5) {
		t.Fatal("refill not applied")
	}
	if b.Take(0.5) {
		t.Fatal("bucket granted more than refilled")
	}
}

func TestBucketCapsAtCapacity(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBucket(4, 100)
	b.SetClock(func() time.Time { return now })
	b.Take(4)
	now = now.Add(time.Hour)
	if got := b.Available(); got != 4 {
		t.Errorf("Available = %v, want capped 4", got)
	}
}

func TestBucketRejectsBadParams(t *testing.T) {
	for _, tc := range []struct{ c, r float64 }{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBucket(%v,%v) did not panic", tc.c, tc.r)
				}
			}()
			NewBucket(tc.c, tc.r)
		}()
	}
}

func TestBucketConcurrentTakes(t *testing.T) {
	b := NewBucket(1000, 0.001) // effectively no refill during the test
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < 1000; i++ {
				if b.Take(1) {
					n++
				}
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total > 1000 {
		t.Errorf("granted %d takes from 1000-token bucket", total)
	}
	if total < 1000 {
		t.Errorf("granted only %d takes, want 1000 (refill negligible)", total)
	}
}

func TestErrExceededMessage(t *testing.T) {
	e := &ErrExceeded{Principal: "app:x", Resource: CPU}
	if e.Error() == "" {
		t.Error("empty error")
	}
}
