package wvm

import (
	"errors"
	"testing"
)

// The pool-hygiene contract: after Reset, a recycled VM is
// observationally identical to a fresh one — no bytes, globals, or
// stack slots from the previous request may be visible. The request
// path leans on this (core pools VMs across users), so it is pinned
// here at the unit level.

func compileSrc(t *testing.T, src string) *Compiled {
	t.Helper()
	p, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestResetScrubsMemoryAndGlobals(t *testing.T) {
	// Poison: write sentinel bytes at a high address and a global, leave
	// values on the stack, and halt.
	poison := compileSrc(t, `
	    push 30000
	    push 0xEE
	    mstore
	    push 12345
	    store 17
	    push 7
	    push 8
	    halt
	`)
	// Probe: read the same address and global; exit nonzero if either
	// still holds the sentinel.
	probe := compileSrc(t, `
	    push 30000
	    mload
	    load 17
	    add
	    halt
	`)

	vm := New(poison.Program(), Config{MemSize: 32 << 10})
	if _, err := vm.Run(); err != nil {
		t.Fatal(err)
	}

	vm.Reset(probe, Config{MemSize: 32 << 10})
	got, err := vm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("recycled VM leaked state: probe saw %d, want 0", got)
	}
}

func TestResetScrubsStack(t *testing.T) {
	leaver := compileSrc(t, "push 1\npush 2\npush 3\nhalt\n")
	popper := compileSrc(t, "pop\nhalt\n")

	vm := New(leaver.Program(), Config{})
	if _, err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	vm.Reset(popper, Config{})
	if _, err := vm.Run(); !errors.Is(err, ErrStack) {
		t.Fatalf("pop on recycled VM = %v, want ErrStack (stack must start empty)", err)
	}
}

func TestResetScrubsDataSegmentTail(t *testing.T) {
	// First program has a long data segment; second has a short one. The
	// tail of the first must not bleed through.
	long := compileSrc(t, ".data d \"AAAAAAAAAAAAAAAA\"\nhalt\n")
	short := compileSrc(t, ".data d \"B\"\npush 5\nmload\nhalt\n")

	vm := New(long.Program(), Config{})
	if _, err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	vm.Reset(short, Config{})
	got, err := vm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("byte 5 = %d after reset, want 0 (old data segment leaked)", got)
	}
}

func TestResetAllowsRerun(t *testing.T) {
	c := compileSrc(t, "push 42\nhalt\n")
	vm := New(c.Program(), Config{})
	for i := 0; i < 3; i++ {
		got, err := vm.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got != 42 {
			t.Fatalf("run %d = %d", i, got)
		}
		vm.Reset(c, Config{})
	}
}

func TestResetClearsHostAndSteps(t *testing.T) {
	c := compileSrc(t, "push 1\npush 2\nadd\nhalt\n")
	vm := New(c.Program(), Config{})
	vm.Host = "request-context"
	if _, err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.Steps() == 0 {
		t.Fatal("Steps not counted")
	}
	vm.Reset(c, Config{})
	if vm.Host != nil {
		t.Error("Reset kept Host")
	}
	if vm.Steps() != 0 {
		t.Error("Reset kept step count")
	}
}
