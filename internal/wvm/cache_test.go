package wvm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func testProgram(t *testing.T) *Program {
	t.Helper()
	p, err := Assemble("push 41\npush 1\nadd\nhalt\n", nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8)
	prog := testProgram(t)
	var loads atomic.Uint64

	const goroutines = 32
	var wg sync.WaitGroup
	comps := make([]*Compiled, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			comp, err := c.Get("h1", func() (*Program, error) {
				loads.Add(1)
				return prog, nil
			})
			if err != nil {
				t.Errorf("Get: %v", err)
			}
			comps[i] = comp
		}(i)
	}
	wg.Wait()

	if n := loads.Load(); n != 1 {
		t.Errorf("load ran %d times, want 1", n)
	}
	if n := c.Compiles(); n != 1 {
		t.Errorf("Compiles() = %d, want 1", n)
	}
	for i := 1; i < goroutines; i++ {
		if comps[i] != comps[0] {
			t.Fatalf("goroutine %d got a different *Compiled", i)
		}
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	prog := testProgram(t)
	load := func() (*Program, error) { return prog, nil }

	for _, h := range []string{"a", "b", "c"} { // c evicts a
		if _, err := c.Get(h, load); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	// b is still cached; a re-compiles.
	before := c.Compiles()
	if _, err := c.Get("b", load); err != nil {
		t.Fatal(err)
	}
	if c.Compiles() != before {
		t.Error("hit on b recompiled")
	}
	if _, err := c.Get("a", load); err != nil {
		t.Fatal(err)
	}
	if c.Compiles() != before+1 {
		t.Error("evicted a was not recompiled")
	}
}

func TestCacheLRUTouchOnGet(t *testing.T) {
	c := NewCache(2)
	prog := testProgram(t)
	load := func() (*Program, error) { return prog, nil }

	c.Get("a", load)
	c.Get("b", load)
	c.Get("a", load) // touch a: now b is LRU
	c.Get("c", load) // evicts b
	before := c.Compiles()
	c.Get("a", load)
	if c.Compiles() != before {
		t.Error("a should have survived eviction")
	}
	c.Get("b", load)
	if c.Compiles() != before+1 {
		t.Error("b should have been evicted")
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(4)
	prog := testProgram(t)
	boom := errors.New("transient")
	calls := 0
	flaky := func() (*Program, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return prog, nil
	}
	if _, err := c.Get("h", flaky); !errors.Is(err, boom) {
		t.Fatalf("first Get err = %v, want %v", err, boom)
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("failed load left %d entries cached", n)
	}
	comp, err := c.Get("h", flaky)
	if err != nil || comp == nil {
		t.Fatalf("retry Get = %v, %v", comp, err)
	}
	if calls != 2 {
		t.Errorf("load calls = %d, want 2", calls)
	}
}

func TestCacheCompileErrorPropagates(t *testing.T) {
	c := NewCache(4)
	// Invalid program: jump into the middle of an instruction.
	bad := &Program{Code: []byte{byte(OpJmp), 99, 0, 0, 0}}
	if _, err := c.Get("bad", func() (*Program, error) { return bad, nil }); err == nil {
		t.Fatal("want verify error from Compile")
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("failed compile left %d entries cached", n)
	}
}

func TestCacheCapMinimumOne(t *testing.T) {
	c := NewCache(0)
	prog := testProgram(t)
	for i := 0; i < 5; i++ {
		if _, err := c.Get(fmt.Sprintf("h%d", i), func() (*Program, error) { return prog, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}
