package wvm

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file implements the W5 Assembly text format: the form in which
// open-source developers publish modules for audit (§3.2), and which
// cmd/w5asm compiles for upload.
//
// Syntax, one statement per line:
//
//	; comment (also #)
//	.data name "string with \n \t \\ \" \xNN escapes"
//	label:
//	    push 42          ; decimal or 0x hex immediate
//	    push @name       ; address of a .data item
//	    push #name       ; length of a .data item
//	    jmp  label       ; likewise jz, jnz, call
//	    load 3           ; global slot index
//	    sys  7           ; syscall by number...
//	    sys  fs_read     ; ...or by name, given a syscall name table
//	    halt
//
// Labels may appear on the same line as an instruction ("loop: dup").

// Assemble compiles source text into a Program. sysNames optionally
// maps syscall names to numbers for "sys name" forms; pass nil to
// require numeric syscalls.
func Assemble(src string, sysNames map[string]uint16) (*Program, error) {
	b := NewBuilder()
	dataLens := make(map[string]int64)

	lines := strings.Split(src, "\n")
	// First pass: data directives only (so @name resolves regardless of
	// where .data appears).
	for ln, raw := range lines {
		line := stripComment(raw)
		fields := strings.Fields(line)
		if len(fields) == 0 || fields[0] != ".data" {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, ".data"))
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return nil, fmt.Errorf("wvm: line %d: .data needs a name and a value", ln+1)
		}
		name := rest[:sp]
		valSrc := strings.TrimSpace(rest[sp:])
		val, err := parseStringLit(valSrc)
		if err != nil {
			return nil, fmt.Errorf("wvm: line %d: %v", ln+1, err)
		}
		b.DataString(name, val)
		dataLens[name] = int64(len(val))
	}

	// Second pass: code.
	for ln, raw := range lines {
		line := strings.TrimSpace(stripComment(raw))
		if line == "" || strings.HasPrefix(line, ".data") {
			continue
		}
		// Leading "label:" (possibly followed by an instruction).
		for {
			ci := strings.Index(line, ":")
			if ci < 0 || strings.ContainsAny(line[:ci], " \t\"") {
				break
			}
			b.Label(line[:ci])
			line = strings.TrimSpace(line[ci+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		mnemonic := strings.ToLower(fields[0])
		op, ok := opByName[mnemonic]
		if !ok {
			return nil, fmt.Errorf("wvm: line %d: unknown instruction %q", ln+1, mnemonic)
		}
		arg := ""
		if len(fields) > 1 {
			arg = fields[1]
		}
		if len(fields) > 2 {
			return nil, fmt.Errorf("wvm: line %d: too many operands", ln+1)
		}
		if err := emit(b, op, arg, sysNames, dataLens); err != nil {
			return nil, fmt.Errorf("wvm: line %d: %v", ln+1, err)
		}
	}
	return b.Build()
}

func emit(b *Builder, op Opcode, arg string, sysNames map[string]uint16, dataLens map[string]int64) error {
	w := operandWidth(op)
	if w == 0 {
		if arg != "" {
			return fmt.Errorf("%s takes no operand", op)
		}
		b.Op(op)
		return nil
	}
	if arg == "" {
		return fmt.Errorf("%s requires an operand", op)
	}
	switch op {
	case OpPush:
		switch arg[0] {
		case '@':
			b.PushData(arg[1:])
		case '#':
			n, ok := dataLens[arg[1:]]
			if !ok {
				return fmt.Errorf("unknown data label %q", arg[1:])
			}
			b.Push(n)
		default:
			v, err := parseInt(arg)
			if err != nil {
				return err
			}
			b.Push(v)
		}
	case OpJmp, OpJz, OpJnz, OpCall:
		b.Jump(op, arg)
	case OpLoad, OpStore:
		v, err := parseInt(arg)
		if err != nil {
			return err
		}
		if v < 0 || v >= globalSlots {
			return fmt.Errorf("global index %d out of range", v)
		}
		b.Global(op, uint16(v))
	case OpSys:
		if v, err := parseInt(arg); err == nil {
			if v < 0 || v > 0xFFFF {
				return fmt.Errorf("syscall number %d out of range", v)
			}
			b.Sys(uint16(v))
			return nil
		}
		num, ok := sysNames[arg]
		if !ok {
			return fmt.Errorf("unknown syscall %q", arg)
		}
		b.Sys(num)
	}
	return nil
}

// stripComment removes trailing comments. ';' always starts a comment
// outside string literals. '#' starts one only when not immediately
// followed by an identifier character, so the length reference in
// "push #greeting" survives while "push 1 # one" is trimmed.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if i == 0 || line[i-1] != '\\' {
				inStr = !inStr
			}
		case ';':
			if !inStr {
				return line[:i]
			}
		case '#':
			if !inStr && !(i+1 < len(line) && isIdentChar(line[i+1])) {
				return line[:i]
			}
		}
	}
	return line
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(c >= '0' && c <= '9')
}

func parseInt(s string) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func parseStringLit(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("malformed string literal %s", s)
	}
	body := s[1 : len(s)-1]
	var out strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("dangling escape")
		}
		switch body[i] {
		case 'n':
			out.WriteByte('\n')
		case 't':
			out.WriteByte('\t')
		case 'r':
			out.WriteByte('\r')
		case '\\':
			out.WriteByte('\\')
		case '"':
			out.WriteByte('"')
		case '0':
			out.WriteByte(0)
		case 'x':
			if i+2 >= len(body) {
				return "", fmt.Errorf("truncated \\x escape")
			}
			v, err := strconv.ParseUint(body[i+1:i+3], 16, 8)
			if err != nil {
				return "", fmt.Errorf("bad \\x escape")
			}
			out.WriteByte(byte(v))
			i += 2
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return out.String(), nil
}

// Disassemble renders a program as auditable W5 Assembly. Jump targets
// get synthetic labels L<offset>; the data segment is emitted as one
// .data directive. Disassembling then reassembling yields byte-identical
// code and data segments — the property that makes "audit the listing,
// pin the hash" sound.
func Disassemble(p *Program) string {
	var sb strings.Builder
	targets := make(map[int]bool)
	for i := 0; i < len(p.Code); {
		op := Opcode(p.Code[i])
		switch op {
		case OpJmp, OpJz, OpJnz, OpCall:
			targets[int(binary.LittleEndian.Uint32(p.Code[i+1:]))] = true
		}
		i += 1 + operandWidth(op)
	}
	if len(p.Data) > 0 {
		sb.WriteString(".data d0 \"")
		sb.WriteString(escapeString(string(p.Data)))
		sb.WriteString("\"\n")
	}
	var offs []int
	for t := range targets {
		offs = append(offs, t)
	}
	sort.Ints(offs)

	for i := 0; i < len(p.Code); {
		if targets[i] {
			fmt.Fprintf(&sb, "L%d:\n", i)
		}
		op := Opcode(p.Code[i])
		switch op {
		case OpPush:
			fmt.Fprintf(&sb, "    push %d\n", int64(binary.LittleEndian.Uint64(p.Code[i+1:])))
		case OpJmp, OpJz, OpJnz, OpCall:
			fmt.Fprintf(&sb, "    %s L%d\n", op, binary.LittleEndian.Uint32(p.Code[i+1:]))
		case OpLoad, OpStore:
			fmt.Fprintf(&sb, "    %s %d\n", op, binary.LittleEndian.Uint16(p.Code[i+1:]))
		case OpSys:
			fmt.Fprintf(&sb, "    sys %d\n", binary.LittleEndian.Uint16(p.Code[i+1:]))
		default:
			fmt.Fprintf(&sb, "    %s\n", op)
		}
		i += 1 + operandWidth(op)
	}
	// A label exactly at the end of code (halt-by-falloff target).
	if targets[len(p.Code)] {
		fmt.Fprintf(&sb, "L%d:\n", len(p.Code))
	}
	return sb.String()
}

func escapeString(s string) string {
	var out strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\':
			out.WriteString(`\\`)
		case c == '"':
			out.WriteString(`\"`)
		case c == '\n':
			out.WriteString(`\n`)
		case c == '\t':
			out.WriteString(`\t`)
		case c == '\r':
			out.WriteString(`\r`)
		case c < 0x20 || c >= 0x7F:
			fmt.Fprintf(&out, `\x%02x`, c)
		default:
			out.WriteByte(c)
		}
	}
	return out.String()
}
