package wvm

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "frobnicate"},
		{"push no operand", "push"},
		{"halt with operand", "halt 3"},
		{"bad integer", "push 12abc"},
		{"undefined jump", "jmp nowhere"},
		{"duplicate label", "a:\na:\nhalt"},
		{"unknown data ref", "push @nope"},
		{"unknown data len", "push #nope"},
		{"global out of range", "load 70000"},
		{"syscall out of range", "sys 70000"},
		{"unknown sys name", "sys frob"},
		{"data without value", ".data x"},
		{"data bad literal", `.data x hello`},
		{"data bad escape", `.data x "\q"`},
		{"data dangling escape", `.data x "abc\`},
		{"duplicate data label", ".data x \"a\"\n.data x \"b\""},
		{"too many operands", "push 1 2"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Assemble(tt.src, nil); err == nil {
				t.Errorf("Assemble(%q) succeeded", tt.src)
			}
		})
	}
}

func TestAssembleCommentsAndLabels(t *testing.T) {
	src := `
; full line comment
# another full line comment
start:  push 1      ; trailing comment
        push 2      # trailing hash comment
        add
        jmp end     ; forward reference
        push 99
end:    halt
`
	p, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(p, Config{}).Run()
	if err != nil || v != 3 {
		t.Errorf("run = %d, %v; want 3", v, err)
	}
}

func TestLabelOnOwnLineAndInline(t *testing.T) {
	src := "a:\nb: push 1\njmp c\nc: halt"
	if _, err := Assemble(src, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringEscapes(t *testing.T) {
	src := `.data s "a\nb\tc\\d\"e\x41\0"
push @s
halt`
	p, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := "a\nb\tc\\d\"eA\x00"
	if string(p.Data) != want {
		t.Errorf("data = %q, want %q", p.Data, want)
	}
}

func TestVerifyRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		code []byte
	}{
		{"invalid opcode", []byte{255}},
		{"truncated push", []byte{byte(OpPush), 1, 2}},
		{"truncated jmp", []byte{byte(OpJmp), 0}},
		{"jump mid-instruction", func() []byte {
			b := NewBuilder()
			b.Push(1)
			p, _ := b.Build()
			code := append(p.Code, byte(OpJmp), 4, 0, 0, 0) // target 4 is inside the push
			return code
		}()},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			p := &Program{Code: tt.code}
			if err := p.Verify(); err == nil {
				t.Error("Verify accepted bad code")
			}
		})
	}
}

func TestVerifyAcceptsJumpToEnd(t *testing.T) {
	b := NewBuilder()
	b.Jump(OpJmp, "end")
	b.Label("end")
	if _, err := b.Build(); err != nil {
		t.Fatalf("jump-to-end rejected: %v", err)
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	src := `.data msg "hello world"
start: push @msg
       push #msg
       sys 1
       jz start
       halt`
	table := map[string]uint16{"x": 1}
	_ = table
	p, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	blob := p.Marshal()
	q, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Code, q.Code) || !bytes.Equal(p.Data, q.Data) {
		t.Error("round trip changed program")
	}
	if p.Hash() != q.Hash() {
		t.Error("hash not stable across round trip")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	p, _ := Assemble("push 1\nhalt", nil)
	blob := p.Marshal()

	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil blob accepted")
	}
	if _, err := Unmarshal([]byte("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[4] = 9 // version
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := Unmarshal(blob[:len(blob)-1]); err == nil {
		t.Error("truncated blob accepted")
	}
	if _, err := Unmarshal(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Corrupt an opcode: verification at unmarshal must catch it.
	bad2 := append([]byte(nil), blob...)
	bad2[5+1] = 255 // inside code segment (after magic + codeLen varint)
	if _, err := Unmarshal(bad2); err == nil {
		t.Error("corrupt code accepted")
	}
}

func TestDisassembleReassembleRoundTrip(t *testing.T) {
	srcs := []string{
		"push 1\nhalt",
		`.data s "bytes\x00\xff"
loop: push @s
      mload
      jz end
      push 1
      add
      jnz loop
end:  halt`,
		`push -42
     dup
     call f
     halt
f:   push 2
     mul
     ret`,
		"load 3\nstore 4\nsys 17\nmsize\nhalt",
	}
	for _, src := range srcs {
		p, err := Assemble(src, nil)
		if err != nil {
			t.Fatalf("assemble %q: %v", src, err)
		}
		listing := Disassemble(p)
		q, err := Assemble(listing, nil)
		if err != nil {
			t.Fatalf("reassemble listing:\n%s\nerror: %v", listing, err)
		}
		if !bytes.Equal(p.Code, q.Code) {
			t.Errorf("code changed after disasm round trip:\n%s", listing)
		}
		if !bytes.Equal(p.Data, q.Data) {
			t.Errorf("data changed after disasm round trip: %q vs %q", p.Data, q.Data)
		}
	}
}

// randomProgram builds a random but verifiable program for property
// tests: straight-line arithmetic with a final halt.
type randomProgram struct{ p *Program }

func (randomProgram) Generate(r *rand.Rand, _ int) reflect.Value {
	b := NewBuilder()
	straight := []Opcode{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe, OpLt, OpGt, OpDup, OpSwap, OpPop, OpNeg, OpNot, OpMsize}
	if r.Intn(2) == 0 {
		b.DataString("d", string(randBytes(r, r.Intn(32))))
	}
	// Seed enough stack that random ops rarely underflow (underflow is
	// fine at run time; these tests only exercise encode/decode).
	for i := 0; i < 8; i++ {
		b.Push(r.Int63() - (1 << 62))
	}
	for i := 0; i < r.Intn(40); i++ {
		switch r.Intn(4) {
		case 0:
			b.Push(r.Int63())
		case 1:
			b.Global(OpLoad, uint16(r.Intn(globalSlots)))
		case 2:
			b.Global(OpStore, uint16(r.Intn(globalSlots)))
		default:
			b.Op(straight[r.Intn(len(straight))])
		}
	}
	b.Op(OpHalt)
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return reflect.ValueOf(randomProgram{p})
}

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(rp randomProgram) bool {
		q, err := Unmarshal(rp.p.Marshal())
		if err != nil {
			return false
		}
		return bytes.Equal(q.Code, rp.p.Code) && bytes.Equal(q.Data, rp.p.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickDisasmRoundTrip(t *testing.T) {
	f := func(rp randomProgram) bool {
		listing := Disassemble(rp.p)
		q, err := Assemble(listing, nil)
		if err != nil {
			return false
		}
		return bytes.Equal(q.Code, rp.p.Code) && bytes.Equal(q.Data, rp.p.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickRandomProgramsTerminate(t *testing.T) {
	// Any verified straight-line program must terminate within gas and
	// never panic, whatever its stack behaviour.
	f := func(rp randomProgram) bool {
		vm := New(rp.p, Config{Gas: 10_000})
		_, _ = vm.Run() // errors (underflow etc.) are acceptable; panics are not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDisassembleShowsDataAndLabels(t *testing.T) {
	src := `.data s "hi"
loop: push 1
      jnz loop
      halt`
	p, _ := Assemble(src, nil)
	listing := Disassemble(p)
	for _, want := range []string{".data d0 \"hi\"", "L0:", "jnz L0", "halt"} {
		if !strings.Contains(listing, want) {
			t.Errorf("listing missing %q:\n%s", want, listing)
		}
	}
}

func TestHashDistinguishesPrograms(t *testing.T) {
	p1, _ := Assemble("push 1\nhalt", nil)
	p2, _ := Assemble("push 2\nhalt", nil)
	if p1.Hash() == p2.Hash() {
		t.Error("different programs share a hash")
	}
	if len(p1.Hash()) != 64 {
		t.Errorf("hash length = %d, want 64 hex chars", len(p1.Hash()))
	}
}
