package wvm

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Program is an executable W5 Assembly module: a verified code segment
// plus an initial data segment that is copied to the low end of linear
// memory at startup.
type Program struct {
	Code []byte
	Data []byte
}

// programMagic identifies serialized modules ("W5VM" followed by a
// format version byte).
var programMagic = []byte{'W', '5', 'V', 'M', 1}

// Hash returns the SHA-256 of the serialized module, the identity used
// by the registry: users who audit a listing pin this hash, and the
// platform guarantees the code that runs is "exactly the code that the
// user has audited" (§2) by refusing to run anything else under it.
func (p *Program) Hash() string {
	h := sha256.Sum256(p.Marshal())
	return hex.EncodeToString(h[:])
}

// Marshal serializes the module:
//
//	magic(5) | codeLen uvarint | code | dataLen uvarint | data
func (p *Program) Marshal() []byte {
	out := make([]byte, 0, len(programMagic)+len(p.Code)+len(p.Data)+10)
	out = append(out, programMagic...)
	out = binary.AppendUvarint(out, uint64(len(p.Code)))
	out = append(out, p.Code...)
	out = binary.AppendUvarint(out, uint64(len(p.Data)))
	out = append(out, p.Data...)
	return out
}

// Unmarshal parses and verifies a serialized module. The code segment
// is statically verified (see Verify); a module that fails verification
// is rejected at upload time, never at run time.
func Unmarshal(b []byte) (*Program, error) {
	if len(b) < len(programMagic) || string(b[:4]) != "W5VM" {
		return nil, fmt.Errorf("wvm: bad magic")
	}
	if b[4] != programMagic[4] {
		return nil, fmt.Errorf("wvm: unsupported module version %d", b[4])
	}
	rest := b[len(programMagic):]
	codeLen, n := binary.Uvarint(rest)
	if n <= 0 || codeLen > uint64(len(rest)) {
		return nil, fmt.Errorf("wvm: corrupt code length")
	}
	rest = rest[n:]
	if uint64(len(rest)) < codeLen {
		return nil, fmt.Errorf("wvm: truncated code segment")
	}
	code := append([]byte(nil), rest[:codeLen]...)
	rest = rest[codeLen:]
	dataLen, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("wvm: corrupt data length")
	}
	rest = rest[n:]
	if uint64(len(rest)) != dataLen {
		return nil, fmt.Errorf("wvm: data segment length mismatch")
	}
	p := &Program{Code: code, Data: append([]byte(nil), rest...)}
	if err := p.Verify(); err != nil {
		return nil, err
	}
	return p, nil
}

// Verify statically checks the code segment: every byte position
// reachable as an instruction must hold a valid opcode with its full
// operand in bounds, and every jump/call target must land on an
// instruction boundary. Verification makes the interpreter's fetch
// loop panic-free without per-step bounds branching on operands.
func (p *Program) Verify() error {
	boundaries := make(map[int]bool)
	i := 0
	for i < len(p.Code) {
		boundaries[i] = true
		op := Opcode(p.Code[i])
		if !op.Valid() {
			return fmt.Errorf("wvm: invalid opcode %d at offset %d", p.Code[i], i)
		}
		w := operandWidth(op)
		if i+1+w > len(p.Code) {
			return fmt.Errorf("wvm: truncated operand for %s at offset %d", op, i)
		}
		i += 1 + w
	}
	// Second pass: jump targets must be instruction boundaries (or
	// exactly len(code), which halts).
	i = 0
	for i < len(p.Code) {
		op := Opcode(p.Code[i])
		w := operandWidth(op)
		switch op {
		case OpJmp, OpJz, OpJnz, OpCall:
			t := int(binary.LittleEndian.Uint32(p.Code[i+1 : i+5]))
			if t != len(p.Code) && !boundaries[t] {
				return fmt.Errorf("wvm: %s at %d targets mid-instruction offset %d", op, i, t)
			}
		}
		i += 1 + w
	}
	return nil
}

// Builder assembles programs programmatically; the text assembler in
// asm.go is a thin layer over it. The zero value is ready to use.
type Builder struct {
	code   []byte
	data   []byte
	labels map[string]int   // name -> code offset
	fixups map[int]string   // operand offset -> label
	dataLa map[string]int64 // data label -> memory address
	errs   []error
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		labels: make(map[string]int),
		fixups: make(map[int]string),
		dataLa: make(map[string]int64),
	}
}

// Label defines a code label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("wvm: duplicate label %q", name))
	}
	b.labels[name] = len(b.code)
	return b
}

// Op emits a no-operand instruction.
func (b *Builder) Op(op Opcode) *Builder {
	b.code = append(b.code, byte(op))
	return b
}

// Push emits push imm.
func (b *Builder) Push(v int64) *Builder {
	b.code = append(b.code, byte(OpPush))
	b.code = binary.LittleEndian.AppendUint64(b.code, uint64(v))
	return b
}

// PushData emits push of a data label's memory address.
func (b *Builder) PushData(label string) *Builder {
	addr, ok := b.dataLa[label]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("wvm: unknown data label %q", label))
		addr = 0
	}
	return b.Push(addr)
}

// Jump emits a control transfer to a code label (resolved at Build).
func (b *Builder) Jump(op Opcode, label string) *Builder {
	switch op {
	case OpJmp, OpJz, OpJnz, OpCall:
	default:
		b.errs = append(b.errs, fmt.Errorf("wvm: %s is not a jump", op))
		return b
	}
	b.code = append(b.code, byte(op))
	b.fixups[len(b.code)] = label
	b.code = append(b.code, 0, 0, 0, 0)
	return b
}

// Global emits load/store of global slot idx.
func (b *Builder) Global(op Opcode, idx uint16) *Builder {
	if op != OpLoad && op != OpStore {
		b.errs = append(b.errs, fmt.Errorf("wvm: %s is not a global op", op))
		return b
	}
	b.code = append(b.code, byte(op))
	b.code = binary.LittleEndian.AppendUint16(b.code, idx)
	return b
}

// Sys emits a syscall.
func (b *Builder) Sys(num uint16) *Builder {
	b.code = append(b.code, byte(OpSys))
	b.code = binary.LittleEndian.AppendUint16(b.code, num)
	return b
}

// DataString appends a string to the data segment under a label and
// returns its address; programs reference it with PushData. The length
// is available to the program by convention (store it separately or use
// DataStringZ for NUL-terminated).
func (b *Builder) DataString(label, s string) int64 {
	addr := int64(len(b.data))
	if _, dup := b.dataLa[label]; dup {
		b.errs = append(b.errs, fmt.Errorf("wvm: duplicate data label %q", label))
	}
	b.dataLa[label] = addr
	b.data = append(b.data, s...)
	return addr
}

// DataLen returns the address just past the current data segment.
func (b *Builder) DataLen() int64 { return int64(len(b.data)) }

// Build resolves fixups and verifies the program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for off, label := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("wvm: undefined label %q", label)
		}
		binary.LittleEndian.PutUint32(b.code[off:], uint32(target))
	}
	p := &Program{Code: append([]byte(nil), b.code...), Data: append([]byte(nil), b.data...)}
	if err := p.Verify(); err != nil {
		return nil, err
	}
	return p, nil
}
