package wvm

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Cache is a bounded compiled-program cache keyed by program hash (the
// registry's content address). It exists so the request path compiles
// each published program once, no matter how many requests or apps
// reference it, and so a hostile sequence of uploads cannot grow the
// compiled-code heap without bound (LRU eviction past Cap).
//
// Concurrent Gets for the same hash single-flight the load+compile: the
// first caller runs it, the rest block on it and share the result — no
// thundering herd when a cold program goes viral. Failed loads are not
// cached, so a transient error does not poison the hash.
type Cache struct {
	mu       sync.Mutex
	cap      int
	entries  map[string]*cacheEntry
	order    *list.List // front = most recently used
	compiles atomic.Uint64
}

type cacheEntry struct {
	hash string
	elem *list.Element
	once sync.Once
	comp *Compiled
	err  error
}

// NewCache returns a cache bounded to max compiled programs (min 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		cap:     max,
		entries: make(map[string]*cacheEntry, max),
		order:   list.New(),
	}
}

// Get returns the compiled program for hash, invoking load (then
// Compile) at most once per cached lifetime of the hash. load runs
// outside the cache lock.
func (c *Cache) Get(hash string, load func() (*Program, error)) (*Compiled, error) {
	c.mu.Lock()
	e, ok := c.entries[hash]
	if ok {
		c.order.MoveToFront(e.elem)
	} else {
		e = &cacheEntry{hash: hash}
		e.elem = c.order.PushFront(e)
		c.entries[hash] = e
		for c.order.Len() > c.cap {
			back := c.order.Back()
			victim := back.Value.(*cacheEntry)
			c.order.Remove(back)
			delete(c.entries, victim.hash)
		}
	}
	c.mu.Unlock()

	e.once.Do(func() {
		c.compiles.Add(1)
		p, err := load()
		if err == nil {
			e.comp, e.err = Compile(p)
		} else {
			e.err = err
		}
		if e.err != nil {
			// Do not cache failures: drop the entry (if it is still
			// ours) so the next Get retries the load.
			c.mu.Lock()
			if cur, ok := c.entries[hash]; ok && cur == e {
				c.order.Remove(e.elem)
				delete(c.entries, hash)
			}
			c.mu.Unlock()
		}
	})
	return e.comp, e.err
}

// Len reports the number of cached programs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Compiles reports how many load+compile operations have run — the
// singleflight tests assert this stays at one per hash under
// concurrency.
func (c *Cache) Compiles() uint64 { return c.compiles.Load() }
