package wvm

import "encoding/binary"

// This file is the ahead-of-time half of the dispatch loop: Compile
// turns verified bytecode into a flat []instr the interpreter walks
// without re-decoding immediates, and fuses the three pair patterns
// that dominate real W5 Assembly (constant-operand arithmetic,
// global-operand arithmetic, and compare-and-branch) into single
// superinstructions. See README.md for the dispatch design note.

// instr is one pre-decoded (possibly fused) instruction.
type instr struct {
	a    int64  // immediate / branch target (instruction index) / global / sys num
	b    int64  // fused second operand (binop opcode, or cmp<<1|jnz-flag)
	off  int32  // byte offset of the source instruction, for fault reports
	op   Opcode // opcode, possibly one of the fused internal codes below
	cost uint8  // gas units: how many source instructions this covers
}

// Internal fused opcodes. They never appear in program bytes — only in
// compiled instruction streams — so they live above opMax.
const (
	// opPushBin = OpPush imm; binop. Pops one, pushes one.
	opPushBin Opcode = opMax + iota
	// opLoadBin = OpLoad g; binop. Pops one, pushes one.
	opLoadBin
	// opCmpJmp = comparison; OpJz/OpJnz. Pops two, branches.
	opCmpJmp
)

// Compiled is a Program lowered to the interpreter's internal form. One
// Compiled is immutable and safely shared by any number of VMs — it is
// what the platform's program cache stores, keyed by Program.Hash.
type Compiled struct {
	prog *Program
	ins  []instr
}

// Program returns the source program (shared, do not mutate).
func (c *Compiled) Program() *Program { return c.prog }

// isBinop reports whether op pops two values and pushes one result.
// (OpNeg and OpNot are unary and excluded.)
func isBinop(op Opcode) bool {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

func isCmp(op Opcode) bool { return op >= OpEq && op <= OpGe }

// Compile verifies p and lowers it. Unlike the bytecode walk, the
// compiled stream carries branch targets as instruction indexes, so the
// hot loop never touches the raw code bytes. Fusion never crosses a
// branch target: a jump that lands on the second instruction of a
// would-be pair keeps both instructions unfused.
func Compile(p *Program) (*Compiled, error) {
	if err := p.Verify(); err != nil {
		return nil, err
	}
	code := p.Code

	// Pass 1: mark branch targets (fusion barriers). Verify guarantees
	// every target is an instruction boundary or len(code).
	targets := make([]bool, len(code)+1)
	for i := 0; i < len(code); {
		op := Opcode(code[i])
		switch op {
		case OpJmp, OpJz, OpJnz, OpCall:
			targets[binary.LittleEndian.Uint32(code[i+1:])] = true
		}
		i += 1 + operandWidth(op)
	}

	// Pass 2: decode and fuse. off2idx maps every source byte offset to
	// the compiled instruction covering it, for branch retargeting.
	off2idx := make([]int32, len(code)+1)
	ins := make([]instr, 0, len(code)/2+1)
	for i := 0; i < len(code); {
		off2idx[i] = int32(len(ins))
		op := Opcode(code[i])
		w := operandWidth(op)
		next := i + 1 + w
		if next < len(code) && !targets[next] {
			nop := Opcode(code[next])
			fused := instr{off: int32(i), cost: 2}
			switch {
			case op == OpPush && isBinop(nop):
				fused.op, fused.a, fused.b = opPushBin,
					int64(binary.LittleEndian.Uint64(code[i+1:])), int64(nop)
			case op == OpLoad && isBinop(nop):
				fused.op, fused.a, fused.b = opLoadBin,
					int64(binary.LittleEndian.Uint16(code[i+1:])), int64(nop)
			case isCmp(op) && (nop == OpJz || nop == OpJnz):
				flag := int64(0)
				if nop == OpJnz {
					flag = 1
				}
				fused.op = opCmpJmp
				fused.a = int64(binary.LittleEndian.Uint32(code[next+1:]))
				fused.b = int64(op)<<1 | flag
			}
			if fused.op != 0 {
				ins = append(ins, fused)
				// The consumed second instruction is never a branch
				// target (checked above), but map its offset anyway so
				// off2idx is total.
				off2idx[next] = int32(len(ins) - 1)
				i = next + 1 + operandWidth(nop)
				continue
			}
		}
		in := instr{op: op, off: int32(i), cost: 1}
		switch w {
		case 8:
			in.a = int64(binary.LittleEndian.Uint64(code[i+1:]))
		case 4:
			in.a = int64(binary.LittleEndian.Uint32(code[i+1:]))
		case 2:
			in.a = int64(binary.LittleEndian.Uint16(code[i+1:]))
		}
		ins = append(ins, in)
		i = next
	}
	off2idx[len(code)] = int32(len(ins))

	// Pass 3: branch targets byte offset -> instruction index.
	for j := range ins {
		switch ins[j].op {
		case OpJmp, OpJz, OpJnz, OpCall, opCmpJmp:
			ins[j].a = int64(off2idx[ins[j].a])
		}
	}
	return &Compiled{prog: p, ins: ins}, nil
}

// faultSite is the byte offset and opcode reported in a fault message.
// For fused pairs it attributes err to the half an unfused run would
// blame: a stack-limit fault (or a bad global for opLoadBin) belongs to
// the first half, everything else — stack underflow, div-by-zero — to
// the second, whose offset follows the first's operand. opCmpJmp can
// only underflow on the comparison, its first half.
func (in *instr) faultSite(err error) (int32, Opcode) {
	switch in.op {
	case opPushBin:
		if err == ErrStackLimit {
			return in.off, OpPush
		}
		return in.off + 1 + int32(operandWidth(OpPush)), Opcode(in.b)
	case opLoadBin:
		if err == ErrStackLimit || err == ErrGlobal {
			return in.off, OpLoad
		}
		return in.off + 1 + int32(operandWidth(OpLoad)), Opcode(in.b)
	case opCmpJmp:
		return in.off, Opcode(in.b >> 1)
	}
	return in.off, in.op
}
