package wvm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"w5/internal/quota"
)

// Execution errors. ErrGas and ErrMemQuota are quota exhaustion;
// the rest are program faults. All of them terminate the run.
var (
	ErrGas        = errors.New("wvm: out of gas (CPU quota exhausted)")
	ErrMemQuota   = errors.New("wvm: memory quota exhausted")
	ErrStack      = errors.New("wvm: stack underflow")
	ErrStackLimit = errors.New("wvm: stack overflow")
	ErrCallDepth  = errors.New("wvm: call depth exceeded")
	ErrDivZero    = errors.New("wvm: division by zero")
	ErrMemBounds  = errors.New("wvm: memory access out of bounds")
	ErrGlobal     = errors.New("wvm: global index out of range")
	ErrBadSys     = errors.New("wvm: unknown syscall")
)

// Syscall is a platform-provided host function. It receives the VM (for
// memory access) and its popped arguments, and returns values to push.
// Returning an error aborts the program; syscalls that merely fail
// should return a status code instead, so untrusted code can handle it.
type Syscall struct {
	Name  string
	Arity int // values popped from the stack, passed in push order
	Fn    func(vm *VM, args []int64) ([]int64, error)
}

// SyscallTable maps syscall numbers to implementations. The platform
// builds one per process (closing over the process's kernel identity)
// and hands it to the VM.
type SyscallTable map[uint16]Syscall

// Config bounds a VM run.
type Config struct {
	// MemSize is the linear memory size in bytes (default 64 KiB).
	MemSize int
	// MaxStack is the operand stack depth limit (default 1024).
	MaxStack int
	// MaxCalls is the call stack depth limit (default 256).
	MaxCalls int
	// Gas is the instruction budget for this run; 0 means unlimited.
	Gas uint64
	// Account, if non-nil, is charged quota.CPU per instruction (in
	// chunks of GasChunk) and quota.Memory once for MemSize. Charges
	// failing => run aborts with ErrGas / ErrMemQuota.
	Account *quota.Account
	// Syscalls is the host interface; nil means no syscalls available.
	Syscalls SyscallTable
}

// GasChunk is how many instructions execute between quota charges; the
// tail is charged at exit. Chunking keeps the mutex off the hot path
// while bounding overshoot to one chunk.
const GasChunk = 1024

// VM executes one Program under one Config. A VM is single-use and not
// safe for concurrent use; run each program in its own VM.
type VM struct {
	prog    *Program
	cfg     Config
	mem     []byte
	stack   []int64
	calls   []int
	globals [globalSlots]int64
	pc      int
	steps   uint64 // total instructions executed
	halted  bool
}

const globalSlots = 256

// New prepares a VM for prog. Memory is allocated immediately (and
// charged, if an account is configured, when Run starts).
func New(prog *Program, cfg Config) *VM {
	if cfg.MemSize <= 0 {
		cfg.MemSize = 64 << 10
	}
	if cfg.MaxStack <= 0 {
		cfg.MaxStack = 1024
	}
	if cfg.MaxCalls <= 0 {
		cfg.MaxCalls = 256
	}
	return &VM{prog: prog, cfg: cfg}
}

// Steps reports how many instructions have executed.
func (vm *VM) Steps() uint64 { return vm.steps }

// ReadMem copies n bytes of linear memory at addr; syscall helpers use
// it to fetch strings and buffers from guest memory.
func (vm *VM) ReadMem(addr, n int64) ([]byte, error) {
	if addr < 0 || n < 0 || addr+n > int64(len(vm.mem)) {
		return nil, ErrMemBounds
	}
	out := make([]byte, n)
	copy(out, vm.mem[addr:addr+n])
	return out, nil
}

// WriteMem copies b into linear memory at addr.
func (vm *VM) WriteMem(addr int64, b []byte) error {
	if addr < 0 || addr+int64(len(b)) > int64(len(vm.mem)) {
		return ErrMemBounds
	}
	copy(vm.mem[addr:], b)
	return nil
}

// Run executes the program to completion and returns its exit value
// (top of stack at halt, 0 if the stack is empty).
func (vm *VM) Run() (int64, error) {
	if vm.halted {
		return 0, fmt.Errorf("wvm: VM already ran")
	}
	vm.halted = true

	if vm.cfg.Account != nil {
		if err := vm.cfg.Account.Charge(quota.Memory, uint64(vm.cfg.MemSize)); err != nil {
			return 0, ErrMemQuota
		}
	}
	vm.mem = make([]byte, vm.cfg.MemSize)
	if len(vm.prog.Data) > len(vm.mem) {
		return 0, ErrMemBounds
	}
	copy(vm.mem, vm.prog.Data)

	var chunkUsed uint64 // instructions since last quota flush
	flush := func() error {
		if vm.cfg.Account != nil && chunkUsed > 0 {
			if err := vm.cfg.Account.Charge(quota.CPU, chunkUsed); err != nil {
				chunkUsed = 0
				return ErrGas
			}
		}
		chunkUsed = 0
		return nil
	}

	code := vm.prog.Code
	for vm.pc < len(code) {
		if vm.cfg.Gas > 0 && vm.steps >= vm.cfg.Gas {
			flush()
			return 0, ErrGas
		}
		vm.steps++
		chunkUsed++
		if chunkUsed >= GasChunk {
			if err := flush(); err != nil {
				return 0, err
			}
		}

		op := Opcode(code[vm.pc])
		pc := vm.pc
		vm.pc += 1 + operandWidth(op)

		var err error
		switch op {
		case OpHalt:
			flush()
			if len(vm.stack) == 0 {
				return 0, nil
			}
			return vm.stack[len(vm.stack)-1], nil

		case OpPush:
			err = vm.push(int64(binary.LittleEndian.Uint64(code[pc+1:])))
		case OpPop:
			_, err = vm.pop()
		case OpDup:
			var v int64
			if v, err = vm.peek(); err == nil {
				err = vm.push(v)
			}
		case OpSwap:
			if len(vm.stack) < 2 {
				err = ErrStack
			} else {
				n := len(vm.stack)
				vm.stack[n-1], vm.stack[n-2] = vm.stack[n-2], vm.stack[n-1]
			}
		case OpOver:
			if len(vm.stack) < 2 {
				err = ErrStack
			} else {
				err = vm.push(vm.stack[len(vm.stack)-2])
			}

		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr,
			OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			err = vm.binop(op)
		case OpNeg:
			var v int64
			if v, err = vm.pop(); err == nil {
				err = vm.push(-v)
			}
		case OpNot:
			var v int64
			if v, err = vm.pop(); err == nil {
				err = vm.push(^v)
			}

		case OpJmp:
			vm.pc = int(binary.LittleEndian.Uint32(code[pc+1:]))
		case OpJz, OpJnz:
			var v int64
			if v, err = vm.pop(); err == nil {
				if (op == OpJz) == (v == 0) {
					vm.pc = int(binary.LittleEndian.Uint32(code[pc+1:]))
				}
			}
		case OpCall:
			if len(vm.calls) >= vm.cfg.MaxCalls {
				err = ErrCallDepth
			} else {
				vm.calls = append(vm.calls, vm.pc)
				vm.pc = int(binary.LittleEndian.Uint32(code[pc+1:]))
			}
		case OpRet:
			if len(vm.calls) == 0 {
				// Returning from top level halts cleanly.
				flush()
				if len(vm.stack) == 0 {
					return 0, nil
				}
				return vm.stack[len(vm.stack)-1], nil
			}
			vm.pc = vm.calls[len(vm.calls)-1]
			vm.calls = vm.calls[:len(vm.calls)-1]

		case OpLoad:
			idx := binary.LittleEndian.Uint16(code[pc+1:])
			if int(idx) >= globalSlots {
				err = ErrGlobal
			} else {
				err = vm.push(vm.globals[idx])
			}
		case OpStore:
			idx := binary.LittleEndian.Uint16(code[pc+1:])
			var v int64
			if v, err = vm.pop(); err == nil {
				if int(idx) >= globalSlots {
					err = ErrGlobal
				} else {
					vm.globals[idx] = v
				}
			}

		case OpMload:
			var addr int64
			if addr, err = vm.pop(); err == nil {
				if addr < 0 || addr >= int64(len(vm.mem)) {
					err = ErrMemBounds
				} else {
					err = vm.push(int64(vm.mem[addr]))
				}
			}
		case OpMstore:
			var v, addr int64
			if v, err = vm.pop(); err == nil {
				if addr, err = vm.pop(); err == nil {
					if addr < 0 || addr >= int64(len(vm.mem)) {
						err = ErrMemBounds
					} else {
						vm.mem[addr] = byte(v)
					}
				}
			}
		case OpMsize:
			err = vm.push(int64(len(vm.mem)))

		case OpSys:
			num := binary.LittleEndian.Uint16(code[pc+1:])
			sc, ok := vm.cfg.Syscalls[num]
			if !ok {
				err = ErrBadSys
				break
			}
			args := make([]int64, sc.Arity)
			for i := sc.Arity - 1; i >= 0; i-- {
				if args[i], err = vm.pop(); err != nil {
					break
				}
			}
			if err != nil {
				break
			}
			var rets []int64
			rets, err = sc.Fn(vm, args)
			for _, r := range rets {
				if err != nil {
					break
				}
				err = vm.push(r)
			}

		default:
			err = fmt.Errorf("wvm: invalid opcode %d (verifier bypassed?)", op)
		}

		if err != nil {
			flush()
			return 0, fmt.Errorf("wvm: at offset %d (%s): %w", pc, op, err)
		}
	}
	// Fell off the end of the code segment: clean halt.
	flush()
	if len(vm.stack) == 0 {
		return 0, nil
	}
	return vm.stack[len(vm.stack)-1], nil
}

func (vm *VM) push(v int64) error {
	if len(vm.stack) >= vm.cfg.MaxStack {
		return ErrStackLimit
	}
	vm.stack = append(vm.stack, v)
	return nil
}

func (vm *VM) pop() (int64, error) {
	if len(vm.stack) == 0 {
		return 0, ErrStack
	}
	v := vm.stack[len(vm.stack)-1]
	vm.stack = vm.stack[:len(vm.stack)-1]
	return v, nil
}

func (vm *VM) peek() (int64, error) {
	if len(vm.stack) == 0 {
		return 0, ErrStack
	}
	return vm.stack[len(vm.stack)-1], nil
}

func (vm *VM) binop(op Opcode) error {
	b, err := vm.pop()
	if err != nil {
		return err
	}
	a, err := vm.pop()
	if err != nil {
		return err
	}
	var r int64
	switch op {
	case OpAdd:
		r = a + b
	case OpSub:
		r = a - b
	case OpMul:
		r = a * b
	case OpDiv:
		if b == 0 {
			return ErrDivZero
		}
		r = a / b
	case OpMod:
		if b == 0 {
			return ErrDivZero
		}
		r = a % b
	case OpAnd:
		r = a & b
	case OpOr:
		r = a | b
	case OpXor:
		r = a ^ b
	case OpShl:
		r = a << (uint64(b) & 63)
	case OpShr:
		r = int64(uint64(a) >> (uint64(b) & 63))
	case OpEq:
		r = btoi(a == b)
	case OpNe:
		r = btoi(a != b)
	case OpLt:
		r = btoi(a < b)
	case OpLe:
		r = btoi(a <= b)
	case OpGt:
		r = btoi(a > b)
	case OpGe:
		r = btoi(a >= b)
	}
	return vm.push(r)
}

func btoi(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
