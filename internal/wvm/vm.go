package wvm

import (
	"errors"
	"fmt"

	"w5/internal/quota"
)

// Execution errors. ErrGas and ErrMemQuota are quota exhaustion;
// the rest are program faults. All of them terminate the run.
var (
	ErrGas        = errors.New("wvm: out of gas (CPU quota exhausted)")
	ErrMemQuota   = errors.New("wvm: memory quota exhausted")
	ErrStack      = errors.New("wvm: stack underflow")
	ErrStackLimit = errors.New("wvm: stack overflow")
	ErrCallDepth  = errors.New("wvm: call depth exceeded")
	ErrDivZero    = errors.New("wvm: division by zero")
	ErrMemBounds  = errors.New("wvm: memory access out of bounds")
	ErrGlobal     = errors.New("wvm: global index out of range")
	ErrBadSys     = errors.New("wvm: unknown syscall")
)

// Syscall is a platform-provided host function. It receives the VM (for
// memory access) and its popped arguments, and returns values to push.
// Returning an error aborts the program; syscalls that merely fail
// should return a status code instead, so untrusted code can handle it.
type Syscall struct {
	Name  string
	Arity int // values popped from the stack, passed in push order
	Fn    func(vm *VM, args []int64) ([]int64, error)
}

// SyscallTable maps syscall numbers to implementations. The platform
// builds one (typically shared and immutable — per-request state goes in
// VM.Host) and hands it to the VM.
type SyscallTable map[uint16]Syscall

// Config bounds a VM run.
type Config struct {
	// MemSize is the linear memory size in bytes (default 64 KiB).
	MemSize int
	// MaxStack is the operand stack depth limit (default 1024).
	MaxStack int
	// MaxCalls is the call stack depth limit (default 256).
	MaxCalls int
	// Gas is the instruction budget for this run; 0 means unlimited.
	Gas uint64
	// Account, if non-nil, is charged quota.CPU per instruction (in
	// chunks of GasChunk) and quota.Memory once for MemSize. Charges
	// failing => run aborts with ErrGas / ErrMemQuota.
	Account *quota.Account
	// Syscalls is the host interface; nil means no syscalls available.
	Syscalls SyscallTable
}

// GasChunk is how many instructions execute between quota charges; the
// tail is charged at exit. Chunking keeps the mutex off the hot path
// while bounding overshoot to one chunk.
const GasChunk = 1024

// maxFixedArity is the syscall arity served from the VM's fixed argument
// scratch buffer; rarer, wider syscalls fall back to an allocation.
const maxFixedArity = 8

// VM executes one Program under one Config. A VM is not safe for
// concurrent use. After a run completes it can be re-armed with Reset
// (the pooling path: retained buffers, scrubbed state); without Reset it
// is single-use.
type VM struct {
	prog    *Program
	comp    *Compiled
	cfg     Config
	mem     []byte
	stack   []int64
	sp      int
	calls   []int
	globals [globalSlots]int64
	steps   uint64 // total instructions executed this run
	chunk   uint64 // instructions since last quota flush
	dirtyHi int    // high-water mark of bytes written to mem this run
	halted  bool
	argBuf  [maxFixedArity]int64
	retBuf  [4]int64

	// Host is an opaque per-run context slot for the platform's syscall
	// layer: an immutable shared SyscallTable reads its request-scoped
	// state (app environment, response buffer, ...) from here instead of
	// closing over it. The VM itself never touches it. Reset clears it.
	Host any
}

const globalSlots = 256

// New prepares a VM for prog. The program is lowered lazily on the
// first Run (use Compile + Reset to share the lowered form across VMs).
func New(prog *Program, cfg Config) *VM {
	if cfg.MemSize <= 0 {
		cfg.MemSize = 64 << 10
	}
	if cfg.MaxStack <= 0 {
		cfg.MaxStack = 1024
	}
	if cfg.MaxCalls <= 0 {
		cfg.MaxCalls = 256
	}
	return &VM{prog: prog, cfg: cfg}
}

// Reset re-arms vm to run c under cfg, scrubbing all state left by the
// previous run while retaining the memory, stack, and call-stack
// buffers. This is the pooled-execution path: after Reset, a recycled
// VM is observationally identical to a fresh New(c.Program(), cfg) —
// linear memory reads as zero (the dirty high-water mark bounds the
// zeroing cost to bytes actually written), globals are zero, and the
// operand stack is empty.
func (vm *VM) Reset(c *Compiled, cfg Config) {
	if cfg.MemSize <= 0 {
		cfg.MemSize = 64 << 10
	}
	if cfg.MaxStack <= 0 {
		cfg.MaxStack = 1024
	}
	if cfg.MaxCalls <= 0 {
		cfg.MaxCalls = 256
	}
	clear(vm.stack)
	clear(vm.globals[:])
	if vm.dirtyHi > 0 {
		n := vm.dirtyHi
		if n > len(vm.mem) {
			n = len(vm.mem)
		}
		clear(vm.mem[:n])
	}
	vm.dirtyHi = 0
	vm.calls = vm.calls[:0]
	vm.prog, vm.comp, vm.cfg = c.prog, c, cfg
	vm.sp, vm.steps, vm.chunk = 0, 0, 0
	vm.halted = false
	vm.Host = nil
}

// Steps reports how many instructions have executed this run. Fused
// superinstructions count as the number of source instructions they
// cover, so gas accounting is unchanged by compilation.
func (vm *VM) Steps() uint64 { return vm.steps }

// ReadMem copies n bytes of linear memory at addr; syscall helpers use
// it to fetch strings and buffers from guest memory.
func (vm *VM) ReadMem(addr, n int64) ([]byte, error) {
	// Guest-controlled addr and n: compare against len-n instead of
	// addr+n, which can wrap negative and pass the check.
	if addr < 0 || n < 0 || n > int64(len(vm.mem)) || addr > int64(len(vm.mem))-n {
		return nil, ErrMemBounds
	}
	out := make([]byte, n)
	copy(out, vm.mem[addr:addr+n])
	return out, nil
}

// Mem returns the live linear-memory window [addr, addr+n) without
// copying. It is for platform syscall implementations only, and callers
// must treat it as read-only and must not retain it past the syscall:
// the backing array belongs to a possibly-pooled VM. Use WriteMem for
// writes (it maintains the scrub watermark).
func (vm *VM) Mem(addr, n int64) ([]byte, error) {
	if addr < 0 || n < 0 || n > int64(len(vm.mem)) || addr > int64(len(vm.mem))-n {
		return nil, ErrMemBounds
	}
	return vm.mem[addr : addr+n : addr+n], nil
}

// WriteMem copies b into linear memory at addr.
func (vm *VM) WriteMem(addr int64, b []byte) error {
	n := int64(len(b))
	if addr < 0 || n > int64(len(vm.mem)) || addr > int64(len(vm.mem))-n {
		return ErrMemBounds
	}
	copy(vm.mem[addr:], b)
	if end := int(addr) + len(b); end > vm.dirtyHi {
		vm.dirtyHi = end
	}
	return nil
}

// Ret1 returns a single-value syscall result using the VM's scratch
// buffer, avoiding a per-syscall allocation. The returned slice is only
// valid until the next syscall; the interpreter copies it to the operand
// stack immediately.
func (vm *VM) Ret1(v int64) []int64 {
	vm.retBuf[0] = v
	return vm.retBuf[:1]
}

// Run executes the program to completion and returns its exit value
// (top of stack at halt, 0 if the stack is empty).
func (vm *VM) Run() (int64, error) {
	if vm.halted {
		return 0, fmt.Errorf("wvm: VM already ran")
	}
	vm.halted = true

	comp := vm.comp
	if comp == nil {
		c, err := Compile(vm.prog)
		if err != nil {
			return 0, err
		}
		comp = c
		vm.comp = c
	}

	if vm.cfg.Account != nil {
		if err := vm.cfg.Account.Charge(quota.Memory, uint64(vm.cfg.MemSize)); err != nil {
			return 0, ErrMemQuota
		}
	}
	// Reset scrubbed any previous run's bytes up to the dirty watermark,
	// so a recycled buffer is all-zero and only needs reslicing.
	if cap(vm.mem) >= vm.cfg.MemSize {
		vm.mem = vm.mem[:vm.cfg.MemSize]
	} else {
		vm.mem = make([]byte, vm.cfg.MemSize)
	}
	if len(vm.prog.Data) > len(vm.mem) {
		return 0, ErrMemBounds
	}
	copy(vm.mem, vm.prog.Data)
	if n := len(vm.prog.Data); n > vm.dirtyHi {
		vm.dirtyHi = n
	}
	if cap(vm.stack) >= vm.cfg.MaxStack {
		vm.stack = vm.stack[:vm.cfg.MaxStack]
	} else {
		vm.stack = make([]int64, vm.cfg.MaxStack)
	}
	vm.sp = 0
	return vm.exec(comp.ins)
}

// flushChunk charges the accumulated instruction chunk to the CPU
// quota; a failed charge is gas exhaustion.
func (vm *VM) flushChunk() error {
	if vm.cfg.Account != nil && vm.chunk > 0 {
		if err := vm.cfg.Account.Charge(quota.CPU, vm.chunk); err != nil {
			vm.chunk = 0
			return ErrGas
		}
	}
	vm.chunk = 0
	return nil
}

// exec is the dispatch loop over the compiled instruction stream.
func (vm *VM) exec(ins []instr) (int64, error) {
	var (
		stack = vm.stack
		sp    = 0
		pc    = 0
		gas   = vm.cfg.Gas
	)
	for pc < len(ins) {
		in := &ins[pc]
		cost := uint64(in.cost)
		if gas > 0 && vm.steps+cost > gas {
			vm.sp = sp
			vm.flushChunk()
			return 0, ErrGas
		}
		vm.steps += cost
		vm.chunk += cost
		if vm.chunk >= GasChunk {
			if err := vm.flushChunk(); err != nil {
				vm.sp = sp
				return 0, err
			}
		}
		pc++

		var err error
		switch in.op {
		case OpHalt:
			vm.sp = sp
			// The tail charge must land even on a clean exit: short
			// programs (< GasChunk instructions) only ever flush here,
			// and an exhausted account must fail the request, not be
			// silently comped.
			if err := vm.flushChunk(); err != nil {
				return 0, err
			}
			if sp == 0 {
				return 0, nil
			}
			return stack[sp-1], nil

		case OpPush:
			if sp == len(stack) {
				err = ErrStackLimit
			} else {
				stack[sp] = in.a
				sp++
			}
		case OpPop:
			if sp == 0 {
				err = ErrStack
			} else {
				sp--
			}
		case OpDup:
			if sp == 0 {
				err = ErrStack
			} else if sp == len(stack) {
				err = ErrStackLimit
			} else {
				stack[sp] = stack[sp-1]
				sp++
			}
		case OpSwap:
			if sp < 2 {
				err = ErrStack
			} else {
				stack[sp-1], stack[sp-2] = stack[sp-2], stack[sp-1]
			}
		case OpOver:
			if sp < 2 {
				err = ErrStack
			} else if sp == len(stack) {
				err = ErrStackLimit
			} else {
				stack[sp] = stack[sp-2]
				sp++
			}

		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr,
			OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			if sp < 2 {
				err = ErrStack
			} else {
				sp--
				var r int64
				r, err = binopEval(in.op, stack[sp-1], stack[sp])
				stack[sp-1] = r
			}
		case OpNeg:
			if sp == 0 {
				err = ErrStack
			} else {
				stack[sp-1] = -stack[sp-1]
			}
		case OpNot:
			if sp == 0 {
				err = ErrStack
			} else {
				stack[sp-1] = ^stack[sp-1]
			}

		case OpJmp:
			pc = int(in.a)
		case OpJz, OpJnz:
			if sp == 0 {
				err = ErrStack
			} else {
				sp--
				if (in.op == OpJz) == (stack[sp] == 0) {
					pc = int(in.a)
				}
			}
		case OpCall:
			if len(vm.calls) >= vm.cfg.MaxCalls {
				err = ErrCallDepth
			} else {
				vm.calls = append(vm.calls, pc)
				pc = int(in.a)
			}
		case OpRet:
			if len(vm.calls) == 0 {
				// Returning from top level halts cleanly.
				vm.sp = sp
				if err := vm.flushChunk(); err != nil {
					return 0, err
				}
				if sp == 0 {
					return 0, nil
				}
				return stack[sp-1], nil
			}
			pc = vm.calls[len(vm.calls)-1]
			vm.calls = vm.calls[:len(vm.calls)-1]

		case OpLoad:
			if int(in.a) >= globalSlots {
				err = ErrGlobal
			} else if sp == len(stack) {
				err = ErrStackLimit
			} else {
				stack[sp] = vm.globals[in.a]
				sp++
			}
		case OpStore:
			if sp == 0 {
				err = ErrStack
			} else if int(in.a) >= globalSlots {
				err = ErrGlobal
			} else {
				sp--
				vm.globals[in.a] = stack[sp]
			}

		case OpMload:
			if sp == 0 {
				err = ErrStack
			} else if addr := stack[sp-1]; addr < 0 || addr >= int64(len(vm.mem)) {
				err = ErrMemBounds
			} else {
				stack[sp-1] = int64(vm.mem[addr])
			}
		case OpMstore:
			if sp < 2 {
				err = ErrStack
			} else if addr := stack[sp-2]; addr < 0 || addr >= int64(len(vm.mem)) {
				err = ErrMemBounds
			} else {
				vm.mem[addr] = byte(stack[sp-1])
				if int(addr) >= vm.dirtyHi {
					vm.dirtyHi = int(addr) + 1
				}
				sp -= 2
			}
		case OpMsize:
			if sp == len(stack) {
				err = ErrStackLimit
			} else {
				stack[sp] = int64(len(vm.mem))
				sp++
			}

		case OpSys:
			sc, ok := vm.cfg.Syscalls[uint16(in.a)]
			if !ok {
				err = ErrBadSys
				break
			}
			var args []int64
			if arity := sc.Arity; arity > 0 {
				if sp < arity {
					err = ErrStack
					break
				}
				sp -= arity
				if arity <= len(vm.argBuf) {
					args = vm.argBuf[:arity]
				} else {
					args = make([]int64, arity)
				}
				copy(args, stack[sp:sp+arity])
			}
			vm.sp = sp // keep VM state coherent for the host callback
			var rets []int64
			rets, err = sc.Fn(vm, args)
			for _, r := range rets {
				if err != nil {
					break
				}
				if sp == len(stack) {
					err = ErrStackLimit
					break
				}
				stack[sp] = r
				sp++
			}

		// Fused superinstructions (see compile.go). Each preserves the
		// exact fault semantics of its source pair, checked in source
		// order; gas-wise the pair is atomic.
		case opPushBin:
			if sp == len(stack) {
				err = ErrStackLimit // the push half would overflow
			} else if sp == 0 {
				err = ErrStack
			} else {
				var r int64
				r, err = binopEval(Opcode(in.b), stack[sp-1], in.a)
				stack[sp-1] = r
			}
		case opLoadBin:
			if int(in.a) >= globalSlots {
				err = ErrGlobal
			} else if sp == len(stack) {
				err = ErrStackLimit
			} else if sp == 0 {
				err = ErrStack
			} else {
				var r int64
				r, err = binopEval(Opcode(in.b), stack[sp-1], vm.globals[in.a])
				stack[sp-1] = r
			}
		case opCmpJmp:
			if sp < 2 {
				err = ErrStack
			} else {
				sp -= 2
				var t bool
				a, b := stack[sp], stack[sp+1]
				switch Opcode(in.b >> 1) {
				case OpEq:
					t = a == b
				case OpNe:
					t = a != b
				case OpLt:
					t = a < b
				case OpLe:
					t = a <= b
				case OpGt:
					t = a > b
				case OpGe:
					t = a >= b
				}
				if t == (in.b&1 == 1) {
					pc = int(in.a)
				}
			}

		default:
			err = fmt.Errorf("wvm: invalid opcode %d (verifier bypassed?)", in.op)
		}

		if err != nil {
			vm.sp = sp
			// The fault already fails the run; a flush failure here just
			// means the account is exhausted too, and the fault stays the
			// primary error.
			vm.flushChunk()
			off, fop := in.faultSite(err)
			return 0, fmt.Errorf("wvm: at offset %d (%s): %w", off, fop, err)
		}
	}
	// Fell off the end of the code segment: clean halt.
	vm.sp = sp
	if err := vm.flushChunk(); err != nil {
		return 0, err
	}
	if sp == 0 {
		return 0, nil
	}
	return stack[sp-1], nil
}

// binopEval computes one two-operand operation.
func binopEval(op Opcode, a, b int64) (int64, error) {
	switch op {
	case OpAdd:
		return a + b, nil
	case OpSub:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpDiv:
		if b == 0 {
			return 0, ErrDivZero
		}
		return a / b, nil
	case OpMod:
		if b == 0 {
			return 0, ErrDivZero
		}
		return a % b, nil
	case OpAnd:
		return a & b, nil
	case OpOr:
		return a | b, nil
	case OpXor:
		return a ^ b, nil
	case OpShl:
		return a << (uint64(b) & 63), nil
	case OpShr:
		return int64(uint64(a) >> (uint64(b) & 63)), nil
	case OpEq:
		return btoi(a == b), nil
	case OpNe:
		return btoi(a != b), nil
	case OpLt:
		return btoi(a < b), nil
	case OpLe:
		return btoi(a <= b), nil
	case OpGt:
		return btoi(a > b), nil
	case OpGe:
		return btoi(a >= b), nil
	}
	return 0, nil
}

func btoi(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
