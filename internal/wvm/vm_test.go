package wvm

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"w5/internal/quota"
)

// run assembles src and executes it with cfg, failing the test on
// assembly errors.
func run(t *testing.T, src string, cfg Config) (int64, error) {
	t.Helper()
	p, err := Assemble(src, nil)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return New(p, cfg).Run()
}

func mustRun(t *testing.T, src string) int64 {
	t.Helper()
	v, err := run(t, src, Config{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"push 2\npush 3\nadd\nhalt", 5},
		{"push 10\npush 3\nsub\nhalt", 7},
		{"push 6\npush 7\nmul\nhalt", 42},
		{"push 17\npush 5\ndiv\nhalt", 3},
		{"push 17\npush 5\nmod\nhalt", 2},
		{"push 9\nneg\nhalt", -9},
		{"push -5\npush 5\nadd\nhalt", 0},
		{"push 0xff\npush 0x0f\nand\nhalt", 0x0f},
		{"push 0xf0\npush 0x0f\nor\nhalt", 0xff},
		{"push 0xff\npush 0x0f\nxor\nhalt", 0xf0},
		{"push 0\nnot\nhalt", -1},
		{"push 1\npush 4\nshl\nhalt", 16},
		{"push 16\npush 4\nshr\nhalt", 1},
		{"push -1\npush 1\nshr\nhalt", int64(^uint64(0) >> 1)},
	}
	for _, tt := range cases {
		if got := mustRun(t, tt.src); got != tt.want {
			t.Errorf("%q = %d, want %d", tt.src, got, tt.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"push 1\npush 1\neq\nhalt", 1},
		{"push 1\npush 2\neq\nhalt", 0},
		{"push 1\npush 2\nne\nhalt", 1},
		{"push 1\npush 2\nlt\nhalt", 1},
		{"push 2\npush 2\nlt\nhalt", 0},
		{"push 2\npush 2\nle\nhalt", 1},
		{"push 3\npush 2\ngt\nhalt", 1},
		{"push 2\npush 3\nge\nhalt", 0},
		{"push -1\npush 1\nlt\nhalt", 1}, // signed comparison
	}
	for _, tt := range cases {
		if got := mustRun(t, tt.src); got != tt.want {
			t.Errorf("%q = %d, want %d", tt.src, got, tt.want)
		}
	}
}

func TestStackOps(t *testing.T) {
	if got := mustRun(t, "push 1\npush 2\npop\nhalt"); got != 1 {
		t.Errorf("pop: %d", got)
	}
	if got := mustRun(t, "push 7\ndup\nadd\nhalt"); got != 14 {
		t.Errorf("dup: %d", got)
	}
	if got := mustRun(t, "push 1\npush 2\nswap\nsub\nhalt"); got != 1 {
		t.Errorf("swap: %d (want 2-1=1)", got)
	}
	if got := mustRun(t, "push 5\npush 9\nover\nhalt"); got != 5 {
		t.Errorf("over: %d", got)
	}
}

func TestControlFlow(t *testing.T) {
	// Sum 1..10 with a loop.
	src := `
        push 0      ; acc (global 0)
        store 0
        push 1      ; i (global 1)
        store 1
loop:   load 1
        push 10
        gt
        jnz done
        load 0
        load 1
        add
        store 0
        load 1
        push 1
        add
        store 1
        jmp loop
done:   load 0
        halt
`
	if got := mustRun(t, src); got != 55 {
		t.Errorf("loop sum = %d, want 55", got)
	}
}

func TestCallRet(t *testing.T) {
	// double(x) via subroutine; call it twice.
	src := `
        push 21
        call double
        halt
double: push 2
        mul
        ret
`
	if got := mustRun(t, src); got != 42 {
		t.Errorf("call/ret = %d, want 42", got)
	}
}

func TestNestedCalls(t *testing.T) {
	src := `
        push 3
        call f
        halt
f:      call g
        push 1
        add
        ret
g:      push 10
        mul
        ret
`
	if got := mustRun(t, src); got != 31 {
		t.Errorf("nested calls = %d, want 31", got)
	}
}

func TestRetAtTopLevelHalts(t *testing.T) {
	if got := mustRun(t, "push 9\nret"); got != 9 {
		t.Errorf("top-level ret = %d, want 9", got)
	}
}

func TestFallOffEndHalts(t *testing.T) {
	if got := mustRun(t, "push 4"); got != 4 {
		t.Errorf("fall off end = %d, want 4", got)
	}
	if got := mustRun(t, ""); got != 0 {
		t.Errorf("empty program = %d, want 0", got)
	}
}

func TestMemoryOps(t *testing.T) {
	src := `
        push 100   ; addr
        push 65    ; 'A'
        mstore
        push 100
        mload
        halt
`
	if got := mustRun(t, src); got != 65 {
		t.Errorf("mstore/mload = %d, want 65", got)
	}
	p, _ := Assemble("msize\nhalt", nil)
	v, err := New(p, Config{MemSize: 4096}).Run()
	if err != nil || v != 4096 {
		t.Errorf("msize = %d, %v", v, err)
	}
}

func TestDataSegmentLoaded(t *testing.T) {
	src := `
.data greeting "Hi"
        push @greeting
        mload           ; 'H' = 72
        halt
`
	if got := mustRun(t, src); got != 72 {
		t.Errorf("data segment byte = %d, want 72", got)
	}
	src2 := `
.data greeting "Hello"
        push #greeting
        halt
`
	if got := mustRun(t, src2); got != 5 {
		t.Errorf("data length ref = %d, want 5", got)
	}
}

func TestRuntimeFaults(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want error
	}{
		{"div zero", "push 1\npush 0\ndiv\nhalt", ErrDivZero},
		{"mod zero", "push 1\npush 0\nmod\nhalt", ErrDivZero},
		{"underflow pop", "pop\nhalt", ErrStack},
		{"underflow add", "push 1\nadd\nhalt", ErrStack},
		{"underflow swap", "push 1\nswap\nhalt", ErrStack},
		{"mem oob load", "push -1\nmload\nhalt", ErrMemBounds},
		{"mem oob store", "push 99999999\npush 1\nmstore\nhalt", ErrMemBounds},
		{"bad syscall", "sys 999", ErrBadSys},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := run(t, tt.src, Config{})
			if !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestStackOverflow(t *testing.T) {
	_, err := run(t, "loop: push 1\njmp loop", Config{MaxStack: 64, Gas: 10000})
	if !errors.Is(err, ErrStackLimit) {
		t.Errorf("err = %v, want ErrStackLimit", err)
	}
}

func TestCallDepthLimit(t *testing.T) {
	_, err := run(t, "f: call f", Config{MaxCalls: 32})
	if !errors.Is(err, ErrCallDepth) {
		t.Errorf("err = %v, want ErrCallDepth", err)
	}
}

func TestGasLimitStopsSpinner(t *testing.T) {
	// The E8 rogue: an infinite loop. Gas cuts it off.
	_, err := run(t, "loop: jmp loop", Config{Gas: 5000})
	if !errors.Is(err, ErrGas) {
		t.Fatalf("err = %v, want ErrGas", err)
	}
}

func TestCPUQuotaCharged(t *testing.T) {
	acct := quota.NewAccount("app:x", quota.Limits{CPU: 100_000})
	p, _ := Assemble("loop: jmp loop", nil)
	vm := New(p, Config{Account: acct})
	_, err := vm.Run()
	if !errors.Is(err, ErrGas) {
		t.Fatalf("err = %v, want ErrGas", err)
	}
	used := acct.Used(quota.CPU)
	// Chunked charging: everything the account had must be consumed,
	// and the VM must not have overshot by more than one chunk.
	if used < 100_000-GasChunk || used > 100_000 {
		t.Errorf("CPU charged = %d, want within one chunk of 100000", used)
	}
	if vm.Steps() > 100_000+GasChunk {
		t.Errorf("VM executed %d steps, far past its budget", vm.Steps())
	}
}

func TestMemoryQuotaCharged(t *testing.T) {
	acct := quota.NewAccount("app:x", quota.Limits{Memory: 1024})
	p, _ := Assemble("halt", nil)
	_, err := New(p, Config{MemSize: 4096, Account: acct}).Run()
	if !errors.Is(err, ErrMemQuota) {
		t.Fatalf("err = %v, want ErrMemQuota", err)
	}
	// Within budget runs fine.
	acct2 := quota.NewAccount("app:y", quota.Limits{Memory: 8192})
	if _, err := New(p, Config{MemSize: 4096, Account: acct2}).Run(); err != nil {
		t.Fatalf("in-budget run: %v", err)
	}
	if acct2.Used(quota.Memory) != 4096 {
		t.Errorf("memory charged = %d", acct2.Used(quota.Memory))
	}
}

func TestSyscallDispatch(t *testing.T) {
	var gotArgs []int64
	table := SyscallTable{
		7: {Name: "add3", Arity: 3, Fn: func(vm *VM, args []int64) ([]int64, error) {
			gotArgs = append([]int64(nil), args...)
			return []int64{args[0] + args[1] + args[2]}, nil
		}},
	}
	p, err := Assemble("push 1\npush 2\npush 3\nsys 7\nhalt", nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(p, Config{Syscalls: table}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != 6 {
		t.Errorf("syscall result = %d, want 6", v)
	}
	// Args arrive in push order.
	if len(gotArgs) != 3 || gotArgs[0] != 1 || gotArgs[1] != 2 || gotArgs[2] != 3 {
		t.Errorf("args = %v, want [1 2 3]", gotArgs)
	}
}

func TestSyscallByName(t *testing.T) {
	names := map[string]uint16{"ping": 3}
	table := SyscallTable{
		3: {Name: "ping", Arity: 0, Fn: func(*VM, []int64) ([]int64, error) {
			return []int64{99}, nil
		}},
	}
	p, err := Assemble("sys ping\nhalt", names)
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(p, Config{Syscalls: table}).Run()
	if err != nil || v != 99 {
		t.Errorf("named syscall = %d, %v", v, err)
	}
}

func TestSyscallMemoryAccess(t *testing.T) {
	table := SyscallTable{
		1: {Name: "upper", Arity: 2, Fn: func(vm *VM, args []int64) ([]int64, error) {
			buf, err := vm.ReadMem(args[0], args[1])
			if err != nil {
				return nil, err
			}
			for i, c := range buf {
				if c >= 'a' && c <= 'z' {
					buf[i] = c - 32
				}
			}
			if err := vm.WriteMem(args[0], buf); err != nil {
				return nil, err
			}
			return []int64{int64(len(buf))}, nil
		}},
	}
	src := `
.data msg "hello"
        push @msg
        push #msg
        sys 1
        pop
        push @msg
        mload
        halt
`
	p, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(p, Config{Syscalls: table}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != 'H' {
		t.Errorf("after syscall, mem[0] = %c, want H", rune(v))
	}
}

func TestSyscallErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	table := SyscallTable{
		1: {Name: "boom", Arity: 0, Fn: func(*VM, []int64) ([]int64, error) {
			return nil, boom
		}},
	}
	p, _ := Assemble("sys 1\nhalt", nil)
	_, err := New(p, Config{Syscalls: table}).Run()
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestVMSingleUse(t *testing.T) {
	p, _ := Assemble("halt", nil)
	vm := New(p, Config{})
	if _, err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Run(); err == nil {
		t.Error("second Run succeeded")
	}
}

func TestGlobalsIsolatedPerVM(t *testing.T) {
	p, _ := Assemble("push 42\nstore 0\nload 0\nhalt", nil)
	v1, err1 := New(p, Config{}).Run()
	v2, err2 := New(p, Config{}).Run()
	if err1 != nil || err2 != nil || v1 != 42 || v2 != 42 {
		t.Errorf("runs: %d/%v, %d/%v", v1, err1, v2, err2)
	}
}

// Guest-controlled addr/n near MaxInt64 used to wrap the addr+n bounds
// check negative and panic on the slice expression. Every combination
// must return ErrMemBounds, never panic.
func TestMemBoundsOverflowNoPanic(t *testing.T) {
	p, _ := Assemble("halt", nil)
	vm := New(p, Config{MemSize: 4096})
	if _, err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	const max = int64(math.MaxInt64)
	reads := []struct{ addr, n int64 }{
		{max, 10}, {10, max}, {max, max}, {1 << 62, 1 << 62},
		{max - 1, 2}, {4096, 1}, {-1, 1}, {0, -1}, {max, -1},
	}
	for _, c := range reads {
		if _, err := vm.ReadMem(c.addr, c.n); !errors.Is(err, ErrMemBounds) {
			t.Errorf("ReadMem(%d, %d) = %v, want ErrMemBounds", c.addr, c.n, err)
		}
		if _, err := vm.Mem(c.addr, c.n); !errors.Is(err, ErrMemBounds) {
			t.Errorf("Mem(%d, %d) = %v, want ErrMemBounds", c.addr, c.n, err)
		}
	}
	for _, c := range []struct {
		addr int64
		n    int
	}{{max, 1}, {max - 2, 4}, {1 << 62, 4096}, {-1, 1}, {4093, 4}} {
		if err := vm.WriteMem(c.addr, make([]byte, c.n)); !errors.Is(err, ErrMemBounds) {
			t.Errorf("WriteMem(%d, %d bytes) = %v, want ErrMemBounds", c.addr, c.n, err)
		}
	}
	// Legal edge accesses still work.
	if err := vm.WriteMem(4094, []byte("ok")); err != nil {
		t.Errorf("in-bounds WriteMem: %v", err)
	}
	if b, err := vm.ReadMem(4094, 2); err != nil || string(b) != "ok" {
		t.Errorf("in-bounds ReadMem = %q, %v", b, err)
	}
	if _, err := vm.Mem(0, 4096); err != nil {
		t.Errorf("full-window Mem: %v", err)
	}
}

// The same overflow reached the bounds checks through addr-taking
// syscalls; a one-instruction hostile program must fault, not panic.
func TestMemBoundsOverflowViaSyscall(t *testing.T) {
	table := SyscallTable{
		1: {Name: "peek", Arity: 2, Fn: func(vm *VM, args []int64) ([]int64, error) {
			if _, err := vm.ReadMem(args[0], args[1]); err != nil {
				return nil, err
			}
			return vm.Ret1(0), nil
		}},
	}
	src := fmt.Sprintf("push %d\npush 16\nsys 1\nhalt", int64(math.MaxInt64))
	p, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(p, Config{Syscalls: table}).Run(); !errors.Is(err, ErrMemBounds) {
		t.Errorf("hostile syscall args: %v, want ErrMemBounds", err)
	}
}

// A program shorter than GasChunk only flushes its CPU charge at exit;
// when the account is already exhausted that tail charge must fail the
// run with ErrGas instead of being silently dropped.
func TestTailChargeFailureFailsShortProgram(t *testing.T) {
	acct := quota.NewAccount("app:x", quota.Limits{CPU: 3})
	if err := acct.Charge(quota.CPU, 3); err != nil {
		t.Fatal(err)
	}
	p, _ := Assemble("push 1\nhalt", nil) // 2 instructions, far below GasChunk
	if _, err := New(p, Config{Account: acct}).Run(); !errors.Is(err, ErrGas) {
		t.Errorf("exhausted account, short program: %v, want ErrGas", err)
	}
	// With headroom the same program succeeds and the tail is billed.
	acct2 := quota.NewAccount("app:y", quota.Limits{CPU: 100})
	vm := New(p, Config{Account: acct2})
	if _, err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if used := acct2.Used(quota.CPU); used != vm.Steps() {
		t.Errorf("CPU billed = %d, want %d (all steps)", used, vm.Steps())
	}
}

// Faults inside fused superinstructions must report the byte offset and
// opcode an unfused run of the same bytecode would report.
func TestFusedFaultOffsets(t *testing.T) {
	cases := []struct {
		name, src, want string
		cfg             Config
		err             error
	}{
		// push(9B)@0, push(9B)@9, div@18 — pair (push,div) fuses at 9;
		// the div-by-zero belongs to the div at 18.
		{"pushbin second half", "push 1\npush 0\ndiv\nhalt", "at offset 18 (div)", Config{}, ErrDivZero},
		// Underflow: unfused push would succeed, add@9 underflows.
		{"pushbin underflow", "push 1\nadd\nhalt", "at offset 9 (add)", Config{}, ErrStack},
		// Overflow: the push half @9 is what an unfused run rejects.
		{"pushbin overflow", "push 1\npush 2\nadd\nhalt", "at offset 9 (push)", Config{MaxStack: 1}, ErrStackLimit},
		// load(3B)@0, add@3 — underflow belongs to the add.
		{"loadbin underflow", "load 0\nadd\nhalt", "at offset 3 (add)", Config{}, ErrStack},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := run(t, tt.src, tt.cfg)
			if !errors.Is(err, tt.err) {
				t.Fatalf("err = %v, want %v", err, tt.err)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("fault message %q, want it to contain %q", err, tt.want)
			}
		})
	}
}

func TestDataLargerThanMemoryRejected(t *testing.T) {
	b := NewBuilder()
	b.DataString("big", string(make([]byte, 128)))
	b.Op(OpHalt)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(p, Config{MemSize: 64}).Run(); !errors.Is(err, ErrMemBounds) {
		t.Errorf("oversized data: %v", err)
	}
}
