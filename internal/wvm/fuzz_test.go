package wvm

import (
	"errors"
	"testing"
)

// Fuzz targets for the two untrusted inputs the platform accepts:
// assembly listings (registry uploads) and raw bytecode (closed-source
// modules). Neither may ever panic the platform; bytecode that passes
// verification must run to a typed error or a clean halt within its gas
// budget. CI runs these briefly on every push (see the fuzz-smoke step
// in ci.yml); longer local runs: go test -fuzz=FuzzVMRun ./internal/wvm/

func FuzzAssemble(f *testing.F) {
	f.Add("push 1\npush 2\nadd\nhalt\n")
	f.Add(".data s \"hi \\x00 there\"\npush @s\npush #s\nsys 6\npop\nhalt\n")
	f.Add("loop: dup\njnz loop\nhalt\n")
	f.Add("push -9223372036854775808\nneg\nhalt")
	f.Add("l:\nl2: jmp l2\n; comment\npush 0x10 # trailing")
	f.Add(".data d \"\\xZZ\"")
	f.Add("call missing\nret")
	f.Add("push @nodata")
	f.Add("store 9999")
	f.Add("sys name_without_table")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src, map[string]uint16{"emit": 6})
		if err != nil {
			return
		}
		// Anything the assembler accepts must verify, compile, and
		// survive a bounded run.
		if err := prog.Verify(); err != nil {
			t.Fatalf("assembled program fails verify: %v\nsource:\n%s", err, src)
		}
		comp, err := Compile(prog)
		if err != nil {
			t.Fatalf("assembled program fails compile: %v\nsource:\n%s", err, src)
		}
		vm := New(comp.Program(), Config{Gas: 10_000, MemSize: 4 << 10})
		vm.Run() // must not panic; faults are fine
	})
}

func FuzzVMRun(f *testing.F) {
	// Seeds: valid marshaled programs and raw junk.
	for _, src := range []string{
		"push 1\npush 2\nadd\nhalt\n",
		"loop: jmp loop\n",
		".data d \"abcdef\"\npush 2\nmload\npush 0\nswap\nmstore\nhalt\n",
		"push 100\nstore 3\nl: load 3\npush 1\nsub\ndup\nstore 3\njnz l\nhalt\n",
		// Hostile addr/n into the host memory API: near-MaxInt64 values
		// that overflow a naive addr+n bounds check.
		"push 9223372036854775807\npush 16\nsys 1\nhalt\n",
		"push 4611686018427387904\npush 4611686018427387904\nsys 1\nhalt\n",
		"push 9223372036854775807\npush 9223372036854775807\nsys 1\nhalt\n",
	} {
		p, err := Assemble(src, nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p.Marshal())
	}
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{byte(OpPush)}) // truncated operand
	f.Add([]byte{byte(OpJmp), 0xFF, 0xFF, 0xFF, 0x7F})

	// Syscall 1 forwards guest-controlled addr/n straight into the host
	// memory API, so the fuzzer probes the ReadMem/Mem/WriteMem bounds
	// checks (historically overflowable near MaxInt64).
	table := SyscallTable{
		1: {Name: "memprobe", Arity: 2, Fn: func(vm *VM, args []int64) ([]int64, error) {
			if b, err := vm.ReadMem(args[0], args[1]); err == nil {
				if err := vm.WriteMem(args[0], b); err != nil {
					return nil, err
				}
			}
			if _, err := vm.Mem(args[0], args[1]); err != nil {
				return vm.Ret1(-1), nil // typed bounds rejection, keep running
			}
			return vm.Ret1(0), nil
		}},
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		const gas = 50_000
		run := func(prog *Program) {
			comp, err := Compile(prog)
			if err != nil {
				return // verifier rejected it — the correct outcome for junk
			}
			vm := New(comp.Program(), Config{Gas: gas, MemSize: 4 << 10, MaxStack: 64, MaxCalls: 16, Syscalls: table})
			_, err = vm.Run()
			if err != nil && !knownRunError(err) {
				t.Fatalf("untyped run error: %v", err)
			}
			if vm.Steps() > gas {
				t.Fatalf("steps %d exceeded gas %d", vm.Steps(), gas)
			}
		}
		// Path 1: the registry's wire format.
		if prog, err := Unmarshal(raw); err == nil {
			run(prog)
		}
		// Path 2: raw bytes straight into the code segment.
		run(&Program{Code: raw})
	})
}

func knownRunError(err error) bool {
	for _, want := range []error{
		ErrGas, ErrMemQuota, ErrStack, ErrStackLimit, ErrCallDepth,
		ErrDivZero, ErrMemBounds, ErrGlobal, ErrBadSys,
	} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}
