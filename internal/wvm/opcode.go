// Package wvm implements the W5 virtual machine: the sandbox in which
// developer-uploaded code runs on the platform.
//
// The paper (§2 "Developers") envisions developers uploading binaries
// that are "executable but not readable", coding against a syscall API
// ("The Unix system call API, for instance, fits the bill"). Running
// native binaries safely in-process is not possible, so the platform
// substitutes a small stack-based bytecode machine — W5 Assembly — with
// these properties preserved:
//
//   - Uploaded modules are opaque byte blobs; closed-source modules are
//     stored hash-only, open-source ones with their assembly listing so
//     users can audit exactly what runs (§3.2 "code audit").
//   - All interaction with the outside world goes through numbered
//     syscalls registered by the platform; the VM itself has no I/O.
//     The syscall layer consults the DIFC kernel, so uploaded code is
//     confined exactly like any other process.
//   - Every instruction executed burns one gas unit, charged against
//     the process's CPU quota in chunks — a spinning rogue app is cut
//     off (§3.5, experiment E8).
//   - Memory is a fixed linear buffer charged to the memory quota.
//
// The instruction set is deliberately small (see opcode.go) but
// complete: integers, a byte-addressable memory, structured control
// flow via explicit jumps, subroutine calls, and syscalls.
package wvm

import "fmt"

// Opcode is a single-byte W5 Assembly operation code.
type Opcode byte

// The W5 Assembly instruction set.
const (
	// OpHalt stops execution; the exit value is the top of stack (0 if
	// empty).
	OpHalt Opcode = iota
	// OpPush pushes an 8-byte little-endian immediate.
	OpPush
	// OpPop discards the top of stack.
	OpPop
	// OpDup duplicates the top of stack.
	OpDup
	// OpSwap exchanges the top two stack slots.
	OpSwap
	// OpOver pushes a copy of the second-from-top slot.
	OpOver

	// Arithmetic: pop b, pop a, push a OP b.
	OpAdd
	OpSub
	OpMul
	OpDiv // traps on division by zero
	OpMod // traps on division by zero
	OpNeg // pop a, push -a

	// Bitwise.
	OpAnd
	OpOr
	OpXor
	OpNot // bitwise complement
	OpShl
	OpShr // logical shift right

	// Comparisons: pop b, pop a, push 1 if a OP b else 0.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Control flow. Jump targets are 4-byte little-endian code offsets.
	OpJmp
	OpJz  // pop v; jump if v == 0
	OpJnz // pop v; jump if v != 0
	OpCall
	OpRet

	// Globals: 2-byte index into the global slot array.
	OpLoad
	OpStore

	// Memory: byte-addressable linear memory.
	OpMload  // pop addr, push mem[addr] (one byte, zero-extended)
	OpMstore // pop value, pop addr, mem[addr] = low byte of value
	OpMsize  // push memory size in bytes

	// OpSys invokes syscall n (2-byte immediate). Arguments are popped
	// (count fixed per syscall registration), results are pushed.
	OpSys

	opMax // sentinel; keep last
)

// operandWidth returns the number of immediate operand bytes following
// each opcode.
func operandWidth(op Opcode) int {
	switch op {
	case OpPush:
		return 8
	case OpJmp, OpJz, OpJnz, OpCall:
		return 4
	case OpLoad, OpStore, OpSys:
		return 2
	default:
		return 0
	}
}

var opNames = map[Opcode]string{
	OpHalt: "halt", OpPush: "push", OpPop: "pop", OpDup: "dup",
	OpSwap: "swap", OpOver: "over",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpNeg: "neg",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpShl: "shl", OpShr: "shr",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz", OpCall: "call", OpRet: "ret",
	OpLoad: "load", OpStore: "store",
	OpMload: "mload", OpMstore: "mstore", OpMsize: "msize",
	OpSys: "sys",
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

// String returns the assembly mnemonic.
func (op Opcode) String() string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", byte(op))
}

// Valid reports whether op is a defined instruction.
func (op Opcode) Valid() bool {
	_, ok := opNames[op]
	return ok
}
