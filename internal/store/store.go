// Package store implements the W5 provider's labeled persistent storage:
// a hierarchical filesystem in which every file and directory carries a
// secrecy and an integrity label, enforced on every operation.
//
// This is the substrate for the paper's two default policies (§3.1):
//
//   - Privacy protection: a file labeled with user u's secrecy tag s_u
//     can be read only by processes whose labels (plus capabilities)
//     dominate it, and once read, the taint follows the reader.
//   - Write protection: "all user data on a W5 cluster is by default
//     write-protected" — files carry the owner's write tag w_u in their
//     integrity label, and only processes that can endorse with w_u may
//     overwrite or delete them.
//
// The store is deliberately ignorant of processes: operations take a
// Cred (label pair + capability set + billing principal), supplied by
// the kernel or syscall layer on behalf of the calling process. This
// keeps the trusted storage logic free of process-table concerns.
//
// # Concurrency
//
// One provider hosts every user's data, so the store is on every
// request path. Instead of one global RWMutex, the namespace is guarded
// by an array of lock shards striped over the first shardDepth (= 2)
// path segments: operations under /home/alice and /home/bob hash to
// different shards and never contend. Structural levels shallower than
// shardDepth (the root's children and the children of top-level
// directories — the "spine") are mutated only while holding EVERY shard
// lock in index order, so any single-shard reader sees them stable.
// See README.md in this package for the full protocol and its
// correctness argument.
//
// File payloads are immutable once installed: Write and Restore always
// install a freshly copied buffer and never modify one in place, which
// lets Read return the internal slice without copying. Callers must
// treat slices returned by Read as read-only.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"w5/internal/audit"
	"w5/internal/difc"
	"w5/internal/quota"
)

// Errors returned to callers. ErrDenied is intentionally opaque (see
// kernel.ErrDenied for the rationale); details go to the audit log.
var (
	ErrDenied   = errors.New("w5: storage operation denied")
	ErrNotFound = errors.New("w5: no such file or directory")
	ErrExists   = errors.New("w5: file exists")
	ErrIsDir    = errors.New("w5: is a directory")
	ErrNotDir   = errors.New("w5: not a directory")
	ErrBadPath  = errors.New("w5: malformed path")
)

// Cred is the security context of a storage operation: the calling
// process's labels, its capabilities, and the principal billed for disk
// usage.
type Cred struct {
	Labels    difc.LabelPair
	Caps      difc.CapSet
	Principal string
}

// Info describes a file or directory without its contents.
type Info struct {
	Path     string
	Name     string
	IsDir    bool
	Size     int
	Label    difc.LabelPair
	Owner    string
	Version  uint64
	Modified time.Time
	// Seq is the store-wide change sequence at this object's last
	// content or label mutation (see FS.ChangeSeq).
	Seq uint64
}

type node struct {
	name     string
	label    difc.LabelPair
	owner    string
	version  uint64
	seq      uint64 // store-wide change sequence at last mutation
	modified time.Time

	// exactly one of the following is used
	data     []byte           // file payload; immutable once installed
	children map[string]*node // directory entries; nil for files
}

func (n *node) isDir() bool { return n.children != nil }

// Sharding parameters.
const (
	// shardDepth is how many leading path segments select a lock shard.
	// Depth 2 matches the provider's namespace shape: /home/<user>
	// subtrees — where all request traffic lands — get independent
	// locks, while sharding only the root's children would serialize
	// every user on the single /home shard.
	shardDepth = 2
	// defaultShardCount is the lock-stripe width when Options.Shards is
	// zero. Power of two.
	defaultShardCount = 16
	// maxShardCount caps Options.Shards; beyond this, all-shard
	// operations pay more than fine-grained ones save.
	maxShardCount = 256
)

// lockShard is one stripe of the namespace lock, padded to a cache line
// so reader counters on neighboring shards do not false-share.
type lockShard struct {
	mu sync.RWMutex
	_  [40]byte // RWMutex is 24 bytes on 64-bit; pad to a 64-byte line
}

// FS is a labeled in-memory filesystem. Safe for concurrent use.
type FS struct {
	shards []lockShard
	mask   uint32
	intern pathIntern

	// seq is the store-wide change sequence: every content or label
	// mutation stamps its node with the next value. Consumers that
	// mirror the store incrementally (federation's since-version pulls)
	// use it to ask "what changed after N" without diffing the tree.
	// A shared atomic across shards costs one uncontended Add per
	// mutation — mutations already take a shard write lock.
	seq atomic.Uint64

	root   *node
	log    *audit.Log
	quotas *quota.Manager
	clock  func() time.Time

	// onWrite, if set, observes every successful content mutation
	// (write, remove, relabel) with the canonical path segments. The
	// provider uses it to advance declassifier credential epochs when
	// an owner's data changes. See SetWriteObserver.
	onWrite atomic.Pointer[func(parts []string)]
}

// Options configures an FS.
type Options struct {
	Log    *audit.Log     // optional audit log
	Quotas *quota.Manager // optional disk accounting
	Clock  func() time.Time
	// Shards is the number of namespace lock stripes, rounded up to a
	// power of two and capped at 256. Zero selects the default (16).
	// Shards == 1 degenerates to the historical single-RWMutex store
	// and exists as the benchmark / equivalence baseline.
	Shards int
}

// New returns an empty filesystem whose root directory is public
// (empty labels) and owned by the provider.
func New(opts Options) *FS {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	n := opts.Shards
	if n <= 0 {
		n = defaultShardCount
	}
	if n > maxShardCount {
		n = maxShardCount
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	fs := &FS{
		shards: make([]lockShard, pow),
		mask:   uint32(pow - 1),
		root: &node{
			name:     "/",
			owner:    "provider",
			children: make(map[string]*node),
			modified: opts.Clock(),
		},
		log:    opts.Log,
		quotas: opts.Quotas,
		clock:  opts.Clock,
	}
	fs.intern.init()
	return fs
}

// SetWriteObserver registers fn to be called after every successful
// content mutation (Write, Remove, SetLabel) with the canonical path
// segments. The segments slice is only valid for the duration of the
// call — fn must not retain it. fn runs with the mutated shard still
// locked, so it must not call back into this FS. Passing nil clears
// the observer.
func (fs *FS) SetWriteObserver(fn func(parts []string)) {
	if fn == nil {
		fs.onWrite.Store(nil)
		return
	}
	fs.onWrite.Store(&fn)
}

// notifyWrite invokes the write observer, if any.
func (fs *FS) notifyWrite(parts []string) {
	if fn := fs.onWrite.Load(); fn != nil {
		(*fn)(parts)
	}
}

// shardFor maps a canonical path to its lock shard: an FNV-1a hash of
// the first shardDepth segments. Paths shorter than shardDepth still
// hash deterministically over what they have.
func (fs *FS) shardFor(parts []string) *lockShard {
	h := uint32(fnvOffset32)
	for i := 0; i < len(parts) && i < shardDepth; i++ {
		s := parts[i]
		for j := 0; j < len(s); j++ {
			h = (h ^ uint32(s[j])) * fnvPrime32
		}
		h = (h ^ '/') * fnvPrime32
	}
	return &fs.shards[h&fs.mask]
}

// wide reports whether an operation on a path with np segments touches
// spine structures (depth < shardDepth) in a way that requires holding
// every shard lock. Mutations with np <= shardDepth create, remove, or
// modify entries visible to other shards' traversals; subtree reads
// (List/Walk/Export) rooted above shardDepth span shards.
func wide(np int) bool { return np <= shardDepth }

func (fs *FS) lockAll() {
	for i := range fs.shards {
		fs.shards[i].mu.Lock()
	}
}

func (fs *FS) unlockAll() {
	for i := range fs.shards {
		fs.shards[i].mu.Unlock()
	}
}

func (fs *FS) rlockAll() {
	for i := range fs.shards {
		fs.shards[i].mu.RLock()
	}
}

func (fs *FS) runlockAll() {
	for i := range fs.shards {
		fs.shards[i].mu.RUnlock()
	}
}

// lockMutate acquires the write locks an op mutating a path with
// len(parts) segments needs, returning the matching unlock.
func (fs *FS) lockMutate(parts []string) func() {
	if wide(len(parts)) {
		fs.lockAll()
		return fs.unlockAll
	}
	sh := fs.shardFor(parts)
	sh.mu.Lock()
	return sh.mu.Unlock
}

// lockSubtreeRead acquires the read locks a whole-subtree read rooted
// at parts needs: one shard when the subtree lies inside a shard, all
// shards when it spans them.
func (fs *FS) lockSubtreeRead(parts []string) func() {
	if len(parts) < shardDepth {
		fs.rlockAll()
		return fs.runlockAll
	}
	sh := fs.shardFor(parts)
	sh.mu.RLock()
	return sh.mu.RUnlock
}

func (fs *FS) auditf(kind audit.Kind, actor, subject, format string, args ...any) {
	if fs.log != nil {
		fs.log.Appendf(kind, actor, subject, format, args...)
	}
}

// canRead reports whether an object labeled l is readable under cred:
// the object→process flow must be safe (the process may use its plus
// capabilities to notionally raise itself).
func canRead(l difc.LabelPair, cred Cred) bool {
	return difc.SafeMessage(l.Secrecy, difc.EmptyCaps, cred.Labels.Secrecy, cred.Caps)
}

// canWrite reports whether an object labeled l is writable under cred:
// the process→object flow must be safe in both secrecy (no leaking the
// process's taint into a less-secret file) and integrity (the file's
// endorsements must be producible by the writer).
func canWrite(l difc.LabelPair, cred Cred) bool {
	return difc.SafeFlow(cred.Labels, cred.Caps, l, difc.EmptyCaps)
}

// walk resolves the directory containing the final path element,
// checking read permission on every directory traversed. Returns the
// parent node and the final element name. Caller holds the locks
// covering the path.
func (fs *FS) walk(parts []string, cred Cred) (*node, string, error) {
	if len(parts) == 0 {
		return nil, "", ErrBadPath
	}
	cur := fs.root
	for i := 0; i < len(parts)-1; i++ {
		if !canRead(cur.label, cred) {
			return nil, "", ErrDenied
		}
		next, ok := cur.children[parts[i]]
		if !ok {
			return nil, "", ErrNotFound
		}
		if !next.isDir() {
			return nil, "", ErrNotDir
		}
		cur = next
	}
	if !canRead(cur.label, cred) {
		return nil, "", ErrDenied
	}
	return cur, parts[len(parts)-1], nil
}

// Mkdir creates a directory with the given label. The parent directory
// must be writable under cred, and the new label must be one cred could
// write to (otherwise a process could create objects it then could not
// be accountable for).
func (fs *FS) Mkdir(cred Cred, path string, label difc.LabelPair) error {
	var buf [pathBufLen]string
	parts, cached, err := fs.intern.resolve(path, buf[:0])
	if err != nil || len(parts) == 0 {
		return ErrBadPath
	}
	unlock := fs.lockMutate(parts)
	defer unlock()
	parent, name, err := fs.walk(parts, cred)
	if err != nil {
		return err
	}
	if _, ok := parent.children[name]; ok {
		return ErrExists
	}
	if !canWrite(parent.label, cred) || !canWrite(label, cred) {
		fs.auditf(audit.KindFlowDenied, cred.Principal, path, "mkdir denied")
		return ErrDenied
	}
	parent.children[name] = &node{
		name:     name,
		label:    label,
		owner:    cred.Principal,
		children: make(map[string]*node),
		modified: fs.clock(),
	}
	parent.version++
	if !cached {
		fs.intern.put(path, parts)
	}
	return nil
}

// MkdirAll creates every missing directory along path with the given
// label; existing directories are left untouched. Each level is created
// under its own lock acquisition, exactly like repeated Mkdir calls.
func (fs *FS) MkdirAll(cred Cred, path string, label difc.LabelPair) error {
	var buf [pathBufLen]string
	parts, _, err := fs.intern.resolve(path, buf[:0])
	if err != nil {
		return ErrBadPath
	}
	for i := 1; i <= len(parts); i++ {
		sub := "/" + joinSegments(parts[:i])
		if err := fs.Mkdir(cred, sub, label); err != nil && !errors.Is(err, ErrExists) {
			return err
		}
	}
	return nil
}

func joinSegments(parts []string) string {
	switch len(parts) {
	case 0:
		return ""
	case 1:
		return parts[0]
	}
	n := len(parts) - 1
	for _, p := range parts {
		n += len(p)
	}
	b := make([]byte, 0, n)
	b = append(b, parts[0]...)
	for _, p := range parts[1:] {
		b = append(b, '/')
		b = append(b, p...)
	}
	return string(b)
}

// Write creates or replaces the file at path with data, labeling new
// files with label. Replacing an existing file requires write permission
// on the current file label; the existing label is retained (relabeling
// is a separate, explicitly-audited operation — SetLabel).
//
// The payload is copied in, and the previous payload slice is left
// untouched (readers may still hold it); see the package comment on
// payload immutability.
func (fs *FS) Write(cred Cred, path string, data []byte, label difc.LabelPair) error {
	var buf [pathBufLen]string
	parts, cached, err := fs.intern.resolve(path, buf[:0])
	if err != nil || len(parts) == 0 {
		return ErrBadPath
	}
	unlock := fs.lockMutate(parts)
	defer unlock()
	parent, name, err := fs.walk(parts, cred)
	if err != nil {
		return err
	}
	existing, ok := parent.children[name]
	if ok {
		if existing.isDir() {
			return ErrIsDir
		}
		if !canWrite(existing.label, cred) {
			fs.auditf(audit.KindFlowDenied, cred.Principal, path, "overwrite denied (%s)", existing.label)
			return ErrDenied
		}
		if err := fs.chargeDelta(cred, existing.owner, len(data)-len(existing.data)); err != nil {
			return err
		}
		existing.data = copyPayload(data)
		existing.version++
		existing.seq = fs.seq.Add(1)
		existing.modified = fs.clock()
		if !cached {
			fs.intern.put(path, parts)
		}
		fs.notifyWrite(parts)
		return nil
	}
	if !canWrite(parent.label, cred) || !canWrite(label, cred) {
		fs.auditf(audit.KindFlowDenied, cred.Principal, path, "create denied")
		return ErrDenied
	}
	if err := fs.chargeDelta(cred, cred.Principal, len(data)); err != nil {
		return err
	}
	parent.children[name] = &node{
		name:     name,
		label:    label,
		owner:    cred.Principal,
		data:     copyPayload(data),
		version:  1,
		seq:      fs.seq.Add(1),
		modified: fs.clock(),
	}
	parent.version++
	if !cached {
		fs.intern.put(path, parts)
	}
	fs.notifyWrite(parts)
	return nil
}

// copyPayload installs a file payload: an exact-capacity copy, so a
// caller appending to a slice returned by Read can never scribble into
// stored bytes through spare capacity.
func copyPayload(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	return out
}

// chargeDelta adjusts the disk quota of the billed principal by delta
// bytes (negative deltas refund). The quota manager is internally
// synchronized, so concurrent shard writers may charge in parallel.
func (fs *FS) chargeDelta(cred Cred, principal string, delta int) error {
	if fs.quotas == nil || delta == 0 {
		return nil
	}
	acct := fs.quotas.Account(principal)
	if delta > 0 {
		if err := acct.Charge(quota.Disk, uint64(delta)); err != nil {
			fs.auditf(audit.KindQuota, cred.Principal, principal, "%v", err)
			return err
		}
		return nil
	}
	acct.Refund(quota.Disk, uint64(-delta))
	return nil
}

// Read returns the contents and label of the file at path. The caller
// is responsible for raising the reading process's label to dominate
// the returned label (the syscall layer does this automatically) — the
// read itself is permitted exactly when that raise would be possible.
//
// The returned slice aliases the stored payload and MUST be treated as
// read-only. It is safe to retain: overwrites install a fresh buffer
// rather than mutating the old one.
func (fs *FS) Read(cred Cred, path string) ([]byte, difc.LabelPair, error) {
	var buf [pathBufLen]string
	parts, cached, err := fs.intern.resolve(path, buf[:0])
	if err != nil || len(parts) == 0 {
		return nil, difc.LabelPair{}, ErrBadPath
	}
	sh := fs.shardFor(parts)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	parent, name, err := fs.walk(parts, cred)
	if err != nil {
		return nil, difc.LabelPair{}, err
	}
	f, ok := parent.children[name]
	if !ok {
		return nil, difc.LabelPair{}, ErrNotFound
	}
	if f.isDir() {
		return nil, difc.LabelPair{}, ErrIsDir
	}
	if !canRead(f.label, cred) {
		fs.auditf(audit.KindFlowDenied, cred.Principal, path, "read denied (%s)", f.label)
		return nil, difc.LabelPair{}, ErrDenied
	}
	if !cached {
		fs.intern.put(path, parts)
	}
	return f.data, f.label, nil
}

// List returns Info for every entry of the directory at path, sorted by
// name. Reading a directory requires read permission on it; the entry
// labels are included so callers can decide what they can open.
func (fs *FS) List(cred Cred, path string) ([]Info, error) {
	var buf [pathBufLen]string
	parts, cached, err := fs.intern.resolve(path, buf[:0])
	if err != nil {
		return nil, ErrBadPath
	}
	unlock := fs.lockSubtreeRead(parts)
	defer unlock()
	dir, err := fs.lookupDir(parts, cred)
	if err != nil {
		return nil, err
	}
	if !cached {
		fs.intern.put(path, parts)
	}
	out := make([]Info, 0, len(dir.children))
	for _, c := range dir.children {
		out = append(out, infoOf(path, c))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// lookupDir resolves parts to a directory node, checking read
// permission on it and everything traversed. Caller holds the covering
// locks.
func (fs *FS) lookupDir(parts []string, cred Cred) (*node, error) {
	if len(parts) == 0 {
		if !canRead(fs.root.label, cred) {
			return nil, ErrDenied
		}
		return fs.root, nil
	}
	parent, name, err := fs.walk(parts, cred)
	if err != nil {
		return nil, err
	}
	d, ok := parent.children[name]
	if !ok {
		return nil, ErrNotFound
	}
	if !d.isDir() {
		return nil, ErrNotDir
	}
	if !canRead(d.label, cred) {
		return nil, ErrDenied
	}
	return d, nil
}

func infoOf(parentPath string, n *node) Info {
	p := parentPath
	if p == "/" {
		p = ""
	}
	return Info{
		Path:     p + "/" + n.name,
		Name:     n.name,
		IsDir:    n.isDir(),
		Size:     len(n.data),
		Label:    n.label,
		Owner:    n.owner,
		Version:  n.version,
		Modified: n.modified,
		Seq:      n.seq,
	}
}

// statInfo is infoOf for a node whose full canonical path the caller
// already has — it reuses that string instead of rebuilding it, keeping
// Stat allocation-free on interned paths.
func statInfo(path string, n *node) Info {
	return Info{
		Path:     path,
		Name:     n.name,
		IsDir:    n.isDir(),
		Size:     len(n.data),
		Label:    n.label,
		Owner:    n.owner,
		Version:  n.version,
		Modified: n.modified,
		Seq:      n.seq,
	}
}

// Stat returns Info for the object at path. Stat requires read
// permission on the containing directory (existence is directory
// metadata) but not on the object itself.
func (fs *FS) Stat(cred Cred, path string) (Info, error) {
	var buf [pathBufLen]string
	parts, cached, err := fs.intern.resolve(path, buf[:0])
	if err != nil {
		return Info{}, ErrBadPath
	}
	sh := fs.shardFor(parts)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if len(parts) == 0 {
		return statInfo("/", fs.root), nil
	}
	parent, name, err := fs.walk(parts, cred)
	if err != nil {
		return Info{}, err
	}
	n, ok := parent.children[name]
	if !ok {
		return Info{}, ErrNotFound
	}
	if !cached {
		fs.intern.put(path, parts)
	}
	return statInfo(path, n), nil
}

// Remove deletes the object at path. Deleting is a write to both the
// object (write-protection applies: you cannot vandalize what you
// cannot write) and its parent directory. Non-empty directories cannot
// be removed.
func (fs *FS) Remove(cred Cred, path string) error {
	var buf [pathBufLen]string
	parts, _, err := fs.intern.resolve(path, buf[:0])
	if err != nil || len(parts) == 0 {
		return ErrBadPath
	}
	unlock := fs.lockMutate(parts)
	defer unlock()
	parent, name, err := fs.walk(parts, cred)
	if err != nil {
		return err
	}
	n, ok := parent.children[name]
	if !ok {
		return ErrNotFound
	}
	if n.isDir() && len(n.children) > 0 {
		return fmt.Errorf("w5: directory not empty: %s", path)
	}
	if !canWrite(n.label, cred) || !canWrite(parent.label, cred) {
		fs.auditf(audit.KindFlowDenied, cred.Principal, path, "remove denied")
		return ErrDenied
	}
	fs.chargeDelta(cred, n.owner, -len(n.data))
	delete(parent.children, name)
	parent.version++
	fs.notifyWrite(parts)
	return nil
}

// SetLabel relabels the object at path. The transition must be a safe
// label change under cred's capabilities in both components, and cred
// must currently be able to write the object. Every relabel is audited
// as a policy change.
func (fs *FS) SetLabel(cred Cred, path string, label difc.LabelPair) error {
	var buf [pathBufLen]string
	parts, cached, err := fs.intern.resolve(path, buf[:0])
	if err != nil || len(parts) == 0 {
		return ErrBadPath
	}
	unlock := fs.lockMutate(parts)
	defer unlock()
	parent, name, err := fs.walk(parts, cred)
	if err != nil {
		return err
	}
	n, ok := parent.children[name]
	if !ok {
		return ErrNotFound
	}
	if !canWrite(n.label, cred) {
		fs.auditf(audit.KindFlowDenied, cred.Principal, path, "relabel denied (no write)")
		return ErrDenied
	}
	if !difc.SafeLabelChange(n.label.Secrecy, label.Secrecy, cred.Caps) ||
		!difc.SafeLabelChange(n.label.Integrity, label.Integrity, cred.Caps) {
		fs.auditf(audit.KindFlowDenied, cred.Principal, path, "relabel denied (unsafe change)")
		return ErrDenied
	}
	n.label = label
	n.version++
	n.seq = fs.seq.Add(1)
	n.modified = fs.clock()
	fs.auditf(audit.KindPolicyChange, cred.Principal, path, "relabel to %s", label)
	if !cached {
		fs.intern.put(path, parts)
	}
	fs.notifyWrite(parts)
	return nil
}

// Walk visits every object under path readable by cred, in depth-first
// name order, calling fn with each Info. Objects in unreadable
// directories are skipped silently (their existence is not revealed).
func (fs *FS) Walk(cred Cred, path string, fn func(Info) error) error {
	var buf [pathBufLen]string
	parts, cached, err := fs.intern.resolve(path, buf[:0])
	if err != nil {
		return ErrBadPath
	}
	unlock := fs.lockSubtreeRead(parts)
	defer unlock()
	dir, err := fs.lookupDir(parts, cred)
	if err != nil {
		return err
	}
	if !cached {
		fs.intern.put(path, parts)
	}
	prefix := path
	if prefix == "/" {
		prefix = ""
	}
	return fs.walkRecursive(dir, prefix, cred, fn)
}

func (fs *FS) walkRecursive(dir *node, prefix string, cred Cred, fn func(Info) error) error {
	names := make([]string, 0, len(dir.children))
	for name := range dir.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := dir.children[name]
		info := infoOf(prefix+"/", c)
		info.Path = prefix + "/" + name
		if err := fn(info); err != nil {
			return err
		}
		if c.isDir() && canRead(c.label, cred) {
			if err := fs.walkRecursive(c, prefix+"/"+name, cred, fn); err != nil {
				return err
			}
		}
	}
	return nil
}
