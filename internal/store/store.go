// Package store implements the W5 provider's labeled persistent storage:
// a hierarchical filesystem in which every file and directory carries a
// secrecy and an integrity label, enforced on every operation.
//
// This is the substrate for the paper's two default policies (§3.1):
//
//   - Privacy protection: a file labeled with user u's secrecy tag s_u
//     can be read only by processes whose labels (plus capabilities)
//     dominate it, and once read, the taint follows the reader.
//   - Write protection: "all user data on a W5 cluster is by default
//     write-protected" — files carry the owner's write tag w_u in their
//     integrity label, and only processes that can endorse with w_u may
//     overwrite or delete them.
//
// The store is deliberately ignorant of processes: operations take a
// Cred (label pair + capability set + billing principal), supplied by
// the kernel or syscall layer on behalf of the calling process. This
// keeps the trusted storage logic free of process-table concerns.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"w5/internal/audit"
	"w5/internal/difc"
	"w5/internal/quota"
)

// Errors returned to callers. ErrDenied is intentionally opaque (see
// kernel.ErrDenied for the rationale); details go to the audit log.
var (
	ErrDenied   = errors.New("w5: storage operation denied")
	ErrNotFound = errors.New("w5: no such file or directory")
	ErrExists   = errors.New("w5: file exists")
	ErrIsDir    = errors.New("w5: is a directory")
	ErrNotDir   = errors.New("w5: not a directory")
	ErrBadPath  = errors.New("w5: malformed path")
)

// Cred is the security context of a storage operation: the calling
// process's labels, its capabilities, and the principal billed for disk
// usage.
type Cred struct {
	Labels    difc.LabelPair
	Caps      difc.CapSet
	Principal string
}

// Info describes a file or directory without its contents.
type Info struct {
	Path     string
	Name     string
	IsDir    bool
	Size     int
	Label    difc.LabelPair
	Owner    string
	Version  uint64
	Modified time.Time
}

type node struct {
	name     string
	label    difc.LabelPair
	owner    string
	version  uint64
	modified time.Time

	// exactly one of the following is used
	data     []byte           // file payload
	children map[string]*node // directory entries; nil for files
}

func (n *node) isDir() bool { return n.children != nil }

// FS is a labeled in-memory filesystem. Safe for concurrent use.
type FS struct {
	mu     sync.RWMutex
	root   *node
	log    *audit.Log
	quotas *quota.Manager
	clock  func() time.Time
}

// Options configures an FS.
type Options struct {
	Log    *audit.Log     // optional audit log
	Quotas *quota.Manager // optional disk accounting
	Clock  func() time.Time
}

// New returns an empty filesystem whose root directory is public
// (empty labels) and owned by the provider.
func New(opts Options) *FS {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &FS{
		root: &node{
			name:     "/",
			owner:    "provider",
			children: make(map[string]*node),
			modified: opts.Clock(),
		},
		log:    opts.Log,
		quotas: opts.Quotas,
		clock:  opts.Clock,
	}
}

func (fs *FS) auditf(kind audit.Kind, actor, subject, format string, args ...any) {
	if fs.log != nil {
		fs.log.Appendf(kind, actor, subject, format, args...)
	}
}

// splitPath validates and splits "/a/b/c" into ["a","b","c"].
func splitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, ErrBadPath
	}
	if path == "/" {
		return nil, nil
	}
	parts := strings.Split(path[1:], "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, ErrBadPath
		}
	}
	return parts, nil
}

// canRead reports whether an object labeled l is readable under cred:
// the object→process flow must be safe (the process may use its plus
// capabilities to notionally raise itself).
func canRead(l difc.LabelPair, cred Cred) bool {
	return difc.SafeMessage(l.Secrecy, difc.EmptyCaps, cred.Labels.Secrecy, cred.Caps)
}

// canWrite reports whether an object labeled l is writable under cred:
// the process→object flow must be safe in both secrecy (no leaking the
// process's taint into a less-secret file) and integrity (the file's
// endorsements must be producible by the writer).
func canWrite(l difc.LabelPair, cred Cred) bool {
	return difc.SafeFlow(cred.Labels, cred.Caps, l, difc.EmptyCaps)
}

// walk resolves the directory containing the final path element,
// checking read permission on every directory traversed. Returns the
// parent node and the final element name. Caller holds fs.mu.
func (fs *FS) walk(parts []string, cred Cred) (*node, string, error) {
	if len(parts) == 0 {
		return nil, "", ErrBadPath
	}
	cur := fs.root
	for i := 0; i < len(parts)-1; i++ {
		if !canRead(cur.label, cred) {
			return nil, "", ErrDenied
		}
		next, ok := cur.children[parts[i]]
		if !ok {
			return nil, "", ErrNotFound
		}
		if !next.isDir() {
			return nil, "", ErrNotDir
		}
		cur = next
	}
	if !canRead(cur.label, cred) {
		return nil, "", ErrDenied
	}
	return cur, parts[len(parts)-1], nil
}

// Mkdir creates a directory with the given label. The parent directory
// must be writable under cred, and the new label must be one cred could
// write to (otherwise a process could create objects it then could not
// be accountable for).
func (fs *FS) Mkdir(cred Cred, path string, label difc.LabelPair) error {
	parts, err := splitPath(path)
	if err != nil || len(parts) == 0 {
		return ErrBadPath
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, err := fs.walk(parts, cred)
	if err != nil {
		return err
	}
	if _, ok := parent.children[name]; ok {
		return ErrExists
	}
	if !canWrite(parent.label, cred) || !canWrite(label, cred) {
		fs.auditf(audit.KindFlowDenied, cred.Principal, path, "mkdir denied")
		return ErrDenied
	}
	parent.children[name] = &node{
		name:     name,
		label:    label,
		owner:    cred.Principal,
		children: make(map[string]*node),
		modified: fs.clock(),
	}
	parent.version++
	return nil
}

// MkdirAll creates every missing directory along path with the given
// label; existing directories are left untouched.
func (fs *FS) MkdirAll(cred Cred, path string, label difc.LabelPair) error {
	parts, err := splitPath(path)
	if err != nil {
		return ErrBadPath
	}
	for i := 1; i <= len(parts); i++ {
		sub := "/" + strings.Join(parts[:i], "/")
		if err := fs.Mkdir(cred, sub, label); err != nil && !errors.Is(err, ErrExists) {
			return err
		}
	}
	return nil
}

// Write creates or replaces the file at path with data, labeling new
// files with label. Replacing an existing file requires write permission
// on the current file label; the existing label is retained (relabeling
// is a separate, explicitly-audited operation — SetLabel).
func (fs *FS) Write(cred Cred, path string, data []byte, label difc.LabelPair) error {
	parts, err := splitPath(path)
	if err != nil || len(parts) == 0 {
		return ErrBadPath
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, err := fs.walk(parts, cred)
	if err != nil {
		return err
	}
	existing, ok := parent.children[name]
	if ok {
		if existing.isDir() {
			return ErrIsDir
		}
		if !canWrite(existing.label, cred) {
			fs.auditf(audit.KindFlowDenied, cred.Principal, path, "overwrite denied (%s)", existing.label)
			return ErrDenied
		}
		if err := fs.chargeDelta(cred, existing.owner, len(data)-len(existing.data)); err != nil {
			return err
		}
		existing.data = append([]byte(nil), data...)
		existing.version++
		existing.modified = fs.clock()
		return nil
	}
	if !canWrite(parent.label, cred) || !canWrite(label, cred) {
		fs.auditf(audit.KindFlowDenied, cred.Principal, path, "create denied")
		return ErrDenied
	}
	if err := fs.chargeDelta(cred, cred.Principal, len(data)); err != nil {
		return err
	}
	parent.children[name] = &node{
		name:     name,
		label:    label,
		owner:    cred.Principal,
		data:     append([]byte(nil), data...),
		version:  1,
		modified: fs.clock(),
	}
	parent.version++
	return nil
}

// chargeDelta adjusts the disk quota of the billed principal by delta
// bytes (negative deltas refund). Caller holds fs.mu.
func (fs *FS) chargeDelta(cred Cred, principal string, delta int) error {
	if fs.quotas == nil || delta == 0 {
		return nil
	}
	acct := fs.quotas.Account(principal)
	if delta > 0 {
		if err := acct.Charge(quota.Disk, uint64(delta)); err != nil {
			fs.auditf(audit.KindQuota, cred.Principal, principal, "%v", err)
			return err
		}
		return nil
	}
	acct.Refund(quota.Disk, uint64(-delta))
	return nil
}

// Read returns the contents and label of the file at path. The caller
// is responsible for raising the reading process's label to dominate
// the returned label (the syscall layer does this automatically) — the
// read itself is permitted exactly when that raise would be possible.
func (fs *FS) Read(cred Cred, path string) ([]byte, difc.LabelPair, error) {
	parts, err := splitPath(path)
	if err != nil || len(parts) == 0 {
		return nil, difc.LabelPair{}, ErrBadPath
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	parent, name, err := fs.walkRead(parts, cred)
	if err != nil {
		return nil, difc.LabelPair{}, err
	}
	f, ok := parent.children[name]
	if !ok {
		return nil, difc.LabelPair{}, ErrNotFound
	}
	if f.isDir() {
		return nil, difc.LabelPair{}, ErrIsDir
	}
	if !canRead(f.label, cred) {
		fs.auditf(audit.KindFlowDenied, cred.Principal, path, "read denied (%s)", f.label)
		return nil, difc.LabelPair{}, ErrDenied
	}
	return append([]byte(nil), f.data...), f.label, nil
}

// walkRead is walk without the lock acquisition differences; it exists
// so Read/List/Stat can share traversal under the read lock.
func (fs *FS) walkRead(parts []string, cred Cred) (*node, string, error) {
	return fs.walk(parts, cred)
}

// List returns Info for every entry of the directory at path, sorted by
// name. Reading a directory requires read permission on it; the entry
// labels are included so callers can decide what they can open.
func (fs *FS) List(cred Cred, path string) ([]Info, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	dir, err := fs.resolveDir(path, cred)
	if err != nil {
		return nil, err
	}
	out := make([]Info, 0, len(dir.children))
	for _, c := range dir.children {
		out = append(out, infoOf(path, c))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (fs *FS) resolveDir(path string, cred Cred) (*node, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, ErrBadPath
	}
	if len(parts) == 0 {
		if !canRead(fs.root.label, cred) {
			return nil, ErrDenied
		}
		return fs.root, nil
	}
	parent, name, err := fs.walk(parts, cred)
	if err != nil {
		return nil, err
	}
	d, ok := parent.children[name]
	if !ok {
		return nil, ErrNotFound
	}
	if !d.isDir() {
		return nil, ErrNotDir
	}
	if !canRead(d.label, cred) {
		return nil, ErrDenied
	}
	return d, nil
}

func infoOf(parentPath string, n *node) Info {
	p := parentPath
	if p == "/" {
		p = ""
	}
	return Info{
		Path:     p + "/" + n.name,
		Name:     n.name,
		IsDir:    n.isDir(),
		Size:     len(n.data),
		Label:    n.label,
		Owner:    n.owner,
		Version:  n.version,
		Modified: n.modified,
	}
}

// Stat returns Info for the object at path. Stat requires read
// permission on the containing directory (existence is directory
// metadata) but not on the object itself.
func (fs *FS) Stat(cred Cred, path string) (Info, error) {
	parts, err := splitPath(path)
	if err != nil {
		return Info{}, ErrBadPath
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if len(parts) == 0 {
		return infoOf("", fs.root), nil
	}
	parent, name, err := fs.walk(parts, cred)
	if err != nil {
		return Info{}, err
	}
	n, ok := parent.children[name]
	if !ok {
		return Info{}, ErrNotFound
	}
	dir := "/" + strings.Join(parts[:len(parts)-1], "/")
	if len(parts) == 1 {
		dir = "/"
	}
	return infoOf(dir, n), nil
}

// Remove deletes the object at path. Deleting is a write to both the
// object (write-protection applies: you cannot vandalize what you
// cannot write) and its parent directory. Non-empty directories cannot
// be removed.
func (fs *FS) Remove(cred Cred, path string) error {
	parts, err := splitPath(path)
	if err != nil || len(parts) == 0 {
		return ErrBadPath
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, err := fs.walk(parts, cred)
	if err != nil {
		return err
	}
	n, ok := parent.children[name]
	if !ok {
		return ErrNotFound
	}
	if n.isDir() && len(n.children) > 0 {
		return fmt.Errorf("w5: directory not empty: %s", path)
	}
	if !canWrite(n.label, cred) || !canWrite(parent.label, cred) {
		fs.auditf(audit.KindFlowDenied, cred.Principal, path, "remove denied")
		return ErrDenied
	}
	fs.chargeDelta(cred, n.owner, -len(n.data))
	delete(parent.children, name)
	parent.version++
	return nil
}

// SetLabel relabels the object at path. The transition must be a safe
// label change under cred's capabilities in both components, and cred
// must currently be able to write the object. Every relabel is audited
// as a policy change.
func (fs *FS) SetLabel(cred Cred, path string, label difc.LabelPair) error {
	parts, err := splitPath(path)
	if err != nil || len(parts) == 0 {
		return ErrBadPath
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, name, err := fs.walk(parts, cred)
	if err != nil {
		return err
	}
	n, ok := parent.children[name]
	if !ok {
		return ErrNotFound
	}
	if !canWrite(n.label, cred) {
		fs.auditf(audit.KindFlowDenied, cred.Principal, path, "relabel denied (no write)")
		return ErrDenied
	}
	if !difc.SafeLabelChange(n.label.Secrecy, label.Secrecy, cred.Caps) ||
		!difc.SafeLabelChange(n.label.Integrity, label.Integrity, cred.Caps) {
		fs.auditf(audit.KindFlowDenied, cred.Principal, path, "relabel denied (unsafe change)")
		return ErrDenied
	}
	n.label = label
	n.version++
	n.modified = fs.clock()
	fs.auditf(audit.KindPolicyChange, cred.Principal, path, "relabel to %s", label)
	return nil
}

// Walk visits every object under path readable by cred, in depth-first
// name order, calling fn with each Info. Objects in unreadable
// directories are skipped silently (their existence is not revealed).
func (fs *FS) Walk(cred Cred, path string, fn func(Info) error) error {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	dir, err := fs.resolveDir(path, cred)
	if err != nil {
		return err
	}
	return fs.walkRecursive(dir, strings.TrimSuffix(path, "/"), cred, fn)
}

func (fs *FS) walkRecursive(dir *node, prefix string, cred Cred, fn func(Info) error) error {
	names := make([]string, 0, len(dir.children))
	for name := range dir.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := dir.children[name]
		info := infoOf(prefix+"/", c)
		info.Path = prefix + "/" + name
		if err := fn(info); err != nil {
			return err
		}
		if c.isDir() && canRead(c.label, cred) {
			if err := fs.walkRecursive(c, prefix+"/"+name, cred, fn); err != nil {
				return err
			}
		}
	}
	return nil
}
