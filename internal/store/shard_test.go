package store

// Tests for the sharded store: the locking protocol under -race, the
// equivalence of sharded and single-lock (Shards: 1) semantics on a
// recorded operation trace, the canonicalizer's edge cases, and the
// allocation-free + scaling guarantees the request path depends on.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"w5/internal/difc"
)

// userFixture mints per-user tags/creds/labels the way the provider
// does, without importing core (which would cycle).
type userFixture struct {
	name    string
	cred    Cred
	private difc.LabelPair
}

func makeUsers(n int) []userFixture {
	out := make([]userFixture, n)
	for i := range out {
		s, w := difc.Tag(2*i+1), difc.Tag(2*i+2)
		out[i] = userFixture{
			name: fmt.Sprintf("u%03d", i),
			cred: Cred{
				Labels:    difc.LabelPair{Integrity: difc.NewLabel(w)},
				Caps:      difc.CapsFor(s, w),
				Principal: "user:" + fmt.Sprintf("u%03d", i),
			},
			private: difc.LabelPair{
				Secrecy:   difc.NewLabel(s),
				Integrity: difc.NewLabel(w),
			},
		}
	}
	return out
}

// provisionHomes builds the provider-shaped namespace /home/<u>/private
// for every user.
func provisionHomes(tb testing.TB, fs *FS, users []userFixture) {
	tb.Helper()
	if err := fs.MkdirAll(Cred{Principal: "provider"}, "/home", difc.LabelPair{}); err != nil && !errors.Is(err, ErrExists) {
		tb.Fatalf("mkdir /home: %v", err)
	}
	for _, u := range users {
		home := "/home/" + u.name
		wp := difc.LabelPair{Integrity: u.private.Integrity}
		if err := fs.Mkdir(u.cred, home, wp); err != nil {
			tb.Fatalf("mkdir %s: %v", home, err)
		}
		if err := fs.Mkdir(u.cred, home+"/private", u.private); err != nil {
			tb.Fatalf("mkdir %s/private: %v", home, err)
		}
		if err := fs.Write(u.cred, home+"/private/doc", []byte("doc of "+u.name), u.private); err != nil {
			tb.Fatalf("write %s doc: %v", home, err)
		}
	}
}

func TestCanonicalizerEdgeCases(t *testing.T) {
	bad := []string{
		"", "relative", "relative/x", "//", "///", "/a//b", "/a/../b",
		"/a/./b", "/.", "/..", "/a/", "/a/b/", "/a/..", "/./a",
	}
	for _, p := range bad {
		if _, err := appendSegments(nil, p); !errors.Is(err, ErrBadPath) {
			t.Errorf("appendSegments(%q) = %v, want ErrBadPath", p, err)
		}
	}
	good := map[string][]string{
		"/":           {},
		"/a":          {"a"},
		"/a/b/c":      {"a", "b", "c"},
		"/...":        {"..."}, // three dots is a legal name
		"/a/.b":       {"a", ".b"},
		"/home/u/..x": {"home", "u", "..x"},
	}
	for p, want := range good {
		got, err := appendSegments(nil, p)
		if err != nil {
			t.Errorf("appendSegments(%q) = %v", p, err)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("appendSegments(%q) = %v, want %v", p, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("appendSegments(%q) = %v, want %v", p, got, want)
			}
		}
	}

	// The same rules hold through every public method, not just one.
	fs := New(Options{})
	cred := Cred{Principal: "x"}
	for _, p := range bad {
		if _, _, err := fs.Read(cred, p); !errors.Is(err, ErrBadPath) {
			t.Errorf("Read(%q) = %v, want ErrBadPath", p, err)
		}
		if _, err := fs.Stat(cred, p); !errors.Is(err, ErrBadPath) {
			t.Errorf("Stat(%q) = %v, want ErrBadPath", p, err)
		}
		if _, err := fs.List(cred, p); !errors.Is(err, ErrBadPath) {
			t.Errorf("List(%q) = %v, want ErrBadPath", p, err)
		}
		if err := fs.Walk(cred, p, func(Info) error { return nil }); !errors.Is(err, ErrBadPath) {
			t.Errorf("Walk(%q) = %v, want ErrBadPath", p, err)
		}
		if err := fs.Remove(cred, p); !errors.Is(err, ErrBadPath) {
			t.Errorf("Remove(%q) = %v, want ErrBadPath", p, err)
		}
		if err := fs.SetLabel(cred, p, difc.LabelPair{}); !errors.Is(err, ErrBadPath) {
			t.Errorf("SetLabel(%q) = %v, want ErrBadPath", p, err)
		}
		if _, _, err := fs.Export(p); !errors.Is(err, ErrBadPath) {
			t.Errorf("Export(%q) = %v, want ErrBadPath", p, err)
		}
	}
}

func TestStatRootPathCanonical(t *testing.T) {
	fs := New(Options{})
	info, err := fs.Stat(Cred{Principal: "x"}, "/")
	if err != nil {
		t.Fatal(err)
	}
	if info.Path != "/" || !info.IsDir {
		t.Errorf("Stat(/) = %+v, want Path=/ IsDir", info)
	}
}

func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, defaultShardCount}, {1, 1}, {2, 2}, {3, 4}, {16, 16},
		{17, 32}, {1 << 20, maxShardCount},
	} {
		fs := New(Options{Shards: tc.in})
		if len(fs.shards) != tc.want {
			t.Errorf("Shards=%d -> %d stripes, want %d", tc.in, len(fs.shards), tc.want)
		}
	}
}

// TestHotPathAllocationFree pins the tentpole's allocation contract:
// once a path is interned, Read and Stat allocate nothing.
func TestHotPathAllocationFree(t *testing.T) {
	users := makeUsers(4)
	fs := New(Options{})
	provisionHomes(t, fs, users)
	u := users[1]
	path := "/home/" + u.name + "/private/doc"
	if _, _, err := fs.Read(u.cred, path); err != nil { // warm the intern cache
		t.Fatal(err)
	}
	var sinkData []byte
	var sinkInfo Info
	if a := testing.AllocsPerRun(200, func() {
		sinkData, _, _ = fs.Read(u.cred, path)
	}); a != 0 {
		t.Errorf("Read allocates %.1f per op on a cached path, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		sinkInfo, _ = fs.Stat(u.cred, path)
	}); a != 0 {
		t.Errorf("Stat allocates %.1f per op on a cached path, want 0", a)
	}
	_, _ = sinkData, sinkInfo
}

// TestReadIsStableAcrossOverwrite pins the payload-immutability
// contract that makes zero-copy Read sound: a slice returned by Read
// keeps its bytes even if the file is overwritten or removed afterward.
func TestReadIsStableAcrossOverwrite(t *testing.T) {
	users := makeUsers(1)
	fs := New(Options{})
	provisionHomes(t, fs, users)
	u := users[0]
	path := "/home/" + u.name + "/private/doc"
	before, _, err := fs.Read(u.cred, path)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := string(before)
	if err := fs.Write(u.cred, path, []byte("completely new contents"), u.private); err != nil {
		t.Fatal(err)
	}
	if string(before) != snapshot {
		t.Error("overwrite mutated a previously returned payload slice")
	}
	if err := fs.Remove(u.cred, path); err != nil {
		t.Fatal(err)
	}
	if string(before) != snapshot {
		t.Error("remove mutated a previously returned payload slice")
	}
}

// TestInternCachePoisonResistant: only successful operations intern
// their path, so a stream of probes for nonexistent paths cannot fill
// the cache and disable the allocation-free fast path for everyone.
func TestInternCachePoisonResistant(t *testing.T) {
	fs := New(Options{})
	cred := Cred{Principal: "x"}
	if err := fs.Mkdir(cred, "/d", difc.LabelPair{}); err != nil {
		t.Fatal(err)
	}
	size := func() int {
		n := 0
		for i := range fs.intern.shards {
			n += len(fs.intern.shards[i].m)
		}
		return n
	}
	before := size()
	for i := 0; i < 10_000; i++ {
		p := fmt.Sprintf("/d/f%07d", i)
		if _, err := fs.Stat(cred, p); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Stat(%s) = %v, want ErrNotFound", p, err)
		}
	}
	if after := size(); after != before {
		t.Errorf("probing nonexistent paths grew the intern cache %d -> %d", before, after)
	}
	// A successful operation does intern, and its repeat is then served
	// allocation-free.
	if err := fs.Write(cred, "/d/real", []byte("ok"), difc.LabelPair{}); err != nil {
		t.Fatal(err)
	}
	if size() <= before {
		t.Error("successful write did not intern its path")
	}
	if a := testing.AllocsPerRun(100, func() {
		if _, _, err := fs.Read(cred, "/d/real"); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("Read after successful intern allocates %.1f per op", a)
	}
}

// TestInternCacheBoundedWithEviction drives pathIntern directly past
// capacity: the per-shard maps never exceed internShardCap, and new
// paths keep getting interned (evict-one) instead of being locked out.
func TestInternCacheBoundedWithEviction(t *testing.T) {
	var pi pathIntern
	pi.init()
	total := internShardCount*internShardCap + 4096
	for i := 0; i < total; i++ {
		p := fmt.Sprintf("/home/u%06d/doc", i)
		parts, cached, err := pi.resolve(p, nil)
		if err != nil || cached {
			t.Fatalf("resolve(%s) = cached=%v err=%v on first sight", p, cached, err)
		}
		pi.put(p, parts)
	}
	for i := range pi.shards {
		if n := len(pi.shards[i].m); n > internShardCap {
			t.Errorf("intern shard %d grew to %d entries, cap %d", i, n, internShardCap)
		}
	}
	// The most recent path must have made it in despite saturation.
	last := fmt.Sprintf("/home/u%06d/doc", total-1)
	if _, cached, _ := pi.resolve(last, nil); !cached {
		t.Error("saturated cache refused a fresh working-set path (no eviction)")
	}
}

// --- equivalence: sharded vs single-lock on a recorded trace ---------

// traceOp is one recorded operation; op outcomes and final state must
// not depend on the shard count.
type traceOp struct {
	op    string
	user  int
	path  string
	data  string
	label difc.LabelPair
}

// recordTrace builds a deterministic random operation trace over a
// namespace that exercises every locking regime: root-level entries
// (wide mutations), /home/<u> trees (per-shard), deep nesting, denials
// (cross-user access), removes, relabels, and whole-tree reads.
func recordTrace(users []userFixture, n int) []traceOp {
	rng := rand.New(rand.NewSource(7))
	public := difc.LabelPair{}
	segs := []string{"a", "b", "c", "docs"}
	ops := make([]traceOp, 0, n)
	randPath := func(u userFixture) string {
		switch rng.Intn(4) {
		case 0: // top-level (spine) path
			return "/top" + fmt.Sprint(rng.Intn(4))
		case 1: // home dir itself
			return "/home/" + u.name
		case 2: // file in the private tree
			return "/home/" + u.name + "/private/" + segs[rng.Intn(len(segs))]
		default: // deep path
			return "/home/" + u.name + "/private/" + segs[rng.Intn(len(segs))] + "/" + segs[rng.Intn(len(segs))]
		}
	}
	kinds := []string{"write", "read", "mkdir", "mkdirall", "remove", "setlabel", "stat", "list", "walk", "export"}
	for i := 0; i < n; i++ {
		ui := rng.Intn(len(users))
		u := users[ui]
		op := traceOp{op: kinds[rng.Intn(len(kinds))], user: ui, path: randPath(u)}
		switch rng.Intn(3) {
		case 0:
			op.label = public
		case 1:
			op.label = u.private
		default:
			op.label = difc.LabelPair{Integrity: u.private.Integrity}
		}
		op.data = fmt.Sprintf("payload-%d", rng.Intn(8))
		ops = append(ops, op)
	}
	return ops
}

// applyTrace runs the trace and returns a deterministic digest of every
// operation's outcome.
func applyTrace(tb testing.TB, fs *FS, users []userFixture, ops []traceOp) []string {
	tb.Helper()
	out := make([]string, 0, len(ops))
	emit := func(i int, format string, args ...any) {
		out = append(out, fmt.Sprintf("%04d ", i)+fmt.Sprintf(format, args...))
	}
	for i, op := range ops {
		u := users[op.user]
		switch op.op {
		case "write":
			err := fs.Write(u.cred, op.path, []byte(op.data), op.label)
			emit(i, "write %s: %v", op.path, err)
		case "read":
			data, label, err := fs.Read(u.cred, op.path)
			emit(i, "read %s: %q %s %v", op.path, data, label, err)
		case "mkdir":
			emit(i, "mkdir %s: %v", op.path, fs.Mkdir(u.cred, op.path, op.label))
		case "mkdirall":
			emit(i, "mkdirall %s: %v", op.path, fs.MkdirAll(u.cred, op.path, op.label))
		case "remove":
			emit(i, "remove %s: %v", op.path, fs.Remove(u.cred, op.path))
		case "setlabel":
			emit(i, "setlabel %s: %v", op.path, fs.SetLabel(u.cred, op.path, op.label))
		case "stat":
			info, err := fs.Stat(u.cred, op.path)
			emit(i, "stat %s: %s dir=%v v=%d %v", op.path, info.Path, info.IsDir, info.Version, err)
		case "list":
			infos, err := fs.List(u.cred, op.path)
			names := make([]string, 0, len(infos))
			for _, in := range infos {
				names = append(names, in.Name)
			}
			emit(i, "list %s: %v %v", op.path, names, err)
		case "walk":
			var paths []string
			err := fs.Walk(u.cred, "/", func(in Info) error {
				paths = append(paths, in.Path)
				return nil
			})
			emit(i, "walk: %v %v", paths, err)
		case "export":
			infos, datas, err := fs.Export("/home/" + u.name)
			emit(i, "export %s: %d files %d blobs %v", u.name, len(infos), len(datas), err)
		default:
			tb.Fatalf("unknown trace op %q", op.op)
		}
	}
	return out
}

// fixedClock returns a deterministic monotonic clock so two stores
// replaying the same trace produce byte-identical snapshots.
func fixedClock() func() time.Time {
	var mu sync.Mutex
	t0 := time.Unix(1_000_000, 0).UTC()
	n := 0
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return t0.Add(time.Duration(n) * time.Second)
	}
}

func TestShardedMatchesSingleLockOnTrace(t *testing.T) {
	users := makeUsers(6)
	ops := recordTrace(users, 4000)
	run := func(shards int) ([]string, []byte) {
		fs := New(Options{Shards: shards, Clock: fixedClock()})
		provisionHomes(t, fs, users)
		digest := applyTrace(t, fs, users, ops)
		var buf bytes.Buffer
		if err := fs.Snapshot(&buf); err != nil {
			t.Fatalf("snapshot (shards=%d): %v", shards, err)
		}
		return digest, buf.Bytes()
	}
	refDigest, refSnap := run(1) // the historical single-RWMutex store
	for _, shards := range []int{2, 16, 64} {
		digest, snap := run(shards)
		if !reflect.DeepEqual(refDigest, digest) {
			for i := range refDigest {
				if i < len(digest) && refDigest[i] != digest[i] {
					t.Fatalf("shards=%d diverges from single-lock at op %d:\n  single: %s\n  sharded: %s",
						shards, i, refDigest[i], digest[i])
				}
			}
			t.Fatalf("shards=%d digest length differs: %d vs %d", shards, len(refDigest), len(digest))
		}
		if !bytes.Equal(refSnap, snap) {
			t.Errorf("shards=%d final snapshot differs from single-lock store", shards)
		}
	}
}

// --- race stress -----------------------------------------------------

// TestConcurrentShardStress drives parallel Read/Write/Remove/SetLabel
// traffic across many user trees while other goroutines run cross-shard
// operations (Walk from the root, List /home, Snapshot, top-level
// create/remove). Run under -race this exercises the whole locking
// protocol: narrow vs wide, spine mutation, and snapshot isolation.
func TestConcurrentShardStress(t *testing.T) {
	users := makeUsers(8)
	fs := New(Options{})
	provisionHomes(t, fs, users)
	public := difc.LabelPair{}

	const iters = 400
	var wg sync.WaitGroup
	// Per-user mutators: in-shard traffic.
	for i, u := range users {
		wg.Add(1)
		go func(i int, u userFixture) {
			defer wg.Done()
			base := "/home/" + u.name + "/private"
			for k := 0; k < iters; k++ {
				f := fmt.Sprintf("%s/f%d", base, k%7)
				switch k % 5 {
				case 0:
					_ = fs.Write(u.cred, f, []byte("x"), u.private)
				case 1:
					if data, _, err := fs.Read(u.cred, base+"/doc"); err == nil {
						_ = data[0] // reading a zero-copy payload must be safe mid-churn
					}
				case 2:
					_ = fs.Remove(u.cred, f)
				case 3:
					_ = fs.SetLabel(u.cred, base+"/doc", u.private)
				case 4:
					_, _ = fs.List(u.cred, base)
				}
			}
		}(i, u)
	}
	// Cross-shard walker: Walk and Snapshot during mutation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		anon := Cred{Principal: "walker"}
		for k := 0; k < iters/4; k++ {
			_ = fs.Walk(anon, "/", func(Info) error { return nil })
			_, _ = fs.List(anon, "/home")
			var buf bytes.Buffer
			_ = fs.Snapshot(&buf)
		}
	}()
	// Spine churn: top-level creates/removes take every shard lock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		prov := Cred{Principal: "provider"}
		for k := 0; k < iters/4; k++ {
			d := fmt.Sprintf("/scratch%d", k%3)
			_ = fs.Mkdir(prov, d, public)
			_ = fs.Remove(prov, d)
		}
	}()
	wg.Wait()

	// The store must still be coherent: every user's doc readable.
	for _, u := range users {
		if _, _, err := fs.Read(u.cred, "/home/"+u.name+"/private/doc"); err != nil {
			t.Errorf("%s doc unreadable after stress: %v", u.name, err)
		}
	}
}

// --- benchmarks ------------------------------------------------------

// BenchmarkStoreParallel measures read throughput as goroutines scale,
// comparing the sharded store against the single-lock baseline
// (Shards: 1 — the pre-sharding design). Each goroutine reads its own
// user's private document, the provider's request-path shape.
func BenchmarkStoreParallel(b *testing.B) {
	users := makeUsers(64)
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"single-lock", 1},
		{"sharded", 0},
	} {
		for _, g := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", cfg.name, g), func(b *testing.B) {
				fs := New(Options{Shards: cfg.shards})
				provisionHomes(b, fs, users)
				paths := make([]string, len(users))
				for i, u := range users {
					paths[i] = "/home/" + u.name + "/private/doc"
					if _, _, err := fs.Read(u.cred, paths[i]); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				per := (b.N + g - 1) / g
				var wg sync.WaitGroup
				for w := 0; w < g; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						u := users[w%len(users)]
						p := paths[w%len(paths)]
						for i := 0; i < per; i++ {
							if _, _, err := fs.Read(u.cred, p); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkStoreParallelWrite is the write-path analogue: per-user
// overwrites land in distinct shards and should not serialize.
func BenchmarkStoreParallelWrite(b *testing.B) {
	users := makeUsers(64)
	payload := make([]byte, 256)
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"single-lock", 1},
		{"sharded", 0},
	} {
		for _, g := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", cfg.name, g), func(b *testing.B) {
				fs := New(Options{Shards: cfg.shards})
				provisionHomes(b, fs, users)
				b.ReportAllocs()
				b.ResetTimer()
				per := (b.N + g - 1) / g
				var wg sync.WaitGroup
				for w := 0; w < g; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						u := users[w%len(users)]
						p := "/home/" + u.name + "/private/doc"
						for i := 0; i < per; i++ {
							if err := fs.Write(u.cred, p, payload, u.private); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}
