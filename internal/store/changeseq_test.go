package store

import (
	"bytes"
	"testing"
)

// The change-sequence contract federation's incremental pulls rely on:
// every content or label mutation stamps a strictly increasing
// store-wide sequence, ExportSince(h) returns exactly the files changed
// after horizon h, and both survive a snapshot round trip.

func TestChangeSeqAdvancesOnMutation(t *testing.T) {
	fs := newFS(t)
	setupBobHome(t, fs)
	s0 := fs.ChangeSeq()
	if s0 == 0 {
		t.Fatal("writes did not advance the change sequence")
	}
	info, err := fs.Stat(bobCred, "/bob/diary.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq == 0 || info.Seq > s0 {
		t.Fatalf("file seq %d outside (0, %d]", info.Seq, s0)
	}
	// Overwrite advances both the node stamp and the global counter.
	if err := fs.Write(bobCred, "/bob/diary.txt", []byte("v2"), bobPrivate); err != nil {
		t.Fatal(err)
	}
	info2, _ := fs.Stat(bobCred, "/bob/diary.txt")
	if info2.Seq <= info.Seq || fs.ChangeSeq() <= s0 {
		t.Fatalf("overwrite did not advance seq: %d -> %d (global %d -> %d)",
			info.Seq, info2.Seq, s0, fs.ChangeSeq())
	}
	// Relabel is a policy mutation: it must be visible to incremental
	// mirrors (Private/Protected travel as label semantics).
	s1 := fs.ChangeSeq()
	if err := fs.SetLabel(bobCred, "/bob/diary.txt", public); err != nil {
		t.Fatal(err)
	}
	info3, _ := fs.Stat(bobCred, "/bob/diary.txt")
	if info3.Seq <= info2.Seq || fs.ChangeSeq() <= s1 {
		t.Fatal("relabel did not advance seq")
	}
}

func TestExportSinceReturnsOnlyChangedFiles(t *testing.T) {
	fs := newFS(t)
	setupBobHome(t, fs)
	if err := fs.Write(bobCred, "/bob/notes.txt", []byte("n1"), bobPrivate); err != nil {
		t.Fatal(err)
	}
	h := fs.ChangeSeq() // cursor after both files exist

	infos, _, err := fs.ExportSince("/bob", h)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("nothing changed after horizon, got %d files", len(infos))
	}
	if err := fs.Write(bobCred, "/bob/notes.txt", []byte("n2"), bobPrivate); err != nil {
		t.Fatal(err)
	}
	infos, datas, err := fs.ExportSince("/bob", h)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Path != "/bob/notes.txt" || string(datas[0]) != "n2" {
		t.Fatalf("incremental export = %+v, want only the updated notes.txt", infos)
	}
	// since == 0 is the full export, including files that have never
	// been stamped (pre-seq snapshots restore with seq 0).
	infos, _, err = fs.ExportSince("/bob", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("full export = %d files, want 2", len(infos))
	}
}

func TestChangeSeqSurvivesSnapshotRestore(t *testing.T) {
	fs := newFS(t)
	setupBobHome(t, fs)
	before := fs.ChangeSeq()

	var buf bytes.Buffer
	if err := fs.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	fs2 := newFS(t)
	if err := fs2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := fs2.ChangeSeq(); got != before {
		t.Fatalf("restored ChangeSeq = %d, want %d", got, before)
	}
	// A cursor taken before the restore must stay valid: the next write
	// gets a stamp strictly above it.
	if err := fs2.Write(bobCred, "/bob/diary.txt", []byte("post-restore"), bobPrivate); err != nil {
		t.Fatal(err)
	}
	info, _ := fs2.Stat(bobCred, "/bob/diary.txt")
	if info.Seq <= before {
		t.Fatalf("post-restore write seq %d not above pre-snapshot horizon %d", info.Seq, before)
	}
}
