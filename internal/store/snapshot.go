package store

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"w5/internal/difc"
)

// Snapshotting is a trusted, provider-level operation: it bypasses
// credentials because it serializes the store together with its labels,
// for durability and for federation transfer. The labels travel with
// the data, so restoring a snapshot restores the policies too — the
// paper's "users … attach these policies to their data so that the
// policies applied across applications" (§1) depends on exactly this.

// snapNode is the wire form of one filesystem object.
type snapNode struct {
	Name      string              `json:"name"`
	Dir       bool                `json:"dir,omitempty"`
	Secrecy   difc.Label          `json:"secrecy"`
	Integrity difc.Label          `json:"integrity"`
	Owner     string              `json:"owner"`
	Version   uint64              `json:"version"`
	Seq       uint64              `json:"seq,omitempty"`
	Modified  time.Time           `json:"modified"`
	Data      []byte              `json:"data,omitempty"` // base64 via encoding/json
	Children  map[string]snapNode `json:"children,omitempty"`
}

func toSnap(n *node) snapNode {
	s := snapNode{
		Name:      n.name,
		Dir:       n.isDir(),
		Secrecy:   n.label.Secrecy,
		Integrity: n.label.Integrity,
		Owner:     n.owner,
		Version:   n.version,
		Seq:       n.seq,
		Modified:  n.modified,
	}
	if n.isDir() {
		s.Children = make(map[string]snapNode, len(n.children))
		for name, c := range n.children {
			s.Children[name] = toSnap(c)
		}
	} else {
		s.Data = append([]byte(nil), n.data...)
	}
	return s
}

func fromSnap(s snapNode) (*node, error) {
	n := &node{
		name:     s.Name,
		label:    difc.LabelPair{Secrecy: s.Secrecy, Integrity: s.Integrity},
		owner:    s.Owner,
		version:  s.Version,
		seq:      s.Seq,
		modified: s.Modified,
	}
	if s.Dir {
		n.children = make(map[string]*node, len(s.Children))
		for name, c := range s.Children {
			child, err := fromSnap(c)
			if err != nil {
				return nil, err
			}
			if child.name != name {
				return nil, fmt.Errorf("store: snapshot name mismatch %q vs %q", child.name, name)
			}
			n.children[name] = child
		}
	} else {
		n.data = copyPayload(s.Data) // fresh exact-capacity buffer: see payload immutability
	}
	return n, nil
}

// Snapshot writes a JSON snapshot of the entire filesystem, labels
// included, to w. Trusted operation. The snapshot spans every shard,
// so it holds all shard locks (in index order) while copying the tree.
func (fs *FS) Snapshot(w io.Writer) error {
	fs.rlockAll()
	snap := toSnap(fs.root)
	fs.runlockAll()
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// Restore replaces the filesystem contents from a snapshot produced by
// Snapshot. Trusted operation.
func (fs *FS) Restore(r io.Reader) error {
	var snap snapNode
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("store: corrupt snapshot: %w", err)
	}
	if !snap.Dir {
		return fmt.Errorf("store: snapshot root is not a directory")
	}
	root, err := fromSnap(snap)
	if err != nil {
		return err
	}
	fs.lockAll()
	fs.root = root
	// Resume the change sequence after the snapshot's highest stamp so
	// post-restore mutations keep strictly increasing seqs — an
	// incremental-sync cursor taken before the restore stays valid.
	if max := maxSeq(root); max > fs.seq.Load() {
		fs.seq.Store(max)
	}
	fs.unlockAll()
	return nil
}

// maxSeq reports the highest change-sequence stamp in the subtree.
func maxSeq(n *node) uint64 {
	max := n.seq
	for _, c := range n.children {
		if s := maxSeq(c); s > max {
			max = s
		}
	}
	return max
}

// ChangeSeq reports the store-wide change sequence: the stamp of the
// most recent content or label mutation. Capturing it BEFORE an
// Export/ExportSince walk yields a horizon h such that a later
// ExportSince(path, h) returns every file changed after the walk —
// files mutated during the walk carry stamps > h and are re-sent, so
// the cursor protocol is idempotent rather than lossy.
func (fs *FS) ChangeSeq() uint64 { return fs.seq.Load() }

// Export returns the Info and data of every file under path, without
// credential checks, for the federation shipper. The caller must hold
// the privileges appropriate to the destination — the federation
// declassifier layer enforces that; see internal/federation.
func (fs *FS) Export(path string) ([]Info, [][]byte, error) {
	return fs.ExportSince(path, 0)
}

// ExportSince is Export restricted to files whose change sequence is
// strictly greater than since (0 = everything). Unchanged files are
// skipped before their payloads are copied, so a steady-state
// incremental pull costs a tree walk but no data movement — the
// federation cursor protocol's O(changed files) contract.
func (fs *FS) ExportSince(path string, since uint64) ([]Info, [][]byte, error) {
	var buf [pathBufLen]string
	parts, _, err := fs.intern.resolve(path, buf[:0])
	if err != nil {
		return nil, nil, ErrBadPath
	}
	unlock := fs.lockSubtreeRead(parts)
	defer unlock()
	cur := fs.root
	for _, p := range parts {
		next, ok := cur.children[p]
		if !ok {
			return nil, nil, ErrNotFound
		}
		cur = next
	}
	if !cur.isDir() {
		return nil, nil, ErrNotDir
	}
	var infos []Info
	var datas [][]byte
	var rec func(dir *node, prefix string)
	rec = func(dir *node, prefix string) {
		names := make([]string, 0, len(dir.children))
		for name := range dir.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := dir.children[name]
			if c.isDir() {
				rec(c, prefix+"/"+name)
				continue
			}
			// since == 0 means everything, including seq-0 files
			// restored from snapshots that predate change sequencing.
			if since > 0 && c.seq <= since {
				continue // unchanged since the caller's cursor
			}
			info := infoOf(prefix+"/", c)
			info.Path = prefix + "/" + name
			infos = append(infos, info)
			datas = append(datas, append([]byte(nil), c.data...))
		}
	}
	prefix := path
	if prefix == "/" {
		prefix = ""
	}
	rec(cur, prefix)
	return infos, datas, nil
}
