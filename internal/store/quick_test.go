package store

// Property-based tests of the storage security invariants under random
// label configurations: whatever the labels, (1) a read succeeds iff
// the file's secrecy can flow to the reader, (2) a write succeeds iff
// the writer can produce the file's integrity and not leak its own
// secrecy, (3) denied operations never mutate state.

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"w5/internal/difc"
)

// scenario is one random (file label, credential) configuration over a
// small tag universe so collisions are common.
type scenario struct {
	FileSecrecy   difc.Label
	FileIntegrity difc.Label
	CredSecrecy   difc.Label
	CredIntegrity difc.Label
	Caps          difc.CapSet
}

func randLabel(r *rand.Rand, n int) difc.Label {
	tags := make([]difc.Tag, 0, n)
	for i := 0; i < n; i++ {
		tags = append(tags, difc.Tag(r.Intn(6)+1))
	}
	return difc.NewLabel(tags...)
}

// Generate implements quick.Generator.
func (scenario) Generate(r *rand.Rand, _ int) reflect.Value {
	var caps []difc.Cap
	for i := 0; i < r.Intn(6); i++ {
		c := difc.Cap{Tag: difc.Tag(r.Intn(6) + 1)}
		if r.Intn(2) == 1 {
			c.Kind = difc.CapMinus
		}
		caps = append(caps, c)
	}
	return reflect.ValueOf(scenario{
		FileSecrecy:   randLabel(r, r.Intn(3)),
		FileIntegrity: randLabel(r, r.Intn(3)),
		CredSecrecy:   randLabel(r, r.Intn(3)),
		CredIntegrity: randLabel(r, r.Intn(3)),
		Caps:          difc.NewCapSet(caps...),
	})
}

// setupScenario plants one file with the scenario's label using a
// root-like credential, returning the fs and the scenario credential.
func setupScenario(s scenario) (*FS, Cred, difc.LabelPair) {
	fs := New(Options{})
	almighty := Cred{
		Labels: difc.LabelPair{Integrity: s.FileIntegrity},
		Caps: difc.CapsFor(1, 2, 3, 4, 5, 6).
			Union(difc.NewCapSet()),
		Principal: "root",
	}
	fileLabel := difc.LabelPair{Secrecy: s.FileSecrecy, Integrity: s.FileIntegrity}
	if err := fs.Write(almighty, "/f", []byte("payload"), fileLabel); err != nil {
		panic(err)
	}
	cred := Cred{
		Labels:    difc.LabelPair{Secrecy: s.CredSecrecy, Integrity: s.CredIntegrity},
		Caps:      s.Caps,
		Principal: "subject",
	}
	return fs, cred, fileLabel
}

var quickCfg = &quick.Config{MaxCount: 1500}

func TestQuickReadIffFlow(t *testing.T) {
	f := func(s scenario) bool {
		fs, cred, fileLabel := setupScenario(s)
		_, _, err := fs.Read(cred, "/f")
		want := difc.SafeMessage(fileLabel.Secrecy, difc.EmptyCaps,
			cred.Labels.Secrecy, cred.Caps)
		return (err == nil) == want
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickWriteIffFlow(t *testing.T) {
	f := func(s scenario) bool {
		fs, cred, fileLabel := setupScenario(s)
		err := fs.Write(cred, "/f", []byte("overwrite"), fileLabel)
		want := difc.SafeFlow(cred.Labels, cred.Caps, fileLabel, difc.EmptyCaps)
		return (err == nil) == want
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDeniedWriteNeverMutates(t *testing.T) {
	root := Cred{Caps: difc.CapsFor(1, 2, 3, 4, 5, 6), Principal: "root"}
	f := func(s scenario) bool {
		fs, cred, fileLabel := setupScenario(s)
		if fs.Write(cred, "/f", []byte("overwrite"), fileLabel) == nil {
			return true // allowed writes may mutate, of course
		}
		rootRead := Cred{
			Labels:    difc.LabelPair{Secrecy: fileLabel.Secrecy},
			Caps:      root.Caps,
			Principal: "root",
		}
		data, _, err := fs.Read(rootRead, "/f")
		return err == nil && string(data) == "payload"
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickRemoveRequiresWrite(t *testing.T) {
	f := func(s scenario) bool {
		fs, cred, fileLabel := setupScenario(s)
		err := fs.Remove(cred, "/f")
		// Remove needs write on the file AND on the (public) root dir.
		wantFile := difc.SafeFlow(cred.Labels, cred.Caps, fileLabel, difc.EmptyCaps)
		wantDir := difc.SafeFlow(cred.Labels, cred.Caps, difc.LabelPair{}, difc.EmptyCaps)
		return (err == nil) == (wantFile && wantDir)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSnapshotPreservesEnforcement(t *testing.T) {
	// Restoring a snapshot must yield byte-identical policy decisions.
	f := func(s scenario) bool {
		fs, cred, _ := setupScenario(s)
		var buf bytes.Buffer
		if err := fs.Snapshot(&buf); err != nil {
			return false
		}
		fs2 := New(Options{})
		if err := fs2.Restore(&buf); err != nil {
			return false
		}
		_, _, err1 := fs.Read(cred, "/f")
		_, _, err2 := fs2.Read(cred, "/f")
		return (err1 == nil) == (err2 == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
