package store

import (
	"bytes"
	"errors"
	"testing"

	"w5/internal/audit"
	"w5/internal/difc"
	"w5/internal/quota"
)

// Test fixtures: tag 1 is s_bob (secrecy), tag 2 is w_bob (write
// protection), tag 3 is s_alice.
const (
	sBob   = difc.Tag(1)
	wBob   = difc.Tag(2)
	sAlice = difc.Tag(3)
)

var (
	// bobCred is Bob's own session: tainted with nothing, owns his tags.
	bobCred = Cred{
		Caps:      difc.CapsFor(sBob, wBob),
		Principal: "user:bob",
	}
	// bobPrivate is the boilerplate label for Bob's data: secret to Bob,
	// write-protected by Bob.
	bobPrivate = difc.LabelPair{
		Secrecy:   difc.NewLabel(sBob),
		Integrity: difc.NewLabel(wBob),
	}
	// appCred is an untrusted app that may read Bob's data (s_bob+) but
	// cannot declassify or endorse.
	appCred = Cred{
		Caps:      difc.NewCapSet(difc.Plus(sBob)),
		Principal: "app:x",
	}
	// publicCred has no privileges at all.
	publicCred = Cred{Principal: "anon"}
	public     = difc.LabelPair{}
)

func newFS(t *testing.T) *FS {
	t.Helper()
	return New(Options{})
}

func setupBobHome(t *testing.T, fs *FS) {
	t.Helper()
	if err := fs.Mkdir(bobCred, "/bob", public); err != nil {
		t.Fatalf("mkdir /bob: %v", err)
	}
	if err := fs.Write(bobCred, "/bob/diary.txt", []byte("dear diary"), bobPrivate); err != nil {
		t.Fatalf("write diary: %v", err)
	}
}

func TestWriteAndReadOwnData(t *testing.T) {
	fs := newFS(t)
	setupBobHome(t, fs)
	data, label, err := fs.Read(bobCred, "/bob/diary.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "dear diary" {
		t.Errorf("data = %q", data)
	}
	if !label.Equal(bobPrivate) {
		t.Errorf("label = %v, want %v", label, bobPrivate)
	}
}

func TestReadDeniedWithoutCapability(t *testing.T) {
	fs := newFS(t)
	setupBobHome(t, fs)
	if _, _, err := fs.Read(publicCred, "/bob/diary.txt"); !errors.Is(err, ErrDenied) {
		t.Fatalf("public read of private file: %v", err)
	}
}

func TestReadAllowedWithPlusCapability(t *testing.T) {
	// The W5 default: apps may read (and become tainted by) user data.
	fs := newFS(t)
	setupBobHome(t, fs)
	data, label, err := fs.Read(appCred, "/bob/diary.txt")
	if err != nil {
		t.Fatalf("app read: %v", err)
	}
	if string(data) != "dear diary" {
		t.Errorf("data = %q", data)
	}
	if !label.Secrecy.Has(sBob) {
		t.Error("returned label does not carry taint")
	}
}

func TestReadAllowedWhenAlreadyTainted(t *testing.T) {
	fs := newFS(t)
	setupBobHome(t, fs)
	tainted := Cred{
		Labels:    difc.LabelPair{Secrecy: difc.NewLabel(sBob)},
		Principal: "app:tainted",
	}
	if _, _, err := fs.Read(tainted, "/bob/diary.txt"); err != nil {
		t.Fatalf("tainted read: %v", err)
	}
}

func TestWriteProtectionDefault(t *testing.T) {
	// Paper §3.1: "applications running without explicit write
	// privileges cannot overwrite (or delete) user data."
	fs := newFS(t)
	setupBobHome(t, fs)

	// The app (read-only privilege) tries to vandalize the diary.
	err := fs.Write(appCred, "/bob/diary.txt", []byte("VANDALIZED"), bobPrivate)
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("vandalism result: %v, want ErrDenied", err)
	}
	// And to delete it.
	if err := fs.Remove(appCred, "/bob/diary.txt"); !errors.Is(err, ErrDenied) {
		t.Fatalf("delete result: %v, want ErrDenied", err)
	}
	// Content unchanged.
	data, _, _ := fs.Read(bobCred, "/bob/diary.txt")
	if string(data) != "dear diary" {
		t.Error("file was modified despite denial")
	}
}

func TestDelegatedWritePrivilege(t *testing.T) {
	// Bob delegates w_bob+ to an app he trusts to write faithfully.
	fs := newFS(t)
	setupBobHome(t, fs)
	editor := Cred{
		Caps:      difc.NewCapSet(difc.Plus(sBob), difc.Plus(wBob)),
		Labels:    difc.LabelPair{Integrity: difc.NewLabel(wBob)},
		Principal: "app:editor",
	}
	if err := fs.Write(editor, "/bob/diary.txt", []byte("updated"), bobPrivate); err != nil {
		t.Fatalf("delegated write: %v", err)
	}
	data, _, _ := fs.Read(bobCred, "/bob/diary.txt")
	if string(data) != "updated" {
		t.Error("delegated write did not take")
	}
}

func TestTaintedProcessCannotWritePublic(t *testing.T) {
	// A process that has read Bob's data cannot copy it to a public
	// file — the storage-relay exfiltration channel.
	fs := newFS(t)
	setupBobHome(t, fs)
	tainted := Cred{
		Labels:    difc.LabelPair{Secrecy: difc.NewLabel(sBob)},
		Principal: "app:relay",
	}
	err := fs.Write(tainted, "/bob/leak.txt", []byte("dear diary"), public)
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("storage relay allowed: %v", err)
	}
	// Writing at its own taint level, inside a directory at that level,
	// is fine. (A public directory would refuse even the entry name —
	// names are writes to the directory.)
	taintedLabel := difc.LabelPair{Secrecy: difc.NewLabel(sBob)}
	if err := fs.Mkdir(bobCred, "/bob/private", taintedLabel); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(tainted, "/bob/private/notes.txt", []byte("ok"), taintedLabel); err != nil {
		t.Fatalf("tainted write at level: %v", err)
	}
	// And creating the entry in the public directory is refused.
	if err := fs.Write(tainted, "/bob/notes.txt", []byte("ok"), taintedLabel); !errors.Is(err, ErrDenied) {
		t.Fatalf("tainted create in public dir: %v", err)
	}
}

func TestMkdirChecks(t *testing.T) {
	fs := newFS(t)
	if err := fs.Mkdir(bobCred, "/bob", public); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(bobCred, "/bob", public); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate mkdir: %v", err)
	}
	if err := fs.Mkdir(bobCred, "/bob/a/b", public); !errors.Is(err, ErrNotFound) {
		t.Fatalf("mkdir with missing parent: %v", err)
	}
	if err := fs.MkdirAll(bobCred, "/bob/a/b/c", public); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	if _, err := fs.List(bobCred, "/bob/a/b"); err != nil {
		t.Fatalf("list created dir: %v", err)
	}
	// A tainted process cannot create a public directory (leak via name).
	tainted := Cred{Labels: difc.LabelPair{Secrecy: difc.NewLabel(sBob)}, Principal: "t"}
	if err := fs.Mkdir(tainted, "/exfil", public); !errors.Is(err, ErrDenied) {
		t.Fatalf("tainted mkdir public: %v", err)
	}
}

func TestListAndStat(t *testing.T) {
	fs := newFS(t)
	setupBobHome(t, fs)
	fs.Write(bobCred, "/bob/a.txt", []byte("a"), bobPrivate)

	infos, err := fs.List(bobCred, "/bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("List = %d entries, want 2", len(infos))
	}
	if infos[0].Name != "a.txt" || infos[1].Name != "diary.txt" {
		t.Errorf("List order wrong: %v, %v", infos[0].Name, infos[1].Name)
	}
	st, err := fs.Stat(bobCred, "/bob/diary.txt")
	if err != nil {
		t.Fatal(err)
	}
	if st.IsDir || st.Size != len("dear diary") || st.Version != 1 {
		t.Errorf("Stat = %+v", st)
	}
	if st.Path != "/bob/diary.txt" {
		t.Errorf("Stat path = %q", st.Path)
	}
	root, err := fs.Stat(bobCred, "/")
	if err != nil || !root.IsDir {
		t.Errorf("Stat root: %+v, %v", root, err)
	}
}

func TestListDeniedOnSecretDir(t *testing.T) {
	fs := newFS(t)
	secretDir := difc.LabelPair{Secrecy: difc.NewLabel(sBob)}
	if err := fs.Mkdir(bobCred, "/vault", secretDir); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.List(publicCred, "/vault"); !errors.Is(err, ErrDenied) {
		t.Fatalf("public list of secret dir: %v", err)
	}
	// Traversal through a secret dir is also denied.
	if err := fs.Write(bobCred, "/vault/f", []byte("x"), secretDir); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Read(publicCred, "/vault/f"); !errors.Is(err, ErrDenied) {
		t.Fatalf("read through secret dir: %v", err)
	}
}

func TestRemove(t *testing.T) {
	fs := newFS(t)
	setupBobHome(t, fs)
	if err := fs.Remove(bobCred, "/bob/diary.txt"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Read(bobCred, "/bob/diary.txt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read removed file: %v", err)
	}
	// Non-empty dir refuses removal.
	fs.Write(bobCred, "/bob/x", []byte("x"), public)
	if err := fs.Remove(bobCred, "/bob"); err == nil {
		t.Fatal("removed non-empty directory")
	}
	fs.Remove(bobCred, "/bob/x")
	if err := fs.Remove(bobCred, "/bob"); err != nil {
		t.Fatalf("remove empty dir: %v", err)
	}
}

func TestSetLabel(t *testing.T) {
	fs := newFS(t)
	setupBobHome(t, fs)
	// Bob makes his diary public (he owns s_bob- and can drop w_bob).
	if err := fs.SetLabel(bobCred, "/bob/diary.txt", public); err != nil {
		t.Fatalf("owner relabel: %v", err)
	}
	if _, _, err := fs.Read(publicCred, "/bob/diary.txt"); err != nil {
		t.Fatalf("read after publish: %v", err)
	}
	// The app cannot relabel Bob's other data (no s_bob-).
	fs.Write(bobCred, "/bob/secret.txt", []byte("s"), bobPrivate)
	if err := fs.SetLabel(appCred, "/bob/secret.txt", public); !errors.Is(err, ErrDenied) {
		t.Fatalf("app relabel: %v", err)
	}
}

func TestBadPaths(t *testing.T) {
	fs := newFS(t)
	for _, p := range []string{"", "relative", "//", "/a//b", "/a/../b", "/a/./b"} {
		if err := fs.Write(bobCred, p, nil, public); !errors.Is(err, ErrBadPath) {
			t.Errorf("Write(%q) = %v, want ErrBadPath", p, err)
		}
	}
	if err := fs.Write(bobCred, "/", nil, public); !errors.Is(err, ErrBadPath) {
		t.Errorf("Write(/) = %v", err)
	}
}

func TestWriteToDirAndReadDir(t *testing.T) {
	fs := newFS(t)
	fs.Mkdir(bobCred, "/d", public)
	if err := fs.Write(bobCred, "/d", []byte("x"), public); !errors.Is(err, ErrIsDir) {
		t.Fatalf("write over dir: %v", err)
	}
	if _, _, err := fs.Read(bobCred, "/d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("read dir: %v", err)
	}
	fs.Write(bobCred, "/f", []byte("x"), public)
	if _, err := fs.List(bobCred, "/f"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("list file: %v", err)
	}
	if err := fs.Write(bobCred, "/f/sub", []byte("x"), public); !errors.Is(err, ErrNotDir) {
		t.Fatalf("write under file: %v", err)
	}
}

func TestDiskQuotaChargedAndRefunded(t *testing.T) {
	qm := quota.NewManager(quota.Limits{Disk: 100})
	fs := New(Options{Quotas: qm})
	cred := Cred{Principal: "user:bob", Caps: difc.CapsFor(sBob, wBob)}

	if err := fs.Write(cred, "/a", make([]byte, 60), public); err != nil {
		t.Fatal(err)
	}
	if got := qm.Account("user:bob").Used(quota.Disk); got != 60 {
		t.Errorf("Used = %d, want 60", got)
	}
	// Over budget.
	if err := fs.Write(cred, "/b", make([]byte, 60), public); err == nil {
		t.Fatal("over-quota write succeeded")
	}
	// Shrink refunds.
	if err := fs.Write(cred, "/a", make([]byte, 10), public); err != nil {
		t.Fatal(err)
	}
	if got := qm.Account("user:bob").Used(quota.Disk); got != 10 {
		t.Errorf("Used after shrink = %d, want 10", got)
	}
	// Remove refunds the rest.
	fs.Remove(cred, "/a")
	if got := qm.Account("user:bob").Used(quota.Disk); got != 0 {
		t.Errorf("Used after remove = %d, want 0", got)
	}
}

func TestVersionsIncrement(t *testing.T) {
	fs := newFS(t)
	setupBobHome(t, fs)
	fs.Write(bobCred, "/bob/diary.txt", []byte("v2"), bobPrivate)
	st, _ := fs.Stat(bobCred, "/bob/diary.txt")
	if st.Version != 2 {
		t.Errorf("Version = %d, want 2", st.Version)
	}
}

func TestAuditOnDenial(t *testing.T) {
	log := audit.New()
	fs := New(Options{Log: log})
	fs.Mkdir(bobCred, "/bob", public)
	fs.Write(bobCred, "/bob/f", []byte("x"), bobPrivate)
	fs.Read(publicCred, "/bob/f")
	if log.CountKind(audit.KindFlowDenied) == 0 {
		t.Error("denied read not audited")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	fs := newFS(t)
	setupBobHome(t, fs)
	fs.MkdirAll(bobCred, "/bob/photos", public)
	fs.Write(bobCred, "/bob/photos/cat.jpg", []byte{0xFF, 0xD8, 0x00}, bobPrivate)

	var buf bytes.Buffer
	if err := fs.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	fs2 := newFS(t)
	if err := fs2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	data, label, err := fs2.Read(bobCred, "/bob/photos/cat.jpg")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{0xFF, 0xD8, 0x00}) {
		t.Error("restored data differs")
	}
	if !label.Equal(bobPrivate) {
		t.Error("restored label differs — policy did not travel with data")
	}
	// Policies still enforced after restore.
	if _, _, err := fs2.Read(publicCred, "/bob/photos/cat.jpg"); !errors.Is(err, ErrDenied) {
		t.Errorf("restored file readable publicly: %v", err)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	fs := newFS(t)
	if err := fs.Restore(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage restore succeeded")
	}
	if err := fs.Restore(bytes.NewReader([]byte(`{"name":"f","dir":false,"secrecy":"{}","integrity":"{}"}`))); err == nil {
		t.Error("non-dir root accepted")
	}
}

func TestWalk(t *testing.T) {
	fs := newFS(t)
	setupBobHome(t, fs)
	fs.MkdirAll(bobCred, "/bob/photos", public)
	fs.Write(bobCred, "/bob/photos/cat.jpg", []byte("img"), bobPrivate)
	secret := difc.LabelPair{Secrecy: difc.NewLabel(sBob)}
	fs.Mkdir(bobCred, "/bob/vault", secret)
	fs.Write(bobCred, "/bob/vault/key", []byte("k"), secret)

	var seen []string
	err := fs.Walk(bobCred, "/", func(i Info) error {
		seen = append(seen, i.Path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/bob", "/bob/diary.txt", "/bob/photos", "/bob/photos/cat.jpg", "/bob/vault", "/bob/vault/key"}
	if len(seen) != len(want) {
		t.Fatalf("Walk saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("Walk order: %v, want %v", seen, want)
		}
	}

	// Public cred cannot see inside the vault.
	seen = nil
	fs.Walk(publicCred, "/", func(i Info) error { seen = append(seen, i.Path); return nil })
	for _, p := range seen {
		if p == "/bob/vault/key" {
			t.Error("Walk revealed secret-directory contents to public")
		}
	}
}

func TestExportForFederation(t *testing.T) {
	fs := newFS(t)
	setupBobHome(t, fs)
	infos, datas, err := fs.Export("/bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || len(datas) != 1 {
		t.Fatalf("Export = %d files", len(infos))
	}
	if infos[0].Path != "/bob/diary.txt" || string(datas[0]) != "dear diary" {
		t.Errorf("Export = %+v / %q", infos[0], datas[0])
	}
	if _, _, err := fs.Export("/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Export missing: %v", err)
	}
}
