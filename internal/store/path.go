package store

import (
	"strings"
	"sync"
)

// Path handling for the labeled filesystem.
//
// Every public FS method funnels its path through exactly one
// canonicalizer, appendSegments, so the rules are enforced uniformly
// instead of ad hoc per method:
//
//   - the path must be absolute ("" and "relative/x" are rejected),
//   - no empty segments ("//", trailing "/"),
//   - no "." or ".." segments (the store has no notion of a working
//     directory, and ".." would let a caller escape a label check on an
//     enclosing directory),
//   - "/" canonicalizes to zero segments.
//
// Splitting a path allocates, and the request path resolves the same
// few canonical paths over and over (every app request reads
// /home/<u>/private/...). pathIntern caches the canonical split —
// an immutable []string of segments keyed by the path string — behind
// small sharded read-write locks, so the hot path costs one map lookup
// and zero allocations. The cache is capacity-bounded per shard; once a
// shard is full, novel paths fall back to the zero-alloc splitter with
// a caller-provided stack buffer and simply are not cached.

const (
	// internShardCount shards the intern cache so concurrent request
	// goroutines do not serialize on one lock. Power of two.
	internShardCount = 16
	// internShardCap bounds the cached paths per shard (~64k paths
	// total). Beyond that, resolution still works — it just splits.
	internShardCap = 4096
	// pathBufLen is the stack-buffer segment capacity public methods
	// hand to resolve; deeper (rare) paths spill to the heap.
	pathBufLen = 12
)

// appendSegments validates path and appends its segments to dst,
// returning the extended slice. It performs no allocation beyond
// growing dst: segments are substrings of path. "/" yields dst
// unchanged.
func appendSegments(dst []string, path string) ([]string, error) {
	if len(path) == 0 || path[0] != '/' {
		return nil, ErrBadPath
	}
	if path == "/" {
		return dst, nil
	}
	rest := path[1:]
	for {
		i := strings.IndexByte(rest, '/')
		if i < 0 {
			// Final segment; empty means the path had a trailing slash.
			if rest == "" || rest == "." || rest == ".." {
				return nil, ErrBadPath
			}
			return append(dst, rest), nil
		}
		seg := rest[:i]
		if seg == "" || seg == "." || seg == ".." {
			return nil, ErrBadPath
		}
		dst = append(dst, seg)
		rest = rest[i+1:]
	}
}

// pathIntern is the bounded path → segments cache.
type pathIntern struct {
	shards [internShardCount]internShard
}

type internShard struct {
	mu sync.RWMutex
	m  map[string][]string
}

func (pi *pathIntern) init() {
	for i := range pi.shards {
		pi.shards[i].m = make(map[string][]string)
	}
}

const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func internIndex(path string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(path); i++ {
		h = (h ^ uint32(path[i])) * fnvPrime32
	}
	return h & (internShardCount - 1)
}

// resolve returns the canonical segments of path, serving interned
// slices for known paths without allocating, plus whether the path was
// already interned. On a miss it splits into buf (normally a stack
// buffer supplied by the caller) WITHOUT caching: callers intern via
// put only after the operation succeeds, so a stream of probes for
// nonexistent or denied paths cannot poison the cache. Returned slices
// are shared and must never be mutated.
func (pi *pathIntern) resolve(path string, buf []string) ([]string, bool, error) {
	if path == "/" {
		return nil, true, nil
	}
	if len(path) == 0 || path[0] != '/' {
		return nil, false, ErrBadPath
	}
	sh := &pi.shards[internIndex(path)]
	sh.mu.RLock()
	parts, ok := sh.m[path]
	sh.mu.RUnlock()
	if ok {
		return parts, true, nil
	}
	parts, err := appendSegments(buf, path)
	if err != nil {
		return nil, false, err
	}
	return parts, false, nil
}

// put interns the canonical segments of a path that just served a
// successful operation. A full shard evicts one arbitrary entry
// (map iteration order) rather than refusing, so the cache tracks the
// live working set: a burst of one-off paths causes churn, never a
// permanently disabled fast path.
func (pi *pathIntern) put(path string, parts []string) {
	sh := &pi.shards[internIndex(path)]
	sh.mu.Lock()
	if _, dup := sh.m[path]; !dup {
		if len(sh.m) >= internShardCap {
			for k := range sh.m {
				delete(sh.m, k)
				break
			}
		}
		interned := make([]string, len(parts))
		copy(interned, parts)
		sh.m[path] = interned
	}
	sh.mu.Unlock()
}
