package apps

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"w5/internal/core"
	"w5/internal/table"
)

// Recommend implements the §2 example: "Bob can deploy an application
// that sends him daily e-mail with the 5 most 'relevant' photos and
// blog entries posted by his friends."
//
// Relevance here is keyword overlap between the viewer's interests file
// and each friend's blog posts. The interesting property is not the
// scoring but the information flow: the app freely commingles MANY
// friends' private data in one process — its label accumulates all
// their tags — and the result can still only be exported to someone
// every contributing owner's policy approves. Aggregation over
// isolation (§5), enforced.
//
// Routes:
//
//	GET /top?n=5    the viewer's top-n relevant items
type Recommend struct{}

// Name implements core.App.
func (Recommend) Name() string { return "recommend" }

type scored struct {
	author string
	title  string
	score  int
}

// Handle implements core.App.
func (Recommend) Handle(env *core.AppEnv, req core.AppRequest) (core.AppResponse, error) {
	if err := env.CreateTable(blogSchema()); err != nil {
		return core.AppResponse{}, err
	}
	if req.Owner == "" {
		return text(400, "owner required"), nil
	}
	n := 5
	if v := req.Params["n"]; v != "" {
		fmt.Sscanf(v, "%d", &n)
		if n < 1 || n > 100 {
			n = 5
		}
	}
	interests := readInterests(env, req.Owner)
	friends, err := readFriends(env, req.Owner)
	if err != nil {
		return text(403, "cannot read friend list"), nil
	}
	var items []scored
	for _, friend := range friends {
		// Reading a friend's posts taints this process with the
		// friend's tag — if the friend enabled this app. Otherwise the
		// rows are invisible and the friend contributes nothing.
		rows, err := env.Select(BlogTable, table.Cmp{Col: "author", Op: table.Eq, Val: friend})
		if err != nil {
			continue
		}
		for _, r := range rows {
			s := relevance(interests, r.Values["title"]+" "+r.Values["body"])
			items = append(items, scored{author: friend, title: r.Values["title"], score: s})
		}
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].score > items[j].score })
	if len(items) > n {
		items = items[:n]
	}
	var sb strings.Builder
	sb.WriteString("<ol>")
	for _, it := range items {
		fmt.Fprintf(&sb, "<li>%s — %s (score %d)</li>",
			html.EscapeString(it.title), html.EscapeString(it.author), it.score)
	}
	sb.WriteString("</ol>")
	return page(fmt.Sprintf("Top %d for %s", n, req.Owner), sb.String()), nil
}

func readInterests(env *core.AppEnv, user string) []string {
	data, err := env.ReadFile("/home/" + user + "/social/interests")
	if err != nil {
		return nil
	}
	return tokenize(string(data))
}

func tokenize(s string) []string {
	fields := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !('a' <= r && r <= 'z' || '0' <= r && r <= '9')
	})
	return fields
}

// relevance counts interest keywords occurring in the text.
func relevance(interests []string, text string) int {
	words := make(map[string]bool)
	for _, w := range tokenize(text) {
		words[w] = true
	}
	n := 0
	for _, kw := range interests {
		if words[kw] {
			n++
		}
	}
	return n
}
