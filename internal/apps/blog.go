package apps

import (
	"fmt"
	"html"
	"strconv"
	"strings"

	"w5/internal/core"
	"w5/internal/table"
)

// Blog is the blogging application from Figure 2, built on the labeled
// tuple store rather than files — it exercises the SQL-replacement
// substrate (§3.5). Each post is one labeled row; private posts carry
// the author's secrecy tag, published posts don't. The table is shared
// by all users of the app, yet the store's label filtering means no
// reader ever observes a row they shouldn't — including through counts.
//
// Routes:
//
//	GET  /                          list posts by owner visible to the process
//	GET  /read?id=N                 read one post
//	POST /post?title=T&body=B&public=0|1   write a post (needs write grant)
type Blog struct{}

// Name implements core.App.
func (Blog) Name() string { return "blog" }

// BlogTable is the shared posts table.
const BlogTable = "blog_posts"

func blogSchema() table.Schema {
	return table.Schema{
		Name:    BlogTable,
		Columns: []string{"author", "seq", "title", "body", "public"},
		Index:   []string{"author"},
	}
}

// Handle implements core.App.
func (Blog) Handle(env *core.AppEnv, req core.AppRequest) (core.AppResponse, error) {
	if err := env.CreateTable(blogSchema()); err != nil {
		return core.AppResponse{}, err
	}
	if req.Owner == "" {
		return text(400, "owner required"), nil
	}
	switch {
	case req.Path == "/" || req.Path == "":
		rows, err := env.Select(BlogTable, visiblePred(req))
		if err != nil {
			return text(500, "query failed"), nil
		}
		var sb strings.Builder
		sb.WriteString("<ul>")
		for _, r := range rows {
			fmt.Fprintf(&sb, `<li>#%s: <a href="/app/blog/read?owner=%s&id=%d">%s</a></li>`,
				html.EscapeString(r.Values["seq"]), html.EscapeString(req.Owner),
				r.ID, html.EscapeString(r.Values["title"]))
		}
		sb.WriteString("</ul>")
		return page("Blog of "+req.Owner, sb.String()), nil

	case req.Path == "/read":
		id, err := strconv.ParseUint(req.Params["id"], 10, 64)
		if err != nil {
			return text(400, "bad id"), nil
		}
		rows, err := env.Select(BlogTable, visiblePred(req))
		if err != nil {
			return text(500, "query failed"), nil
		}
		for _, r := range rows {
			if r.ID == id {
				return page(r.Values["title"],
					"<article><pre>"+html.EscapeString(r.Values["body"])+"</pre></article>"), nil
			}
		}
		return text(404, "no such post"), nil

	case req.Path == "/post" && req.Method == "POST":
		title := strings.TrimSpace(req.Params["title"])
		if title == "" {
			return text(400, "title required"), nil
		}
		pub := req.Params["public"] == "1"
		var label, err = env.UserLabel(req.Owner)
		if err != nil {
			return text(404, "no such user"), nil
		}
		if pub {
			label, err = env.PublicLabel(req.Owner)
			if err != nil {
				return text(404, "no such user"), nil
			}
		}
		// seq numbers are per-author and only for display. When posting
		// publicly, count only public rows: reading a private row here
		// would taint this process and make the public write an
		// (illegal) write-down. Order of operations matters in IFC
		// code, and this is the idiom: read at or below your target
		// write level.
		var seqPred table.Pred = table.Cmp{Col: "author", Op: table.Eq, Val: req.Owner}
		if pub {
			seqPred = table.And{L: seqPred, R: table.Cmp{Col: "public", Op: table.Eq, Val: "1"}}
		}
		rows, _ := env.Select(BlogTable, seqPred)
		seq := len(rows) + 1
		_, err = env.Insert(BlogTable, map[string]string{
			"author": req.Owner,
			"seq":    strconv.Itoa(seq),
			"title":  title,
			"body":   req.Params["body"],
			"public": boolStr(pub),
		}, label)
		if err != nil {
			return text(403, "post denied (grant write access?)"), nil
		}
		return text(200, fmt.Sprintf("posted #%d", seq)), nil
	}
	return text(404, "unknown route"), nil
}

// visiblePred restricts reads to the owner's posts and — when the
// viewer is not the owner — to published posts only. This is a
// WELL-BEHAVED app limiting its own taint so its output stays
// exportable; if it misbehaved and read private rows anyway, the
// perimeter (not this code) would stop the leak. See
// TestPhotoNotExportableToStranger for the misbehaving case.
func visiblePred(req core.AppRequest) table.Pred {
	var p table.Pred = table.Cmp{Col: "author", Op: table.Eq, Val: req.Owner}
	if req.Viewer != req.Owner {
		p = table.And{L: p, R: table.Cmp{Col: "public", Op: table.Eq, Val: "1"}}
	}
	return p
}

func boolStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
