package apps

import (
	_ "embed"
	"fmt"

	"w5/internal/core"
	"w5/internal/registry"
	"w5/internal/wvm"
)

// The WVM twins: the example applications reimplemented as untrusted
// bytecode modules, assembled from the embedded W5 Assembly listings
// and published through the registry's open-source path (the §2
// guarantee that users run exactly the listing they audited). Each twin
// is route-for-route, byte-for-byte equivalent to its native
// counterpart on the ported routes; internal/apps/wvmtwin_test.go
// enforces that differentially.

//go:embed wvmsrc/social.w5asm
var socialWVMSrc string

//go:embed wvmsrc/blog.w5asm
var blogWVMSrc string

//go:embed wvmsrc/photoshare.w5asm
var photoshareWVMSrc string

// WVMTwinMemSize is the guest memory each twin runs with: the buffer
// map in the listings ends at 0x8000.
const WVMTwinMemSize = 32 << 10

// WVMTwin pairs a native app name with the W5 Assembly source of its
// bytecode twin.
type WVMTwin struct {
	Name   string // native app name ("social", "blog", "photoshare")
	Source string
}

// WVMTwins lists the bytecode twins in install order.
func WVMTwins() []WVMTwin {
	return []WVMTwin{
		{Name: "social", Source: socialWVMSrc},
		{Name: "blog", Source: blogWVMSrc},
		{Name: "photoshare", Source: photoshareWVMSrc},
	}
}

// AssembleWVMTwin assembles one twin's listing against the app ABI.
func AssembleWVMTwin(t WVMTwin) (*wvm.Program, error) {
	prog, err := wvm.Assemble(t.Source, core.AppSyscallNames)
	if err != nil {
		return nil, fmt.Errorf("twin %s: %w", t.Name, err)
	}
	return prog, nil
}

// InstallWVMTwins publishes each twin to the provider's registry as an
// open-source module named "<native>-wvm" (version 1.0) and installs
// it as a runnable application, so e.g. /app/social-wvm/profile serves
// the bytecode build of the social app. Publishing re-assembles the
// listing and verifies it reproduces the uploaded bytecode.
func InstallWVMTwins(p *core.Provider) error {
	for _, t := range WVMTwins() {
		prog, err := AssembleWVMTwin(t)
		if err != nil {
			return err
		}
		module := t.Name + "-wvm"
		if _, err := p.Registry.Put(registry.Upload{
			Module: module, Version: "1.0", Developer: "twin-dev",
			Kind: registry.KindApp, Program: prog,
			Source: t.Source, SysNames: core.AppSyscallNames,
			Summary: "bytecode twin of the native " + t.Name + " app",
		}); err != nil {
			return fmt.Errorf("twin %s: publish: %w", t.Name, err)
		}
		if err := p.InstallWVMAppLimits(module, "1.0", 0, WVMTwinMemSize); err != nil {
			return fmt.Errorf("twin %s: install: %w", t.Name, err)
		}
	}
	return nil
}
