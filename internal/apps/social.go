// Package apps contains the developer-contributed applications that run
// on the W5 platform: the photo sharing and blogging applications of
// Figure 2, the social-networking pieces of §3.1, and the §2 examples
// (recommendation engine, dating compatibility, chameleon profiles, and
// the §4 address-book/map mashup).
//
// Everything here is UNTRUSTED code: it sees only core.AppEnv, whose
// operations are mediated by the DIFC kernel. These applications are
// written to be well-behaved; internal/attack contains their malicious
// counterparts, and the platform must not care which kind it runs.
package apps

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"w5/internal/core"
	"w5/internal/store"
)

// Social is the social-networking application: profiles and friend
// lists, stored as ordinary labeled files under the owner's home so
// that the friend-list declassifier (and anything else the user
// authorizes) can govern their export.
//
// Routes:
//
//	GET  /profile            render owner's profile
//	POST /profile  body=...  set owner's profile (needs write grant)
//	GET  /friends            list owner's friends
//	POST /friends  add=name  add a friend (needs write grant)
type Social struct{}

// Name implements core.App.
func (Social) Name() string { return "social" }

// Handle implements core.App.
func (Social) Handle(env *core.AppEnv, req core.AppRequest) (core.AppResponse, error) {
	if req.Owner == "" {
		return text(400, "owner required"), nil
	}
	switch {
	case req.Path == "/profile" && req.Method == "GET":
		data, err := env.ReadFile(profilePath(req.Owner))
		if err != nil {
			return text(404, "no profile"), nil
		}
		return page("Profile of "+req.Owner, "<pre>"+html.EscapeString(string(data))+"</pre>"), nil

	case req.Path == "/profile" && req.Method == "POST":
		label, err := env.UserLabel(req.Owner)
		if err != nil {
			return text(404, "no such user"), nil
		}
		if err := env.WriteFile(profilePath(req.Owner), []byte(req.Params["body"]), label); err != nil {
			return text(403, "write denied (grant write access to this app?)"), nil
		}
		return text(200, "profile updated"), nil

	case req.Path == "/friends" && req.Method == "GET":
		friends, err := readFriends(env, req.Owner)
		if err != nil {
			return text(404, "no friend list"), nil
		}
		return page("Friends of "+req.Owner, "<ul><li>"+strings.Join(friends, "</li><li>")+"</li></ul>"), nil

	case req.Path == "/friends" && req.Method == "POST":
		add := strings.TrimSpace(req.Params["add"])
		if add == "" || strings.ContainsAny(add, "\n#") {
			return text(400, "bad friend name"), nil
		}
		friends, _ := readFriends(env, req.Owner)
		for _, f := range friends {
			if f == add {
				return text(200, "already friends"), nil
			}
		}
		friends = append(friends, add)
		label, err := env.UserLabel(req.Owner)
		if err != nil {
			return text(404, "no such user"), nil
		}
		body := strings.Join(friends, "\n") + "\n"
		if err := env.WriteFile(friendsPath(req.Owner), []byte(body), label); err != nil {
			return text(403, "write denied"), nil
		}
		return text(200, fmt.Sprintf("added %s (%d friends)", add, len(friends))), nil
	}
	return text(404, "unknown route"), nil
}

func profilePath(user string) string { return "/home/" + user + "/social/profile" }
func friendsPath(user string) string { return "/home/" + user + "/social/friends" }

// readFriends parses the owner's friend file: one name per line, '#'
// comments — the same format the FriendList declassifier consumes.
func readFriends(env *core.AppEnv, owner string) ([]string, error) {
	data, err := env.ReadFile(friendsPath(owner))
	if err != nil {
		if err == store.ErrNotFound {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	sort.Strings(out)
	return out, nil
}

// text builds a plain-text response.
func text(status int, s string) core.AppResponse {
	return core.AppResponse{Status: status, ContentType: "text/plain; charset=utf-8", Body: []byte(s)}
}

// page builds a small HTML page.
func page(title, body string) core.AppResponse {
	return core.AppResponse{
		Status:      200,
		ContentType: "text/html; charset=utf-8",
		Body: []byte("<html><head><title>" + html.EscapeString(title) + "</title></head><body><h1>" +
			html.EscapeString(title) + "</h1>" + body + "</body></html>"),
	}
}
