package apps

import (
	"fmt"
	"html"
	"strings"

	"w5/internal/core"
)

// Mashup implements the §4 example: a page combining "a private address
// book from MyYahoo with a map from Google" — except that on W5 "the
// same application could generate the annotated map on the server side,
// disallowing export of the address data to the map developers."
//
// The address book is a private labeled file ("name,street,x,y" lines);
// the map module is a server-side renderer (an ASCII grid standing in
// for map tiles). Both run inside the perimeter: the address data
// taints the process, the map renderer sees it, and nothing reaches any
// third party. Contrast with MashupOS, which (per §4) still cannot stop
// the marker coordinates from flowing to the external map API.
//
// Routes:
//
//	GET /map?w=40&h=12     render the annotated map
//	GET /book              render the raw address book
type Mashup struct{}

// Name implements core.App.
func (Mashup) Name() string { return "mashup" }

func bookPath(owner string) string { return "/home/" + owner + "/private/addressbook" }

type entry struct {
	name   string
	street string
	x, y   int
}

// Handle implements core.App.
func (Mashup) Handle(env *core.AppEnv, req core.AppRequest) (core.AppResponse, error) {
	if req.Owner == "" {
		return text(400, "owner required"), nil
	}
	entries, err := readBook(env, req.Owner)
	if err != nil {
		return text(404, "no address book"), nil
	}
	switch req.Path {
	case "/book":
		var sb strings.Builder
		sb.WriteString("<table><tr><th>name</th><th>street</th></tr>")
		for _, e := range entries {
			fmt.Fprintf(&sb, "<tr><td>%s</td><td>%s</td></tr>",
				html.EscapeString(e.name), html.EscapeString(e.street))
		}
		sb.WriteString("</table>")
		return page("Address book of "+req.Owner, sb.String()), nil

	case "/map":
		w, h := 40, 12
		fmt.Sscanf(req.Params["w"], "%d", &w)
		fmt.Sscanf(req.Params["h"], "%d", &h)
		if w < 10 || w > 200 {
			w = 40
		}
		if h < 5 || h > 60 {
			h = 12
		}
		grid := renderMap(entries, w, h)
		var legend strings.Builder
		for i, e := range entries {
			fmt.Fprintf(&legend, "%c = %s (%s)<br>", marker(i), html.EscapeString(e.name),
				html.EscapeString(e.street))
		}
		return page("Map for "+req.Owner,
			"<pre>"+html.EscapeString(grid)+"</pre><p>"+legend.String()+"</p>"), nil
	}
	return text(404, "unknown route"), nil
}

func readBook(env *core.AppEnv, owner string) ([]entry, error) {
	data, err := env.ReadFile(bookPath(owner))
	if err != nil {
		return nil, err
	}
	var out []entry
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			continue
		}
		var e entry
		e.name = strings.TrimSpace(parts[0])
		e.street = strings.TrimSpace(parts[1])
		fmt.Sscanf(strings.TrimSpace(parts[2]), "%d", &e.x)
		fmt.Sscanf(strings.TrimSpace(parts[3]), "%d", &e.y)
		out = append(out, e)
	}
	return out, nil
}

// renderMap is the server-side "map tile service": a grid with roads
// and markers. Coordinates are normalized into the viewport.
func renderMap(entries []entry, w, h int) string {
	grid := make([][]byte, h)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(".", w))
		if y%4 == 2 { // east-west roads
			grid[y] = []byte(strings.Repeat("-", w))
		}
	}
	for x := 0; x < w; x += 10 { // north-south roads
		for y := 0; y < h; y++ {
			grid[y][x] = '|'
		}
	}
	maxX, maxY := 1, 1
	for _, e := range entries {
		if e.x > maxX {
			maxX = e.x
		}
		if e.y > maxY {
			maxY = e.y
		}
	}
	for i, e := range entries {
		px := e.x * (w - 1) / maxX
		py := e.y * (h - 1) / maxY
		grid[py][px] = marker(i)
	}
	rows := make([]string, h)
	for y := range grid {
		rows[y] = string(grid[y])
	}
	return strings.Join(rows, "\n")
}

func marker(i int) byte { return byte('A' + i%26) }
