package apps

import (
	"encoding/base64"
	"errors"
	"strings"
	"testing"

	"w5/internal/core"
	"w5/internal/declass"
	"w5/internal/difc"
)

// harness builds a provider with all apps installed and a set of users
// who have enabled + write-granted the given apps.
func harness(t *testing.T, users []string, appNames ...string) *core.Provider {
	t.Helper()
	p := core.NewProvider(core.Config{Name: "appstest", Enforce: true})
	for _, a := range []core.App{Social{}, PhotoShare{}, Blog{}, Recommend{}, Dating{}, Mashup{}} {
		p.InstallApp(a)
	}
	for _, u := range users {
		if _, err := p.CreateUser(u, "pw"); err != nil {
			t.Fatal(err)
		}
		for _, a := range appNames {
			p.EnableApp(u, a)
			p.GrantWrite(u, a)
		}
	}
	return p
}

// call invokes an app and exports to the viewer, returning status/body;
// export denial is reported as status 403.
func call(t *testing.T, p *core.Provider, app, viewer, owner, path, method string, params map[string]string) (int, string) {
	t.Helper()
	inv, err := p.Invoke(app, core.AppRequest{
		Viewer: viewer, Owner: owner, Path: path, Method: method, Params: params,
	})
	if err != nil {
		t.Fatalf("Invoke(%s %s): %v", app, path, err)
	}
	status := inv.Response.Status
	body, err := p.ExportCheck(inv, viewer)
	if err != nil {
		if errors.Is(err, core.ErrExportDenied) {
			return 403, ""
		}
		t.Fatalf("ExportCheck: %v", err)
	}
	return status, string(body)
}

func TestSocialProfileAndFriends(t *testing.T) {
	p := harness(t, []string{"bob"}, "social")

	// No profile yet.
	if code, _ := call(t, p, "social", "bob", "bob", "/profile", "GET", nil); code != 404 {
		t.Errorf("empty profile = %d", code)
	}
	// Set then get.
	code, body := call(t, p, "social", "bob", "bob", "/profile", "POST",
		map[string]string{"body": "hi, I am <bob>"})
	if code != 200 {
		t.Fatalf("set profile = %d %q", code, body)
	}
	code, body = call(t, p, "social", "bob", "bob", "/profile", "GET", nil)
	if code != 200 || !strings.Contains(body, "hi, I am &lt;bob&gt;") {
		t.Errorf("get profile = %d %q (HTML escaping?)", code, body)
	}
	// Friends.
	for _, f := range []string{"alice", "carol"} {
		if code, _ := call(t, p, "social", "bob", "bob", "/friends", "POST",
			map[string]string{"add": f}); code != 200 {
			t.Fatalf("add friend %s = %d", f, code)
		}
	}
	// Duplicate add is a no-op.
	if _, body := call(t, p, "social", "bob", "bob", "/friends", "POST",
		map[string]string{"add": "alice"}); !strings.Contains(body, "already") {
		t.Errorf("duplicate add = %q", body)
	}
	code, body = call(t, p, "social", "bob", "bob", "/friends", "GET", nil)
	if code != 200 || !strings.Contains(body, "alice") || !strings.Contains(body, "carol") {
		t.Errorf("friends = %d %q", code, body)
	}
	// Bad friend names rejected.
	if code, _ := call(t, p, "social", "bob", "bob", "/friends", "POST",
		map[string]string{"add": "x\ny"}); code != 400 {
		t.Errorf("newline in friend name accepted")
	}
}

func TestSocialWriteRequiresGrant(t *testing.T) {
	p := harness(t, []string{"bob"}, "social")
	p.RevokeWrite("bob", "social")
	code, _ := call(t, p, "social", "bob", "bob", "/profile", "POST",
		map[string]string{"body": "x"})
	if code != 403 {
		t.Errorf("ungranted write = %d, want 403", code)
	}
}

func TestPhotoShareLifecycle(t *testing.T) {
	p := harness(t, []string{"bob"}, "photoshare")
	img := base64.StdEncoding.EncodeToString([]byte{0xFF, 0xD8, 0xFF, 0xE0})

	code, body := call(t, p, "photoshare", "bob", "bob", "/upload", "POST",
		map[string]string{"name": "cat.jpg", "data": img})
	if code != 200 {
		t.Fatalf("upload = %d %q", code, body)
	}
	code, body = call(t, p, "photoshare", "bob", "bob", "/", "GET", nil)
	if code != 200 || !strings.Contains(body, "cat.jpg") {
		t.Errorf("list = %d %q", code, body)
	}
	code, body = call(t, p, "photoshare", "bob", "bob", "/view", "GET",
		map[string]string{"name": "cat.jpg"})
	if code != 200 || !strings.Contains(body, "data:image/jpeg;base64,") {
		t.Errorf("view = %d", code)
	}
	// Path traversal refused.
	if code, _ := call(t, p, "photoshare", "bob", "bob", "/view", "GET",
		map[string]string{"name": "../../etc/passwd"}); code != 400 {
		t.Errorf("traversal name = %d, want 400", code)
	}
	// Delete.
	if code, _ := call(t, p, "photoshare", "bob", "bob", "/delete", "POST",
		map[string]string{"name": "cat.jpg"}); code != 200 {
		t.Errorf("delete = %d", code)
	}
	code, body = call(t, p, "photoshare", "bob", "bob", "/view", "GET",
		map[string]string{"name": "cat.jpg"})
	if code != 404 {
		t.Errorf("view after delete = %d", code)
	}
}

func TestPhotoNotExportableToStranger(t *testing.T) {
	p := harness(t, []string{"bob", "charlie"}, "photoshare")
	img := base64.StdEncoding.EncodeToString([]byte("JPEGDATA"))
	call(t, p, "photoshare", "bob", "bob", "/upload", "POST",
		map[string]string{"name": "cat.jpg", "data": img})

	// Charlie asks the app for Bob's photo; the app can read it (it has
	// s_bob+ because bob enabled the app) but the export must fail.
	code, body := call(t, p, "photoshare", "charlie", "bob", "/view", "GET",
		map[string]string{"name": "cat.jpg"})
	if code != 403 {
		t.Errorf("stranger view = %d %q", code, body)
	}
}

func TestBlogPostAndRead(t *testing.T) {
	p := harness(t, []string{"bob"}, "blog")
	code, body := call(t, p, "blog", "bob", "bob", "/post", "POST",
		map[string]string{"title": "first!", "body": "hello world"})
	if code != 200 {
		t.Fatalf("post = %d %q", code, body)
	}
	code, body = call(t, p, "blog", "bob", "bob", "/", "GET", nil)
	if code != 200 || !strings.Contains(body, "first!") {
		t.Errorf("list = %d %q", code, body)
	}
	// Read via the listed id (row id 1 — first insert).
	code, body = call(t, p, "blog", "bob", "bob", "/read", "GET",
		map[string]string{"id": "1"})
	if code != 200 || !strings.Contains(body, "hello world") {
		t.Errorf("read = %d %q", code, body)
	}
}

func TestBlogPrivateInvisibleToOthersPublicVisible(t *testing.T) {
	p := harness(t, []string{"bob", "alice"}, "blog")
	call(t, p, "blog", "bob", "bob", "/post", "POST",
		map[string]string{"title": "secret plans", "body": "shh"})
	call(t, p, "blog", "bob", "bob", "/post", "POST",
		map[string]string{"title": "public post", "body": "hello all", "public": "1"})

	// Alice lists bob's blog: sees only the public post (the private
	// row is filtered by the table store AND would fail export anyway).
	code, body := call(t, p, "blog", "alice", "bob", "/", "GET", nil)
	if code != 200 {
		t.Fatalf("alice list = %d", code)
	}
	if strings.Contains(body, "secret plans") {
		t.Errorf("private post leaked: %q", body)
	}
	if !strings.Contains(body, "public post") {
		t.Errorf("public post missing: %q", body)
	}
}

func TestRecommendTopItems(t *testing.T) {
	p := harness(t, []string{"bob", "alice", "carol"}, "blog", "recommend", "social")
	// Bob's interests and friendships.
	call(t, p, "social", "bob", "bob", "/friends", "POST", map[string]string{"add": "alice"})
	call(t, p, "social", "bob", "bob", "/friends", "POST", map[string]string{"add": "carol"})
	writeInterests(t, p, "bob", "jazz hiking photography")

	// The recommendation commingles the friends' PRIVATE posts, so each
	// friend must have a policy that approves bob: they friend him back
	// and authorize the friend-list declassifier. (Without this, the
	// export below fails — the platform, not the app, decides.)
	for _, friend := range []string{"alice", "carol"} {
		call(t, p, "social", friend, friend, "/friends", "POST", map[string]string{"add": "bob"})
		if err := p.AuthorizeDeclassifier(friend, declass.FriendList{}); err != nil {
			t.Fatal(err)
		}
	}

	// Friends' posts with varying relevance.
	call(t, p, "blog", "alice", "alice", "/post", "POST",
		map[string]string{"title": "jazz night", "body": "jazz jazz hiking"})
	call(t, p, "blog", "carol", "carol", "/post", "POST",
		map[string]string{"title": "tax tips", "body": "boring"})
	call(t, p, "blog", "carol", "carol", "/post", "POST",
		map[string]string{"title": "hiking trip", "body": "photography on the trail"})

	code, body := call(t, p, "recommend", "bob", "bob", "/top", "GET",
		map[string]string{"n": "2"})
	if code != 200 {
		t.Fatalf("recommend = %d %q", code, body)
	}
	// Both relevant items present, the irrelevant one cut by n=2.
	if !strings.Contains(body, "jazz night") || !strings.Contains(body, "hiking trip") {
		t.Errorf("top items wrong: %q", body)
	}
	if strings.Contains(body, "tax tips") {
		t.Errorf("irrelevant item included: %q", body)
	}
	// The recommendation commingles alice's and carol's data; it must
	// not export to alice (carol's policy hasn't approved her).
	inv, _ := p.Invoke("recommend", core.AppRequest{Viewer: "alice", Owner: "bob",
		Path: "/top", Params: map[string]string{}})
	if _, err := p.ExportCheck(inv, "alice"); !errors.Is(err, core.ErrExportDenied) {
		t.Errorf("commingled result exported to alice: %v", err)
	}
}

// userLabelOf is the boilerplate private label for a user: {s_u}/{w_u}.
func userLabelOf(u *core.User) difc.LabelPair {
	return difc.LabelPair{
		Secrecy:   difc.NewLabel(u.SecrecyTag),
		Integrity: difc.NewLabel(u.WriteTag),
	}
}

func writeInterests(t *testing.T, p *core.Provider, user, interests string) {
	t.Helper()
	u, err := p.GetUser(user)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FS.Write(p.UserCred(user), "/home/"+user+"/social/interests",
		[]byte(interests), userLabelOf(u)); err != nil {
		t.Fatal(err)
	}
}

func TestDatingMatch(t *testing.T) {
	p := harness(t, []string{"bob", "alice", "zed"}, "dating")
	writeInterests(t, p, "bob", "jazz hiking scifi")
	writeInterests(t, p, "alice", "jazz hiking cooking")
	writeInterests(t, p, "zed", "golf")

	// Matching reads both parties' private interests; candidates decide
	// who may learn about matches involving them. Alice admits only
	// bob; zed's dating data is public.
	if err := p.AuthorizeDeclassifier("alice", declass.Group{GroupName: "dates", Members: []string{"bob"}}); err != nil {
		t.Fatal(err)
	}
	if err := p.AuthorizeDeclassifier("zed", declass.Public{}); err != nil {
		t.Fatal(err)
	}

	code, body := call(t, p, "dating", "bob", "bob", "/match", "GET",
		map[string]string{"candidate": "alice"})
	if code != 200 {
		t.Fatalf("match = %d %q", code, body)
	}
	// Jaccard: |{jazz,hiking}| / |{jazz,hiking,scifi,cooking}| = 2/4.
	if !strings.Contains(body, "50%") {
		t.Errorf("score wrong: %q", body)
	}
	if !strings.Contains(body, "hiking, jazz") {
		t.Errorf("shared interests wrong: %q", body)
	}
	// Weighted metric: make jazz worth 3 → 4/6 = 67%.
	_, body = call(t, p, "dating", "bob", "bob", "/match", "GET",
		map[string]string{"candidate": "alice", "weight.jazz": "3"})
	if !strings.Contains(body, "67%") {
		t.Errorf("weighted score wrong: %q", body)
	}
	// Ranking.
	_, body = call(t, p, "dating", "bob", "bob", "/best", "GET", nil)
	aliceIdx := strings.Index(body, "alice")
	zedIdx := strings.Index(body, "zed")
	if aliceIdx < 0 || (zedIdx >= 0 && zedIdx < aliceIdx) {
		t.Errorf("ranking wrong: %q", body)
	}
	// The match result is tainted by BOTH users; alice cannot pull
	// bob×alice compatibility without bob's consent... and vice versa:
	// charlie can see nothing at all.
	inv, _ := p.Invoke("dating", core.AppRequest{Viewer: "zed", Owner: "bob",
		Path: "/match", Params: map[string]string{"candidate": "alice"}})
	if _, err := p.ExportCheck(inv, "zed"); !errors.Is(err, core.ErrExportDenied) {
		t.Errorf("pair compatibility exported to third party: %v", err)
	}
}

func TestMashupServerSide(t *testing.T) {
	p := harness(t, []string{"bob"}, "mashup")
	book := "# name,street,x,y\nalice,1 main st,2,3\ncafe,9 side ave,8,1\n"
	u, _ := p.GetUser("bob")
	if err := p.FS.Write(p.UserCred("bob"), "/home/bob/private/addressbook",
		[]byte(book), userLabelOf(u)); err != nil {
		t.Fatal(err)
	}
	code, body := call(t, p, "mashup", "bob", "bob", "/map", "GET", nil)
	if code != 200 {
		t.Fatalf("map = %d", code)
	}
	// Markers and legend present.
	if !strings.Contains(body, "A = alice") || !strings.Contains(body, "B = cafe") {
		t.Errorf("legend wrong: %q", body)
	}
	// The address book page renders too.
	code, body = call(t, p, "mashup", "bob", "bob", "/book", "GET", nil)
	if code != 200 || !strings.Contains(body, "1 main st") {
		t.Errorf("book = %d %q", code, body)
	}
	// And none of it exports to a stranger: the §4 property that the
	// map developer/other users never see the addresses.
	inv, _ := p.Invoke("mashup", core.AppRequest{Viewer: "", Owner: "bob", Path: "/map",
		Params: map[string]string{}})
	if _, err := p.ExportCheck(inv, ""); !errors.Is(err, core.ErrExportDenied) {
		t.Errorf("map exported anonymously: %v", err)
	}
}

func TestAppsRejectMissingOwner(t *testing.T) {
	p := harness(t, nil)
	for _, app := range []string{"social", "photoshare", "blog", "recommend", "dating", "mashup"} {
		inv, err := p.Invoke(app, core.AppRequest{Viewer: "", Owner: "", Path: "/"})
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if inv.Response.Status != 400 && inv.Response.Status != 404 {
			t.Errorf("%s with no owner = %d", app, inv.Response.Status)
		}
		p.Kernel.Exit(inv.Proc)
	}
}
