package apps

import (
	"embed"
	"strings"
)

// Sources embeds this package's application implementations so the
// evaluation suite (experiment E4) can measure what a human auditor
// would actually have to read per application.
//
//go:embed social.go photoshare.go blog.go recommend.go dating.go mashup.go
var Sources embed.FS

// SourceLines returns non-blank, non-comment line counts per
// application source file.
func SourceLines() map[string]int {
	out := make(map[string]int)
	entries, err := Sources.ReadDir(".")
	if err != nil {
		return out
	}
	for _, e := range entries {
		data, err := Sources.ReadFile(e.Name())
		if err != nil {
			continue
		}
		out[e.Name()] = countCodeLines(string(data))
	}
	return out
}

func countCodeLines(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		n++
	}
	return n
}
