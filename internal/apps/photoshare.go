package apps

import (
	"encoding/base64"
	"fmt"
	"html"
	"strings"

	"w5/internal/core"
	"w5/internal/difc"
)

// PhotoShare is the photo-sharing application from Figure 2. Photos
// live under the owner's home as labeled files; "albums" are
// directories. Crucially, nothing in this code decides who may see a
// photo — the labels and the owner's declassifiers do.
//
// Routes:
//
//	GET  /                         list the owner's photos
//	GET  /view?name=N              render one photo (base64 inline)
//	POST /upload?name=N&data=B64   store a photo (needs write grant)
//	POST /delete?name=N            remove a photo (needs write grant)
type PhotoShare struct{}

// Name implements core.App.
func (PhotoShare) Name() string { return "photoshare" }

func photoDir(owner string) string { return "/home/" + owner + "/private/photos" }

// Handle implements core.App.
func (PhotoShare) Handle(env *core.AppEnv, req core.AppRequest) (core.AppResponse, error) {
	if req.Owner == "" {
		return text(400, "owner required"), nil
	}
	switch {
	case req.Path == "/" || req.Path == "":
		infos, err := env.List(photoDir(req.Owner))
		if err != nil {
			return page("Photos of "+req.Owner, "<p>(no photos)</p>"), nil
		}
		var sb strings.Builder
		sb.WriteString("<ul>")
		for _, info := range infos {
			fmt.Fprintf(&sb, `<li><a href="/app/photoshare/view?owner=%s&name=%s">%s</a> (%d bytes, v%d)</li>`,
				html.EscapeString(req.Owner), html.EscapeString(info.Name),
				html.EscapeString(info.Name), info.Size, info.Version)
		}
		sb.WriteString("</ul>")
		return page("Photos of "+req.Owner, sb.String()), nil

	case req.Path == "/view":
		name := req.Params["name"]
		if !validName(name) {
			return text(400, "bad photo name"), nil
		}
		data, err := env.ReadFile(photoDir(req.Owner) + "/" + name)
		if err != nil {
			return text(404, "no such photo"), nil
		}
		b64 := base64.StdEncoding.EncodeToString(data)
		return page("Photo "+name,
			`<img alt="`+html.EscapeString(name)+`" src="data:image/jpeg;base64,`+b64+`">`), nil

	case req.Path == "/upload" && req.Method == "POST":
		name := req.Params["name"]
		if !validName(name) {
			return text(400, "bad photo name"), nil
		}
		data, err := base64.StdEncoding.DecodeString(req.Params["data"])
		if err != nil {
			return text(400, "data must be base64"), nil
		}
		label, err := env.UserLabel(req.Owner)
		if err != nil {
			return text(404, "no such user"), nil
		}
		if err := ensurePhotoDir(env, req.Owner, label); err != nil {
			return text(403, "cannot create photo album"), nil
		}
		if err := env.WriteFile(photoDir(req.Owner)+"/"+name, data, label); err != nil {
			return text(403, "write denied (grant write access?)"), nil
		}
		return text(200, fmt.Sprintf("stored %s (%d bytes)", name, len(data))), nil

	case req.Path == "/delete" && req.Method == "POST":
		name := req.Params["name"]
		if !validName(name) {
			return text(400, "bad photo name"), nil
		}
		if err := env.Remove(photoDir(req.Owner) + "/" + name); err != nil {
			return text(403, "delete denied"), nil
		}
		return text(200, "deleted "+name), nil
	}
	return text(404, "unknown route"), nil
}

func ensurePhotoDir(env *core.AppEnv, owner string, label difc.LabelPair) error {
	if _, err := env.Stat(photoDir(owner)); err == nil {
		return nil
	}
	return env.Mkdir(photoDir(owner), label)
}

func validName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	return !strings.ContainsAny(name, "/\\\x00")
}
