package apps

import (
	"encoding/base64"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"w5/internal/core"
	"w5/internal/declass"
	"w5/internal/quota"
)

// The differential harness: every request is sent to two providers with
// identical state — one running the native Go apps, one running the WVM
// twins installed under the same names — and the two must agree on the
// invocation error, status, content type, response bytes, export
// verdict, the audit events appended, and (in the store-visible
// dimensions) the quota bill. This is what makes the twins trustworthy
// substitutes on the request path.

var twinAppNames = []string{"social", "blog", "photoshare"}

// newTwinPair builds the (native, wvm) provider pair. CPU and Memory
// limits are raised far above the corpus's needs because the WVM
// meters both per request while native apps do not — that asymmetry is
// inherent (and asserted separately); the store-visible dimensions
// (Disk, Query, Network) must match exactly.
func newTwinPair(t *testing.T) (*core.Provider, *core.Provider) {
	t.Helper()
	limits := quota.DefaultAppLimits()
	limits.CPU = 1 << 40
	limits.Memory = 1 << 40
	users := []string{"alice", "bob", "carol", "dana"}

	mk := func(native bool) *core.Provider {
		p := core.NewProvider(core.Config{Name: "twin", Enforce: true, AppLimits: limits})
		if native {
			for _, a := range []core.App{Social{}, Blog{}, PhotoShare{}} {
				p.InstallApp(a)
			}
		} else {
			for _, tw := range WVMTwins() {
				prog, err := AssembleWVMTwin(tw)
				if err != nil {
					t.Fatal(err)
				}
				p.InstallApp(&core.WVMApp{AppName: tw.Name, Prog: prog, MemSize: WVMTwinMemSize})
			}
		}
		for _, u := range users {
			if _, err := p.CreateUser(u, "pw"); err != nil {
				t.Fatal(err)
			}
			for _, a := range twinAppNames {
				p.EnableApp(u, a)
				// dana never grants writes: her requests exercise the
				// denied paths.
				if u != "dana" {
					p.GrantWrite(u, a)
				}
			}
		}
		// dana also has no declassifier, so strangers reading her data
		// hit export denial; everyone else publishes via Public.
		for _, u := range []string{"alice", "bob", "carol"} {
			if err := p.AuthorizeDeclassifier(u, declass.Public{}); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	return mk(true), mk(false)
}

// outcome is everything observable about one request on one provider.
type outcome struct {
	invErr string // "" if the invocation succeeded
	status int
	ctype  string
	denied bool // export denied
	body   string
	events []string // audit delta as kind|actor|subject|detail
}

func runOne(t *testing.T, p *core.Provider, app, viewer, owner, path, method string, params map[string]string) outcome {
	t.Helper()
	from := uint64(p.Log.Len())
	var o outcome
	inv, err := p.Invoke(app, core.AppRequest{
		Viewer: viewer, Owner: owner, Path: path, Method: method, Params: params,
	})
	if err != nil {
		o.invErr = err.Error()
	} else {
		o.status = inv.Response.Status
		o.ctype = inv.Response.ContentType
		body, exErr := p.ExportCheck(inv, viewer)
		switch {
		case exErr == nil:
			o.body = string(body)
		case errors.Is(exErr, core.ErrExportDenied):
			o.denied = true
		default:
			t.Fatalf("ExportCheck(%s %s %s): %v", app, method, path, exErr)
		}
	}
	for _, e := range p.Log.Since(from) {
		o.events = append(o.events, fmt.Sprintf("%s|%s|%s|%s", e.Kind, e.Actor, e.Subject, e.Detail))
	}
	return o
}

// diffOne sends the same request to both providers and fails the test
// on any observable divergence.
func diffOne(t *testing.T, pn, pw *core.Provider, app, viewer, owner, path, method string, params map[string]string) {
	t.Helper()
	n := runOne(t, pn, app, viewer, owner, path, method, params)
	w := runOne(t, pw, app, viewer, owner, path, method, params)
	desc := fmt.Sprintf("%s %s%s viewer=%s owner=%s params=%v", method, app, path, viewer, owner, params)

	if (n.invErr == "") != (w.invErr == "") {
		t.Fatalf("%s: invocation error diverged: native=%q wvm=%q", desc, n.invErr, w.invErr)
	}
	if n.status != w.status {
		t.Fatalf("%s: status diverged: native=%d wvm=%d", desc, n.status, w.status)
	}
	if n.ctype != w.ctype {
		t.Fatalf("%s: content type diverged: native=%q wvm=%q", desc, n.ctype, w.ctype)
	}
	if n.denied != w.denied {
		t.Fatalf("%s: export verdict diverged: native denied=%v wvm denied=%v", desc, n.denied, w.denied)
	}
	if n.body != w.body {
		t.Fatalf("%s: body diverged:\nnative: %q\nwvm:    %q", desc, n.body, w.body)
	}
	if nj, wj := strings.Join(n.events, "\n"), strings.Join(w.events, "\n"); nj != wj {
		t.Fatalf("%s: audit trail diverged:\nnative:\n%s\nwvm:\n%s", desc, nj, wj)
	}
}

// TestWVMTwinFixedCases pins a readable set of handpicked requests:
// every route, every error branch, escaping, and the export-denial
// path.
func TestWVMTwinFixedCases(t *testing.T) {
	pn, pw := newTwinPair(t)
	d := func(app, viewer, owner, path, method string, params map[string]string) {
		t.Helper()
		diffOne(t, pn, pw, app, viewer, owner, path, method, params)
	}
	photo := base64.StdEncoding.EncodeToString([]byte("jpeg<bytes>&more\x00\x01"))

	// social
	d("social", "alice", "", "/profile", "GET", nil)
	d("social", "alice", "alice", "/profile", "GET", nil) // no profile yet
	d("social", "alice", "alice", "/profile", "POST", map[string]string{"body": "hi <alice> & \"friends\""})
	d("social", "alice", "alice", "/profile", "GET", nil)
	d("social", "bob", "alice", "/profile", "GET", nil)                                     // declassified via Public
	d("social", "alice", "nosuchuser", "/profile", "POST", map[string]string{"body": "x"})  // no such user
	d("social", "dana", "dana", "/profile", "POST", map[string]string{"body": "private d"}) // write denied (no grant)
	d("social", "alice", "alice", "/elsewhere", "GET", nil)                                 // unknown route
	d("social", "alice", "alice", "/profile", "POST", nil)                                  // missing body param

	// blog
	d("blog", "bob", "", "/", "GET", nil)
	d("blog", "bob", "bob", "/", "GET", nil) // empty list
	d("blog", "bob", "bob", "/post", "POST", map[string]string{"title": "First <post>", "body": "hello & welcome", "public": "1"})
	d("blog", "bob", "bob", "/post", "POST", map[string]string{"title": "  padded  ", "body": "b2", "public": "0"})
	d("blog", "bob", "bob", "/post", "POST", map[string]string{"title": "   ", "body": "no title"}) // title required
	d("blog", "bob", "bob", "", "GET", nil)
	d("blog", "alice", "bob", "/", "GET", nil) // stranger sees public only
	d("blog", "bob", "bob", "/read", "GET", map[string]string{"id": "1"})
	d("blog", "alice", "bob", "/read", "GET", map[string]string{"id": "2"}) // private to stranger
	d("blog", "bob", "bob", "/read", "GET", map[string]string{"id": "999"})
	d("blog", "bob", "bob", "/read", "GET", map[string]string{"id": "abc"})
	d("blog", "bob", "bob", "/read", "GET", map[string]string{"id": ""})
	d("blog", "bob", "bob", "/read", "GET", map[string]string{"id": "-1"})
	d("blog", "bob", "bob", "/read", "GET", nil)
	d("blog", "bob", "nosuchuser", "/post", "POST", map[string]string{"title": "t"})
	d("blog", "dana", "dana", "/post", "POST", map[string]string{"title": "t", "body": "b"}) // denied
	d("blog", "bob", "bob", "/post", "GET", map[string]string{"title": "t"})                 // unknown route

	// photoshare
	d("photoshare", "carol", "carol", "/", "GET", nil) // no album yet
	d("photoshare", "carol", "carol", "/upload", "POST", map[string]string{"name": "sunset <1>.jpg", "data": photo})
	d("photoshare", "carol", "carol", "/upload", "POST", map[string]string{"name": "b.jpg", "data": "!!!not base64"})
	d("photoshare", "carol", "carol", "/upload", "POST", map[string]string{"name": "../evil", "data": photo})
	d("photoshare", "carol", "carol", "/upload", "POST", map[string]string{"name": "sub/dir", "data": photo})
	d("photoshare", "carol", "carol", "/upload", "POST", map[string]string{"name": strings.Repeat("n", 129), "data": photo})
	d("photoshare", "carol", "carol", "/upload", "POST", map[string]string{"name": "empty.jpg"}) // missing data = 0 bytes
	d("photoshare", "carol", "carol", "/", "GET", nil)
	d("photoshare", "carol", "carol", "/view", "GET", map[string]string{"name": "sunset <1>.jpg"})
	d("photoshare", "bob", "carol", "/view", "GET", map[string]string{"name": "sunset <1>.jpg"})
	d("photoshare", "carol", "carol", "/view", "GET", map[string]string{"name": "missing.jpg"})
	d("photoshare", "carol", "carol", "/view", "GET", nil)
	d("photoshare", "dana", "dana", "/upload", "POST", map[string]string{"name": "d.jpg", "data": photo}) // cannot create album
	d("photoshare", "carol", "nosuchuser", "/upload", "POST", map[string]string{"name": "x.jpg", "data": photo})
	d("photoshare", "carol", "carol", "/delete", "POST", map[string]string{"name": "missing.jpg"})
	d("photoshare", "carol", "carol", "/delete", "POST", map[string]string{"name": "sunset <1>.jpg"})
	d("photoshare", "carol", "carol", "/", "GET", nil)
	d("photoshare", "carol", "carol", "/delete", "GET", map[string]string{"name": "x"}) // unknown route

	// Export denial: dana's data read by a stranger (no declassifier).
	d("social", "dana", "dana", "/profile", "GET", nil)
	d("social", "alice", "dana", "/profile", "GET", nil)
}

// TestWVMTwinDifferential replays a seeded-random corpus through both
// providers and then compares the apps' cumulative quota bills in the
// store-visible dimensions. CPU and Memory are exempt: the WVM meters
// its instruction count and guest memory into the ledger (asserted
// non-zero below) while native Go code is not metered.
func TestWVMTwinDifferential(t *testing.T) {
	pn, pw := newTwinPair(t)
	seed := int64(7)
	if s := os.Getenv("W5_TWIN_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad W5_TWIN_SEED: %v", err)
		}
		seed = v
	}
	rng := rand.New(rand.NewSource(seed))

	users := []string{"alice", "bob", "carol", "dana", "nosuchuser", ""}
	pick := func(ss []string) string { return ss[rng.Intn(len(ss))] }
	// Random ASCII strings over a charset heavy in HTML-escapable and
	// whitespace bytes.
	charset := `abcXYZ 019<>&"'` + "\t\n/\\."
	randStr := func(max int) string {
		n := rng.Intn(max + 1)
		b := make([]byte, n)
		for i := range b {
			b[i] = charset[rng.Intn(len(charset))]
		}
		return string(b)
	}

	const rounds = 400
	for i := 0; i < rounds; i++ {
		viewer := pick(users[:4]) // viewer is always a real session
		owner := pick(users)
		switch rng.Intn(10) {
		case 0: // social read
			diffOne(t, pn, pw, "social", viewer, owner, "/profile", "GET", nil)
		case 1: // social write
			diffOne(t, pn, pw, "social", viewer, owner, "/profile", "POST",
				map[string]string{"body": randStr(200)})
		case 2: // blog list
			diffOne(t, pn, pw, "blog", viewer, owner, pick([]string{"/", ""}), "GET", nil)
		case 3: // blog read, ids mostly small (some valid), some garbage
			id := pick([]string{"1", "2", "3", "4", "7", "15", "0", "-3", "12junk", "", "999999999999999999999999"})
			diffOne(t, pn, pw, "blog", viewer, owner, "/read", "GET", map[string]string{"id": id})
		case 4: // blog post
			diffOne(t, pn, pw, "blog", viewer, owner, "/post", "POST", map[string]string{
				"title":  randStr(40),
				"body":   randStr(300),
				"public": pick([]string{"", "0", "1", "1", "yes"}),
			})
		case 5: // photoshare list
			diffOne(t, pn, pw, "photoshare", viewer, owner, pick([]string{"/", ""}), "GET", nil)
		case 6: // photoshare view
			diffOne(t, pn, pw, "photoshare", viewer, owner, "/view", "GET",
				map[string]string{"name": pick([]string{"p0", "p1", "p2", "nope", randStr(12)})})
		case 7: // photoshare upload (sometimes invalid base64)
			data := base64.StdEncoding.EncodeToString([]byte(randStr(600)))
			if rng.Intn(8) == 0 {
				data = "%%%" + data
			}
			diffOne(t, pn, pw, "photoshare", viewer, owner, "/upload", "POST",
				map[string]string{"name": pick([]string{"p0", "p1", "p2", randStr(12)}), "data": data})
		case 8: // photoshare delete
			diffOne(t, pn, pw, "photoshare", viewer, owner, "/delete", "POST",
				map[string]string{"name": pick([]string{"p0", "p1", "p2", "nope"})})
		case 9: // junk routes, wrong methods
			app := pick(twinAppNames)
			diffOne(t, pn, pw, app, viewer, owner,
				pick([]string{"/x", "/post", "/upload", "/delete", "/profile/x"}),
				pick([]string{"GET", "POST"}), nil)
		}
	}

	// The quota ledgers must agree wherever the work is store-visible.
	for _, app := range twinAppNames {
		an := pn.Quotas.Account("app:" + app)
		aw := pw.Quotas.Account("app:" + app)
		for _, r := range []quota.Resource{quota.Disk, quota.Query, quota.Network} {
			if an.Used(r) != aw.Used(r) {
				t.Errorf("app %s: %s bill diverged: native=%d wvm=%d", app, r, an.Used(r), aw.Used(r))
			}
		}
		// The WVM bills its execution into the same ledger.
		if aw.Used(quota.CPU) == 0 {
			t.Errorf("app %s: wvm twin charged no CPU", app)
		}
		if aw.Used(quota.Memory) == 0 {
			t.Errorf("app %s: wvm twin charged no Memory", app)
		}
	}
	// Sanity: the corpus actually exercised the audit log.
	if pn.Log.Len() == 0 || pw.Log.Len() == 0 {
		t.Fatal("corpus produced no audit events")
	}
}
