package apps

import (
	"fmt"
	"html"
	"sort"
	"strconv"
	"strings"

	"w5/internal/core"
)

// Dating implements the §2 example: "For an online-dating application,
// Bob can upload a custom compatibility metric." Users keep an
// interests file (comma/whitespace-separated tags) in their private
// social directory; the app scores pairs of users.
//
// The default metric is Jaccard similarity over interest sets. The
// "custom metric" of the paper appears two ways: weights supplied as
// request parameters (weight.<tag>=N), and — fully generally — by
// forking this module in the registry (examples/marketplace shows a
// fork flow).
//
// The flow property worth noticing: matching Bob against Alice reads
// BOTH users' private interests, so the process is tainted {s_bob,
// s_alice} and the result can be exported only to a viewer both users'
// policies accept. The platform turns "who may learn we are 87%
// compatible?" into policy, not app code.
//
// Routes:
//
//	GET /match?candidate=U          score owner vs candidate
//	GET /best                       rank all platform users for owner
type Dating struct{}

// Name implements core.App.
func (Dating) Name() string { return "dating" }

// Handle implements core.App.
func (Dating) Handle(env *core.AppEnv, req core.AppRequest) (core.AppResponse, error) {
	if req.Owner == "" {
		return text(400, "owner required"), nil
	}
	mine := interestSet(env, req.Owner)
	if len(mine) == 0 {
		return text(404, "owner has no interests file"), nil
	}
	weights := parseWeights(req.Params)

	switch req.Path {
	case "/match":
		cand := req.Params["candidate"]
		if cand == "" || cand == req.Owner {
			return text(400, "candidate required"), nil
		}
		theirs := interestSet(env, cand)
		if len(theirs) == 0 {
			return text(403, "candidate data unavailable"), nil
		}
		score, shared := compatibility(mine, theirs, weights)
		return page(fmt.Sprintf("Match %s × %s", req.Owner, cand),
			fmt.Sprintf("<p>score: <b>%.0f%%</b></p><p>shared: %s</p>",
				score*100, html.EscapeString(strings.Join(shared, ", ")))), nil

	case "/best":
		type cand struct {
			user  string
			score float64
		}
		var cands []cand
		for _, u := range env.Users() {
			if u == req.Owner {
				continue
			}
			theirs := interestSet(env, u)
			if len(theirs) == 0 {
				continue // not a dating user, or their policy hides them
			}
			s, _ := compatibility(mine, theirs, weights)
			cands = append(cands, cand{user: u, score: s})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
			return cands[i].user < cands[j].user
		})
		var sb strings.Builder
		sb.WriteString("<ol>")
		for _, c := range cands {
			fmt.Fprintf(&sb, "<li>%s — %.0f%%</li>", html.EscapeString(c.user), c.score*100)
		}
		sb.WriteString("</ol>")
		return page("Best matches for "+req.Owner, sb.String()), nil
	}
	return text(404, "unknown route"), nil
}

func interestSet(env *core.AppEnv, user string) map[string]bool {
	data, err := env.ReadFile("/home/" + user + "/social/interests")
	if err != nil {
		return nil
	}
	set := make(map[string]bool)
	for _, tag := range tokenize(string(data)) {
		set[tag] = true
	}
	return set
}

// parseWeights extracts weight.<tag>=N parameters (the lightweight
// custom-metric hook).
func parseWeights(params map[string]string) map[string]float64 {
	w := make(map[string]float64)
	for k, v := range params {
		if tag, ok := strings.CutPrefix(k, "weight."); ok {
			if f, err := strconv.ParseFloat(v, 64); err == nil && f >= 0 {
				w[tag] = f
			}
		}
	}
	return w
}

// compatibility is weighted Jaccard similarity; unweighted tags count 1.
func compatibility(a, b map[string]bool, weights map[string]float64) (float64, []string) {
	wOf := func(tag string) float64 {
		if w, ok := weights[tag]; ok {
			return w
		}
		return 1
	}
	var inter, union float64
	var shared []string
	seen := make(map[string]bool)
	for tag := range a {
		seen[tag] = true
		if b[tag] {
			inter += wOf(tag)
			shared = append(shared, tag)
		}
		union += wOf(tag)
	}
	for tag := range b {
		if !seen[tag] {
			union += wOf(tag)
		}
	}
	if union == 0 {
		return 0, nil
	}
	sort.Strings(shared)
	return inter / union, shared
}
