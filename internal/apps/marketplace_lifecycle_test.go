package apps

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"w5/internal/core"
	"w5/internal/declass"
	"w5/internal/difc"
	"w5/internal/quota"
	"w5/internal/rank"
	"w5/internal/registry"
)

// The marketplace lifecycle differential suite: every lifecycle
// operation — publish, fork, pin, endorse, declassifier grant and
// revocation, friend-list edits, and declassifier-gated reads — is
// applied to two identically seeded providers, one with the declass
// verdict cache enabled (the default) and one with it disabled. The
// two must stay byte-identical in responses, audit events, and quota
// bills across seeded-random interleavings; this is what licenses
// serving cached verdicts on the request path. Style follows the WVM
// twin harness in wvmtwin_test.go.

var lcUsers = []string{"alice", "bob", "carol", "dana"}

// lcProvider pairs a provider with its rank index (the gateway owns
// the index in production; here each twin gets its own).
type lcProvider struct {
	p  *core.Provider
	rk *rank.Index
}

// newLifecyclePair builds the (cached, uncached) provider pair. The
// ONLY difference between the two is SetVerdictCacheEntries(0) on the
// second; everything observable must nevertheless agree.
func newLifecyclePair(t *testing.T) (lcProvider, lcProvider) {
	t.Helper()
	mk := func(cache bool) lcProvider {
		p := core.NewProvider(core.Config{Name: "lc", Enforce: true})
		p.Registry.SetClock(func() time.Time { return time.Unix(0, 0) })
		p.InstallApp(Social{})
		for _, u := range lcUsers {
			if _, err := p.CreateUser(u, "pw"); err != nil {
				t.Fatal(err)
			}
			if err := p.EnableApp(u, "social"); err != nil {
				t.Fatal(err)
			}
			if err := p.GrantWrite(u, "social"); err != nil {
				t.Fatal(err)
			}
		}
		if !cache {
			p.Declass.SetVerdictCacheEntries(0)
		}
		return lcProvider{p: p, rk: rank.NewIndex(rank.Options{})}
	}
	return mk(true), mk(false)
}

// lcWriteOwnerFile writes an owner-labeled file directly (the way the
// friend list is edited), returning the error string for diffing.
func lcWriteOwnerFile(t *testing.T, p *core.Provider, owner, rel string, data []byte) string {
	t.Helper()
	u, err := p.GetUser(owner)
	if err != nil {
		t.Fatalf("get user %s: %v", owner, err)
	}
	label := difc.LabelPair{
		Secrecy:   difc.NewLabel(u.SecrecyTag),
		Integrity: difc.NewLabel(u.WriteTag),
	}
	return errStr(p.FS.Write(p.UserCred(owner), "/home/"+owner+rel, data, label))
}

func errStr(err error) string {
	if err == nil {
		return "<ok>"
	}
	return err.Error()
}

func lcEvents(p *core.Provider, from uint64) string {
	var b strings.Builder
	for _, e := range p.Log.Since(from) {
		fmt.Fprintf(&b, "%s|%s|%s|%s\n", e.Kind, e.Actor, e.Subject, e.Detail)
	}
	return b.String()
}

// lcStep runs one lifecycle operation on both providers and fails on
// any divergence in the operation's rendered outcome or audit delta.
func lcStep(t *testing.T, desc string, a, b lcProvider, op func(lc lcProvider) string) {
	t.Helper()
	fromA, fromB := uint64(a.p.Log.Len()), uint64(b.p.Log.Len())
	outA, outB := op(a), op(b)
	if outA != outB {
		t.Fatalf("%s: outcome diverged:\ncached:   %q\nuncached: %q", desc, outA, outB)
	}
	if evA, evB := lcEvents(a.p, fromA), lcEvents(b.p, fromB); evA != evB {
		t.Fatalf("%s: audit trail diverged:\ncached:\n%s\nuncached:\n%s", desc, evA, evB)
	}
}

// lcRead renders everything observable about one declassifier-gated
// read: invocation error, status, content type, export verdict, and
// the (possibly policy-rewritten) body.
func lcRead(t *testing.T, lc lcProvider, viewer, owner string) string {
	t.Helper()
	inv, err := lc.p.Invoke("social", core.AppRequest{
		Viewer: viewer, Owner: owner, Path: "/profile", Method: "GET",
	})
	if err != nil {
		return "invoke-err: " + err.Error()
	}
	body, exErr := lc.p.ExportCheck(inv, viewer)
	return fmt.Sprintf("status=%d ctype=%s export=%s body=%q",
		inv.Response.Status, inv.Response.ContentType, errStr(exErr), body)
}

// lcSearch renders a registry snapshot search in deterministic name
// order (rank ordering is float-valued and compared separately with a
// tolerance, not byte-compared).
func lcSearch(lc lcProvider, query string) string {
	rv := lc.p.Registry.View()
	var b strings.Builder
	fmt.Fprintf(&b, "seq=%d\n", rv.Seq())
	for _, v := range rv.Search(query) {
		fmt.Fprintf(&b, "%s@%s by %s open=%v endorse=%d deps=%v fork=%q %s\n",
			v.Module, v.Version, v.Developer, v.OpenSource,
			rv.EndorsementCount(v.Module), v.Deps, v.ForkOf, v.Summary)
	}
	return b.String()
}

func TestMarketplaceLifecycleDifferential(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if s := os.Getenv("W5_LIFECYCLE_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad W5_LIFECYCLE_SEED: %v", err)
		}
		seeds = []int64{v}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runLifecycleDifferential(t, seed, 400)
		})
	}
}

func runLifecycleDifferential(t *testing.T, seed int64, rounds int) {
	ca, un := newLifecyclePair(t)
	rng := rand.New(rand.NewSource(seed))
	pick := func(ss []string) string { return ss[rng.Intn(len(ss))] }

	// Pre-assembled module sources for publish/fork ops. The module
	// name pool is larger than the source pool: names and programs mix
	// freely, and re-publishing an existing version must fail
	// identically on both sides.
	twins := WVMTwins()
	progs := make([]*registry.Upload, len(twins))
	for i, tw := range twins {
		prog, err := AssembleWVMTwin(tw)
		if err != nil {
			t.Fatal(err)
		}
		progs[i] = &registry.Upload{
			Program: prog, Source: tw.Source, SysNames: core.AppSyscallNames,
			Summary: "marketplace build of " + tw.Name,
		}
	}
	modules := []string{"notes", "notes-lite", "gallery", "planner"}
	versions := []string{"1.0", "1.1", "2.0", "3.0"}

	// The policy pool deliberately mixes cacheable policies with the
	// two non-cacheable shapes (Chameleon rewrites the payload, Any
	// over a Chameleon poisons composition) so the suite exercises the
	// cache-bypass path too.
	policies := []declass.Policy{
		declass.FriendList{},
		declass.Public{},
		declass.OwnerOnly{},
		declass.Group{GroupName: "room", Members: []string{"bob", "carol"}},
		declass.Chameleon{Inner: declass.FriendList{}},
		declass.Any{Policies: []declass.Policy{declass.OwnerOnly{}, declass.FriendList{}}},
	}
	policyNames := make([]string, len(policies))
	for i, p := range policies {
		policyNames[i] = p.Name()
	}

	owners := append(append([]string(nil), lcUsers...), "nosuchuser", "")

	for i := 0; i < rounds; i++ {
		viewer := pick(lcUsers)
		owner := pick(owners)
		switch rng.Intn(12) {
		case 0, 1, 2, 3: // declassifier-gated read (the hot path)
			lcStep(t, fmt.Sprintf("round %d: read %s←%s", i, owner, viewer), ca, un,
				func(lc lcProvider) string { return lcRead(t, lc, viewer, owner) })
		case 4: // profile write through the app (advances the owner epoch)
			body := fmt.Sprintf("profile of %s at round %d\n[private]\nsecret %d\n[/private]\ntail", owner, i, rng.Int63())
			lcStep(t, fmt.Sprintf("round %d: write %s", i, owner), ca, un,
				func(lc lcProvider) string {
					inv, err := lc.p.Invoke("social", core.AppRequest{
						Viewer: viewer, Owner: owner, Path: "/profile", Method: "POST",
						Params: map[string]string{"body": body},
					})
					if err != nil {
						return "invoke-err: " + err.Error()
					}
					return fmt.Sprintf("status=%d", inv.Response.Status)
				})
		case 5: // friend-list edit (a new epoch mid-stream)
			if owner == "" || owner == "nosuchuser" {
				owner = viewer
			}
			n := rng.Intn(len(lcUsers) + 1)
			friends := make([]string, 0, n)
			for j := 0; j < n; j++ {
				friends = append(friends, pick(lcUsers))
			}
			data := []byte("# friends\n" + strings.Join(friends, "\n") + "\n")
			ow := owner
			lcStep(t, fmt.Sprintf("round %d: friends %s=%v", i, ow, friends), ca, un,
				func(lc lcProvider) string { return lcWriteOwnerFile(t, lc.p, ow, "/social/friends", data) })
		case 6: // declassifier grant
			if owner == "" || owner == "nosuchuser" {
				owner = viewer
			}
			pol := policies[rng.Intn(len(policies))]
			ow := owner
			lcStep(t, fmt.Sprintf("round %d: grant %s %s", i, ow, pol.Name()), ca, un,
				func(lc lcProvider) string { return errStr(lc.p.AuthorizeDeclassifier(ow, pol)) })
		case 7: // declassifier revocation
			if owner == "" || owner == "nosuchuser" {
				owner = viewer
			}
			name := pick(policyNames)
			ow := owner
			lcStep(t, fmt.Sprintf("round %d: revoke %s %s", i, ow, name), ca, un,
				func(lc lcProvider) string { lc.p.Declass.Revoke(ow, name); return "<ok>" })
		case 8: // publish (sometimes a duplicate version → identical refusal)
			up := *progs[rng.Intn(len(progs))]
			up.Module = pick(modules)
			up.Version = pick(versions)
			up.Developer = viewer
			up.Kind = registry.KindApp
			if rng.Intn(4) == 0 {
				up.Deps = []string{pick(modules)}
			}
			lcStep(t, fmt.Sprintf("round %d: publish %s@%s", i, up.Module, up.Version), ca, un,
				func(lc lcProvider) string {
					v, err := lc.p.Registry.Put(up)
					if err != nil {
						return "put-err: " + err.Error()
					}
					return "hash=" + v.Hash
				})
		case 9: // fork or pin
			src := pick(modules)
			if rng.Intn(2) == 0 {
				dst := src + "-fork" + strconv.Itoa(rng.Intn(3))
				dev := viewer
				lcStep(t, fmt.Sprintf("round %d: fork %s→%s", i, src, dst), ca, un,
					func(lc lcProvider) string {
						_, err := lc.p.Registry.Fork(dev, src, "", dst, "1.0")
						return errStr(err)
					})
			} else {
				ver := pick(append([]string(nil), "", versions[rng.Intn(len(versions))]))
				lcStep(t, fmt.Sprintf("round %d: pin %s@%q", i, src, ver), ca, un,
					func(lc lcProvider) string { return errStr(lc.p.Registry.Pin(src, ver)) })
			}
		case 10: // endorse / embed edge
			mod := pick(modules)
			if rng.Intn(2) == 0 {
				ed := viewer
				lcStep(t, fmt.Sprintf("round %d: endorse %s by %s", i, mod, ed), ca, un,
					func(lc lcProvider) string { return errStr(lc.p.Registry.Endorse(ed, mod)) })
			} else {
				to := pick(modules)
				lcStep(t, fmt.Sprintf("round %d: embed %s→%s", i, mod, to), ca, un,
					func(lc lcProvider) string { lc.p.Registry.RecordEmbed(mod, to); return "<ok>" })
			}
		case 11: // snapshot search (name-ordered, byte-compared)
			q := pick([]string{"", "notes", "gallery", "marketplace", "zzz"})
			lcStep(t, fmt.Sprintf("round %d: search %q", i, q), ca, un,
				func(lc lcProvider) string { return lcSearch(lc, q) })
		}

		// Rank views are float-valued, so they are compared with a
		// tolerance rather than byte-for-byte, every so often.
		if i%50 == 49 {
			va := ca.rk.View(ca.p.Registry)
			vb := un.rk.View(un.p.Registry)
			if va.Seq != vb.Seq || len(va.Scores) != len(vb.Scores) {
				t.Fatalf("round %d: rank views diverged: seq %d/%d, %d/%d modules",
					i, va.Seq, vb.Seq, len(va.Scores), len(vb.Scores))
			}
			for name, sa := range va.Scores {
				sb, ok := vb.Scores[name]
				if !ok || sa-sb > 1e-6 || sb-sa > 1e-6 {
					t.Fatalf("round %d: rank score diverged for %s: %v vs %v", i, name, sa, sb)
				}
			}
		}
	}

	// The quota ledgers must agree exactly: a cache hit skips the
	// policy's owner-file read, and that read was free (FS.Read charges
	// nothing), so no dimension may drift.
	accA := ca.p.Quotas.Account("app:social")
	accB := un.p.Quotas.Account("app:social")
	for _, r := range []quota.Resource{quota.Disk, quota.Query, quota.Network, quota.CPU, quota.Memory} {
		if accA.Used(r) != accB.Used(r) {
			t.Errorf("app:social %s bill diverged: cached=%d uncached=%d", r, accA.Used(r), accB.Used(r))
		}
	}

	// Sanity: the corpus actually hit the cache on one side only.
	hits, misses, _ := ca.p.Declass.CacheStats()
	if hits == 0 {
		t.Fatal("cached provider saw no verdict-cache hits")
	}
	if misses == 0 {
		t.Fatal("cached provider saw no verdict-cache misses")
	}
	if h, _, _ := un.p.Declass.CacheStats(); h != 0 {
		t.Fatalf("uncached provider reported %d cache hits", h)
	}
	if ca.p.Log.Len() == 0 {
		t.Fatal("corpus produced no audit events")
	}
}
