package benchutil

// The perimeter-filter bench entries: the streaming sanitizer's two
// shapes (clean fast path, rewrite path) measured in-process, and the
// end-to-end gateway request with the sanitized-output cache turned on.

import (
	"w5/internal/core"
	"w5/internal/difc"
	"w5/internal/gateway"
	"w5/internal/htmlsafe"
	"w5/internal/workload"
)

// sanitizeIters: the pass is O(bytes) over an 8 KiB page, ~µs scale.
const sanitizeIters = 50_000

// sanitizePageBytes is the benchmark document size — the same order as
// the app pages the gateway actually filters.
const sanitizePageBytes = 8 << 10

// measureSanitize times SanitizeBytes on a clean page (the fast path:
// scan, find nothing, return the input slice — pinned allocation-free)
// and on a script-laden page rewritten into a reused buffer (also
// pinned allocation-free: the rewrite lands in the caller's buffer).
func measureSanitize() ([]Result, error) {
	pol := htmlsafe.Policy{}

	clean := []byte(workload.HTMLPage(sanitizePageBytes, 0, 0, 7))
	cleanRes, err := runFixed("htmlsafe/sanitize-clean", sanitizeIters, func() error {
		out, rep := htmlsafe.SanitizeBytes(nil, clean, pol)
		if !rep.Clean() || len(out) != len(clean) {
			return errUnexpectedSanitize
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	dirty := []byte(workload.HTMLPage(sanitizePageBytes, 4, 4, 7))
	buf := make([]byte, 0, len(dirty))
	dirtyRes, err := runFixed("htmlsafe/sanitize-dirty", sanitizeIters, func() error {
		out, rep := htmlsafe.SanitizeBytes(buf, dirty, pol)
		if rep.Clean() || len(out) == 0 {
			return errUnexpectedSanitize
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return []Result{cleanRes, dirtyRes}, nil
}

type sanitizeErr string

func (e sanitizeErr) Error() string { return string(e) }

const errUnexpectedSanitize = sanitizeErr("sanitize benchmark: unexpected report shape")

// measureGatewayCached times the warm end-to-end request for a hot
// DIRTY page with the sanitized-output cache on — the shape the cache
// exists for: the page is filtered once, then every request is
// SHA-256 + lookup + cached bytes. It overwrites MeasuredUser's
// document with a script-laden HTML page, so it must run after the
// entries that measure the stock 1 KiB document.
func measureGatewayCached(p *core.Provider) (Result, error) {
	u, err := p.GetUser(MeasuredUser)
	if err != nil {
		return Result{}, err
	}
	label := difc.LabelPair{
		Secrecy:   difc.NewLabel(u.SecrecyTag),
		Integrity: difc.NewLabel(u.WriteTag),
	}
	page := []byte(workload.HTMLPage(1<<10, 2, 2, 7))
	if err := p.FS.Write(p.UserCred(MeasuredUser),
		"/home/"+MeasuredUser+"/private/doc", page, label); err != nil {
		return Result{}, err
	}
	gb, err := StartGatewayBenchWith(p, gateway.Options{
		FilterHTML:           true,
		SanitizeCacheEntries: 1024,
		SanitizeCacheBytes:   16 << 20,
	})
	if err != nil {
		return Result{}, err
	}
	defer gb.Close()
	return timeGatewayRequests("gateway/request-cached", gb)
}
