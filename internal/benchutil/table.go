package benchutil

// Labeled tuple-store entries for the request-path report. The store
// is exercised in its production shape — labels enforced, quotas
// charged — over the E7 scale point (10k rows): a full-scan Select, an
// indexed point Select, Insert through the index-routed unique
// constraint, and concurrent indexed Selects spread over independent
// tables (the per-table-locking contract: different apps' tables never
// contend).

import (
	"fmt"

	"w5/internal/difc"
	"w5/internal/quota"
	"w5/internal/table"
)

const (
	// tableRows × tableOwners shape: 10k rows over 100 owners, 100
	// rows each, every owner's rows under their own secrecy label — so
	// a scan's label algebra sees 100 distinct labels, the repetition
	// the per-table visibility cache exists for.
	tableRows   = 10_000
	tableOwners = 100

	tableScanIters     = 2_000
	tablePointIters    = 20_000
	tableInsertIters   = 20_000
	tableParallelIters = 40_000
	tableParallelGos   = 8
)

// tableCred returns owner i's credential (full ownership of tag i+1).
func tableCred(i int) table.Cred {
	return table.Cred{
		Caps:      difc.CapsFor(difc.Tag(i + 1)),
		Principal: fmt.Sprintf("user:t%03d", i),
	}
}

// fillPhotos seeds tbl with rows rows over tableOwners owners.
func fillPhotos(s *table.Store, tbl string, rows int) error {
	for i := 0; i < rows; i++ {
		u := i % tableOwners
		cred := tableCred(u)
		if _, err := s.Insert(cred, tbl, map[string]string{
			"owner": cred.Principal, "title": "x", "bytes": "1024",
		}, difc.LabelPair{Secrecy: difc.NewLabel(difc.Tag(u + 1))}); err != nil {
			return err
		}
	}
	return nil
}

// measureTableOps assembles the table/* entries.
func measureTableOps() ([]Result, error) {
	newStore := func() *table.Store {
		// Unlimited budget, but a live manager: the per-row Charge is
		// part of what every production query pays.
		return table.New(table.Options{Quotas: quota.NewManager(quota.Limits{})})
	}
	photos := table.Schema{
		Name:    "photos",
		Columns: []string{"owner", "title", "bytes"},
		Index:   []string{"owner"},
	}

	s := newStore()
	if err := s.Create(photos); err != nil {
		return nil, err
	}
	if err := fillPhotos(s, "photos", tableRows); err != nil {
		return nil, err
	}
	cred := tableCred(42)

	// Full scan: 10k rows touched and label-checked (100 distinct
	// labels through the visibility cache), 100 visible matches copied
	// out.
	scanPred := table.Cmp{Col: "title", Op: table.Eq, Val: "x"} // unindexed column
	scan, err := runFixed("table/select", tableScanIters, func() error {
		rows, _, err := s.Select(cred, "photos", scanPred)
		if err == nil && len(rows) != 100 {
			err = fmt.Errorf("table/select: %d rows", len(rows))
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	scan.NsTolMult = tableNsTolMult

	// Indexed point query: the acceptance line — the labeled store
	// within ~2x of naive mode over the same 10k rows.
	pointPred := table.Cmp{Col: "owner", Op: table.Eq, Val: cred.Principal}
	point, err := runFixed("table/select-indexed", tablePointIters, func() error {
		rows, _, err := s.Select(cred, "photos", pointPred)
		if err == nil && len(rows) != 100 {
			err = fmt.Errorf("table/select-indexed: %d rows", len(rows))
		}
		return err
	})
	if err != nil {
		return nil, err
	}

	// Insert with a unique constraint: the conflict probe routes
	// through the unique column's index, so the op stays flat while
	// the table grows from 10k to 110k rows across the reps.
	accounts := table.Schema{
		Name: "accounts", Columns: []string{"handle", "owner"}, Unique: "handle",
	}
	us := newStore()
	if err := us.Create(accounts); err != nil {
		return nil, err
	}
	n := 0
	seed := func() error {
		n++
		u := n % tableOwners
		c := tableCred(u)
		_, err := us.Insert(c, "accounts", map[string]string{
			"handle": fmt.Sprintf("h%07d", n), "owner": c.Principal,
		}, difc.LabelPair{Secrecy: difc.NewLabel(difc.Tag(u + 1))})
		return err
	}
	for i := 0; i < tableRows; i++ {
		if err := seed(); err != nil {
			return nil, err
		}
	}
	insert, err := runFixed("table/insert-unique", tableInsertIters, seed)
	if err != nil {
		return nil, err
	}
	insert.NsTolMult = tableNsTolMult

	// Concurrent indexed point queries, one goroutine per table in the
	// same store: the per-table locking protocol means none of them
	// share a lock (the old store-wide RWMutex serialized its writers
	// and bounced its read counter between every core).
	ps := newStore()
	pcreds := make([]table.Cred, tableParallelGos)
	ppreds := make([]table.Pred, tableParallelGos)
	names := make([]string, tableParallelGos)
	for g := 0; g < tableParallelGos; g++ {
		names[g] = fmt.Sprintf("photos%d", g)
		sc := photos
		sc.Name = names[g]
		if err := ps.Create(sc); err != nil {
			return nil, err
		}
		if err := fillPhotos(ps, names[g], tableRows/tableParallelGos); err != nil {
			return nil, err
		}
		pcreds[g] = tableCred(g)
		ppreds[g] = table.Cmp{Col: "owner", Op: table.Eq, Val: pcreds[g].Principal}
	}
	per := tableParallelIters / tableParallelGos
	parallel, err := runFixed("table/select-parallel", 1, func() error {
		errs := make(chan error, tableParallelGos)
		for g := 0; g < tableParallelGos; g++ {
			go func(g int) {
				for i := 0; i < per; i++ {
					if _, _, err := ps.Select(pcreds[g], names[g], ppreds[g]); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}(g)
		}
		for g := 0; g < tableParallelGos; g++ {
			if err := <-errs; err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := int64(per) * int64(tableParallelGos)
	parallel.NsPerOp /= float64(total)
	parallel.AllocsPerOp /= total
	parallel.BytesPerOp /= total
	parallel.NsTolMult = tableNsTolMult

	return []Result{scan, point, insert, parallel}, nil
}

// tableNsTolMult: 2 × the 25% base tolerance = a 50% ns/op line.
// table/select's ~0.3 ms ops cross GC cycles seeded by earlier suite
// configs (observed swinging ~26% run to run), insert-unique's reps
// measure a growing table (amortized map/slice doublings land on
// different reps), and select-parallel is scheduler-paced. The wide
// line still catches losing the visibility cache — that regression
// measures +58% on the scan — and every entry's allocs/op and
// bytes/op, the derivation contract, gate at the standard tolerance.
const tableNsTolMult = 2
