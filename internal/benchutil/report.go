package benchutil

// Machine-readable request-path benchmark records and the regression
// gate that compares two of them. `cmd/w5bench -requestpath` writes a
// Report; the committed BENCH_requestpath.json is the baseline the CI
// gate (`w5bench -requestpath ... -compare BENCH_requestpath.json`)
// holds the line against, so the wins from the scaling PRs cannot
// silently regress.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"time"

	"w5/internal/apps"
	"w5/internal/audit"
	"w5/internal/core"
	"w5/internal/difc"
	"w5/internal/gateway"
	"w5/internal/store"
)

// Result is one measured benchmark configuration.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// NsTolMult widens the ns/op gate for this entry by multiplying the
	// comparison tolerance (0 or 1 = standard). Entries that cross the
	// kernel scheduler and loopback TCP (gateway/request*) see
	// run-to-run latency noise far beyond the in-process entries', so
	// their ns/op line only catches catastrophic regressions; their
	// allocs/op and bytes/op — the per-request derivation contract —
	// still gate at the standard tolerance. The baseline's value is
	// what Compare honors, so the widening is committed and reviewable.
	NsTolMult float64 `json:"ns_tol_mult,omitempty"`
}

// Report is the full record for one build of one benchmark family
// (requestpath, federation, or capacity).
type Report struct {
	Benchmark string   `json:"benchmark"`
	GoVersion string   `json:"go_version"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results,omitempty"`
	// ScalingRatio10k is users=10000 ns/op divided by users=100 ns/op for
	// the enforcing path; the O(request) contract requires it near 1.0
	// (acceptance: <= 2.0).
	ScalingRatio10k float64 `json:"scaling_ratio_10k,omitempty"`
	// Capacity holds open-loop load measurements (cmd/w5load /
	// loadgen.MeasureCapacity); BENCH_capacity.json is a Report with
	// only this section populated.
	Capacity []CapacityResult `json:"capacity,omitempty"`
}

// CapacityResult is one open-loop load measurement: a scenario mix
// offered at a fixed arrival rate over Conns connections for a fixed
// window, with latencies recorded against each request's INTENDED
// send time (coordinated-omission-corrected; see
// internal/loadgen/README.md).
//
// Unlike a ns/op Result, the headline number here — AchievedRPS —
// regresses DOWNWARD, so Compare holds a lower bound on it and upper
// bounds on the latency percentiles and the error rate.
type CapacityResult struct {
	Name string `json:"name"`
	// OfferedRPS is the open-loop arrival rate the schedule dictated;
	// AchievedRPS is what actually completed. A healthy server keeps
	// them equal; a saturated one falls behind.
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	// ErrorRate is the fraction of requests that failed (transport
	// error or non-200).
	ErrorRate float64 `json:"error_rate"`
	// Latency percentiles in nanoseconds, measured from the intended
	// send time over all connections' merged histograms.
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
	Conns  int     `json:"conns"`
	Ops    int     `json:"ops"`
	// RPSTolMult widens the throughput shortfall line by multiplying
	// the comparison tolerance (0 or 1 = standard). Saturation search
	// results on shared CI runners swing with neighbor load, so their
	// line is wide; fixed-rate entries hold a tighter one.
	RPSTolMult float64 `json:"rps_tol_mult,omitempty"`
	// NsTolMult widens the latency-percentile lines likewise. Zero
	// SKIPS latency gating for this entry entirely — the saturation
	// entry measures at whatever rate the search found, and comparing
	// tail latency across different operating points is meaningless.
	NsTolMult float64 `json:"ns_tol_mult,omitempty"`
}

// LoadReport reads a Report from a JSON file.
func LoadReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// WriteReport writes a Report as indented JSON.
func (r Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Compare checks current against baseline and returns a list of
// regressions (empty = gate passes). tolerance is the allowed relative
// slowdown, e.g. 0.25 for 25%; it applies to ns/op, allocs/op,
// bytes/op, and the
// population-scaling ratio (which additionally never fails below the
// scalingRatioGrace absolute line). Baselines at zero allocations are
// held to exactly zero — allocation-freeness is a binary contract, not
// a percentage. Results present only in current (newly added benchmarks)
// are ignored; results missing from current fail the gate, so coverage
// cannot silently shrink.
func Compare(baseline, current Report, tolerance float64) []string {
	var violations []string
	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	for _, base := range baseline.Results {
		now, ok := cur[base.Name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: present in baseline but not measured by this build", base.Name))
			continue
		}
		nsTol := tolerance
		if base.NsTolMult > 1 {
			nsTol = tolerance * base.NsTolMult
		}
		if limit := base.NsPerOp * (1 + nsTol); now.NsPerOp > limit {
			violations = append(violations,
				fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f by more than %.0f%% (limit %.0f)",
					base.Name, now.NsPerOp, base.NsPerOp, nsTol*100, limit))
		}
		switch {
		case base.AllocsPerOp == 0 && now.AllocsPerOp > 0:
			violations = append(violations,
				fmt.Sprintf("%s: %d allocs/op on a path pinned allocation-free", base.Name, now.AllocsPerOp))
		case float64(now.AllocsPerOp) > float64(base.AllocsPerOp)*(1+tolerance):
			violations = append(violations,
				fmt.Sprintf("%s: %d allocs/op exceeds baseline %d by more than %.0f%%",
					base.Name, now.AllocsPerOp, base.AllocsPerOp, tolerance*100))
		}
		switch {
		case base.BytesPerOp == 0 && now.BytesPerOp > 0:
			violations = append(violations,
				fmt.Sprintf("%s: %d B/op on a path pinned allocation-free", base.Name, now.BytesPerOp))
		case float64(now.BytesPerOp) > float64(base.BytesPerOp)*(1+tolerance):
			violations = append(violations,
				fmt.Sprintf("%s: %d B/op exceeds baseline %d by more than %.0f%%",
					base.Name, now.BytesPerOp, base.BytesPerOp, tolerance*100))
		}
	}
	violations = append(violations, compareCapacity(baseline, current, tolerance)...)
	if baseline.ScalingRatio10k > 0 &&
		current.ScalingRatio10k > baseline.ScalingRatio10k*(1+tolerance) &&
		current.ScalingRatio10k > scalingRatioGrace {
		violations = append(violations,
			fmt.Sprintf("scaling_ratio_10k: %.2f exceeds baseline %.2f by more than %.0f%% and the %.1f grace line",
				current.ScalingRatio10k, baseline.ScalingRatio10k, tolerance*100, scalingRatioGrace))
	}
	return violations
}

// compareCapacity gates the capacity entries: throughput may not fall
// more than tolerance×RPSTolMult below baseline, latency percentiles
// may not rise more than tolerance×NsTolMult above it (skipped when
// the baseline pins NsTolMult to 0 — saturation entries measure at
// different operating points run to run), and the error rate may not
// exceed the baseline's by more than errorRateGrace absolute. Missing
// entries fail like missing Results: coverage cannot silently shrink.
func compareCapacity(baseline, current Report, tolerance float64) []string {
	var violations []string
	cur := make(map[string]CapacityResult, len(current.Capacity))
	for _, r := range current.Capacity {
		cur[r.Name] = r
	}
	for _, base := range baseline.Capacity {
		now, ok := cur[base.Name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: present in baseline but not measured by this build", base.Name))
			continue
		}
		rpsTol := tolerance
		if base.RPSTolMult > 1 {
			rpsTol = tolerance * base.RPSTolMult
		}
		if floor := base.AchievedRPS * (1 - rpsTol); now.AchievedRPS < floor {
			violations = append(violations,
				fmt.Sprintf("%s: %.0f req/s falls short of baseline %.0f by more than %.0f%% (floor %.0f)",
					base.Name, now.AchievedRPS, base.AchievedRPS, rpsTol*100, floor))
		}
		if base.NsTolMult > 0 {
			nsTol := tolerance * base.NsTolMult
			for _, p := range []struct {
				label     string
				base, now float64
			}{
				{"p50", base.P50Ns, now.P50Ns},
				{"p99", base.P99Ns, now.P99Ns},
				{"p999", base.P999Ns, now.P999Ns},
			} {
				if limit := p.base * (1 + nsTol); p.base > 0 && p.now > limit {
					violations = append(violations,
						fmt.Sprintf("%s: %s %.0f ns exceeds baseline %.0f by more than %.0f%% (limit %.0f)",
							base.Name, p.label, p.now, p.base, nsTol*100, limit))
				}
			}
		}
		if limit := base.ErrorRate + errorRateGrace; now.ErrorRate > limit {
			violations = append(violations,
				fmt.Sprintf("%s: error rate %.2f%% exceeds baseline %.2f%% by more than %.0f points",
					base.Name, now.ErrorRate*100, base.ErrorRate*100, errorRateGrace*100))
		}
	}
	return violations
}

// errorRateGrace is the absolute headroom the capacity gate allows
// over the baseline's error rate: 2 points. The SLO the harness itself
// enforces while searching is stricter; this line only exists so a
// handful of connection resets on a noisy shared runner cannot redden
// an otherwise healthy build, while a systematic failure mode (quota
// exhaustion, 500s under load) still fails loudly.
const errorRateGrace = 0.02

// scalingRatioGrace is the absolute floor under which the
// population-scaling ratio never fails the gate. The O(request)
// contract allows up to 2.0; a baseline measured at, say, 0.8 must not
// turn ordinary GC jitter (0.8 → 1.05) into a red build, but anything
// above 1.5 that also regressed >tolerance is a real O(users) leak.
const scalingRatioGrace = 1.5

// measureReps is how many times each fixed-iteration loop runs; the
// fastest rep is reported, the standard defense against scheduler and
// GC noise.
const measureReps = 5

// runFixed times iters calls of fn, repeated measureReps times, and
// reports the fastest rep. Fixed iteration counts — instead of
// testing.Benchmark's "whatever fits in a second" — matter twice over
// for a regression GATE: the amount of work is identical on every
// machine and every run (a 1-second target does ~100× more iterations
// on fast hardware, growing the audit log and the heap by ~100× and
// skewing late configs), and min-of-reps makes the number reproducible
// enough to hold a 25% line against.
func runFixed(name string, iters int, fn func() error) (Result, error) {
	res := Result{Name: name, NsPerOp: float64(1<<63 - 1)}
	var m0, m1 runtime.MemStats
	for rep := 0; rep < measureReps; rep++ {
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				return Result{}, fmt.Errorf("%s: %w", name, err)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		if ns := float64(elapsed.Nanoseconds()) / float64(iters); ns < res.NsPerOp {
			res.NsPerOp = ns
			res.AllocsPerOp = int64(m1.Mallocs-m0.Mallocs) / int64(iters)
			res.BytesPerOp = int64(m1.TotalAlloc-m0.TotalAlloc) / int64(iters)
		}
	}
	return res, nil
}

// Iteration budgets: enough work that the timer resolution and loop
// overhead vanish, little enough that the run stays fast and the
// audit log (which grows per operation) stays small. Gateway requests
// cross a real loopback TCP connection and the whole net/http stack,
// so their budget is smaller.
const (
	invokeIters   = 20_000
	storeOpIters  = 200_000
	parallelIters = 100_000
	gatewayIters  = 3_000
	// auditSustainedIters is deliberately large (the PR 4 acceptance
	// line: >= 1M audited events per rep): within-run degradation —
	// the failure mode the segmented log removes — only shows up over
	// runs long enough for an unbounded log to bloat the heap.
	auditIters          = 200_000
	auditSustainedIters = 1_000_000
)

// measureInvokeExport times the invoke→export hot path on p.
func measureInvokeExport(name string, p *core.Provider) (Result, error) {
	return runFixed(name, invokeIters, func() error {
		inv, err := p.Invoke(AppName, core.AppRequest{
			Viewer: MeasuredUser, Owner: MeasuredUser})
		if err != nil {
			return err
		}
		_, err = p.ExportCheck(inv, MeasuredUser)
		return err
	})
}

// measureWVMInvoke times the same social profile read twice — once
// through the native Go app, once through its WVM twin (assembled from
// the embedded w5asm source, compiled once into the provider's program
// cache, run on pooled VMs). The pair of entries pins the
// interpretation overhead: the twin must stay within ~3× of the
// native app, and both are gated like every other request-path entry.
func measureWVMInvoke(p *core.Provider) ([]Result, error) {
	p.InstallApp(apps.Social{})
	if err := apps.InstallWVMTwins(p); err != nil {
		return nil, err
	}
	for _, app := range []string{"social", "social-wvm"} {
		if err := p.EnableApp(MeasuredUser, app); err != nil {
			return nil, err
		}
	}
	u, err := p.GetUser(MeasuredUser)
	if err != nil {
		return nil, err
	}
	label := difc.LabelPair{
		Secrecy:   difc.NewLabel(u.SecrecyTag),
		Integrity: difc.NewLabel(u.WriteTag),
	}
	if err := p.FS.Write(p.UserCred(MeasuredUser),
		"/home/"+MeasuredUser+"/social/profile",
		[]byte("bench profile for the measured user"), label); err != nil {
		return nil, err
	}
	req := core.AppRequest{
		Viewer: MeasuredUser, Owner: MeasuredUser,
		Path: "/profile", Method: "GET",
	}
	measure := func(name, app string) (Result, error) {
		// One unmeasured request first: it must be the 200 profile page,
		// not an error path that would make the timing meaningless.
		inv, err := p.Invoke(app, req)
		if err != nil {
			return Result{}, err
		}
		if inv.Response.Status != 200 {
			return Result{}, fmt.Errorf("%s warmup: status %d, want 200", app, inv.Response.Status)
		}
		if _, err := p.ExportCheck(inv, MeasuredUser); err != nil {
			return Result{}, err
		}
		return runFixed(name, invokeIters, func() error {
			inv, err := p.Invoke(app, req)
			if err != nil {
				return err
			}
			_, err = p.ExportCheck(inv, MeasuredUser)
			return err
		})
	}
	native, err := measure("wvm/invoke/native-twin", "social")
	if err != nil {
		return nil, err
	}
	twin, err := measure("wvm/invoke/social", "social-wvm")
	if err != nil {
		return nil, err
	}
	return []Result{native, twin}, nil
}

// measureStoreHotPath times raw labeled-store Read/Stat on an interned
// path — the allocation-free contract the sharded store pins.
func measureStoreHotPath(p *core.Provider) ([]Result, error) {
	cred := p.UserCred(MeasuredUser)
	path := "/home/" + MeasuredUser + "/private/doc"
	if _, _, err := p.FS.Read(cred, path); err != nil {
		return nil, fmt.Errorf("store hot path warmup: %w", err)
	}
	read, err := runFixed("store/read/cached-path", storeOpIters, func() error {
		_, _, err := p.FS.Read(cred, path)
		return err
	})
	if err != nil {
		return nil, err
	}
	stat, err := runFixed("store/stat/cached-path", storeOpIters, func() error {
		_, err := p.FS.Stat(cred, path)
		return err
	})
	if err != nil {
		return nil, err
	}
	return []Result{read, stat}, nil
}

// measureStoreParallel times concurrent per-user reads against a
// standalone sharded store — the BenchmarkStoreParallel workload in
// a machine-readable form. Regressions here mean cross-user contention
// came back.
func measureStoreParallel(goroutines int) (Result, error) {
	const users = 64
	fs := store.New(store.Options{})
	prov := store.Cred{Principal: "provider"}
	if err := fs.MkdirAll(prov, "/home", difc.LabelPair{}); err != nil {
		return Result{}, err
	}
	creds := make([]store.Cred, users)
	paths := make([]string, users)
	for i := 0; i < users; i++ {
		s, w := difc.Tag(2*i+1), difc.Tag(2*i+2)
		name := fmt.Sprintf("u%03d", i)
		creds[i] = store.Cred{
			Labels:    difc.LabelPair{Integrity: difc.NewLabel(w)},
			Caps:      difc.CapsFor(s, w),
			Principal: "user:" + name,
		}
		private := difc.LabelPair{Secrecy: difc.NewLabel(s), Integrity: difc.NewLabel(w)}
		wp := difc.LabelPair{Integrity: difc.NewLabel(w)}
		if err := fs.Mkdir(creds[i], "/home/"+name, wp); err != nil {
			return Result{}, err
		}
		if err := fs.Mkdir(creds[i], "/home/"+name+"/private", private); err != nil {
			return Result{}, err
		}
		paths[i] = "/home/" + name + "/private/doc"
		if err := fs.Write(creds[i], paths[i], make([]byte, 1024), private); err != nil {
			return Result{}, err
		}
		if _, _, err := fs.Read(creds[i], paths[i]); err != nil {
			return Result{}, err
		}
	}
	name := fmt.Sprintf("store/read-parallel/goroutines=%d", goroutines)
	per := (parallelIters + goroutines - 1) / goroutines
	// One "iteration" is a whole batch of per×goroutines reads; the
	// per-read figures are divided out below.
	res, err := runFixed(name, 1, func() error {
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			go func(g int) {
				cred, path := creds[g%users], paths[g%users]
				for i := 0; i < per; i++ {
					if _, _, err := fs.Read(cred, path); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}(g)
		}
		for g := 0; g < goroutines; g++ {
			if err := <-errs; err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	total := int64(per) * int64(goroutines)
	res.NsPerOp /= float64(total)
	res.AllocsPerOp /= total
	res.BytesPerOp /= total
	return res, nil
}

// measureAuditAppend times the audit log's append path in its two
// production shapes. "segmented" is the pure in-memory data path
// (bounded ring, no disk): what every audited operation pays inline.
// "sustained-spill" runs >= 1M appends per rep through the full
// bounded-ring + background-spill + retention configuration — the
// configuration that makes long provider runs possible — so the gate
// holds both the per-op cost and its steady-state flatness: an
// unbounded log regrowing here shows up as a rising ns/op that
// min-of-5 fixed-iteration reps cannot hide (every rep would carry the
// accumulated heap).
func measureAuditAppend() ([]Result, error) {
	mem, err := audit.Open(audit.Options{SegmentSize: 4096, RingSegments: 16})
	if err != nil {
		return nil, err
	}
	seg, err := runFixed("audit/append/segmented", auditIters, func() error {
		mem.Append(audit.KindFlowAllowed, "app:bench", "/home/u/private/doc", "ok")
		return nil
	})
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "w5-audit-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	spill, err := audit.Open(audit.Options{
		SegmentSize: 4096, RingSegments: 16, SpillDir: dir, RetainSegments: 64,
	})
	if err != nil {
		return nil, err
	}
	defer spill.Close()
	n := 0
	sus, err := runFixed("audit/append/sustained-spill", auditSustainedIters, func() error {
		n++
		spill.Appendf(audit.KindExport, "gateway", "viewer:u", "%d bytes", n)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The append itself never touches the filesystem, but the
	// background writer shares the machine; disk-speed variance between
	// runners earns a modestly widened ns/op line (allocs/bytes still
	// gate at the standard tolerance — the derivation contract).
	sus.NsTolMult = auditNsTolMult
	return []Result{seg, sus}, nil
}

// auditNsTolMult: 2 × the 25% base tolerance = a 50% ns/op line for
// the sustained entry — far below the 2-4× within-run degradation the
// unbounded log exhibited, comfortably above CI disk jitter.
const auditNsTolMult = 2

// GatewayBench is a logged-in keep-alive HTTP harness against a
// gateway serving a scale provider — the end-to-end request the
// paper's §2 front-end performs, measured at the socket. It is shared
// by the w5bench gateway/request* entries and the root
// BenchmarkGatewayRequest so the CI-gated measurement and the
// testing.B twin cannot drift apart. Requests are issued over raw
// keep-alive connections (rawhttp.go), so the measured allocations are
// the server's, not an HTTP client library's.
type GatewayBench struct {
	srv     *httptest.Server
	cookie  *http.Cookie
	addr    string
	reqPath string
}

// StartGatewayBench serves p through a gateway (per-connection session
// cache wired in, as cmd/w5d serves it) and logs MeasuredUser in once;
// Close must be called when done.
func StartGatewayBench(p *core.Provider) (*GatewayBench, error) {
	return StartGatewayBenchWith(p, gateway.Options{FilterHTML: true})
}

// StartGatewayBenchWith is StartGatewayBench with explicit gateway
// options — the request-cached entry turns the sanitized-output cache
// on through it.
func StartGatewayBenchWith(p *core.Provider, opts gateway.Options) (*GatewayBench, error) {
	g := gateway.New(p, opts)
	srv := httptest.NewUnstartedServer(g)
	srv.Config.ConnContext = g.ConnContext // enable the per-connection warm cache
	srv.Start()
	resp, err := http.PostForm(srv.URL+"/login",
		url.Values{"user": {MeasuredUser}, "password": {"pw"}})
	if err != nil {
		srv.Close()
		return nil, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		srv.Close()
		return nil, fmt.Errorf("gateway bench login: status %d", resp.StatusCode)
	}
	var cookie *http.Cookie
	for _, c := range resp.Cookies() {
		if c.Name == gateway.SessionCookie {
			cookie = c
		}
	}
	if cookie == nil {
		srv.Close()
		return nil, fmt.Errorf("gateway bench login: no session cookie")
	}
	return &GatewayBench{
		srv:    srv,
		cookie: cookie,
		addr:   srv.Listener.Addr().String(),
		// No ?owner= query: the viewer IS the measured owner (Invoke
		// defaults an empty owner to the viewer), and a paramless GET
		// rides the gateway's no-ParseForm fast path — the canonical
		// "read your own page" request.
		reqPath: "/app/" + AppName + "/",
	}, nil
}

func (gb *GatewayBench) Close() { gb.srv.Close() }

// measureGatewayRequest times the sequential keep-alive request path:
// cookie -> cached session -> Invoke -> ExportCheck -> sanitize, over
// a real loopback connection. The difference between this entry and
// invoke-export/* is the measured HTTP overhead.
func measureGatewayRequest(name string, p *core.Provider) (Result, error) {
	gb, err := StartGatewayBench(p)
	if err != nil {
		return Result{}, err
	}
	defer gb.Close()
	return timeGatewayRequests(name, gb)
}

// timeGatewayRequests runs the sequential fixed-iteration loop over one
// raw keep-alive connection.
func timeGatewayRequests(name string, gb *GatewayBench) (Result, error) {
	conn, err := gb.Dial()
	if err != nil {
		return Result{}, err
	}
	defer conn.Close()
	if err := conn.Do(); err != nil { // warm the connection + session cache
		return Result{}, err
	}
	res, err := runFixed(name, gatewayIters, conn.Do)
	res.NsTolMult = gatewayNsTolMult
	return res, err
}

// gatewayNsTolMult: loopback HTTP latency is dominated by scheduler
// wakeups, not gateway code, and swings ~1.5× between otherwise
// identical runs. 8 × the 25% base tolerance puts the ns/op line at
// 3×, which still fails a serializing lock or an O(population) leak
// while the tight allocs/bytes gate holds the derivation contract.
const gatewayNsTolMult = 8

// measureGatewayParallel times concurrent keep-alive clients, each with
// its own connection (and therefore its own warm per-connection session
// cache), sharing one login. Regressions here mean the session path
// reacquired a serializing lock.
func measureGatewayParallel(p *core.Provider, goroutines int) (Result, error) {
	gb, err := StartGatewayBench(p)
	if err != nil {
		return Result{}, err
	}
	defer gb.Close()
	conns := make([]*GatewayConn, goroutines)
	for i := range conns {
		// Own connection per goroutine = own warm session cache.
		if conns[i], err = gb.Dial(); err != nil {
			return Result{}, err
		}
		defer conns[i].Close()
		if err := conns[i].Do(); err != nil {
			return Result{}, err
		}
	}
	name := fmt.Sprintf("gateway/request-parallel/goroutines=%d", goroutines)
	per := (gatewayIters + goroutines - 1) / goroutines
	// One "iteration" is a whole batch of per×goroutines requests; the
	// per-request figures are divided out below.
	res, err := runFixed(name, 1, func() error {
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			go func(g int) {
				for i := 0; i < per; i++ {
					if err := conns[g].Do(); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}(g)
		}
		for g := 0; g < goroutines; g++ {
			if err := <-errs; err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	total := int64(per) * int64(goroutines)
	res.NsPerOp /= float64(total)
	res.AllocsPerOp /= total
	res.BytesPerOp /= total
	res.NsTolMult = gatewayNsTolMult
	return res, nil
}

// MeasureRequestPath runs the full request-path suite — invoke→export
// at two population scales, the raw store hot path, parallel store
// reads, the HTTP-level gateway request path, the audit append path
// (inline + 1M-event sustained spill), the labeled tuple store
// (scan, indexed point query, unique-indexed insert, per-table
// parallel selects), and the marketplace lifecycle (declassifier
// consultation uncached vs verdict-cached, catalogue-snapshot search,
// warm-started CodeRank recompute) — and assembles the Report.
func MeasureRequestPath(progress func(Result)) (Report, error) {
	report := Report{
		Benchmark: "requestpath",
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
	}
	add := func(r Result) {
		report.Results = append(report.Results, r)
		if progress != nil {
			progress(r)
		}
	}
	var ns100, ns10k float64
	for _, cfg := range []struct {
		name    string
		gateway string
		users   int
		enforce bool
	}{
		{"invoke-export/enforcing/users=100", "gateway/request/enforcing/users=100", 100, true},
		{"invoke-export/no-checks/users=100", "gateway/request/no-checks/users=100", 100, false},
		{"invoke-export/enforcing/users=10000", "", 10_000, true},
	} {
		p, err := BuildScaleProvider(cfg.users, cfg.enforce)
		if err != nil {
			return report, err
		}
		res, err := measureInvokeExport(cfg.name, p)
		if err != nil {
			return report, err
		}
		add(res)
		if cfg.enforce && cfg.users == 100 {
			ns100 = res.NsPerOp
		}
		if cfg.enforce && cfg.users == 10_000 {
			ns10k = res.NsPerOp
		}
		if cfg.enforce && cfg.users == 100 {
			hot, err := measureStoreHotPath(p)
			if err != nil {
				return report, err
			}
			for _, r := range hot {
				add(r)
			}
		}
		if cfg.gateway != "" {
			res, err := measureGatewayRequest(cfg.gateway, p)
			if err != nil {
				return report, err
			}
			add(res)
		}
		if cfg.enforce && cfg.users == 100 {
			for _, goroutines := range []int{1, 8} {
				res, err := measureGatewayParallel(p, goroutines)
				if err != nil {
					return report, err
				}
				add(res)
			}
			// Last in this block: it overwrites MeasuredUser's document
			// with the hot dirty page the output cache serves.
			res, err := measureGatewayCached(p)
			if err != nil {
				return report, err
			}
			add(res)
			wvmRes, err := measureWVMInvoke(p)
			if err != nil {
				return report, err
			}
			for _, r := range wvmRes {
				add(r)
			}
		}
	}
	sanRes, err := measureSanitize()
	if err != nil {
		return report, err
	}
	for _, r := range sanRes {
		add(r)
	}
	for _, g := range []int{1, 8} {
		res, err := measureStoreParallel(g)
		if err != nil {
			return report, err
		}
		add(res)
	}
	auditRes, err := measureAuditAppend()
	if err != nil {
		return report, err
	}
	for _, r := range auditRes {
		add(r)
	}
	tableRes, err := measureTableOps()
	if err != nil {
		return report, err
	}
	for _, r := range tableRes {
		add(r)
	}
	marketRes, err := measureMarketplace()
	if err != nil {
		return report, err
	}
	for _, r := range marketRes {
		add(r)
	}
	if ns100 > 0 {
		report.ScalingRatio10k = ns10k / ns100
	}
	return report, nil
}
