package benchutil

// Markdown rendering of a baseline-vs-current comparison, written by
// cmd/w5bench -summary into $GITHUB_STEP_SUMMARY so a bench-gate result
// is readable on the run page without digging through logs.

import (
	"fmt"
	"strings"
)

// MarkdownCompareTable renders current against baseline as a GitHub
// markdown table, one row per baseline entry (plus any new entries),
// flagging the rows the Compare gate would fail at the given tolerance.
func MarkdownCompareTable(baseline, current Report, tolerance float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Bench gate: %s (%s, %s)\n\n", current.Benchmark, current.GoVersion, current.GOARCH)
	if len(baseline.Results) == 0 && len(current.Results) == 0 {
		// Capacity-only reports (BENCH_capacity.json) have no ns/op
		// entries; an empty table would just be noise.
		if len(baseline.Capacity) > 0 || len(current.Capacity) > 0 {
			b.WriteString(markdownCapacityTable(baseline, current, tolerance))
		}
		return b.String()
	}
	b.WriteString("| entry | ns/op (base → now) | Δ | allocs/op | B/op | status |\n")
	b.WriteString("|---|---|---|---|---|---|\n")

	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	seen := make(map[string]bool, len(baseline.Results))
	for _, base := range baseline.Results {
		seen[base.Name] = true
		now, ok := cur[base.Name]
		if !ok {
			fmt.Fprintf(&b, "| `%s` | %.0f → — | | | | ❌ missing |\n", base.Name, base.NsPerOp)
			continue
		}
		nsTol := tolerance
		if base.NsTolMult > 1 {
			nsTol = tolerance * base.NsTolMult
		}
		status := "✅"
		switch {
		case now.NsPerOp > base.NsPerOp*(1+nsTol),
			base.AllocsPerOp == 0 && now.AllocsPerOp > 0,
			base.BytesPerOp == 0 && now.BytesPerOp > 0,
			float64(now.AllocsPerOp) > float64(base.AllocsPerOp)*(1+tolerance),
			float64(now.BytesPerOp) > float64(base.BytesPerOp)*(1+tolerance):
			status = "❌ regressed"
		}
		delta := "—"
		if base.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.0f%%", (now.NsPerOp/base.NsPerOp-1)*100)
		}
		fmt.Fprintf(&b, "| `%s` | %.0f → %.0f | %s | %d → %d | %d → %d | %s |\n",
			base.Name, base.NsPerOp, now.NsPerOp, delta,
			base.AllocsPerOp, now.AllocsPerOp, base.BytesPerOp, now.BytesPerOp, status)
	}
	for _, r := range current.Results {
		if !seen[r.Name] {
			fmt.Fprintf(&b, "| `%s` | — → %.0f | | — → %d | — → %d | 🆕 new |\n",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		}
	}
	if baseline.ScalingRatio10k > 0 || current.ScalingRatio10k > 0 {
		fmt.Fprintf(&b, "\nscaling ratio (10k/100 users): %.2f → %.2f\n",
			baseline.ScalingRatio10k, current.ScalingRatio10k)
	}
	if len(baseline.Capacity) > 0 || len(current.Capacity) > 0 {
		b.WriteString("\n")
		b.WriteString(markdownCapacityTable(baseline, current, tolerance))
	}
	return b.String()
}

// markdownCapacityTable renders the open-loop capacity entries:
// throughput gates a lower bound, latency and errors gate upper
// bounds, mirroring compareCapacity's rules row by row.
func markdownCapacityTable(baseline, current Report, tolerance float64) string {
	var b strings.Builder
	b.WriteString("| capacity entry | req/s (base → now) | Δ | p50 ms | p99 ms | p999 ms | err % | status |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	cur := make(map[string]CapacityResult, len(current.Capacity))
	for _, r := range current.Capacity {
		cur[r.Name] = r
	}
	ms := func(ns float64) string { return fmt.Sprintf("%.1f", ns/1e6) }
	seen := make(map[string]bool, len(baseline.Capacity))
	for _, base := range baseline.Capacity {
		seen[base.Name] = true
		now, ok := cur[base.Name]
		if !ok {
			fmt.Fprintf(&b, "| `%s` | %.0f → — | | | | | | ❌ missing |\n", base.Name, base.AchievedRPS)
			continue
		}
		status := "✅"
		if len(compareCapacity(Report{Capacity: []CapacityResult{base}},
			Report{Capacity: []CapacityResult{now}}, tolerance)) > 0 {
			status = "❌ regressed"
		}
		delta := "—"
		if base.AchievedRPS > 0 {
			delta = fmt.Sprintf("%+.0f%%", (now.AchievedRPS/base.AchievedRPS-1)*100)
		}
		fmt.Fprintf(&b, "| `%s` | %.0f → %.0f | %s | %s → %s | %s → %s | %s → %s | %.2f → %.2f | %s |\n",
			base.Name, base.AchievedRPS, now.AchievedRPS, delta,
			ms(base.P50Ns), ms(now.P50Ns), ms(base.P99Ns), ms(now.P99Ns),
			ms(base.P999Ns), ms(now.P999Ns), base.ErrorRate*100, now.ErrorRate*100, status)
	}
	for _, r := range current.Capacity {
		if !seen[r.Name] {
			fmt.Fprintf(&b, "| `%s` | — → %.0f | | %s | %s | %s | %.2f | 🆕 new |\n",
				r.Name, r.AchievedRPS, ms(r.P50Ns), ms(r.P99Ns), ms(r.P999Ns), r.ErrorRate*100)
		}
	}
	return b.String()
}
