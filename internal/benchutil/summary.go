package benchutil

// Markdown rendering of a baseline-vs-current comparison, written by
// cmd/w5bench -summary into $GITHUB_STEP_SUMMARY so a bench-gate result
// is readable on the run page without digging through logs.

import (
	"fmt"
	"strings"
)

// MarkdownCompareTable renders current against baseline as a GitHub
// markdown table, one row per baseline entry (plus any new entries),
// flagging the rows the Compare gate would fail at the given tolerance.
func MarkdownCompareTable(baseline, current Report, tolerance float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Bench gate: %s (%s, %s)\n\n", current.Benchmark, current.GoVersion, current.GOARCH)
	b.WriteString("| entry | ns/op (base → now) | Δ | allocs/op | B/op | status |\n")
	b.WriteString("|---|---|---|---|---|---|\n")

	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	seen := make(map[string]bool, len(baseline.Results))
	for _, base := range baseline.Results {
		seen[base.Name] = true
		now, ok := cur[base.Name]
		if !ok {
			fmt.Fprintf(&b, "| `%s` | %.0f → — | | | | ❌ missing |\n", base.Name, base.NsPerOp)
			continue
		}
		nsTol := tolerance
		if base.NsTolMult > 1 {
			nsTol = tolerance * base.NsTolMult
		}
		status := "✅"
		switch {
		case now.NsPerOp > base.NsPerOp*(1+nsTol),
			base.AllocsPerOp == 0 && now.AllocsPerOp > 0,
			base.BytesPerOp == 0 && now.BytesPerOp > 0,
			float64(now.AllocsPerOp) > float64(base.AllocsPerOp)*(1+tolerance),
			float64(now.BytesPerOp) > float64(base.BytesPerOp)*(1+tolerance):
			status = "❌ regressed"
		}
		delta := "—"
		if base.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.0f%%", (now.NsPerOp/base.NsPerOp-1)*100)
		}
		fmt.Fprintf(&b, "| `%s` | %.0f → %.0f | %s | %d → %d | %d → %d | %s |\n",
			base.Name, base.NsPerOp, now.NsPerOp, delta,
			base.AllocsPerOp, now.AllocsPerOp, base.BytesPerOp, now.BytesPerOp, status)
	}
	for _, r := range current.Results {
		if !seen[r.Name] {
			fmt.Fprintf(&b, "| `%s` | — → %.0f | | — → %d | — → %d | 🆕 new |\n",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		}
	}
	if baseline.ScalingRatio10k > 0 || current.ScalingRatio10k > 0 {
		fmt.Fprintf(&b, "\nscaling ratio (10k/100 users): %.2f → %.2f\n",
			baseline.ScalingRatio10k, current.ScalingRatio10k)
	}
	return b.String()
}
