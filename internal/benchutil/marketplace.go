package benchutil

// Marketplace request-path entries: the declassifier consultation with
// and without the verdict cache, catalogue-snapshot search, and the
// warm-started CodeRank recompute. The cached/uncached declass pair is
// the PR's headline acceptance line: decide-cached must come in at or
// under half the uncached cost, or the cache is not paying for its
// complexity.

import (
	"fmt"

	"w5/internal/audit"
	"w5/internal/core"
	"w5/internal/declass"
	"w5/internal/difc"
	"w5/internal/rank"
	"w5/internal/registry"
	"w5/internal/wvm"
)

// benchEnv is the owner environment the measured FriendList policy
// reads from; the friend file is ~32 lines, the shape a real social
// account carries.
type benchEnv struct{ files map[string][]byte }

func (e benchEnv) ReadOwnerFile(path string) ([]byte, error) {
	if b, ok := e.files[path]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("benchutil: no file %s", path)
}

// measureDeclassDecide times Manager.Ask for a friend-list consultation
// — the per-export policy cost on the request path — uncached (every
// Ask re-reads and re-parses the friend file) and cached (epoch-keyed
// verdict hit; the audit append still happens, as in production).
func measureDeclassDecide() ([]Result, error) {
	var friends []byte
	for i := 0; i < 32; i++ {
		friends = append(friends, fmt.Sprintf("friend%04d\n", i)...)
	}
	env := benchEnv{files: map[string][]byte{"/social/friends": friends}}
	m := declass.NewManager(func(string) declass.Env { return env }, audit.New())
	m.Authorize("owner", declass.FriendList{}, difc.NewCapSet(difc.Minus(1)))
	req := declass.Request{
		Owner: "owner", Viewer: "friend0017", App: "app:social", Path: "/profile",
	}
	ask := func() error {
		d, _, err := m.Ask(req)
		if err != nil {
			return err
		}
		if !d.Allow {
			return fmt.Errorf("benchutil: declass bench denied: %s", d.Reason)
		}
		return nil
	}

	m.SetVerdictCacheEntries(0)
	uncached, err := runFixed("declass/decide", invokeIters, ask)
	if err != nil {
		return nil, err
	}
	m.SetVerdictCacheEntries(declass.DefaultVerdictCacheEntries)
	if err := ask(); err != nil { // warm the cache outside the timing
		return nil, err
	}
	cached, err := runFixed("declass/decide-cached", invokeIters, ask)
	if err != nil {
		return nil, err
	}
	return []Result{uncached, cached}, nil
}

// benchRegistry builds a catalogue shaped like a modest marketplace:
// modules modules with one-line summaries and a dependency graph (every
// module imports a few earlier ones, plus embed edges onto the hubs).
func benchRegistry(modules int) (*registry.Registry, error) {
	prog, err := wvm.Assemble("start:\n  push 0\n  halt\n", core.AppSyscallNames)
	if err != nil {
		return nil, err
	}
	r := registry.New(nil)
	for i := 0; i < modules; i++ {
		var deps []string
		for d := 1; d <= 3 && i-d*7 >= 0; d++ {
			deps = append(deps, fmt.Sprintf("mod%04d", i-d*7))
		}
		if _, err := r.Put(registry.Upload{
			Module:    fmt.Sprintf("mod%04d", i),
			Version:   "1.0",
			Developer: fmt.Sprintf("dev%d", i%8),
			Kind:      registry.KindApp,
			Program:   prog,
			Deps:      deps,
			Summary:   fmt.Sprintf("module %d: photo social blog utility", i),
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < modules; i += 5 {
		r.RecordEmbed(fmt.Sprintf("mod%04d", i), "mod0000")
	}
	for e := 0; e < 4; e++ {
		if err := r.Endorse(fmt.Sprintf("editor%d", e), fmt.Sprintf("mod%04d", e*3)); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// measureRegistrySearch times a catalogue-snapshot substring search —
// the lock-free /registry/search read path, minus HTTP.
func measureRegistrySearch(r *registry.Registry) (Result, error) {
	v := r.View()
	if n := len(v.Search("photo")); n == 0 {
		return Result{}, fmt.Errorf("benchutil: search bench matches nothing")
	}
	return runFixed("registry/search", invokeIters, func() error {
		if len(r.View().Search("photo")) == 0 {
			return fmt.Errorf("benchutil: search lost its matches")
		}
		return nil
	})
}

// measureRankRecompute times one full warm-started CodeRank recompute
// over the bench catalogue — the cost a catalogue mutation imposes on
// the next search, which the Index pays once per change sequence.
func measureRankRecompute(r *registry.Registry) (Result, error) {
	ix := rank.NewIndex(rank.Options{})
	if v := ix.Refresh(r); len(v.Scores) == 0 {
		return Result{}, fmt.Errorf("benchutil: rank bench ranked nothing")
	}
	return runFixed("rank/recompute", 2_000, func() error {
		if v := ix.Refresh(r); len(v.Ordered) == 0 {
			return fmt.Errorf("benchutil: rank recompute lost its modules")
		}
		return nil
	})
}

// measureMarketplace bundles the marketplace entries.
func measureMarketplace() ([]Result, error) {
	out, err := measureDeclassDecide()
	if err != nil {
		return nil, err
	}
	reg, err := benchRegistry(64)
	if err != nil {
		return nil, err
	}
	search, err := measureRegistrySearch(reg)
	if err != nil {
		return nil, err
	}
	recompute, err := measureRankRecompute(reg)
	if err != nil {
		return nil, err
	}
	return append(out, search, recompute), nil
}
