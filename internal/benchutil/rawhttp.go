package benchutil

// Minimal raw-socket HTTP/1.1 client for the gateway benchmarks.
//
// The previous harness issued requests through net/http.Client, whose
// transport costs ~50 allocations per request — more than the entire
// server-side path it was supposed to measure. GatewayConn replaces it
// with one keep-alive TCP connection and a hand-rolled request/response
// cycle: the request bytes are precomputed once, the response is parsed
// with a reusing bufio.Reader and a fixed discard buffer, and the warm
// loop allocates nothing. What the gateway/request* entries report is
// therefore the SERVER's per-request cost (plus the kernel round trip),
// not the client library's.
//
// The parser handles exactly what net/http emits for the benchmark
// responses: status line, headers, then either Content-Length or
// chunked transfer-encoding. It is a measurement harness, not a general
// HTTP client.

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
)

// GatewayConn is one keep-alive benchmark connection. Not safe for
// concurrent use; parallel benchmarks dial one per goroutine (which
// also gives each its own server-side per-connection session cache).
type GatewayConn struct {
	conn    net.Conn
	br      *bufio.Reader
	req     []byte
	discard [4096]byte
}

// Dial opens a fresh keep-alive connection with the logged-in session's
// request precomputed.
func (gb *GatewayBench) Dial() (*GatewayConn, error) {
	conn, err := DialAddr(gb.addr)
	if err != nil {
		return nil, err
	}
	conn.req = []byte(fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\nCookie: %s=%s\r\n\r\n",
		gb.reqPath, gb.addr, gb.cookie.Name, gb.cookie.Value))
	return conn, nil
}

// DialAddr opens a raw keep-alive connection to any gateway address
// with no precomputed request; callers drive it through Exchange.
// This is the client the capacity harness (internal/loadgen) fans out
// by the connection, so its load numbers measure the server, not an
// HTTP client library.
func DialAddr(addr string) (*GatewayConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &GatewayConn{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 16<<10),
	}, nil
}

func (c *GatewayConn) Close() error { return c.conn.Close() }

var (
	http200  = []byte("HTTP/1.1 200")
	hdrCLen  = []byte("content-length:")
	hdrChunk = []byte("transfer-encoding: chunked")
)

// Do issues the precomputed request and drains one response, failing on
// any status but 200. Zero allocations when warm.
func (c *GatewayConn) Do() error {
	if _, err := c.conn.Write(c.req); err != nil {
		return err
	}
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return err
	}
	if !bytes.HasPrefix(line, http200) {
		return fmt.Errorf("gateway request: status %q", bytes.TrimSpace(line))
	}
	return c.drainResponse()
}

// Exchange writes a caller-preformatted HTTP/1.1 request (headers and
// body included; the connection is keep-alive, so the request must not
// ask for Connection: close) and drains exactly one response,
// returning its status code. Unlike Do, a non-2xx status is NOT an
// error — the body is drained either way and the connection stays
// usable, which is what an open-loop load driver needs to keep issuing
// requests while it counts failures.
func (c *GatewayConn) Exchange(req []byte) (int, error) {
	if _, err := c.conn.Write(req); err != nil {
		return 0, err
	}
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return 0, err
	}
	status, ok := parseStatus(line)
	if !ok {
		return 0, fmt.Errorf("gateway request: bad status line %q", bytes.TrimSpace(line))
	}
	if err := c.drainResponse(); err != nil {
		return status, err
	}
	return status, nil
}

// parseStatus extracts the 3-digit code from an HTTP/1.x status line.
func parseStatus(line []byte) (int, bool) {
	sp := bytes.IndexByte(line, ' ')
	if sp < 0 || len(line) < sp+4 {
		return 0, false
	}
	n := 0
	for _, ch := range line[sp+1 : sp+4] {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		n = n*10 + int(ch-'0')
	}
	return n, true
}

// drainResponse consumes headers and body of one response already past
// its status line.
func (c *GatewayConn) drainResponse() error {
	clen, chunked := -1, false
	for {
		line, err := c.br.ReadSlice('\n')
		if err != nil {
			return err
		}
		if len(line) <= 2 { // blank line: end of headers
			break
		}
		if n, ok := headerInt(line, hdrCLen); ok {
			clen = n
		} else if foldHasPrefix(line, hdrChunk) {
			chunked = true
		}
	}
	switch {
	case chunked:
		return c.drainChunked()
	case clen >= 0:
		return c.drainN(clen)
	default:
		// Neither length nor chunking on a 200: the server would have
		// to close the connection to delimit the body, which defeats
		// the keep-alive harness. net/http never does this to us.
		return fmt.Errorf("gateway request: response with no length framing")
	}
}

// drainN discards exactly n body bytes.
func (c *GatewayConn) drainN(n int) error {
	for n > 0 {
		chunk := n
		if chunk > len(c.discard) {
			chunk = len(c.discard)
		}
		m, err := c.br.Read(c.discard[:chunk])
		if err != nil {
			return err
		}
		n -= m
	}
	return nil
}

// drainChunked discards a chunked body including the terminating
// zero-length chunk and trailing CRLFs.
func (c *GatewayConn) drainChunked() error {
	for {
		line, err := c.br.ReadSlice('\n')
		if err != nil {
			return err
		}
		size, ok := parseHex(bytes.TrimSpace(line))
		if !ok {
			return fmt.Errorf("gateway request: bad chunk size %q", bytes.TrimSpace(line))
		}
		if size == 0 {
			// Trailer-less end: one final CRLF.
			_, err = c.br.ReadSlice('\n')
			return err
		}
		if err := c.drainN(size); err != nil {
			return err
		}
		if _, err := c.br.ReadSlice('\n'); err != nil { // chunk-data CRLF
			return err
		}
	}
}

// headerInt matches a lowercase "name:" prefix case-insensitively and
// parses the decimal value, without allocating.
func headerInt(line, name []byte) (int, bool) {
	if !foldHasPrefix(line, name) {
		return 0, false
	}
	n, seen := 0, false
	for _, ch := range line[len(name):] {
		switch {
		case ch >= '0' && ch <= '9':
			n = n*10 + int(ch-'0')
			seen = true
		case ch == ' ' && !seen:
		case ch == '\r' || ch == '\n':
			return n, seen
		default:
			return 0, false
		}
	}
	return n, seen
}

// foldHasPrefix reports whether line begins with the all-lowercase
// prefix, ASCII case-insensitively.
func foldHasPrefix(line, prefix []byte) bool {
	if len(line) < len(prefix) {
		return false
	}
	for i, p := range prefix {
		ch := line[i]
		if ch >= 'A' && ch <= 'Z' {
			ch += 32
		}
		if ch != p {
			return false
		}
	}
	return true
}

func parseHex(b []byte) (int, bool) {
	if len(b) == 0 {
		return 0, false
	}
	n := 0
	for _, ch := range b {
		switch {
		case ch >= '0' && ch <= '9':
			n = n<<4 + int(ch-'0')
		case ch >= 'a' && ch <= 'f':
			n = n<<4 + int(ch-'a'+10)
		case ch >= 'A' && ch <= 'F':
			n = n<<4 + int(ch-'A'+10)
		default:
			return 0, false
		}
	}
	return n, true
}
