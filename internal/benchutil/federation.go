package benchutil

// Federation sync benchmarks and their machine-readable record.
// `cmd/w5bench -federation` writes a Report; the committed
// BENCH_federation.json is the baseline the CI gate holds the line
// against, pinning the incremental-sync contract: a steady-state pull
// over an unchanged corpus must stay O(changed files) — near the cost
// of one empty HTTP round trip — no matter how many files the user
// has, and must not regrow toward the full-transfer cost.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"time"

	"w5/internal/core"
	"w5/internal/difc"
	"w5/internal/federation"
)

// fedFiles is the corpus size for the federation entries: large enough
// that an accidental O(corpus) transfer in the steady-state entry is
// unmissable, small enough that the full-pull entry stays fast.
const fedFiles = 64

// Iteration budgets. Every entry crosses a real loopback HTTP
// connection, so these sit near gatewayIters territory; the update
// entry additionally pays a store write and a full apply per iteration.
const (
	fedSteadyIters = 2_000
	fedUpdateIters = 500
	fedFullIters   = 500
)

// FederationBench is a provisioned A->B pull pair: provider A
// exporting fedFiles private files for bob over a real HTTP server,
// provider B holding the link that pulls them. It is shared by the
// w5bench federation/* entries and the root BenchmarkFederationSync so
// the CI-gated measurement and the testing.B twin cannot drift apart.
type FederationBench struct {
	A, B *core.Provider
	srv  *httptest.Server
	link *federation.Link
}

// Close shuts the exporting HTTP server down.
func (fb *FederationBench) Close() { fb.srv.Close() }

// writeBobFile writes (or overwrites) one of bob's private files on A.
func (fb *FederationBench) writeBobFile(i int, rev int) error {
	u, err := fb.A.GetUser("bob")
	if err != nil {
		return err
	}
	label := difc.LabelPair{
		Secrecy:   difc.NewLabel(u.SecrecyTag),
		Integrity: difc.NewLabel(u.WriteTag),
	}
	path := fmt.Sprintf("/home/bob/docs/f%03d", i)
	body := []byte(fmt.Sprintf("file %d rev %d padding padding padding", i, rev))
	return fb.A.FS.Write(fb.A.UserCred("bob"), path, body, label)
}

// StartFederationBench provisions the pair and completes one initial
// full sync, so the measured loops start from the converged steady
// state.
func StartFederationBench() (*FederationBench, error) {
	A := core.NewProvider(core.Config{Name: "providerA", Enforce: true, DisableQuotas: true})
	B := core.NewProvider(core.Config{Name: "providerB", Enforce: true, DisableQuotas: true})
	for _, p := range []*core.Provider{A, B} {
		if _, err := p.CreateUser("bob", "pw"); err != nil {
			return nil, err
		}
	}
	if err := federation.AuthorizePeer(A, "bob", "providerB"); err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	federation.MountExport(A, mux, map[string]string{"providerB": "s3cret"})
	srv := httptest.NewServer(mux)

	fb := &FederationBench{
		A: A, B: B, srv: srv,
		link: &federation.Link{
			Local: B, PeerName: "providerA", BaseURL: srv.URL,
			Secret: "s3cret", User: "bob",
			// Benchmarks measure the happy path; a real fault here should
			// fail fast, not hide behind retries.
			Options: federation.Options{Retries: -1, Timeout: 30 * time.Second},
		},
	}
	u, err := A.GetUser("bob")
	if err != nil {
		srv.Close()
		return nil, err
	}
	dirLabel := difc.LabelPair{
		Secrecy:   difc.NewLabel(u.SecrecyTag),
		Integrity: difc.NewLabel(u.WriteTag),
	}
	if err := A.FS.MkdirAll(A.UserCred("bob"), "/home/bob/docs", dirLabel); err != nil {
		srv.Close()
		return nil, err
	}
	for i := 0; i < fedFiles; i++ {
		if err := fb.writeBobFile(i, 0); err != nil {
			srv.Close()
			return nil, err
		}
	}
	res, err := fb.link.SyncFull()
	if err != nil {
		srv.Close()
		return nil, err
	}
	if res.Applied != fedFiles {
		srv.Close()
		return nil, fmt.Errorf("initial full sync applied %d files, want %d", res.Applied, fedFiles)
	}
	return fb, nil
}

// SyncSteady runs one incremental pull over the converged corpus and
// fails if anything was transferred and applied — the O(changed files)
// contract.
func (fb *FederationBench) SyncSteady() error {
	res, err := fb.link.Sync()
	if err != nil {
		return err
	}
	if res.Applied != 0 {
		return fmt.Errorf("steady-state sync applied %d files", res.Applied)
	}
	return nil
}

// SyncUpdate overwrites one file on A (rev disambiguates the bytes)
// and runs one incremental pull, which must apply exactly that file.
func (fb *FederationBench) SyncUpdate(rev int) error {
	if err := fb.writeBobFile(rev%fedFiles, rev); err != nil {
		return err
	}
	res, err := fb.link.Sync()
	if err != nil {
		return err
	}
	if res.Applied != 1 {
		return fmt.Errorf("update sync applied %d files, want 1", res.Applied)
	}
	return nil
}

// SyncFullStale runs one full pull (the periodic FullEvery healing
// pass) over the converged corpus: everything transfers, nothing
// applies.
func (fb *FederationBench) SyncFullStale() error {
	res, err := fb.link.SyncFull()
	if err != nil {
		return err
	}
	if res.Applied != 0 || res.Stale != fedFiles {
		return fmt.Errorf("full sync over converged corpus: applied=%d stale=%d",
			res.Applied, res.Stale)
	}
	return nil
}

// fedNsTolMult widens the federation ns/op lines the same way the
// gateway entries are widened: every iteration is loopback HTTP, so
// run-to-run latency is scheduler-dominated. allocs/op and bytes/op
// still gate at the standard tolerance.
const fedNsTolMult = 8

// MeasureFederation runs the federation sync suite and assembles the
// Report. Entries:
//
//   - sync-steady: incremental pull with nothing changed. The O(changed
//     files) contract — cost must track one empty round trip, not the
//     corpus.
//   - sync-update: one file overwritten per pull; steady-state
//     propagation of a single change.
//   - sync-full-stale: a full pull (the periodic FullEvery healing
//     pass) over an already-converged corpus — transfers everything,
//     applies nothing.
func MeasureFederation(progress func(Result)) (Report, error) {
	report := Report{
		Benchmark: "federation",
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
	}
	fb, err := StartFederationBench()
	if err != nil {
		return report, err
	}
	defer fb.Close()
	add := func(r Result) {
		r.NsTolMult = fedNsTolMult
		report.Results = append(report.Results, r)
		if progress != nil {
			progress(r)
		}
	}

	steady, err := runFixed(fmt.Sprintf("federation/sync-steady/files=%d", fedFiles),
		fedSteadyIters, fb.SyncSteady)
	if err != nil {
		return report, err
	}
	add(steady)

	rev := 0
	update, err := runFixed(fmt.Sprintf("federation/sync-update/files=%d", fedFiles),
		fedUpdateIters, func() error {
			rev++
			return fb.SyncUpdate(rev)
		})
	if err != nil {
		return report, err
	}
	add(update)

	full, err := runFixed(fmt.Sprintf("federation/sync-full-stale/files=%d", fedFiles),
		fedFullIters, fb.SyncFullStale)
	if err != nil {
		return report, err
	}
	add(full)

	return report, nil
}
