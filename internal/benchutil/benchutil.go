// Package benchutil provisions the shared fixture for the request-path
// scaling benchmarks. Both the root `go test -bench` suite
// (BenchmarkInvoke) and `cmd/w5bench -requestpath` must measure the
// same setup — a single harness here keeps them from drifting apart.
package benchutil

import (
	"fmt"
	"runtime"
	"sync"

	"w5/internal/core"
	"w5/internal/difc"
)

// AppName is the registry name of the canonical benchmark application.
const AppName = "benchapp"

// MeasuredUser is the account whose document every benchmark request
// reads and exports.
const MeasuredUser = "u000000"

// App is the canonical request: read the owner's private document and
// return it (the E3 workload).
type App struct{}

// Name implements core.App.
func (App) Name() string { return AppName }

// Handle implements core.App.
func (App) Handle(env *core.AppEnv, req core.AppRequest) (core.AppResponse, error) {
	data, err := env.ReadFile("/home/" + req.Owner + "/private/doc")
	if err != nil {
		return core.AppResponse{Status: 404}, nil
	}
	return core.AppResponse{Body: data}, nil
}

// BuildScaleProvider provisions a provider with the given registered
// user population, all of whom have enabled the benchmark app, and a
// 1 KiB private document for MeasuredUser. Quotas are disabled: these
// benches measure IFC cost, and the default network budget would
// (correctly!) cut the app off after ~8k exported responses.
//
// Provisioning runs in parallel: CreateUser is dominated by the
// password KDF, which is embarrassingly parallel and irrelevant to
// what the benchmarks measure.
func BuildScaleProvider(users int, enforce bool) (*core.Provider, error) {
	p := core.NewProvider(core.Config{Name: "bench", Enforce: enforce, DisableQuotas: true})
	p.InstallApp(App{})
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < users; i += workers {
				name := fmt.Sprintf("u%06d", i)
				if _, err := p.CreateUser(name, "pw"); err != nil {
					errs <- err
					return
				}
				if err := p.EnableApp(name, AppName); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	u, err := p.GetUser(MeasuredUser)
	if err != nil {
		return nil, err
	}
	label := difc.LabelPair{
		Secrecy:   difc.NewLabel(u.SecrecyTag),
		Integrity: difc.NewLabel(u.WriteTag),
	}
	if err := p.FS.Write(p.UserCred(MeasuredUser), "/home/"+MeasuredUser+"/private/doc",
		make([]byte, 1024), label); err != nil {
		return nil, err
	}
	return p, nil
}
