package benchutil

import (
	"path/filepath"
	"strings"
	"testing"
)

func baselineReport() Report {
	return Report{
		Benchmark: "requestpath",
		Results: []Result{
			{Name: "invoke-export/enforcing/users=100", NsPerOp: 5000, AllocsPerOp: 18, BytesPerOp: 4000},
			{Name: "store/read/cached-path", NsPerOp: 150, AllocsPerOp: 0, BytesPerOp: 0},
		},
		ScalingRatio10k: 1.1,
	}
}

// TestCompareNsToleranceMultiplier: an entry carrying NsTolMult widens
// only its own ns/op line; allocs and bytes stay at the base tolerance.
func TestCompareNsToleranceMultiplier(t *testing.T) {
	base := Report{Results: []Result{
		{Name: "gateway/request/enforcing/users=100", NsPerOp: 30_000, AllocsPerOp: 100, BytesPerOp: 12_000, NsTolMult: 8},
	}}
	// 2x slower: within the widened 8*25% = 200% line.
	ok := Report{Results: []Result{
		{Name: "gateway/request/enforcing/users=100", NsPerOp: 60_000, AllocsPerOp: 100, BytesPerOp: 12_000},
	}}
	if v := Compare(base, ok, 0.25); len(v) != 0 {
		t.Errorf("widened ns line flagged 2x noise: %v", v)
	}
	// 4x slower: past even the widened line.
	slow := Report{Results: []Result{
		{Name: "gateway/request/enforcing/users=100", NsPerOp: 120_000, AllocsPerOp: 100, BytesPerOp: 12_000},
	}}
	if v := Compare(base, slow, 0.25); len(v) != 1 || !strings.Contains(v[0], "ns/op") {
		t.Errorf("catastrophic ns regression not flagged: %v", v)
	}
	// Alloc regression is NOT widened: +50% allocs fails at the base line.
	allocs := Report{Results: []Result{
		{Name: "gateway/request/enforcing/users=100", NsPerOp: 30_000, AllocsPerOp: 150, BytesPerOp: 12_000},
	}}
	if v := Compare(base, allocs, 0.25); len(v) != 1 || !strings.Contains(v[0], "allocs/op") {
		t.Errorf("alloc regression slipped through the widened entry: %v", v)
	}
}

func TestCompareAccepts(t *testing.T) {
	base := baselineReport()
	for _, cur := range []Report{
		base, // identical
		{ // faster everywhere, ratio improved, plus a new benchmark
			Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 3000, AllocsPerOp: 12},
				{Name: "store/read/cached-path", NsPerOp: 100, AllocsPerOp: 0},
				{Name: "store/read-parallel/goroutines=8", NsPerOp: 50, AllocsPerOp: 0},
			},
			ScalingRatio10k: 1.0,
		},
		{ // slower, but within the 25% tolerance
			Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 6200, AllocsPerOp: 21},
				{Name: "store/read/cached-path", NsPerOp: 180, AllocsPerOp: 0},
			},
			ScalingRatio10k: 1.3,
		},
		{ // ratio over 25% relative but under the 1.5 grace line
			Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 5000, AllocsPerOp: 18},
				{Name: "store/read/cached-path", NsPerOp: 150, AllocsPerOp: 0},
			},
			ScalingRatio10k: 1.45,
		},
	} {
		if v := Compare(base, cur, 0.25); len(v) != 0 {
			t.Errorf("Compare flagged an acceptable run: %v", v)
		}
	}
}

func TestCompareRejects(t *testing.T) {
	base := baselineReport()
	cases := []struct {
		name string
		cur  Report
		want string // substring of the expected violation
	}{
		{
			"ns regression",
			Report{Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 7000, AllocsPerOp: 18},
				{Name: "store/read/cached-path", NsPerOp: 150},
			}, ScalingRatio10k: 1.1},
			"ns/op exceeds baseline",
		},
		{
			"alloc regression",
			Report{Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 5000, AllocsPerOp: 40},
				{Name: "store/read/cached-path", NsPerOp: 150},
			}, ScalingRatio10k: 1.1},
			"allocs/op exceeds baseline",
		},
		{
			"bytes regression",
			Report{Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 5000, AllocsPerOp: 18, BytesPerOp: 9000},
				{Name: "store/read/cached-path", NsPerOp: 150},
			}, ScalingRatio10k: 1.1},
			"B/op exceeds baseline",
		},
		{
			"alloc-free path regresses to allocating",
			Report{Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 5000, AllocsPerOp: 18},
				{Name: "store/read/cached-path", NsPerOp: 150, AllocsPerOp: 1},
			}, ScalingRatio10k: 1.1},
			"pinned allocation-free",
		},
		{
			"scaling ratio regression",
			Report{Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 5000, AllocsPerOp: 18},
				{Name: "store/read/cached-path", NsPerOp: 150},
			}, ScalingRatio10k: 2.5},
			"scaling_ratio_10k",
		},
		{
			"coverage shrank",
			Report{Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 5000, AllocsPerOp: 18},
			}, ScalingRatio10k: 1.1},
			"not measured",
		},
	}
	for _, tc := range cases {
		v := Compare(base, tc.cur, 0.25)
		if len(v) == 0 {
			t.Errorf("%s: Compare accepted a regressed run", tc.name)
			continue
		}
		found := false
		for _, s := range v {
			if strings.Contains(s, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v missing %q", tc.name, v, tc.want)
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	base := baselineReport()
	path := filepath.Join(t.TempDir(), "report.json")
	if err := base.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(base.Results) || got.ScalingRatio10k != base.ScalingRatio10k {
		t.Errorf("round trip mangled report: %+v", got)
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("LoadReport on a missing file succeeded")
	}
}

// TestCompareAgainstCommittedBaseline loads the real committed baseline
// to guarantee the file the CI gate consumes stays parseable.
func TestCommittedBaselineParses(t *testing.T) {
	r, err := LoadReport("../../BENCH_requestpath.json")
	if err != nil {
		t.Fatalf("committed BENCH_requestpath.json unreadable: %v", err)
	}
	if r.Benchmark != "requestpath" || len(r.Results) == 0 {
		t.Errorf("committed baseline malformed: %+v", r)
	}
	if r.ScalingRatio10k <= 0 || r.ScalingRatio10k > 2.0 {
		t.Errorf("committed scaling ratio %.2f outside the O(request) contract (0, 2.0]", r.ScalingRatio10k)
	}
}

func capacityBaseline() Report {
	return Report{
		Benchmark: "capacity",
		Capacity: []CapacityResult{
			{Name: "capacity/mixed/rps=250", OfferedRPS: 250, AchievedRPS: 249,
				ErrorRate: 0, P50Ns: 2e6, P99Ns: 20e6, P999Ns: 60e6,
				Conns: 8, Ops: 1000, RPSTolMult: 1, NsTolMult: 8},
			{Name: "capacity/mixed/max-sustainable", OfferedRPS: 2000, AchievedRPS: 1900,
				ErrorRate: 0.001, P50Ns: 5e6, P99Ns: 80e6, P999Ns: 200e6,
				Conns: 8, Ops: 4000, RPSTolMult: 2, NsTolMult: 0},
		},
	}
}

// The capacity gate holds a LOWER bound on throughput and UPPER bounds
// on tail latency and errors — the opposite direction from ns/op
// entries — with per-entry widening, and the saturation entry's
// latencies deliberately ungated (NsTolMult 0: different operating
// points are not comparable).
func TestCompareCapacity(t *testing.T) {
	base := capacityBaseline()

	ok := capacityBaseline()
	ok.Capacity[0].AchievedRPS = 240  // -3.6%: inside 25%
	ok.Capacity[0].P99Ns = 35e6       // +75%: inside the 8x line
	ok.Capacity[1].AchievedRPS = 1200 // -37%: inside 2*25% = 50%
	ok.Capacity[1].P999Ns = 900e6     // ungated on the saturation entry
	ok.Capacity[1].ErrorRate = 0.015  // +1.4 points: inside the 2-point grace
	if v := Compare(base, ok, 0.25); len(v) != 0 {
		t.Errorf("capacity gate flagged an acceptable run: %v", v)
	}

	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"throughput shortfall", func(r *Report) { r.Capacity[0].AchievedRPS = 150 }, "falls short"},
		{"saturation shortfall past the widened line", func(r *Report) { r.Capacity[1].AchievedRPS = 800 }, "falls short"},
		{"tail latency blowup", func(r *Report) { r.Capacity[0].P99Ns = 200e6 }, "p99"},
		{"median latency blowup", func(r *Report) { r.Capacity[0].P50Ns = 100e6 }, "p50"},
		{"error rate past the grace line", func(r *Report) { r.Capacity[0].ErrorRate = 0.05 }, "error rate"},
		{"coverage shrank", func(r *Report) { r.Capacity = r.Capacity[:1] }, "not measured"},
	}
	for _, tc := range cases {
		cur := capacityBaseline()
		tc.mutate(&cur)
		v := Compare(base, cur, 0.25)
		if len(v) == 0 {
			t.Errorf("%s: capacity gate accepted a regressed run", tc.name)
			continue
		}
		found := false
		for _, s := range v {
			if strings.Contains(s, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v missing %q", tc.name, v, tc.want)
		}
	}
}

func TestCapacityReportRoundTrip(t *testing.T) {
	base := capacityBaseline()
	path := filepath.Join(t.TempDir(), "capacity.json")
	if err := base.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Capacity) != 2 || got.Capacity[1].NsTolMult != 0 ||
		got.Capacity[0].NsTolMult != 8 || got.Capacity[0].P999Ns != 60e6 {
		t.Errorf("round trip mangled capacity report: %+v", got)
	}
}

// The summary table must carry the capacity rows (status per
// compareCapacity) so the CI step summary shows the load numbers.
func TestMarkdownCapacityTable(t *testing.T) {
	base := capacityBaseline()
	cur := capacityBaseline()
	cur.Capacity[0].AchievedRPS = 100 // regressed
	md := MarkdownCompareTable(base, cur, 0.25)
	if !strings.Contains(md, "capacity/mixed/rps=250") || !strings.Contains(md, "❌ regressed") {
		t.Errorf("capacity regression missing from summary table:\n%s", md)
	}
	if !strings.Contains(md, "capacity/mixed/max-sustainable") {
		t.Errorf("saturation entry missing from summary table:\n%s", md)
	}
}
