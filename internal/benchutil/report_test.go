package benchutil

import (
	"path/filepath"
	"strings"
	"testing"
)

func baselineReport() Report {
	return Report{
		Benchmark: "requestpath",
		Results: []Result{
			{Name: "invoke-export/enforcing/users=100", NsPerOp: 5000, AllocsPerOp: 18, BytesPerOp: 4000},
			{Name: "store/read/cached-path", NsPerOp: 150, AllocsPerOp: 0, BytesPerOp: 0},
		},
		ScalingRatio10k: 1.1,
	}
}

// TestCompareNsToleranceMultiplier: an entry carrying NsTolMult widens
// only its own ns/op line; allocs and bytes stay at the base tolerance.
func TestCompareNsToleranceMultiplier(t *testing.T) {
	base := Report{Results: []Result{
		{Name: "gateway/request/enforcing/users=100", NsPerOp: 30_000, AllocsPerOp: 100, BytesPerOp: 12_000, NsTolMult: 8},
	}}
	// 2x slower: within the widened 8*25% = 200% line.
	ok := Report{Results: []Result{
		{Name: "gateway/request/enforcing/users=100", NsPerOp: 60_000, AllocsPerOp: 100, BytesPerOp: 12_000},
	}}
	if v := Compare(base, ok, 0.25); len(v) != 0 {
		t.Errorf("widened ns line flagged 2x noise: %v", v)
	}
	// 4x slower: past even the widened line.
	slow := Report{Results: []Result{
		{Name: "gateway/request/enforcing/users=100", NsPerOp: 120_000, AllocsPerOp: 100, BytesPerOp: 12_000},
	}}
	if v := Compare(base, slow, 0.25); len(v) != 1 || !strings.Contains(v[0], "ns/op") {
		t.Errorf("catastrophic ns regression not flagged: %v", v)
	}
	// Alloc regression is NOT widened: +50% allocs fails at the base line.
	allocs := Report{Results: []Result{
		{Name: "gateway/request/enforcing/users=100", NsPerOp: 30_000, AllocsPerOp: 150, BytesPerOp: 12_000},
	}}
	if v := Compare(base, allocs, 0.25); len(v) != 1 || !strings.Contains(v[0], "allocs/op") {
		t.Errorf("alloc regression slipped through the widened entry: %v", v)
	}
}

func TestCompareAccepts(t *testing.T) {
	base := baselineReport()
	for _, cur := range []Report{
		base, // identical
		{ // faster everywhere, ratio improved, plus a new benchmark
			Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 3000, AllocsPerOp: 12},
				{Name: "store/read/cached-path", NsPerOp: 100, AllocsPerOp: 0},
				{Name: "store/read-parallel/goroutines=8", NsPerOp: 50, AllocsPerOp: 0},
			},
			ScalingRatio10k: 1.0,
		},
		{ // slower, but within the 25% tolerance
			Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 6200, AllocsPerOp: 21},
				{Name: "store/read/cached-path", NsPerOp: 180, AllocsPerOp: 0},
			},
			ScalingRatio10k: 1.3,
		},
		{ // ratio over 25% relative but under the 1.5 grace line
			Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 5000, AllocsPerOp: 18},
				{Name: "store/read/cached-path", NsPerOp: 150, AllocsPerOp: 0},
			},
			ScalingRatio10k: 1.45,
		},
	} {
		if v := Compare(base, cur, 0.25); len(v) != 0 {
			t.Errorf("Compare flagged an acceptable run: %v", v)
		}
	}
}

func TestCompareRejects(t *testing.T) {
	base := baselineReport()
	cases := []struct {
		name string
		cur  Report
		want string // substring of the expected violation
	}{
		{
			"ns regression",
			Report{Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 7000, AllocsPerOp: 18},
				{Name: "store/read/cached-path", NsPerOp: 150},
			}, ScalingRatio10k: 1.1},
			"ns/op exceeds baseline",
		},
		{
			"alloc regression",
			Report{Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 5000, AllocsPerOp: 40},
				{Name: "store/read/cached-path", NsPerOp: 150},
			}, ScalingRatio10k: 1.1},
			"allocs/op exceeds baseline",
		},
		{
			"bytes regression",
			Report{Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 5000, AllocsPerOp: 18, BytesPerOp: 9000},
				{Name: "store/read/cached-path", NsPerOp: 150},
			}, ScalingRatio10k: 1.1},
			"B/op exceeds baseline",
		},
		{
			"alloc-free path regresses to allocating",
			Report{Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 5000, AllocsPerOp: 18},
				{Name: "store/read/cached-path", NsPerOp: 150, AllocsPerOp: 1},
			}, ScalingRatio10k: 1.1},
			"pinned allocation-free",
		},
		{
			"scaling ratio regression",
			Report{Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 5000, AllocsPerOp: 18},
				{Name: "store/read/cached-path", NsPerOp: 150},
			}, ScalingRatio10k: 2.5},
			"scaling_ratio_10k",
		},
		{
			"coverage shrank",
			Report{Results: []Result{
				{Name: "invoke-export/enforcing/users=100", NsPerOp: 5000, AllocsPerOp: 18},
			}, ScalingRatio10k: 1.1},
			"not measured",
		},
	}
	for _, tc := range cases {
		v := Compare(base, tc.cur, 0.25)
		if len(v) == 0 {
			t.Errorf("%s: Compare accepted a regressed run", tc.name)
			continue
		}
		found := false
		for _, s := range v {
			if strings.Contains(s, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v missing %q", tc.name, v, tc.want)
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	base := baselineReport()
	path := filepath.Join(t.TempDir(), "report.json")
	if err := base.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(base.Results) || got.ScalingRatio10k != base.ScalingRatio10k {
		t.Errorf("round trip mangled report: %+v", got)
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("LoadReport on a missing file succeeded")
	}
}

// TestCompareAgainstCommittedBaseline loads the real committed baseline
// to guarantee the file the CI gate consumes stays parseable.
func TestCommittedBaselineParses(t *testing.T) {
	r, err := LoadReport("../../BENCH_requestpath.json")
	if err != nil {
		t.Fatalf("committed BENCH_requestpath.json unreadable: %v", err)
	}
	if r.Benchmark != "requestpath" || len(r.Results) == 0 {
		t.Errorf("committed baseline malformed: %+v", r)
	}
	if r.ScalingRatio10k <= 0 || r.ScalingRatio10k > 2.0 {
		t.Errorf("committed scaling ratio %.2f outside the O(request) contract (0, 2.0]", r.ScalingRatio10k)
	}
}
