// Package workload generates deterministic synthetic workloads for the
// experiment suite — the stand-in for real Web-scale user data (DESIGN
// substitution S4). All generators take an explicit seed; the same seed
// always yields the same population, so every experiment is exactly
// reproducible.
package workload

import (
	"fmt"
	"math/rand"
)

// Users returns n distinct user names, u0000..u<n-1>.
func Users(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("u%04d", i)
	}
	return out
}

// FriendGraph builds a Watts–Strogatz-style small-world friendship
// graph over n users: a ring lattice with k neighbors per side,
// rewired with probability beta. The result maps each user index to a
// sorted list of distinct friend indexes (directed edges; callers add
// reciprocal edges if they want mutual friendship).
func FriendGraph(n, k int, beta float64, seed int64) [][]int {
	if n <= 0 {
		return nil
	}
	if k >= n/2 {
		k = n/2 - 1
	}
	if k < 1 {
		k = 1
	}
	r := rand.New(rand.NewSource(seed))
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool, 2*k)
	}
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			t := (i + j) % n
			// Rewire with probability beta.
			if r.Float64() < beta {
				for tries := 0; tries < 8; tries++ {
					cand := r.Intn(n)
					if cand != i && !adj[i][cand] {
						t = cand
						break
					}
				}
			}
			if t != i {
				adj[i][t] = true
			}
		}
	}
	out := make([][]int, n)
	for i, set := range adj {
		for f := range set {
			out[i] = append(out[i], f)
		}
		sortInts(out[i])
	}
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Item is one synthetic user datum (a "photo" or "post").
type Item struct {
	Name string
	Data []byte
}

// Items generates count data items for a user with Zipf-distributed
// sizes between minSize and roughly maxSize — a few large objects, many
// small ones, like real photo collections.
func Items(user string, count, minSize, maxSize int, seed int64) []Item {
	r := rand.New(rand.NewSource(seed ^ int64(len(user))*31))
	if minSize < 1 {
		minSize = 1
	}
	if maxSize <= minSize {
		maxSize = minSize + 1
	}
	z := rand.NewZipf(r, 1.3, 1.0, uint64(maxSize-minSize))
	out := make([]Item, count)
	for i := range out {
		size := minSize + int(z.Uint64())
		data := make([]byte, size)
		r.Read(data)
		out[i] = Item{Name: fmt.Sprintf("%s-item-%03d", user, i), Data: data}
	}
	return out
}

// Words returns a deterministic pseudo-text of n words drawn from a
// small vocabulary — blog-post bodies for the recommender workload.
func Words(n int, seed int64) string {
	vocab := []string{
		"jazz", "hiking", "photography", "cooking", "golf", "scifi",
		"travel", "cats", "dogs", "music", "code", "coffee", "tea",
		"painting", "cycling", "sailing", "poetry", "games", "wine",
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, n*6)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, vocab[r.Intn(len(vocab))]...)
	}
	return string(out)
}

// PlantedGraph builds the E5 CodeRank fixture: nModules modules of
// which the first nTrusted form a "reputable core" that the rest import
// heavily, plus sparse random imports elsewhere. Returns edges as
// [from][to] index pairs. A good ranking puts the core on top;
// precision@k against the planted set is the E5 metric.
func PlantedGraph(nModules, nTrusted, importsPer int, seed int64) [][2]int {
	r := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for i := nTrusted; i < nModules; i++ {
		for j := 0; j < importsPer; j++ {
			var to int
			if r.Float64() < 0.8 { // mostly into the trusted core
				to = r.Intn(nTrusted)
			} else {
				to = r.Intn(nModules)
			}
			if to != i {
				edges = append(edges, [2]int{i, to})
			}
		}
	}
	// The core also references itself a little.
	for i := 0; i < nTrusted; i++ {
		to := r.Intn(nTrusted)
		if to != i {
			edges = append(edges, [2]int{i, to})
		}
	}
	return edges
}

// HTMLPage fabricates an HTML document of roughly n bytes with the
// given number of embedded scripts and event handlers — the E10 filter
// corpus.
func HTMLPage(n, scripts, handlers int, seed int64) string {
	r := rand.New(rand.NewSource(seed))
	var sb []byte
	sb = append(sb, "<html><body>"...)
	para := 0
	for len(sb) < n {
		para++
		switch {
		case scripts > 0 && para%7 == 0:
			scripts--
			sb = append(sb, fmt.Sprintf("<script>var x%d=%d;steal()</script>", para, r.Intn(1000))...)
		case handlers > 0 && para%5 == 0:
			handlers--
			sb = append(sb, fmt.Sprintf(`<div onclick="evil(%d)">item</div>`, para)...)
		default:
			sb = append(sb, fmt.Sprintf("<p>paragraph %d %s</p>", para, Words(8, seed+int64(para)))...)
		}
	}
	sb = append(sb, "</body></html>"...)
	return string(sb)
}
