package workload

import (
	"strings"
	"testing"
)

func TestUsersDistinct(t *testing.T) {
	us := Users(100)
	seen := make(map[string]bool)
	for _, u := range us {
		if seen[u] {
			t.Fatalf("duplicate user %s", u)
		}
		seen[u] = true
	}
	if len(us) != 100 {
		t.Errorf("len = %d", len(us))
	}
}

func TestFriendGraphDeterministicAndSane(t *testing.T) {
	a := FriendGraph(50, 4, 0.1, 42)
	b := FriendGraph(50, 4, 0.1, 42)
	if len(a) != 50 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("not deterministic")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("not deterministic")
			}
			if a[i][j] == i {
				t.Fatalf("self-friendship at %d", i)
			}
			if a[i][j] < 0 || a[i][j] >= 50 {
				t.Fatalf("friend index out of range: %d", a[i][j])
			}
		}
		// Sorted, distinct.
		for j := 1; j < len(a[i]); j++ {
			if a[i][j] <= a[i][j-1] {
				t.Fatalf("unsorted or duplicate friends for %d: %v", i, a[i])
			}
		}
		if len(a[i]) == 0 {
			t.Errorf("user %d has no friends", i)
		}
	}
	// Different seed differs somewhere.
	c := FriendGraph(50, 4, 0.5, 43)
	same := true
	for i := range a {
		if len(a[i]) != len(c[i]) {
			same = false
			break
		}
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestFriendGraphEdgeCases(t *testing.T) {
	if FriendGraph(0, 4, 0.1, 1) != nil {
		t.Error("n=0 should return nil")
	}
	g := FriendGraph(3, 10, 0, 1) // k clamped
	if len(g) != 3 {
		t.Errorf("len = %d", len(g))
	}
}

func TestItemsSizesAndDeterminism(t *testing.T) {
	a := Items("bob", 50, 10, 10000, 7)
	b := Items("bob", 50, 10, 10000, 7)
	if len(a) != 50 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if len(a[i].Data) < 10 || len(a[i].Data) > 10010 {
			t.Errorf("item %d size %d out of range", i, len(a[i].Data))
		}
		if a[i].Name != b[i].Name || string(a[i].Data) != string(b[i].Data) {
			t.Fatal("not deterministic")
		}
	}
	// Zipf shape: more small than large.
	small, large := 0, 0
	for _, it := range a {
		if len(it.Data) < 100 {
			small++
		}
		if len(it.Data) > 5000 {
			large++
		}
	}
	if small <= large {
		t.Errorf("size distribution not skewed: %d small vs %d large", small, large)
	}
}

func TestWords(t *testing.T) {
	w := Words(10, 3)
	if len(strings.Fields(w)) != 10 {
		t.Errorf("Words(10) = %q", w)
	}
	if Words(10, 3) != w {
		t.Error("not deterministic")
	}
}

func TestPlantedGraph(t *testing.T) {
	edges := PlantedGraph(100, 10, 3, 5)
	if len(edges) == 0 {
		t.Fatal("no edges")
	}
	intoCore := 0
	for _, e := range edges {
		if e[0] == e[1] {
			t.Fatalf("self edge %v", e)
		}
		if e[0] < 0 || e[0] >= 100 || e[1] < 0 || e[1] >= 100 {
			t.Fatalf("edge out of range %v", e)
		}
		if e[1] < 10 {
			intoCore++
		}
	}
	if float64(intoCore)/float64(len(edges)) < 0.5 {
		t.Errorf("only %d/%d edges into planted core", intoCore, len(edges))
	}
}

func TestHTMLPage(t *testing.T) {
	page := HTMLPage(5000, 3, 4, 9)
	if len(page) < 5000 {
		t.Errorf("page too small: %d", len(page))
	}
	if got := strings.Count(page, "<script>"); got != 3 {
		t.Errorf("scripts = %d, want 3", got)
	}
	if got := strings.Count(page, "onclick"); got != 4 {
		t.Errorf("handlers = %d, want 4", got)
	}
	if HTMLPage(5000, 3, 4, 9) != page {
		t.Error("not deterministic")
	}
}
