package workload

// Capacity-harness workload generation: a Zipf popularity sampler and
// a scenario mixer that together turn one integer seed into one exact
// request trace. The split matters for the harness's reproducibility
// contract (DESIGN substitution S4, extended to load testing): WHAT is
// requested is decided here, deterministically, before any connection
// is dialed; WHEN it is sent is the open-loop scheduler's business
// (internal/loadgen). Two runs with the same TraceConfig therefore
// replay byte-identical request sequences no matter how the server or
// the network behaved — the precondition for comparing latency
// distributions across builds at all.
//
// Popularity is Zipf-distributed over both users and per-user content,
// the power-law structure Web measurement keeps finding (PAPERS.md,
// "The diameter of the world wide web"): a few hot profiles absorb
// most reads while the long tail stays cold, which is exactly the
// shape that makes the gateway's caches and the store's shards earn
// (or fail to earn) their keep under load.

import (
	"fmt"
	"math/rand"
	"sort"
)

// Zipf draws ranks in [0, n) with P(k) proportional to 1/(k+1)^s, most
// popular rank first. It wraps math/rand's rejection-inversion sampler
// with an explicit seed so a given (seed, s, n) always yields the same
// sequence. Not safe for concurrent use.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a deterministic sampler over [0, n) with skew s > 1
// (s near 1 = heavy tail; larger = steeper head).
func NewZipf(seed int64, s float64, n int) *Zipf {
	if n < 1 {
		n = 1
	}
	r := rand.New(rand.NewSource(seed))
	return &Zipf{z: rand.NewZipf(r, s, 1.0, uint64(n-1))}
}

// Next returns the next sampled rank.
func (z *Zipf) Next() int { return int(z.z.Uint64()) }

// Scenario names understood by the capacity harness. The mixer treats
// them as opaque strings; internal/loadgen maps each to a concrete
// HTTP request.
const (
	ScenarioLogin      = "login"       // POST /login for the viewer (session churn, KDF-bound)
	ScenarioSocialRead = "social-read" // GET /app/social/profile?owner=<zipf user>
	ScenarioWVMRead    = "wvm-read"    // GET /app/social-wvm/profile?owner=<zipf user> (WVM twin of social-read)
	ScenarioPhotoWrite = "photo-write" // POST /app/photoshare/upload to the viewer's own album
	ScenarioTableQuery = "table-query" // GET /app/blog/?owner=<zipf user> (labeled tuple-store select)
	ScenarioAuditPull  = "audit-pull"  // GET /audit?limit=N (the viewer's slice of the trail)

	// ScenarioMarketSearch is the marketplace on the request path:
	// GET /registry/search?q=<item-keyed query> served rank-ordered off
	// the registry's catalogue snapshot and the cached CodeRank view.
	ScenarioMarketSearch = "market-search"
)

// MixEntry weights one scenario within a mix. Weights are relative;
// they need not sum to 1.
type MixEntry struct {
	Scenario string
	Weight   float64
}

// DefaultMix is the harness's stock traffic blend: read-heavy social
// traffic with a write minority and operational pulls — roughly the §2
// shared-platform shape (browsing dominates, uploads trickle, a few
// sessions churn, users occasionally inspect their trail).
func DefaultMix() []MixEntry {
	return []MixEntry{
		{ScenarioSocialRead, 0.45},
		{ScenarioWVMRead, 0.05},
		{ScenarioTableQuery, 0.25},
		{ScenarioPhotoWrite, 0.10},
		{ScenarioLogin, 0.05},
		{ScenarioAuditPull, 0.05},
		{ScenarioMarketSearch, 0.05},
	}
}

// Op is one generated request: Scenario decides the HTTP shape, Viewer
// is the user index issuing it (their session cookie), Owner the user
// index whose data is addressed, and Item a per-user content index
// (photo name, post number). Writes always target the viewer's own
// data — the fixture grants apps write access only there.
type Op struct {
	Scenario string
	Viewer   int
	Owner    int
	Item     int
}

// TraceConfig parameterizes a trace. The zero value is not usable;
// fill Users and leave the rest to the defaults applied by Trace.
type TraceConfig struct {
	Seed         int64
	Users        int        // seeded population size (user i = Users()[i])
	ItemsPerUser int        // content namespace per user (default 16)
	ZipfS        float64    // popularity skew, > 1 (default 1.2)
	Mix          []MixEntry // default DefaultMix()
}

// Trace generates n ops. Everything — scenario choice, viewer, owner,
// item — is drawn from one seeded stream, so the whole trace is a pure
// function of (cfg, n).
func Trace(cfg TraceConfig, n int) []Op {
	if cfg.Users < 1 {
		cfg.Users = 1
	}
	if cfg.ItemsPerUser < 1 {
		cfg.ItemsPerUser = 16
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = DefaultMix()
	}
	var total float64
	for _, m := range mix {
		if m.Weight < 0 {
			panic(fmt.Sprintf("workload: negative weight for %q", m.Scenario))
		}
		total += m.Weight
	}
	if total <= 0 {
		panic("workload: mix has no positive weight")
	}

	// All randomness flows through r: the scenario picker and all three
	// Zipf samplers share the one generator, so inserting or removing a
	// draw anywhere changes the trace — there is exactly one stream to
	// be deterministic about.
	r := rand.New(rand.NewSource(cfg.Seed))
	viewers := rand.NewZipf(r, cfg.ZipfS, 1.0, uint64(cfg.Users-1))
	owners := rand.NewZipf(r, cfg.ZipfS, 1.0, uint64(cfg.Users-1))
	items := rand.NewZipf(r, cfg.ZipfS, 1.0, uint64(cfg.ItemsPerUser-1))

	ops := make([]Op, n)
	for i := range ops {
		pick := r.Float64() * total
		var op Op
		for j, m := range mix {
			if pick -= m.Weight; pick < 0 || j == len(mix)-1 {
				op.Scenario = m.Scenario
				break
			}
		}
		op.Viewer = int(viewers.Uint64())
		switch op.Scenario {
		case ScenarioSocialRead, ScenarioWVMRead, ScenarioTableQuery:
			op.Owner = int(owners.Uint64())
		default:
			// Writes, logins, and audit pulls address the viewer's own
			// account; burn the owner draw anyway so every op consumes
			// the same number of stream values and the trace stays
			// stable when only weights change.
			owners.Uint64()
			op.Owner = op.Viewer
		}
		op.Item = int(items.Uint64())
		ops[i] = op
	}
	return ops
}

// RankFrequencies returns the draw counts of n samples from sampler,
// sorted descending — the empirical rank-frequency curve the shape
// tests hold against the Zipf ideal.
func RankFrequencies(samples []int, n int) []int {
	counts := make([]int, n)
	for _, s := range samples {
		if s >= 0 && s < n {
			counts[s]++
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	return counts
}
