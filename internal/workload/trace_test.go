package workload

import (
	"math"
	"reflect"
	"testing"
)

// Same seed, same config => byte-identical trace. This is the
// capacity harness's reproducibility contract: a latency comparison
// between two builds is only meaningful if both replayed the same
// requests.
func TestTraceDeterministic(t *testing.T) {
	cfg := TraceConfig{Seed: 42, Users: 100, ItemsPerUser: 16}
	a := Trace(cfg, 10_000)
	b := Trace(cfg, 10_000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c := Trace(TraceConfig{Seed: 43, Users: 100, ItemsPerUser: 16}, 10_000)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces (seed ignored?)")
	}
}

// A shorter trace must be a prefix of a longer one with the same
// config: generation draws per-op, never ahead, so warm-up ops in a
// long run match a short run exactly.
func TestTracePrefixStable(t *testing.T) {
	cfg := TraceConfig{Seed: 7, Users: 64}
	long := Trace(cfg, 5_000)
	short := Trace(cfg, 1_000)
	if !reflect.DeepEqual(long[:1_000], short) {
		t.Fatal("short trace is not a prefix of the long trace")
	}
}

// Mix-ratio accuracy over 10k draws: each scenario's empirical share
// must sit within 2 points (absolute) of its configured weight. For
// the smallest weight (0.05) the binomial standard deviation at n=10k
// is ~0.2 points, so 2 points is ~9 sigma — a real mixer bug, not
// noise, is what fails this.
func TestTraceMixRatios(t *testing.T) {
	const n = 10_000
	mix := DefaultMix()
	ops := Trace(TraceConfig{Seed: 1, Users: 200, Mix: mix}, n)
	counts := map[string]int{}
	for _, op := range ops {
		counts[op.Scenario]++
	}
	var total float64
	for _, m := range mix {
		total += m.Weight
	}
	for _, m := range mix {
		want := m.Weight / total
		got := float64(counts[m.Scenario]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%s: share %.3f, want %.3f ± 0.02", m.Scenario, got, want)
		}
	}
}

// Empirical rank-frequency shape: draws must be head-heavy like a
// power law — a strictly thinning curve with the configured skew, not
// uniform noise. Tolerances are loose (this pins the SHAPE, not the
// constant): the most popular rank must beat rank 10 by >2x, the top
// decile must absorb 35–85% of draws, and the curve must be
// monotone non-increasing by construction of RankFrequencies.
func TestZipfRankFrequencyShape(t *testing.T) {
	const users, n = 100, 50_000
	z := NewZipf(99, 1.2, users)
	samples := make([]int, n)
	for i := range samples {
		samples[i] = z.Next()
		if samples[i] < 0 || samples[i] >= users {
			t.Fatalf("sample %d out of range [0,%d)", samples[i], users)
		}
	}
	freqs := RankFrequencies(samples, users)
	if freqs[0] < 2*freqs[9] {
		t.Errorf("head not heavy enough: rank0=%d rank9=%d", freqs[0], freqs[9])
	}
	top10 := 0
	for _, f := range freqs[:10] {
		top10 += f
	}
	share := float64(top10) / n
	if share < 0.35 || share > 0.85 {
		t.Errorf("top-decile share %.2f outside [0.35, 0.85]", share)
	}
	// Deterministic too: the sampler is the trace's substrate.
	z2 := NewZipf(99, 1.2, users)
	for i := 0; i < 1_000; i++ {
		if got, want := z2.Next(), samples[i]; got != want {
			t.Fatalf("sampler not deterministic at draw %d: %d != %d", i, got, want)
		}
	}
}

// Writes, logins, and audit pulls must target the viewer's own
// account (the fixture only grants write access there), and reads must
// range over the whole population.
func TestTraceOwnership(t *testing.T) {
	ops := Trace(TraceConfig{Seed: 3, Users: 50}, 10_000)
	crossRead := false
	for _, op := range ops {
		switch op.Scenario {
		case ScenarioPhotoWrite, ScenarioLogin, ScenarioAuditPull:
			if op.Owner != op.Viewer {
				t.Fatalf("%s op addresses owner %d from viewer %d", op.Scenario, op.Owner, op.Viewer)
			}
		default:
			if op.Owner != op.Viewer {
				crossRead = true
			}
		}
	}
	if !crossRead {
		t.Fatal("no cross-user reads in 10k ops: owner sampling is broken")
	}
}
