package federation

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"w5/internal/core"
	"w5/internal/difc"
	"w5/internal/store"
)

// pair builds two providers A and B with user bob on both, B pulling
// from A over real HTTP.
type pair struct {
	A, B   *core.Provider
	srvA   *httptest.Server
	linkBA *Link // B pulls from A
}

func newPair(t *testing.T, authorize bool) *pair {
	t.Helper()
	A := core.NewProvider(core.Config{Name: "providerA", Enforce: true})
	B := core.NewProvider(core.Config{Name: "providerB", Enforce: true})
	for _, p := range []*core.Provider{A, B} {
		if _, err := p.CreateUser("bob", "pw"); err != nil {
			t.Fatal(err)
		}
	}
	if authorize {
		// Bob trusts the peering on the EXPORTING side.
		if err := AuthorizePeer(A, "bob", "providerB"); err != nil {
			t.Fatal(err)
		}
	}
	muxA := http.NewServeMux()
	MountExport(A, muxA, map[string]string{"providerB": "s3cret"})
	srvA := httptest.NewServer(muxA)
	t.Cleanup(srvA.Close)

	return &pair{
		A: A, B: B, srvA: srvA,
		linkBA: &Link{
			Local: B, PeerName: "providerA", BaseURL: srvA.URL,
			Secret: "s3cret", User: "bob",
		},
	}
}

func writeBob(t *testing.T, p *core.Provider, rel, content string, private bool) {
	t.Helper()
	u, _ := p.GetUser("bob")
	label := difc.LabelPair{Integrity: difc.NewLabel(u.WriteTag)}
	if private {
		label.Secrecy = difc.NewLabel(u.SecrecyTag)
	}
	cred := p.UserCred("bob")
	if i := strings.LastIndex(rel, "/"); i > 0 {
		if err := p.FS.MkdirAll(cred, "/home/bob"+rel[:i], label); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.FS.Write(cred, "/home/bob"+rel, []byte(content), label); err != nil {
		t.Fatal(err)
	}
}

func readBob(t *testing.T, p *core.Provider, rel string) (string, difc.LabelPair, error) {
	t.Helper()
	data, label, err := p.FS.Read(p.UserCred("bob"), "/home/bob"+rel)
	return string(data), label, err
}

func TestSyncPropagatesPrivateData(t *testing.T) {
	pr := newPair(t, true)
	writeBob(t, pr.A, "/private/diary", "day one", true)

	n, err := pr.linkBA.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("synced %d files, want 1", n)
	}
	got, label, err := readBob(t, pr.B, "/private/diary")
	if err != nil || got != "day one" {
		t.Fatalf("B read = %q, %v", got, err)
	}
	// Re-labeled with B's OWN tags: still private, still protected.
	uB, _ := pr.B.GetUser("bob")
	if !label.Secrecy.Has(uB.SecrecyTag) {
		t.Error("imported file not private under B's tag")
	}
	if !label.Integrity.Has(uB.WriteTag) {
		t.Error("imported file not write-protected under B's tag")
	}
	// And B's enforcement applies: a stranger cred cannot read it.
	if _, _, err := pr.B.FS.Read(store.Cred{Principal: "anon"}, "/home/bob/private/diary"); !errors.Is(err, store.ErrDenied) {
		t.Errorf("imported secret readable by anon on B: %v", err)
	}
}

func TestSyncIdempotentAndIncremental(t *testing.T) {
	pr := newPair(t, true)
	writeBob(t, pr.A, "/private/diary", "v1", true)
	if n, _ := pr.linkBA.SyncOnce(); n != 1 {
		t.Fatal("first sync")
	}
	if n, _ := pr.linkBA.SyncOnce(); n != 0 {
		t.Errorf("re-sync wrote %d files, want 0", n)
	}
	// Update propagates ("whenever the user updated his data on one
	// platform, the changes would propagate to the other", §3.3).
	writeBob(t, pr.A, "/private/diary", "v2", true)
	if n, _ := pr.linkBA.SyncOnce(); n != 1 {
		t.Error("update did not propagate")
	}
	got, _, _ := readBob(t, pr.B, "/private/diary")
	if got != "v2" {
		t.Errorf("B has %q, want v2", got)
	}
}

func TestSyncWithoutAuthorizationShipsOnlyPublic(t *testing.T) {
	pr := newPair(t, false) // bob never authorized the peering
	writeBob(t, pr.A, "/private/diary", "secret stuff", true)
	writeBob(t, pr.A, "/public/bio", "hi i am bob", false)

	n, err := pr.linkBA.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("synced %d files, want only the public one", n)
	}
	if _, _, err := readBob(t, pr.B, "/private/diary"); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("private file crossed without authorization: %v", err)
	}
	got, _, _ := readBob(t, pr.B, "/public/bio")
	if got != "hi i am bob" {
		t.Errorf("public bio = %q", got)
	}
}

func TestPeerSecretRequired(t *testing.T) {
	pr := newPair(t, true)
	writeBob(t, pr.A, "/private/diary", "x", true)
	bad := &Link{Local: pr.B, PeerName: "providerA", BaseURL: pr.srvA.URL,
		Secret: "wrong", User: "bob"}
	if _, err := bad.SyncOnce(); err == nil {
		t.Fatal("sync with wrong secret succeeded")
	}
	unknownPeer := &Link{Local: pr.B, PeerName: "providerA", BaseURL: pr.srvA.URL,
		Secret: "s3cret", User: "bob"}
	unknownPeer.Local = core.NewProvider(core.Config{Name: "mallory", Enforce: true})
	unknownPeer.Local.CreateUser("bob", "pw")
	if _, err := unknownPeer.SyncOnce(); err == nil {
		t.Fatal("unregistered peer name accepted")
	}
}

func TestConflictResolvedDeterministically(t *testing.T) {
	pr := newPair(t, true)
	// Both sides write version 1 of the same file independently.
	writeBob(t, pr.A, "/public/bio", "from A", false)
	writeBob(t, pr.B, "/public/bio", "from B", false)

	_, err := pr.linkBA.SyncOnce()
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("expected ErrConflict, got %v", err)
	}
	got, _, _ := readBob(t, pr.B, "/public/bio")
	// Tie at version 1: larger provider name wins; "providerB" > "providerA",
	// so B keeps its own copy.
	if got != "from B" {
		t.Errorf("conflict winner = %q, want \"from B\"", got)
	}
	// Higher version beats name: A writes twice more (v2, v3).
	writeBob(t, pr.A, "/public/bio", "A v2", false)
	writeBob(t, pr.A, "/public/bio", "A v3", false)
	pr.linkBA.SyncOnce()
	got, _, _ = readBob(t, pr.B, "/public/bio")
	if got != "A v3" {
		t.Errorf("after A advanced: %q, want \"A v3\"", got)
	}
}

func TestPathTraversalFromPeerIgnored(t *testing.T) {
	// A malicious peer response must not write outside bob's home.
	pr := newPair(t, true)
	mux := http.NewServeMux()
	mux.HandleFunc("/fed/export", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"provider":"evil","user":"bob","files":[
			{"path":"/../../etc/passwd","data":"cHduZWQ=","version":9,"private":false,"protected":false},
			{"path":"relative","data":"cHduZWQ=","version":9,"private":false,"protected":false}
		]}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	link := &Link{Local: pr.B, PeerName: "evil", BaseURL: srv.URL, Secret: "x", User: "bob"}
	n, err := link.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("malicious records applied: %d", n)
	}
}

func TestWrongUserResponseRejected(t *testing.T) {
	pr := newPair(t, true)
	mux := http.NewServeMux()
	mux.HandleFunc("/fed/export", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"provider":"evil","user":"mallory","files":[]}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	link := &Link{Local: pr.B, PeerName: "evil", BaseURL: srv.URL, Secret: "x", User: "bob"}
	if _, err := link.SyncOnce(); err == nil || !strings.Contains(err.Error(), "mallory") {
		t.Errorf("wrong-user response accepted: %v", err)
	}
}

func TestBidirectionalConvergence(t *testing.T) {
	// Full mesh: A<->B with links both ways; distinct files written on
	// each side must appear on both after one round each.
	pr := newPair(t, true)
	if err := AuthorizePeer(pr.B, "bob", "providerA"); err != nil {
		t.Fatal(err)
	}
	muxB := http.NewServeMux()
	MountExport(pr.B, muxB, map[string]string{"providerA": "s3cret2"})
	srvB := httptest.NewServer(muxB)
	defer srvB.Close()
	linkAB := &Link{Local: pr.A, PeerName: "providerB", BaseURL: srvB.URL,
		Secret: "s3cret2", User: "bob"}

	writeBob(t, pr.A, "/private/fromA", "alpha", true)
	writeBob(t, pr.B, "/private/fromB", "beta", true)

	if _, err := pr.linkBA.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if _, err := linkAB.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := readBob(t, pr.B, "/private/fromA"); got != "alpha" {
		t.Errorf("B missing fromA: %q", got)
	}
	if got, _, _ := readBob(t, pr.A, "/private/fromB"); got != "beta" {
		t.Errorf("A missing fromB: %q", got)
	}
}
