package federation

// Resilient-transport tests: every failure mode a peer can produce —
// hang, refuse, 5xx, oversized body, corrupt JSON — is classified,
// transient ones are retried, and the circuit breaker turns a dead
// peer into a constant-time local refusal.

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"w5/internal/faultnet"
)

// fastOpts keeps retry tests quick without changing semantics.
var fastOpts = Options{Timeout: 2 * time.Second, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}

// faultyLink wires the standard A→B pair through a faultnet plan.
func faultyLink(t *testing.T, plan *faultnet.Plan) (*pair, *Link) {
	t.Helper()
	pr := newPair(t, true)
	l := pr.linkBA
	l.Client = &http.Client{Transport: &faultnet.Transport{Plan: plan}}
	l.Options = fastOpts
	return pr, l
}

func TestRetryRecoversFromTransientFaults(t *testing.T) {
	// Attempt 1 dies at the connection, attempt 2 gets a 502, attempt 3
	// succeeds — all within one Sync, thanks to the retry budget.
	plan := &faultnet.Plan{Script: []faultnet.Fault{faultnet.Drop, faultnet.Status}}
	pr, l := faultyLink(t, plan)
	writeBob(t, pr.A, "/private/diary", "survived", true)

	n, err := l.SyncOnce()
	if err != nil || n != 1 {
		t.Fatalf("sync through transient faults: n=%d err=%v", n, err)
	}
	if got, _, _ := readBob(t, pr.B, "/private/diary"); got != "survived" {
		t.Fatalf("B read %q", got)
	}
	if reqs, _ := plan.Stats(); reqs != 3 {
		t.Errorf("took %d attempts, want 3 (drop, 502, ok)", reqs)
	}
}

func TestPermanentFailureIsNotRetried(t *testing.T) {
	// A 403 means OUR credentials are wrong; retrying it verbatim is
	// noise the remote has to absorb. Exactly one request goes out.
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad peer credentials", http.StatusForbidden)
	}))
	defer srv.Close()
	pr := newPair(t, true)
	l := &Link{Local: pr.B, PeerName: "providerA", BaseURL: srv.URL,
		Secret: "wrong", User: "bob", Options: fastOpts}
	_, err := l.Sync()
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Class != ClassStatus || pe.Status != 403 {
		t.Fatalf("err = %v, want ClassStatus 403", err)
	}
	if pe.Transient() {
		t.Error("4xx classified transient")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("permanent failure retried: %d requests", got)
	}
}

func TestTimeoutIsClassified(t *testing.T) {
	plan := &faultnet.Plan{Script: []faultnet.Fault{faultnet.Delay}, Latency: 5 * time.Second}
	pr, l := faultyLink(t, plan)
	l.Options = Options{Timeout: 50 * time.Millisecond, Retries: -1}
	writeBob(t, pr.A, "/public/x", "x", false)

	start := time.Now()
	_, err := l.Sync()
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Class != ClassTimeout {
		t.Fatalf("err = %v, want ClassTimeout", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("deadline ignored: sync took %v", d)
	}
}

func TestCorruptBodyIsClassified(t *testing.T) {
	for _, f := range []faultnet.Fault{faultnet.Truncate, faultnet.Corrupt} {
		plan := &faultnet.Plan{Script: []faultnet.Fault{f}}
		pr, l := faultyLink(t, plan)
		l.Options.Retries = -1
		writeBob(t, pr.A, "/public/x", "x", false)
		_, err := l.Sync()
		var pe *PeerError
		if !errors.As(err, &pe) || pe.Class != ClassCorrupt {
			t.Fatalf("%v fault: err = %v, want ClassCorrupt", f, err)
		}
	}
}

func TestResponseSizeCapEnforced(t *testing.T) {
	pr := newPair(t, true)
	writeBob(t, pr.A, "/public/big", string(make([]byte, 64<<10)), false)
	l := pr.linkBA
	l.Options = Options{MaxBody: 1024, Retries: -1}
	_, err := l.Sync()
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Class != ClassCorrupt {
		t.Fatalf("oversized body: err = %v, want ClassCorrupt", err)
	}
}

func TestBreakerOpensThenRecovers(t *testing.T) {
	// Two failed syncs open the breaker; while open, a sync costs zero
	// network requests; after the cooldown one probe goes through and
	// closes it again.
	plan := &faultnet.Plan{Script: []faultnet.Fault{faultnet.Drop, faultnet.Drop}}
	pr, l := faultyLink(t, plan)
	l.Options.Retries = -1
	l.Breaker = &Breaker{Threshold: 2, Cooldown: 50 * time.Millisecond}
	writeBob(t, pr.A, "/private/diary", "eventually", true)

	for i := 0; i < 2; i++ {
		if _, err := l.Sync(); err == nil {
			t.Fatalf("sync %d succeeded through a dropped connection", i)
		}
	}
	if st := l.Breaker.State(); st != "open" {
		t.Fatalf("breaker %s after %d failures, want open", st, 2)
	}
	reqsBefore, _ := plan.Stats()
	_, err := l.Sync()
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Class != ClassBreaker {
		t.Fatalf("open breaker: err = %v, want ClassBreaker", err)
	}
	if reqs, _ := plan.Stats(); reqs != reqsBefore {
		t.Error("open breaker still touched the network")
	}

	time.Sleep(60 * time.Millisecond)
	if st := l.Breaker.State(); st != "half-open" {
		t.Fatalf("breaker %s after cooldown, want half-open", st)
	}
	// The probe goes through (plan exhausted → healthy) and closes it.
	n, err := l.SyncOnce()
	if err != nil || n != 1 {
		t.Fatalf("probe sync: n=%d err=%v", n, err)
	}
	if st := l.Breaker.State(); st != "closed" {
		t.Fatalf("breaker %s after successful probe, want closed", st)
	}
	if got, _, _ := readBob(t, pr.B, "/private/diary"); got != "eventually" {
		t.Fatalf("B read %q after recovery", got)
	}
}

func TestFailedProbeReopensBreaker(t *testing.T) {
	pr, l := faultyLink(t, &faultnet.Plan{Prob: 1, ProbFault: faultnet.Drop, Seed: 1})
	l.Options.Retries = -1
	l.Breaker = &Breaker{Threshold: 1, Cooldown: 20 * time.Millisecond}
	writeBob(t, pr.A, "/public/x", "x", false)

	l.Sync() // opens (threshold 1)
	if st := l.Breaker.State(); st != "open" {
		t.Fatalf("breaker %s, want open", st)
	}
	time.Sleep(30 * time.Millisecond)
	l.Sync() // the probe also fails
	if st := l.Breaker.State(); st != "open" {
		t.Fatalf("breaker %s after failed probe, want open again", st)
	}
}
