package federation

// Export-endpoint contract tests: the uniform failure path (an
// attacker cannot distinguish unknown-peer from wrong-secret), the
// empty document for unknown users, the per-segment path rules, the
// incremental horizon protocol, and the declassifier veto.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"w5/internal/audit"
	"w5/internal/declass"
)

// rawExport fetches /fed/export directly, bypassing Link.
func rawExport(t *testing.T, base, peer, secret, user string, since uint64) (*http.Response, []byte) {
	t.Helper()
	url := fmt.Sprintf("%s/fed/export?peer=%s&user=%s", base, peer, user)
	if since > 0 {
		url += fmt.Sprintf("&since=%d", since)
	}
	req, _ := http.NewRequest("GET", url, nil)
	req.Header.Set(PeerHeader, secret)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

func TestUnknownPeerAndWrongSecretIndistinguishable(t *testing.T) {
	pr := newPair(t, true)
	// Unknown peer name, and a registered peer with the wrong secret:
	// both must fail with exactly the same status and body, so a prober
	// cannot map which peer names are configured.
	r1, b1 := rawExport(t, pr.srvA.URL, "nosuchpeer", "whatever", "bob", 0)
	r2, b2 := rawExport(t, pr.srvA.URL, "providerB", "wrong", "bob", 0)
	if r1.StatusCode != http.StatusForbidden || r2.StatusCode != http.StatusForbidden {
		t.Fatalf("statuses %d, %d; want 403, 403", r1.StatusCode, r2.StatusCode)
	}
	if string(b1) != string(b2) {
		t.Errorf("failure bodies differ: %q vs %q", b1, b2)
	}
}

func TestUnknownUserYieldsEmptyDoc(t *testing.T) {
	pr := newPair(t, true)
	writeBob(t, pr.A, "/public/bio", "hi", false)
	resp, body := rawExport(t, pr.srvA.URL, "providerB", "s3cret", "mallory", 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unknown user: status %d, want 200 with empty doc", resp.StatusCode)
	}
	var doc ExportDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Files) != 0 || doc.User != "mallory" {
		t.Errorf("unknown user leaked data: %+v", doc)
	}
}

func TestIncrementalExportHonorsHorizon(t *testing.T) {
	pr := newPair(t, true)
	writeBob(t, pr.A, "/public/one", "1", false)
	writeBob(t, pr.A, "/public/two", "2", false)

	_, body := rawExport(t, pr.srvA.URL, "providerB", "s3cret", "bob", 0)
	var full ExportDoc
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if len(full.Files) != 2 || full.Horizon == 0 {
		t.Fatalf("full export: %d files, horizon %d", len(full.Files), full.Horizon)
	}
	// Nothing changed: a pull from the horizon is empty — the
	// steady-state O(changed files) contract.
	_, body = rawExport(t, pr.srvA.URL, "providerB", "s3cret", "bob", full.Horizon)
	var inc ExportDoc
	json.Unmarshal(body, &inc)
	if len(inc.Files) != 0 {
		t.Fatalf("steady-state pull returned %d files, want 0", len(inc.Files))
	}
	// One update: the next pull carries exactly that file.
	writeBob(t, pr.A, "/public/two", "2b", false)
	_, body = rawExport(t, pr.srvA.URL, "providerB", "s3cret", "bob", full.Horizon)
	json.Unmarshal(body, &inc)
	if len(inc.Files) != 1 || inc.Files[0].Path != "/public/two" {
		t.Fatalf("incremental pull = %+v, want only /public/two", inc.Files)
	}
}

// pathGate allows export only under one subtree — the test double for
// a user policy that shares some private data but not all of it.
type pathGate struct{ prefix string }

func (pathGate) Name() string { return "path-gate" }
func (g pathGate) Decide(req declass.Request, _ declass.Env) declass.Decision {
	if strings.HasPrefix(req.Path, g.prefix) {
		return declass.Allow("inside the shared subtree")
	}
	return declass.Deny("outside the shared subtree")
}

func TestDeclassifierDeniedFileStaysHome(t *testing.T) {
	pr := newPair(t, false)
	if err := pr.A.AuthorizeDeclassifier("bob", pathGate{prefix: "/shared/"}); err != nil {
		t.Fatal(err)
	}
	writeBob(t, pr.A, "/shared/album", "vacation pics", true)
	writeBob(t, pr.A, "/private/diary", "do not export", true)

	denials := pr.A.Log.CountKind(audit.KindExportDenied)
	_, body := rawExport(t, pr.srvA.URL, "providerB", "s3cret", "bob", 0)
	var doc ExportDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	// The denied file is absent from the document entirely — not
	// present-but-empty, absent.
	for _, f := range doc.Files {
		if f.Path == "/private/diary" {
			t.Fatal("denied file crossed the perimeter")
		}
	}
	if len(doc.Files) != 1 || doc.Files[0].Path != "/shared/album" {
		t.Fatalf("export = %+v, want only /shared/album", doc.Files)
	}
	// The sibling still flows end to end through a real sync.
	if n, err := pr.linkBA.SyncOnce(); err != nil || n != 1 {
		t.Fatalf("sync: n=%d err=%v", n, err)
	}
	if got, _, err := readBob(t, pr.B, "/shared/album"); err != nil || got != "vacation pics" {
		t.Fatalf("B read shared album: %q %v", got, err)
	}
	// And the denial was audited.
	if after := pr.A.Log.CountKind(audit.KindExportDenied); after <= denials {
		t.Errorf("export denial not audited: %d -> %d", denials, after)
	}
}

func TestPathValidationIsPerSegment(t *testing.T) {
	cases := map[string]bool{
		"/notes..txt":    true, // dots inside a name are legal
		"/a/b..c/d":      true,
		"/../etc/passwd": false,
		"/a/../../etc":   false,
		"/./x":           false,
		"/a//b":          false,
		"relative":       false,
		"/":              false,
		"/trailing/":     false,
		"/.hidden/ok":    true, // dotfiles are names, not traversal
	}
	for p, want := range cases {
		if got := validRelPath(p); got != want {
			t.Errorf("validRelPath(%q) = %v, want %v", p, got, want)
		}
	}
}

func TestDottedFilenameSyncs(t *testing.T) {
	// The old substring check ("..") would silently drop this file.
	pr := newPair(t, true)
	writeBob(t, pr.A, "/docs/report..final.txt", "v1", true)
	if n, err := pr.linkBA.SyncOnce(); err != nil || n != 1 {
		t.Fatalf("sync: n=%d err=%v", n, err)
	}
	if got, _, err := readBob(t, pr.B, "/docs/report..final.txt"); err != nil || got != "v1" {
		t.Fatalf("dotted filename did not sync: %q %v", got, err)
	}
}
