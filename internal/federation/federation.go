// Package federation implements multi-provider W5 (§3.3): "create
// import/export declassifiers that synchronize user data between two
// W5 providers. If an end-user deemed such applications trustworthy, it
// would give its privileges to data transfer applications on both
// platforms."
//
// Mechanics:
//
//   - A provider exposes an authenticated /fed/export endpoint
//     (MountExport). Peers present a shared secret; per-user data is
//     released only after the user's OWN declassifiers approve an
//     export to the pseudo-viewer "peer:<name>" — the user authorizes
//     federation exactly like any other declassification, typically
//     with declass.Group{Members: []string{"peer:B"}}.
//   - Labels cannot cross providers (tags are provider-local), so the
//     wire format carries the *meaning* of the label — private? write-
//     protected? — and the importing side re-labels with its own tags
//     for the same user. Policy travels with data in semantic form.
//   - A Link pulls from the remote, applying last-writer-wins by
//     version number with the provider name as the deterministic tie
//     breaker. Sync is pull-based and idempotent; running it twice is
//     harmless. Experiment E6 measures propagation and convergence.
//
// Federation is the one subsystem whose failure domain is somebody
// else's machine, so the pull path is built to degrade instead of
// stall: every peer call has a deadline and a size cap, failures are
// classified and transient ones retried under jittered backoff
// (client.go), a per-peer circuit breaker makes a dead peer cost one
// atomic load instead of a timeout (breaker.go), the applied-version
// cursor is durable across restarts (state.go), and a supervised
// daemon drives the loops and exposes per-peer health (syncer.go).
// See README.md in this package for the full design note.
package federation

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"w5/internal/audit"
	"w5/internal/core"
	"w5/internal/declass"
	"w5/internal/difc"
	"w5/internal/store"
)

// PeerHeader carries the peering secret.
const PeerHeader = "X-W5-Peer-Secret"

// FileRecord is the wire form of one synchronized file. Path is
// relative to the owner's home directory.
type FileRecord struct {
	Path      string `json:"path"`
	Data      []byte `json:"data"`
	Version   uint64 `json:"version"`
	Origin    string `json:"origin"`    // provider that produced this version
	Private   bool   `json:"private"`   // secrecy includes s_owner
	Protected bool   `json:"protected"` // integrity includes w_owner
}

// ExportDoc is the /fed/export response body. Horizon is the
// exporter's change sequence captured BEFORE the export walk: a later
// pull with since=Horizon returns every file changed after this
// document was assembled (files mutated mid-walk are re-sent — the
// cursor protocol is idempotent, never lossy; see store.ChangeSeq).
type ExportDoc struct {
	Provider string       `json:"provider"`
	User     string       `json:"user"`
	Horizon  uint64       `json:"horizon,omitempty"`
	Files    []FileRecord `json:"files"`
}

// dummySecret absorbs the constant-time compare for unknown peer
// names, so the failure path costs the same whether the peer name or
// the secret was wrong.
var dummySecret = []byte("w5-federation-dummy-secret-for-unknown-peers")

// MountExport installs the federation export endpoint on a mux. peers
// maps peer name to shared secret.
//
// The failure path is deliberately uniform: an unknown peer name and a
// wrong secret both perform one constant-time compare and both return
// the same 403, so a probing client cannot distinguish "no such peer"
// from "bad secret" by timing or by body. An unknown user yields an
// empty document rather than a 404 for the same reason — the endpoint
// confirms nothing it does not have to.
func MountExport(p *core.Provider, mux *http.ServeMux, peers map[string]string) {
	mux.HandleFunc("/fed/export", func(w http.ResponseWriter, r *http.Request) {
		peer := r.FormValue("peer")
		presented := []byte(r.Header.Get(PeerHeader))
		secret, known := peers[peer]
		want := dummySecret
		if known {
			want = []byte(secret)
		}
		if subtle.ConstantTimeCompare(presented, want) != 1 || !known {
			http.Error(w, "bad peer credentials", http.StatusForbidden)
			return
		}
		since, _ := strconv.ParseUint(r.FormValue("since"), 10, 64)
		user := r.FormValue("user")
		// Capture the horizon BEFORE walking: anything written during
		// the walk stamps above it and is re-sent on the next pull.
		horizon := p.FS.ChangeSeq()
		doc := ExportDoc{Provider: p.Name, User: user, Horizon: horizon}
		u, err := p.GetUser(user)
		if err != nil {
			// Unknown user: an empty document, not a 404. The peer is
			// authenticated, but the export surface still should not
			// enumerate which users exist here.
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(doc)
			return
		}
		home := "/home/" + user
		infos, datas, err := p.FS.ExportSince(home, since)
		if err != nil {
			http.Error(w, "export failed", http.StatusInternalServerError)
			return
		}
		for i, info := range infos {
			rel := strings.TrimPrefix(info.Path, home)
			// The user's own declassifiers decide, file by file,
			// whether this peer may receive the datum.
			if info.Label.Secrecy.Has(u.SecrecyTag) {
				d, _, err := p.Declass.Ask(declass.Request{
					Owner:  user,
					Viewer: "peer:" + peer,
					App:    "federation",
					Path:   rel,
					Data:   datas[i],
				})
				if err != nil || !d.Allow {
					continue
				}
			}
			doc.Files = append(doc.Files, FileRecord{
				Path:      rel,
				Data:      datas[i],
				Version:   info.Version,
				Origin:    p.Name,
				Private:   info.Label.Secrecy.Has(u.SecrecyTag),
				Protected: info.Label.Integrity.Has(u.WriteTag),
			})
		}
		p.Log.Appendf(audit.KindFederation, "peer:"+peer, user,
			"exported %d files (since=%d)", len(doc.Files), since)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(doc)
	})
}

// validRelPath accepts exactly the paths a well-formed peer produces:
// absolute (home-relative), with every segment a plain name. Checking
// per segment — not by substring — means a legitimate file called
// "notes..txt" syncs while "/../etc/passwd", "/./x", and "a//b" are
// all rejected.
func validRelPath(p string) bool {
	if !strings.HasPrefix(p, "/") {
		return false
	}
	for _, seg := range strings.Split(p[1:], "/") {
		if seg == "" || seg == "." || seg == ".." {
			return false
		}
	}
	return true
}

// Link is one pull-direction of a peering arrangement for one user.
type Link struct {
	// Local is the importing provider.
	Local *core.Provider
	// PeerName names the remote provider (for tie breaking and audit).
	PeerName string
	// BaseURL is the remote gateway root, e.g. the httptest server URL.
	BaseURL string
	// Secret is the shared peering secret.
	Secret string
	// User is whose data this link mirrors.
	User string
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Options tunes deadlines, size caps, and retries (zero = defaults).
	Options Options
	// Breaker, if set, gates every sync; share one Breaker across all
	// links to the same peer so failure evidence pools.
	Breaker *Breaker
	// StatePath, if set, persists the applied-version map and the
	// remote cursor across restarts (tmp+fsync+rename; see state.go).
	StatePath string

	mu      sync.Mutex
	applied map[string]uint64 // remote path -> highest remote version applied
	// appliedLocal records the LOCAL store version right after each
	// apply; a local file whose version still matches is an untouched
	// mirror, so a newer remote copy is an ordinary update — only a
	// local version drift makes a true conflict.
	appliedLocal map[string]uint64
	since        uint64 // remote change-sequence cursor
	loaded       bool   // durable state loaded (or absent)
}

// SyncResult summarizes one pull.
type SyncResult struct {
	// Applied counts files written locally.
	Applied int
	// SkippedInvalid counts records dropped for malformed paths —
	// nonzero means the peer is buggy or malicious.
	SkippedInvalid int
	// Stale counts records skipped because this version was already
	// applied.
	Stale int
	// Conflicts counts records where both sides had diverged and
	// last-writer-wins picked a side.
	Conflicts int
	// Horizon is the remote change cursor after this sync; the next
	// incremental pull starts there.
	Horizon uint64
}

// ErrConflict is returned (after applying the winner) when both sides
// changed a file; callers may log it.
var ErrConflict = errors.New("federation: conflicting update resolved by LWW")

// SyncOnce pulls the remote's view of the user's data and applies
// every record that wins last-writer-wins. It returns the number of
// files written locally. It is Sync for callers that only want the
// applied count.
func (l *Link) SyncOnce() (int, error) {
	res, err := l.Sync()
	return res.Applied, err
}

// Sync performs one incremental pull: only files the remote changed
// since the link's cursor are fetched, the cursor advancing on every
// fully applied round. Use SyncFull to bypass the cursor.
func (l *Link) Sync() (SyncResult, error) { return l.sync(false) }

// SyncFull performs one full pull (since=0), re-examining every file
// the remote will export. Periodic full pulls heal blind spots the
// cursor cannot see — chiefly a declassifier policy change that newly
// authorizes old, unmodified files.
func (l *Link) SyncFull() (SyncResult, error) { return l.sync(true) }

func (l *Link) sync(full bool) (SyncResult, error) {
	var res SyncResult
	if l.Breaker != nil && !l.Breaker.Allow() {
		return res, &PeerError{Peer: l.PeerName, Class: ClassBreaker,
			Err: errors.New("circuit breaker open")}
	}
	res, err := l.syncLocked(full)
	if l.Breaker != nil {
		// A resolved conflict is a successful sync; only transport and
		// apply failures count against the peer.
		if err == nil || errors.Is(err, ErrConflict) {
			l.Breaker.Success()
		} else {
			l.Breaker.Failure()
		}
	}
	return res, err
}

func (l *Link) syncLocked(full bool) (SyncResult, error) {
	var res SyncResult
	u, err := l.Local.GetUser(l.User)
	if err != nil {
		return res, err
	}
	cred := l.Local.UserCred(l.User)
	home := "/home/" + l.User

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.applied == nil {
		l.applied = make(map[string]uint64)
	}
	if l.appliedLocal == nil {
		l.appliedLocal = make(map[string]uint64)
	}
	l.loadStateLocked(cred, home)

	since := l.since
	if full {
		since = 0
	}
	doc, err := l.fetch(since)
	if err != nil {
		return res, err
	}

	written := 0
	var conflict bool
	for _, f := range doc.Files {
		if !validRelPath(f.Path) {
			res.SkippedInvalid++
			continue // defensive: never let a peer escape the home dir
		}
		if f.Version <= l.applied[f.Path] {
			// Already applied — but trust the map only if the file is
			// really present locally (the store may have been wiped or
			// restored from an older snapshot since the map was saved).
			if _, statErr := l.Local.FS.Stat(cred, home+f.Path); statErr == nil {
				res.Stale++
				continue
			}
			delete(l.applied, f.Path)
		}
		local, statErr := l.Local.FS.Stat(cred, home+f.Path)
		if statErr == nil {
			// Both sides have the file. If the bytes already agree this
			// is just our own write echoing around the mesh, not a
			// conflict — record it and move on.
			if cur, _, err := l.Local.FS.Read(cred, home+f.Path); err == nil && string(cur) == string(f.Data) {
				l.applied[f.Path] = f.Version
				l.appliedLocal[f.Path] = local.Version
				continue
			}
			// An untouched mirror (local version still what the last
			// apply left) just receives the remote update; only local
			// drift since then is a true divergence.
			if lastLocal, tracked := l.appliedLocal[f.Path]; !tracked || local.Version != lastLocal {
				// True divergence: LWW by version; tie → larger provider
				// name wins, so both sides converge identically.
				if local.Version > f.Version ||
					(local.Version == f.Version && l.Local.Name > doc.Provider) {
					conflict = true
					res.Conflicts++
					l.applied[f.Path] = f.Version // don't retry forever
					l.appliedLocal[f.Path] = local.Version
					continue
				}
				conflict = true
				res.Conflicts++
			}
		}
		// Re-label with LOCAL tags: semantic policy travels, tag
		// identity does not.
		label := difc.LabelPair{}
		if f.Private {
			label.Secrecy = difc.NewLabel(u.SecrecyTag)
		}
		if f.Protected {
			label.Integrity = difc.NewLabel(u.WriteTag)
		}
		if err := l.ensureParents(cred, home, f.Path, label); err != nil {
			res.Applied = written
			return res, err
		}
		if err := l.Local.FS.Write(cred, home+f.Path, f.Data, label); err != nil {
			res.Applied = written
			return res, &PeerError{Peer: l.PeerName, Class: ClassCorrupt,
				Err: err}
		}
		l.applied[f.Path] = f.Version
		if st, err := l.Local.FS.Stat(cred, home+f.Path); err == nil {
			l.appliedLocal[f.Path] = st.Version
		}
		written++
	}
	res.Applied = written
	res.Horizon = doc.Horizon
	// The round applied fully: advance the cursor to the document's
	// horizon and persist. (On a partial failure above we return early
	// and the cursor stays put, so the next round re-pulls.)
	l.since = doc.Horizon
	l.persistStateLocked()
	l.Local.Log.Appendf(audit.KindFederation, "peer:"+l.PeerName, l.User,
		"imported %d files (stale=%d invalid=%d since=%d)",
		written, res.Stale, res.SkippedInvalid, since)
	if conflict {
		return res, ErrConflict
	}
	return res, nil
}

// loadStateLocked restores durable state on first use, self-healing
// against local data loss: applied entries whose file no longer exists
// locally are dropped, and if any were dropped the cursor resets to 0
// so the next pull is full. Caller holds l.mu.
func (l *Link) loadStateLocked(cred store.Cred, home string) {
	if l.loaded || l.StatePath == "" {
		l.loaded = true
		return
	}
	l.loaded = true
	st, err := loadState(l.StatePath)
	if err != nil || st == nil {
		return // corrupt or absent: start fresh (since=0 full pull)
	}
	if st.Peer != l.PeerName || st.User != l.User {
		return // a foreign state file; ignore it
	}
	if st.AppliedLocal == nil {
		st.AppliedLocal = make(map[string]uint64)
	}
	healed := false
	for p := range st.Applied {
		if _, statErr := l.Local.FS.Stat(cred, home+p); statErr != nil {
			delete(st.Applied, p)
			delete(st.AppliedLocal, p)
			healed = true
		}
	}
	if healed {
		st.Since = 0
	}
	l.applied = st.Applied
	l.appliedLocal = st.AppliedLocal
	l.since = st.Since
}

// persistStateLocked writes the durable state if configured. Caller
// holds l.mu. Persistence failure is deliberately non-fatal: the state
// is an optimization (it avoids re-pulls), never the source of truth.
func (l *Link) persistStateLocked() {
	if l.StatePath == "" {
		return
	}
	applied := make(map[string]uint64, len(l.applied))
	for k, v := range l.applied {
		applied[k] = v
	}
	appliedLocal := make(map[string]uint64, len(l.appliedLocal))
	for k, v := range l.appliedLocal {
		appliedLocal[k] = v
	}
	saveState(l.StatePath, &syncState{
		Peer: l.PeerName, User: l.User, Since: l.since,
		Applied: applied, AppliedLocal: appliedLocal,
	})
}

// ensureParents creates missing intermediate directories for an
// imported file, labeled like the file but without write protection
// inheritance surprises (dirs get the same label).
func (l *Link) ensureParents(cred store.Cred, home, rel string, label difc.LabelPair) error {
	parts := strings.Split(strings.TrimPrefix(rel, "/"), "/")
	dir := home
	for _, part := range parts[:len(parts)-1] {
		dir += "/" + part
		err := l.Local.FS.Mkdir(cred, dir, label)
		if err != nil && !errors.Is(err, store.ErrExists) {
			return err
		}
	}
	return nil
}

// AuthorizePeer is the user-facing grant: it authorizes exports of the
// user's private data to the named peer provider, implemented as a
// stock Group declassifier whose sole member is the peer pseudo-viewer.
func AuthorizePeer(p *core.Provider, user, peerName string) error {
	return p.AuthorizeDeclassifier(user, declass.Group{
		GroupName: "federation-" + peerName,
		Members:   []string{"peer:" + peerName},
	})
}
