// Package federation implements multi-provider W5 (§3.3): "create
// import/export declassifiers that synchronize user data between two
// W5 providers. If an end-user deemed such applications trustworthy, it
// would give its privileges to data transfer applications on both
// platforms."
//
// Mechanics:
//
//   - A provider exposes an authenticated /fed/export endpoint
//     (MountExport). Peers present a shared secret; per-user data is
//     released only after the user's OWN declassifiers approve an
//     export to the pseudo-viewer "peer:<name>" — the user authorizes
//     federation exactly like any other declassification, typically
//     with declass.Group{Members: []string{"peer:B"}}.
//   - Labels cannot cross providers (tags are provider-local), so the
//     wire format carries the *meaning* of the label — private? write-
//     protected? — and the importing side re-labels with its own tags
//     for the same user. Policy travels with data in semantic form.
//   - A Link pulls from the remote, applying last-writer-wins by
//     version number with the provider name as the deterministic tie
//     breaker. Sync is pull-based and idempotent; running it twice is
//     harmless. Experiment E6 measures propagation and convergence.
package federation

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"w5/internal/audit"
	"w5/internal/core"
	"w5/internal/declass"
	"w5/internal/difc"
	"w5/internal/store"
)

// PeerHeader carries the peering secret.
const PeerHeader = "X-W5-Peer-Secret"

// FileRecord is the wire form of one synchronized file. Path is
// relative to the owner's home directory.
type FileRecord struct {
	Path      string `json:"path"`
	Data      []byte `json:"data"`
	Version   uint64 `json:"version"`
	Origin    string `json:"origin"`    // provider that produced this version
	Private   bool   `json:"private"`   // secrecy includes s_owner
	Protected bool   `json:"protected"` // integrity includes w_owner
}

// ExportDoc is the /fed/export response body.
type ExportDoc struct {
	Provider string       `json:"provider"`
	User     string       `json:"user"`
	Files    []FileRecord `json:"files"`
}

// MountExport installs the federation export endpoint on a mux. peers
// maps peer name to shared secret.
func MountExport(p *core.Provider, mux *http.ServeMux, peers map[string]string) {
	mux.HandleFunc("/fed/export", func(w http.ResponseWriter, r *http.Request) {
		peer := r.FormValue("peer")
		secret, ok := peers[peer]
		if !ok || subtle.ConstantTimeCompare([]byte(r.Header.Get(PeerHeader)), []byte(secret)) != 1 {
			http.Error(w, "bad peer credentials", http.StatusForbidden)
			return
		}
		user := r.FormValue("user")
		u, err := p.GetUser(user)
		if err != nil {
			http.Error(w, "no such user", http.StatusNotFound)
			return
		}
		doc := ExportDoc{Provider: p.Name, User: user}
		home := "/home/" + user
		infos, datas, err := p.FS.Export(home)
		if err != nil {
			http.Error(w, "export failed", http.StatusInternalServerError)
			return
		}
		for i, info := range infos {
			rel := strings.TrimPrefix(info.Path, home)
			// The user's own declassifiers decide, file by file,
			// whether this peer may receive the datum.
			if info.Label.Secrecy.Has(u.SecrecyTag) {
				d, _, err := p.Declass.Ask(declass.Request{
					Owner:  user,
					Viewer: "peer:" + peer,
					App:    "federation",
					Path:   rel,
					Data:   datas[i],
				})
				if err != nil || !d.Allow {
					continue
				}
			}
			doc.Files = append(doc.Files, FileRecord{
				Path:      rel,
				Data:      datas[i],
				Version:   info.Version,
				Origin:    originOf(info, p.Name),
				Private:   info.Label.Secrecy.Has(u.SecrecyTag),
				Protected: info.Label.Integrity.Has(u.WriteTag),
			})
		}
		p.Log.Appendf(audit.KindFederation, "peer:"+peer, user,
			"exported %d files", len(doc.Files))
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(doc)
	})
}

// originOf reports which provider authored this version. Imported
// files remember their origin in an owner-file side channel; for
// locally authored data it is the local provider. (Kept simple: we
// track origins in Link state; the exporter reports its own name,
// which is correct for LWW as long as links are pull-based pairs.)
func originOf(_ store.Info, local string) string { return local }

// Link is one pull-direction of a peering arrangement for one user.
type Link struct {
	// Local is the importing provider.
	Local *core.Provider
	// PeerName names the remote provider (for tie breaking and audit).
	PeerName string
	// BaseURL is the remote gateway root, e.g. the httptest server URL.
	BaseURL string
	// Secret is the shared peering secret.
	Secret string
	// User is whose data this link mirrors.
	User string
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client

	mu      sync.Mutex
	applied map[string]uint64 // remote path -> highest remote version applied
}

// ErrConflict is returned (after applying the winner) when both sides
// changed a file; callers may log it.
var ErrConflict = errors.New("federation: conflicting update resolved by LWW")

// SyncOnce pulls the remote's view of the user's data and applies
// every record that wins last-writer-wins. It returns the number of
// files written locally.
func (l *Link) SyncOnce() (int, error) {
	client := l.Client
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequest("GET",
		l.BaseURL+"/fed/export?user="+l.User+"&peer="+l.Local.Name, nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set(PeerHeader, l.Secret)
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("federation: remote returned %s", resp.Status)
	}
	var doc ExportDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return 0, fmt.Errorf("federation: corrupt export: %w", err)
	}
	if doc.User != l.User {
		return 0, fmt.Errorf("federation: remote answered for user %q", doc.User)
	}

	u, err := l.Local.GetUser(l.User)
	if err != nil {
		return 0, err
	}
	cred := l.Local.UserCred(l.User)
	home := "/home/" + l.User

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.applied == nil {
		l.applied = make(map[string]uint64)
	}
	written := 0
	var conflict bool
	for _, f := range doc.Files {
		if !strings.HasPrefix(f.Path, "/") || strings.Contains(f.Path, "..") {
			continue // defensive: never let a peer escape the home dir
		}
		if f.Version <= l.applied[f.Path] {
			continue // already have it
		}
		local, statErr := l.Local.FS.Stat(cred, home+f.Path)
		if statErr == nil {
			// Both sides have the file. If the bytes already agree this
			// is just our own write echoing around the mesh, not a
			// conflict — record it and move on.
			if cur, _, err := l.Local.FS.Read(cred, home+f.Path); err == nil && string(cur) == string(f.Data) {
				l.applied[f.Path] = f.Version
				continue
			}
			// True divergence: LWW by version; tie → larger provider name
			// wins, so both sides converge identically.
			if local.Version > f.Version ||
				(local.Version == f.Version && l.Local.Name > doc.Provider) {
				conflict = true
				l.applied[f.Path] = f.Version // don't retry forever
				continue
			}
			conflict = true
		}
		// Re-label with LOCAL tags: semantic policy travels, tag
		// identity does not.
		label := difc.LabelPair{}
		if f.Private {
			label.Secrecy = difc.NewLabel(u.SecrecyTag)
		}
		if f.Protected {
			label.Integrity = difc.NewLabel(u.WriteTag)
		}
		if err := l.ensureParents(cred, home, f.Path, label); err != nil {
			return written, err
		}
		if err := l.Local.FS.Write(cred, home+f.Path, f.Data, label); err != nil {
			return written, fmt.Errorf("federation: applying %s: %w", f.Path, err)
		}
		l.applied[f.Path] = f.Version
		written++
	}
	l.Local.Log.Appendf(audit.KindFederation, "peer:"+l.PeerName, l.User,
		"imported %d files", written)
	if conflict {
		return written, ErrConflict
	}
	return written, nil
}

// ensureParents creates missing intermediate directories for an
// imported file, labeled like the file but without write protection
// inheritance surprises (dirs get the same label).
func (l *Link) ensureParents(cred store.Cred, home, rel string, label difc.LabelPair) error {
	parts := strings.Split(strings.TrimPrefix(rel, "/"), "/")
	dir := home
	for _, part := range parts[:len(parts)-1] {
		dir += "/" + part
		err := l.Local.FS.Mkdir(cred, dir, label)
		if err != nil && !errors.Is(err, store.ErrExists) {
			return err
		}
	}
	return nil
}

// AuthorizePeer is the user-facing grant: it authorizes exports of the
// user's private data to the named peer provider, implemented as a
// stock Group declassifier whose sole member is the peer pseudo-viewer.
func AuthorizePeer(p *core.Provider, user, peerName string) error {
	return p.AuthorizeDeclassifier(user, declass.Group{
		GroupName: "federation-" + peerName,
		Members:   []string{"peer:" + peerName},
	})
}
