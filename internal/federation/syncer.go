package federation

// Syncer is the supervised federation daemon: one goroutine per peer,
// each looping sync rounds for every local user, under a supervisor
// that survives panics, tracks per-peer health, and audits
// unreachable/recovered transitions. A peer outage degrades service —
// reads keep answering from the (observably stale) local mirror — and
// never stalls the provider.

import (
	"errors"
	"net/http"
	"sort"
	"sync"
	"time"

	"w5/internal/audit"
	"w5/internal/core"
)

// PeerConfig names one remote provider to pull from.
type PeerConfig struct {
	// Name is the remote provider's name (must match what it calls
	// itself: LWW tie-breaking and state files key on it).
	Name string
	// BaseURL is the remote gateway root, e.g. "http://10.0.0.2:8055".
	BaseURL string
	// Secret is the shared peering secret this side presents.
	Secret string
}

// SyncerConfig configures a Syncer. Zero-valued fields take defaults.
type SyncerConfig struct {
	// Local is the importing provider.
	Local *core.Provider
	// Peers are the remotes to pull from, one supervised loop each.
	Peers []PeerConfig
	// Users restricts syncing to these users; nil means every local
	// user, re-enumerated each round so new signups are picked up.
	Users []string
	// Interval is the pause between sync rounds per peer (default 1s).
	Interval time.Duration
	// FullEvery makes every Nth round a full (since=0) pull, healing
	// cursor blind spots such as policy changes over old files
	// (default 32; negative disables full rounds).
	FullEvery int
	// StateDir, if set, persists each link's cursor and applied-version
	// map so a restarted daemon resumes incrementally.
	StateDir string
	// Options tunes the resilient transport for every link.
	Options Options
	// BreakerThreshold and BreakerCooldown configure each peer's
	// circuit breaker (zero = Breaker defaults).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Client overrides the HTTP client for every link (tests inject
	// fault transports here).
	Client *http.Client
}

func (c *SyncerConfig) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return time.Second
}

func (c *SyncerConfig) fullEvery() int {
	if c.FullEvery > 0 {
		return c.FullEvery
	}
	if c.FullEvery < 0 {
		return 0 // disabled
	}
	return 32
}

// PeerHealth is one peer's observable sync state, as exposed by
// Stats() and the gateway's /fed/status endpoint.
type PeerHealth struct {
	Peer    string `json:"peer"`
	Breaker string `json:"breaker"` // closed | open | half-open
	// ConsecutiveFailures counts failed rounds since the last success.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Rounds counts completed sync rounds (successful or not).
	Rounds uint64 `json:"rounds"`
	// LastSuccess is the wall time of the last fully successful round;
	// zero means the peer has never answered. Readers derive staleness
	// from it — data served locally is at most now−LastSuccess behind.
	LastSuccess time.Time `json:"last_success"`
	// LastError is the most recent failure, cleared on recovery.
	LastError string `json:"last_error,omitempty"`
	// LastApplied counts files applied in the most recent round.
	LastApplied int `json:"last_applied"`
	// TotalApplied counts files applied since the syncer started.
	TotalApplied uint64 `json:"total_applied"`
}

// Syncer runs supervised pull loops against every configured peer.
type Syncer struct {
	cfg      SyncerConfig
	breakers map[string]*Breaker

	mu     sync.Mutex
	links  map[string]*Link // key: peer + "\x00" + user
	health map[string]*PeerHealth

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewSyncer builds a Syncer; call Start to launch the loops.
func NewSyncer(cfg SyncerConfig) *Syncer {
	s := &Syncer{
		cfg:      cfg,
		breakers: make(map[string]*Breaker, len(cfg.Peers)),
		links:    make(map[string]*Link),
		health:   make(map[string]*PeerHealth, len(cfg.Peers)),
		stop:     make(chan struct{}),
	}
	for _, pc := range cfg.Peers {
		// One breaker per peer, shared by every user's link, so the
		// failure evidence pools across users.
		s.breakers[pc.Name] = &Breaker{
			Threshold: cfg.BreakerThreshold,
			Cooldown:  cfg.BreakerCooldown,
		}
		s.health[pc.Name] = &PeerHealth{Peer: pc.Name, Breaker: "closed"}
	}
	return s
}

// Start launches one supervised loop per peer. Safe to call once.
func (s *Syncer) Start() {
	for _, pc := range s.cfg.Peers {
		s.wg.Add(1)
		go s.loop(pc)
	}
}

// Close stops every loop and waits for them to exit.
func (s *Syncer) Close() {
	close(s.stop)
	s.wg.Wait()
}

// Stats snapshots per-peer health, sorted by peer name.
func (s *Syncer) Stats() []PeerHealth {
	s.mu.Lock()
	out := make([]PeerHealth, 0, len(s.health))
	for name, h := range s.health {
		c := *h
		c.Breaker = s.breakers[name].State()
		out = append(out, c)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// loop is one peer's supervised sync loop. The first round runs
// immediately; later rounds tick at the configured interval.
func (s *Syncer) loop(pc PeerConfig) {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.interval())
	defer t.Stop()
	for round := uint64(0); ; round++ {
		s.round(pc, round)
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
	}
}

// round syncs every user against one peer and folds the outcome into
// that peer's health record, auditing fail/recover transitions.
func (s *Syncer) round(pc PeerConfig, round uint64) {
	users := s.cfg.Users
	if users == nil {
		users = s.cfg.Local.Users()
	}
	fe := s.cfg.fullEvery()
	full := fe > 0 && round > 0 && round%uint64(fe) == 0

	applied := 0
	var firstErr error
	for _, user := range users {
		res, err := s.syncUser(pc, user, full)
		applied += res.Applied
		if err != nil && !errors.Is(err, ErrConflict) && firstErr == nil {
			firstErr = err
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.health[pc.Name]
	h.Rounds++
	h.LastApplied = applied
	h.TotalApplied += uint64(applied)
	if firstErr == nil {
		if h.ConsecutiveFailures > 0 {
			s.cfg.Local.Log.Appendf(audit.KindPeerRecover, "federation", pc.Name,
				"peer answering again after %d failed rounds", h.ConsecutiveFailures)
		}
		h.ConsecutiveFailures = 0
		h.LastError = ""
		h.LastSuccess = time.Now()
		return
	}
	h.ConsecutiveFailures++
	h.LastError = firstErr.Error()
	if h.ConsecutiveFailures == 1 {
		s.cfg.Local.Log.Appendf(audit.KindPeerFail, "federation", pc.Name,
			"peer unreachable: %v", firstErr)
	}
}

// syncUser runs one link sync under panic recovery: a panic in the
// sync path (a bug, not a network fault) is converted into a failed
// round instead of killing the loop — the supervisor's actual job.
func (s *Syncer) syncUser(pc PeerConfig, user string, full bool) (res SyncResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PeerError{Peer: pc.Name, Class: ClassCorrupt,
				Err: panicError{r}}
		}
	}()
	l := s.link(pc, user)
	if full {
		return l.SyncFull()
	}
	return l.Sync()
}

// link returns (creating on first use) the cached Link for one
// (peer, user) pair.
func (s *Syncer) link(pc PeerConfig, user string) *Link {
	key := pc.Name + "\x00" + user
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.links[key]; ok {
		return l
	}
	l := &Link{
		Local:    s.cfg.Local,
		PeerName: pc.Name,
		BaseURL:  pc.BaseURL,
		Secret:   pc.Secret,
		User:     user,
		Client:   s.cfg.Client,
		Options:  s.cfg.Options,
		Breaker:  s.breakers[pc.Name],
	}
	if s.cfg.StateDir != "" {
		l.StatePath = statePath(s.cfg.StateDir, pc.Name, user)
	}
	s.links[key] = l
	return l
}

// panicError wraps a recovered panic value as an error.
type panicError struct{ v any }

func (p panicError) Error() string { return "panic during sync: " + toString(p.v) }

func toString(v any) string {
	if err, ok := v.(error); ok {
		return err.Error()
	}
	if s, ok := v.(string); ok {
		return s
	}
	return "non-string panic value"
}
