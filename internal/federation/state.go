package federation

// Durable sync-state: the applied-version map and the remote change
// cursor survive restarts, so a restarted importer resumes incremental
// pulls instead of re-applying the whole corpus. Files are written with
// the same tmp + fsync + rename discipline as the audit spill
// (internal/audit/spill.go): a state file is either the previous
// complete version or the new complete version, never a torn write.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// syncState is the on-disk form, one file per (peer, user) link.
type syncState struct {
	Peer string `json:"peer"`
	User string `json:"user"`
	// Since is the remote change-sequence horizon of the last fully
	// applied pull; the next pull asks only for files changed after it.
	Since uint64 `json:"since"`
	// Applied maps remote path -> highest remote version applied, the
	// last-writer-wins memory.
	Applied map[string]uint64 `json:"applied"`
	// AppliedLocal maps remote path -> the LOCAL store version the
	// apply produced; it tells an untouched mirror (plain update) apart
	// from local drift (true conflict) across restarts.
	AppliedLocal map[string]uint64 `json:"applied_local,omitempty"`
}

// statePath names the state file for a (peer, user) link under dir.
// Peer and user names are flattened defensively — they come from
// configuration, but a path separator in either must not escape dir.
func statePath(dir, peer, user string) string {
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch r {
			case '/', '\\', '.', ':':
				return '_'
			}
			return r
		}, s)
	}
	return filepath.Join(dir, "fed-"+clean(peer)+"-"+clean(user)+".json")
}

// saveState atomically persists st to path.
func saveState(path string, st *syncState) error {
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+"*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// fsync the directory so the rename itself is durable.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// loadState reads a state file. A missing file is a fresh start (nil
// state, nil error); a corrupt file is an error so the caller can
// decide to discard it loudly rather than silently.
func loadState(path string) (*syncState, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var st syncState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("federation: corrupt state %s: %w", path, err)
	}
	if st.Applied == nil {
		st.Applied = make(map[string]uint64)
	}
	return &st, nil
}
