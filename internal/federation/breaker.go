package federation

// Circuit breaker for peer calls. The failure mode it targets is the
// slow one: a dead peer that eats a full timeout per attempt would
// otherwise stall every sync round for every user sharing that peer.
// Once the breaker opens, a dead peer costs one atomic load per round
// instead of Options.Timeout.
//
// State machine:
//
//	closed ──(Threshold consecutive failures)──▶ open
//	open ──(Cooldown elapses)──▶ half-open
//	half-open: exactly one probe call is let through;
//	  probe succeeds ──▶ closed, probe fails ──▶ open (fresh Cooldown)
//
// Failure here means a whole sync attempt failed AFTER its internal
// retries — the breaker sits above the retry loop, so one flaky packet
// does not open it, but a peer that defeats every retry budget does.

import (
	"sync"
	"sync/atomic"
	"time"
)

// Breaker is a per-peer circuit breaker. The zero value is usable and
// applies the defaults. One Breaker is shared by every link to the same
// peer, so the failure evidence pools across users.
type Breaker struct {
	// Threshold is how many consecutive failures open the breaker
	// (default 3).
	Threshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe (default 2s).
	Cooldown time.Duration

	// openUntil holds the unix-nano deadline of the open state; 0 means
	// closed. It is the lock-free fast path: Allow on an open breaker
	// is a single atomic load and a clock read.
	openUntil atomic.Int64

	mu       sync.Mutex
	failures int
	probing  bool // a half-open probe is in flight
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 3
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return 2 * time.Second
}

// Allow reports whether a call may proceed. false means the breaker is
// open (or a half-open probe is already in flight) and the caller
// should fail fast without touching the network.
func (b *Breaker) Allow() bool {
	u := b.openUntil.Load()
	if u == 0 {
		return true // closed
	}
	if time.Now().UnixNano() < u {
		return false // open; this is the one-atomic-load path
	}
	// Cooldown elapsed: admit exactly one probe.
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// Success records a successful call: the breaker closes and the
// failure count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
	b.openUntil.Store(0)
}

// Failure records a failed call. A failed probe re-opens immediately;
// in the closed state, Threshold consecutive failures open the breaker.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.probing || b.failures >= b.threshold() {
		b.probing = false
		b.openUntil.Store(time.Now().Add(b.cooldown()).UnixNano())
	}
}

// State names the current breaker state: "closed", "open", or
// "half-open" (cooldown elapsed, probe pending or in flight).
func (b *Breaker) State() string {
	u := b.openUntil.Load()
	if u == 0 {
		return "closed"
	}
	if time.Now().UnixNano() < u {
		return "open"
	}
	return "half-open"
}
