package federation

// The resilient half of the peer client: every call to a peer carries a
// deadline and a response-size cap, every failure is classified, and
// transient classes are retried under capped exponential backoff with
// jitter. The circuit breaker (breaker.go) sits ABOVE this layer — it
// counts whole fetches that failed after their retry budget.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Options tunes the resilient transport. The zero value means
// defaults; fields are independent.
type Options struct {
	// Timeout is the per-attempt deadline (default 5s). It covers the
	// whole attempt: dial, request, and reading the body.
	Timeout time.Duration
	// MaxBody caps the response size in bytes (default 32 MiB). A peer
	// that streams forever is cut off with a corrupt-body error instead
	// of exhausting memory.
	MaxBody int64
	// Retries is how many additional attempts follow a transient
	// failure (default 2, so 3 attempts total). Negative disables
	// retries.
	Retries int
	// Backoff is the base delay before the first retry (default
	// 100ms); attempt n waits Backoff·2ⁿ, capped at MaxBackoff, with
	// ±50% jitter so a fleet of links does not retry in lockstep.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 2s).
	MaxBackoff time.Duration
}

func (o Options) timeout() time.Duration {
	if o.Timeout > 0 {
		return o.Timeout
	}
	return 5 * time.Second
}

func (o Options) maxBody() int64 {
	if o.MaxBody > 0 {
		return o.MaxBody
	}
	return 32 << 20
}

func (o Options) retries() int {
	if o.Retries < 0 {
		return 0
	}
	if o.Retries == 0 {
		return 2
	}
	return o.Retries
}

func (o Options) backoff(attempt int) time.Duration {
	base := o.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := o.MaxBackoff
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	// ±50% jitter: uniform in [d/2, 3d/2).
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// Class classifies a peer-call failure; the class decides whether the
// failure is worth retrying and shows up in health reports.
type Class string

const (
	// ClassTimeout: the attempt's deadline fired (dial or body read).
	ClassTimeout Class = "timeout"
	// ClassConn: connection-level failure — refused, reset, DNS.
	ClassConn Class = "conn"
	// ClassStatus: the peer answered with a non-200 HTTP status.
	ClassStatus Class = "status"
	// ClassCorrupt: the body was truncated, over the size cap, or not
	// valid JSON.
	ClassCorrupt Class = "corrupt"
	// ClassBreaker: the call was refused locally by an open breaker;
	// the network was never touched.
	ClassBreaker Class = "breaker"
)

// PeerError is a classified failure talking to a peer.
type PeerError struct {
	Peer   string
	Class  Class
	Status int // HTTP status for ClassStatus, else 0
	Err    error
}

func (e *PeerError) Error() string {
	if e.Class == ClassStatus {
		return fmt.Sprintf("federation: peer %s: HTTP %d", e.Peer, e.Status)
	}
	return fmt.Sprintf("federation: peer %s: %s: %v", e.Peer, e.Class, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// Transient reports whether retrying could plausibly help: timeouts,
// connection failures, corrupt bodies, and 5xx statuses are transient;
// a 4xx is the peer telling us the request itself is wrong (bad secret,
// unknown peer) and retrying it verbatim cannot succeed.
func (e *PeerError) Transient() bool {
	switch e.Class {
	case ClassTimeout, ClassConn, ClassCorrupt:
		return true
	case ClassStatus:
		return e.Status >= 500
	}
	return false
}

// classify wraps a transport/decoding error with its failure class.
func (l *Link) classify(err error) *PeerError {
	class := ClassConn
	var ne net.Error
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		class = ClassTimeout
	case errors.As(err, &ne) && ne.Timeout():
		class = ClassTimeout
	case errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, io.EOF):
		class = ClassCorrupt
	}
	var je *json.SyntaxError
	var ue *json.UnmarshalTypeError
	var mbe *http.MaxBytesError
	if errors.As(err, &je) || errors.As(err, &ue) || errors.As(err, &mbe) {
		class = ClassCorrupt
	}
	return &PeerError{Peer: l.PeerName, Class: class, Err: err}
}

// fetch pulls the peer's export document for the link's user, records
// changed since the given cursor, retrying transient failures under
// backoff. It never consults the breaker — Sync does, once, around the
// whole fetch.
func (l *Link) fetch(since uint64) (*ExportDoc, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		doc, err := l.fetchOnce(since)
		if err == nil {
			return doc, nil
		}
		lastErr = err
		var pe *PeerError
		if !errors.As(err, &pe) || !pe.Transient() {
			return nil, err // permanent: don't burn the retry budget
		}
		if attempt >= l.Options.retries() {
			return nil, lastErr
		}
		time.Sleep(l.Options.backoff(attempt))
	}
}

// fetchOnce is a single deadline-bounded, size-capped attempt.
func (l *Link) fetchOnce(since uint64) (*ExportDoc, error) {
	client := l.Client
	if client == nil {
		client = http.DefaultClient
	}
	ctx, cancel := context.WithTimeout(context.Background(), l.Options.timeout())
	defer cancel()

	q := url.Values{}
	q.Set("user", l.User)
	q.Set("peer", l.Local.Name)
	if since > 0 {
		q.Set("since", strconv.FormatUint(since, 10))
	}
	req, err := http.NewRequestWithContext(ctx, "GET", l.BaseURL+"/fed/export?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(PeerHeader, l.Secret)
	resp, err := client.Do(req)
	if err != nil {
		return nil, l.classify(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain a little so the connection can be reused, then classify.
		io.CopyN(io.Discard, resp.Body, 4096)
		return nil, &PeerError{Peer: l.PeerName, Class: ClassStatus, Status: resp.StatusCode}
	}
	body := http.MaxBytesReader(nil, resp.Body, l.Options.maxBody())
	var doc ExportDoc
	if err := json.NewDecoder(body).Decode(&doc); err != nil {
		return nil, l.classify(err)
	}
	if doc.User != l.User {
		// Protocol violation, not a network fault: permanent.
		return nil, fmt.Errorf("federation: remote answered for user %q", doc.User)
	}
	return &doc, nil
}
