package federation

// Syncer tests: supervised convergence, observable degradation during
// a peer outage (breaker open, health reporting, audit transitions),
// clean shutdown without goroutine leaks, durable-state resume (a
// restarted importer re-applies nothing), and self-healing after
// local data loss.

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"w5/internal/audit"
	"w5/internal/core"
	"w5/internal/difc"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fastSyncer returns a config tuned for test speed.
func fastSyncer(pr *pair) SyncerConfig {
	return SyncerConfig{
		Local:    pr.B,
		Peers:    []PeerConfig{{Name: "providerA", BaseURL: pr.srvA.URL, Secret: "s3cret"}},
		Users:    []string{"bob"},
		Interval: 5 * time.Millisecond,
		Options:  Options{Timeout: 2 * time.Second, Retries: -1, Backoff: time.Millisecond},
		Client:   &http.Client{Transport: &http.Transport{}},
	}
}

func TestSyncerConvergesAndShutsDownCleanly(t *testing.T) {
	pr := newPair(t, true)
	writeBob(t, pr.A, "/private/diary", "day one", true)

	cfg := fastSyncer(pr)
	before := runtime.NumGoroutine()
	s := NewSyncer(cfg)
	s.Start()
	waitFor(t, "convergence", func() bool {
		got, _, err := readBob(t, pr.B, "/private/diary")
		return err == nil && got == "day one"
	})
	// A later write propagates without any explicit kick.
	writeBob(t, pr.A, "/private/diary", "day two", true)
	waitFor(t, "update propagation", func() bool {
		got, _, _ := readBob(t, pr.B, "/private/diary")
		return got == "day two"
	})
	st := s.Stats()
	if len(st) != 1 || st[0].Peer != "providerA" {
		t.Fatalf("stats = %+v", st)
	}
	if st[0].LastSuccess.IsZero() || st[0].Breaker != "closed" || st[0].TotalApplied < 2 {
		t.Errorf("healthy peer reported unhealthy: %+v", st[0])
	}

	s.Close()
	cfg.Client.CloseIdleConnections()
	// Every loop goroutine must be gone; give the runtime a moment.
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	})
}

// flakyFrontend forwards to an inner handler unless down.
type flakyFrontend struct {
	down  atomic.Bool
	inner http.Handler
}

func (f *flakyFrontend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		http.Error(w, "upstream down", http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func TestSyncerDegradesAndRecoversThroughOutage(t *testing.T) {
	A := core.NewProvider(core.Config{Name: "providerA", Enforce: true})
	B := core.NewProvider(core.Config{Name: "providerB", Enforce: true})
	for _, p := range []*core.Provider{A, B} {
		if _, err := p.CreateUser("bob", "pw"); err != nil {
			t.Fatal(err)
		}
	}
	if err := AuthorizePeer(A, "bob", "providerB"); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	MountExport(A, mux, map[string]string{"providerB": "s3cret"})
	front := &flakyFrontend{inner: mux}
	srv := httptest.NewServer(front)
	defer srv.Close()

	u, _ := A.GetUser("bob")
	write := func(rel, content string) {
		t.Helper()
		label := difc.LabelPair{
			Secrecy:   difc.NewLabel(u.SecrecyTag),
			Integrity: difc.NewLabel(u.WriteTag),
		}
		if err := A.FS.Write(A.UserCred("bob"), "/home/bob"+rel, []byte(content), label); err != nil {
			t.Fatal(err)
		}
	}
	write("/private/diary", "pre-outage")

	client := &http.Client{Transport: &http.Transport{}}
	s := NewSyncer(SyncerConfig{
		Local:            B,
		Peers:            []PeerConfig{{Name: "providerA", BaseURL: srv.URL, Secret: "s3cret"}},
		Users:            []string{"bob"},
		Interval:         5 * time.Millisecond,
		Options:          Options{Timeout: 2 * time.Second, Retries: -1, Backoff: time.Millisecond},
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Millisecond,
		Client:           client,
	})
	s.Start()
	defer func() { s.Close(); client.CloseIdleConnections() }()

	waitFor(t, "initial convergence", func() bool {
		got, _, err := B.FS.Read(B.UserCred("bob"), "/home/bob/private/diary")
		return err == nil && string(got) == "pre-outage"
	})

	// Outage: the syncer must degrade, not stall. Local reads keep
	// answering (stale), health reports the failure, the breaker opens,
	// and the transition is audited exactly once.
	front.down.Store(true)
	waitFor(t, "breaker to open", func() bool {
		st := s.Stats()[0]
		return st.ConsecutiveFailures >= 2 && st.Breaker != "closed" && st.LastError != ""
	})
	if got, _, err := B.FS.Read(B.UserCred("bob"), "/home/bob/private/diary"); err != nil || string(got) != "pre-outage" {
		t.Fatalf("stale local read failed during outage: %q %v", got, err)
	}
	if n := B.Log.CountKind(audit.KindPeerFail); n != 1 {
		t.Errorf("peer-fail audited %d times, want 1", n)
	}

	// Recovery: the breaker half-opens after its cooldown, the probe
	// succeeds, and data written during the outage converges.
	write("/private/diary", "post-outage")
	front.down.Store(false)
	waitFor(t, "recovery and convergence", func() bool {
		got, _, err := B.FS.Read(B.UserCred("bob"), "/home/bob/private/diary")
		return err == nil && string(got) == "post-outage"
	})
	waitFor(t, "health to clear", func() bool {
		st := s.Stats()[0]
		return st.ConsecutiveFailures == 0 && st.Breaker == "closed" && st.LastError == ""
	})
	if n := B.Log.CountKind(audit.KindPeerRecover); n != 1 {
		t.Errorf("peer-recover audited %d times, want 1", n)
	}
}

func TestRestartedSyncerReappliesNothing(t *testing.T) {
	pr := newPair(t, true)
	for _, f := range []string{"/private/a", "/private/b", "/public/c"} {
		writeBob(t, pr.A, f, "content"+f, f != "/public/c")
	}
	dir := t.TempDir()

	cfg := fastSyncer(pr)
	cfg.StateDir = dir
	s1 := NewSyncer(cfg)
	s1.Start()
	waitFor(t, "first import", func() bool {
		got, _, err := readBob(t, pr.B, "/public/c")
		return err == nil && got == "content/public/c"
	})
	s1.Close()

	// "Restart": a fresh Syncer over the same provider and state dir.
	// The durable cursor makes its first pull empty — zero files
	// re-applied, not three.
	s2 := NewSyncer(cfg)
	s2.Start()
	waitFor(t, "post-restart rounds", func() bool { return s2.Stats()[0].Rounds >= 3 })
	if applied := s2.Stats()[0].TotalApplied; applied != 0 {
		t.Errorf("restarted syncer re-applied %d files, want 0", applied)
	}
	s2.Close()
	cfg.Client.CloseIdleConnections()

	// Even a forced FULL pull re-applies nothing: every record is
	// recognized as already-applied via the durable version map.
	l := &Link{Local: pr.B, PeerName: "providerA", BaseURL: pr.srvA.URL,
		Secret: "s3cret", User: "bob", Options: fastOpts,
		StatePath: statePath(dir, "providerA", "bob")}
	res, err := l.SyncFull()
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 0 || res.Stale != 3 {
		t.Errorf("full pull after restart: applied=%d stale=%d, want 0/3", res.Applied, res.Stale)
	}
}

func TestStateSelfHealsAfterLocalDataLoss(t *testing.T) {
	pr := newPair(t, true)
	writeBob(t, pr.A, "/private/diary", "precious", true)
	dir := t.TempDir()
	sp := statePath(dir, "providerA", "bob")

	l1 := &Link{Local: pr.B, PeerName: "providerA", BaseURL: pr.srvA.URL,
		Secret: "s3cret", User: "bob", Options: fastOpts, StatePath: sp}
	if n, err := l1.SyncOnce(); err != nil || n != 1 {
		t.Fatalf("first sync: n=%d err=%v", n, err)
	}

	// Disaster: the importing provider loses its store (fresh instance)
	// but the state file survives. Trusting the state blindly would
	// mean silent data loss — the applied map says "have it", the store
	// says otherwise. The load path must notice and re-pull in full.
	B2 := core.NewProvider(core.Config{Name: "providerB", Enforce: true})
	if _, err := B2.CreateUser("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	l2 := &Link{Local: B2, PeerName: "providerA", BaseURL: pr.srvA.URL,
		Secret: "s3cret", User: "bob", Options: fastOpts, StatePath: sp}
	res, err := l2.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 {
		t.Fatalf("self-heal re-applied %d files, want 1", res.Applied)
	}
	got, _, err := B2.FS.Read(B2.UserCred("bob"), "/home/bob/private/diary")
	if err != nil || string(got) != "precious" {
		t.Fatalf("healed read: %q %v", got, err)
	}
}
