// Package attack implements the adversary suite of experiment E2: the
// concrete versions of §3's threat list ("Bad developers might upload
// applications designed to steal data, maliciously delete it, vandalize
// it, or misrepresent it").
//
// Each Attack is written against the abstract Surface interface — the
// things a malicious application can attempt on any platform — and run
// twice: once against the W5 adapter (adapter_w5.go), where every
// vector must be blocked, and once against the baseline adapter
// (adapter_baseline.go), where every vector succeeds because the
// platform trusts application code. The E2 matrix in EXPERIMENTS.md is
// exactly the outcome table of this package.
package attack

// Surface is what a hosted (and in W5's case, confined) malicious
// application can try to do. Adapters translate these intents into
// real platform operations.
type Surface interface {
	// ReadSecret reads the victim's private datum, as an application
	// the victim has adopted is entitled to do on both platforms.
	ReadSecret() ([]byte, error)
	// ExportDirect ships bytes to the attacker's external collection
	// point (a request to an attacker-controlled client).
	ExportDirect(data []byte) ([]byte, error)
	// WritePublic relays bytes into a world-readable location on the
	// platform, from which an unprivileged accomplice fetches them.
	WritePublic(data []byte) ([]byte, error)
	// LaunderViaIPC hands bytes to an accomplice process/app that is
	// NOT tainted by the victim's data, which then tries to export.
	LaunderViaIPC(data []byte) ([]byte, error)
	// ShedLabel attempts to strip the confinement state acquired by
	// reading, then export.
	ShedLabel(data []byte) ([]byte, error)
	// ProbeSecretByQuery senses one bit of another principal's private
	// database activity through shared-table side effects (the §3.5
	// SQL covert channel). It returns the guessed bit.
	ProbeSecretByQuery() (bool, error)
	// Vandalize overwrites the victim's datum without a write grant.
	Vandalize() error
	// SecretWasVandalized reports (out of band, for scoring) whether
	// the victim's datum changed.
	SecretWasVandalized() bool
	// TrueSecretBit reports (out of band, for scoring) the bit that
	// ProbeSecretByQuery was trying to sense.
	TrueSecretBit() bool
}

// Outcome scores one attack run.
type Outcome struct {
	// Leaked is true if any byte of the secret reached the attacker.
	Leaked bool
	// Corrupted is true if the victim's data was modified.
	Corrupted bool
	// Err is the platform's refusal, if any (informational).
	Err error
}

// Blocked reports whether the platform fully contained the attack.
func (o Outcome) Blocked() bool { return !o.Leaked && !o.Corrupted }

// Attack is one adversarial scenario.
type Attack struct {
	// Name identifies the vector in reports.
	Name string
	// Description says what the adversary attempts, in paper terms.
	Description string
	// Run executes the attack and scores it.
	Run func(s Surface) Outcome
}

// secretMatches checks whether exfiltrated bytes contain the secret.
func secretMatches(got []byte, secret []byte) bool {
	if len(got) == 0 || len(secret) == 0 {
		return false
	}
	return string(got) == string(secret) ||
		len(got) >= len(secret) && contains(got, secret)
}

func contains(hay, needle []byte) bool {
	for i := 0; i+len(needle) <= len(hay); i++ {
		match := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Suite returns every attack, in a stable order.
func Suite() []Attack {
	return []Attack{
		{
			Name:        "direct-export",
			Description: "read the victim's data, ship it straight out of the platform",
			Run: func(s Surface) Outcome {
				secret, err := s.ReadSecret()
				if err != nil {
					return Outcome{Err: err}
				}
				got, err := s.ExportDirect(secret)
				return Outcome{Leaked: secretMatches(got, secret), Err: err}
			},
		},
		{
			Name:        "storage-relay",
			Description: "copy the data into public storage; an accomplice collects it",
			Run: func(s Surface) Outcome {
				secret, err := s.ReadSecret()
				if err != nil {
					return Outcome{Err: err}
				}
				got, err := s.WritePublic(secret)
				return Outcome{Leaked: secretMatches(got, secret), Err: err}
			},
		},
		{
			Name:        "ipc-launder",
			Description: "pass the data to an untainted accomplice app, which exports it",
			Run: func(s Surface) Outcome {
				secret, err := s.ReadSecret()
				if err != nil {
					return Outcome{Err: err}
				}
				got, err := s.LaunderViaIPC(secret)
				return Outcome{Leaked: secretMatches(got, secret), Err: err}
			},
		},
		{
			Name:        "label-shed",
			Description: "strip one's own confinement state after reading, then export",
			Run: func(s Surface) Outcome {
				secret, err := s.ReadSecret()
				if err != nil {
					return Outcome{Err: err}
				}
				got, err := s.ShedLabel(secret)
				return Outcome{Leaked: secretMatches(got, secret), Err: err}
			},
		},
		{
			Name:        "covert-query",
			Description: "sense a secret bit through shared-database side effects (§3.5)",
			Run: func(s Surface) Outcome {
				guess, err := s.ProbeSecretByQuery()
				if err != nil {
					return Outcome{Err: err}
				}
				// The channel "worked" only if the guess is reliably
				// correct; adapters arrange the secret bit to be true,
				// so a correct true guess means the bit crossed.
				return Outcome{Leaked: guess == s.TrueSecretBit() && s.TrueSecretBit()}
			},
		},
		{
			Name:        "vandalism",
			Description: "overwrite the victim's data without a write grant (§3.1)",
			Run: func(s Surface) Outcome {
				err := s.Vandalize()
				return Outcome{Corrupted: s.SecretWasVandalized(), Err: err}
			},
		},
	}
}
