package attack

import (
	"errors"

	"w5/internal/core"
	"w5/internal/difc"
	"w5/internal/kernel"
	"w5/internal/store"
	"w5/internal/table"
)

// Secret is the victim's private datum; adapters plant it and the
// scoring looks for it in whatever reaches the attacker.
const Secret = "TOP-SECRET-0xW5"

// rendezvousTable carries the covert-query channel.
const rendezvousTable = "rendezvous"

// W5Surface runs the adversary as a confined application on a real
// provider. Construct a fresh one per attack (processes accumulate
// taint by design).
type W5Surface struct {
	P          *core.Provider
	victim     *core.User
	evil       *kernel.Process // the malicious app, with read grant
	accomplice *kernel.Process // unprivileged, untainted peer app
}

// NewW5Surface provisions a provider with a victim (who has, as the
// paper allows, enabled the malicious app and thereby granted it READ
// access) and plants the secret.
func NewW5Surface() (*W5Surface, error) {
	p := core.NewProvider(core.Config{Name: "e2-w5", Enforce: true})
	victim, err := p.CreateUser("victim", "pw")
	if err != nil {
		return nil, err
	}
	// The secret, under the boilerplate label.
	vc := p.UserCred("victim")
	label := difc.LabelPair{
		Secrecy:   difc.NewLabel(victim.SecrecyTag),
		Integrity: difc.NewLabel(victim.WriteTag),
	}
	if err := p.FS.Write(vc, "/home/victim/private/secret", []byte(Secret), label); err != nil {
		return nil, err
	}
	// A world-writable drop zone exists (pastebin-equivalent): public
	// secrecy, no integrity requirement.
	if err := p.FS.Mkdir(providerCred(), "/drop", difc.LabelPair{}); err != nil {
		return nil, err
	}
	// Victim "checks the box" for the evil app: read grant only.
	evil, err := p.Kernel.Spawn(nil, kernel.SpawnSpec{
		Name: "app:evil", Owner: "app:evil",
		Caps: difc.NewCapSet(difc.Plus(victim.SecrecyTag)),
	})
	if err != nil {
		return nil, err
	}
	accomplice, err := p.Kernel.Spawn(nil, kernel.SpawnSpec{
		Name: "app:accomplice", Owner: "app:accomplice",
	})
	if err != nil {
		return nil, err
	}
	// The covert-query rendezvous: the victim's own app activity
	// inserted a row with a well-known unique key under the victim's
	// label (the "secret bit" is that this happened at all).
	if err := p.Tables.Create(table.Schema{
		Name: rendezvousTable, Columns: []string{"k"}, Unique: "k",
	}); err != nil {
		return nil, err
	}
	victimTC := p.UserTableCred("victim")
	if _, err := p.Tables.Insert(victimTC, rendezvousTable,
		map[string]string{"k": "signal"},
		difc.LabelPair{Secrecy: difc.NewLabel(victim.SecrecyTag)}); err != nil {
		return nil, err
	}
	return &W5Surface{P: p, victim: victim, evil: evil, accomplice: accomplice}, nil
}

func providerCred() store.Cred { return store.Cred{Principal: "provider"} }

func (s *W5Surface) evilCred() store.Cred {
	return store.Cred{
		Labels:    s.evil.Labels(),
		Caps:      s.evil.Caps(),
		Principal: "app:evil",
	}
}

// ReadSecret implements Surface: permitted (read grant), and taints.
func (s *W5Surface) ReadSecret() ([]byte, error) {
	data, label, err := s.P.FS.Read(s.evilCred(), "/home/victim/private/secret")
	if err != nil {
		return nil, err
	}
	cur := s.evil.Labels()
	if err := s.P.Kernel.SetLabels(s.evil, difc.LabelPair{
		Secrecy:   cur.Secrecy.Union(label.Secrecy),
		Integrity: cur.Integrity,
	}); err != nil {
		return nil, err
	}
	return data, nil
}

// ExportDirect implements Surface: the kernel's perimeter check, with
// no session privilege (the attacker's collection point is anonymous).
func (s *W5Surface) ExportDirect(data []byte) ([]byte, error) {
	if err := s.P.Kernel.Export(s.evil, difc.EmptyCaps, "attacker.example", len(data)); err != nil {
		return nil, err
	}
	return data, nil
}

// WritePublic implements Surface: relay through public storage, then
// the accomplice reads and exports.
func (s *W5Surface) WritePublic(data []byte) ([]byte, error) {
	if err := s.P.FS.Write(s.evilCred(), "/drop/loot", data, difc.LabelPair{}); err != nil {
		return nil, err
	}
	got, _, err := s.P.FS.Read(store.Cred{Principal: "app:accomplice"}, "/drop/loot")
	if err != nil {
		return nil, err
	}
	if err := s.P.Kernel.Export(s.accomplice, difc.EmptyCaps, "attacker.example", len(got)); err != nil {
		return nil, err
	}
	return got, nil
}

// LaunderViaIPC implements Surface: message the untainted accomplice,
// which then exports.
func (s *W5Surface) LaunderViaIPC(data []byte) ([]byte, error) {
	if err := s.P.Kernel.Send(s.evil, s.accomplice.ID(), data); err != nil {
		return nil, err
	}
	msg, ok := s.P.Kernel.TryReceive(s.accomplice)
	if !ok {
		return nil, errors.New("attack: message not delivered")
	}
	if err := s.P.Kernel.Export(s.accomplice, difc.EmptyCaps, "attacker.example", len(msg.Data)); err != nil {
		return nil, err
	}
	return msg.Data, nil
}

// ShedLabel implements Surface: drop the taint without holding s_u−.
func (s *W5Surface) ShedLabel(data []byte) ([]byte, error) {
	if err := s.P.Kernel.SetLabels(s.evil, difc.LabelPair{}); err != nil {
		return nil, err
	}
	return s.ExportDirect(data)
}

// ProbeSecretByQuery implements Surface: the §3.5 covert channel. A
// public insert of the victim's rendezvous key collides (naive SQL) or
// polyinstantiates (W5's labeled store).
func (s *W5Surface) ProbeSecretByQuery() (bool, error) {
	evilTC := table.Cred{Principal: "app:evil"} // public, untainted context
	_, err := s.P.Tables.Insert(evilTC, rendezvousTable,
		map[string]string{"k": "signal"}, difc.LabelPair{})
	if errors.Is(err, table.ErrDuplicate) {
		return true, nil // collision observed: the secret bit leaked
	}
	if err != nil {
		return false, err
	}
	return false, nil
}

// Vandalize implements Surface: overwrite without the write grant.
func (s *W5Surface) Vandalize() error {
	return s.P.FS.Write(s.evilCred(), "/home/victim/private/secret",
		[]byte("DEFACED"), difc.LabelPair{})
}

// SecretWasVandalized implements Surface.
func (s *W5Surface) SecretWasVandalized() bool {
	data, _, err := s.P.FS.Read(s.P.UserCred("victim"), "/home/victim/private/secret")
	return err != nil || string(data) != Secret
}

// TrueSecretBit implements Surface: the rendezvous row exists.
func (s *W5Surface) TrueSecretBit() bool { return true }
