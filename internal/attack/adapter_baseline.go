package attack

import (
	"errors"

	"w5/internal/baseline"
	"w5/internal/difc"
	"w5/internal/table"
)

// BaselineSurface runs the same adversary as a trusted application on a
// Figure-1 site. There is no reference monitor; the only protections
// are advisory visibility flags that application code is trusted to
// honor — and this application does not.
type BaselineSurface struct {
	site  *baseline.Site
	naive *table.Store
	// exfil is the attacker's collection point: on the baseline,
	// nothing prevents the app from writing to it.
	exfil []byte
}

// NewBaselineSurface provisions the silo and plants the secret.
func NewBaselineSurface() (*BaselineSurface, error) {
	site := baseline.NewSite("socialsilo")
	if err := site.Signup("victim", "pw"); err != nil {
		return nil, err
	}
	if err := site.Upload("victim", "/private/secret", []byte(Secret), baseline.Private); err != nil {
		return nil, err
	}
	// The conventional SQL backend with a global unique constraint.
	naive := table.New(table.Options{Naive: true})
	if err := naive.Create(table.Schema{
		Name: rendezvousTable, Columns: []string{"k"}, Unique: "k",
	}); err != nil {
		return nil, err
	}
	if _, err := naive.Insert(table.Cred{Principal: "victimapp"}, rendezvousTable,
		map[string]string{"k": "signal"}, difc.LabelPair{}); err != nil {
		return nil, err
	}
	return &BaselineSurface{site: site, naive: naive}, nil
}

// ReadSecret implements Surface: the app is trusted; it reads freely.
func (s *BaselineSurface) ReadSecret() ([]byte, error) {
	d, err := s.site.AppRead("victim", "/private/secret")
	if err != nil {
		return nil, err
	}
	return d.Data, nil
}

// ExportDirect implements Surface: apps make outbound requests at will.
func (s *BaselineSurface) ExportDirect(data []byte) ([]byte, error) {
	s.exfil = append([]byte(nil), data...)
	return s.exfil, nil
}

// WritePublic implements Surface: flip the datum public, or just copy
// it under a public path; either way the accomplice fetches it.
func (s *BaselineSurface) WritePublic(data []byte) ([]byte, error) {
	if err := s.site.AppWrite("victim", "/public/loot", data); err != nil {
		return nil, err
	}
	d, err := s.site.AppRead("victim", "/public/loot")
	if err != nil {
		return nil, err
	}
	return d.Data, nil
}

// LaunderViaIPC implements Surface: in-process handoff, no monitor.
func (s *BaselineSurface) LaunderViaIPC(data []byte) ([]byte, error) {
	return s.ExportDirect(data)
}

// ShedLabel implements Surface: there is no label to shed.
func (s *BaselineSurface) ShedLabel(data []byte) ([]byte, error) {
	return s.ExportDirect(data)
}

// ProbeSecretByQuery implements Surface: the unique-constraint error is
// the covert channel, working as badly as §3.5 warns.
func (s *BaselineSurface) ProbeSecretByQuery() (bool, error) {
	_, err := s.naive.Insert(table.Cred{Principal: "evilapp"}, rendezvousTable,
		map[string]string{"k": "signal"}, difc.LabelPair{})
	if errors.Is(err, table.ErrDuplicate) {
		return true, nil
	}
	if err != nil {
		return false, err
	}
	return false, nil
}

// Vandalize implements Surface: trusted write access, no write tags.
func (s *BaselineSurface) Vandalize() error {
	return s.site.AppWrite("victim", "/private/secret", []byte("DEFACED"))
}

// SecretWasVandalized implements Surface.
func (s *BaselineSurface) SecretWasVandalized() bool {
	d, err := s.site.AppRead("victim", "/private/secret")
	return err != nil || string(d.Data) != Secret
}

// TrueSecretBit implements Surface.
func (s *BaselineSurface) TrueSecretBit() bool { return true }
