package attack

import (
	"testing"
)

// TestW5BlocksEveryVector is the E2 headline at unit scale: the W5
// platform must contain the entire suite.
func TestW5BlocksEveryVector(t *testing.T) {
	for _, atk := range Suite() {
		t.Run(atk.Name, func(t *testing.T) {
			s, err := NewW5Surface()
			if err != nil {
				t.Fatalf("surface: %v", err)
			}
			out := atk.Run(s)
			if !out.Blocked() {
				t.Errorf("W5 failed to block %s: %+v", atk.Name, out)
			}
			// Denials should be visible in the audit trail (the
			// provider can see attacks happening).
			if out.Err == nil && atk.Name != "covert-query" {
				t.Logf("note: %s blocked without error (silent containment)", atk.Name)
			}
		})
	}
}

// TestBaselineFailsEveryVector: the same suite fully succeeds against
// the trusting Figure-1 site — the status quo the paper critiques.
func TestBaselineFailsEveryVector(t *testing.T) {
	for _, atk := range Suite() {
		t.Run(atk.Name, func(t *testing.T) {
			s, err := NewBaselineSurface()
			if err != nil {
				t.Fatalf("surface: %v", err)
			}
			out := atk.Run(s)
			if out.Blocked() {
				t.Errorf("baseline unexpectedly blocked %s (comparator broken): %+v", atk.Name, out)
			}
		})
	}
}

// TestVictimStillWorksOnW5: containment must not break the victim's own
// access — after every attack, the victim can still read their secret.
func TestVictimStillWorksOnW5(t *testing.T) {
	for _, atk := range Suite() {
		s, err := NewW5Surface()
		if err != nil {
			t.Fatal(err)
		}
		atk.Run(s)
		data, _, err := s.P.FS.Read(s.P.UserCred("victim"), "/home/victim/private/secret")
		if err != nil || string(data) != Secret {
			t.Errorf("after %s: victim read = %q, %v", atk.Name, data, err)
		}
	}
}

// TestAttacksAreRealOnW5ReadPath: the read itself must SUCCEED on W5
// (the app has the grant); W5's story is confinement after reading,
// not read prevention. If the read failed, the suite would be testing
// a strawman.
func TestAttacksAreRealOnW5ReadPath(t *testing.T) {
	s, err := NewW5Surface()
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.ReadSecret()
	if err != nil {
		t.Fatalf("confined app could not even read: %v", err)
	}
	if string(data) != Secret {
		t.Fatalf("read wrong data: %q", data)
	}
}

func TestSuiteStable(t *testing.T) {
	a, b := Suite(), Suite()
	if len(a) != 6 {
		t.Fatalf("suite has %d attacks, want 6", len(a))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Error("suite order unstable")
		}
		if a[i].Description == "" {
			t.Errorf("%s lacks a description", a[i].Name)
		}
	}
}

func TestSecretMatchesHelper(t *testing.T) {
	if !secretMatches([]byte("xx"+Secret+"yy"), []byte(Secret)) {
		t.Error("substring match failed")
	}
	if secretMatches(nil, []byte(Secret)) {
		t.Error("nil matched")
	}
	if secretMatches([]byte("other"), []byte(Secret)) {
		t.Error("non-match matched")
	}
}
