package baseline

import (
	"errors"
	"testing"
)

func site(t *testing.T) *Site {
	t.Helper()
	s := NewSite("flickr-ish")
	if err := s.Signup("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSignupAndLogin(t *testing.T) {
	s := site(t)
	if err := s.Login("bob", "pw"); err != nil {
		t.Error(err)
	}
	if err := s.Login("bob", "wrong"); !errors.Is(err, ErrBadLogin) {
		t.Errorf("wrong password: %v", err)
	}
	if err := s.Signup("bob", "x"); err == nil {
		t.Error("duplicate signup succeeded")
	}
}

func TestUploadAndAppRead(t *testing.T) {
	s := site(t)
	if err := s.Upload("bob", "/photo", []byte("img"), Private); err != nil {
		t.Fatal(err)
	}
	d, err := s.AppRead("bob", "/photo")
	if err != nil || string(d.Data) != "img" {
		t.Fatalf("AppRead = %v, %v", d, err)
	}
	// The app reads PRIVATE data without ceremony: that is the point.
	if d.Visibility != Private {
		t.Error("visibility lost")
	}
	if _, err := s.AppRead("ghost", "/photo"); !errors.Is(err, ErrNoUser) {
		t.Errorf("missing user: %v", err)
	}
	if _, err := s.AppRead("bob", "/none"); !errors.Is(err, ErrNoDatum) {
		t.Errorf("missing datum: %v", err)
	}
}

func TestServeViewHonorsAdvisoryFlags(t *testing.T) {
	s := site(t)
	s.Signup("alice", "pw")
	s.Upload("bob", "/private", []byte("p"), Private)
	s.Upload("bob", "/friendsonly", []byte("f"), Friends)
	s.Upload("bob", "/public", []byte("pub"), Public)
	s.AddFriend("bob", "alice")

	cases := []struct {
		viewer, path string
		want         bool
	}{
		{"bob", "/private", true},
		{"alice", "/private", false},
		{"alice", "/friendsonly", true},
		{"eve", "/friendsonly", false},
		{"eve", "/public", true},
		{"", "/public", true},
	}
	for _, tt := range cases {
		_, err := s.ServeView("bob", tt.viewer, tt.path)
		if (err == nil) != tt.want {
			t.Errorf("ServeView(%q,%q) err=%v, want ok=%v", tt.viewer, tt.path, err, tt.want)
		}
	}
}

func TestOpsAndBytesAccounting(t *testing.T) {
	s := site(t) // signup = 1 op
	s.Upload("bob", "/a", make([]byte, 100), Private)
	s.Upload("bob", "/b", make([]byte, 50), Private)
	s.AddFriend("bob", "alice")
	if s.Ops() != 4 {
		t.Errorf("Ops = %d, want 4", s.Ops())
	}
	if s.Bytes() != 150 {
		t.Errorf("Bytes = %d, want 150", s.Bytes())
	}
}

func TestDataCopiesAcrossSilos(t *testing.T) {
	// The Figure-1 pathology: every site holds its own copy.
	var sites []*Site
	for i := 0; i < 3; i++ {
		s := NewSite("site")
		s.Signup("bob", "pw")
		s.Upload("bob", "/photo", []byte("img"), Private)
		s.Upload("bob", "/bio", []byte("hi"), Public)
		sites = append(sites, s)
	}
	if n := DataCopies(sites, "bob"); n != 6 {
		t.Errorf("DataCopies = %d, want 6", n)
	}
}

func TestFriendsOfSorted(t *testing.T) {
	s := site(t)
	s.AddFriend("bob", "zoe")
	s.AddFriend("bob", "alice")
	got := s.FriendsOf("bob")
	if len(got) != 2 || got[0] != "alice" || got[1] != "zoe" {
		t.Errorf("FriendsOf = %v", got)
	}
}
