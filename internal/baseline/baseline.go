// Package baseline simulates "today's Web" of the paper's Figure 1: a
// collection of siloed sites, each binding applications to its own copy
// of user data, with application code fully trusted by the site.
//
// It exists as the controlled comparator for the experiments:
//
//   - E1 measures the cost of adopting a new application here (per-site
//     signup plus re-uploading every datum) against W5's one-checkbox
//     EnableApp.
//   - E2 runs the adversary suite against this package's trusting
//     adapter and W5's confined one.
//   - E3/E9 use a baseline request path with no label checks as the
//     performance reference.
//
// The implementation intentionally mirrors how a conventional LAMP-ish
// site behaves: per-site accounts, per-site data tables, and "privacy
// settings" that are advisory flags the application code is trusted to
// honor — precisely the arrangement the paper criticizes ("That such
// calamities will not happen is something that a user must trust").
package baseline

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors.
var (
	ErrNoUser   = errors.New("baseline: no such user")
	ErrNoDatum  = errors.New("baseline: no such datum")
	ErrBadLogin = errors.New("baseline: authentication failed")
)

// Visibility is an advisory privacy setting. Nothing enforces it;
// applications are expected (!) to respect it.
type Visibility string

// Advisory visibility levels.
const (
	Private Visibility = "private"
	Friends Visibility = "friends"
	Public  Visibility = "public"
)

// Datum is one stored item with its advisory setting.
type Datum struct {
	Path       string
	Data       []byte
	Visibility Visibility
}

// Site is one Figure-1 Web application: app logic plus its own copy of
// user data. Safe for concurrent use.
type Site struct {
	Name string

	mu      sync.RWMutex
	users   map[string]string // user -> password (plaintext; sadly, period-accurate)
	data    map[string]map[string]*Datum
	friends map[string]map[string]bool
	// ops and bytes count the work users have performed against this
	// site — the E1 metric.
	ops   int
	bytes int
}

// NewSite creates an empty silo.
func NewSite(name string) *Site {
	return &Site{
		Name:    name,
		users:   make(map[string]string),
		data:    make(map[string]map[string]*Datum),
		friends: make(map[string]map[string]bool),
	}
}

// Signup creates an account on THIS site (every site needs its own).
func (s *Site) Signup(user, password string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.users[user]; dup {
		return fmt.Errorf("baseline: user %q exists on %s", user, s.Name)
	}
	s.users[user] = password
	s.data[user] = make(map[string]*Datum)
	s.friends[user] = make(map[string]bool)
	s.ops++
	return nil
}

// Login verifies a password.
func (s *Site) Login(user, password string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if p, ok := s.users[user]; !ok || p != password {
		return ErrBadLogin
	}
	return nil
}

// Upload stores a datum in this site's silo — data the user almost
// certainly already uploaded somewhere else.
func (s *Site) Upload(user, path string, data []byte, vis Visibility) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	silo, ok := s.data[user]
	if !ok {
		return ErrNoUser
	}
	silo[path] = &Datum{Path: path, Data: append([]byte(nil), data...), Visibility: vis}
	s.ops++
	s.bytes += len(data)
	return nil
}

// AddFriend records a friendship edge (per site, of course).
func (s *Site) AddFriend(user, friend string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.friends[user]
	if !ok {
		return ErrNoUser
	}
	f[friend] = true
	s.ops++
	return nil
}

// FriendsOf lists a user's friends, sorted.
func (s *Site) FriendsOf(user string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.friends[user]))
	for f := range s.friends[user] {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// AppRead is what application code calls. The application is TRUSTED:
// it receives the datum regardless of visibility, because the site
// cannot run the feature otherwise. Enforcement of the advisory
// setting is left to the app — the crux of the paper's complaint.
func (s *Site) AppRead(user, path string) (*Datum, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	silo, ok := s.data[user]
	if !ok {
		return nil, ErrNoUser
	}
	d, ok := silo[path]
	if !ok {
		return nil, ErrNoDatum
	}
	cp := *d
	cp.Data = append([]byte(nil), d.Data...)
	return &cp, nil
}

// AppWrite lets application code overwrite any datum. Trusted, again.
func (s *Site) AppWrite(user, path string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	silo, ok := s.data[user]
	if !ok {
		return ErrNoUser
	}
	d, ok := silo[path]
	if !ok {
		silo[path] = &Datum{Path: path, Data: append([]byte(nil), data...), Visibility: Private}
		return nil
	}
	d.Data = append([]byte(nil), data...)
	return nil
}

// ServeView renders a datum to a viewer, honoring the advisory
// visibility the way a WELL-BEHAVED app would. Malicious apps simply
// call AppRead and ship the bytes wherever they like (see
// internal/attack).
func (s *Site) ServeView(owner, viewer, path string) ([]byte, error) {
	d, err := s.AppRead(owner, path)
	if err != nil {
		return nil, err
	}
	switch d.Visibility {
	case Public:
		return d.Data, nil
	case Friends:
		if viewer == owner || s.isFriend(owner, viewer) {
			return d.Data, nil
		}
		return nil, errors.New("baseline: not visible (advisory)")
	default:
		if viewer == owner {
			return d.Data, nil
		}
		return nil, errors.New("baseline: not visible (advisory)")
	}
}

func (s *Site) isFriend(owner, viewer string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.friends[owner][viewer]
}

// Ops and Bytes report the cumulative user effort invested in this
// silo (signups, uploads, friend edges; bytes re-uploaded).
func (s *Site) Ops() int   { s.mu.RLock(); defer s.mu.RUnlock(); return s.ops }
func (s *Site) Bytes() int { s.mu.RLock(); defer s.mu.RUnlock(); return s.bytes }

// DataCopies counts how many copies of the user's data exist across a
// fleet of sites — Figure 1's duplication, measured.
func DataCopies(sites []*Site, user string) int {
	n := 0
	for _, s := range sites {
		s.mu.RLock()
		n += len(s.data[user])
		s.mu.RUnlock()
	}
	return n
}
