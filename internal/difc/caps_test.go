package difc

import "testing"

func TestCapSetBasics(t *testing.T) {
	c := NewCapSet(Plus(1), Minus(2), Plus(3), Plus(1))
	if !c.HasPlus(1) || !c.HasPlus(3) || !c.HasMinus(2) {
		t.Fatalf("missing capabilities in %v", c)
	}
	if c.HasMinus(1) || c.HasPlus(2) {
		t.Fatalf("phantom capabilities in %v", c)
	}
	if c.Size() != 3 {
		t.Errorf("Size() = %d, want 3 (duplicate not collapsed?)", c.Size())
	}
	if c.Owns(1) {
		t.Error("Owns(1) true with only t1+")
	}
	if EmptyCaps.Size() != 0 || !EmptyCaps.IsEmpty() {
		t.Error("EmptyCaps not empty")
	}
}

func TestCapsForGrantsOwnership(t *testing.T) {
	c := CapsFor(4, 7)
	for _, tag := range []Tag{4, 7} {
		if !c.Owns(tag) {
			t.Errorf("CapsFor: does not own %v", tag)
		}
	}
	if c.Owns(5) {
		t.Error("CapsFor: owns unrelated tag")
	}
	if c.Size() != 4 {
		t.Errorf("Size() = %d, want 4", c.Size())
	}
}

func TestCapSetGrantRevoke(t *testing.T) {
	c := EmptyCaps.Grant(Plus(1), Minus(1))
	if !c.Owns(1) {
		t.Fatal("grant failed")
	}
	d := c.Revoke(Minus(1))
	if d.Owns(1) || !d.HasPlus(1) {
		t.Fatalf("revoke wrong: %v", d)
	}
	// Immutability of the original.
	if !c.Owns(1) {
		t.Error("Revoke mutated receiver")
	}
}

func TestCapSetUnionSubset(t *testing.T) {
	a := NewCapSet(Plus(1), Minus(2))
	b := NewCapSet(Plus(3))
	u := a.Union(b)
	for _, cp := range []Cap{Plus(1), Minus(2), Plus(3)} {
		if !u.Has(cp) {
			t.Errorf("union missing %v", cp)
		}
	}
	if !a.SubsetOf(u) || !b.SubsetOf(u) {
		t.Error("operands not subsets of union")
	}
	if u.SubsetOf(a) {
		t.Error("union subset of operand")
	}
	if !EmptyCaps.SubsetOf(a) {
		t.Error("empty set not subset")
	}
}

func TestCapSetCapsOrderingDeterministic(t *testing.T) {
	a := NewCapSet(Minus(5), Plus(9), Plus(2), Minus(1))
	b := NewCapSet(Plus(2), Minus(1), Minus(5), Plus(9))
	ca, cb := a.Caps(), b.Caps()
	if len(ca) != len(cb) {
		t.Fatalf("lengths differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("orderings differ at %d: %v vs %v", i, ca[i], cb[i])
		}
	}
}

func TestCapStringParse(t *testing.T) {
	for _, cp := range []Cap{Plus(1), Minus(7), Plus(1 << 30)} {
		got, err := ParseCap(cp.String())
		if err != nil || got != cp {
			t.Errorf("ParseCap(%q) = %v, %v", cp.String(), got, err)
		}
	}
	for _, bad := range []string{"", "t1", "t1*", "+", "t0+"} {
		if _, err := ParseCap(bad); err == nil {
			t.Errorf("ParseCap(%q) succeeded", bad)
		}
	}
}

func TestCapSetStringParse(t *testing.T) {
	sets := []CapSet{
		EmptyCaps,
		NewCapSet(Plus(1)),
		NewCapSet(Plus(1), Minus(1), Plus(5), Minus(9)),
		CapsFor(2, 3, 4),
	}
	for _, c := range sets {
		s := c.String()
		back, err := ParseCapSet(s)
		if err != nil {
			t.Fatalf("ParseCapSet(%q): %v", s, err)
		}
		if !back.Equal(c) {
			t.Errorf("round trip %q -> %v, want %v", s, back, c)
		}
	}
	if _, err := ParseCapSet("t1+"); err == nil {
		t.Error("ParseCapSet accepted unbracketed input")
	}
	if _, err := ParseCapSet("[t1%]"); err == nil {
		t.Error("ParseCapSet accepted bad kind")
	}
}

func TestBothReturnsOwnership(t *testing.T) {
	caps := NewCapSet(Both(11)...)
	if !caps.Owns(11) {
		t.Error("Both(11) does not confer ownership")
	}
}

func TestSortCaps(t *testing.T) {
	caps := []Cap{Minus(3), Plus(3), Minus(1), Plus(2)}
	sortCaps(caps)
	want := []Cap{Minus(1), Plus(2), Plus(3), Minus(3)}
	for i := range want {
		if caps[i] != want[i] {
			t.Fatalf("sortCaps = %v, want %v", caps, want)
		}
	}
}
