package difc

import (
	"errors"
	"testing"
)

func TestSafeLabelChange(t *testing.T) {
	cases := []struct {
		name     string
		old, new Label
		caps     CapSet
		want     bool
	}{
		{"no change no caps", lbl(1), lbl(1), EmptyCaps, true},
		{"add with plus", lbl(), lbl(1), NewCapSet(Plus(1)), true},
		{"add without plus", lbl(), lbl(1), EmptyCaps, false},
		{"add with only minus", lbl(), lbl(1), NewCapSet(Minus(1)), false},
		{"drop with minus", lbl(1), lbl(), NewCapSet(Minus(1)), true},
		{"drop without minus", lbl(1), lbl(), NewCapSet(Plus(1)), false},
		{"swap needs both", lbl(1), lbl(2), NewCapSet(Minus(1), Plus(2)), true},
		{"swap half covered", lbl(1), lbl(2), NewCapSet(Plus(2)), false},
		{"multi add", lbl(1), lbl(1, 2, 3), NewCapSet(Plus(2), Plus(3)), true},
		{"multi add partial", lbl(1), lbl(1, 2, 3), NewCapSet(Plus(2)), false},
		{"ownership allows anything", lbl(1, 2), lbl(3), CapsFor(1, 2, 3), true},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if got := SafeLabelChange(tt.old, tt.new, tt.caps); got != tt.want {
				t.Errorf("SafeLabelChange(%v -> %v, %v) = %v, want %v",
					tt.old, tt.new, tt.caps, got, tt.want)
			}
			err := CheckLabelChange(tt.old, tt.new, tt.caps)
			if (err == nil) != tt.want {
				t.Errorf("CheckLabelChange disagreement: err=%v want ok=%v", err, tt.want)
			}
		})
	}
}

func TestCheckLabelChangeDiagnostics(t *testing.T) {
	err := CheckLabelChange(lbl(1, 2), lbl(3, 4), NewCapSet(Minus(1), Plus(3)))
	var ul *ErrUnsafeLabelChange
	if !errors.As(err, &ul) {
		t.Fatalf("error type %T, want *ErrUnsafeLabelChange", err)
	}
	if !ul.MissingPlus.Equal(lbl(4)) {
		t.Errorf("MissingPlus = %v, want {t4}", ul.MissingPlus)
	}
	if !ul.MissingMinus.Equal(lbl(2)) {
		t.Errorf("MissingMinus = %v, want {t2}", ul.MissingMinus)
	}
	if ul.Error() == "" {
		t.Error("empty error string")
	}
}

func TestSafeMessageSecrecy(t *testing.T) {
	cases := []struct {
		name     string
		sendS    Label
		sendCaps CapSet
		recvS    Label
		recvCaps CapSet
		want     bool
	}{
		{"public to public", lbl(), EmptyCaps, lbl(), EmptyCaps, true},
		{"up the lattice", lbl(1), EmptyCaps, lbl(1, 2), EmptyCaps, true},
		{"down the lattice", lbl(1, 2), EmptyCaps, lbl(1), EmptyCaps, false},
		{"down with declassify", lbl(1, 2), NewCapSet(Minus(2)), lbl(1), EmptyCaps, true},
		{"down recv can raise", lbl(1, 2), EmptyCaps, lbl(1), NewCapSet(Plus(2)), true},
		{"incomparable", lbl(1), EmptyCaps, lbl(2), EmptyCaps, false},
		{"incomparable sender minus", lbl(1), NewCapSet(Minus(1)), lbl(2), EmptyCaps, true},
		{"secret to public blocked", lbl(9), EmptyCaps, lbl(), EmptyCaps, false},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			got := SafeMessage(tt.sendS, tt.sendCaps, tt.recvS, tt.recvCaps)
			if got != tt.want {
				t.Errorf("SafeMessage = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSafeMessageIntegrity(t *testing.T) {
	w := Tag(100) // think: user's write-protect tag
	cases := []struct {
		name     string
		sendI    Label
		sendCaps CapSet
		recvI    Label
		recvCaps CapSet
		want     bool
	}{
		{"no requirement", lbl(), EmptyCaps, lbl(), EmptyCaps, true},
		{"requirement met", lbl(w), EmptyCaps, lbl(w), EmptyCaps, true},
		{"requirement unmet", lbl(), EmptyCaps, lbl(w), EmptyCaps, false},
		{"recv can endorse itself", lbl(), EmptyCaps, lbl(w), NewCapSet(Plus(w)), true},
		{"sender can shed is irrelevant for unmet", lbl(), NewCapSet(Minus(w)), lbl(w), EmptyCaps, true},
		{"high integrity to low ok", lbl(w, 101), EmptyCaps, lbl(), EmptyCaps, true},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			got := SafeMessageI(tt.sendI, tt.sendCaps, tt.recvI, tt.recvCaps)
			if got != tt.want {
				t.Errorf("SafeMessageI = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSafeFlowCombined(t *testing.T) {
	s, w := Tag(1), Tag(2)
	secretHighInt := LabelPair{Secrecy: lbl(s), Integrity: lbl(w)}
	publicLowInt := LabelPair{Secrecy: lbl(), Integrity: lbl()}

	// Secret, endorsed data flows to a secret, unendorsed container.
	if !SafeFlow(secretHighInt, EmptyCaps, LabelPair{Secrecy: lbl(s)}, EmptyCaps) {
		t.Error("flow up-secrecy down-integrity should be safe")
	}
	// It must not flow out to public.
	if SafeFlow(secretHighInt, EmptyCaps, publicLowInt, EmptyCaps) {
		t.Error("secret flowed to public")
	}
	// Public data must not flow into a w-requiring container without w.
	if SafeFlow(publicLowInt, EmptyCaps, secretHighInt, EmptyCaps) {
		t.Error("unendorsed write accepted")
	}
	// With both privileges, everything goes.
	priv := NewCapSet(Minus(s), Plus(w))
	if !SafeFlow(secretHighInt, priv, publicLowInt, EmptyCaps) {
		t.Error("declassifier flow denied")
	}
	if !SafeFlow(publicLowInt, EmptyCaps, secretHighInt, NewCapSet(Plus(s), Plus(w))) {
		t.Error("receiver with raise privileges denied")
	}
}

func TestCheckFlowDiagnostics(t *testing.T) {
	send := LabelPair{Secrecy: lbl(1, 2), Integrity: lbl()}
	recv := LabelPair{Secrecy: lbl(1), Integrity: lbl(9)}
	err := CheckFlow(send, EmptyCaps, recv, EmptyCaps)
	var fd *ErrFlowDenied
	if !errors.As(err, &fd) {
		t.Fatalf("error type %T, want *ErrFlowDenied", err)
	}
	if !fd.Leaked.Equal(lbl(2)) {
		t.Errorf("Leaked = %v, want {t2}", fd.Leaked)
	}
	if !fd.Unmet.Equal(lbl(9)) {
		t.Errorf("Unmet = %v, want {t9}", fd.Unmet)
	}
	if fd.Error() == "" {
		t.Error("empty error string")
	}
	if err := CheckFlow(send, CapsFor(1, 2), recv, CapsFor(9)); err != nil {
		t.Errorf("privileged flow denied: %v", err)
	}
}

func TestCanExport(t *testing.T) {
	cases := []struct {
		name string
		s    Label
		caps CapSet
		want bool
	}{
		{"public always exports", lbl(), EmptyCaps, true},
		{"tainted blocked", lbl(1), EmptyCaps, false},
		{"tainted with minus", lbl(1), NewCapSet(Minus(1)), true},
		{"partially covered", lbl(1, 2), NewCapSet(Minus(1)), false},
		{"fully covered", lbl(1, 2), NewCapSet(Minus(1), Minus(2)), true},
		{"plus does not export", lbl(1), NewCapSet(Plus(1)), false},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if got := CanExport(tt.s, tt.caps); got != tt.want {
				t.Errorf("CanExport(%v, %v) = %v, want %v", tt.s, tt.caps, got, tt.want)
			}
		})
	}
}

func TestExportResidue(t *testing.T) {
	got := ExportResidue(lbl(1, 2, 3), NewCapSet(Minus(2)))
	if !got.Equal(lbl(1, 3)) {
		t.Errorf("ExportResidue = %v, want {t1,t3}", got)
	}
	if !ExportResidue(lbl(), EmptyCaps).IsEmpty() {
		t.Error("residue of empty label not empty")
	}
}

func TestLabelPairJoin(t *testing.T) {
	a := LabelPair{Secrecy: lbl(1), Integrity: lbl(10, 11)}
	b := LabelPair{Secrecy: lbl(2), Integrity: lbl(11, 12)}
	j := a.Join(b)
	if !j.Secrecy.Equal(lbl(1, 2)) {
		t.Errorf("join secrecy = %v, want {t1,t2}", j.Secrecy)
	}
	if !j.Integrity.Equal(lbl(11)) {
		t.Errorf("join integrity = %v, want {t11}", j.Integrity)
	}
}

func TestLabelPairCanFlowTo(t *testing.T) {
	low := LabelPair{Secrecy: lbl(), Integrity: lbl(5)}
	high := LabelPair{Secrecy: lbl(1), Integrity: lbl()}
	if !low.CanFlowTo(high) {
		t.Error("low should flow to high")
	}
	if high.CanFlowTo(low) {
		t.Error("high flowed to low")
	}
	if !low.CanFlowTo(low) || !high.CanFlowTo(high) {
		t.Error("CanFlowTo not reflexive")
	}
}

// TestBoilerplatePolicyScenario walks the exact scenario from paper §3.1:
// Bob's data is labeled {s_bob}; an untrusted app may read and process it
// but cannot export it; the gateway exports to Bob's own browser using the
// s_bob- privilege it holds for Bob's session; a friend-list declassifier
// granted s_bob- can export to Alice; Charlie's session cannot receive it.
func TestBoilerplatePolicyScenario(t *testing.T) {
	sBob := Tag(1)
	bobData := lbl(sBob)

	// Untrusted app reads Bob's data: app label must rise to include s_bob.
	appLabel := lbl()
	if SafeMessage(bobData, EmptyCaps, appLabel, EmptyCaps) {
		t.Fatal("read allowed without taint or capability")
	}
	appCaps := NewCapSet(Plus(sBob)) // everyone may read-and-taint by default
	if !SafeMessage(bobData, EmptyCaps, appLabel, appCaps) {
		t.Fatal("read denied despite s_bob+ capability")
	}
	appLabel = appLabel.Add(sBob) // app is now tainted

	// Tainted app cannot export.
	if CanExport(appLabel, appCaps) {
		t.Fatal("tainted app exported Bob's data")
	}

	// Gateway session endpoint for Bob holds s_bob- : export to Bob OK.
	bobSession := NewCapSet(Minus(sBob))
	if !CanExport(appLabel, appCaps.Union(bobSession)) {
		t.Fatal("export to Bob's own browser denied")
	}

	// Charlie's session holds s_charlie-, not s_bob-.
	charlieSession := NewCapSet(Minus(Tag(3)))
	if CanExport(appLabel, appCaps.Union(charlieSession)) {
		t.Fatal("Bob's data exported to Charlie")
	}

	// Friend-list declassifier granted s_bob- by Bob can export to Alice.
	declCaps := NewCapSet(Minus(sBob))
	if !CanExport(appLabel.Subtract(lbl()), declCaps) {
		t.Fatal("authorized declassifier denied")
	}
}
