package difc

import "fmt"

// This file implements the two safety judgments of the Flume DIFC model
// (Krohn et al., SOSP 2007), which the W5 paper adopts as its enforcement
// substrate (§3.1). Everything the W5 kernel allows or denies — reads,
// writes, IPC, network export — reduces to these two checks plus the
// export special case.

// LabelPair bundles a secrecy and an integrity label; processes, files,
// table rows, endpoints and messages all carry one.
type LabelPair struct {
	Secrecy   Label
	Integrity Label
}

// String renders "S=… I=…".
func (lp LabelPair) String() string {
	return fmt.Sprintf("S=%s I=%s", lp.Secrecy, lp.Integrity)
}

// Equal reports whether both components are equal.
func (lp LabelPair) Equal(o LabelPair) bool {
	return lp.Secrecy.Equal(o.Secrecy) && lp.Integrity.Equal(o.Integrity)
}

// Join returns the label pair of data derived from both inputs: secrecy
// accumulates (union), integrity attenuates (intersection).
func (lp LabelPair) Join(o LabelPair) LabelPair {
	return LabelPair{
		Secrecy:   lp.Secrecy.Union(o.Secrecy),
		Integrity: lp.Integrity.Intersect(o.Integrity),
	}
}

// CanFlowTo reports whether data labeled lp may flow into a container
// labeled o with no privilege applied: secrecy may only grow and
// integrity may only shrink along a flow.
func (lp LabelPair) CanFlowTo(o LabelPair) bool {
	return lp.Secrecy.SubsetOf(o.Secrecy) && o.Integrity.SubsetOf(lp.Integrity)
}

// SafeLabelChange implements Flume's safe label change rule: a process
// holding capabilities caps may change a label from old to new iff every
// added tag is covered by a plus capability and every dropped tag by a
// minus capability:
//
//	new − old ⊆ D+   and   old − new ⊆ D−
//
// The rule is identical for secrecy and integrity labels.
//
// The implementation tests tag coverage directly instead of materializing
// the difference labels, so the judgment never allocates — it runs on
// every read-taint raise of the request path.
func SafeLabelChange(old, new Label, caps CapSet) bool {
	return coveredBy2(new, old, caps.plus) && coveredBy2(old, new, caps.minus)
}

// coveredBy2 reports l ⊆ a ∪ b without building the union.
func coveredBy2(l, a, b Label) bool {
	n := l.Size()
	for i := 0; i < n; i++ {
		t := l.at(i)
		if !a.Has(t) && !b.Has(t) {
			return false
		}
	}
	return true
}

// coveredBy3 reports l ⊆ a ∪ b ∪ c without building the union.
func coveredBy3(l, a, b, c Label) bool {
	n := l.Size()
	for i := 0; i < n; i++ {
		t := l.at(i)
		if !a.Has(t) && !b.Has(t) && !c.Has(t) {
			return false
		}
	}
	return true
}

// ErrUnsafeLabelChange describes a rejected label transition, naming the
// exact tags whose addition or removal lacked capability cover. Returning
// the offending tags (rather than a bare denial) is safe here: the caller
// already knows both labels; the error names no third party's secrets.
type ErrUnsafeLabelChange struct {
	MissingPlus  Label // tags added without t+
	MissingMinus Label // tags dropped without t-
}

func (e *ErrUnsafeLabelChange) Error() string {
	return fmt.Sprintf("difc: unsafe label change: need +%s -%s",
		e.MissingPlus, e.MissingMinus)
}

// CheckLabelChange is SafeLabelChange returning a diagnostic error on
// denial, for kernel call sites that must report the failure. The allowed
// path allocates nothing; the difference labels are materialized only to
// describe a denial.
func CheckLabelChange(old, new Label, caps CapSet) error {
	if SafeLabelChange(old, new, caps) {
		return nil
	}
	return &ErrUnsafeLabelChange{
		MissingPlus:  new.Subtract(old).Subtract(caps.Plus()),
		MissingMinus: old.Subtract(new).Subtract(caps.Minus()),
	}
}

// SafeMessage implements Flume's safe message rule for a message sent by
// a process with secrecy sendS and capabilities sendCaps to a receiver
// with secrecy recvS and capabilities recvCaps:
//
//	S_send − D_send− ⊆ S_recv ∪ D_recv+
//
// Intuition: the sender may implicitly declassify what it could
// declassify anyway, and the receiver may implicitly raise its label by
// tags it could add anyway; after those potential moves the flow must be
// monotone. Integrity is the dual judgment, checked by SafeMessageI.
func SafeMessage(sendS Label, sendCaps CapSet, recvS Label, recvCaps CapSet) bool {
	// S_send ⊆ D_send− ∪ S_recv ∪ D_recv+, tag by tag: no intermediate
	// labels, no allocation.
	return coveredBy3(sendS, sendCaps.minus, recvS, recvCaps.plus)
}

// SafeMessageI is the integrity dual of SafeMessage: the receiver's
// integrity requirements, less what it could endorse itself, must be met
// by the sender's integrity plus what the sender could shed:
//
//	I_recv − D_recv+ ⊆ I_send ∪ D_send−  (Flume, dual form)
//
// In practice W5 uses this to guarantee write-protection: a file whose
// integrity label contains the owner's write tag w_u only accepts writes
// from processes that carry (or can endorse with) w_u.
func SafeMessageI(sendI Label, sendCaps CapSet, recvI Label, recvCaps CapSet) bool {
	return coveredBy3(recvI, recvCaps.plus, sendI, sendCaps.minus)
}

// SafeFlow checks both directions of the full message judgment between
// two labeled endpoints.
func SafeFlow(send LabelPair, sendCaps CapSet, recv LabelPair, recvCaps CapSet) bool {
	return SafeMessage(send.Secrecy, sendCaps, recv.Secrecy, recvCaps) &&
		SafeMessageI(send.Integrity, sendCaps, recv.Integrity, recvCaps)
}

// ErrFlowDenied describes a rejected flow. Leaked holds the secrecy tags
// that would escape; Unmet holds the integrity tags the receiver demands
// but the sender cannot supply. The kernel maps this to an opaque denial
// at untrusted-code boundaries (see kernel.Monitor) so the error itself
// does not become a covert channel; the full detail goes to the audit log.
type ErrFlowDenied struct {
	Leaked Label
	Unmet  Label
}

func (e *ErrFlowDenied) Error() string {
	return fmt.Sprintf("difc: flow denied: would leak %s, unmet integrity %s",
		e.Leaked, e.Unmet)
}

// CheckFlow is SafeFlow with a diagnostic error for the audit log. The
// allowed path (every request) allocates nothing; denial details are
// materialized only when the flow is rejected.
func CheckFlow(send LabelPair, sendCaps CapSet, recv LabelPair, recvCaps CapSet) error {
	if SafeFlow(send, sendCaps, recv, recvCaps) {
		return nil
	}
	leaked := send.Secrecy.Subtract(sendCaps.Minus()).
		Subtract(recv.Secrecy.Union(recvCaps.Plus()))
	unmet := recv.Integrity.Subtract(recvCaps.Plus()).
		Subtract(send.Integrity.Union(sendCaps.Minus()))
	return &ErrFlowDenied{Leaked: leaked, Unmet: unmet}
}

// CanExport reports whether a process with secrecy label s and
// capabilities caps may emit data across the security perimeter. The
// outside world is modeled as an endpoint with the empty label and no
// capabilities, so the message rule degenerates to: every secrecy tag the
// process has accumulated must be covered by a minus capability.
//
//	S ⊆ D−
//
// This single check is what makes the W5 boilerplate policy (§3.1) work:
// the gateway holds s_u− only for user u's own authenticated session, so
// "Bob's data can only leave the security perimeter if destined for
// Bob's browser" — unless a declassifier that Bob authorized (granted
// s_u− to) vouches for another destination.
func CanExport(s Label, caps CapSet) bool {
	return s.SubsetOf(caps.Minus())
}

// ExportResidue returns the secrecy tags that block an export: S − D−.
// Empty means the export is safe.
func ExportResidue(s Label, caps CapSet) Label {
	return s.Subtract(caps.Minus())
}
