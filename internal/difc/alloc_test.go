package difc

import "testing"

// The request path of the platform performs label algebra on 1–2-tag
// labels for every invoke/export. These guards pin the inline-storage
// fast path: none of the dominant operations may allocate. A regression
// here silently reintroduces O(requests) garbage on the hot path, so the
// guards fail hard rather than warn.

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(200, f); avg != 0 {
		t.Errorf("%s allocates %.1f times per op, want 0", name, avg)
	}
}

func TestSmallLabelOpsDoNotAllocate(t *testing.T) {
	a := NewLabel(7)
	b := NewLabel(7, 9)
	c := NewLabel(9, 11)
	var sink Label
	var sinkBool bool

	assertZeroAllocs(t, "NewLabel/1", func() { sink = NewLabel(7) })
	assertZeroAllocs(t, "NewLabel/2", func() { sink = NewLabel(9, 7) })
	assertZeroAllocs(t, "Union/1+2-absorbed", func() { sink = a.Union(b) })
	assertZeroAllocs(t, "Union/1+1-merge", func() { sink = a.Union(NewLabel(11)) })
	assertZeroAllocs(t, "Union/empty", func() { sink = a.Union(EmptyLabel) })
	assertZeroAllocs(t, "Intersect/2x2", func() { sink = b.Intersect(c) })
	assertZeroAllocs(t, "Subtract/2-2", func() { sink = b.Subtract(c) })
	assertZeroAllocs(t, "SubsetOf", func() { sinkBool = a.SubsetOf(b) })
	assertZeroAllocs(t, "Has", func() { sinkBool = b.Has(9) })
	assertZeroAllocs(t, "Equal", func() { sinkBool = b.Equal(c) })
	_ = sink
	_ = sinkBool

	// Union spilling to 3 tags allocates exactly once (the spill slice).
	if avg := testing.AllocsPerRun(200, func() { sink = b.Union(NewLabel(1)) }); avg > 1 {
		t.Errorf("3-tag Union allocates %.1f times per op, want <= 1", avg)
	}
}

func TestSmallJudgmentsDoNotAllocate(t *testing.T) {
	s := NewLabel(3)
	sw := NewLabel(3, 4)
	caps := CapsFor(3, 4)
	send := LabelPair{Secrecy: s, Integrity: NewLabel(4)}
	recv := LabelPair{Secrecy: sw}
	var sinkBool bool

	assertZeroAllocs(t, "SafeLabelChange", func() { sinkBool = SafeLabelChange(s, sw, caps) })
	assertZeroAllocs(t, "SafeFlow", func() { sinkBool = SafeFlow(send, caps, recv, caps) })
	assertZeroAllocs(t, "CanExport", func() { sinkBool = CanExport(sw, caps) })
	assertZeroAllocs(t, "CapSet.SubsetOf", func() { sinkBool = caps.SubsetOf(caps) })
	assertZeroAllocs(t, "CapSet.Union", func() { _ = caps.Union(NewCapSet(Minus(3))) })
	_ = sinkBool
}

// TestCanonicalRepresentation pins the invariant that every constructor
// produces the inline form for sets of at most two tags, so Equal and
// the serializers may rely on one representation per set.
func TestCanonicalRepresentation(t *testing.T) {
	cases := []Label{
		NewLabel(),
		NewLabel(5),
		NewLabel(5, 2),
		NewLabel(2, 2, 5, 5),
		NewLabel(9, 5, 7).Subtract(NewLabel(7)),
		NewLabel(9, 5, 7).Intersect(NewLabel(5, 9)),
		NewLabel(1, 2, 3).Remove(3).Remove(1),
	}
	for _, l := range cases {
		if l.Size() <= 2 && l.tags != nil {
			t.Errorf("label %s: %d tags stored in spill slice", l, l.Size())
		}
		if l.tags != nil && len(l.tags) < 3 {
			t.Errorf("label %s: spill slice of %d", l, len(l.tags))
		}
	}
	// Mixed-representation equality must still hold.
	big := NewLabel(1, 2, 3)
	small := big.Remove(3)
	if !small.Equal(NewLabel(1, 2)) {
		t.Error("inline/spill equality broken")
	}
	var round Label
	if err := round.UnmarshalBinary(mustMarshal(t, small)); err != nil {
		t.Fatal(err)
	}
	if !round.Equal(small) || round.tags != nil {
		t.Errorf("decoded 2-tag label not canonical: %s", round)
	}
}

func mustMarshal(t *testing.T, l Label) []byte {
	t.Helper()
	b, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}
