package difc

import (
	"testing"
)

func lbl(tags ...Tag) Label { return NewLabel(tags...) }

func TestNewLabelDeduplicatesAndSorts(t *testing.T) {
	l := NewLabel(5, 3, 5, 1, 3, 9)
	want := []Tag{1, 3, 5, 9}
	got := l.Tags()
	if len(got) != len(want) {
		t.Fatalf("Tags() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tags() = %v, want %v", got, want)
		}
	}
	if l.Size() != 4 {
		t.Errorf("Size() = %d, want 4", l.Size())
	}
}

func TestNewLabelRejectsZeroTag(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLabel(0) did not panic")
		}
	}()
	NewLabel(0)
}

func TestLabelHas(t *testing.T) {
	l := lbl(2, 4, 6, 8)
	for _, tt := range []struct {
		tag  Tag
		want bool
	}{
		{1, false}, {2, true}, {3, false}, {4, true},
		{6, true}, {7, false}, {8, true}, {9, false},
	} {
		if got := l.Has(tt.tag); got != tt.want {
			t.Errorf("Has(%v) = %v, want %v", tt.tag, got, tt.want)
		}
	}
	if EmptyLabel.Has(1) {
		t.Error("empty label reports Has(1)")
	}
}

func TestLabelEqual(t *testing.T) {
	cases := []struct {
		a, b Label
		want bool
	}{
		{lbl(), lbl(), true},
		{lbl(1), lbl(1), true},
		{lbl(1, 2), lbl(2, 1), true},
		{lbl(1), lbl(2), false},
		{lbl(1, 2), lbl(1), false},
		{lbl(1), lbl(1, 2), false},
		{EmptyLabel, lbl(3), false},
	}
	for _, tt := range cases {
		if got := tt.a.Equal(tt.b); got != tt.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.Equal(tt.a); got != tt.want {
			t.Errorf("Equal not symmetric for %v, %v", tt.a, tt.b)
		}
	}
}

func TestLabelHash64(t *testing.T) {
	// Equal labels hash equal regardless of construction order or
	// representation (inline vs spilled).
	pairs := [][2]Label{
		{lbl(1, 2), lbl(2, 1)},
		{lbl(1, 2, 3), lbl(3, 2, 1)},
		{lbl(5), lbl(5, 5)},
	}
	for _, p := range pairs {
		if p[0].Hash64() != p[1].Hash64() {
			t.Errorf("equal labels %v, %v hash differently", p[0], p[1])
		}
	}
	// Distinct small labels should not trivially collide.
	seen := map[uint64]Label{}
	for _, l := range []Label{lbl(), lbl(1), lbl(2), lbl(1, 2), lbl(1, 3), lbl(1, 2, 3)} {
		h := l.Hash64()
		if prev, ok := seen[h]; ok {
			t.Errorf("labels %v and %v collide at %x", prev, l, h)
		}
		seen[h] = l
	}
	if n := testing.AllocsPerRun(100, func() { _ = lbl(1, 2).Hash64() }); n != 0 {
		t.Errorf("Hash64 allocates %v times", n)
	}
}

func TestLabelSubsetOf(t *testing.T) {
	cases := []struct {
		a, b Label
		want bool
	}{
		{lbl(), lbl(), true},
		{lbl(), lbl(1, 2, 3), true},
		{lbl(1), lbl(1, 2, 3), true},
		{lbl(2), lbl(1, 2, 3), true},
		{lbl(3), lbl(1, 2, 3), true},
		{lbl(1, 3), lbl(1, 2, 3), true},
		{lbl(1, 2, 3), lbl(1, 2, 3), true},
		{lbl(4), lbl(1, 2, 3), false},
		{lbl(1, 4), lbl(1, 2, 3), false},
		{lbl(1, 2, 3), lbl(1, 2), false},
		{lbl(1, 2, 3), lbl(), false},
	}
	for _, tt := range cases {
		if got := tt.a.SubsetOf(tt.b); got != tt.want {
			t.Errorf("%v.SubsetOf(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLabelUnion(t *testing.T) {
	cases := []struct {
		a, b, want Label
	}{
		{lbl(), lbl(), lbl()},
		{lbl(1), lbl(), lbl(1)},
		{lbl(), lbl(2), lbl(2)},
		{lbl(1, 3), lbl(2, 4), lbl(1, 2, 3, 4)},
		{lbl(1, 2), lbl(2, 3), lbl(1, 2, 3)},
		{lbl(5, 6), lbl(5, 6), lbl(5, 6)},
		{lbl(9), lbl(1), lbl(1, 9)},
	}
	for _, tt := range cases {
		if got := tt.a.Union(tt.b); !got.Equal(tt.want) {
			t.Errorf("%v.Union(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLabelIntersect(t *testing.T) {
	cases := []struct {
		a, b, want Label
	}{
		{lbl(), lbl(), lbl()},
		{lbl(1), lbl(), lbl()},
		{lbl(1, 2, 3), lbl(2, 3, 4), lbl(2, 3)},
		{lbl(1, 2), lbl(3, 4), lbl()},
		{lbl(7), lbl(7), lbl(7)},
	}
	for _, tt := range cases {
		if got := tt.a.Intersect(tt.b); !got.Equal(tt.want) {
			t.Errorf("%v.Intersect(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLabelSubtract(t *testing.T) {
	cases := []struct {
		a, b, want Label
	}{
		{lbl(), lbl(), lbl()},
		{lbl(1, 2, 3), lbl(), lbl(1, 2, 3)},
		{lbl(1, 2, 3), lbl(2), lbl(1, 3)},
		{lbl(1, 2, 3), lbl(1, 2, 3), lbl()},
		{lbl(1, 2, 3), lbl(4, 5), lbl(1, 2, 3)},
		{lbl(), lbl(1), lbl()},
	}
	for _, tt := range cases {
		if got := tt.a.Subtract(tt.b); !got.Equal(tt.want) {
			t.Errorf("%v.Subtract(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLabelAddRemove(t *testing.T) {
	l := lbl(2, 4)
	if got := l.Add(3); !got.Equal(lbl(2, 3, 4)) {
		t.Errorf("Add(3) = %v", got)
	}
	if got := l.Remove(2); !got.Equal(lbl(4)) {
		t.Errorf("Remove(2) = %v", got)
	}
	// Receiver untouched (immutability).
	if !l.Equal(lbl(2, 4)) {
		t.Errorf("receiver mutated: %v", l)
	}
}

func TestLabelImmutabilityOfTags(t *testing.T) {
	l := lbl(1, 2, 3)
	got := l.Tags()
	got[0] = 99
	if !l.Equal(lbl(1, 2, 3)) {
		t.Error("mutating Tags() result changed the label")
	}
}

func TestLabelStringAndParse(t *testing.T) {
	cases := []Label{lbl(), lbl(1), lbl(1, 2, 3), lbl(1000000)}
	for _, l := range cases {
		s := l.String()
		back, err := ParseLabel(s)
		if err != nil {
			t.Fatalf("ParseLabel(%q): %v", s, err)
		}
		if !back.Equal(l) {
			t.Errorf("round trip %q -> %v, want %v", s, back, l)
		}
	}
	if _, err := ParseLabel("nonsense"); err == nil {
		t.Error("ParseLabel accepted garbage")
	}
	if _, err := ParseLabel("{t0}"); err == nil {
		t.Error("ParseLabel accepted reserved tag 0")
	}
	if _, err := ParseLabel("{tx}"); err == nil {
		t.Error("ParseLabel accepted non-numeric tag")
	}
}

func TestTagStringAndParse(t *testing.T) {
	for _, tag := range []Tag{1, 42, 1 << 40} {
		got, err := ParseTag(tag.String())
		if err != nil || got != tag {
			t.Errorf("ParseTag(%q) = %v, %v", tag.String(), got, err)
		}
	}
	for _, bad := range []string{"", "t", "x5", "t-3", "t0"} {
		if _, err := ParseTag(bad); err == nil {
			t.Errorf("ParseTag(%q) succeeded, want error", bad)
		}
	}
}
