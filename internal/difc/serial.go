package difc

import (
	"encoding/binary"
	"fmt"
)

// Wire encoding for labels and capability sets, used by the persistent
// store and the federation sync protocol. The format is deliberately
// simple and self-delimiting:
//
//	label   := uvarint(count) count*uvarint(tag)
//	capset  := label(plus) label(minus)
//	pair    := label(secrecy) label(integrity)
//
// Tags are delta-encoded (each varint is the difference from the previous
// tag), exploiting the sorted representation; typical small labels encode
// in a handful of bytes.

// AppendBinary appends the wire form of the label to b and returns the
// extended slice.
func (l Label) AppendBinary(b []byte) []byte {
	n := l.Size()
	b = binary.AppendUvarint(b, uint64(n))
	prev := Tag(0)
	for i := 0; i < n; i++ {
		t := l.at(i)
		b = binary.AppendUvarint(b, uint64(t-prev))
		prev = t
	}
	return b
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (l Label) MarshalBinary() ([]byte, error) {
	return l.AppendBinary(nil), nil
}

// DecodeLabel decodes a label from the front of b, returning the label
// and the number of bytes consumed.
func DecodeLabel(b []byte) (Label, int, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return Label{}, 0, fmt.Errorf("difc: truncated label header")
	}
	if n > uint64(len(b)) { // each tag takes >=1 byte; cheap bound check
		return Label{}, 0, fmt.Errorf("difc: label count %d exceeds input", n)
	}
	off := k
	tags := make([]Tag, 0, n)
	prev := Tag(0)
	for i := uint64(0); i < n; i++ {
		d, k := binary.Uvarint(b[off:])
		if k <= 0 {
			return Label{}, 0, fmt.Errorf("difc: truncated label body")
		}
		off += k
		t := prev + Tag(d)
		if t == 0 || (i > 0 && t <= prev) {
			return Label{}, 0, fmt.Errorf("difc: non-monotone tag encoding")
		}
		tags = append(tags, t)
		prev = t
	}
	return labelFromSorted(tags), off, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. Trailing bytes
// are rejected so corruption cannot hide behind a valid prefix.
func (l *Label) UnmarshalBinary(b []byte) error {
	lab, n, err := DecodeLabel(b)
	if err != nil {
		return err
	}
	if n != len(b) {
		return fmt.Errorf("difc: %d trailing bytes after label", len(b)-n)
	}
	*l = lab
	return nil
}

// AppendBinary appends the wire form of the capability set.
func (c CapSet) AppendBinary(b []byte) []byte {
	b = c.plus.AppendBinary(b)
	b = c.minus.AppendBinary(b)
	return b
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c CapSet) MarshalBinary() ([]byte, error) {
	return c.AppendBinary(nil), nil
}

// DecodeCapSet decodes a capability set from the front of b, returning
// the set and the number of bytes consumed.
func DecodeCapSet(b []byte) (CapSet, int, error) {
	plus, n1, err := DecodeLabel(b)
	if err != nil {
		return CapSet{}, 0, fmt.Errorf("difc: capset plus: %w", err)
	}
	minus, n2, err := DecodeLabel(b[n1:])
	if err != nil {
		return CapSet{}, 0, fmt.Errorf("difc: capset minus: %w", err)
	}
	return CapSet{plus: plus, minus: minus}, n1 + n2, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (c *CapSet) UnmarshalBinary(b []byte) error {
	cs, n, err := DecodeCapSet(b)
	if err != nil {
		return err
	}
	if n != len(b) {
		return fmt.Errorf("difc: %d trailing bytes after capset", len(b)-n)
	}
	*c = cs
	return nil
}

// AppendBinary appends the wire form of the label pair.
func (lp LabelPair) AppendBinary(b []byte) []byte {
	b = lp.Secrecy.AppendBinary(b)
	b = lp.Integrity.AppendBinary(b)
	return b
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (lp LabelPair) MarshalBinary() ([]byte, error) {
	return lp.AppendBinary(nil), nil
}

// DecodeLabelPair decodes a label pair from the front of b.
func DecodeLabelPair(b []byte) (LabelPair, int, error) {
	s, n1, err := DecodeLabel(b)
	if err != nil {
		return LabelPair{}, 0, fmt.Errorf("difc: pair secrecy: %w", err)
	}
	i, n2, err := DecodeLabel(b[n1:])
	if err != nil {
		return LabelPair{}, 0, fmt.Errorf("difc: pair integrity: %w", err)
	}
	return LabelPair{Secrecy: s, Integrity: i}, n1 + n2, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (lp *LabelPair) UnmarshalBinary(b []byte) error {
	p, n, err := DecodeLabelPair(b)
	if err != nil {
		return err
	}
	if n != len(b) {
		return fmt.Errorf("difc: %d trailing bytes after label pair", len(b)-n)
	}
	*lp = p
	return nil
}
