package difc

import (
	"fmt"
	"sort"
	"strings"
)

// CapKind distinguishes the two capability flavours of the Flume model.
type CapKind uint8

const (
	// CapPlus (t+) confers the right to add tag t to one's own label:
	// for secrecy, the right to read t-tagged data (and become tainted);
	// for integrity, the right to endorse data with t.
	CapPlus CapKind = iota
	// CapMinus (t-) confers the right to drop tag t from one's own label:
	// for secrecy, the right to DECLASSIFY t-tagged data; for integrity,
	// the right to shed an endorsement.
	CapMinus
)

func (k CapKind) String() string {
	if k == CapPlus {
		return "+"
	}
	return "-"
}

// Cap is a single capability: a tag together with a plus or minus right.
type Cap struct {
	Tag  Tag
	Kind CapKind
}

// String renders "t7+" or "t7-", the form accepted by ParseCap.
func (c Cap) String() string { return c.Tag.String() + c.Kind.String() }

// ParseCap parses the form produced by Cap.String.
func ParseCap(s string) (Cap, error) {
	if len(s) < 3 {
		return Cap{}, fmt.Errorf("difc: malformed capability %q", s)
	}
	var kind CapKind
	switch s[len(s)-1] {
	case '+':
		kind = CapPlus
	case '-':
		kind = CapMinus
	default:
		return Cap{}, fmt.Errorf("difc: malformed capability %q", s)
	}
	t, err := ParseTag(s[:len(s)-1])
	if err != nil {
		return Cap{}, err
	}
	return Cap{Tag: t, Kind: kind}, nil
}

// Plus returns the t+ capability for tag t.
func Plus(t Tag) Cap { return Cap{Tag: t, Kind: CapPlus} }

// Minus returns the t- capability for tag t.
func Minus(t Tag) Cap { return Cap{Tag: t, Kind: CapMinus} }

// Both returns the dual-privilege pair {t+, t-}; holding both is Flume's
// notion of "owning" tag t.
func Both(t Tag) []Cap { return []Cap{Plus(t), Minus(t)} }

// CapSet is an immutable set of capabilities, stored as two labels: the
// tags for which a plus right is held and the tags for which a minus
// right is held. Like Label, all operations return new values.
type CapSet struct {
	plus  Label
	minus Label
}

// EmptyCaps is the capability set of a process with no privilege at all.
var EmptyCaps = CapSet{}

// NewCapSet builds a capability set from individual capabilities. Sets of
// up to two capabilities (a session's s_u−, a user's {s_u+, w_u+}) are
// built without heap allocation.
func NewCapSet(caps ...Cap) CapSet {
	if len(caps) <= 2 {
		var pa, ma [2]Tag
		np, nm := 0, 0
		for _, c := range caps {
			if c.Kind == CapPlus {
				pa[np] = c.Tag
				np++
			} else {
				ma[nm] = c.Tag
				nm++
			}
		}
		return CapSet{plus: NewLabel(pa[:np]...), minus: NewLabel(ma[:nm]...)}
	}
	var p, m []Tag
	for _, c := range caps {
		switch c.Kind {
		case CapPlus:
			p = append(p, c.Tag)
		case CapMinus:
			m = append(m, c.Tag)
		}
	}
	return CapSet{plus: NewLabel(p...), minus: NewLabel(m...)}
}

// CapSetFromLabels builds a capability set directly from the label of
// plus rights and the label of minus rights. Bulk constructors (the
// provider's per-app capability cache) use it to avoid materializing an
// intermediate []Cap.
func CapSetFromLabels(plus, minus Label) CapSet {
	return CapSet{plus: plus, minus: minus}
}

// CapsFor returns the capability set granting full ownership (t+ and t-)
// of every listed tag.
func CapsFor(tags ...Tag) CapSet {
	l := NewLabel(tags...)
	return CapSet{plus: l, minus: l}
}

// Plus returns the set of tags for which a plus right is held (Flume's
// D_p+ when applied to a process's capability set).
func (c CapSet) Plus() Label { return c.plus }

// Minus returns the set of tags for which a minus right is held (D_p-).
func (c CapSet) Minus() Label { return c.minus }

// HasPlus reports whether the t+ right is held.
func (c CapSet) HasPlus(t Tag) bool { return c.plus.Has(t) }

// HasMinus reports whether the t- right is held.
func (c CapSet) HasMinus(t Tag) bool { return c.minus.Has(t) }

// Owns reports whether both t+ and t- are held (dual privilege).
func (c CapSet) Owns(t Tag) bool { return c.plus.Has(t) && c.minus.Has(t) }

// IsEmpty reports whether no capability is held.
func (c CapSet) IsEmpty() bool { return c.plus.IsEmpty() && c.minus.IsEmpty() }

// Size reports the number of individual capabilities held.
func (c CapSet) Size() int { return c.plus.Size() + c.minus.Size() }

// Has reports whether the specific capability is held.
func (c CapSet) Has(cap Cap) bool {
	if cap.Kind == CapPlus {
		return c.HasPlus(cap.Tag)
	}
	return c.HasMinus(cap.Tag)
}

// Union returns the capability set holding every capability of c or d.
func (c CapSet) Union(d CapSet) CapSet {
	return CapSet{plus: c.plus.Union(d.plus), minus: c.minus.Union(d.minus)}
}

// Grant returns c extended with the given capabilities.
func (c CapSet) Grant(caps ...Cap) CapSet { return c.Union(NewCapSet(caps...)) }

// Revoke returns c with the given capabilities removed.
func (c CapSet) Revoke(caps ...Cap) CapSet {
	rm := NewCapSet(caps...)
	return CapSet{plus: c.plus.Subtract(rm.plus), minus: c.minus.Subtract(rm.minus)}
}

// SubsetOf reports whether every capability of c is also held by d. A
// process may delegate only capabilities it holds; the kernel enforces
// delegation with this check.
func (c CapSet) SubsetOf(d CapSet) bool {
	return c.plus.SubsetOf(d.plus) && c.minus.SubsetOf(d.minus)
}

// Equal reports whether two capability sets hold exactly the same rights.
func (c CapSet) Equal(d CapSet) bool {
	return c.plus.Equal(d.plus) && c.minus.Equal(d.minus)
}

// Caps returns the individual capabilities in deterministic order:
// all plus rights by ascending tag, then all minus rights.
func (c CapSet) Caps() []Cap {
	out := make([]Cap, 0, c.Size())
	for _, t := range c.plus.Tags() {
		out = append(out, Plus(t))
	}
	for _, t := range c.minus.Tags() {
		out = append(out, Minus(t))
	}
	return out
}

// String renders the set as "[t1+,t2+,t1-]"; the empty set renders "[]".
func (c CapSet) String() string {
	caps := c.Caps()
	parts := make([]string, len(caps))
	for i, cp := range caps {
		parts[i] = cp.String()
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// ParseCapSet parses the form produced by CapSet.String.
func ParseCapSet(s string) (CapSet, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return CapSet{}, fmt.Errorf("difc: malformed capability set %q", s)
	}
	inner := s[1 : len(s)-1]
	if inner == "" {
		return CapSet{}, nil
	}
	parts := strings.Split(inner, ",")
	caps := make([]Cap, 0, len(parts))
	for _, p := range parts {
		cp, err := ParseCap(strings.TrimSpace(p))
		if err != nil {
			return CapSet{}, err
		}
		caps = append(caps, cp)
	}
	return NewCapSet(caps...), nil
}

// sortCaps orders capabilities by tag then kind; used by tests to compare
// capability slices irrespective of construction order.
func sortCaps(caps []Cap) {
	sort.Slice(caps, func(i, j int) bool {
		if caps[i].Tag != caps[j].Tag {
			return caps[i].Tag < caps[j].Tag
		}
		return caps[i].Kind < caps[j].Kind
	})
}
