// Package difc implements the decentralized information flow control
// (DIFC) label algebra that underpins the W5 platform.
//
// The model follows Flume (Krohn et al., SOSP 2007), the DIFC system the
// W5 paper names as a suitable substrate (§3.1): opaque tags, secrecy and
// integrity labels that are sets of tags, and per-process capability sets
// that confer the right to add a tag to a label (t+) or drop it (t-).
// The two safety judgments — safe label change and safe message — are
// implemented in rules.go exactly as Flume defines them.
//
// Labels are immutable values: every operation returns a new Label and
// never mutates its receiver, so Labels may be shared freely across
// goroutines without synchronization.
//
// Representation: the request path of the platform is dominated by labels
// of one or two tags (a user's secrecy tag, or secrecy + write tag), so
// Label stores up to two tags inline and only spills to a heap slice for
// three or more. NewLabel, Union, Intersect, Subtract, SubsetOf and the
// safety judgments are all allocation-free in the inline regime — the
// property the request-path benchmarks pin with AllocsPerRun guards.
package difc

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tag is an opaque identifier minted by the kernel's tag allocator.
// A tag by itself carries no meaning; meaning comes from which labels
// contain it and which processes hold capabilities for it. Tag 0 is
// reserved and never minted.
type Tag uint64

// String renders the tag as "t<decimal>", the form accepted by ParseTag.
func (t Tag) String() string { return "t" + strconv.FormatUint(uint64(t), 10) }

// ParseTag parses the "t<decimal>" form produced by Tag.String.
func ParseTag(s string) (Tag, error) {
	if len(s) < 2 || s[0] != 't' {
		return 0, fmt.Errorf("difc: malformed tag %q", s)
	}
	n, err := strconv.ParseUint(s[1:], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("difc: malformed tag %q: %v", s, err)
	}
	if n == 0 {
		return 0, fmt.Errorf("difc: tag 0 is reserved")
	}
	return Tag(n), nil
}

// Label is an immutable set of tags. The zero value is the empty label,
// which is the label of public data and of the world outside the security
// perimeter.
//
// Canonical forms (maintained by every constructor in this package):
//
//	size 0: t0 == 0, t1 == 0, tags == nil
//	size 1: t0 != 0, t1 == 0, tags == nil
//	size 2: 0 < t0 < t1,      tags == nil
//	size ≥3: tags sorted ascending, deduplicated; t0, t1 unused
type Label struct {
	t0, t1 Tag   // inline storage for the dominant 1–2-tag case
	tags   []Tag // spill storage; never mutated after creation
}

// EmptyLabel is the label of public data: no secrecy, no integrity.
var EmptyLabel = Label{}

// labelFromSorted wraps an already-sorted, deduplicated tag slice in the
// canonical representation. It retains ts only when len(ts) >= 3.
func labelFromSorted(ts []Tag) Label {
	switch len(ts) {
	case 0:
		return Label{}
	case 1:
		return Label{t0: ts[0]}
	case 2:
		return Label{t0: ts[0], t1: ts[1]}
	default:
		return Label{tags: ts}
	}
}

// NewLabel builds a label from the given tags. Duplicates are removed and
// the zero tag, if present, is rejected. Labels of up to two tags are
// built without heap allocation.
func NewLabel(tags ...Tag) Label {
	switch len(tags) {
	case 0:
		return Label{}
	case 1:
		if tags[0] == 0 {
			panic("difc: tag 0 in label")
		}
		return Label{t0: tags[0]}
	case 2:
		a, b := tags[0], tags[1]
		if a == 0 || b == 0 {
			panic("difc: tag 0 in label")
		}
		switch {
		case a == b:
			return Label{t0: a}
		case a < b:
			return Label{t0: a, t1: b}
		default:
			return Label{t0: b, t1: a}
		}
	}
	ts := make([]Tag, 0, len(tags))
	for _, t := range tags {
		if t == 0 {
			panic("difc: tag 0 in label")
		}
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := ts[:1]
	for _, t := range ts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return labelFromSorted(out)
}

// Size reports the number of tags in the label.
func (l Label) Size() int {
	if l.tags != nil {
		return len(l.tags)
	}
	if l.t1 != 0 {
		return 2
	}
	if l.t0 != 0 {
		return 1
	}
	return 0
}

// at returns the i-th smallest tag; i must be < Size().
func (l Label) at(i int) Tag {
	if l.tags != nil {
		return l.tags[i]
	}
	if i == 0 {
		return l.t0
	}
	return l.t1
}

// IsEmpty reports whether the label contains no tags.
func (l Label) IsEmpty() bool { return l.t0 == 0 && l.tags == nil }

// Has reports whether tag t is in the label.
func (l Label) Has(t Tag) bool {
	if l.tags == nil {
		return t != 0 && (l.t0 == t || l.t1 == t)
	}
	i := sort.Search(len(l.tags), func(i int) bool { return l.tags[i] >= t })
	return i < len(l.tags) && l.tags[i] == t
}

// Tags returns a copy of the label's tags in ascending order.
func (l Label) Tags() []Tag {
	n := l.Size()
	if n == 0 {
		return nil
	}
	out := make([]Tag, n)
	for i := range out {
		out[i] = l.at(i)
	}
	return out
}

// Hash64 returns an FNV-1a hash over the label's tags in ascending
// order. Equal labels hash identically regardless of construction
// order, and the computation allocates nothing — the table store's
// per-table label interner buckets on it.
func (l Label) Hash64() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	n := l.Size()
	for i := 0; i < n; i++ {
		t := uint64(l.at(i))
		for s := 0; s < 64; s += 8 {
			h ^= (t >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

// Equal reports whether two labels contain exactly the same tags.
func (l Label) Equal(m Label) bool {
	if l.tags == nil && m.tags == nil {
		return l.t0 == m.t0 && l.t1 == m.t1
	}
	n := l.Size()
	if n != m.Size() {
		return false
	}
	for i := 0; i < n; i++ {
		if l.at(i) != m.at(i) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every tag of l is also in m (l ⊆ m). For
// secrecy labels this is the "can flow to" order: data labeled l may flow
// to a container labeled m without any privilege.
func (l Label) SubsetOf(m Label) bool {
	if l.tags == nil && m.tags == nil {
		if l.t0 == 0 {
			return true
		}
		if l.t0 != m.t0 && l.t0 != m.t1 {
			return false
		}
		return l.t1 == 0 || l.t1 == m.t0 || l.t1 == m.t1
	}
	ln, mn := l.Size(), m.Size()
	if ln > mn {
		return false
	}
	j := 0
	for i := 0; i < ln; i++ {
		t := l.at(i)
		for j < mn && m.at(j) < t {
			j++
		}
		if j >= mn || m.at(j) != t {
			return false
		}
		j++
	}
	return true
}

// merge is the shared linear-merge core of Union, Intersect and Subtract.
// mode selects which elements survive: union keeps everything, intersect
// keeps only common tags, subtract keeps tags of l absent from m. Results
// of up to two tags are returned inline without allocating; larger
// results spill to a heap slice sized by capHint.
const (
	mergeUnion = iota
	mergeIntersect
	mergeSubtract
)

func (l Label) merge(m Label, mode int) Label {
	ln, mn := l.Size(), m.Size()
	var b0, b1 Tag // inline accumulator
	var out []Tag  // nil while the result fits inline
	n := 0
	i, j := 0, 0
	emit := func(t Tag) {
		switch {
		case out != nil:
			out = append(out, t)
		case n == 0:
			b0 = t
			n = 1
		case n == 1:
			b1 = t
			n = 2
		default:
			out = make([]Tag, 0, ln+mn)
			out = append(out, b0, b1, t)
		}
	}
	for i < ln && j < mn {
		a, b := l.at(i), m.at(j)
		switch {
		case a < b:
			if mode != mergeIntersect {
				emit(a)
			}
			i++
		case a > b:
			if mode == mergeUnion {
				emit(b)
			}
			j++
		default:
			if mode != mergeSubtract {
				emit(a)
			}
			i++
			j++
		}
	}
	if mode != mergeIntersect {
		for ; i < ln; i++ {
			emit(l.at(i))
		}
	}
	if mode == mergeUnion {
		for ; j < mn; j++ {
			emit(m.at(j))
		}
	}
	if out != nil {
		return Label{tags: out}
	}
	switch n {
	case 0:
		return Label{}
	case 1:
		return Label{t0: b0}
	default:
		return Label{t0: b0, t1: b1}
	}
}

// Union returns l ∪ m. For secrecy labels, the union is the join: the
// label of data derived from sources labeled l and m.
func (l Label) Union(m Label) Label {
	if l.IsEmpty() {
		return m
	}
	if m.IsEmpty() {
		return l
	}
	if l.tags == nil && m.tags == nil {
		if m.t1 == 0 {
			return l.addOne(m.t0)
		}
		if l.t1 == 0 {
			return m.addOne(l.t0)
		}
		if l.t0 == m.t0 && l.t1 == m.t1 {
			return l
		}
		return union22(l.t0, l.t1, m.t0, m.t1)
	}
	// Absorption fast paths: raising an already-dominating label is the
	// common case on the read/taint path.
	if m.SubsetOf(l) {
		return l
	}
	if l.SubsetOf(m) {
		return m
	}
	return l.merge(m, mergeUnion)
}

// addOne returns l ∪ {t} for an inline-form l (size ≤ 2).
func (l Label) addOne(t Tag) Label {
	if l.t0 == t || l.t1 == t {
		return l
	}
	if l.t1 == 0 {
		if t < l.t0 {
			return Label{t0: t, t1: l.t0}
		}
		return Label{t0: l.t0, t1: t}
	}
	out := make([]Tag, 3)
	switch {
	case t < l.t0:
		out[0], out[1], out[2] = t, l.t0, l.t1
	case t < l.t1:
		out[0], out[1], out[2] = l.t0, t, l.t1
	default:
		out[0], out[1], out[2] = l.t0, l.t1, t
	}
	return Label{tags: out}
}

// union22 merges two distinct sorted pairs; the result has 2–4 tags.
func union22(a0, a1, b0, b1 Tag) Label {
	as := [2]Tag{a0, a1}
	bs := [2]Tag{b0, b1}
	var buf [4]Tag
	n, i, j := 0, 0, 0
	for i < 2 && j < 2 {
		switch {
		case as[i] < bs[j]:
			buf[n] = as[i]
			i++
		case as[i] > bs[j]:
			buf[n] = bs[j]
			j++
		default:
			buf[n] = as[i]
			i++
			j++
		}
		n++
	}
	for ; i < 2; i++ {
		buf[n] = as[i]
		n++
	}
	for ; j < 2; j++ {
		buf[n] = bs[j]
		n++
	}
	if n == 2 {
		return Label{t0: buf[0], t1: buf[1]}
	}
	out := make([]Tag, n)
	copy(out, buf[:n])
	return Label{tags: out}
}

// Intersect returns l ∩ m. For integrity labels, the intersection is the
// meet: data derived from sources with integrity l and m carries only the
// endorsements common to both.
func (l Label) Intersect(m Label) Label {
	if l.IsEmpty() || m.IsEmpty() {
		return Label{}
	}
	if l.tags == nil && m.tags == nil {
		in0 := l.t0 == m.t0 || l.t0 == m.t1
		in1 := l.t1 != 0 && (l.t1 == m.t0 || l.t1 == m.t1)
		switch {
		case in0 && in1:
			return l
		case in0:
			return Label{t0: l.t0}
		case in1:
			return Label{t0: l.t1}
		default:
			return Label{}
		}
	}
	return l.merge(m, mergeIntersect)
}

// Subtract returns l − m: the tags of l not present in m.
func (l Label) Subtract(m Label) Label {
	if l.IsEmpty() || m.IsEmpty() {
		return l
	}
	if l.tags == nil && m.tags == nil {
		keep0 := l.t0 != m.t0 && l.t0 != m.t1
		keep1 := l.t1 != 0 && l.t1 != m.t0 && l.t1 != m.t1
		switch {
		case keep0 && keep1:
			return l
		case keep0:
			return Label{t0: l.t0}
		case keep1:
			return Label{t0: l.t1}
		default:
			return Label{}
		}
	}
	return l.merge(m, mergeSubtract)
}

// Add returns l ∪ {t}.
func (l Label) Add(t Tag) Label { return l.Union(NewLabel(t)) }

// Remove returns l − {t}.
func (l Label) Remove(t Tag) Label { return l.Subtract(NewLabel(t)) }

// String renders the label as "{t1,t5,t9}"; the empty label renders "{}".
func (l Label) String() string {
	if l.IsEmpty() {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	n := l.Size()
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.at(i).String())
	}
	b.WriteByte('}')
	return b.String()
}

// ParseLabel parses the form produced by Label.String.
func ParseLabel(s string) (Label, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return Label{}, fmt.Errorf("difc: malformed label %q", s)
	}
	inner := s[1 : len(s)-1]
	if inner == "" {
		return Label{}, nil
	}
	parts := strings.Split(inner, ",")
	tags := make([]Tag, 0, len(parts))
	for _, p := range parts {
		t, err := ParseTag(strings.TrimSpace(p))
		if err != nil {
			return Label{}, err
		}
		tags = append(tags, t)
	}
	return NewLabel(tags...), nil
}
