// Package difc implements the decentralized information flow control
// (DIFC) label algebra that underpins the W5 platform.
//
// The model follows Flume (Krohn et al., SOSP 2007), the DIFC system the
// W5 paper names as a suitable substrate (§3.1): opaque tags, secrecy and
// integrity labels that are sets of tags, and per-process capability sets
// that confer the right to add a tag to a label (t+) or drop it (t-).
// The two safety judgments — safe label change and safe message — are
// implemented in rules.go exactly as Flume defines them.
//
// Labels are immutable values: every operation returns a new Label and
// never mutates its receiver, so Labels may be shared freely across
// goroutines without synchronization.
package difc

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tag is an opaque identifier minted by the kernel's tag allocator.
// A tag by itself carries no meaning; meaning comes from which labels
// contain it and which processes hold capabilities for it. Tag 0 is
// reserved and never minted.
type Tag uint64

// String renders the tag as "t<decimal>", the form accepted by ParseTag.
func (t Tag) String() string { return "t" + strconv.FormatUint(uint64(t), 10) }

// ParseTag parses the "t<decimal>" form produced by Tag.String.
func ParseTag(s string) (Tag, error) {
	if len(s) < 2 || s[0] != 't' {
		return 0, fmt.Errorf("difc: malformed tag %q", s)
	}
	n, err := strconv.ParseUint(s[1:], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("difc: malformed tag %q: %v", s, err)
	}
	if n == 0 {
		return 0, fmt.Errorf("difc: tag 0 is reserved")
	}
	return Tag(n), nil
}

// Label is an immutable set of tags. The zero value is the empty label,
// which is the label of public data and of the world outside the security
// perimeter. Internally the tags are kept sorted and deduplicated, which
// makes subset and join operations linear merges.
type Label struct {
	tags []Tag // sorted ascending, no duplicates; never mutated after creation
}

// EmptyLabel is the label of public data: no secrecy, no integrity.
var EmptyLabel = Label{}

// NewLabel builds a label from the given tags. Duplicates are removed and
// the zero tag, if present, is rejected.
func NewLabel(tags ...Tag) Label {
	if len(tags) == 0 {
		return Label{}
	}
	ts := make([]Tag, 0, len(tags))
	for _, t := range tags {
		if t == 0 {
			panic("difc: tag 0 in label")
		}
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := ts[:1]
	for _, t := range ts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return Label{tags: out}
}

// Size reports the number of tags in the label.
func (l Label) Size() int { return len(l.tags) }

// IsEmpty reports whether the label contains no tags.
func (l Label) IsEmpty() bool { return len(l.tags) == 0 }

// Has reports whether tag t is in the label.
func (l Label) Has(t Tag) bool {
	i := sort.Search(len(l.tags), func(i int) bool { return l.tags[i] >= t })
	return i < len(l.tags) && l.tags[i] == t
}

// Tags returns a copy of the label's tags in ascending order.
func (l Label) Tags() []Tag {
	out := make([]Tag, len(l.tags))
	copy(out, l.tags)
	return out
}

// Equal reports whether two labels contain exactly the same tags.
func (l Label) Equal(m Label) bool {
	if len(l.tags) != len(m.tags) {
		return false
	}
	for i, t := range l.tags {
		if m.tags[i] != t {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every tag of l is also in m (l ⊆ m). For
// secrecy labels this is the "can flow to" order: data labeled l may flow
// to a container labeled m without any privilege.
func (l Label) SubsetOf(m Label) bool {
	if len(l.tags) > len(m.tags) {
		return false
	}
	i := 0
	for _, t := range l.tags {
		for i < len(m.tags) && m.tags[i] < t {
			i++
		}
		if i >= len(m.tags) || m.tags[i] != t {
			return false
		}
		i++
	}
	return true
}

// Union returns l ∪ m. For secrecy labels, the union is the join: the
// label of data derived from sources labeled l and m.
func (l Label) Union(m Label) Label {
	if l.IsEmpty() {
		return m
	}
	if m.IsEmpty() {
		return l
	}
	out := make([]Tag, 0, len(l.tags)+len(m.tags))
	i, j := 0, 0
	for i < len(l.tags) && j < len(m.tags) {
		switch {
		case l.tags[i] < m.tags[j]:
			out = append(out, l.tags[i])
			i++
		case l.tags[i] > m.tags[j]:
			out = append(out, m.tags[j])
			j++
		default:
			out = append(out, l.tags[i])
			i++
			j++
		}
	}
	out = append(out, l.tags[i:]...)
	out = append(out, m.tags[j:]...)
	return Label{tags: out}
}

// Intersect returns l ∩ m. For integrity labels, the intersection is the
// meet: data derived from sources with integrity l and m carries only the
// endorsements common to both.
func (l Label) Intersect(m Label) Label {
	if l.IsEmpty() || m.IsEmpty() {
		return Label{}
	}
	out := make([]Tag, 0, min(len(l.tags), len(m.tags)))
	i, j := 0, 0
	for i < len(l.tags) && j < len(m.tags) {
		switch {
		case l.tags[i] < m.tags[j]:
			i++
		case l.tags[i] > m.tags[j]:
			j++
		default:
			out = append(out, l.tags[i])
			i++
			j++
		}
	}
	if len(out) == 0 {
		return Label{}
	}
	return Label{tags: out}
}

// Subtract returns l − m: the tags of l not present in m.
func (l Label) Subtract(m Label) Label {
	if l.IsEmpty() || m.IsEmpty() {
		return l
	}
	out := make([]Tag, 0, len(l.tags))
	j := 0
	for _, t := range l.tags {
		for j < len(m.tags) && m.tags[j] < t {
			j++
		}
		if j < len(m.tags) && m.tags[j] == t {
			continue
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return Label{}
	}
	return Label{tags: out}
}

// Add returns l ∪ {t}.
func (l Label) Add(t Tag) Label { return l.Union(NewLabel(t)) }

// Remove returns l − {t}.
func (l Label) Remove(t Tag) Label { return l.Subtract(NewLabel(t)) }

// String renders the label as "{t1,t5,t9}"; the empty label renders "{}".
func (l Label) String() string {
	if l.IsEmpty() {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range l.tags {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}

// ParseLabel parses the form produced by Label.String.
func ParseLabel(s string) (Label, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return Label{}, fmt.Errorf("difc: malformed label %q", s)
	}
	inner := s[1 : len(s)-1]
	if inner == "" {
		return Label{}, nil
	}
	parts := strings.Split(inner, ",")
	tags := make([]Tag, 0, len(parts))
	for _, p := range parts {
		t, err := ParseTag(strings.TrimSpace(p))
		if err != nil {
			return Label{}, err
		}
		tags = append(tags, t)
	}
	return NewLabel(tags...), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
