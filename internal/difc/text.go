package difc

// Text marshaling so labels and capability sets embed naturally in JSON
// documents (persistent snapshots, federation messages, w5ctl output).
// The textual forms are the ones produced by String and accepted by the
// corresponding Parse functions.

// MarshalText implements encoding.TextMarshaler.
func (t Tag) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (t *Tag) UnmarshalText(b []byte) error {
	v, err := ParseTag(string(b))
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (l Label) MarshalText() ([]byte, error) { return []byte(l.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (l *Label) UnmarshalText(b []byte) error {
	v, err := ParseLabel(string(b))
	if err != nil {
		return err
	}
	*l = v
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (c CapSet) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (c *CapSet) UnmarshalText(b []byte) error {
	v, err := ParseCapSet(string(b))
	if err != nil {
		return err
	}
	*c = v
	return nil
}
