package difc

// Property-based tests of the label algebra using testing/quick. These
// pin down the lattice laws that the kernel's security argument depends
// on: if any of these fail, flow checks are not sound.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate lets quick produce random small labels (0-12 tags drawn from a
// small universe so that overlaps are common).
func (Label) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(13)
	tags := make([]Tag, 0, n)
	for i := 0; i < n; i++ {
		tags = append(tags, Tag(r.Intn(24)+1))
	}
	return reflect.ValueOf(NewLabel(tags...))
}

// Generate produces random capability sets over the same tag universe.
func (CapSet) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(9)
	caps := make([]Cap, 0, n)
	for i := 0; i < n; i++ {
		c := Cap{Tag: Tag(r.Intn(24) + 1)}
		if r.Intn(2) == 1 {
			c.Kind = CapMinus
		}
		caps = append(caps, c)
	}
	return reflect.ValueOf(NewCapSet(caps...))
}

var quickCfg = &quick.Config{MaxCount: 2000}

func TestQuickUnionCommutative(t *testing.T) {
	f := func(a, b Label) bool { return a.Union(b).Equal(b.Union(a)) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionAssociative(t *testing.T) {
	f := func(a, b, c Label) bool {
		return a.Union(b).Union(c).Equal(a.Union(b.Union(c)))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionIdempotent(t *testing.T) {
	f := func(a Label) bool { return a.Union(a).Equal(a) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectCommutative(t *testing.T) {
	f := func(a, b Label) bool { return a.Intersect(b).Equal(b.Intersect(a)) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickAbsorption(t *testing.T) {
	// a ∪ (a ∩ b) == a and a ∩ (a ∪ b) == a — the lattice absorption laws.
	f := func(a, b Label) bool {
		return a.Union(a.Intersect(b)).Equal(a) && a.Intersect(a.Union(b)).Equal(a)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsetPartialOrder(t *testing.T) {
	refl := func(a Label) bool { return a.SubsetOf(a) }
	if err := quick.Check(refl, quickCfg); err != nil {
		t.Errorf("reflexivity: %v", err)
	}
	antisym := func(a, b Label) bool {
		if a.SubsetOf(b) && b.SubsetOf(a) {
			return a.Equal(b)
		}
		return true
	}
	if err := quick.Check(antisym, quickCfg); err != nil {
		t.Errorf("antisymmetry: %v", err)
	}
	trans := func(a, b, c Label) bool {
		if a.SubsetOf(b) && b.SubsetOf(c) {
			return a.SubsetOf(c)
		}
		return true
	}
	if err := quick.Check(trans, quickCfg); err != nil {
		t.Errorf("transitivity: %v", err)
	}
}

func TestQuickUnionIsJoin(t *testing.T) {
	// a ∪ b is an upper bound of both and below any other upper bound.
	f := func(a, b, c Label) bool {
		u := a.Union(b)
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		if a.SubsetOf(c) && b.SubsetOf(c) && !u.SubsetOf(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSubtractDisjoint(t *testing.T) {
	f := func(a, b Label) bool {
		d := a.Subtract(b)
		return d.Intersect(b).IsEmpty() && d.SubsetOf(a) &&
			d.Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(a Label) bool {
		b, err := a.MarshalBinary()
		if err != nil {
			return false
		}
		var back Label
		if back.UnmarshalBinary(b) != nil {
			return false
		}
		return back.Equal(a)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(a Label) bool {
		back, err := ParseLabel(a.String())
		return err == nil && back.Equal(a)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCapSetRoundTrip(t *testing.T) {
	f := func(c CapSet) bool {
		b, err := c.MarshalBinary()
		if err != nil {
			return false
		}
		var back CapSet
		if back.UnmarshalBinary(b) != nil {
			return false
		}
		s, err := ParseCapSet(c.String())
		return err == nil && back.Equal(c) && s.Equal(c)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickNoPrivilegeMonotone: with no capabilities anywhere, messages
// are safe exactly when the flow is monotone in the lattice. This is the
// "no privilege, no declassification" soundness baseline.
func TestQuickNoPrivilegeMonotone(t *testing.T) {
	f := func(s1, s2 Label) bool {
		return SafeMessage(s1, EmptyCaps, s2, EmptyCaps) == s1.SubsetOf(s2)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickPrivilegeMonotonicity: granting MORE capabilities never turns
// a safe operation unsafe.
func TestQuickPrivilegeMonotonicity(t *testing.T) {
	f := func(s1, s2 Label, c1, c2, extra CapSet) bool {
		if SafeMessage(s1, c1, s2, c2) {
			if !SafeMessage(s1, c1.Union(extra), s2, c2) {
				return false
			}
			if !SafeMessage(s1, c1, s2, c2.Union(extra)) {
				return false
			}
		}
		if CanExport(s1, c1) && !CanExport(s1, c1.Union(extra)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSafeLabelChangeSound: any change SafeLabelChange admits is
// decomposable into adds covered by D+ and drops covered by D-.
func TestQuickSafeLabelChangeSound(t *testing.T) {
	f := func(old, new Label, caps CapSet) bool {
		ok := SafeLabelChange(old, new, caps)
		adds := new.Subtract(old)
		drops := old.Subtract(new)
		manual := adds.SubsetOf(caps.Plus()) && drops.SubsetOf(caps.Minus())
		return ok == manual
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickExportEquivalence: CanExport must agree with SafeMessage to an
// empty-labeled, capability-less receiver — the definition of crossing
// the perimeter.
func TestQuickExportEquivalence(t *testing.T) {
	f := func(s Label, caps CapSet) bool {
		return CanExport(s, caps) == SafeMessage(s, caps, EmptyLabel, EmptyCaps)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCheckFlowAgreement: the diagnostic CheckFlow must agree with
// the boolean SafeFlow on every input.
func TestQuickCheckFlowAgreement(t *testing.T) {
	f := func(s1, i1, s2, i2 Label, c1, c2 CapSet) bool {
		send := LabelPair{Secrecy: s1, Integrity: i1}
		recv := LabelPair{Secrecy: s2, Integrity: i2}
		return SafeFlow(send, c1, recv, c2) == (CheckFlow(send, c1, recv, c2) == nil)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickJoinSafety: data joined from two sources can flow anywhere
// both sources could flow (no privilege case).
func TestQuickJoinSafety(t *testing.T) {
	f := func(a, b, dst Label) bool {
		if a.SubsetOf(dst) && b.SubsetOf(dst) {
			return a.Union(b).SubsetOf(dst)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
