package difc

import (
	"bytes"
	"testing"
)

func TestLabelBinaryRoundTrip(t *testing.T) {
	cases := []Label{
		lbl(),
		lbl(1),
		lbl(1, 2, 3),
		lbl(1, 1000, 1000000, 1<<40),
		NewLabel(func() []Tag {
			ts := make([]Tag, 200)
			for i := range ts {
				ts[i] = Tag(i*7 + 1)
			}
			return ts
		}()...),
	}
	for _, l := range cases {
		b, err := l.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %v: %v", l, err)
		}
		var back Label
		if err := back.UnmarshalBinary(b); err != nil {
			t.Fatalf("unmarshal %v: %v", l, err)
		}
		if !back.Equal(l) {
			t.Errorf("round trip: got %v, want %v", back, l)
		}
	}
}

func TestLabelBinaryCompactness(t *testing.T) {
	// Delta encoding: 64 consecutive tags should take ~1 byte each.
	ts := make([]Tag, 64)
	for i := range ts {
		ts[i] = Tag(i + 1)
	}
	b, _ := NewLabel(ts...).MarshalBinary()
	if len(b) > 70 {
		t.Errorf("encoding of 64 dense tags is %d bytes, want <= 70", len(b))
	}
}

func TestLabelBinaryRejectsTruncation(t *testing.T) {
	b, _ := lbl(5, 10, 20).MarshalBinary()
	for i := 0; i < len(b); i++ {
		var l Label
		if err := l.UnmarshalBinary(b[:i]); err == nil {
			t.Errorf("accepted truncation to %d bytes", i)
		}
	}
}

func TestLabelBinaryRejectsTrailing(t *testing.T) {
	b, _ := lbl(5).MarshalBinary()
	var l Label
	if err := l.UnmarshalBinary(append(b, 0x00)); err == nil {
		t.Error("accepted trailing byte")
	}
}

func TestLabelBinaryRejectsHugeCount(t *testing.T) {
	// Header claims 2^32 tags with no body.
	b := []byte{0x80, 0x80, 0x80, 0x80, 0x10}
	var l Label
	if err := l.UnmarshalBinary(b); err == nil {
		t.Error("accepted absurd tag count")
	}
}

func TestLabelBinaryRejectsZeroDelta(t *testing.T) {
	// count=2, tag deltas 5 then 0 (duplicate tag) must be rejected.
	b := []byte{2, 5, 0}
	var l Label
	if err := l.UnmarshalBinary(b); err == nil {
		t.Error("accepted non-monotone encoding")
	}
}

func TestCapSetBinaryRoundTrip(t *testing.T) {
	cases := []CapSet{
		EmptyCaps,
		NewCapSet(Plus(1)),
		NewCapSet(Minus(9)),
		NewCapSet(Plus(1), Minus(1), Plus(100), Minus(200)),
		CapsFor(3, 6, 9),
	}
	for _, c := range cases {
		b, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %v: %v", c, err)
		}
		var back CapSet
		if err := back.UnmarshalBinary(b); err != nil {
			t.Fatalf("unmarshal %v: %v", c, err)
		}
		if !back.Equal(c) {
			t.Errorf("round trip: got %v, want %v", back, c)
		}
	}
}

func TestCapSetBinaryRejectsTrailing(t *testing.T) {
	b, _ := CapsFor(1).MarshalBinary()
	var c CapSet
	if err := c.UnmarshalBinary(append(b, 0xFF)); err == nil {
		t.Error("accepted trailing byte")
	}
}

func TestLabelPairBinaryRoundTrip(t *testing.T) {
	cases := []LabelPair{
		{},
		{Secrecy: lbl(1, 2)},
		{Integrity: lbl(3)},
		{Secrecy: lbl(1), Integrity: lbl(2, 4)},
	}
	for _, p := range cases {
		b, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back LabelPair
		if err := back.UnmarshalBinary(b); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !back.Equal(p) {
			t.Errorf("round trip: got %v, want %v", back, p)
		}
	}
}

func TestDecodeConsumesExactly(t *testing.T) {
	l1, _ := lbl(7, 8).MarshalBinary()
	l2, _ := lbl(9).MarshalBinary()
	joined := append(append([]byte{}, l1...), l2...)
	a, n, err := DecodeLabel(joined)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(lbl(7, 8)) || !bytes.Equal(joined[n:], l2) {
		t.Error("DecodeLabel consumed wrong amount")
	}
	b, n2, err := DecodeLabel(joined[n:])
	if err != nil || !b.Equal(lbl(9)) || n2 != len(l2) {
		t.Error("second decode failed")
	}
}
