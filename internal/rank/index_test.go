package rank

import (
	"fmt"
	"math"
	"testing"

	"w5/internal/registry"
)

// TestWarmRecomputeMatchesCold is the incremental-recompute regression
// guarantee: after a graph delta, a power iteration warm-started from
// the pre-delta scores converges to the same fixpoint as a from-scratch
// run — within Epsilon — across dangling-node and personalization edge
// cases. (The fixpoint is independent of the starting vector; warm
// starting may only change the iteration count.)
func TestWarmRecomputeMatchesCold(t *testing.T) {
	base := []registry.Edge{
		edge("a", "b", "import"),
		edge("b", "c", "import"),
		edge("c", "a", "embed"),
		edge("d", "a", "import"),
		// e is dangling: no outgoing edges.
	}
	nodes := []string{"a", "b", "c", "d", "e"}
	cases := []struct {
		name  string
		nodes []string
		delta []registry.Edge // edges after the one-edge change
		opts  Options
	}{
		{
			name:  "edge added",
			nodes: nodes,
			delta: append(append([]registry.Edge(nil), base...), edge("e", "b", "import")),
		},
		{
			name:  "edge removed leaves a dangling node",
			nodes: nodes,
			delta: base[:len(base)-1], // d loses its only out-edge
		},
		{
			name:  "edge added under personalization",
			nodes: nodes,
			delta: append(append([]registry.Edge(nil), base...), edge("e", "d", "embed")),
			opts:  Options{Personalization: map[string]float64{"b": 3, "c": 1}},
		},
		{
			name:  "node added",
			nodes: append(append([]string(nil), nodes...), "f"),
			delta: append(append([]registry.Edge(nil), base...), edge("f", "a", "import")),
		},
		{
			name:  "node removed",
			nodes: nodes[:4],
			delta: base,
		},
		{
			name:  "personalization covering no surviving node falls back to uniform",
			nodes: nodes[:3],
			delta: base[:3],
			opts:  Options{Personalization: map[string]float64{"zzz": 5}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pre := Compute(nodes, base, tc.opts)
			if !pre.Converged {
				t.Fatal("pre-delta computation did not converge")
			}
			cold := Compute(tc.nodes, tc.delta, tc.opts)
			warmOpts := tc.opts
			warmOpts.Warm = pre.Scores
			warm := Compute(tc.nodes, tc.delta, warmOpts)
			if !cold.Converged || !warm.Converged {
				t.Fatalf("converged: cold=%v warm=%v", cold.Converged, warm.Converged)
			}
			if len(cold.Scores) != len(warm.Scores) {
				t.Fatalf("score sets differ: %d vs %d", len(cold.Scores), len(warm.Scores))
			}
			var sum float64
			for name, cs := range cold.Scores {
				ws, ok := warm.Scores[name]
				if !ok {
					t.Fatalf("warm result missing %s", name)
				}
				if math.Abs(cs-ws) > 1e-6 {
					t.Errorf("%s: cold=%v warm=%v (|Δ|=%g)", name, cs, ws, math.Abs(cs-ws))
				}
				sum += ws
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Errorf("warm scores sum to %v, want 1", sum)
			}
		})
	}
}

// TestWarmStartConvergesFaster pins the point of warm starting: after a
// small delta to a large graph, the warm-started iteration takes fewer
// steps than the cold one.
func TestWarmStartConvergesFaster(t *testing.T) {
	var nodes []string
	var edges []registry.Edge
	for i := 0; i < 200; i++ {
		nodes = append(nodes, fmt.Sprintf("n%d", i))
	}
	for i := 0; i < 200; i++ {
		// Irregular in-degrees (a hub every 5th node) so the fixpoint is
		// far from uniform and a warm start actually has a head start.
		edges = append(edges, edge(nodes[i], nodes[(i*7+1)%200], "import"))
		edges = append(edges, edge(nodes[i], nodes[(i/5)*5%200], "embed"))
	}
	pre := Compute(nodes, edges, Options{})
	delta := append(append([]registry.Edge(nil), edges...), edge("n0", "n100", "import"))
	cold := Compute(nodes, delta, Options{})
	warm := Compute(nodes, delta, Options{Warm: pre.Scores})
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm start did not help: warm=%d cold=%d iterations", warm.Iterations, cold.Iterations)
	}
}

// TestIndexCaching pins the Index's snapshot protocol: the view is
// reused while the registry sequence is unchanged, recomputed once
// after a mutation, and endorsements feed the personalization vector.
func TestIndexCaching(t *testing.T) {
	reg := testRegistry(t)
	ix := NewIndex(Options{})

	v1 := ix.View(reg)
	if v1.Seq != reg.Seq() {
		t.Fatalf("view seq %d, registry seq %d", v1.Seq, reg.Seq())
	}
	if v2 := ix.View(reg); v2 != v1 {
		t.Fatal("unchanged registry produced a new view")
	}
	if len(v1.Ordered) != len(v1.Scores) || len(v1.Scores) != 4 {
		t.Fatalf("view covers %d ordered / %d scores, want 4", len(v1.Ordered), len(v1.Scores))
	}

	// A mutation advances the sequence; the next View recomputes, and
	// the endorsement shows up as personalization (blogger rises).
	for _, e := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"} {
		if err := reg.Endorse(e, "blogger"); err != nil {
			t.Fatal(err)
		}
	}
	v3 := ix.View(reg)
	if v3 == v1 || v3.Seq != reg.Seq() {
		t.Fatalf("view not recomputed after mutation: %p/%p seq %d/%d", v3, v1, v3.Seq, reg.Seq())
	}
	if v3.Scores["blogger"] <= v1.Scores["blogger"] {
		t.Errorf("endorsements did not raise blogger: %v -> %v",
			v1.Scores["blogger"], v3.Scores["blogger"])
	}

	// The warm-started incremental recompute agrees with a cold run.
	rv := reg.View()
	cold := Compute(rv.Modules(), rv.Edges(), Options{Personalization: endorsementVector(rv, rv.Modules())})
	for name, cs := range cold.Scores {
		if math.Abs(cs-v3.Scores[name]) > 1e-6 {
			t.Errorf("%s: index=%v cold=%v", name, v3.Scores[name], cs)
		}
	}

	// SearchRanked serves from the same cached view, rank-ordered.
	res := ix.SearchRanked(reg, "photo")
	if len(res) != 2 || res[0].Score < res[1].Score {
		t.Fatalf("SearchRanked = %+v", res)
	}
	if ix.SearchRanked(reg, "zebra") != nil {
		t.Error("no-match query returned results")
	}

	// Refresh always recomputes and republishes.
	v4 := ix.Refresh(reg)
	if v4 == v3 {
		t.Fatal("Refresh reused the cached view")
	}
	if v4.Seq != v3.Seq {
		t.Fatalf("Refresh changed the sequence: %d vs %d", v4.Seq, v3.Seq)
	}
}
